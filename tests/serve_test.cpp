// Tests for the multi-tenant serving core (serve/serve.h) and the
// Router::run_async round stream it slices on.
//
// The load-bearing claims, each verified here:
//  - run_async stepping is bit-identical to a single run() at any thread /
//    shard count and any submit/poll cadence (it inherits run()'s
//    split-run invariance).
//  - A serve schedule commits, per tenant, exactly what a serial run
//    would: the tenants x threads x shards matrix compares every tenant's
//    result against a standalone reference (the ISSUE-10 acceptance
//    matrix), and the shared-budget peak stays within the admission limit.
//  - Deadlines pause a tenant cleanly mid-schedule and the session resumes
//    bit-identically; cancelling one tenant never perturbs another.
//  - Admission rejects over-capacity opens with typed kResourceExhausted
//    and the registry stays consistent.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/router.h"
#include "route/netlist_gen.h"
#include "serve/admission.h"
#include "serve/scheduler.h"
#include "serve/serve.h"
#include "stress.h"
#include "test_instances.h"

namespace cdst {
namespace {

using serve::AdmissionController;
using serve::AdmissionLimits;
using serve::EngineServer;
using serve::FairScheduler;
using serve::SchedulePolicy;
using serve::ServeOptions;
using serve::ServeStats;
using serve::SessionId;
using serve::SessionKind;
using serve::TenantOptions;
using testutil::expect_same;
using testutil::make_grid_instance;
using testutil::stress_light;

/// Per-tenant chip: same small fabric, different netlist per seed so
/// tenants are distinguishable workloads.
ChipConfig tenant_chip(std::uint64_t seed) {
  ChipConfig c;
  c.name = "serve-" + std::to_string(seed);
  c.num_nets = 24;
  c.num_layers = 3;
  c.nx = c.ny = 12;
  c.capacity = 8.0;
  c.seed = seed;
  return c;
}

RouterOptions serve_router_options(int threads, int shards) {
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.seed = 5;
  opts.threads = threads;
  opts.shards = shards;
  return opts;
}

void expect_same_routing(const RouterResult& got, const RouterResult& want) {
  ASSERT_EQ(got.routes.size(), want.routes.size());
  for (std::size_t i = 0; i < got.routes.size(); ++i) {
    EXPECT_EQ(got.routes[i], want.routes[i]) << "net " << i;
  }
  ASSERT_EQ(got.sink_delays.size(), want.sink_delays.size());
  for (std::size_t s = 0; s < got.sink_delays.size(); ++s) {
    EXPECT_DOUBLE_EQ(got.sink_delays[s], want.sink_delays[s]) << "sink " << s;
    EXPECT_DOUBLE_EQ(got.sink_weights[s], want.sink_weights[s])
        << "sink " << s;
  }
}

// ------------------------------------------------------------ FairScheduler

TEST(FairScheduler, DeficitRoundRobinHonorsWeights) {
  FairScheduler sched(SchedulePolicy::kDeficitRoundRobin);
  sched.add(1, 2);
  sched.add(2, 1);
  sched.add(3, 1);
  sched.set_runnable(1, true);
  sched.set_runnable(2, true);
  sched.set_runnable(3, true);

  // One full cycle: weight-2 tenant gets two consecutive slices.
  std::vector<SessionId> picks;
  for (int i = 0; i < 8; ++i) picks.push_back(sched.pick().value());
  const std::vector<SessionId> want = {1, 1, 2, 3, 1, 1, 2, 3};
  EXPECT_EQ(picks, want);
}

TEST(FairScheduler, SkipsNotRunnableAndDrainsToNullopt) {
  FairScheduler sched(SchedulePolicy::kDeficitRoundRobin);
  sched.add(1, 1);
  sched.add(2, 1);
  sched.set_runnable(2, true);
  EXPECT_EQ(sched.pick(), SessionId{2});
  sched.set_runnable(2, false);
  EXPECT_EQ(sched.pick(), std::nullopt);
  EXPECT_EQ(sched.runnable_count(), 0u);

  sched.remove(2);
  sched.set_runnable(1, true);
  EXPECT_EQ(sched.pick(), SessionId{1});
  sched.remove(1);
  EXPECT_EQ(sched.pick(), std::nullopt);
  EXPECT_EQ(sched.size(), 0u);
}

TEST(FairScheduler, FifoRunsEarliestAdmittedToCompletion) {
  FairScheduler sched(SchedulePolicy::kFifo);
  sched.add(7, 1);
  sched.add(8, 4);
  sched.set_runnable(7, true);
  sched.set_runnable(8, true);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(sched.pick(), SessionId{7});
  sched.set_runnable(7, false);
  EXPECT_EQ(sched.pick(), SessionId{8});
}

// ------------------------------------------------------ AdmissionController

TEST(AdmissionController, EnforcesDepthAndBudget) {
  AdmissionController adm(AdmissionLimits{2, 1000});
  EXPECT_TRUE(adm.admit(600).ok());
  const Status over_budget = adm.admit(600);
  EXPECT_EQ(over_budget.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(adm.admit(100).ok());
  const Status over_depth = adm.admit(0);
  EXPECT_EQ(over_depth.code(), StatusCode::kResourceExhausted);

  EXPECT_EQ(adm.sessions(), 2u);
  EXPECT_EQ(adm.projected_bytes(), 700u);
  EXPECT_EQ(adm.admitted_total(), 2u);
  EXPECT_EQ(adm.rejected_total(), 2u);

  adm.release(600);
  EXPECT_EQ(adm.sessions(), 1u);
  EXPECT_EQ(adm.projected_bytes(), 100u);
  EXPECT_TRUE(adm.admit(900).ok());
}

// ----------------------------------------------------------- Router::run_async

TEST(RouterRun, StreamIsBitIdenticalToSerialRunAcrossThreadsAndShards) {
  const int rounds = 3;
  const std::vector<int> thread_counts =
      stress_light() ? std::vector<int>{2} : std::vector<int>{1, 2, 4};
  const std::vector<int> shard_counts = {1, 4};
  const ChipConfig c = tenant_chip(7);
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);

  for (const int threads : thread_counts) {
    for (const int shards : shard_counts) {
      const RouterOptions opts = serve_router_options(threads, shards);
      Router ref(grid, nl, opts);
      ASSERT_TRUE(ref.run(rounds).ok());
      const RouterResult want = ref.result();

      // Stream the same rounds: open empty, submit in two chunks, step
      // with polls in between.
      Router session(grid, nl, opts);
      RouterRun run = session.run_async(0);
      EXPECT_TRUE(run.done());
      ASSERT_TRUE(run.submit(1).ok());
      ASSERT_TRUE(run.submit(rounds - 1).ok());
      EXPECT_EQ(run.rounds_remaining(), rounds);

      int steps = 0;
      int barrier_events = 0;
      while (!run.done()) {
        ASSERT_TRUE(run.step().ok()) << "threads=" << threads
                                     << " shards=" << shards;
        ++steps;
        while (const auto event = run.poll()) {
          EXPECT_TRUE(event->round_complete);
          // The stream rewrites the slice's one-round horizon to the
          // absolute stream target.
          EXPECT_EQ(event->target_round, rounds);
          ++barrier_events;
        }
      }
      EXPECT_EQ(steps, rounds);
      EXPECT_EQ(barrier_events, rounds);
      EXPECT_EQ(run.dropped_events(), 0u);
      EXPECT_EQ(session.rounds_completed(), rounds);
      expect_same_routing(session.result(), want);
    }
  }
}

TEST(RouterRun, DeadlinePausesStreamResumableViaSetDeadline) {
  const ChipConfig c = tenant_chip(7);
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  const RouterOptions opts = serve_router_options(2, 4);

  Router ref(grid, nl, opts);
  ASSERT_TRUE(ref.run(2).ok());
  const RouterResult want = ref.result();

  Router session(grid, nl, opts);
  RunControl control;
  control.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  RouterRun run = session.run_async(2, control);
  const Status expired = run.step();
  EXPECT_EQ(expired.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(run.rounds_remaining(), 2);
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);

  run.set_deadline(std::nullopt);
  ASSERT_TRUE(run.drain().ok());
  EXPECT_TRUE(run.done());
  expect_same_routing(session.result(), want);
}

// -------------------------------------------------------------- EngineServer

/// Runs every tenant serially in its own standalone Router and returns the
/// reference results.
std::vector<RouterResult> serial_references(
    const std::vector<const RoutingGrid*>& grids,
    const std::vector<const Netlist*>& netlists, const RouterOptions& opts,
    int rounds) {
  std::vector<RouterResult> results;
  for (std::size_t i = 0; i < grids.size(); ++i) {
    Router ref(*grids[i], *netlists[i], opts);
    EXPECT_TRUE(ref.run(rounds).ok());
    results.push_back(ref.result());
  }
  return results;
}

TEST(EngineServer, MultiTenantMatrixBitIdenticalToSerialWithinBudget) {
  const int rounds = 3;
  const std::vector<int> thread_counts =
      stress_light() ? std::vector<int>{2} : std::vector<int>{1, 2, 4};
  const std::vector<int> shard_counts =
      stress_light() ? std::vector<int>{4} : std::vector<int>{1, 4};
  const std::vector<int> tenant_counts =
      stress_light() ? std::vector<int>{2} : std::vector<int>{2, 4};

  // Tenants' chips built once, reused across the matrix.
  std::vector<std::unique_ptr<RoutingGrid>> grids;
  std::vector<std::unique_ptr<Netlist>> netlists;
  for (int t = 0; t < 4; ++t) {
    const ChipConfig c = tenant_chip(11 + static_cast<std::uint64_t>(t));
    grids.push_back(std::make_unique<RoutingGrid>(make_chip_grid(c)));
    netlists.push_back(
        std::make_unique<Netlist>(generate_netlist(c, *grids.back())));
  }

  for (const int threads : thread_counts) {
    for (const int shards : shard_counts) {
      const RouterOptions opts = serve_router_options(threads, shards);
      for (const int tenants : tenant_counts) {
        std::vector<const RoutingGrid*> grid_ptrs;
        std::vector<const Netlist*> nl_ptrs;
        for (int t = 0; t < tenants; ++t) {
          grid_ptrs.push_back(grids[static_cast<std::size_t>(t)].get());
          nl_ptrs.push_back(netlists[static_cast<std::size_t>(t)].get());
        }
        const std::vector<RouterResult> want =
            serial_references(grid_ptrs, nl_ptrs, opts, rounds);

        Engine engine(EngineOptions{threads, 64u << 20});
        ServeOptions serve_opts;
        serve_opts.admission_budget_bytes = 64u << 20;
        EngineServer server(engine, serve_opts);

        std::vector<SessionId> ids;
        for (int t = 0; t < tenants; ++t) {
          TenantOptions tenant;
          tenant.name = "tenant-" + std::to_string(t);
          tenant.weight = 1 + t % 2;  // mixed weights
          tenant.projected_dense_bytes = 1u << 20;
          const StatusOr<SessionId> id = server.open_router_session(
              *grid_ptrs[static_cast<std::size_t>(t)],
              *nl_ptrs[static_cast<std::size_t>(t)], opts, tenant);
          ASSERT_TRUE(id.ok()) << id.status().to_string();
          ids.push_back(id.value());
          ASSERT_TRUE(server.submit_rounds(id.value(), rounds).ok());
        }

        ASSERT_TRUE(server.run_until_idle().ok())
            << "threads=" << threads << " shards=" << shards
            << " tenants=" << tenants;

        const ServeStats stats = server.stats();
        EXPECT_EQ(stats.sessions_open, static_cast<std::size_t>(tenants));
        EXPECT_EQ(stats.queue_depth, 0u);
        EXPECT_EQ(stats.slices_total,
                  static_cast<std::size_t>(tenants * rounds));
        // The acceptance bound: actual shared-budget reservations never
        // exceeded the configured admission limit.
        EXPECT_GT(stats.budget_peak_bytes, 0);
        EXPECT_LE(static_cast<std::size_t>(stats.budget_peak_bytes),
                  stats.admission_budget_bytes);
        EXPECT_GE(stats.worst_ace4, 0.0);

        for (int t = 0; t < tenants; ++t) {
          const StatusOr<RouterResult> got =
              server.result(ids[static_cast<std::size_t>(t)]);
          ASSERT_TRUE(got.ok());
          expect_same_routing(got.value(),
                              want[static_cast<std::size_t>(t)]);
        }
      }
    }
  }
}

TEST(EngineServer, FifoPolicyProducesIdenticalResultsToFair) {
  const int rounds = 2;
  const RouterOptions opts = serve_router_options(2, 4);
  const ChipConfig ca = tenant_chip(21);
  const ChipConfig cb = tenant_chip(22);
  const RoutingGrid grid_a = make_chip_grid(ca);
  const RoutingGrid grid_b = make_chip_grid(cb);
  const Netlist nl_a = generate_netlist(ca, grid_a);
  const Netlist nl_b = generate_netlist(cb, grid_b);

  std::vector<RouterResult> results[2];
  for (const SchedulePolicy policy :
       {SchedulePolicy::kDeficitRoundRobin, SchedulePolicy::kFifo}) {
    Engine engine(EngineOptions{2, 64u << 20});
    ServeOptions serve_opts;
    serve_opts.policy = policy;
    EngineServer server(engine, serve_opts);
    const StatusOr<SessionId> a =
        server.open_router_session(grid_a, nl_a, opts);
    const StatusOr<SessionId> b =
        server.open_router_session(grid_b, nl_b, opts);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(server.submit_rounds(a.value(), rounds).ok());
    ASSERT_TRUE(server.submit_rounds(b.value(), rounds).ok());
    ASSERT_TRUE(server.run_until_idle().ok());
    const std::size_t index =
        policy == SchedulePolicy::kDeficitRoundRobin ? 0 : 1;
    results[index].push_back(server.result(a.value()).value());
    results[index].push_back(server.result(b.value()).value());
  }
  // Scheduling policy reorders slices, never changes results.
  for (int i = 0; i < 2; ++i) {
    expect_same_routing(results[1][static_cast<std::size_t>(i)],
                        results[0][static_cast<std::size_t>(i)]);
  }
}

TEST(EngineServer, DeadlineExpiresCleanlyMidScheduleAndSessionResumes) {
  const int rounds = 2;
  const RouterOptions opts = serve_router_options(2, 4);
  const ChipConfig ca = tenant_chip(31);
  const ChipConfig cb = tenant_chip(32);
  const RoutingGrid grid_a = make_chip_grid(ca);
  const RoutingGrid grid_b = make_chip_grid(cb);
  const Netlist nl_a = generate_netlist(ca, grid_a);
  const Netlist nl_b = generate_netlist(cb, grid_b);

  Router ref_a(grid_a, nl_a, opts);
  ASSERT_TRUE(ref_a.run(rounds).ok());
  Router ref_b(grid_b, nl_b, opts);
  ASSERT_TRUE(ref_b.run(rounds).ok());

  Engine engine(EngineOptions{2, 64u << 20});
  EngineServer server(engine, {});
  const SessionId a =
      server.open_router_session(grid_a, nl_a, opts).value();
  TenantOptions expired_tenant;
  expired_tenant.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  const SessionId b =
      server.open_router_session(grid_b, nl_b, opts, expired_tenant).value();
  ASSERT_TRUE(server.submit_rounds(a, rounds).ok());
  ASSERT_TRUE(server.submit_rounds(b, rounds).ok());

  // The expired tenant yields at its first slice; the other completes.
  ASSERT_TRUE(server.run_until_idle().ok());
  EXPECT_EQ(server.session_status(b).code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(server.session_status(a).ok());
  expect_same_routing(server.result(a).value(), ref_a.result());

  const ServeStats mid = server.stats();
  EXPECT_GE(mid.deadline_expirations, 1u);
  const auto& tb = mid.tenants[1];
  EXPECT_EQ(tb.last_status, StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(tb.runnable);
  EXPECT_EQ(tb.rounds_completed, 0);

  // Clear the deadline and resume: the paused session finishes
  // bit-identically to one that was never interrupted.
  ASSERT_TRUE(server.set_deadline(b, std::nullopt).ok());
  ASSERT_TRUE(server.resume(b).ok());
  ASSERT_TRUE(server.run_until_idle().ok());
  expect_same_routing(server.result(b).value(), ref_b.result());
}

TEST(EngineServer, CancellingOneTenantNeverPerturbsAnother) {
  const int rounds = 3;
  const RouterOptions opts = serve_router_options(2, 4);
  const ChipConfig ca = tenant_chip(41);
  const ChipConfig cb = tenant_chip(42);
  const RoutingGrid grid_a = make_chip_grid(ca);
  const RoutingGrid grid_b = make_chip_grid(cb);
  const Netlist nl_a = generate_netlist(ca, grid_a);
  const Netlist nl_b = generate_netlist(cb, grid_b);

  Router ref_a(grid_a, nl_a, opts);
  ASSERT_TRUE(ref_a.run(rounds).ok());
  Router ref_b(grid_b, nl_b, opts);
  ASSERT_TRUE(ref_b.run(rounds).ok());

  Engine engine(EngineOptions{2, 64u << 20});
  EngineServer server(engine, {});
  const SessionId a =
      server.open_router_session(grid_a, nl_a, opts).value();
  const SessionId b =
      server.open_router_session(grid_b, nl_b, opts).value();
  ASSERT_TRUE(server.submit_rounds(a, rounds).ok());
  ASSERT_TRUE(server.submit_rounds(b, rounds).ok());

  // Let each tenant get one slice, then cancel b mid-schedule.
  ASSERT_TRUE(server.step());
  ASSERT_TRUE(server.step());
  ASSERT_TRUE(server.cancel(b).ok());
  ASSERT_TRUE(server.run_until_idle().ok());

  EXPECT_TRUE(server.session_status(a).ok());
  EXPECT_EQ(server.session_status(b).code(), StatusCode::kCancelled);
  // The unperturbed tenant is bit-identical to its serial run...
  expect_same_routing(server.result(a).value(), ref_a.result());
  // ...and the cancelled one resumes to the same end state.
  ASSERT_TRUE(server.resume(b).ok());
  ASSERT_TRUE(server.run_until_idle().ok());
  expect_same_routing(server.result(b).value(), ref_b.result());
}

TEST(EngineServer, AdmissionRejectsDepthAndBudgetWithTypedStatus) {
  const RouterOptions opts = serve_router_options(1, 0);
  const ChipConfig c = tenant_chip(51);
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);

  Engine engine(EngineOptions{1, 64u << 20});
  ServeOptions serve_opts;
  serve_opts.max_sessions = 1;
  serve_opts.admission_budget_bytes = 1u << 20;
  EngineServer server(engine, serve_opts);

  TenantOptions big;
  big.projected_dense_bytes = 2u << 20;
  const StatusOr<SessionId> over_budget =
      server.open_router_session(grid, nl, opts, big);
  ASSERT_FALSE(over_budget.ok());
  EXPECT_EQ(over_budget.status().code(), StatusCode::kResourceExhausted);

  TenantOptions fits;
  fits.projected_dense_bytes = 1u << 20;
  const StatusOr<SessionId> first =
      server.open_router_session(grid, nl, opts, fits);
  ASSERT_TRUE(first.ok());
  const StatusOr<SessionId> over_depth =
      server.open_solver_session(SolverOptions{}, TenantOptions{});
  ASSERT_FALSE(over_depth.ok());
  EXPECT_EQ(over_depth.status().code(), StatusCode::kResourceExhausted);

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.rejected_total, 2u);
  EXPECT_EQ(stats.sessions_open, 1u);
  EXPECT_EQ(stats.projected_bytes, 1u << 20);

  // Closing frees both the depth slot and the projection: the same tenant
  // shape that was just refused on depth now fits again.
  ASSERT_TRUE(server.close(first.value()).ok());
  EXPECT_TRUE(server.open_router_session(grid, nl, opts, fits).ok());
}

TEST(EngineServer, SolverSessionsInterleaveWithRoutersBitIdentically) {
  const int rounds = 2;
  const RouterOptions opts = serve_router_options(2, 4);
  const ChipConfig c = tenant_chip(61);
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  const std::size_t num_jobs = stress_light() ? 3 : 6;

  // Solver jobs and their serial references.
  std::vector<std::unique_ptr<testutil::GridInstance>> gis;
  std::vector<CdSolver::Job> jobs;
  for (std::size_t i = 0; i < num_jobs; ++i) {
    gis.push_back(make_grid_instance((i + 1) * 71, 9, 8, 3, 2 + i % 5));
    CdSolver::Job job;
    job.instance = &gis.back()->inst;
    job.future_cost = gis.back()->fc.get();
    job.seed = i + 1;
    jobs.push_back(job);
  }
  CdSolver ref_solver;
  std::vector<SolveResult> want_jobs;
  for (const CdSolver::Job& job : jobs) {
    const StatusOr<SolveResult> r = ref_solver.solve(job);
    ASSERT_TRUE(r.ok());
    want_jobs.push_back(r.value());
  }
  Router ref_router(grid, nl, opts);
  ASSERT_TRUE(ref_router.run(rounds).ok());

  Engine engine(EngineOptions{2, 64u << 20});
  EngineServer server(engine, {});
  const SessionId router_id =
      server.open_router_session(grid, nl, opts).value();
  TenantOptions solver_tenant;
  solver_tenant.weight = 2;
  const SessionId solver_id =
      server.open_solver_session(SolverOptions{}, solver_tenant).value();
  ASSERT_TRUE(server.submit_rounds(router_id, rounds).ok());
  for (const CdSolver::Job& job : jobs) {
    ASSERT_TRUE(server.submit_job(solver_id, job).ok());
  }
  ASSERT_TRUE(server.run_until_idle().ok());

  expect_same_routing(server.result(router_id).value(), ref_router.result());
  ASSERT_EQ(server.results_ready(solver_id), num_jobs);
  for (std::size_t i = 0; i < num_jobs; ++i) {
    const StatusOr<SolveResult> got = server.pop_result(solver_id);
    ASSERT_TRUE(got.ok());
    expect_same(got.value(), want_jobs[i], i, "serve job");
  }
  EXPECT_EQ(server.pop_result(solver_id).status().code(),
            StatusCode::kFailedPrecondition);

  const ServeStats stats = server.stats();
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].kind, SessionKind::kRouter);
  EXPECT_EQ(stats.tenants[0].rounds_completed, rounds);
  EXPECT_EQ(stats.tenants[1].kind, SessionKind::kSolver);
  EXPECT_EQ(stats.tenants[1].jobs_completed, num_jobs);
}

TEST(EngineServer, StatsAndCancelAreSafeFromOtherThreadsDuringServing) {
  const int rounds = stress_light() ? 2 : 4;
  const RouterOptions opts = serve_router_options(2, 4);
  const ChipConfig ca = tenant_chip(71);
  const ChipConfig cb = tenant_chip(72);
  const RoutingGrid grid_a = make_chip_grid(ca);
  const RoutingGrid grid_b = make_chip_grid(cb);
  const Netlist nl_a = generate_netlist(ca, grid_a);
  const Netlist nl_b = generate_netlist(cb, grid_b);

  Router ref_a(grid_a, nl_a, opts);
  ASSERT_TRUE(ref_a.run(rounds).ok());

  Engine engine(EngineOptions{2, 64u << 20});
  EngineServer server(engine, {});
  const SessionId a =
      server.open_router_session(grid_a, nl_a, opts).value();
  const SessionId b =
      server.open_router_session(grid_b, nl_b, opts).value();
  ASSERT_TRUE(server.submit_rounds(a, rounds).ok());
  ASSERT_TRUE(server.submit_rounds(b, rounds).ok());

  // A reader hammering the fleet snapshot and a canceller latching tenant
  // b's token race the serving pump — the documented any-thread surface.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const ServeStats stats = server.stats();
      EXPECT_LE(stats.queue_depth, 2u);
    }
  });
  std::thread canceller([&] { EXPECT_TRUE(server.cancel(b).ok()); });

  ASSERT_TRUE(server.run_until_idle().ok());
  stop.store(true);
  reader.join();
  canceller.join();

  // Tenant a is untouched by the concurrent cancel of b.
  expect_same_routing(server.result(a).value(), ref_a.result());
  // b either finished before the cancel latched or paused cleanly; both
  // leave it resumable to the bit-identical end state.
  ASSERT_TRUE(server.resume(b).ok());
  ASSERT_TRUE(server.run_until_idle().ok());
  Router ref_b(grid_b, nl_b, opts);
  ASSERT_TRUE(ref_b.run(rounds).ok());
  expect_same_routing(server.result(b).value(), ref_b.result());
}

}  // namespace
}  // namespace cdst
