// Cross-module integration tests: the full pipeline from chip generation
// through routing to per-instance oracle comparison, window/grid consistency
// of solved trees, and serialization of router-sampled instances.
// Uses the deprecated one-shot wrappers on purpose (legacy coverage).
#define CDST_ALLOW_DEPRECATED

#include <gtest/gtest.h>

#include <sstream>

#include "embed/enumerate.h"
#include "io/instance_io.h"
#include "route/netlist_gen.h"
#include "route/router.h"
#include "route/steiner_oracle.h"

namespace cdst {
namespace {

ChipConfig small_chip() {
  ChipConfig c;
  c.name = "integration";
  c.num_nets = 120;
  c.num_layers = 5;
  c.nx = c.ny = 24;
  c.capacity = 6.0;
  c.rat_tightness = 1.3;
  c.seed = 99;
  return c;
}

TEST(Integration, RouterInstancesSolveConsistentlyAcrossMethods) {
  const ChipConfig chip = small_chip();
  const RoutingGrid grid = make_chip_grid(chip);
  const Netlist netlist = generate_netlist(chip, grid);

  RouterOptions ropts;
  ropts.method = SteinerMethod::kCD;
  ropts.iterations = 2;
  ropts.oracle.dbif = 1.5;
  const RouterResult warm = route_chip(grid, netlist, ropts);

  CongestionCosts costs(grid, ropts.congestion);
  for (const auto& route : warm.routes) costs.add_usage(route, +1.0);

  OracleParams params = ropts.oracle;
  std::size_t flat = 0;
  std::size_t tested = 0;
  for (std::size_t i = 0; i < netlist.nets.size() && tested < 12; ++i) {
    const Net& net = netlist.nets[i];
    const std::size_t k = net.sinks.size();
    flat += k;
    if (k < 3) continue;
    ++tested;
    costs.add_usage(warm.routes[i], -1.0);
    const std::vector<double> weights(
        warm.sink_weights.begin() + static_cast<std::ptrdiff_t>(flat - k),
        warm.sink_weights.begin() + static_cast<std::ptrdiff_t>(flat));
    const OracleInstance oi(grid, costs, net, weights, params);

    double best = 0.0;
    for (const SteinerMethod m : all_methods()) {
      const OracleOutcome out = run_method(oi, m, params);
      EXPECT_GT(out.eval.objective, 0.0) << method_name(m);
      // Every returned edge must be a real grid edge.
      for (const EdgeId e : out.grid_edges) {
        EXPECT_LT(e, grid.graph().num_edges());
      }
      if (best == 0.0 || out.eval.objective < best) {
        best = out.eval.objective;
      }
    }
    // On tiny instances the exact oracle must lower-bound all methods.
    if (k <= 4) {
      const ExactResult exact = solve_exact(oi.instance());
      EXPECT_LE(exact.eval.objective, best + 1e-6);
    }
    costs.add_usage(warm.routes[i], +1.0);
  }
  EXPECT_GE(tested, 5u) << "corpus should contain multi-sink nets";
}

TEST(Integration, WindowSolveMatchesFullGridEvaluation) {
  // Solve a net on its window, map the tree to grid edges, and verify that
  // the objective recomputed from grid-level costs/delays matches.
  const ChipConfig chip = small_chip();
  const RoutingGrid grid = make_chip_grid(chip);
  const Netlist netlist = generate_netlist(chip, grid);
  CongestionCosts costs(grid);

  const Net* net = nullptr;
  for (const Net& n : netlist.nets) {
    if (n.sinks.size() >= 5) {
      net = &n;
      break;
    }
  }
  ASSERT_NE(net, nullptr);
  const std::vector<double> weights(net->sinks.size(), 0.3);
  OracleParams params;
  params.dbif = 0.0;  // penalties depend on tree structure, not edges
  const OracleInstance oi(grid, costs, *net, weights, params);

  SolverOptions so;
  WindowFutureCost fc(oi.window());
  so.future_cost = &fc;
  const SolveResult r = solve_cost_distance(oi.instance(), so);

  // Window-level connection cost == grid-level cost of the mapped edges.
  double grid_cost = 0.0;
  for (const EdgeId we : r.tree.all_edges()) {
    grid_cost += costs.edge_cost(oi.window().to_grid_edge(we));
  }
  EXPECT_NEAR(grid_cost, r.eval.connection_cost, 1e-6);

  // Window delays equal grid delays edge by edge.
  for (const EdgeId we : r.tree.all_edges()) {
    EXPECT_DOUBLE_EQ(oi.window().edge_delays()[we],
                     grid.edge_delays()[oi.window().to_grid_edge(we)]);
  }
}

TEST(Integration, RouterInstanceSurvivesSerializationRoundTrip) {
  const ChipConfig chip = small_chip();
  const RoutingGrid grid = make_chip_grid(chip);
  const Netlist netlist = generate_netlist(chip, grid);
  CongestionCosts costs(grid);
  const Net& net = netlist.nets[3];
  const std::vector<double> weights(net.sinks.size(), 0.7);
  OracleParams params;
  params.dbif = 2.0;
  const OracleInstance oi(grid, costs, net, weights, params);

  std::stringstream ss;
  write_instance(ss, oi.instance());
  const OwnedInstance loaded = read_instance(ss);

  SolverOptions so;  // generic-graph mode on both sides for comparability
  so.seed = 17;
  const SolveResult a = solve_cost_distance(oi.instance(), so);
  const SolveResult b = solve_cost_distance(loaded.instance, so);
  EXPECT_DOUBLE_EQ(a.eval.objective, b.eval.objective);
}

TEST(Integration, SingleGcellWindowRoutesThroughViaStack) {
  // A net whose pins share one gcell: the window degenerates to a via
  // column; the solver must still produce a valid (possibly zero-length)
  // tree.
  const RoutingGrid grid(12, 12, make_default_layer_stack(4), ViaSpec{});
  CongestionCosts costs(grid);
  Net net;
  net.source = Point3{5, 5, 0};
  net.sinks = {SinkPin{Point3{5, 5, 0}, 100.0},
               SinkPin{Point3{5, 5, 0}, 100.0}};
  OracleParams params;
  params.window_margin = 0;
  params.window_margin_frac = 0.0;
  const std::vector<double> sink_weights{1.0, 2.0};
  const OracleInstance oi(grid, costs, net, sink_weights, params);
  EXPECT_EQ(oi.window().graph().num_vertices(), 4u);  // 1 gcell x 4 layers
  const OracleOutcome out = run_method(oi, SteinerMethod::kCD, params);
  EXPECT_DOUBLE_EQ(out.eval.objective, 0.0);
}

TEST(Integration, MethodsAgreeOnTwoPinNets) {
  // For 2-terminal nets every method reduces to one weighted shortest path,
  // so all four must return identical objectives.
  const ChipConfig chip = small_chip();
  const RoutingGrid grid = make_chip_grid(chip);
  const Netlist netlist = generate_netlist(chip, grid);
  CongestionCosts costs(grid);
  OracleParams params;
  std::size_t tested = 0;
  for (const Net& net : netlist.nets) {
    if (net.sinks.size() != 1 || tested >= 10) continue;
    if (net.sinks[0].pos == net.source) continue;
    ++tested;
    const std::vector<double> weights{0.5};
    const OracleInstance oi(grid, costs, net, weights, params);
    double first = -1.0;
    for (const SteinerMethod m : all_methods()) {
      const double obj = run_method(oi, m, params).eval.objective;
      if (first < 0.0) {
        first = obj;
      } else {
        EXPECT_NEAR(obj, first, 1e-6) << method_name(m);
      }
    }
  }
  EXPECT_GE(tested, 5u);
}

}  // namespace
}  // namespace cdst
