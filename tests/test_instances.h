/// \file tests/test_instances.h
/// Shared fixtures for the api-layer test suites (api_test, stream_test):
/// a self-owning grid-backed CostDistanceInstance builder, the tiny router
/// chip, and the solve-result bit-identity comparator. One definition, so
/// the suites cannot drift apart on instance shape.

#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "core/cost_distance.h"
#include "grid/future_cost.h"
#include "grid/routing_grid.h"
#include "route/netlist_gen.h"
#include "util/rng.h"

namespace cdst::testutil {

/// Bundle owning everything a grid instance points to.
struct GridInstance {
  std::unique_ptr<RoutingGrid> grid;
  std::unique_ptr<FutureCost> fc;
  std::vector<double> cost;
  std::vector<double> delay;
  CostDistanceInstance inst;
};

/// Heap-allocated so the self-referential inst.cost/inst.delay pointers can
/// never dangle through a return-path move (NRVO is not guaranteed).
inline std::unique_ptr<GridInstance> make_grid_instance(
    std::uint64_t seed, int nx, int ny, int nz, std::size_t num_sinks,
    double dbif = 2.0) {
  auto gi = std::make_unique<GridInstance>();
  gi->grid = std::make_unique<RoutingGrid>(
      nx, ny, make_default_layer_stack(nz), ViaSpec{});
  gi->fc = std::make_unique<FutureCost>(*gi->grid);
  Rng rng(seed);
  const Graph& g = gi->grid->graph();
  gi->cost.resize(g.num_edges());
  gi->delay = gi->grid->edge_delays();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    gi->cost[e] = gi->grid->base_costs()[e] *
                  std::exp(rng.uniform_double(0.0, 2.0));
  }
  gi->inst.graph = &g;
  gi->inst.cost = &gi->cost;
  gi->inst.delay = &gi->delay;
  gi->inst.dbif = dbif;
  gi->inst.eta = 0.25;
  std::set<VertexId> used;
  auto pick = [&]() {
    while (true) {
      const auto x = static_cast<std::int32_t>(rng.uniform(nx));
      const auto y = static_cast<std::int32_t>(rng.uniform(ny));
      const VertexId v = gi->grid->vertex_at(x, y, 0);
      if (used.insert(v).second) return v;
    }
  };
  gi->inst.root = pick();
  for (std::size_t s = 0; s < num_sinks; ++s) {
    gi->inst.sinks.push_back(
        Terminal{pick(), std::exp(rng.uniform_double(-2.0, 2.0))});
  }
  return gi;
}

inline ChipConfig tiny_chip() {
  ChipConfig c;
  c.name = "tiny";
  c.num_nets = 60;
  c.num_layers = 4;
  c.nx = c.ny = 20;
  c.capacity = 10.0;
  c.seed = 7;
  return c;
}

/// Solve-result bit-identity: same tree edges, objective, and search work.
inline void expect_same(const SolveResult& a, const SolveResult& b,
                        std::size_t index, const char* what) {
  EXPECT_EQ(a.tree.all_edges(), b.tree.all_edges()) << what << " " << index;
  EXPECT_DOUBLE_EQ(a.eval.objective, b.eval.objective) << what << " " << index;
  EXPECT_EQ(a.stats.labels_settled, b.stats.labels_settled)
      << what << " " << index;
}

}  // namespace cdst::testutil
