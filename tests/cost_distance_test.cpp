// Tests for the cost-distance solver (Algorithm 1 + Section III
// enhancements): structural validity, objective consistency, optimality on
// special cases, comparison against the exact enumeration oracle, and
// behaviour of every enhancement toggle.
//
// Intentionally exercises the deprecated one-shot solve_cost_distance
// wrapper (api_test covers the session API), keeping the legacy surface
// under test until it is removed.
#define CDST_ALLOW_DEPRECATED

#include <gtest/gtest.h>

#include <cmath>

#include "core/cost_distance.h"
#include "embed/embedder.h"
#include "embed/enumerate.h"
#include "graph/dijkstra.h"
#include "grid/future_cost.h"
#include "topology/rsmt.h"
#include "grid/routing_grid.h"
#include "util/rng.h"

namespace cdst {
namespace {

/// Bundle owning everything a grid instance points to.
struct GridInstance {
  std::unique_ptr<RoutingGrid> grid;
  std::unique_ptr<FutureCost> fc;
  std::vector<double> cost;
  std::vector<double> delay;
  CostDistanceInstance inst;
};

/// Random congested instance on a small grid.
GridInstance make_grid_instance(std::uint64_t seed, int nx, int ny, int nz,
                                std::size_t num_sinks, double dbif = 0.0,
                                double eta = 0.25) {
  GridInstance gi;
  gi.grid = std::make_unique<RoutingGrid>(
      nx, ny, make_default_layer_stack(nz), ViaSpec{});
  gi.fc = std::make_unique<FutureCost>(*gi.grid);
  Rng rng(seed);
  const Graph& g = gi.grid->graph();
  gi.cost.resize(g.num_edges());
  gi.delay = gi.grid->edge_delays();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    // Congestion multiplier in [1, ~7], uncorrelated with delay.
    gi.cost[e] = gi.grid->base_costs()[e] *
                 std::exp(rng.uniform_double(0.0, 2.0));
  }
  gi.inst.graph = &g;
  gi.inst.cost = &gi.cost;
  gi.inst.delay = &gi.delay;
  gi.inst.dbif = dbif;
  gi.inst.eta = eta;
  // Distinct terminal vertices on the bottom layer.
  std::set<VertexId> used;
  auto pick = [&]() {
    while (true) {
      const auto x = static_cast<std::int32_t>(rng.uniform(nx));
      const auto y = static_cast<std::int32_t>(rng.uniform(ny));
      const VertexId v = gi.grid->vertex_at(x, y, 0);
      if (used.insert(v).second) return v;
    }
  };
  gi.inst.root = pick();
  for (std::size_t s = 0; s < num_sinks; ++s) {
    gi.inst.sinks.push_back(
        Terminal{pick(), std::exp(rng.uniform_double(-2.0, 2.0))});
  }
  return gi;
}

SolverOptions with_fc(const GridInstance& gi, bool astar = true) {
  SolverOptions o;
  o.future_cost = gi.fc.get();
  o.use_astar = astar;
  return o;
}

TEST(CostDistance, SingleSinkIsShortestPath) {
  const auto gi = make_grid_instance(7, 6, 6, 3, 1);
  const double w = gi.inst.sinks[0].weight;
  const auto r = solve_cost_distance(gi.inst, with_fc(gi));
  const auto sp = dijkstra(
      *gi.inst.graph, {gi.inst.root},
      [&](EdgeId e) { return gi.cost[e] + w * gi.delay[e]; },
      gi.inst.sinks[0].vertex);
  EXPECT_NEAR(r.eval.objective, sp.dist[gi.inst.sinks[0].vertex], 1e-6)
      << "a 1-sink instance must be solved by one shortest path";
}

TEST(CostDistance, SinkOnRootVertexCostsNothing) {
  GridInstance gi = make_grid_instance(8, 5, 5, 2, 1);
  gi.inst.sinks[0].vertex = gi.inst.root;
  const auto r = solve_cost_distance(gi.inst, with_fc(gi));
  EXPECT_DOUBLE_EQ(r.eval.objective, 0.0);
}

TEST(CostDistance, ParallelEdgesTradeCostForDelay) {
  // Two parallel edges between root and sink: cheap-slow vs pricey-fast.
  GraphBuilder b(2);
  b.add_edge(0, 1);  // e0: cheap, slow
  b.add_edge(0, 1);  // e1: expensive, fast
  const Graph g(b);
  std::vector<double> c{1.0, 10.0};
  std::vector<double> d{10.0, 1.0};
  CostDistanceInstance inst;
  inst.graph = &g;
  inst.cost = &c;
  inst.delay = &d;
  inst.root = 0;
  inst.sinks = {Terminal{1, 0.01}};
  SolverOptions opts;  // generic graph: no future costs
  auto r = solve_cost_distance(inst, opts);
  EXPECT_NEAR(r.eval.objective, 1.0 + 0.01 * 10.0, 1e-12)
      << "light weight must choose the cheap slow wire";

  inst.sinks[0].weight = 100.0;
  r = solve_cost_distance(inst, opts);
  EXPECT_NEAR(r.eval.objective, 10.0 + 100.0 * 1.0, 1e-12)
      << "heavy weight must choose the fast expensive wire";
}

TEST(CostDistance, DisconnectedGraphThrows) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g(b);
  std::vector<double> c{1.0, 1.0};
  std::vector<double> d{1.0, 1.0};
  CostDistanceInstance inst;
  inst.graph = &g;
  inst.cost = &c;
  inst.delay = &d;
  inst.root = 0;
  inst.sinks = {Terminal{3, 1.0}};
  EXPECT_THROW(solve_cost_distance(inst, SolverOptions{}), ContractViolation);
}

class CostDistanceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CostDistanceProperty, ProducesValidConsistentTrees) {
  for (const double dbif : {0.0, 5.0}) {
    GridInstance gi =
        make_grid_instance(GetParam(), 9, 8, 4, 3 + GetParam() % 10, dbif);
    SolverOptions opts = with_fc(gi);
    opts.seed = GetParam();
    const auto r = solve_cost_distance(gi.inst, opts);
    r.tree.validate(*gi.inst.graph, gi.inst.sinks.size());
    // Objective must equal an independent re-evaluation.
    const TreeEvaluation re = evaluate_tree(r.tree, gi.inst);
    EXPECT_NEAR(re.objective, r.eval.objective, 1e-9);
    EXPECT_EQ(r.stats.iterations, gi.inst.sinks.size())
        << "every merge removes exactly one active sink";
    EXPECT_GT(r.eval.objective, 0.0);
  }
}

TEST_P(CostDistanceProperty, AllEnhancementCombinationsAreValid) {
  GridInstance gi = make_grid_instance(GetParam() * 77, 8, 8, 3, 5, 3.0);
  double best = 1e300, worst = 0.0;
  for (int mask = 0; mask < 32; ++mask) {
    SolverOptions o;
    o.future_cost = gi.fc.get();
    o.discount_components = (mask & 1) != 0;
    o.use_astar = (mask & 2) != 0;
    o.better_steiner_placement = (mask & 4) != 0;
    o.encourage_root = (mask & 8) != 0;
    o.seed = (mask & 16) != 0 ? 1 : 2;
    const auto r = solve_cost_distance(gi.inst, o);
    r.tree.validate(*gi.inst.graph, gi.inst.sinks.size());
    best = std::min(best, r.eval.objective);
    worst = std::max(worst, r.eval.objective);
  }
  EXPECT_GT(best, 0.0);
  EXPECT_LT(worst, 1e300);
  // The spread between configurations should be bounded (same instance).
  EXPECT_LT(worst / best, 3.0);
}

TEST_P(CostDistanceProperty, DeterministicGivenSeed) {
  GridInstance gi = make_grid_instance(GetParam() + 123, 8, 7, 3, 6, 2.0);
  SolverOptions o = with_fc(gi);
  o.seed = 99;
  const auto r1 = solve_cost_distance(gi.inst, o);
  const auto r2 = solve_cost_distance(gi.inst, o);
  EXPECT_DOUBLE_EQ(r1.eval.objective, r2.eval.objective);
  EXPECT_EQ(r1.tree.nodes.size(), r2.tree.nodes.size());
}

TEST_P(CostDistanceProperty, NearOptimalOnTinyInstances) {
  // Compare against the exact enumeration oracle. Theorem 6 guarantees
  // O(log t) in expectation; on 2-4 sink instances the practical algorithm
  // lands much closer — enforce a generous factor 2.
  const std::size_t num_sinks = 2 + GetParam() % 3;
  for (const double dbif : {0.0, 4.0}) {
    GridInstance gi =
        make_grid_instance(GetParam() * 1313, 6, 6, 3, num_sinks, dbif);
    const ExactResult exact = solve_exact(gi.inst);
    for (const bool astar : {false, true}) {
      SolverOptions o = with_fc(gi, astar);
      const auto r = solve_cost_distance(gi.inst, o);
      EXPECT_GE(r.eval.objective, exact.eval.objective - 1e-6)
          << "nothing beats the exact optimum";
      EXPECT_LE(r.eval.objective, 2.0 * exact.eval.objective)
          << "approximation far above the expected practical quality";
    }
  }
}

TEST_P(CostDistanceProperty, ZeroWeightsReduceToPureCost) {
  GridInstance gi = make_grid_instance(GetParam() + 5000, 7, 7, 3, 5);
  for (Terminal& t : gi.inst.sinks) t.weight = 0.0;
  const auto r = solve_cost_distance(gi.inst, with_fc(gi));
  r.tree.validate(*gi.inst.graph, gi.inst.sinks.size());
  EXPECT_DOUBLE_EQ(r.eval.weighted_delay, 0.0);
  EXPECT_DOUBLE_EQ(r.eval.objective, r.eval.connection_cost);
}

TEST_P(CostDistanceProperty, PenaltiesOnlyIncreaseTreeCost) {
  GridInstance gi = make_grid_instance(GetParam() + 31, 8, 8, 3, 6, 0.0);
  const auto r = solve_cost_distance(gi.inst, with_fc(gi));
  // Evaluate the same tree under a dbif > 0 instance: objective must rise
  // (or stay, if the tree is a path) — penalties are non-negative.
  CostDistanceInstance with_penalty = gi.inst;
  with_penalty.dbif = 6.0;
  const TreeEvaluation e0 = evaluate_tree(r.tree, gi.inst);
  const TreeEvaluation e1 = evaluate_tree(r.tree, with_penalty);
  EXPECT_GE(e1.objective, e0.objective - 1e-9);
  EXPECT_GE(e1.total_delay_penalty, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostDistanceProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST_P(CostDistanceProperty, LazySingleHeapMatchesTwoLevel) {
  // The queue organization is a performance choice (Section III-B); both
  // must produce identical trees given the same seed.
  GridInstance gi = make_grid_instance(GetParam() * 97, 9, 9, 3, 7, 2.0);
  SolverOptions two = with_fc(gi);
  two.seed = 3;
  SolverOptions lazy = two;
  lazy.queue = QueueKind::kSingleLazy;
  const auto a = solve_cost_distance(gi.inst, two);
  const auto b = solve_cost_distance(gi.inst, lazy);
  EXPECT_DOUBLE_EQ(a.eval.objective, b.eval.objective);
  EXPECT_EQ(a.tree.nodes.size(), b.tree.nodes.size());
}

TEST_P(CostDistanceProperty, PooledStateIsInvisibleAcrossQueuesAndSeeds) {
  // The SearchStatePool (epoch-versioned recycled label arenas) is a pure
  // performance mechanism: recycled state must be indistinguishable from
  // freshly allocated state, for every queue organization and seed, down to
  // the exact tree edges and evaluation. A stale slot surviving an epoch
  // reset would show up here as a diverging tree.
  GridInstance gi = make_grid_instance(GetParam() * 271, 9, 8, 3,
                                       4 + GetParam() % 8, 2.0);
  for (const QueueKind queue : {QueueKind::kTwoLevel, QueueKind::kSingleLazy}) {
    SolverOptions pooled = with_fc(gi);
    pooled.seed = GetParam();
    pooled.queue = queue;
    SolverOptions unpooled = pooled;
    unpooled.pool_search_state = false;
    SolverOptions sparse = pooled;
    sparse.dense_state_budget_bytes = 0;  // force the sparse index fallback
    const auto a = solve_cost_distance(gi.inst, pooled);
    const auto b = solve_cost_distance(gi.inst, unpooled);
    const auto c = solve_cost_distance(gi.inst, pooled);  // pool reuse again
    const auto d = solve_cost_distance(gi.inst, sparse);
    EXPECT_DOUBLE_EQ(a.eval.objective, b.eval.objective);
    EXPECT_DOUBLE_EQ(a.eval.weighted_delay, b.eval.weighted_delay);
    EXPECT_EQ(a.tree.all_edges(), b.tree.all_edges());
    EXPECT_EQ(a.tree.all_edges(), c.tree.all_edges());
    EXPECT_EQ(a.tree.all_edges(), d.tree.all_edges());
    EXPECT_EQ(a.stats.labels_settled, b.stats.labels_settled);
    EXPECT_EQ(a.stats.labels_relaxed, b.stats.labels_relaxed);
    EXPECT_EQ(a.stats.labels_settled, d.stats.labels_settled);
  }
}

TEST(CostDistance, ManySinksLargeInstance) {
  // Smoke test at a size where all machinery (two-level heap, discounting,
  // A*, placement) is exercised hard.
  GridInstance gi = make_grid_instance(4242, 24, 24, 5, 48, 2.5);
  const auto r = solve_cost_distance(gi.inst, with_fc(gi));
  r.tree.validate(*gi.inst.graph, gi.inst.sinks.size());
  EXPECT_EQ(r.stats.iterations, 48u);
  EXPECT_GT(r.stats.labels_settled, 48u);
}

TEST(CostDistance, DuplicateSinkPositions) {
  GridInstance gi = make_grid_instance(9, 6, 6, 3, 4);
  // Force two sinks onto the same vertex and one onto the root.
  gi.inst.sinks[1].vertex = gi.inst.sinks[0].vertex;
  gi.inst.sinks[2].vertex = gi.inst.root;
  const auto r = solve_cost_distance(gi.inst, with_fc(gi));
  r.tree.validate(*gi.inst.graph, gi.inst.sinks.size());
}

TEST(CostDistance, EtaExtremesRespected) {
  // eta = 0: the heavy branch can take a zero share of the penalty;
  // eta = 0.5: the split is forced to be even. The evaluator's total
  // penalty must shrink monotonically as eta decreases.
  GridInstance gi = make_grid_instance(777, 8, 8, 3, 6, 5.0, 0.5);
  const auto half = solve_cost_distance(gi.inst, with_fc(gi));
  double prev = evaluate_tree(half.tree, gi.inst).total_delay_penalty;
  for (const double eta : {0.3, 0.1, 0.0}) {
    CostDistanceInstance relaxed = gi.inst;
    relaxed.eta = eta;
    const double pen = evaluate_tree(half.tree, relaxed).total_delay_penalty;
    EXPECT_LE(pen, prev + 1e-9) << "more split freedom cannot cost more";
    prev = pen;
  }
}

TEST(CostDistance, RandomPlacementVariesAcrossSeeds) {
  // With III-D off, line 7 picks the Steiner vertex position randomly in
  // proportion to the delay weights; over seeds the produced trees must not
  // all coincide (while each seed stays deterministic).
  GridInstance gi = make_grid_instance(31337, 10, 10, 3, 8, 0.0);
  SolverOptions o = with_fc(gi);
  o.better_steiner_placement = false;
  std::set<long long> distinct;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    o.seed = seed;
    const auto r = solve_cost_distance(gi.inst, o);
    distinct.insert(
        static_cast<long long>(r.eval.objective * 1e6));
  }
  EXPECT_GT(distinct.size(), 1u)
      << "randomized Steiner placement should produce varied trees";
}

TEST(CostDistance, BeatsEmbeddedBaselineUnderPenalties) {
  // The Table II property: with bifurcation penalties, the cost-distance
  // algorithm should beat the optimally embedded length-driven topology
  // (the "L1" baseline) in aggregate over an instance ensemble.
  double cd_sum = 0.0, l1_sum = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GridInstance gi = make_grid_instance(seed * 919, 9, 9, 3, 8, 4.0);
    SolverOptions o = with_fc(gi);
    cd_sum += solve_cost_distance(gi.inst, o).eval.objective;

    std::vector<PlaneTerminal> plane;
    for (const Terminal& t : gi.inst.sinks) {
      plane.push_back(PlaneTerminal{gi.grid->position(t.vertex).xy(),
                                    t.weight, 0.0});
    }
    const PlaneTopology topo =
        rsmt_topology(gi.grid->position(gi.inst.root).xy(), plane);
    l1_sum += embed_topology(topo, gi.inst).eval.objective;
  }
  EXPECT_LT(cd_sum, l1_sum)
      << "cost-distance should beat the embedded L1 topology with dbif > 0";
}

TEST(CostDistance, HeavySinksSitOnFasterPaths) {
  // With a strongly asymmetric weight, the heavy sink's delay should not
  // exceed the light sink's when both are geometrically symmetric.
  RoutingGrid grid(11, 3, make_default_layer_stack(4), ViaSpec{});
  FutureCost fc(grid);
  std::vector<double> cost = grid.base_costs();
  std::vector<double> delay = grid.edge_delays();
  CostDistanceInstance inst;
  inst.graph = &grid.graph();
  inst.cost = &cost;
  inst.delay = &delay;
  inst.root = grid.vertex_at(5, 1, 0);
  inst.sinks = {Terminal{grid.vertex_at(0, 1, 0), 10.0},
                Terminal{grid.vertex_at(10, 1, 0), 0.01}};
  SolverOptions o;
  o.future_cost = &fc;
  const auto r = solve_cost_distance(inst, o);
  EXPECT_LE(r.eval.sink_delays[0], r.eval.sink_delays[1] + 1e-9);
}

}  // namespace
}  // namespace cdst
