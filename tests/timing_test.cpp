// Tests for the RC repeater-chain model, dbif derivation and slack math.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "grid/routing_grid.h"
#include "timing/repeater_chain.h"
#include "timing/slack.h"

namespace cdst {
namespace {

TEST(RepeaterChain, OptimalSpacingMinimizesDelayPerUnit) {
  const WireRc wire{30.0, 180.0};
  const BufferSpec buf;
  const RepeaterChain chain = optimal_repeater_chain(wire, buf);
  EXPECT_GT(chain.spacing, 0.0);
  EXPECT_GT(chain.delay_per_gcell, 0.0);

  // One stage of length L: t(L) = t_b + R_b (c L + C_b) + r L (c L/2 + C_b).
  auto per_unit = [&](double len) {
    const double t = buf.intrinsic_delay +
                     kPsPerOhmFf * (buf.out_resistance *
                                        (wire.c_per_gcell * len +
                                         buf.in_capacitance) +
                                    wire.r_per_gcell * len *
                                        (wire.c_per_gcell * len / 2.0 +
                                         buf.in_capacitance));
    return t / len;
  };
  const double at_opt = per_unit(chain.spacing);
  EXPECT_NEAR(at_opt, chain.delay_per_gcell, 1e-9);
  // Perturbed spacings must not beat the optimum.
  EXPECT_GE(per_unit(chain.spacing * 0.7), at_opt);
  EXPECT_GE(per_unit(chain.spacing * 1.3), at_opt);
}

TEST(RepeaterChain, WiderWiresAreFaster) {
  const BufferSpec buf;
  const WireRc narrow{40.0, 180.0};
  const WireRc wide = narrow.scaled_by_width(2.0);
  EXPECT_LT(optimal_repeater_chain(wide, buf).delay_per_gcell,
            optimal_repeater_chain(narrow, buf).delay_per_gcell);
}

TEST(RepeaterChain, DbifPositiveAndMinimalOverLayers) {
  std::vector<LayerSpec> layers = make_default_layer_stack(6);
  const BufferSpec buf;
  const double dbif = compute_dbif(layers, buf);
  EXPECT_GT(dbif, 0.0);
  // dbif must equal the minimum mid-segment cap delay over buffable layers
  // and wire types.
  double expect = std::numeric_limits<double>::infinity();
  for (std::size_t z = 1; z < layers.size(); ++z) {
    const WireRc base{layers[z].r_per_gcell, layers[z].c_per_gcell};
    for (const WireType& wt : layers[z].wire_types) {
      expect = std::min(
          expect, mid_segment_cap_delay(base.scaled_by_width(wt.width), buf));
    }
  }
  EXPECT_DOUBLE_EQ(dbif, expect);
}

TEST(RepeaterChain, ApplyDelayModelMakesUpperLayersFaster) {
  std::vector<LayerSpec> layers = make_default_layer_stack(8);
  const double fastest = apply_linear_delay_model(layers, BufferSpec{});
  EXPECT_GT(fastest, 0.0);
  // Top layer must be at least as fast as the bottom layer.
  EXPECT_LE(layers.back().wire_types[0].delay_per_gcell,
            layers.front().wire_types[0].delay_per_gcell);
  double min_seen = std::numeric_limits<double>::infinity();
  for (const LayerSpec& l : layers) {
    for (const WireType& wt : l.wire_types) {
      min_seen = std::min(min_seen, wt.delay_per_gcell);
    }
  }
  EXPECT_DOUBLE_EQ(min_seen, fastest);
}

TEST(Slack, ComputeAndSummarize) {
  const std::vector<double> arrivals{10.0, 20.0, 30.0};
  const std::vector<double> rats{15.0, 15.0, 25.0};
  const auto slacks = compute_slacks(arrivals, rats);
  EXPECT_DOUBLE_EQ(slacks[0], 5.0);
  EXPECT_DOUBLE_EQ(slacks[1], -5.0);
  EXPECT_DOUBLE_EQ(slacks[2], -5.0);
  const TimingSummary s = summarize_slacks(slacks);
  EXPECT_DOUBLE_EQ(s.worst_slack, -5.0);
  EXPECT_DOUBLE_EQ(s.total_negative_slack, -10.0);
  EXPECT_EQ(s.num_violations, 2u);
}

TEST(Slack, WeightUpdateDirection) {
  std::vector<double> weights{1.0, 1.0, 1.0};
  const std::vector<double> slacks{-50.0, 0.0, 200.0};
  update_delay_weights(slacks, 25.0, 1e-4, 64.0, weights);
  EXPECT_GT(weights[0], 1.0) << "violating sinks must gain weight";
  EXPECT_LE(weights[1], 1.0);
  EXPECT_LT(weights[2], weights[1]) << "relaxed sinks decay";
  // Clamping.
  std::vector<double> w2{64.0};
  update_delay_weights({-1000.0}, 25.0, 1e-4, 64.0, w2);
  EXPECT_DOUBLE_EQ(w2[0], 64.0);
}

TEST(Slack, EmptyInputs) {
  const TimingSummary s = summarize_slacks({});
  EXPECT_DOUBLE_EQ(s.worst_slack, 0.0);
  EXPECT_EQ(s.num_violations, 0u);
}

}  // namespace
}  // namespace cdst
