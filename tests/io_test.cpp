// Tests for instance serialization, the table printer and the SVG emitter.
// Uses the deprecated one-shot solve wrapper on purpose (legacy coverage).
#define CDST_ALLOW_DEPRECATED

#include <gtest/gtest.h>

#include <sstream>

#include "core/cost_distance.h"
#include "grid/routing_grid.h"
#include "io/instance_io.h"
#include "io/svg.h"
#include "io/table.h"
#include "topology/rsmt.h"
#include "util/rng.h"

namespace cdst {
namespace {

TEST(InstanceIo, RoundTripPreservesSolution) {
  // Build a random instance, serialize, parse back, and compare solver
  // results on both.
  RoutingGrid grid(6, 6, make_default_layer_stack(3), ViaSpec{});
  Rng rng(31);
  std::vector<double> cost(grid.graph().num_edges());
  for (double& c : cost) c = rng.uniform_double(0.5, 5.0);
  std::vector<double> delay = grid.edge_delays();

  CostDistanceInstance inst;
  inst.graph = &grid.graph();
  inst.cost = &cost;
  inst.delay = &delay;
  inst.root = grid.vertex_at(0, 0, 0);
  inst.sinks = {Terminal{grid.vertex_at(5, 5, 0), 1.5},
                Terminal{grid.vertex_at(0, 5, 0), 0.25},
                Terminal{grid.vertex_at(5, 0, 0), 3.0}};
  inst.dbif = 2.5;
  inst.eta = 0.3;

  std::stringstream ss;
  write_instance(ss, inst);
  const OwnedInstance loaded = read_instance(ss);

  EXPECT_EQ(loaded.instance.root, inst.root);
  EXPECT_EQ(loaded.instance.sinks.size(), inst.sinks.size());
  EXPECT_DOUBLE_EQ(loaded.instance.dbif, inst.dbif);
  EXPECT_DOUBLE_EQ(loaded.instance.eta, inst.eta);
  EXPECT_EQ(loaded.graph->num_edges(), grid.graph().num_edges());

  SolverOptions opts;  // no future cost: generic-graph path, deterministic
  opts.seed = 4;
  const auto a = solve_cost_distance(inst, opts);
  const auto b = solve_cost_distance(loaded.instance, opts);
  EXPECT_DOUBLE_EQ(a.eval.objective, b.eval.objective);
}

TEST(InstanceIo, RejectsGarbage) {
  std::stringstream ss("this is not an instance");
  EXPECT_THROW(read_instance(ss), ContractViolation);
}

TEST(Table, AlignsAndFormats) {
  TextTable t({"Chip", "Run", "WS", "Vias"});
  t.add_row({"c1", "CD", "-49", fmt_count(547240)});
  t.add_row({"c2", "L1", "-82", fmt_count(864387)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Chip"), std::string::npos);
  EXPECT_NE(s.find("547 240"), std::string::npos);
  EXPECT_NE(s.find("864 387"), std::string::npos);
  // Rows align: every line has the same length.
  std::istringstream is(s);
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_NEAR(static_cast<double>(line.size()), static_cast<double>(len),
                2.0);
  }
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(941271), "941 271");
  EXPECT_EQ(fmt_count(-1633), "-1 633");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Svg, EmitsTopologyAndTree) {
  Rect extent;
  extent.expand(Point2{0, 0});
  extent.expand(Point2{10, 10});
  SvgCanvas canvas(extent);

  std::vector<PlaneTerminal> sinks{{Point2{10, 0}, 1.0, 0.0},
                                   {Point2{0, 10}, 1.0, 0.0}};
  const PlaneTopology topo = rsmt_topology(Point2{0, 0}, sinks);
  draw_topology(canvas, topo, "blue");
  const std::string s = canvas.to_string();
  EXPECT_NE(s.find("<svg"), std::string::npos);
  EXPECT_NE(s.find("<line"), std::string::npos);
  EXPECT_NE(s.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace cdst
