// Tests for the fault-tolerance layer: the deterministic fault-site
// registry (util/fault_injection.h), deadline propagation and the
// cancel_poll_interval zero-handling regression, checkpoint/restore of
// Router round state, and — in CDST_FAULT_INJECTION builds — the fault
// SWEEP: every site in the manifest below is armed in turn and each engine
// call must either fail with a clean typed Status or succeed bit-identically
// to a fault-free run, with the session usable afterwards.
//
// kFaultSiteManifest is the pinned universe of injection sites.
// scripts/check_invariants.py (rule `fault-site`) fails the tree when a
// CDST_FAULT_POINT exists in src/ whose name is not listed here, so the
// sweep can never silently under-cover.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "api/cdst.h"
#include "api/engine.h"
#include "api/scratch_pool.h"
#include "dist/transport.h"
#include "serve/serve.h"
#include "grid/future_cost.h"
#include "grid/routing_grid.h"
#include "route/netlist_gen.h"
#include "stress.h"
#include "test_instances.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace cdst {
namespace {

using testutil::GridInstance;
using testutil::expect_same;
using testutil::make_grid_instance;
using testutil::stress_light;

// The sweep manifest: every CDST_FAULT_POINT site compiled into src/.
constexpr const char* kFaultSiteManifest[] = {
    "arcplane.assign",
    "dist.transport",
    "pool.task",
    "router.shard",
    "serve.admit",
    "solver.budget_reserve",
    "stream.dispatch",
};

/// Smaller than testutil::tiny_chip(): the sweep and the restore matrix run
/// many full router sessions, so the per-run cost matters more than grid
/// variety here.
ChipConfig small_chip() {
  ChipConfig c;
  c.name = "fault-sweep";
  c.num_nets = 24;
  c.num_layers = 3;
  c.nx = c.ny = 12;
  c.capacity = 8.0;
  c.seed = 7;
  return c;
}

RouterOptions sweep_router_options() {
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.seed = 5;
  opts.threads = 2;
  opts.shards = 4;
  return opts;
}

/// Router-result bit-identity (routes, delays, multipliers).
void expect_same_routing(const RouterResult& got, const RouterResult& want) {
  ASSERT_EQ(got.routes.size(), want.routes.size());
  for (std::size_t i = 0; i < got.routes.size(); ++i) {
    EXPECT_EQ(got.routes[i], want.routes[i]) << "net " << i;
  }
  ASSERT_EQ(got.sink_delays.size(), want.sink_delays.size());
  for (std::size_t s = 0; s < got.sink_delays.size(); ++s) {
    EXPECT_DOUBLE_EQ(got.sink_delays[s], want.sink_delays[s]) << "sink " << s;
    EXPECT_DOUBLE_EQ(got.sink_weights[s], want.sink_weights[s])
        << "sink " << s;
  }
}

struct JobFixture {
  std::vector<std::unique_ptr<GridInstance>> gis;
  std::vector<CdSolver::Job> jobs;
};

JobFixture make_jobs(std::size_t count) {
  JobFixture f;
  for (std::uint64_t s = 1; s <= count; ++s) {
    f.gis.push_back(make_grid_instance(s * 71, 9, 8, 3, 2 + s % 7));
  }
  for (std::size_t i = 0; i < f.gis.size(); ++i) {
    CdSolver::Job job;
    job.instance = &f.gis[i]->inst;
    job.future_cost = f.gis[i]->fc.get();
    job.seed = i + 1;
    f.jobs.push_back(job);
  }
  return f;
}

// ------------------------------------------------------- registry semantics

TEST(FaultRegistry, NthHitFiresOnceThenSelfDisarms) {
  FaultRegistry& reg = FaultRegistry::instance();
  detail::FaultSite* site = reg.register_site("test.registry.nth");
  FaultPolicy policy;
  policy.trigger = FaultPolicy::Trigger::kNthHit;
  policy.n = 2;
  reg.arm("test.registry.nth", policy);

  EXPECT_NO_THROW(site->hit());                 // hit 1 of 2
  EXPECT_THROW(site->hit(), InjectedFault);     // hit 2 fires...
  EXPECT_NO_THROW(site->hit());                 // ...and self-disarmed
  EXPECT_NO_THROW(site->hit());
  EXPECT_EQ(reg.fired("test.registry.nth"), 1u);
  EXPECT_GE(reg.hits("test.registry.nth"), 4u);
  reg.disarm_all();
}

TEST(FaultRegistry, EveryKFiresPersistently) {
  FaultRegistry& reg = FaultRegistry::instance();
  detail::FaultSite* site = reg.register_site("test.registry.everyk");
  FaultPolicy policy;
  policy.trigger = FaultPolicy::Trigger::kEveryK;
  policy.n = 2;
  reg.arm("test.registry.everyk", policy);

  for (int round = 0; round < 3; ++round) {
    EXPECT_NO_THROW(site->hit()) << "round " << round;
    EXPECT_THROW(site->hit(), InjectedFault) << "round " << round;
  }
  EXPECT_EQ(reg.fired("test.registry.everyk"), 3u);
  reg.disarm("test.registry.everyk");
  EXPECT_NO_THROW(site->hit());
}

TEST(FaultRegistry, ProbabilityExtremesAreDeterministic) {
  FaultRegistry& reg = FaultRegistry::instance();
  detail::FaultSite* site = reg.register_site("test.registry.prob");
  FaultPolicy policy;
  policy.trigger = FaultPolicy::Trigger::kProbability;
  policy.probability = 0.0;
  policy.seed = 42;
  reg.arm("test.registry.prob", policy);
  for (int i = 0; i < 50; ++i) EXPECT_NO_THROW(site->hit());

  policy.probability = 1.0;
  reg.arm("test.registry.prob", policy);
  for (int i = 0; i < 5; ++i) EXPECT_THROW(site->hit(), InjectedFault);
  reg.disarm_all();
}

TEST(FaultRegistry, ExceptionNamesTheSite) {
  FaultRegistry& reg = FaultRegistry::instance();
  detail::FaultSite* site = reg.register_site("test.registry.named");
  reg.arm("test.registry.named", FaultPolicy{});
  try {
    site->hit();
    FAIL() << "armed nth-hit(1) site did not fire";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.site(), "test.registry.named");
  }
  reg.disarm_all();
}

TEST(FaultRegistry, ArmRegistersUnknownSitesAndSitesAreSorted) {
  FaultRegistry& reg = FaultRegistry::instance();
  reg.arm("test.registry.zzz-unseen", FaultPolicy{});
  reg.disarm_all();
  const std::vector<std::string> names = reg.sites();
  bool found = false;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "test.registry.zzz-unseen") found = true;
    if (i > 0) EXPECT_LE(names[i - 1], names[i]);
  }
  EXPECT_TRUE(found);
}

// -------------------------------------------- cancel_poll_interval == 0 fix

TEST(RunControl, ZeroPollIntervalMeansTheDefault) {
  RunControl control;
  control.cancel_poll_interval = 0;
  EXPECT_EQ(detail::make_solve_controls(control).cancel_poll_interval,
            kDefaultCancelPollInterval);
  control.cancel_poll_interval = 7;
  EXPECT_EQ(detail::make_solve_controls(control).cancel_poll_interval, 7u);
}

TEST(RunControl, ZeroPollIntervalSolveStillCancelsAndCompletes) {
  const auto gi = make_grid_instance(11, 10, 9, 3, 7);
  SolverOptions opts;
  opts.future_cost = gi->fc.get();
  CdSolver solver(opts);

  // Pre-cancelled token + interval 0: the solve must still observe the
  // cancellation (a zero interval must never mean "never poll").
  CancelToken cancelled;
  cancelled.request_cancel();
  RunControl control;
  control.cancel = &cancelled;
  control.cancel_poll_interval = 0;
  const StatusOr<SolveResult> r = solver.solve(gi->inst, control);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);

  // Uncancelled + interval 0: completes, bit-identical to the default.
  RunControl zero;
  zero.cancel_poll_interval = 0;
  const StatusOr<SolveResult> a = solver.solve(gi->inst, zero);
  const StatusOr<SolveResult> b = solver.solve(gi->inst);
  ASSERT_TRUE(a.ok() && b.ok());
  expect_same(*a, *b, 0, "zero-interval solve");
}

// ----------------------------------------------------------------- deadline

TEST(Deadline, ExpiredSolveDeadlineReturnsTypedStatus) {
  const auto gi = make_grid_instance(21, 10, 9, 3, 7);
  SolverOptions opts;
  opts.future_cost = gi->fc.get();
  CdSolver solver(opts);

  RunControl control;
  control.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  control.cancel_poll_interval = 1;  // poll every pop: tiny instances too
  const StatusOr<SolveResult> r = solver.solve(gi->inst, control);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);

  // The session survives a deadline miss; a generous deadline succeeds and
  // matches an uncontrolled solve bit-identically.
  RunControl generous;
  generous.deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(10);
  const StatusOr<SolveResult> ok = solver.solve(gi->inst, generous);
  const StatusOr<SolveResult> plain = solver.solve(gi->inst);
  ASSERT_TRUE(ok.ok() && plain.ok());
  expect_same(*ok, *plain, 0, "deadline solve");
}

TEST(Deadline, ExpiredBatchAndStreamDeadlinesFailPerJob) {
  const JobFixture f = make_jobs(4);
  ThreadPool pool(2);
  CdSolver solver({}, &pool);
  RunControl expired;
  expired.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  expired.cancel_poll_interval = 1;

  const auto batch =
      solver.solve_batch(std::span<const CdSolver::Job>(f.jobs), expired);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kDeadlineExceeded);

  SolveStream stream = solver.stream({}, expired);
  for (const CdSolver::Job& job : f.jobs) {
    ASSERT_TRUE(stream.submit(job).ok());
  }
  std::size_t failed = 0;
  for (StatusOr<SolveResult>& r : stream.drain()) {
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
      ++failed;
    }
  }
  EXPECT_EQ(failed, f.jobs.size());
}

TEST(Deadline, RouterDeadlineStopsAtRoundBoundaryAndSessionRecovers) {
  const ChipConfig c = small_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  const RouterOptions opts = sweep_router_options();

  Router ref(grid, nl, opts);
  ASSERT_TRUE(ref.run(2).ok());
  const RouterResult want = ref.result();

  Router session(grid, nl, opts);
  RunControl expired;
  expired.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  const Status st = session.run(2, expired);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(session.rounds_completed(), 0);

  // Same partial-progress contract as cancellation: the session continues
  // cleanly and lands bit-identically on the uninterrupted result.
  ASSERT_TRUE(session.run(2).ok());
  expect_same_routing(session.result(), want);

  RunControl generous;
  generous.deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(10);
  Router timed(grid, nl, opts);
  ASSERT_TRUE(timed.run(2, generous).ok());
  expect_same_routing(timed.result(), want);
}

// ------------------------------------------------------------ strict budget

TEST(Budget, StrictSharedBudgetYieldsResourceExhausted) {
  const ChipConfig c = small_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts = sweep_router_options();
  // A one-byte shared budget cannot hold any dense footprint. The default
  // (lenient) mode falls back to sparse state and succeeds; strict mode
  // must surface the structural misconfiguration as kResourceExhausted.
  opts.oracle.cd.dense_state_budget_bytes = 1;

  Router lenient(grid, nl, opts);
  EXPECT_TRUE(lenient.run(1).ok());

  opts.oracle.cd.strict_shared_budget = true;
  Router strict(grid, nl, opts);
  const Status st = strict.run(1);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(strict.rounds_completed(), 0);
}

// ------------------------------------------------------ checkpoint/restore

TEST(RouterCheckpointTest, ResumesBitIdenticallyAndBytesRoundTrip) {
  const ChipConfig c = small_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  const RouterOptions opts = sweep_router_options();

  Router ref(grid, nl, opts);
  ASSERT_TRUE(ref.run(4).ok());
  const RouterResult want = ref.result();

  Router half(grid, nl, opts);
  ASSERT_TRUE(half.run(2).ok());
  const RouterCheckpoint cp = half.checkpoint();
  EXPECT_EQ(cp.rounds_done, 2);

  // Wire round trip, then resume a fresh session from the parsed bytes.
  const std::vector<std::uint8_t> bytes = cp.to_bytes();
  const StatusOr<RouterCheckpoint> parsed =
      RouterCheckpoint::from_bytes(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();

  Router resumed(grid, nl, opts);
  ASSERT_TRUE(resumed.restore(*parsed).ok());
  EXPECT_EQ(resumed.rounds_completed(), 2);
  ASSERT_TRUE(resumed.run(2).ok());
  expect_same_routing(resumed.result(), want);
}

TEST(RouterCheckpointTest, RejectsCorruptAndMismatchedInput) {
  const ChipConfig c = small_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  const RouterOptions opts = sweep_router_options();
  Router session(grid, nl, opts);
  ASSERT_TRUE(session.run(1).ok());
  const RouterCheckpoint cp = session.checkpoint();
  const std::vector<std::uint8_t> bytes = cp.to_bytes();

  // Empty / truncated / bad magic all fail parsing cleanly.
  EXPECT_EQ(RouterCheckpoint::from_bytes({}).status().code(),
            StatusCode::kInvalidArgument);
  const std::span<const std::uint8_t> truncated(bytes.data(),
                                                bytes.size() / 2);
  EXPECT_EQ(RouterCheckpoint::from_bytes(truncated).status().code(),
            StatusCode::kInvalidArgument);
  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(RouterCheckpoint::from_bytes(bad_magic).status().code(),
            StatusCode::kInvalidArgument);

  // A seed mismatch is a precondition failure (wrong session), not a
  // malformed checkpoint; the session must be left unchanged.
  RouterCheckpoint wrong_seed = cp;
  wrong_seed.options_seed ^= 1;
  Router other(grid, nl, opts);
  EXPECT_EQ(other.restore(wrong_seed).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(other.rounds_completed(), 0);

  // Out-of-range route edges and broken offset shapes are rejected.
  RouterCheckpoint bad_edge = cp;
  if (!bad_edge.route_edges.empty()) {
    bad_edge.route_edges[0] =
        static_cast<std::uint32_t>(grid.graph().num_edges());
    EXPECT_EQ(other.restore(bad_edge).code(), StatusCode::kInvalidArgument);
  }
  RouterCheckpoint bad_offsets = cp;
  bad_offsets.route_offsets.pop_back();
  EXPECT_EQ(other.restore(bad_offsets).code(), StatusCode::kInvalidArgument);
  RouterCheckpoint bad_rounds = cp;
  bad_rounds.weights_round = bad_rounds.rounds_done + 1;
  EXPECT_EQ(other.restore(bad_rounds).code(), StatusCode::kInvalidArgument);

  // After all the rejections the pristine session still works.
  ASSERT_TRUE(other.restore(cp).ok());
  ASSERT_TRUE(other.run(1).ok());
}

#ifdef CDST_FAULT_INJECTION

// ------------------------------------------------------------- fault sweep

/// Records fault events (api/events.h) so the sweep can assert retries are
/// observable.
struct FaultRecorder final : EventSink {
  std::vector<FaultEvent> faults;
  void on_fault(const FaultEvent& event) override {
    faults.push_back(event);
  }
};

TEST(FaultSweep, ManifestSitesAllRegisterAndFire) {
  // Drive every engine surface once with nothing armed: each executed
  // CDST_FAULT_POINT registers itself, so afterwards the registry must know
  // every manifest site (the fault-site lint rule pins the reverse
  // direction: no site exists outside the manifest).
  FaultRegistry& reg = FaultRegistry::instance();
  reg.disarm_all();

  const ChipConfig c = small_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  Router session(grid, nl, sweep_router_options());
  ASSERT_TRUE(session.run(1).ok());

  // A transport-backed sharded round is the only surface that executes the
  // "dist.transport" site.
  {
    dist::InProcessTransport transport;
    RouterOptions topts = sweep_router_options();
    topts.transport = &transport;
    Router tsession(grid, nl, topts);
    ASSERT_TRUE(tsession.run(1).ok());
  }

  const JobFixture f = make_jobs(2);
  ThreadPool pool(2);
  CdSolver solver({}, &pool);
  ASSERT_TRUE(
      solver.solve_batch(std::span<const CdSolver::Job>(f.jobs)).ok());
  {
    SolveStream stream = solver.stream();
    ASSERT_TRUE(stream.submit(f.jobs[0]).ok());
    for (StatusOr<SolveResult>& r : stream.drain()) ASSERT_TRUE(r.ok());
  }

  // A serving-core admission is the only surface that executes the
  // "serve.admit" site.
  {
    Engine engine(EngineOptions{2, 64u << 20});
    serve::EngineServer server(engine, {});
    const StatusOr<serve::SessionId> id =
        server.open_router_session(grid, nl, sweep_router_options());
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(server.submit_rounds(id.value(), 1).ok());
    ASSERT_TRUE(server.run_until_idle().ok());
  }

  const std::vector<std::string> registered = reg.sites();
  for (const char* site : kFaultSiteManifest) {
    bool found = false;
    for (const std::string& name : registered) {
      if (name == site) found = true;
    }
    EXPECT_TRUE(found) << "manifest site never registered: " << site;
    EXPECT_GE(reg.hits(site), 1u) << "manifest site never hit: " << site;
  }
}

TEST(FaultSweep, EverySiteGivesCleanStatusOrBitIdenticalResult) {
  const ChipConfig c = small_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  const RouterOptions opts = sweep_router_options();
  FaultRegistry& reg = FaultRegistry::instance();
  reg.disarm_all();
  reg.reset_counters();

  // Fault-free references for every workload the sweep drives.
  Router ref(grid, nl, opts);
  ASSERT_TRUE(ref.run(2).ok());
  const RouterResult want = ref.result();

  const JobFixture f = make_jobs(4);
  ThreadPool pool(2);
  std::vector<SolveResult> batch_want;
  {
    CdSolver solver({}, &pool);
    const auto r = solver.solve_batch(std::span<const CdSolver::Job>(f.jobs));
    ASSERT_TRUE(r.ok());
    batch_want = *r;
  }

  for (const char* site : kFaultSiteManifest) {
    SCOPED_TRACE(site);
    const FaultPolicy transient;  // nth-hit(1): fires once, self-disarms

    // Router workload: a transient fault either never reaches this
    // workload's code paths (clean OK), is absorbed by the sharded retry
    // (clean OK), or surfaces as kUnavailable — never a crash, never a
    // corrupted session.
    reg.arm(site, transient);
    Router session(grid, nl, opts);
    const Status st = session.run(2);
    reg.disarm_all();
    if (st.ok()) {
      expect_same_routing(session.result(), want);
    } else {
      EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.to_string();
      // Session reusable after the failure: finish the remaining rounds
      // fault-free and land on the uninterrupted result.
      ASSERT_TRUE(session.run(2 - session.rounds_completed()).ok());
      expect_same_routing(session.result(), want);
    }

    // Batch workload: all-or-nothing surface; a fault is a typed failure.
    reg.arm(site, transient);
    {
      CdSolver solver({}, &pool);
      const auto r =
          solver.solve_batch(std::span<const CdSolver::Job>(f.jobs));
      if (r.ok()) {
        ASSERT_EQ(r->size(), batch_want.size());
        for (std::size_t i = 0; i < r->size(); ++i) {
          expect_same((*r)[i], batch_want[i], i, "sweep batch");
        }
      } else {
        EXPECT_EQ(r.status().code(), StatusCode::kUnavailable)
            << r.status().to_string();
      }
    }
    reg.disarm_all();

    // Transport workload: the same sharded rounds routed through an
    // InProcessTransport — the only surface that reaches "dist.transport",
    // and for every other site an extra pass over the transport-backed
    // round. Bit-identity against the direct-round reference is the
    // transport layer's core claim.
    reg.arm(site, transient);
    {
      dist::InProcessTransport transport;
      RouterOptions topts = opts;
      topts.transport = &transport;
      Router tsession(grid, nl, topts);
      const Status tst = tsession.run(2);
      reg.disarm_all();
      if (tst.ok()) {
        expect_same_routing(tsession.result(), want);
      } else {
        EXPECT_EQ(tst.code(), StatusCode::kUnavailable) << tst.to_string();
        ASSERT_TRUE(tsession.run(2 - tsession.rounds_completed()).ok());
        expect_same_routing(tsession.result(), want);
      }
    }

    // Stream workload: per-job surface; at most the faulted jobs fail, the
    // stream itself stays deliverable in submission order.
    reg.arm(site, transient);
    {
      CdSolver solver({}, &pool);
      SolveStream stream = solver.stream();
      for (const CdSolver::Job& job : f.jobs) {
        ASSERT_TRUE(stream.submit(job).ok());
      }
      std::vector<StatusOr<SolveResult>> results = stream.drain();
      ASSERT_EQ(results.size(), f.jobs.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].ok()) {
          expect_same(*results[i], batch_want[i], i, "sweep stream");
        } else {
          EXPECT_EQ(results[i].status().code(), StatusCode::kUnavailable)
              << results[i].status().to_string();
        }
      }
    }
    reg.disarm_all();

    // Serve workload: a two-tenant schedule over the serving core — the
    // only surface that reaches "serve.admit". An injected admission fault
    // surfaces as clean kUnavailable from open with the registry untouched
    // (committed state intact: the session count is exactly the successful
    // opens); a fault inside a slice pauses only its tenant with a typed
    // status, and the paused session resumes bit-identically.
    reg.arm(site, transient);
    {
      Engine engine(EngineOptions{2, 64u << 20});
      serve::EngineServer server(engine, {});
      std::vector<serve::SessionId> ids;
      for (int tenant = 0; tenant < 2; ++tenant) {
        StatusOr<serve::SessionId> id =
            server.open_router_session(grid, nl, opts);
        if (!id.ok()) {
          EXPECT_EQ(id.status().code(), StatusCode::kUnavailable)
              << id.status().to_string();
          EXPECT_EQ(server.stats().sessions_open, ids.size())
              << "failed admission must leave the registry untouched";
          reg.disarm_all();  // the nth-hit policy already self-disarmed
          id = server.open_router_session(grid, nl, opts);
          ASSERT_TRUE(id.ok()) << id.status().to_string();
        }
        ids.push_back(id.value());
        ASSERT_TRUE(server.submit_rounds(id.value(), 2).ok());
      }
      ASSERT_TRUE(server.run_until_idle().ok());
      for (const serve::SessionId sid : ids) {
        const Status tenant_status = server.session_status(sid);
        if (!tenant_status.ok()) {
          EXPECT_EQ(tenant_status.code(), StatusCode::kUnavailable)
              << tenant_status.to_string();
          reg.disarm_all();
          ASSERT_TRUE(server.resume(sid).ok());
          ASSERT_TRUE(server.run_until_idle().ok());
          EXPECT_TRUE(server.session_status(sid).ok());
        }
        expect_same_routing(server.result(sid).value(), want);
      }
    }
    reg.disarm_all();
  }

  // The sweep must have actually exercised every site: a site that never
  // fired was armed but unreachable, i.e. the sweep under-covers.
  for (const char* site : kFaultSiteManifest) {
    EXPECT_GE(reg.fired(site), 1u) << "sweep never fired site: " << site;
  }
}

TEST(FaultSweep, ShardRetryRecoversBitIdenticallyAndEmitsFaultEvents) {
  const ChipConfig c = small_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  const RouterOptions opts = sweep_router_options();
  FaultRegistry& reg = FaultRegistry::instance();
  reg.disarm_all();

  Router ref(grid, nl, opts);
  ASSERT_TRUE(ref.run(2).ok());
  const RouterResult want = ref.result();

  // Transient shard fault: attempt 1 fails, the serial retry completes the
  // round, and the result is bit-identical — the retry is observable only
  // through the FaultEvent.
  reg.arm("router.shard", FaultPolicy{});
  FaultRecorder recorder;
  RunControl control;
  control.events = &recorder;
  Router session(grid, nl, opts);
  ASSERT_TRUE(session.run(2, control).ok());
  reg.disarm_all();
  expect_same_routing(session.result(), want);

  ASSERT_EQ(recorder.faults.size(), 1u);
  EXPECT_STREQ(recorder.faults[0].stage, "router_shard");
  EXPECT_EQ(recorder.faults[0].attempt, 1);
  EXPECT_TRUE(recorder.faults[0].retrying);
  EXPECT_EQ(recorder.faults[0].status, StatusCode::kUnavailable);
}

TEST(FaultSweep, PersistentShardFaultExhaustsRetriesThenSessionRecovers) {
  const ChipConfig c = small_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  const RouterOptions opts = sweep_router_options();
  FaultRegistry& reg = FaultRegistry::instance();
  reg.disarm_all();

  Router ref(grid, nl, opts);
  ASSERT_TRUE(ref.run(2).ok());
  const RouterResult want = ref.result();

  FaultPolicy persistent;
  persistent.trigger = FaultPolicy::Trigger::kEveryK;
  persistent.n = 1;  // every hit: all bounded retries fail
  reg.arm("router.shard", persistent);
  FaultRecorder recorder;
  RunControl control;
  control.events = &recorder;
  Router session(grid, nl, opts);
  const Status st = session.run(2, control);
  reg.disarm_all();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(session.rounds_completed(), 0) << "no partial round committed";

  ASSERT_EQ(recorder.faults.size(), 3u) << "one event per failed attempt";
  for (int attempt = 1; attempt <= 3; ++attempt) {
    EXPECT_EQ(recorder.faults[attempt - 1].attempt, attempt);
    EXPECT_EQ(recorder.faults[attempt - 1].retrying, attempt < 3);
  }

  // The give-up left committed state at the previous barrier; the same
  // session finishes fault-free and matches the uninterrupted run.
  ASSERT_TRUE(session.run(2).ok());
  expect_same_routing(session.result(), want);
}

TEST(FaultSweep, CrashCheckpointRestoreMatrixIsBitIdentical) {
  // The PR's acceptance matrix: crash-inject mid-run, checkpoint the
  // survivor, restore into a fresh session, finish, and compare to an
  // uninterrupted reference — across thread and shard counts.
  const ChipConfig c = small_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  FaultRegistry& reg = FaultRegistry::instance();
  reg.disarm_all();

  RouterOptions base = sweep_router_options();
  base.threads = 1;
  base.shards = 1;
  Router ref(grid, nl, base);
  ASSERT_TRUE(ref.run(4).ok());
  const RouterResult want = ref.result();

  const std::vector<int> thread_counts =
      stress_light() ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  for (const int threads : thread_counts) {
    for (const int shards : {1, 4}) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " shards=" << shards);
      RouterOptions opts = base;
      opts.threads = threads;
      opts.shards = shards;

      Router victim(grid, nl, opts);
      ASSERT_TRUE(victim.run(2).ok());
      // Crash round 3 with a persistent fault (all retries exhausted).
      FaultPolicy persistent;
      persistent.trigger = FaultPolicy::Trigger::kEveryK;
      persistent.n = 1;
      reg.arm("router.shard", persistent);
      const Status st = victim.run(2);
      reg.disarm_all();
      ASSERT_FALSE(st.ok());
      ASSERT_EQ(victim.rounds_completed(), 2);

      // Serialize across the "process boundary" and resume elsewhere.
      const StatusOr<RouterCheckpoint> cp =
          RouterCheckpoint::from_bytes(victim.checkpoint().to_bytes());
      ASSERT_TRUE(cp.ok()) << cp.status().to_string();
      Router resumed(grid, nl, opts);
      ASSERT_TRUE(resumed.restore(*cp).ok());
      ASSERT_TRUE(resumed.run(2).ok());
      expect_same_routing(resumed.result(), want);
    }
  }
}

#endif  // CDST_FAULT_INJECTION

}  // namespace
}  // namespace cdst
