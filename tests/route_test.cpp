// Tests for the timing-constrained global router substrate: netlist
// generation, per-net oracles, metrics, and the Lagrangean routing loop.
//
// Intentionally exercises the deprecated route_chip / route_net wrappers
// (api_test covers the session API), keeping the legacy surface under test
// until it is removed.
#define CDST_ALLOW_DEPRECATED

#include <gtest/gtest.h>

#include "route/metrics.h"
#include "route/netlist_gen.h"
#include "route/router.h"
#include "route/steiner_oracle.h"

namespace cdst {
namespace {

ChipConfig tiny_chip() {
  ChipConfig c;
  c.name = "tiny";
  c.num_nets = 60;
  c.num_layers = 4;
  c.nx = c.ny = 20;
  c.capacity = 10.0;
  c.seed = 7;
  return c;
}

TEST(NetlistGen, PaperChipTableShape) {
  const auto chips = paper_chip_configs(0.01);
  ASSERT_EQ(chips.size(), 8u);
  EXPECT_EQ(chips[0].name, "c1");
  EXPECT_EQ(chips[7].name, "c8");
  // Layer counts straight from Table III.
  const int expected_layers[] = {8, 9, 7, 15, 9, 9, 15, 15};
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(chips[i].num_layers, expected_layers[i]);
  }
  // Scaled net counts keep the ordering of Table III.
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_GE(chips[i].num_nets, chips[i - 1].num_nets * 99 / 100);
  }
}

TEST(NetlistGen, DeterministicAndInBounds) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist a = generate_netlist(c, grid);
  const Netlist b = generate_netlist(c, grid);
  ASSERT_EQ(a.nets.size(), c.num_nets);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    EXPECT_EQ(a.nets[i].source, b.nets[i].source);
    ASSERT_EQ(a.nets[i].sinks.size(), b.nets[i].sinks.size());
    EXPECT_GE(a.nets[i].sinks.size(), 1u);
    for (std::size_t s = 0; s < a.nets[i].sinks.size(); ++s) {
      const SinkPin& pin = a.nets[i].sinks[s];
      EXPECT_EQ(pin.pos, b.nets[i].sinks[s].pos);
      EXPECT_GE(pin.pos.x, 0);
      EXPECT_LT(pin.pos.x, c.nx);
      EXPECT_GE(pin.pos.y, 0);
      EXPECT_LT(pin.pos.y, c.ny);
      EXPECT_EQ(pin.pos.z, 0);
      EXPECT_GT(pin.rat, 0.0);
    }
  }
}

TEST(NetlistGen, SizeDistributionHasMultiSinkTail) {
  ChipConfig c = tiny_chip();
  c.num_nets = 4000;
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  std::size_t small = 0, large = 0;
  for (const Net& n : nl.nets) {
    if (n.sinks.size() <= 2) ++small;
    if (n.sinks.size() >= 15) ++large;
  }
  EXPECT_GT(small, nl.nets.size() / 2);
  EXPECT_GT(large, nl.nets.size() / 200);
  EXPECT_LT(large, nl.nets.size() / 5);
}

TEST(SteinerOracle, AllMethodsRouteAndCommitUsage) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  CongestionCosts costs(grid);

  // Pick a multi-sink net.
  const Net* net = nullptr;
  for (const Net& n : nl.nets) {
    if (n.sinks.size() >= 4) {
      net = &n;
      break;
    }
  }
  ASSERT_NE(net, nullptr);
  const std::vector<double> weights(net->sinks.size(), 0.01);

  OracleParams params;
  params.dbif = 2.0;
  for (const SteinerMethod m : all_methods()) {
    const OracleOutcome out = route_net(grid, costs, *net, weights, m, params);
    EXPECT_FALSE(out.grid_edges.empty()) << method_name(m);
    EXPECT_EQ(out.eval.sink_delays.size(), net->sinks.size());
    for (const double d : out.eval.sink_delays) EXPECT_GE(d, 0.0);
    // Usage commit + rip-up must round-trip to zero.
    costs.add_usage(out.grid_edges, +1.0);
    costs.add_usage(out.grid_edges, -1.0);
  }
  for (ResourceId r = 0; r < costs.num_resources(); ++r) {
    EXPECT_DOUBLE_EQ(costs.usage(r), 0.0);
  }
}

TEST(SteinerOracle, InstanceMapsPinsIntoWindow) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  CongestionCosts costs(grid);
  const Net& net = nl.nets[0];
  const std::vector<double> weights(net.sinks.size(), 1.0);
  OracleParams params;
  const OracleInstance oi(grid, costs, net, weights, params);
  EXPECT_EQ(oi.instance().sinks.size(), net.sinks.size());
  EXPECT_EQ(oi.window().to_grid_vertex(oi.instance().root),
            grid.vertex_at(net.source));
  for (std::size_t s = 0; s < net.sinks.size(); ++s) {
    EXPECT_EQ(oi.window().to_grid_vertex(oi.instance().sinks[s].vertex),
              grid.vertex_at(net.sinks[s].pos));
  }
}

TEST(Metrics, AceOfUniformCongestion) {
  const RoutingGrid grid(8, 8, make_default_layer_stack(3), ViaSpec{});
  CongestionCosts costs(grid);
  // Push every wire resource to exactly half utilization.
  for (EdgeId e = 0; e < grid.graph().num_edges(); ++e) {
    const auto& info = grid.edge_info(e);
    if (info.is_via || info.wire_type != 0) continue;
    const double cap = grid.resource_capacity(info.resource);
    std::vector<EdgeId> one{e};
    const int steps = static_cast<int>(cap / (2.0 * info.width));
    for (int i = 0; i < steps; ++i) costs.add_usage(one, +1.0);
  }
  const CongestionReport rep = compute_ace(costs);
  // All wire utilizations are ~50% (rounded down by integral steps).
  EXPECT_GT(rep.ace4, 35.0);
  EXPECT_LE(rep.ace4, 51.0);
  EXPECT_EQ(rep.overfull_edges, 0u);
}

TEST(Metrics, WireStatsSeparateViasFromWires) {
  const RoutingGrid grid(5, 5, make_default_layer_stack(3), ViaSpec{});
  std::vector<EdgeId> edges;
  std::size_t exp_vias = 0, exp_wires = 0;
  for (EdgeId e = 0; e < grid.graph().num_edges() && edges.size() < 30; ++e) {
    edges.push_back(e);
    if (grid.edge_info(e).is_via) {
      ++exp_vias;
    } else {
      ++exp_wires;
    }
  }
  const WireStats s = compute_wire_stats(grid, {edges});
  EXPECT_EQ(s.num_vias, exp_vias);
  EXPECT_DOUBLE_EQ(s.wirelength_gcells, static_cast<double>(exp_wires));
}

TEST(Router, RoutesTinyChipWithEveryMethod) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  for (const SteinerMethod m : all_methods()) {
    RouterOptions opts;
    opts.method = m;
    opts.iterations = 2;
    const RouterResult r = route_chip(grid, nl, opts);
    EXPECT_EQ(r.nets_routed, nl.nets.size()) << method_name(m);
    EXPECT_EQ(r.routes.size(), nl.nets.size());
    EXPECT_GT(r.wires.wirelength_gcells, 0.0);
    EXPECT_GT(r.wires.num_vias, 0u);
    EXPECT_GT(r.congestion.ace4, 0.0);
    EXPECT_EQ(r.sink_delays.size(), nl.num_sinks());
    // Delays are zero only for sinks coincident with their source.
    std::size_t positive = 0;
    for (const double d : r.sink_delays) {
      EXPECT_GE(d, 0.0);
      if (d > 0.0) ++positive;
    }
    EXPECT_GT(positive, nl.num_sinks() / 2);
  }
}

TEST(Router, DeterministicGivenSeed) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.iterations = 2;
  opts.seed = 5;
  const RouterResult a = route_chip(grid, nl, opts);
  const RouterResult b = route_chip(grid, nl, opts);
  EXPECT_DOUBLE_EQ(a.timing.worst_slack, b.timing.worst_slack);
  EXPECT_DOUBLE_EQ(a.timing.total_negative_slack,
                   b.timing.total_negative_slack);
  EXPECT_DOUBLE_EQ(a.wires.wirelength_gcells, b.wires.wirelength_gcells);
  EXPECT_EQ(a.wires.num_vias, b.wires.num_vias);
}

TEST(Router, RipUpAndRerouteImprovesTiming) {
  // More Lagrangean rounds must not leave TNS dramatically worse; typically
  // they improve it because weights steer critical nets to faster wires.
  ChipConfig c = tiny_chip();
  c.num_nets = 120;
  c.rat_tightness = 1.1;  // hard timing
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions one;
  one.method = SteinerMethod::kCD;
  one.iterations = 1;
  RouterOptions four = one;
  four.iterations = 4;
  const RouterResult r1 = route_chip(grid, nl, one);
  const RouterResult r4 = route_chip(grid, nl, four);
  // TNS is <= 0; "not worse" means closer to zero (small tolerance for the
  // congestion/timing trade-off the multipliers negotiate).
  EXPECT_GE(r4.timing.total_negative_slack,
            r1.timing.total_negative_slack * 1.05)
      << "Lagrangean rounds degraded timing (r1 TNS "
      << r1.timing.total_negative_slack << ", r4 TNS "
      << r4.timing.total_negative_slack << ")";
}

TEST(Router, ThreadedRoutingIsDeterministic) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.iterations = 2;
  opts.threads = 4;
  opts.batch_size = 16;
  const RouterResult a = route_chip(grid, nl, opts);
  const RouterResult b = route_chip(grid, nl, opts);
  EXPECT_DOUBLE_EQ(a.timing.total_negative_slack,
                   b.timing.total_negative_slack);
  EXPECT_DOUBLE_EQ(a.wires.wirelength_gcells, b.wires.wirelength_gcells);
  EXPECT_EQ(a.wires.num_vias, b.wires.num_vias);
}

TEST(Router, ResultsAreThreadCountInvariant) {
  // RouterOptions::threads documents that results are deterministic and
  // independent of the thread count: the batch structure (not the worker
  // pool) defines which nets price against which snapshot. Routing the same
  // netlist with 1, 2 and 4 threads must produce bit-identical routes and
  // sink delays.
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.iterations = 2;
  opts.batch_size = 16;
  opts.threads = 1;
  const RouterResult one = route_chip(grid, nl, opts);
  opts.threads = 4;
  const RouterResult four = route_chip(grid, nl, opts);
  opts.threads = 2;
  const RouterResult two = route_chip(grid, nl, opts);

  for (const RouterResult* other : {&four, &two}) {
    ASSERT_EQ(one.routes.size(), other->routes.size());
    for (std::size_t i = 0; i < one.routes.size(); ++i) {
      EXPECT_EQ(one.routes[i], other->routes[i]) << "net " << i;
    }
    ASSERT_EQ(one.sink_delays.size(), other->sink_delays.size());
    for (std::size_t s = 0; s < one.sink_delays.size(); ++s) {
      EXPECT_DOUBLE_EQ(one.sink_delays[s], other->sink_delays[s])
          << "sink " << s;
    }
  }
}

}  // namespace
}  // namespace cdst
