/// \file tests/stress.h
/// Sizing knob for the stress-style tests (ThreadPool waves, stream
/// producer/consumer runs, budget contention loops).
///
/// Sanitizer lanes — ThreadSanitizer above all — run instrumented code an
/// order of magnitude slower than Release, and TSan needs *interleavings*,
/// not iterations, to find races: a few thousand instrumented operations
/// explore the same schedules as a million uninstrumented ones. Setting
/// CDST_STRESS_LIGHT=1 in the environment (the tsan ctest preset does)
/// switches every stress loop to its reduced size so the lane finishes in
/// minutes; the Release lane runs the full sizes.

#pragma once

#include <cstdlib>

namespace cdst::testutil {

/// True when the environment asks for reduced stress sizes
/// (CDST_STRESS_LIGHT set to anything but "" or "0").
inline bool stress_light() {
  const char* env = std::getenv("CDST_STRESS_LIGHT");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

/// Picks the iteration count for one stress loop: `full` in normal lanes,
/// `light` under CDST_STRESS_LIGHT=1.
inline int stress_iters(int full, int light) {
  return stress_light() ? light : full;
}

}  // namespace cdst::testutil
