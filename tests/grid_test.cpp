// Tests for the 3D routing grid, congestion pricing, future costs and
// routing windows.

#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "grid/cost_model.h"
#include "grid/future_cost.h"
#include "grid/routing_grid.h"
#include "grid/window.h"
#include "util/rng.h"

namespace cdst {
namespace {

RoutingGrid small_grid(int nx = 6, int ny = 5, int nz = 3) {
  return RoutingGrid(nx, ny, make_default_layer_stack(nz), ViaSpec{});
}

TEST(RoutingGrid, VertexRoundTrip) {
  const RoutingGrid g = small_grid();
  for (std::int32_t z = 0; z < g.nz(); ++z) {
    for (std::int32_t y = 0; y < g.ny(); ++y) {
      for (std::int32_t x = 0; x < g.nx(); ++x) {
        const VertexId v = g.vertex_at(x, y, z);
        const Point3 p = g.position(v);
        EXPECT_EQ(p.x, x);
        EXPECT_EQ(p.y, y);
        EXPECT_EQ(p.z, z);
      }
    }
  }
}

TEST(RoutingGrid, EdgeAndResourceCounts) {
  const int nx = 6, ny = 5, nz = 3;
  const RoutingGrid g = small_grid(nx, ny, nz);
  // Expected counts derived from the layer specs: one resource per gcell
  // boundary, one parallel edge per wire type on it, plus one via edge (and
  // resource) per gcell between adjacent layers.
  std::size_t exp_resources = 0, exp_edges = 0;
  for (const LayerSpec& l : g.layers()) {
    const std::size_t bounds = l.dir == LayerDir::kHorizontal
                                   ? static_cast<std::size_t>((nx - 1) * ny)
                                   : static_cast<std::size_t>(nx * (ny - 1));
    exp_resources += bounds;
    exp_edges += bounds * l.wire_types.size();
  }
  const std::size_t vias = static_cast<std::size_t>((nz - 1) * nx * ny);
  EXPECT_EQ(g.num_resources(), exp_resources + vias);
  EXPECT_EQ(g.graph().num_edges(), exp_edges + vias);
  EXPECT_EQ(g.graph().num_vertices(),
            static_cast<std::size_t>(nx * ny * nz));
}

TEST(RoutingGrid, PreferredDirectionRespected) {
  const RoutingGrid g = small_grid();
  const Graph& gg = g.graph();
  for (EdgeId e = 0; e < gg.num_edges(); ++e) {
    const auto& info = g.edge_info(e);
    const Point3 a = g.position(gg.tail(e));
    const Point3 b = g.position(gg.head(e));
    if (info.is_via) {
      EXPECT_EQ(a.x, b.x);
      EXPECT_EQ(a.y, b.y);
      EXPECT_EQ(std::abs(a.z - b.z), 1);
    } else if (g.layers()[info.layer].dir == LayerDir::kHorizontal) {
      EXPECT_EQ(std::abs(a.x - b.x), 1);
      EXPECT_EQ(a.y, b.y);
    } else {
      EXPECT_EQ(a.x, b.x);
      EXPECT_EQ(std::abs(a.y - b.y), 1);
    }
  }
}

TEST(CongestionCosts, PriceGrowsExponentially) {
  const RoutingGrid g = small_grid();
  CongestionParams params;
  params.price_at_full = 16.0;
  CongestionCosts costs(g, params);
  // Find a wire edge and saturate its resource.
  EdgeId wire = kInvalidEdge;
  for (EdgeId e = 0; e < g.graph().num_edges(); ++e) {
    if (!g.edge_info(e).is_via) {
      wire = e;
      break;
    }
  }
  ASSERT_NE(wire, kInvalidEdge);
  const double base = costs.edge_cost(wire);
  EXPECT_DOUBLE_EQ(base, g.edge_info(wire).unit_cost);

  const double cap = g.resource_capacity(g.edge_info(wire).resource);
  std::vector<EdgeId> once{wire};
  for (int i = 0; i < static_cast<int>(cap / g.edge_info(wire).width); ++i) {
    costs.add_usage(once, +1.0);
  }
  EXPECT_NEAR(costs.edge_cost(wire), base * 16.0, base * 16.0 * 0.1)
      << "price at ~100% utilization must be ~price_at_full x base";
  costs.add_usage(once, -1.0);
  EXPECT_LT(costs.edge_cost(wire), base * 16.0);
}

TEST(CongestionCosts, RipUpNeverGoesNegative) {
  const RoutingGrid g = small_grid();
  CongestionCosts costs(g);
  std::vector<EdgeId> e{0};
  costs.add_usage(e, -1.0);
  EXPECT_GE(costs.usage(g.edge_info(0).resource), 0.0);
}

TEST(FutureCost, BoundsAreAdmissible) {
  const RoutingGrid g = small_grid(7, 7, 4);
  const FutureCost fc(g, /*num_landmarks=*/4);
  const std::vector<double>& base = g.base_costs();
  const std::vector<double>& delays = g.edge_delays();
  Rng rng(99);
  for (int trial = 0; trial < 12; ++trial) {
    const auto s = static_cast<VertexId>(rng.uniform(g.graph().num_vertices()));
    const auto rc =
        dijkstra(g.graph(), {s}, [&](EdgeId e) { return base[e]; });
    const auto rd =
        dijkstra(g.graph(), {s}, [&](EdgeId e) { return delays[e]; });
    for (VertexId v = 0; v < g.graph().num_vertices(); ++v) {
      EXPECT_LE(fc.cost_lb(s, v), rc.dist[v] + 1e-9);
      EXPECT_LE(fc.delay_lb(s, v), rd.dist[v] + 1e-9);
    }
  }
}

TEST(Window, MapsVerticesAndEdgesBack) {
  const RoutingGrid g = small_grid(10, 10, 3);
  CongestionCosts costs(g);
  Rect box;
  box.expand(Point2{2, 3});
  box.expand(Point2{6, 7});
  const RoutingWindow w(g, costs, box);
  EXPECT_EQ(w.graph().num_vertices(), 5u * 5u * 3u);

  // Round-trip all window vertices.
  for (VertexId wv = 0; wv < w.graph().num_vertices(); ++wv) {
    const VertexId gv = w.to_grid_vertex(wv);
    EXPECT_EQ(w.from_grid_vertex(gv), wv);
    EXPECT_TRUE(box.contains(g.position(gv).xy()));
  }
  // Outside vertices are unmapped.
  EXPECT_EQ(w.from_grid_vertex(g.vertex_at(0, 0, 0)), kInvalidVertex);

  // Window edges correspond to grid edges with identical endpoints.
  for (EdgeId we = 0; we < w.graph().num_edges(); ++we) {
    const EdgeId ge = w.to_grid_edge(we);
    const VertexId wa = w.graph().tail(we), wb = w.graph().head(we);
    const VertexId ga = g.graph().tail(ge), gb = g.graph().head(ge);
    const bool match = (w.to_grid_vertex(wa) == ga &&
                        w.to_grid_vertex(wb) == gb) ||
                       (w.to_grid_vertex(wa) == gb &&
                        w.to_grid_vertex(wb) == ga);
    EXPECT_TRUE(match);
    EXPECT_DOUBLE_EQ(w.edge_delays()[we], g.edge_delays()[ge]);
    EXPECT_DOUBLE_EQ(w.edge_costs()[we], costs.edge_cost(ge));
  }
}

TEST(Window, ClipsToGrid) {
  const RoutingGrid g = small_grid(5, 5, 2);
  CongestionCosts costs(g);
  Rect box;
  box.expand(Point2{-10, -10});
  box.expand(Point2{100, 100});
  const RoutingWindow w(g, costs, box);
  EXPECT_EQ(w.graph().num_vertices(), g.graph().num_vertices());
  EXPECT_EQ(w.graph().num_edges(), g.graph().num_edges());
}

TEST(Window, PricesReflectCongestion) {
  const RoutingGrid g = small_grid(8, 8, 3);
  CongestionCosts costs(g);
  // Congest one edge heavily, then check the window sees the high price.
  EdgeId wire = kInvalidEdge;
  for (EdgeId e = 0; e < g.graph().num_edges(); ++e) {
    if (!g.edge_info(e).is_via) {
      wire = e;
      break;
    }
  }
  std::vector<EdgeId> once{wire};
  for (int i = 0; i < 40; ++i) costs.add_usage(once, +1.0);

  Rect box;
  box.expand(Point2{0, 0});
  box.expand(Point2{7, 7});
  const RoutingWindow w(g, costs, box);
  bool found_expensive = false;
  for (EdgeId we = 0; we < w.graph().num_edges(); ++we) {
    if (w.to_grid_edge(we) == wire) {
      EXPECT_GT(w.edge_costs()[we], 2.0 * g.edge_info(wire).unit_cost);
      found_expensive = true;
    }
  }
  EXPECT_TRUE(found_expensive);
}

}  // namespace
}  // namespace cdst
