// Tests for the streaming pipeline API (api/solve_stream.h): SolveStream
// bit-identity with solve_batch at any thread count and poll cadence,
// strict submission-order delivery, dense-state backpressure through the
// bounded in-flight window, cancellation mid-stream, and the Engine facade
// that wires sessions to one shared ThreadPool + DenseStateBudget.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/cdst.h"
#include "grid/future_cost.h"
#include "grid/routing_grid.h"
#include "route/netlist_gen.h"
#include "stress.h"
#include "test_instances.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cdst {
namespace {

using testutil::GridInstance;
using testutil::expect_same;
using testutil::make_grid_instance;
using testutil::tiny_chip;

struct JobFixture {
  std::vector<std::unique_ptr<GridInstance>> gis;
  std::vector<CdSolver::Job> jobs;
};

JobFixture make_jobs(std::size_t count) {
  JobFixture f;
  for (std::uint64_t s = 1; s <= count; ++s) {
    f.gis.push_back(make_grid_instance(s * 71, 9, 8, 3, 2 + s % 7));
  }
  for (std::size_t i = 0; i < f.gis.size(); ++i) {
    CdSolver::Job job;
    job.instance = &f.gis[i]->inst;
    job.future_cost = f.gis[i]->fc.get();
    job.seed = i + 1;
    f.jobs.push_back(job);
  }
  return f;
}

// ------------------------------------------------------------ bit-identity --

TEST(SolveStream, MatchesBatchBitIdenticallyAtAnyThreadAndCadence) {
  const JobFixture f = make_jobs(12);

  std::vector<SolveResult> reference;
  {
    CdSolver solver;
    const auto batch =
        solver.solve_batch(std::span<const CdSolver::Job>(f.jobs));
    ASSERT_TRUE(batch.ok()) << batch.status().to_string();
    reference = *batch;
  }

  for (const int threads : {1, 2, 4}) {
    // Cadence 0: never poll until drain; otherwise poll every `cadence`
    // submits. Delivery order must be submission order regardless.
    for (const std::size_t cadence : {0u, 1u, 3u}) {
      ThreadPool pool(threads);
      CdSolver solver({}, &pool);
      SolveStream stream = solver.stream({.window = 4});
      std::vector<SolveResult> got;
      for (std::size_t i = 0; i < f.jobs.size(); ++i) {
        ASSERT_TRUE(stream.submit(f.jobs[i]).ok());
        if (cadence > 0 && (i + 1) % cadence == 0) {
          while (auto r = stream.poll()) {
            ASSERT_TRUE(r->ok()) << r->status().to_string();
            got.push_back(*std::move(*r));
          }
        }
      }
      for (StatusOr<SolveResult>& r : stream.drain()) {
        ASSERT_TRUE(r.ok()) << r.status().to_string();
        got.push_back(*std::move(r));
      }
      ASSERT_EQ(got.size(), reference.size())
          << threads << " threads, cadence " << cadence;
      for (std::size_t i = 0; i < got.size(); ++i) {
        expect_same(got[i], reference[i], i, "job");
      }
      EXPECT_EQ(stream.submitted(), f.jobs.size());
      EXPECT_EQ(stream.delivered(), f.jobs.size());
      EXPECT_EQ(stream.pending(), 0u);
    }
  }
}

TEST(SolveStream, EmptyAndInvalidSubmissionsAreSafe) {
  const auto gi = make_grid_instance(5, 8, 8, 3, 4);
  CdSolver solver;
  {
    SolveStream stream = solver.stream();
    EXPECT_FALSE(stream.poll().has_value());
    EXPECT_FALSE(stream.next().has_value());
    EXPECT_TRUE(stream.drain().empty());
  }
  SolveStream stream = solver.stream();
  CdSolver::Job bad;  // no instance
  EXPECT_EQ(stream.submit(bad).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(stream.submitted(), 0u) << "rejected jobs must not be enqueued";
  // The rejection does not poison the stream.
  ASSERT_TRUE(stream.submit(gi->inst).ok());
  const auto results = stream.drain();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok());
}

TEST(SolveStream, MoveAssignmentWaitsForReplacedStreamsLanes) {
  // Overwriting an active stream must tear it down like the destructor
  // would — waiting for its in-flight lanes — so no lane outlives the
  // solver (the ASan run guards the use-after-free this once allowed).
  const JobFixture f = make_jobs(6);
  ThreadPool pool(4);
  CdSolver solver({}, &pool);
  SolveStream stream = solver.stream({.window = 4});
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(stream.submit(f.jobs[i]).ok());
  }
  stream = solver.stream({.window = 2});  // replaced mid-flight
  EXPECT_EQ(stream.submitted(), 0u) << "fresh stream adopted";
  ASSERT_TRUE(stream.submit(f.jobs[4]).ok());
  const auto results = stream.drain();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok());
  // Self-move keeps the stream usable (and must not deadlock).
  auto& self = stream;
  stream = std::move(self);
  ASSERT_TRUE(stream.submit(f.jobs[5]).ok());
  ASSERT_EQ(stream.drain().size(), 1u);
}

// ------------------------------------------------------------ backpressure --

TEST(SolveStream, BackpressureBoundsPeakDenseStateBytes) {
  const auto gi = make_grid_instance(17, 12, 12, 3, 8);
  DenseStateBudget budget(512u << 20);
  SolverOptions opts;
  opts.future_cost = gi->fc.get();
  opts.shared_dense_budget = &budget;

  // Footprint of one solve, measured on a serial session.
  std::int64_t footprint = 0;
  {
    CdSolver solver(opts);
    ASSERT_TRUE(solver.solve(gi->inst).ok());
    footprint = budget.peak_reserved_bytes();
    ASSERT_GT(footprint, 0) << "solve should have reserved dense state";
  }

  // A window of 1 over a 4-thread pool must never hold more than one
  // solve's reservation at a time, whatever the pool could run.
  budget.reset(512u << 20);
  {
    ThreadPool pool(4);
    CdSolver solver(opts, &pool);
    SolveStream stream = solver.stream({.window = 1});
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(stream.submit(gi->inst).ok());
    for (StatusOr<SolveResult>& r : stream.drain()) ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ(budget.peak_reserved_bytes(), footprint)
      << "window=1 must serialize dense reservations";

  // Window w bounds the peak to w concurrent reservations.
  budget.reset(512u << 20);
  {
    ThreadPool pool(4);
    CdSolver solver(opts, &pool);
    SolveStream stream = solver.stream({.window = 3});
    for (int i = 0; i < 12; ++i) ASSERT_TRUE(stream.submit(gi->inst).ok());
    for (StatusOr<SolveResult>& r : stream.drain()) ASSERT_TRUE(r.ok());
  }
  EXPECT_LE(budget.peak_reserved_bytes(), 3 * footprint);
}

TEST(SolveStream, ConcurrentSubmitAndDrainKeepWindowAccounting) {
  // Regression for the window accounting under a true producer/consumer
  // split: one thread submits (blocking on backpressure) while another
  // drains with a mix of poll() and next(). Delivery must stay in strict
  // submission order and bit-identical to a serial batch, the dense-state
  // peak must respect the window even though submit-side waits and
  // drain-side pops interleave on the same mutex, and the counters must
  // balance once both sides quiesce.
  const auto gi = make_grid_instance(23, 11, 10, 3, 6);
  DenseStateBudget budget(512u << 20);
  SolverOptions opts;
  opts.future_cost = gi->fc.get();
  opts.shared_dense_budget = &budget;

  // Same instance at every seed: one dense footprint, distinct results.
  const int kJobs = testutil::stress_iters(10, 6);
  std::vector<CdSolver::Job> jobs;
  for (int i = 0; i < kJobs; ++i) {
    CdSolver::Job job;
    job.instance = &gi->inst;
    job.seed = static_cast<std::uint64_t>(i + 1);
    jobs.push_back(job);
  }

  std::int64_t footprint = 0;
  std::vector<SolveResult> reference;
  {
    CdSolver serial(opts);
    for (const CdSolver::Job& job : jobs) {
      budget.reset(512u << 20);
      auto r = serial.solve(job);
      ASSERT_TRUE(r.ok());
      reference.push_back(*std::move(r));
    }
    footprint = budget.peak_reserved_bytes();
    ASSERT_GT(footprint, 0);
  }

  budget.reset(512u << 20);
  std::vector<SolveResult> delivered;
  {
    ThreadPool pool(4);
    CdSolver solver(opts, &pool);
    SolveStream stream = solver.stream({.window = 2});
    std::thread producer([&] {
      for (const CdSolver::Job& job : jobs) {
        ASSERT_TRUE(stream.submit(job).ok());
      }
    });
    bool use_poll = true;
    while (delivered.size() < static_cast<std::size_t>(kJobs)) {
      std::optional<StatusOr<SolveResult>> r =
          use_poll ? stream.poll() : stream.next();
      use_poll = !use_poll;
      if (!r.has_value()) {
        std::this_thread::yield();  // producer not done submitting yet
        continue;
      }
      ASSERT_TRUE(r->ok());
      delivered.push_back(*std::move(*r));
    }
    producer.join();
    EXPECT_EQ(stream.submitted(), static_cast<std::size_t>(kJobs));
    EXPECT_EQ(stream.delivered(), static_cast<std::size_t>(kJobs));
    EXPECT_EQ(stream.pending(), 0u);
    EXPECT_FALSE(stream.poll().has_value());
    EXPECT_FALSE(stream.next().has_value());
  }
  EXPECT_LE(budget.peak_reserved_bytes(), 2 * footprint)
      << "window=2 exceeded under concurrent submit/drain";
  for (int i = 0; i < kJobs; ++i) {
    testutil::expect_same(delivered[static_cast<std::size_t>(i)],
                          reference[static_cast<std::size_t>(i)],
                          static_cast<std::size_t>(i), "concurrent stream");
  }
}

// ------------------------------------------------------------ cancellation --

TEST(SolveStream, CancellationMidStreamLeavesSessionReusable) {
  const JobFixture f = make_jobs(10);
  ThreadPool pool(2);
  CdSolver solver({}, &pool);

  CancelToken token;
  RunControl control;
  control.cancel = &token;
  std::size_t accepted = 0;
  std::size_t cancelled_results = 0;
  std::size_t ok_results = 0;
  {
    SolveStream stream = solver.stream({.window = 2}, control);
    for (std::size_t i = 0; i < f.jobs.size(); ++i) {
      const Status st = stream.submit(f.jobs[i]);
      if (st.ok()) {
        ++accepted;
      } else {
        EXPECT_EQ(st.code(), StatusCode::kCancelled);
      }
      if (i == 3) token.request_cancel();
    }
    EXPECT_LT(accepted, f.jobs.size()) << "cancel must stop acceptance";
    std::size_t delivered = 0;
    for (StatusOr<SolveResult>& r : stream.drain()) {
      ++delivered;
      if (r.ok()) {
        ++ok_results;
      } else {
        EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
        ++cancelled_results;
      }
    }
    // Every accepted job produced exactly one in-order result.
    EXPECT_EQ(delivered, accepted);
  }

  // The session solves normally afterwards — scratch lanes and the dense
  // budget all returned home.
  const StatusOr<SolveResult> again = solver.solve(f.jobs[0]);
  ASSERT_TRUE(again.ok()) << again.status().to_string();
  CdSolver fresh;
  const StatusOr<SolveResult> expect = fresh.solve(f.jobs[0]);
  ASSERT_TRUE(expect.ok());
  expect_same(*again, *expect, 0, "post-cancel solve");

  // And a fresh stream on the same session works.
  SolveStream stream2 = solver.stream({.window = 2});
  ASSERT_TRUE(stream2.submit(f.jobs[1]).ok());
  auto results = stream2.drain();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok());
  (void)cancelled_results;
  (void)ok_results;
}

TEST(SolveStream, JobEventsArriveSerializedAndMonotonic) {
  const JobFixture f = make_jobs(8);

  struct Sink final : EventSink {
    std::vector<JobEvent> jobs;
    void on_job(const JobEvent& event) override { jobs.push_back(event); }
  } sink;

  ThreadPool pool(4);
  CdSolver solver({}, &pool);
  RunControl control;
  control.events = &sink;
  {
    SolveStream stream = solver.stream({.window = 4}, control);
    for (const CdSolver::Job& job : f.jobs) {
      ASSERT_TRUE(stream.submit(job).ok());
    }
    for (StatusOr<SolveResult>& r : stream.drain()) ASSERT_TRUE(r.ok());
  }
  ASSERT_EQ(sink.jobs.size(), f.jobs.size());
  std::set<std::size_t> indexes;
  for (std::size_t i = 0; i < sink.jobs.size(); ++i) {
    EXPECT_EQ(sink.jobs[i].completed, i + 1) << "strictly monotonic";
    EXPECT_EQ(sink.jobs[i].status, StatusCode::kOk);
    indexes.insert(sink.jobs[i].index);
  }
  EXPECT_EQ(indexes.size(), f.jobs.size()) << "each job completes once";
}

// ----------------------------------------------------------------- engine --

TEST(Engine, VendsSolverSessionsOnSharedPoolAndBudget) {
  const JobFixture f = make_jobs(6);
  Engine engine({.threads = 4, .dense_state_budget_bytes = 512u << 20});

  CdSolver vended = engine.make_solver();
  EXPECT_EQ(vended.options().shared_dense_budget, &engine.dense_budget());
  const auto batch =
      vended.solve_batch(std::span<const CdSolver::Job>(f.jobs));
  ASSERT_TRUE(batch.ok()) << batch.status().to_string();
  EXPECT_GT(engine.dense_budget().peak_reserved_bytes(), 0)
      << "vended sessions must draw dense state from the engine pool";

  // Bit-identical to a self-assembled session.
  CdSolver manual;
  const auto expect =
      manual.solve_batch(std::span<const CdSolver::Job>(f.jobs));
  ASSERT_TRUE(expect.ok());
  for (std::size_t i = 0; i < expect->size(); ++i) {
    expect_same((*batch)[i], (*expect)[i], i, "engine job");
  }

  // Streams vended through the engine draw from the same budget.
  engine.dense_budget().reset(512u << 20);
  CdSolver streaming = engine.make_solver();
  SolveStream stream = streaming.stream({.window = 2});
  for (const CdSolver::Job& job : f.jobs) {
    ASSERT_TRUE(stream.submit(job).ok());
  }
  std::size_t i = 0;
  for (StatusOr<SolveResult>& r : stream.drain()) {
    ASSERT_TRUE(r.ok());
    expect_same(*r, (*expect)[i], i, "engine stream job");
    ++i;
  }
  EXPECT_GT(engine.dense_budget().peak_reserved_bytes(), 0);
}

TEST(Engine, VendsRouterSessionsMatchingStandaloneRouter) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.seed = 3;

  Engine engine({.threads = 4});
  Router vended = engine.make_router(grid, nl, opts);
  ASSERT_TRUE(vended.run(2).ok());
  EXPECT_EQ(vended.options().oracle.cd.shared_dense_budget,
            &engine.dense_budget());

  Router manual(grid, nl, opts);
  ASSERT_TRUE(manual.run(2).ok());
  const RouterResult a = vended.result();
  const RouterResult b = manual.result();
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i], b.routes[i]) << "net " << i;
  }
  EXPECT_GT(engine.dense_budget().peak_reserved_bytes(), 0);
}

TEST(EventSinkContract, ThrowingHandlersNeverAlterEngineResults) {
  // The EventSink contract: handler exceptions are caught at the emission
  // site — a throwing observer must not kill a stream lane (fire-and-forget
  // task), leak through solve_batch's Status boundary, or poison results.
  const JobFixture f = make_jobs(6);
  struct ThrowingSink final : EventSink {
    void on_solve_merge(const SolveMergeEvent&) override {
      throw std::runtime_error("observer bug");
    }
    void on_job(const JobEvent&) override {
      throw std::runtime_error("observer bug");
    }
  } sink;
  RunControl control;
  control.events = &sink;

  CdSolver reference;
  ThreadPool pool(4);
  CdSolver solver({}, &pool);

  const StatusOr<SolveResult> solo = solver.solve(f.jobs[0], control);
  ASSERT_TRUE(solo.ok()) << solo.status().to_string();

  const auto batch =
      solver.solve_batch(std::span<const CdSolver::Job>(f.jobs), control);
  ASSERT_TRUE(batch.ok()) << batch.status().to_string();

  SolveStream stream = solver.stream({.window = 2}, control);
  for (const CdSolver::Job& job : f.jobs) {
    ASSERT_TRUE(stream.submit(job).ok());
  }
  std::size_t i = 0;
  for (StatusOr<SolveResult>& r : stream.drain()) {
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    const StatusOr<SolveResult> want = reference.solve(f.jobs[i]);
    ASSERT_TRUE(want.ok());
    expect_same(*r, *want, i, "throwing-sink job");
    ++i;
  }
}

// -------------------------------------------------- set_options satellite --

TEST(CdSolverOptions, InstalledSharedBudgetSurvivesSetOptions) {
  const auto gi = make_grid_instance(33, 10, 10, 3, 6);
  DenseStateBudget external(512u << 20);
  SolverOptions opts;
  opts.future_cost = gi->fc.get();
  opts.shared_dense_budget = &external;

  CdSolver solver(opts);
  ASSERT_TRUE(solver.solve(gi->inst).ok());
  ASSERT_GT(external.peak_reserved_bytes(), 0);

  // An option change that does not mention the budget keeps the override.
  SolverOptions changed;
  changed.future_cost = gi->fc.get();
  changed.seed = 9;
  solver.set_options(changed);
  EXPECT_EQ(solver.options().shared_dense_budget, &external)
      << "caller-installed budget must survive set_options";

  external.reset(512u << 20);
  ASSERT_TRUE(solver.solve(gi->inst).ok());
  EXPECT_GT(external.peak_reserved_bytes(), 0)
      << "post-set_options solves must still draw from the installed pool";
}

TEST(CdSolverOptions, BudgetResizeRequestedMidStreamLandsAfterTeardown) {
  // set_options while a stream is open must defer — not drop — the own-pool
  // resize: the first engine call after the session is stream-quiescent
  // applies it. Shrinking the budget to zero makes the deferral observable:
  // once applied, solves fall back to sparse state (bit-identical results),
  // and the old 512 MB pool would otherwise still grant dense state.
  const auto gi = make_grid_instance(45, 10, 10, 3, 6);
  ThreadPool pool(2);
  SolverOptions opts;
  opts.future_cost = gi->fc.get();
  CdSolver solver(opts, &pool);

  const StatusOr<SolveResult> dense = solver.solve(gi->inst);
  ASSERT_TRUE(dense.ok());
  {
    SolveStream stream = solver.stream({.window = 2});
    ASSERT_TRUE(stream.submit(gi->inst).ok());
    SolverOptions shrunk = opts;
    shrunk.dense_state_budget_bytes = 0;  // deferred while the stream lives
    solver.set_options(shrunk);
    for (StatusOr<SolveResult>& r : stream.drain()) ASSERT_TRUE(r.ok());
  }
  // Stream gone: the next solve applies the resize and must still be
  // bit-identical (dense/sparse state never changes results).
  const StatusOr<SolveResult> sparse = solver.solve(gi->inst);
  ASSERT_TRUE(sparse.ok());
  expect_same(*sparse, *dense, 0, "post-resize solve");
}

}  // namespace
}  // namespace cdst
