// Tests for the distributed shard-round layer (src/dist/): wire-format
// round-trips and corruption rejection, the InProcessTransport serialization
// oracle, and — on POSIX, where the cdst_shard_worker binary exists — the
// SubprocessTransport matrix: a sharded round through 1/2/4 out-of-process
// workers must be bit-identical to the direct in-process round, and a worker
// killed mid-round must be absorbed by the shard retry path with identical
// final routes.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "api/cdst.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "grid/routing_grid.h"
#include "route/netlist_gen.h"
#include "util/rng.h"

#if defined(CDST_SHARD_WORKER_PATH)
#include "dist/subprocess_transport.h"
#endif

namespace cdst {
namespace {

ChipConfig dist_chip() {
  ChipConfig c;
  c.name = "dist-test";
  c.num_nets = 24;
  c.num_layers = 3;
  c.nx = c.ny = 12;
  c.capacity = 8.0;
  c.seed = 7;
  return c;
}

RouterOptions dist_router_options() {
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.seed = 5;
  opts.threads = 2;
  opts.shards = 4;
  return opts;
}

void expect_same_routing(const RouterResult& got, const RouterResult& want) {
  ASSERT_EQ(got.routes.size(), want.routes.size());
  for (std::size_t i = 0; i < got.routes.size(); ++i) {
    EXPECT_EQ(got.routes[i], want.routes[i]) << "net " << i;
  }
  ASSERT_EQ(got.sink_delays.size(), want.sink_delays.size());
  for (std::size_t s = 0; s < got.sink_delays.size(); ++s) {
    EXPECT_DOUBLE_EQ(got.sink_delays[s], want.sink_delays[s]) << "sink " << s;
    EXPECT_DOUBLE_EQ(got.sink_weights[s], want.sink_weights[s])
        << "sink " << s;
  }
}

// ----------------------------------------------------------- wire messages

dist::WorkerSetupMsg sample_setup(Rng& rng) {
  const ChipConfig c = dist_chip();
  const RoutingGrid grid = make_chip_grid(c);
  dist::WorkerSetupMsg setup;
  setup.nx = grid.nx();
  setup.ny = grid.ny();
  setup.layers = grid.layers();
  setup.via = grid.via();
  setup.netlist = generate_netlist(c, grid);
  setup.method = SteinerMethod::kCD;
  setup.oracle.seed = rng();
  setup.oracle.dbif = 1.5;
  setup.oracle.window_margin = 3;
  setup.oracle.cd.use_astar = true;
  setup.oracle.cd.dense_state_budget_bytes = 1 << 20;
  setup.congestion.price_at_full = 6.0;
  setup.congestion.smoothing = 0.25;
  setup.options_seed = rng();
  return setup;
}

dist::ShardWorkMsg sample_work(Rng& rng) {
  dist::ShardWorkMsg work;
  work.round = 3;
  work.shard = 1;
  work.shards = 4;
  work.tile = ShardTile{1, 0, 6, 0, 12, 6};
  for (std::uint32_t n = 0; n < 5; ++n) {
    dist::ShardWorkMsg::NetWork nw;
    nw.net = n * 3;
    for (int s = 0; s < 3; ++s) {
      nw.sink_weights.push_back(static_cast<double>(rng.uniform(1000)) / 64);
    }
    for (int e = 0; e < 8; ++e) {
      nw.route_edges.push_back(static_cast<std::uint32_t>(rng.uniform(500)));
    }
    for (std::uint32_t r = 0; r < 4; ++r) {
      nw.resources.push_back(n * 16 + r);
      nw.usage.push_back(static_cast<double>(rng.uniform(64)));
    }
    work.nets.push_back(nw);
  }
  return work;
}

dist::ShardResultMsg sample_result(Rng& rng) {
  dist::ShardResultMsg result;
  result.round = 3;
  result.shard = 1;
  for (std::uint32_t n = 0; n < 5; ++n) {
    dist::ShardResultMsg::NetResult nr;
    nr.net = n * 3;
    for (int e = 0; e < 6; ++e) {
      nr.route_edges.push_back(static_cast<std::uint32_t>(rng.uniform(500)));
      result.route_edges_total += 1;
    }
    for (int s = 0; s < 3; ++s) {
      nr.sink_delays.push_back(static_cast<double>(rng.uniform(1 << 20)));
    }
    result.nets.push_back(nr);
  }
  result.snapshot_cost_total = 1234.5;
  return result;
}

TEST(DistWireTest, SetupRoundTripsBitIdentically) {
  Rng rng(11);
  const dist::WorkerSetupMsg setup = sample_setup(rng);
  const StatusOr<dist::WorkerSetupMsg> back =
      dist::WorkerSetupMsg::from_bytes(setup.to_bytes());
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->nx, setup.nx);
  EXPECT_EQ(back->ny, setup.ny);
  ASSERT_EQ(back->layers.size(), setup.layers.size());
  for (std::size_t l = 0; l < setup.layers.size(); ++l) {
    EXPECT_EQ(back->layers[l].name, setup.layers[l].name);
    EXPECT_EQ(back->layers[l].dir, setup.layers[l].dir);
    EXPECT_EQ(back->layers[l].capacity, setup.layers[l].capacity);
    ASSERT_EQ(back->layers[l].wire_types.size(),
              setup.layers[l].wire_types.size());
    for (std::size_t w = 0; w < setup.layers[l].wire_types.size(); ++w) {
      EXPECT_EQ(back->layers[l].wire_types[w].name,
                setup.layers[l].wire_types[w].name);
      EXPECT_EQ(back->layers[l].wire_types[w].unit_cost,
                setup.layers[l].wire_types[w].unit_cost);
    }
  }
  ASSERT_EQ(back->netlist.nets.size(), setup.netlist.nets.size());
  for (std::size_t i = 0; i < setup.netlist.nets.size(); ++i) {
    const Net& a = back->netlist.nets[i];
    const Net& b = setup.netlist.nets[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.source.x, b.source.x);
    EXPECT_EQ(a.source.y, b.source.y);
    EXPECT_EQ(a.source.z, b.source.z);
    ASSERT_EQ(a.sinks.size(), b.sinks.size());
    for (std::size_t s = 0; s < b.sinks.size(); ++s) {
      EXPECT_EQ(a.sinks[s].pos.x, b.sinks[s].pos.x);
      EXPECT_EQ(a.sinks[s].rat, b.sinks[s].rat);
    }
  }
  EXPECT_EQ(back->method, setup.method);
  EXPECT_EQ(back->oracle.seed, setup.oracle.seed);
  EXPECT_EQ(back->oracle.dbif, setup.oracle.dbif);
  EXPECT_EQ(back->oracle.window_margin, setup.oracle.window_margin);
  EXPECT_EQ(back->oracle.cd.use_astar, setup.oracle.cd.use_astar);
  EXPECT_EQ(back->oracle.cd.dense_state_budget_bytes,
            setup.oracle.cd.dense_state_budget_bytes);
  EXPECT_EQ(back->oracle.cd.future_cost, nullptr);
  EXPECT_EQ(back->oracle.cd.shared_dense_budget, nullptr);
  EXPECT_EQ(back->congestion.price_at_full, setup.congestion.price_at_full);
  EXPECT_EQ(back->congestion.smoothing, setup.congestion.smoothing);
  EXPECT_EQ(back->options_seed, setup.options_seed);
}

TEST(DistWireTest, RoundMessagesRoundTripBitIdentically) {
  Rng rng(13);

  dist::PriceSnapshotMsg snapshot;
  snapshot.round = 7;
  for (int i = 0; i < 257; ++i) {
    snapshot.edge_costs.push_back(static_cast<double>(rng.uniform(1 << 16)) /
                                  7.0);
  }
  const StatusOr<dist::PriceSnapshotMsg> snap_back =
      dist::PriceSnapshotMsg::from_bytes(snapshot.to_bytes());
  ASSERT_TRUE(snap_back.ok()) << snap_back.status().to_string();
  EXPECT_EQ(snap_back->round, snapshot.round);
  EXPECT_EQ(snap_back->edge_costs, snapshot.edge_costs);

  const dist::ShardWorkMsg work = sample_work(rng);
  const StatusOr<dist::ShardWorkMsg> work_back =
      dist::ShardWorkMsg::from_bytes(work.to_bytes());
  ASSERT_TRUE(work_back.ok()) << work_back.status().to_string();
  EXPECT_EQ(work_back->round, work.round);
  EXPECT_EQ(work_back->shard, work.shard);
  EXPECT_EQ(work_back->shards, work.shards);
  EXPECT_EQ(work_back->tile.x0, work.tile.x0);
  EXPECT_EQ(work_back->tile.y1, work.tile.y1);
  ASSERT_EQ(work_back->nets.size(), work.nets.size());
  for (std::size_t i = 0; i < work.nets.size(); ++i) {
    EXPECT_EQ(work_back->nets[i].net, work.nets[i].net);
    EXPECT_EQ(work_back->nets[i].sink_weights, work.nets[i].sink_weights);
    EXPECT_EQ(work_back->nets[i].route_edges, work.nets[i].route_edges);
    EXPECT_EQ(work_back->nets[i].resources, work.nets[i].resources);
    EXPECT_EQ(work_back->nets[i].usage, work.nets[i].usage);
  }

  const dist::ShardResultMsg result = sample_result(rng);
  const StatusOr<dist::ShardResultMsg> result_back =
      dist::ShardResultMsg::from_bytes(result.to_bytes());
  ASSERT_TRUE(result_back.ok()) << result_back.status().to_string();
  EXPECT_EQ(result_back->round, result.round);
  EXPECT_EQ(result_back->shard, result.shard);
  ASSERT_EQ(result_back->nets.size(), result.nets.size());
  for (std::size_t i = 0; i < result.nets.size(); ++i) {
    EXPECT_EQ(result_back->nets[i].net, result.nets[i].net);
    EXPECT_EQ(result_back->nets[i].route_edges, result.nets[i].route_edges);
    EXPECT_EQ(result_back->nets[i].sink_delays, result.nets[i].sink_delays);
  }
  EXPECT_EQ(result_back->route_edges_total, result.route_edges_total);
  EXPECT_EQ(result_back->snapshot_cost_total, result.snapshot_cost_total);

  dist::WorkerErrorMsg error;
  error.code = StatusCode::kUnavailable;
  error.message = "worker went away";
  const StatusOr<dist::WorkerErrorMsg> error_back =
      dist::WorkerErrorMsg::from_bytes(error.to_bytes());
  ASSERT_TRUE(error_back.ok()) << error_back.status().to_string();
  EXPECT_EQ(error_back->code, error.code);
  EXPECT_EQ(error_back->message, error.message);
}

TEST(DistWireTest, WorkerDeadlineAndBudgetReenterAsInternal) {
  // A worker's kDeadlineExceeded/kResourceExhausted are ITS verdicts, not
  // this process's: to_status must re-type them (rule status-origin keeps
  // the canonical origins unique to the audited helpers).
  dist::WorkerErrorMsg deadline;
  deadline.code = StatusCode::kDeadlineExceeded;
  deadline.message = "over budget";
  EXPECT_EQ(deadline.to_status().code(), StatusCode::kInternal);
  dist::WorkerErrorMsg budget;
  budget.code = StatusCode::kResourceExhausted;
  EXPECT_EQ(budget.to_status().code(), StatusCode::kInternal);
  dist::WorkerErrorMsg transient;
  transient.code = StatusCode::kUnavailable;
  EXPECT_EQ(transient.to_status().code(), StatusCode::kUnavailable);
}

TEST(DistWireTest, TruncationIsAlwaysRejected) {
  // Every strict prefix of a valid encoding must parse to kInvalidArgument:
  // the exact-consumption discipline means no prefix can be a valid message.
  Rng rng(17);
  const std::vector<std::vector<std::uint8_t>> encodings = {
      sample_work(rng).to_bytes(),
      sample_result(rng).to_bytes(),
      dist::WorkerErrorMsg{StatusCode::kInternal, "boom"}.to_bytes(),
  };
  for (const std::vector<std::uint8_t>& bytes : encodings) {
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const std::span<const std::uint8_t> prefix(bytes.data(), len);
      EXPECT_EQ(dist::ShardWorkMsg::from_bytes(prefix).status().code(),
                StatusCode::kInvalidArgument)
          << "prefix " << len;
      EXPECT_EQ(dist::ShardResultMsg::from_bytes(prefix).status().code(),
                StatusCode::kInvalidArgument)
          << "prefix " << len;
      EXPECT_EQ(dist::WorkerErrorMsg::from_bytes(prefix).status().code(),
                StatusCode::kInvalidArgument)
          << "prefix " << len;
    }
  }
  // The same for the large setup message, sampled every 7 bytes for speed.
  const std::vector<std::uint8_t> setup_bytes = sample_setup(rng).to_bytes();
  for (std::size_t len = 0; len < setup_bytes.size(); len += 7) {
    const std::span<const std::uint8_t> prefix(setup_bytes.data(), len);
    EXPECT_EQ(dist::WorkerSetupMsg::from_bytes(prefix).status().code(),
              StatusCode::kInvalidArgument)
        << "prefix " << len;
  }
}

TEST(DistWireTest, BitFlipsNeverCrashTheParsers) {
  // Single-byte corruption anywhere in the stream must yield either a clean
  // parse (a flipped payload double is still a double) or kInvalidArgument —
  // never a crash or a hang (this is the ASan-lane payoff).
  Rng rng(19);
  const dist::ShardWorkMsg work = sample_work(rng);
  std::vector<std::uint8_t> bytes = work.to_bytes();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] ^= 0xA5;
    const StatusOr<dist::ShardWorkMsg> parsed =
        dist::ShardWorkMsg::from_bytes(bytes);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
          << "byte " << i;
    }
    bytes[i] ^= 0xA5;
  }
  const dist::ShardResultMsg result = sample_result(rng);
  bytes = result.to_bytes();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] ^= 0x5A;
    const StatusOr<dist::ShardResultMsg> parsed =
        dist::ShardResultMsg::from_bytes(bytes);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
          << "byte " << i;
    }
    bytes[i] ^= 0x5A;
  }
}

// ----------------------------------------------------- in-process transport

TEST(DistTransportTest, DispatchBeforeConfigureIsFailedPrecondition) {
  Rng rng(23);
  dist::InProcessTransport transport;
  const StatusOr<dist::ShardResultMsg> r =
      transport.dispatch(sample_work(rng));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DistTransportTest, InProcessRoundsBitIdenticalToDirectAndToOneShard) {
  const ChipConfig c = dist_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  const RouterOptions opts = dist_router_options();

  Router direct(grid, nl, opts);
  ASSERT_TRUE(direct.run(3).ok());
  const RouterResult want = direct.result();

  // Every round through the serialization loopback: any field a message
  // fails to carry shows up as a routing diff here.
  dist::InProcessTransport transport;
  RouterOptions topts = opts;
  topts.transport = &transport;
  Router viaTransport(grid, nl, topts);
  ASSERT_TRUE(viaTransport.run(3).ok());
  expect_same_routing(viaTransport.result(), want);

  // Sharding is pure scheduling: one shard through the transport lands on
  // the same routes too.
  RouterOptions one = topts;
  one.shards = 1;
  Router oneShard(grid, nl, one);
  ASSERT_TRUE(oneShard.run(3).ok());
  expect_same_routing(oneShard.result(), want);
}

TEST(DistTransportTest, SetOptionsReconfiguresTheTransport) {
  const ChipConfig c = dist_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  const RouterOptions opts = dist_router_options();

  RouterOptions changed = opts;
  changed.congestion.price_at_full = 12.0;

  Router direct(grid, nl, opts);
  ASSERT_TRUE(direct.run(1).ok());
  ASSERT_TRUE(direct.set_options(changed).ok());
  ASSERT_TRUE(direct.run(2).ok());
  const RouterResult want = direct.result();

  // The transport must see the new congestion knobs after set_options — a
  // stale worker world would diverge from the direct session here.
  dist::InProcessTransport transport;
  RouterOptions topts = opts;
  topts.transport = &transport;
  RouterOptions tchanged = changed;
  tchanged.transport = &transport;
  Router viaTransport(grid, nl, topts);
  ASSERT_TRUE(viaTransport.run(1).ok());
  ASSERT_TRUE(viaTransport.set_options(tchanged).ok());
  ASSERT_TRUE(viaTransport.run(2).ok());
  expect_same_routing(viaTransport.result(), want);
}

// ---------------------------------------------------- subprocess transport

#if defined(CDST_SHARD_WORKER_PATH)

TEST(DistSubprocessTest, WorkerMatrixBitIdenticalToDirect) {
  const ChipConfig c = dist_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  const RouterOptions opts = dist_router_options();

  Router direct(grid, nl, opts);
  ASSERT_TRUE(direct.run(2).ok());
  const RouterResult want = direct.result();

  for (const int workers : {1, 2, 4}) {
    SCOPED_TRACE(testing::Message() << "workers=" << workers);
    dist::SubprocessTransportOptions sopts;
    sopts.worker_path = CDST_SHARD_WORKER_PATH;
    sopts.workers = workers;
    dist::SubprocessTransport transport(sopts);
    RouterOptions topts = opts;
    topts.transport = &transport;
    Router session(grid, nl, topts);
    ASSERT_TRUE(session.run(2).ok());
    expect_same_routing(session.result(), want);
  }

  // shards == 1 through a subprocess as well: the degenerate partition.
  dist::SubprocessTransportOptions sopts;
  sopts.worker_path = CDST_SHARD_WORKER_PATH;
  sopts.workers = 1;
  dist::SubprocessTransport transport(sopts);
  RouterOptions one = opts;
  one.shards = 1;
  one.transport = &transport;
  Router oneShard(grid, nl, one);
  ASSERT_TRUE(oneShard.run(2).ok());
  expect_same_routing(oneShard.result(), want);
}

/// Kills the worker pool once, from the first shard event of the run — i.e.
/// mid-round, while later shards still have dispatches to make.
struct KillOnFirstShard final : EventSink {
  dist::SubprocessTransport* transport{nullptr};
  bool killed{false};
  std::vector<FaultEvent> faults;

  void on_router_shard(const RouterShardEvent& event) override {
    (void)event;
    if (!killed) {
      killed = true;
      transport->kill_workers_for_test();
    }
  }
  void on_fault(const FaultEvent& event) override {
    faults.push_back(event);
  }
};

TEST(DistSubprocessTest, KilledWorkerMidRoundRecoversBitIdentically) {
  const ChipConfig c = dist_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  const RouterOptions opts = dist_router_options();

  Router direct(grid, nl, opts);
  ASSERT_TRUE(direct.run(2).ok());
  const RouterResult want = direct.result();

  dist::SubprocessTransportOptions sopts;
  sopts.worker_path = CDST_SHARD_WORKER_PATH;
  sopts.workers = 2;
  dist::SubprocessTransport transport(sopts);
  KillOnFirstShard sink;
  sink.transport = &transport;
  RunControl control;
  control.events = &sink;

  RouterOptions topts = opts;
  topts.transport = &transport;
  Router session(grid, nl, topts);
  // The kill lands mid-round: at least one later dispatch hits a dead
  // worker, fails kUnavailable, and the retry re-executes those shards on
  // respawned workers — with the same frozen inputs, so the final routes
  // are bit-identical to the never-killed run.
  ASSERT_TRUE(session.run(2, control).ok());
  EXPECT_TRUE(sink.killed);
  ASSERT_GE(sink.faults.size(), 1u);
  for (const FaultEvent& fault : sink.faults) {
    EXPECT_STREQ(fault.stage, "dist.transport");
    EXPECT_EQ(fault.status, StatusCode::kUnavailable);
  }
  expect_same_routing(session.result(), want);
}

TEST(DistSubprocessTest, MissingWorkerBinaryIsUnavailableAndRecoverable) {
  const ChipConfig c = dist_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  const RouterOptions opts = dist_router_options();

  Router direct(grid, nl, opts);
  ASSERT_TRUE(direct.run(2).ok());
  const RouterResult want = direct.result();

  dist::SubprocessTransportOptions sopts;
  sopts.worker_path = "/nonexistent/cdst_shard_worker";
  sopts.workers = 2;
  dist::SubprocessTransport transport(sopts);
  RouterOptions topts = opts;
  topts.transport = &transport;
  Router session(grid, nl, topts);
  const Status st = session.run(2);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.to_string();
  EXPECT_EQ(session.rounds_completed(), 0);

  // Dropping the broken transport makes the same session finish in-process
  // and land on the uninterrupted result: the failed round committed
  // nothing.
  RouterOptions fallback = opts;
  fallback.transport = nullptr;
  ASSERT_TRUE(session.set_options(fallback).ok());
  ASSERT_TRUE(session.run(2).ok());
  expect_same_routing(session.result(), want);
}

#endif  // CDST_SHARD_WORKER_PATH

}  // namespace
}  // namespace cdst
