// Property tests for the portable Vec4d used by the blocked relax kernels:
// lane-for-lane bit-identity of every operation against handwritten scalar
// references (across denormal, huge, zero and NaN operands), and solver /
// Dijkstra bit-identity of the vectorized strip paths against the per-edge
// scalar paths over a randomized instance matrix. The whole file runs under
// both the AVX2 build and the CDST_FORCE_SCALAR twin — the references are
// build-invariant, so a pass on both lanes certifies the twins agree.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "api/cdst.h"
#include "graph/arc_cost_view.h"
#include "graph/dijkstra.h"
#include "grid/future_cost.h"
#include "util/rng.h"
#include "util/simd.h"

namespace cdst {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// Operand pool stressing every regime the relax kernels can see: zeros of
// both signs, denormals, huge magnitudes near overflow, ordinary values.
constexpr double kPool[] = {
    0.0,     -0.0,    1.0,       -1.0,     0.5,
    -2.75,   1e-310,  5e-324,    -5e-324,  1e300,
    -1e300,  1e-17,   0.0078125, 1234.5,   1.7976931348623157e308,
};
constexpr int kPoolSize = static_cast<int>(std::size(kPool));

double draw(Rng& rng) {
  return kPool[rng.uniform(static_cast<std::uint64_t>(kPoolSize))];
}

Vec4d draw4(Rng& rng, double out[4]) {
  for (int k = 0; k < 4; ++k) out[k] = draw(rng);
  return Vec4d::load(out);
}

TEST(Vec4d, IsaMatchesBuildConfiguration) {
#if defined(CDST_SIMD_AVX2)
  EXPECT_STREQ(Vec4d::isa(), "avx2");
#else
  EXPECT_STREQ(Vec4d::isa(), "scalar");
#endif
  // The strip width is exactly two vectors; the kernels bake that in.
  EXPECT_EQ(kRelaxStrip, 2 * Vec4d::kLanes);
}

TEST(Vec4d, LoadStoreBroadcastRoundTripBitwise) {
  Rng rng(1);
  for (int it = 0; it < 200; ++it) {
    double a[4];
    const Vec4d v = draw4(rng, a);
    double out[4];
    v.store(out);
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(bits(out[k]), bits(a[k]));
      EXPECT_EQ(bits(v.lane(k)), bits(a[k]));
    }
    const double x = draw(rng);
    const Vec4d b = Vec4d::broadcast(x);
    for (int k = 0; k < 4; ++k) EXPECT_EQ(bits(b.lane(k)), bits(x));
  }
}

TEST(Vec4d, GatherReadsIndexedLanes) {
  Rng rng(2);
  double base[64];
  for (double& x : base) x = draw(rng);
  for (int it = 0; it < 100; ++it) {
    std::uint32_t idx[4];
    for (std::uint32_t& i : idx) {
      i = static_cast<std::uint32_t>(rng.uniform(64));
    }
    const Vec4d g = Vec4d::gather(base, idx);
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(bits(g.lane(k)), bits(base[idx[k]]));
    }
  }
}

TEST(Vec4d, ArithmeticMatchesScalarExpressionsBitwise) {
  // The references spell the exact expression shapes the kernels use, so
  // whatever fp-contraction policy the build applies hits both sides
  // identically (the bit-identity contract in simd.h).
  Rng rng(3);
  for (int it = 0; it < 500; ++it) {
    double a[4], b[4], c[4];
    const Vec4d va = draw4(rng, a);
    const Vec4d vb = draw4(rng, b);
    const Vec4d vc = draw4(rng, c);
    const Vec4d sum = va + vb;
    const Vec4d diff = va - vb;
    const Vec4d prod = va * vb;
    const Vec4d fma = Vec4d::mul_add(va, vb, vc);
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(bits(sum.lane(k)), bits(a[k] + b[k]));
      EXPECT_EQ(bits(diff.lane(k)), bits(a[k] - b[k]));
      EXPECT_EQ(bits(prod.lane(k)), bits(a[k] * b[k]));
      EXPECT_EQ(bits(fma.lane(k)), bits(a[k] * b[k] + c[k]));
    }
  }
}

TEST(Vec4d, MinMaxAbsFollowVectorSemantics) {
  // vminpd/vmaxpd return the SECOND operand when lanes are unordered or
  // both zero — the references below are that rule verbatim; NaN operands
  // included to pin the twins to it.
  Rng rng(4);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int it = 0; it < 500; ++it) {
    double a[4], b[4];
    const Vec4d va = draw4(rng, a);
    Vec4d vb = draw4(rng, b);
    if (it % 7 == 0) {
      b[it % 4] = nan;
      vb = Vec4d::load(b);
    }
    const Vec4d mn = Vec4d::min(va, vb);
    const Vec4d mx = Vec4d::max(va, vb);
    const Vec4d ab = Vec4d::abs(va);
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(bits(mn.lane(k)), bits(a[k] < b[k] ? a[k] : b[k]));
      EXPECT_EQ(bits(mx.lane(k)), bits(a[k] > b[k] ? a[k] : b[k]));
      EXPECT_EQ(bits(ab.lane(k)), bits(a[k]) & ~(1ull << 63));
    }
  }
  // |-0.0| clears the sign bit exactly.
  EXPECT_EQ(bits(Vec4d::abs(Vec4d::broadcast(-0.0)).lane(0)), bits(0.0));
}

TEST(Vec4d, LtMaskBlendHminAgreeWithReference) {
  Rng rng(5);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int it = 0; it < 500; ++it) {
    double a[4], b[4];
    Vec4d va = draw4(rng, a);
    const Vec4d vb = draw4(rng, b);
    if (it % 11 == 0) {
      a[(it / 11) % 4] = nan;  // ordered compare: NaN lanes read false
      va = Vec4d::load(a);
    }
    int want = 0;
    for (int k = 0; k < 4; ++k) want |= static_cast<int>(a[k] < b[k]) << k;
    EXPECT_EQ(Vec4d::lt_mask(va, vb), want);

    for (int mask = 0; mask < 16; ++mask) {
      const Vec4d bl = Vec4d::blend(va, vb, mask);
      for (int k = 0; k < 4; ++k) {
        const double ref = ((mask >> k) & 1) != 0 ? b[k] : a[k];
        EXPECT_EQ(bits(bl.lane(k)), bits(ref));
      }
    }

    if (it % 11 != 0) {  // hmin tree on ordered operands
      const double m0 = a[0] < a[2] ? a[0] : a[2];
      const double m1 = a[1] < a[3] ? a[1] : a[3];
      EXPECT_EQ(bits(va.hmin()), bits(m0 < m1 ? m0 : m1));
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel-level bit-identity on randomized planes.

TEST(SimdDijkstra, ExtremeMagnitudeCostsStayBitIdentical) {
  // Edge lengths spanning denormal to near-overflow: the blocked SoA strip
  // kernel must reproduce the per-edge loop bit-for-bit even where sums
  // denormalize or saturate to infinity.
  Rng rng(17);
  GraphBuilder b(80);
  std::vector<double> cost, delay;
  constexpr double kMag[] = {5e-324, 1e-310, 1e-17, 1.0, 1e300};
  for (int e = 0; e < 400; ++e) {
    const auto u = static_cast<VertexId>(rng.uniform(80));
    auto v = static_cast<VertexId>(rng.uniform(80));
    if (u == v) v = (v + 1) % 80;
    b.add_edge(u, v);
    cost.push_back(kMag[rng.uniform(5)] * (1.0 + rng.uniform_double()));
    delay.push_back(kMag[rng.uniform(5)] * rng.uniform_double());
  }
  const Graph g(b);
  const ArcCostView view(g, cost, delay);

  const DijkstraResult scalar =
      dijkstra(g, {0, 9}, ArrayLength{cost}, kInvalidVertex);
  const DijkstraResult soa =
      dijkstra(g, {0, 9}, ArrayLength(view), kInvalidVertex);
  ASSERT_EQ(scalar.dist, soa.dist);
  ASSERT_EQ(scalar.parent_edge, soa.parent_edge);

  const DijkstraResult scalar_cd =
      dijkstra(g, {5}, CostDelayLength{cost, delay, 3.0}, kInvalidVertex);
  const DijkstraResult soa_cd =
      dijkstra(g, {5}, CostDelayLength(view, 3.0), kInvalidVertex);
  ASSERT_EQ(scalar_cd.dist, soa_cd.dist);
  ASSERT_EQ(scalar_cd.parent_edge, soa_cd.parent_edge);
}

// One solver configuration of the property matrix below.
struct SolverVariant {
  const char* name;
  std::size_t landmarks{0};   // ALT landmarks on the future cost
  int sinks{10};              // 1 = singleton connection paths
  bool zero_weights{false};   // all delay weights 0: pure-cost objective
  bool discounts{true};       // III-A/III-E discount levers
  bool astar{true};           // false: no future cost at all
};

TEST(SimdSolver, StripRelaxBitIdenticalToPerEdgeAcrossInstanceMatrix) {
  // The vectorized plane relax (instance.arc_costs set) against the seed
  // per-edge path, across the regimes that exercise every kernel branch:
  // discount blending, singleton paths, zero-weight delays, the batched
  // landmark-strengthened future bound, and the no-A* flush path.
  const SolverVariant kVariants[] = {
      {"default"},
      {"landmarks", /*landmarks=*/4},
      {"singleton", 0, /*sinks=*/1},
      {"zero_weights", 0, 10, /*zero_weights=*/true},
      {"no_discounts", 0, 10, false, /*discounts=*/false},
      {"no_astar", 0, 10, false, true, /*astar=*/false},
  };
  const RoutingGrid grid(16, 16, make_default_layer_stack(3), ViaSpec{});
  const FutureCost fc_plain(grid);
  const FutureCost fc_alt(grid, /*num_landmarks=*/4);
  const std::vector<double>& delay = grid.edge_delays();

  for (const SolverVariant& variant : kVariants) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Rng rng(seed * 71 + 5);
      std::vector<double> cost(grid.graph().num_edges());
      for (std::size_t e = 0; e < cost.size(); ++e) {
        cost[e] = grid.base_costs()[e] * (1.0 + 3.0 * rng.uniform_double());
      }

      CostDistanceInstance inst;
      inst.graph = &grid.graph();
      inst.cost = &cost;
      inst.delay = &delay;
      inst.dbif = variant.discounts ? 2.0 : 0.0;
      inst.eta = variant.discounts ? 0.25 : 0.0;
      inst.root = grid.vertex_at(1, 2, 0);
      for (int s = 0; s < variant.sinks; ++s) {
        inst.sinks.push_back(Terminal{
            grid.vertex_at(static_cast<std::int32_t>(rng.uniform(16)),
                           static_cast<std::int32_t>(rng.uniform(16)), 0),
            variant.zero_weights ? 0.0 : 0.1 + rng.uniform_double()});
      }

      SolverOptions opts;
      opts.discount_components = variant.discounts;
      opts.encourage_root = variant.discounts;
      opts.use_astar = variant.astar;
      if (variant.astar) {
        opts.future_cost = variant.landmarks > 0 ? &fc_alt : &fc_plain;
      }
      CdSolver solver(opts);

      const StatusOr<SolveResult> scalar = solver.solve(inst);
      ASSERT_TRUE(scalar.ok()) << variant.name << " seed " << seed;
      const ArcCostView view(grid.graph(), cost, delay);
      inst.arc_costs = &view;
      const StatusOr<SolveResult> soa = solver.solve(inst);
      ASSERT_TRUE(soa.ok()) << variant.name << " seed " << seed;

      EXPECT_EQ(scalar->tree.all_edges(), soa->tree.all_edges())
          << variant.name << " seed " << seed;
      EXPECT_EQ(bits(scalar->eval.objective), bits(soa->eval.objective))
          << variant.name << " seed " << seed;
      EXPECT_EQ(scalar->eval.sink_delays, soa->eval.sink_delays)
          << variant.name << " seed " << seed;
      EXPECT_EQ(scalar->stats.labels_settled, soa->stats.labels_settled)
          << variant.name << " seed " << seed;
      EXPECT_EQ(scalar->stats.labels_relaxed, soa->stats.labels_relaxed)
          << variant.name << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace cdst
