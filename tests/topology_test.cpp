// Tests for the plane topology baselines: RMST/RSMT (L1), shallow-light and
// Prim-Dijkstra.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "geom/rect.h"
#include "topology/prim_dijkstra.h"
#include "topology/rmst.h"
#include "topology/rsmt.h"
#include "topology/shallow_light.h"
#include "topology/topology.h"
#include "util/disjoint_set.h"
#include "util/rng.h"

namespace cdst {
namespace {

std::vector<PlaneTerminal> random_sinks(Rng& rng, std::size_t k, int extent) {
  std::vector<PlaneTerminal> out;
  for (std::size_t i = 0; i < k; ++i) {
    PlaneTerminal t;
    t.pos = Point2{static_cast<std::int32_t>(rng.uniform(extent)),
                   static_cast<std::int32_t>(rng.uniform(extent))};
    t.weight = std::exp(rng.uniform_double(-1.5, 1.5));
    out.push_back(t);
  }
  return out;
}

/// Kruskal MST length on the complete terminal graph (reference).
std::int64_t brute_mst_length(const Point2& root,
                              const std::vector<PlaneTerminal>& sinks) {
  std::vector<Point2> pts{root};
  for (const auto& s : sinks) pts.push_back(s.pos);
  struct E {
    std::int64_t len;
    std::size_t a, b;
  };
  std::vector<E> edges;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      edges.push_back(E{l1_distance(pts[i], pts[j]), i, j});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const E& x, const E& y) { return x.len < y.len; });
  DisjointSet dsu(pts.size());
  std::int64_t total = 0;
  for (const E& e : edges) {
    if (dsu.unite(static_cast<std::uint32_t>(e.a),
                  static_cast<std::uint32_t>(e.b))) {
      total += e.len;
    }
  }
  return total;
}

class TopologySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopologySeeds, RmstMatchesBruteForceMstLength) {
  Rng rng(GetParam());
  const Point2 root{50, 50};
  const auto sinks = random_sinks(rng, 3 + GetParam() % 12, 100);
  const PlaneTopology t = rectilinear_mst(root, sinks);
  t.validate(sinks.size());
  EXPECT_EQ(t.total_length(), brute_mst_length(root, sinks));
}

TEST_P(TopologySeeds, RsmtNeverLongerThanRmst) {
  Rng rng(GetParam() * 3 + 1);
  const Point2 root{0, 0};
  const auto sinks = random_sinks(rng, 4 + GetParam() % 20, 80);
  const PlaneTopology mst = rectilinear_mst(root, sinks);
  const PlaneTopology steiner = rsmt_topology(root, sinks);
  steiner.validate(sinks.size());
  EXPECT_LE(steiner.total_length(), mst.total_length());
  // And never below the half-perimeter lower bound of the terminal bbox.
  Rect box;
  box.expand(root);
  for (const auto& s : sinks) box.expand(s.pos);
  EXPECT_GE(steiner.total_length(), box.half_perimeter());
}

TEST(Rsmt, MedianPointSavesLength) {
  // Classic 3-point instance: MST is 2 edges of length 20; the median
  // Steiner point reduces total length to 20 + 10 = 30 -> 20+... concretely:
  // points (0,0) root, (10,10), (20,0): MST = 20+20 = 40? No: d((0,0),(10,10))
  // = 20, d((10,10),(20,0)) = 20, d((0,0),(20,0)) = 20: MST = 40.
  // Steiner point (10,0): total = 10 + 10 + 20 = 30.
  const Point2 root{0, 0};
  std::vector<PlaneTerminal> sinks{{Point2{10, 10}, 1.0, 0.0},
                                   {Point2{20, 0}, 1.0, 0.0}};
  const PlaneTopology t = rsmt_topology(root, sinks);
  EXPECT_EQ(t.total_length(), 30);
}

TEST(Rsmt, L1MedianIsComponentwise) {
  EXPECT_EQ(l1_median(Point2{0, 0}, Point2{10, 10}, Point2{20, 0}),
            (Point2{10, 0}));
  EXPECT_EQ(l1_median(Point2{5, 7}, Point2{5, 7}, Point2{1, 1}),
            (Point2{5, 7}));
}

TEST_P(TopologySeeds, ShallowLightMeetsBounds) {
  Rng rng(GetParam() + 400);
  const Point2 root{50, 50};
  auto sinks = random_sinks(rng, 5 + GetParam() % 15, 100);
  ShallowLightParams p;
  p.epsilon = 0.3;
  p.delay_per_unit = 1.0;
  p.dbif = 0.0;
  const PlaneTopology t = shallow_light_topology(root, sinks, p);
  t.validate(sinks.size());
  // Every sink's tree delay within (1 + eps) of its direct-line delay.
  const auto delays = plane_delays(t, sinks, p.delay_per_unit, 0.0, p.eta);
  for (std::size_t i = 0; i < t.nodes.size(); ++i) {
    const auto si = t.nodes[i].sink_index;
    if (si < 0) continue;
    const double direct = p.delay_per_unit *
                          static_cast<double>(l1_distance(
                              root, sinks[static_cast<std::size_t>(si)].pos));
    EXPECT_LE(delays[i], (1.0 + p.epsilon) * direct + 1e-9)
        << "sink " << si << " violates the shallow-light bound";
  }
}

TEST(ShallowLight, ExplicitBudgetsBindPerSink) {
  // One distant sink with a hopeless generic tree path but a generous
  // budget, one nearby sink with a tight explicit budget: only the tight
  // sink must be rerouted toward the root.
  const Point2 root{0, 0};
  std::vector<PlaneTerminal> sinks;
  // A chain pulling the tree far away...
  for (int i = 1; i <= 6; ++i) {
    sinks.push_back(PlaneTerminal{Point2{10 * i, 10 * i}, 1.0, 1e9});
  }
  // ...and a near sink at the end of the chain detour with a tight budget.
  sinks.push_back(PlaneTerminal{Point2{0, 20}, 1.0, 25.0});
  ShallowLightParams p;
  p.epsilon = 0.1;
  p.delay_per_unit = 1.0;
  const PlaneTopology t = shallow_light_topology(root, sinks, p);
  const auto delays = plane_delays(t, sinks, p.delay_per_unit, 0.0, p.eta);
  for (std::size_t i = 0; i < t.nodes.size(); ++i) {
    if (t.nodes[i].sink_index == 6) {
      EXPECT_LE(delays[i], (1.0 + p.epsilon) * 25.0 + 1e-9)
          << "explicitly budgeted sink must meet its bound";
    }
  }
}

TEST_P(TopologySeeds, ShallowLightNotMuchLongerThanRsmt) {
  Rng rng(GetParam() + 900);
  const Point2 root{10, 90};
  auto sinks = random_sinks(rng, 10, 100);
  ShallowLightParams p;
  p.epsilon = 1e9;  // bound never binds -> must stay the light tree
  const PlaneTopology sl = shallow_light_topology(root, sinks, p);
  const PlaneTopology light = rsmt_topology(root, sinks);
  EXPECT_LE(sl.total_length(), light.total_length() + 1)
      << "with an inactive bound SL must keep the light topology";
}

TEST_P(TopologySeeds, PrimDijkstraGammaOneGivesShortestPaths) {
  Rng rng(GetParam() + 32);
  const Point2 root{0, 0};
  auto sinks = random_sinks(rng, 8, 60);
  PrimDijkstraParams p;
  p.gamma = 1.0;
  p.dbif = 0.0;
  const PlaneTopology t = prim_dijkstra_topology(root, sinks, p);
  t.validate(sinks.size());
  const auto pl = t.path_lengths();
  for (std::size_t i = 0; i < t.nodes.size(); ++i) {
    const auto si = t.nodes[i].sink_index;
    if (si < 0) continue;
    EXPECT_EQ(pl[i],
              l1_distance(root, sinks[static_cast<std::size_t>(si)].pos))
        << "gamma = 1 must realize every sink's L1 shortest path";
  }
}

TEST_P(TopologySeeds, PrimDijkstraTradeoffMonotone) {
  Rng rng(GetParam() + 64);
  const Point2 root{30, 30};
  auto sinks = random_sinks(rng, 12, 60);
  PrimDijkstraParams p;
  p.dbif = 0.0;
  p.gamma = 0.05;
  const PlaneTopology prim_like = prim_dijkstra_topology(root, sinks, p);
  p.gamma = 1.0;
  const PlaneTopology dijk_like = prim_dijkstra_topology(root, sinks, p);
  // Prim end: shorter total; Dijkstra end: shorter paths.
  EXPECT_LE(prim_like.total_length(), dijk_like.total_length());
  const auto pl_prim = prim_like.path_lengths();
  const auto pl_dijk = dijk_like.path_lengths();
  std::int64_t sum_prim = 0, sum_dijk = 0;
  for (std::size_t i = 0; i < prim_like.nodes.size(); ++i) {
    if (prim_like.nodes[i].sink_index >= 0) sum_prim += pl_prim[i];
  }
  for (std::size_t i = 0; i < dijk_like.nodes.size(); ++i) {
    if (dijk_like.nodes[i].sink_index >= 0) sum_dijk += pl_dijk[i];
  }
  EXPECT_LE(sum_dijk, sum_prim);
}

TEST(Topology, StarAndCanonicalize) {
  const Point2 root{0, 0};
  std::vector<PlaneTerminal> sinks{{Point2{1, 0}, 1.0, 0.0},
                                   {Point2{0, 1}, 1.0, 0.0}};
  PlaneTopology t = star_topology(root, sinks);
  t.validate(sinks.size());
  EXPECT_EQ(t.total_length(), 2);

  // Insert a useless degree-2 Steiner node and verify canonicalize removes
  // it.
  PlaneTopology u = t;
  u.nodes.push_back(PlaneTopology::Node{Point2{2, 2}, 0, -1});  // leaf steiner
  u.canonicalize();
  EXPECT_EQ(u.nodes.size(), t.nodes.size());
}

TEST(Topology, PathLengthsAccumulate) {
  PlaneTopology t;
  t.nodes.push_back(PlaneTopology::Node{Point2{0, 0}, -1, -1});
  t.nodes.push_back(PlaneTopology::Node{Point2{3, 0}, 0, -1});
  t.nodes.push_back(PlaneTopology::Node{Point2{3, 4}, 1, 0});
  const auto pl = t.path_lengths();
  EXPECT_EQ(pl[2], 7);
  EXPECT_EQ(t.total_length(), 7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologySeeds,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace cdst
