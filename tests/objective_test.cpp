// Tests for the cost-distance objective evaluator: Eq. (1) accounting and
// the optimal bifurcation penalty split of Eq. (2)/(3).

#include <gtest/gtest.h>

#include "core/objective.h"
#include "core/steiner_tree.h"

namespace cdst {
namespace {

TEST(Lambda, OptimalSplitFollowsEq2) {
  const double eta = 0.2;
  EXPECT_DOUBLE_EQ(optimal_lambda(3.0, 1.0, eta), eta);
  EXPECT_DOUBLE_EQ(optimal_lambda(1.0, 3.0, eta), 1.0 - eta);
  EXPECT_DOUBLE_EQ(optimal_lambda(2.0, 2.0, eta), 0.5);
}

TEST(Lambda, BetaIsMinOverFeasibleSplits) {
  const double dbif = 10.0, eta = 0.3;
  const double w1 = 5.0, w2 = 2.0;
  const double beta = bifurcation_beta(w1, w2, dbif, eta);
  // Sweep lambda in [eta, 1-eta]: beta must be the minimum of
  // dbif * (lambda * w1 + (1 - lambda) * w2).
  double best = 1e18;
  for (double l = eta; l <= 1.0 - eta + 1e-12; l += 0.001) {
    best = std::min(best, dbif * (l * w1 + (1.0 - l) * w2));
  }
  EXPECT_NEAR(beta, best, 1e-6);
  EXPECT_DOUBLE_EQ(beta, bifurcation_beta(w2, w1, dbif, eta)) << "symmetric";
}

class ObjectiveFixture : public ::testing::Test {
 protected:
  // Y-shaped graph: root 0 - 1, then 1 - 2 (sink 0) and 1 - 3 (sink 1).
  ObjectiveFixture() {
    GraphBuilder b(4);
    b.add_edge(0, 1);  // e0
    b.add_edge(1, 2);  // e1
    b.add_edge(1, 3);  // e2
    graph_ = Graph(b);
    cost_ = {2.0, 3.0, 4.0};
    delay_ = {10.0, 20.0, 30.0};

    TreeAssembler a(graph_);
    const auto root = a.add_root(0);
    const auto s0 = a.add_sink(2, 0);
    const auto s1 = a.add_sink(3, 1);
    a.add_segment(s0, root, {1, 0});
    const auto mid = a.node_at(1);
    a.add_segment(s1, mid, {2});
    tree_ = a.finalize();
  }

  CostDistanceInstance instance(double w0, double w1, double dbif,
                                double eta) {
    CostDistanceInstance inst;
    inst.graph = &graph_;
    inst.cost = &cost_;
    inst.delay = &delay_;
    inst.root = 0;
    inst.sinks = {Terminal{2, w0}, Terminal{3, w1}};
    inst.dbif = dbif;
    inst.eta = eta;
    return inst;
  }

  Graph graph_;
  std::vector<double> cost_, delay_;
  SteinerTree tree_;
};

TEST_F(ObjectiveFixture, NoPenaltyAccounting) {
  const auto inst = instance(1.0, 2.0, 0.0, 0.5);
  const TreeEvaluation e = evaluate_tree(tree_, inst);
  EXPECT_DOUBLE_EQ(e.connection_cost, 2.0 + 3.0 + 4.0);
  EXPECT_DOUBLE_EQ(e.sink_delays[0], 10.0 + 20.0);
  EXPECT_DOUBLE_EQ(e.sink_delays[1], 10.0 + 30.0);
  EXPECT_DOUBLE_EQ(e.weighted_delay, 1.0 * 30.0 + 2.0 * 40.0);
  EXPECT_DOUBLE_EQ(e.objective, e.connection_cost + e.weighted_delay);
  EXPECT_DOUBLE_EQ(e.total_delay_penalty, 0.0);
}

TEST_F(ObjectiveFixture, PenaltySplitFavorsHeavySubtree) {
  const double dbif = 8.0, eta = 0.25;
  // Sink 1 (via e2) is heavier: its branch gets lambda = eta, the light
  // branch gets 1 - eta.
  const auto inst = instance(1.0, 3.0, dbif, eta);
  const TreeEvaluation e = evaluate_tree(tree_, inst);
  EXPECT_DOUBLE_EQ(e.sink_delays[0], 30.0 + (1.0 - eta) * dbif);
  EXPECT_DOUBLE_EQ(e.sink_delays[1], 40.0 + eta * dbif);
  // Weighted penalty = beta(w0, w1) * dbif-normalized... i.e. exactly beta.
  EXPECT_NEAR(e.total_delay_penalty, bifurcation_beta(1.0, 3.0, dbif, eta),
              1e-12);
}

TEST_F(ObjectiveFixture, EqualWeightsSplitHalf) {
  const double dbif = 8.0, eta = 0.25;
  const auto inst = instance(2.0, 2.0, dbif, eta);
  const TreeEvaluation e = evaluate_tree(tree_, inst);
  EXPECT_DOUBLE_EQ(e.sink_delays[0], 30.0 + 0.5 * dbif);
  EXPECT_DOUBLE_EQ(e.sink_delays[1], 40.0 + 0.5 * dbif);
}

TEST_F(ObjectiveFixture, NodeLambdasSumToOnePerBifurcation) {
  const double dbif = 8.0, eta = 0.25;
  const auto inst = instance(1.0, 3.0, dbif, eta);
  const TreeEvaluation e = evaluate_tree(tree_, inst);
  ASSERT_EQ(e.node_lambda.size(), tree_.nodes.size());
  // Each bifurcation's two children share lambda = 1 in total.
  for (std::size_t p = 0; p < tree_.nodes.size(); ++p) {
    if (tree_.children[p].size() != 2) continue;
    const double sum =
        e.node_lambda[static_cast<std::size_t>(tree_.children[p][0])] +
        e.node_lambda[static_cast<std::size_t>(tree_.children[p][1])];
    EXPECT_NEAR(sum, 1.0, 1e-12);
    // Shares stay inside the feasible interval [eta, 1 - eta].
    for (const auto c : tree_.children[p]) {
      EXPECT_GE(e.node_lambda[static_cast<std::size_t>(c)], eta - 1e-12);
      EXPECT_LE(e.node_lambda[static_cast<std::size_t>(c)],
                1.0 - eta + 1e-12);
    }
  }
}

TEST_F(ObjectiveFixture, PenaltyOnlyAtBifurcations) {
  // A chain root -> sink (single child everywhere) must get no penalty.
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Graph g(b);
  std::vector<double> c{1.0, 1.0};
  std::vector<double> d{5.0, 5.0};
  TreeAssembler a(g);
  const auto root = a.add_root(0);
  const auto s = a.add_sink(2, 0);
  a.add_segment(s, root, {1, 0});
  const SteinerTree t = a.finalize();
  CostDistanceInstance inst;
  inst.graph = &g;
  inst.cost = &c;
  inst.delay = &d;
  inst.root = 0;
  inst.sinks = {Terminal{2, 1.0}};
  inst.dbif = 100.0;
  const TreeEvaluation e = evaluate_tree(t, inst);
  EXPECT_DOUBLE_EQ(e.sink_delays[0], 10.0);
  EXPECT_DOUBLE_EQ(e.total_delay_penalty, 0.0);
}

}  // namespace
}  // namespace cdst
