// Tests for the utility substrate: heaps, DSU, RNG, sparse map, stats, args.

#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <set>
#include <unordered_map>

#include "util/args.h"
#include "util/binary_heap.h"
#include "util/d_ary_heap.h"
#include "util/disjoint_set.h"
#include "util/fibonacci_heap.h"
#include "util/rng.h"
#include "util/sparse_map.h"
#include "util/stats.h"
#include "util/two_level_heap.h"

namespace cdst {
namespace {

TEST(BinaryHeap, BasicOrdering) {
  BinaryHeap<double> h;
  h.push(3, 3.0);
  h.push(1, 1.0);
  h.push(2, 2.0);
  EXPECT_EQ(h.min_id(), 1u);
  EXPECT_DOUBLE_EQ(h.min_key(), 1.0);
  EXPECT_EQ(h.pop_min(), 1u);
  EXPECT_EQ(h.pop_min(), 2u);
  EXPECT_EQ(h.pop_min(), 3u);
  EXPECT_TRUE(h.empty());
}

TEST(BinaryHeap, DecreaseKeyMovesItemUp) {
  BinaryHeap<double> h;
  for (std::uint32_t i = 0; i < 10; ++i) h.push(i, 100.0 + i);
  h.decrease_key(7, 1.0);
  EXPECT_EQ(h.min_id(), 7u);
  EXPECT_TRUE(h.contains(7));
  EXPECT_DOUBLE_EQ(h.key_of(7), 1.0);
}

TEST(BinaryHeap, PushOrDecreaseIgnoresLargerKey) {
  BinaryHeap<double> h;
  h.push(0, 5.0);
  EXPECT_FALSE(h.push_or_decrease(0, 9.0));
  EXPECT_DOUBLE_EQ(h.key_of(0), 5.0);
  EXPECT_TRUE(h.push_or_decrease(0, 2.0));
  EXPECT_DOUBLE_EQ(h.key_of(0), 2.0);
}

TEST(BinaryHeap, EraseArbitrary) {
  BinaryHeap<int> h;
  for (std::uint32_t i = 0; i < 20; ++i) h.push(i, static_cast<int>(i));
  h.erase(0);
  h.erase(10);
  EXPECT_FALSE(h.contains(0));
  EXPECT_FALSE(h.contains(10));
  int prev = -1;
  while (!h.empty()) {
    const int k = h.min_key();
    EXPECT_GT(k, prev);
    prev = k;
    h.pop_min();
  }
}

class HeapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapPropertyTest, BinaryHeapMatchesStdPriorityQueue) {
  Rng rng(GetParam());
  BinaryHeap<double> heap;
  std::map<std::uint32_t, double> reference;  // id -> key
  for (int step = 0; step < 3000; ++step) {
    const double action = rng.uniform_double();
    if (action < 0.55 || reference.empty()) {
      const auto id = static_cast<std::uint32_t>(rng.uniform(500));
      const double key = rng.uniform_double(0.0, 1000.0);
      if (reference.count(id) != 0u) {
        if (key < reference[id]) {
          heap.decrease_key(id, key);
          reference[id] = key;
        }
      } else {
        heap.push(id, key);
        reference[id] = key;
      }
    } else {
      const std::uint32_t id = heap.pop_min();
      auto min_it = reference.begin();
      for (auto it = reference.begin(); it != reference.end(); ++it) {
        if (it->second < min_it->second) min_it = it;
      }
      EXPECT_DOUBLE_EQ(min_it->second, reference[id]);
      reference.erase(id);
    }
    ASSERT_EQ(heap.size(), reference.size());
  }
}

TEST_P(HeapPropertyTest, FibonacciHeapMatchesBinaryHeap) {
  Rng rng(GetParam() ^ 0xabcdef);
  BinaryHeap<double> bin;
  FibonacciHeap<double> fib;
  for (int step = 0; step < 4000; ++step) {
    const double action = rng.uniform_double();
    if (action < 0.5 || bin.empty()) {
      const auto id = static_cast<std::uint32_t>(rng.uniform(400));
      // Unique keys per id so min ids never tie and the heaps stay in
      // lockstep.
      const double key =
          rng.uniform_double(0.0, 1000.0) + static_cast<double>(id) * 1e-7;
      EXPECT_EQ(bin.push_or_decrease(id, key), fib.push_or_decrease(id, key));
    } else {
      ASSERT_DOUBLE_EQ(bin.min_key(), fib.min_key());
      const std::uint32_t bid = bin.pop_min();
      const std::uint32_t fid = fib.pop_min();
      ASSERT_EQ(bid, fid);
    }
    ASSERT_EQ(bin.size(), fib.size());
  }
}

TEST(DAryHeap, BasicOrderingAndDecrease) {
  DAryHeap<double, 4> h;
  for (std::uint32_t i = 0; i < 20; ++i) h.push(i, 100.0 + i);
  h.decrease_key(13, 1.0);
  EXPECT_EQ(h.min_id(), 13u);
  EXPECT_FALSE(h.push_or_decrease(5, 999.0));
  EXPECT_TRUE(h.push_or_decrease(5, 2.0));
  EXPECT_EQ(h.pop_min(), 13u);
  EXPECT_EQ(h.pop_min(), 5u);
  h.erase(7);
  EXPECT_FALSE(h.contains(7));
  double prev = -1.0;
  while (!h.empty()) {
    EXPECT_GT(h.min_key(), prev);
    prev = h.min_key();
    h.pop_min();
  }
}

TEST_P(HeapPropertyTest, DAryHeapMatchesBinaryHeap) {
  // Random push/decrease/pop/erase ops: the 4-ary heap must stay in lockstep
  // with the binary reference (unique keys so min ids never tie).
  Rng rng(GetParam() ^ 0x4a4a4a);
  BinaryHeap<double> bin;
  DAryHeap<double, 4> dary;
  for (int step = 0; step < 4000; ++step) {
    const double action = rng.uniform_double();
    if (action < 0.5 || bin.empty()) {
      const auto id = static_cast<std::uint32_t>(rng.uniform(400));
      const double key =
          rng.uniform_double(0.0, 1000.0) + static_cast<double>(id) * 1e-7;
      EXPECT_EQ(bin.push_or_decrease(id, key),
                dary.push_or_decrease(id, key));
    } else if (action < 0.58) {
      const std::uint32_t id = bin.min_id();
      bin.erase(id);
      dary.erase(id);
      EXPECT_FALSE(dary.contains(id));
    } else {
      ASSERT_DOUBLE_EQ(bin.min_key(), dary.min_key());
      ASSERT_EQ(bin.pop_min(), dary.pop_min());
    }
    ASSERT_EQ(bin.size(), dary.size());
  }
}

TEST_P(HeapPropertyTest, DAryQueueMatchesStdPriorityQueue) {
  // The plain (non-addressable, duplicates allowed) d-ary queue against the
  // std::priority_queue it replaces in the solver's lazy mode.
  Rng rng(GetParam() + 4096);
  DAryQueue<double, 4> dary;
  std::priority_queue<double, std::vector<double>, std::greater<>> ref;
  for (int step = 0; step < 6000; ++step) {
    if (rng.uniform_double() < 0.55 || ref.empty()) {
      const double key = rng.uniform_double(0.0, 1000.0);
      dary.push(key);
      ref.push(key);
    } else {
      ASSERT_DOUBLE_EQ(dary.top(), ref.top());
      dary.pop();
      ref.pop();
    }
    ASSERT_EQ(dary.size(), ref.size());
  }
  while (!ref.empty()) {
    ASSERT_DOUBLE_EQ(dary.top(), ref.top());
    dary.pop();
    ref.pop();
  }
  EXPECT_TRUE(dary.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99));

TEST(TwoLevelHeap, GlobalMinAcrossGroups) {
  TwoLevelHeap<double> h;
  h.push_or_decrease(0, 5, 50.0);
  h.push_or_decrease(1, 7, 10.0);
  h.push_or_decrease(2, 9, 30.0);
  auto m = h.pop_global_min();
  EXPECT_EQ(m.group, 1u);
  EXPECT_EQ(m.entry, 7u);
  EXPECT_DOUBLE_EQ(m.key, 10.0);
  m = h.pop_global_min();
  EXPECT_EQ(m.group, 2u);
  m = h.pop_global_min();
  EXPECT_EQ(m.group, 0u);
  EXPECT_TRUE(h.empty());
}

TEST(TwoLevelHeap, EraseGroupRemovesAllEntries) {
  TwoLevelHeap<double> h;
  for (std::uint32_t e = 0; e < 10; ++e) h.push_or_decrease(3, e, e * 1.0);
  h.push_or_decrease(1, 0, 100.0);
  h.erase_group(3);
  EXPECT_FALSE(h.empty());
  const auto m = h.pop_global_min();
  EXPECT_EQ(m.group, 1u);
  EXPECT_TRUE(h.empty());
}

TEST_P(HeapPropertyTest, TwoLevelMatchesFlatHeap) {
  Rng rng(GetParam() * 31337);
  TwoLevelHeap<double> two;
  // Reference: map from (group, entry) -> key.
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> reference;
  for (int step = 0; step < 3000; ++step) {
    if (rng.uniform_double() < 0.6 || reference.empty()) {
      const auto g = static_cast<std::uint32_t>(rng.uniform(8));
      const auto e = static_cast<std::uint32_t>(rng.uniform(100));
      const double key = rng.uniform_double(0.0, 100.0);
      two.push_or_decrease(g, e, key);
      auto it = reference.find({g, e});
      if (it == reference.end()) {
        reference[{g, e}] = key;
      } else {
        it->second = std::min(it->second, key);
      }
    } else {
      const auto m = two.pop_global_min();
      double best = 1e18;
      for (const auto& [k, v] : reference) best = std::min(best, v);
      EXPECT_DOUBLE_EQ(m.key, best);
      reference.erase({m.group, m.entry});
    }
  }
}

TEST(DisjointSet, UniteAndFind) {
  DisjointSet d(10);
  EXPECT_EQ(d.num_sets(), 10u);
  EXPECT_TRUE(d.unite(1, 2));
  EXPECT_TRUE(d.unite(2, 3));
  EXPECT_FALSE(d.unite(1, 3));
  EXPECT_TRUE(d.same(1, 3));
  EXPECT_FALSE(d.same(0, 1));
  EXPECT_EQ(d.num_sets(), 8u);
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42), c(43);
  bool all_same = true;
  bool any_diff_c = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a(), vb = b(), vc = c();
    all_same = all_same && (va == vb);
    any_diff_c = any_diff_c || (va != vc);
  }
  EXPECT_TRUE(all_same);
  EXPECT_TRUE(any_diff_c);
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(1234);
  std::array<int, 10> buckets{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.uniform(10)];
  for (const int b : buckets) {
    EXPECT_NEAR(b, n / 10, n / 100);  // within 10% relative
  }
}

TEST(SparseMap, InsertFindClear) {
  SparseMap<int> m;
  EXPECT_TRUE(m.empty());
  m[5] = 50;
  m[123456] = 7;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(5), nullptr);
  EXPECT_EQ(*m.find(5), 50);
  EXPECT_EQ(m.find(6), nullptr);
  m.clear();
  EXPECT_EQ(m.find(5), nullptr);
  EXPECT_TRUE(m.empty());
}

TEST_P(HeapPropertyTest, SparseMapMatchesUnorderedMap) {
  Rng rng(GetParam() + 555);
  SparseMap<std::uint64_t> sm;
  std::unordered_map<std::uint32_t, std::uint64_t> ref;
  for (int step = 0; step < 20000; ++step) {
    const auto key = static_cast<std::uint32_t>(rng.uniform(5000));
    if (rng.uniform_double() < 0.7) {
      const std::uint64_t val = rng();
      sm[key] = val;
      ref[key] = val;
    } else {
      const auto* p = sm.find(key);
      const auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_EQ(p, nullptr);
      } else {
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(*p, it->second);
      }
    }
  }
  EXPECT_EQ(sm.size(), ref.size());
  std::size_t visited = 0;
  sm.for_each([&](std::uint32_t k, std::uint64_t& v) {
    EXPECT_EQ(ref.at(k), v);
    ++visited;
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(Stats, AccumulatorMoments) {
  StatAccumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 1e-3);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.5);
}

TEST(Args, ParsesOptionsAndFlags) {
  ArgParser p("prog", "test");
  p.add_option("count", "10", "a count");
  p.add_flag("fast", false, "go fast");
  p.add_option("name", "x", "a name");
  const char* argv[] = {"prog", "--count=42", "--fast", "--name", "hello"};
  p.parse(5, argv);
  EXPECT_EQ(p.get_int("count"), 42);
  EXPECT_TRUE(p.get_bool("fast"));
  EXPECT_EQ(p.get_string("name"), "hello");
}

TEST(Args, UnknownOptionThrows) {
  ArgParser p("prog", "test");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(p.parse(2, argv), ContractViolation);
}

TEST(Args, DefaultsUsedWhenAbsent) {
  ArgParser p("prog", "test");
  p.add_option("scale", "0.5", "scale");
  const char* argv[] = {"prog"};
  p.parse(1, argv);
  EXPECT_DOUBLE_EQ(p.get_double("scale"), 0.5);
}

}  // namespace
}  // namespace cdst
