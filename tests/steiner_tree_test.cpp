// Tests for the embedded Steiner tree structure and its assembler:
// segment splitting, normalization to bifurcation-compatible form, and
// structural validation.

#include <gtest/gtest.h>

#include "core/steiner_tree.h"
#include "graph/graph.h"

namespace cdst {
namespace {

/// Path graph 0-1-2-...-(n-1); edge i connects i and i+1.
Graph path_graph(std::size_t n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return Graph(b);
}

TEST(TreeAssembler, SimpleRootToSinkPath) {
  const Graph g = path_graph(5);
  TreeAssembler a(g);
  const auto root = a.add_root(0);
  const auto sink = a.add_sink(4, 0);
  a.add_segment(sink, root, {3, 2, 1, 0});
  const SteinerTree t = a.finalize();
  t.validate(g, 1);
  EXPECT_EQ(t.nodes.size(), 2u);
  EXPECT_EQ(t.nodes[1].kind, NodeKind::kSink);
  EXPECT_EQ(t.nodes[1].up_path.size(), 4u);
}

TEST(TreeAssembler, NodeAtSplitsSegmentInterior) {
  const Graph g = path_graph(6);
  TreeAssembler a(g);
  const auto root = a.add_root(0);
  const auto sink = a.add_sink(5, 0);
  a.add_segment(sink, root, {4, 3, 2, 1, 0});
  EXPECT_TRUE(a.covers(3));
  EXPECT_FALSE(a.covers(42));
  const auto mid = a.node_at(3);
  ASSERT_NE(mid, TreeAssembler::kNoNode);
  EXPECT_EQ(a.vertex_of(mid), 3u);
  // Splitting twice at the same vertex returns the same node.
  EXPECT_EQ(a.node_at(3), mid);
  const SteinerTree t = a.finalize();
  t.validate(g, 1);
  EXPECT_EQ(t.nodes.size(), 3u);
}

TEST(TreeAssembler, AttachCreatesBifurcation) {
  // Star around vertex 2: 0-1-2-3-4 plus edge 2-5.
  GraphBuilder b(6);
  b.add_edge(0, 1);  // e0
  b.add_edge(1, 2);  // e1
  b.add_edge(2, 3);  // e2
  b.add_edge(3, 4);  // e3
  b.add_edge(2, 5);  // e4
  const Graph g(b);

  TreeAssembler a(g);
  const auto root = a.add_root(0);
  const auto s0 = a.add_sink(4, 0);
  const auto s1 = a.add_sink(5, 1);
  a.add_segment(s0, root, {3, 2, 1, 0});
  const auto attach = a.node_at(2);  // split at vertex 2
  a.add_segment(s1, attach, {4});
  const SteinerTree t = a.finalize();
  t.validate(g, 2);
  // Nodes: root, two sinks, split Steiner point.
  EXPECT_EQ(t.nodes.size(), 4u);
  // The Steiner node at vertex 2 must have two children.
  bool found_bifurcation = false;
  for (std::size_t i = 0; i < t.nodes.size(); ++i) {
    if (t.nodes[i].kind == NodeKind::kSteiner) {
      EXPECT_EQ(t.children[i].size(), 2u);
      found_bifurcation = true;
    }
  }
  EXPECT_TRUE(found_bifurcation);
}

TEST(TreeAssembler, TerminalWithBranchesGetsStackedTwin) {
  // Sink at vertex 2 with tree continuing through it:
  // root 0, sink A at 2, sink B at 4. Path root->B passes through 2.
  const Graph g = path_graph(5);
  TreeAssembler a(g);
  const auto root = a.add_root(0);
  const auto sa = a.add_sink(2, 0);
  const auto sb = a.add_sink(4, 1);
  a.add_segment(sa, root, {1, 0});
  a.add_segment(sb, sa, {3, 2});
  const SteinerTree t = a.finalize();
  t.validate(g, 2);  // validate enforces sinks-are-leaves
  // The sink at 2 must have been given a Steiner twin carrying the branches:
  // root + 2 sinks + twin.
  EXPECT_EQ(t.nodes.size(), 4u);
}

TEST(TreeAssembler, ZeroLengthSegmentBetweenCoincidentTerminals) {
  const Graph g = path_graph(3);
  TreeAssembler a(g);
  const auto root = a.add_root(0);
  const auto s0 = a.add_sink(2, 0);
  const auto s1 = a.add_sink(2, 1);  // same vertex as s0
  a.add_segment(s0, root, {1, 0});
  a.add_segment(s1, s0, {});
  const SteinerTree t = a.finalize();
  t.validate(g, 2);
}

TEST(TreeAssembler, DisconnectedStructureThrows) {
  const Graph g = path_graph(4);
  TreeAssembler a(g);
  a.add_root(0);
  a.add_sink(3, 0);  // never connected
  EXPECT_THROW(a.finalize(), ContractViolation);
}

TEST(TreeAssembler, NonContiguousPathRejected) {
  const Graph g = path_graph(5);
  TreeAssembler a(g);
  const auto root = a.add_root(0);
  const auto sink = a.add_sink(4, 0);
  EXPECT_THROW(a.add_segment(sink, root, {0, 1, 2, 3}),
               ContractViolation);  // edges in wrong order
}

TEST(SteinerTree, ValidateCatchesDuplicatedEdge) {
  const Graph g = path_graph(3);
  SteinerTree t;
  t.nodes.resize(3);
  t.nodes[0].graph_vertex = 0;
  t.nodes[0].kind = NodeKind::kRoot;
  t.nodes[0].parent = -1;
  t.nodes[1].graph_vertex = 2;
  t.nodes[1].kind = NodeKind::kSteiner;
  t.nodes[1].parent = 0;
  t.nodes[1].up_path = {1, 0};
  t.nodes[2].graph_vertex = 0;
  t.nodes[2].kind = NodeKind::kSink;
  t.nodes[2].sink_index = 0;
  t.nodes[2].parent = 1;
  t.nodes[2].up_path = {0, 1};  // walks 0 -> 1 -> 2, reusing both edges
  t.children = {{1}, {2}, {}};
  EXPECT_THROW(t.validate(g, 1), ContractViolation);
  t.validate(g, 1, /*allow_shared_edges=*/true);  // multiset mode accepts
}

}  // namespace
}  // namespace cdst
