// Tests for the optimal topology embedding DP and the exact enumeration
// oracle.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "embed/embedder.h"
#include "embed/enumerate.h"
#include "graph/dijkstra.h"
#include "grid/routing_grid.h"
#include "topology/rsmt.h"
#include "util/rng.h"

namespace cdst {
namespace {

struct GridInstance {
  std::unique_ptr<RoutingGrid> grid;
  std::vector<double> cost;
  std::vector<double> delay;
  CostDistanceInstance inst;
  std::vector<PlaneTerminal> plane_sinks;
  Point2 root_xy;
};

GridInstance make_instance(std::uint64_t seed, int nx, int ny, int nz,
                           std::size_t num_sinks, double dbif = 0.0) {
  GridInstance gi;
  gi.grid = std::make_unique<RoutingGrid>(
      nx, ny, make_default_layer_stack(nz), ViaSpec{});
  Rng rng(seed);
  const Graph& g = gi.grid->graph();
  gi.cost.resize(g.num_edges());
  gi.delay = gi.grid->edge_delays();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    gi.cost[e] =
        gi.grid->base_costs()[e] * std::exp(rng.uniform_double(0.0, 1.5));
  }
  gi.inst.graph = &g;
  gi.inst.cost = &gi.cost;
  gi.inst.delay = &gi.delay;
  gi.inst.dbif = dbif;
  gi.inst.eta = 0.25;
  std::set<VertexId> used;
  auto pick = [&]() {
    while (true) {
      const auto x = static_cast<std::int32_t>(rng.uniform(nx));
      const auto y = static_cast<std::int32_t>(rng.uniform(ny));
      const VertexId v = gi.grid->vertex_at(x, y, 0);
      if (used.insert(v).second) return v;
    }
  };
  gi.inst.root = pick();
  gi.root_xy = gi.grid->position(gi.inst.root).xy();
  for (std::size_t s = 0; s < num_sinks; ++s) {
    const VertexId v = pick();
    const double w = std::exp(rng.uniform_double(-1.5, 1.5));
    gi.inst.sinks.push_back(Terminal{v, w});
    gi.plane_sinks.push_back(
        PlaneTerminal{gi.grid->position(v).xy(), w, 0.0});
  }
  return gi;
}

TEST(Enumerate, TopologyCountsMatchDoubleFactorial) {
  EXPECT_EQ(enumerate_binary_topologies(1).size(), 1u);
  EXPECT_EQ(enumerate_binary_topologies(2).size(), 1u);
  EXPECT_EQ(enumerate_binary_topologies(3).size(), 3u);
  EXPECT_EQ(enumerate_binary_topologies(4).size(), 15u);
  EXPECT_EQ(enumerate_binary_topologies(5).size(), 105u);
}

TEST(Enumerate, TopologiesAreValidAndBinary) {
  for (const PlaneTopology& t : enumerate_binary_topologies(4)) {
    t.validate(4);
    const auto ch = t.children();
    EXPECT_EQ(ch[0].size(), 1u) << "root terminal must be a leaf";
    for (std::size_t i = 1; i < t.nodes.size(); ++i) {
      if (t.nodes[i].sink_index >= 0) {
        EXPECT_TRUE(ch[i].empty()) << "sink terminals must be leaves";
      } else {
        EXPECT_EQ(ch[i].size(), 2u) << "internal nodes must bifurcate";
      }
    }
  }
}

TEST(Embed, StarTopologyEqualsIndependentShortestPaths) {
  const GridInstance gi = make_instance(21, 7, 7, 3, 4);
  const PlaneTopology star = star_topology(gi.root_xy, gi.plane_sinks);
  const EmbedResult r = embed_topology(star, gi.inst);
  double expected = 0.0;
  for (const Terminal& s : gi.inst.sinks) {
    const auto sp = dijkstra(
        *gi.inst.graph, {gi.inst.root},
        [&](EdgeId e) { return gi.cost[e] + s.weight * gi.delay[e]; },
        s.vertex);
    expected += sp.dist[s.vertex];
  }
  EXPECT_NEAR(r.eval.objective, expected, 1e-6)
      << "a star topology decomposes into independent weighted paths";
}

TEST(Embed, SingleSinkChainIsShortestPath) {
  const GridInstance gi = make_instance(22, 6, 6, 3, 1);
  const PlaneTopology star = star_topology(gi.root_xy, gi.plane_sinks);
  const EmbedResult r = embed_topology(star, gi.inst);
  const double w = gi.inst.sinks[0].weight;
  const auto sp = dijkstra(
      *gi.inst.graph, {gi.inst.root},
      [&](EdgeId e) { return gi.cost[e] + w * gi.delay[e]; },
      gi.inst.sinks[0].vertex);
  EXPECT_NEAR(r.eval.objective, sp.dist[gi.inst.sinks[0].vertex], 1e-6);
}

class EmbedSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EmbedSeeds, ExactIsNeverWorseThanAnyEmbedding) {
  for (const double dbif : {0.0, 3.0}) {
    const GridInstance gi = make_instance(GetParam() * 17, 6, 6, 3, 3, dbif);
    const ExactResult exact = solve_exact(gi.inst);
    EXPECT_EQ(exact.num_topologies, 3u);  // (2*4 - 5)!! for 3 sinks + root

    // Exact <= optimal embedding of any heuristic topology.
    const PlaneTopology star = star_topology(gi.root_xy, gi.plane_sinks);
    const PlaneTopology steiner = rsmt_topology(gi.root_xy, gi.plane_sinks);
    EXPECT_LE(exact.eval.objective,
              embed_topology(star, gi.inst).eval.objective + 1e-9);
    EXPECT_LE(exact.eval.objective,
              embed_topology(steiner, gi.inst).eval.objective + 1e-9);
  }
}

TEST_P(EmbedSeeds, EmbeddingIsOptimalForItsTopology) {
  // Verify the DP against brute force: for a 2-sink chain topology
  // root - s0 - s1, enumerate the junction vertex placement by hand.
  const GridInstance gi = make_instance(GetParam() * 29 + 3, 5, 5, 2, 2);
  PlaneTopology chain;
  chain.nodes.push_back(PlaneTopology::Node{gi.root_xy, -1, -1});
  chain.nodes.push_back(
      PlaneTopology::Node{gi.plane_sinks[0].pos, 0, 0});
  chain.nodes.push_back(
      PlaneTopology::Node{gi.plane_sinks[1].pos, 1, 1});
  const EmbedResult r = embed_topology(chain, gi.inst);

  // Brute force: s0 is pinned; cost = dist_{c + (w0+w1) d}(root, s0pin)
  // + dist_{c + w1 d}(s0pin, s1pin).
  const double w0 = gi.inst.sinks[0].weight;
  const double w1 = gi.inst.sinks[1].weight;
  const VertexId p0 = gi.inst.sinks[0].vertex;
  const VertexId p1 = gi.inst.sinks[1].vertex;
  const auto up = dijkstra(
      *gi.inst.graph, {gi.inst.root},
      [&](EdgeId e) { return gi.cost[e] + (w0 + w1) * gi.delay[e]; }, p0);
  const auto down = dijkstra(
      *gi.inst.graph, {p0},
      [&](EdgeId e) { return gi.cost[e] + w1 * gi.delay[e]; }, p1);
  EXPECT_NEAR(r.eval.objective, up.dist[p0] + down.dist[p1], 1e-6);
}

TEST_P(EmbedSeeds, EmbeddedTreesAreStructurallySound) {
  const GridInstance gi = make_instance(GetParam() + 71, 8, 8, 3, 6, 2.0);
  const PlaneTopology topo = rsmt_topology(gi.root_xy, gi.plane_sinks);
  const EmbedResult r = embed_topology(topo, gi.inst);
  r.tree.validate(*gi.inst.graph, gi.inst.sinks.size(),
                  /*allow_shared_edges=*/true);
  const TreeEvaluation re = evaluate_tree(r.tree, gi.inst);
  EXPECT_NEAR(re.objective, r.eval.objective, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmbedSeeds,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace cdst
