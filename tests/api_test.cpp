// Tests for the session API (api/cdst.h): structured Status/StatusOr,
// CdSolver scratch recycling and deterministic batch solving, RunControl
// progress/cancellation, the resumable warm-starting Router, and the
// equivalence of the deprecated one-shot wrappers with the sessions that
// now implement them.
//
// Compares against the deprecated legacy entry points on purpose.
#define CDST_ALLOW_DEPRECATED

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "api/cdst.h"
#include "grid/future_cost.h"
#include "grid/routing_grid.h"
#include "route/netlist_gen.h"
#include "route/steiner_oracle.h"
#include "test_instances.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cdst {
namespace {

using testutil::GridInstance;
using testutil::make_grid_instance;
using testutil::tiny_chip;

// ----------------------------------------------------------------- status --

TEST(Status, DefaultIsOkAndCodesRoundTrip) {
  const Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.to_string(), "OK");

  const Status c = Status::Cancelled("stopped");
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.code(), StatusCode::kCancelled);
  EXPECT_EQ(c.to_string(), "CANCELLED: stopped");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
}

TEST(Status, StatusOrHoldsValueOrError) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.status().code(), StatusCode::kOk);

  StatusOr<int> e(Status::InvalidArgument("bad"));
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
  EXPECT_THROW(e.value(), ContractViolation);
}

// --------------------------------------------------------------- cd solver --

TEST(CdSolver, MatchesLegacyOneShotBitIdentically) {
  const auto gi = make_grid_instance(11, 10, 9, 3, 7);
  SolverOptions opts;
  opts.future_cost = gi->fc.get();
  opts.seed = 5;

  const SolveResult legacy = solve_cost_distance(gi->inst, opts);
  CdSolver solver(opts);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const StatusOr<SolveResult> r = solver.solve(gi->inst);
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_DOUBLE_EQ(r->eval.objective, legacy.eval.objective);
    EXPECT_EQ(r->tree.all_edges(), legacy.tree.all_edges());
    EXPECT_EQ(r->stats.labels_settled, legacy.stats.labels_settled);
  }
}

TEST(CdSolver, ScratchIsInvisibleAcrossDifferentInstances) {
  // Interleave instances of very different size/shape on ONE session: every
  // solve must match a fresh-session solve of the same instance.
  CdSolver session;
  for (const std::uint64_t seed : {3u, 4u, 5u}) {
    for (const std::size_t sinks : {2u, 9u, 17u}) {
      const auto gi =
          make_grid_instance(seed * 131, 8 + sinks % 5, 9, 3, sinks);
      SolverOptions opts;
      opts.future_cost = gi->fc.get();
      opts.seed = seed;
      session.set_options(opts);
      const StatusOr<SolveResult> warm = session.solve(gi->inst);
      CdSolver fresh(opts);
      const StatusOr<SolveResult> cold = fresh.solve(gi->inst);
      ASSERT_TRUE(warm.ok() && cold.ok());
      EXPECT_EQ(warm->tree.all_edges(), cold->tree.all_edges());
      EXPECT_DOUBLE_EQ(warm->eval.objective, cold->eval.objective);
    }
  }
}

TEST(CdSolver, BatchIsBitIdenticalAtAnyThreadCount) {
  // GridInstance is self-referential (inst points into its own vectors), so
  // hold the fixtures behind stable pointers.
  std::vector<std::unique_ptr<GridInstance>> gis;
  std::vector<CdSolver::Job> jobs;
  for (std::uint64_t s = 1; s <= 12; ++s) {
    gis.push_back(make_grid_instance(s * 71, 9, 8, 3, 2 + s % 7));
  }
  for (std::size_t i = 0; i < gis.size(); ++i) {
    CdSolver::Job job;
    job.instance = &gis[i]->inst;
    job.future_cost = gis[i]->fc.get();
    job.seed = i + 1;
    jobs.push_back(job);
  }

  // Reference: sequential solve() calls.
  std::vector<SolveResult> reference;
  {
    CdSolver solver;
    for (const CdSolver::Job& job : jobs) {
      StatusOr<SolveResult> r = solver.solve(job);
      ASSERT_TRUE(r.ok()) << r.status().to_string();
      reference.push_back(*std::move(r));
    }
  }

  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    CdSolver solver({}, &pool);
    std::size_t progress_calls = 0;
    RunControl control;
    control.on_progress = [&](const Progress& p) {
      EXPECT_STREQ(p.stage, "solve_batch");
      EXPECT_EQ(p.total, jobs.size());
      ++progress_calls;
    };
    const StatusOr<std::vector<SolveResult>> batch =
        solver.solve_batch(std::span<const CdSolver::Job>(jobs), control);
    ASSERT_TRUE(batch.ok()) << batch.status().to_string();
    ASSERT_EQ(batch->size(), reference.size());
    EXPECT_EQ(progress_calls, jobs.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ((*batch)[i].tree.all_edges(), reference[i].tree.all_edges())
          << "instance " << i << " at " << threads << " threads";
      EXPECT_DOUBLE_EQ((*batch)[i].eval.objective,
                       reference[i].eval.objective);
      EXPECT_EQ((*batch)[i].stats.labels_settled,
                reference[i].stats.labels_settled);
    }
  }
}

TEST(CdSolver, InvalidInstanceReturnsStatusInsteadOfThrowing) {
  auto gi = make_grid_instance(21, 6, 6, 3, 2);
  gi->inst.sinks.clear();  // validate() rejects sink-less instances
  CdSolver solver;
  const StatusOr<SolveResult> r = solver.solve(gi->inst);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // Disconnected terminals surface the same way (the legacy path threw).
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g(b);
  const std::vector<double> c{1.0, 1.0};
  const std::vector<double> d{1.0, 1.0};
  CostDistanceInstance inst;
  inst.graph = &g;
  inst.cost = &c;
  inst.delay = &d;
  inst.root = 0;
  inst.sinks = {Terminal{3, 1.0}};
  const StatusOr<SolveResult> r2 = solver.solve(inst);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  CdSolver::Job no_instance;
  EXPECT_EQ(solver.solve(no_instance).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CdSolver, PreCancelledTokenShortCircuits) {
  const auto gi = make_grid_instance(31, 8, 8, 3, 5);
  CdSolver solver;
  CancelToken token;
  token.request_cancel();
  RunControl control;
  control.cancel = &token;
  const StatusOr<SolveResult> r = solver.solve(gi->inst, control);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);

  std::vector<CostDistanceInstance> instances{gi->inst};
  const auto batch = solver.solve_batch(
      std::span<const CostDistanceInstance>(instances), control);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kCancelled);
}

TEST(CdSolver, CancelMidSolveFromProgressCallback) {
  // Cancel from inside the merge-progress callback; the solver must unwind
  // cleanly (ASan run verifies leak-freedom of the abandoned search state)
  // and the session must stay usable for the next solve.
  const auto gi = make_grid_instance(41, 20, 20, 4, 40);
  SolverOptions opts;
  opts.future_cost = gi->fc.get();
  CdSolver solver(opts);
  CancelToken token;
  RunControl control;
  control.cancel = &token;
  control.cancel_poll_interval = 16;  // tight polling for the test
  std::size_t merges_seen = 0;
  control.on_progress = [&](const Progress& p) {
    EXPECT_STREQ(p.stage, "solve");
    merges_seen = p.done;
    if (p.done >= 2) token.request_cancel();
  };
  const StatusOr<SolveResult> r = solver.solve(gi->inst, control);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_GE(merges_seen, 2u);
  EXPECT_LT(merges_seen, gi->inst.sinks.size())
      << "cancellation should have stopped the solve well before completion";

  // The same session finishes the instance when allowed to.
  const StatusOr<SolveResult> full = solver.solve(gi->inst);
  ASSERT_TRUE(full.ok()) << full.status().to_string();
  EXPECT_EQ(full->stats.iterations, gi->inst.sinks.size());
}

// ------------------------------------------------------------------ router --

TEST(RouterSession, MatchesLegacyRouteChipBitIdentically) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.iterations = 3;
  opts.seed = 5;
  const RouterResult legacy = route_chip(grid, nl, opts);

  Router session(grid, nl, opts);
  ASSERT_TRUE(session.run(3).ok());
  EXPECT_EQ(session.rounds_completed(), 3);
  const RouterResult r = session.result();
  ASSERT_EQ(r.routes.size(), legacy.routes.size());
  for (std::size_t i = 0; i < r.routes.size(); ++i) {
    EXPECT_EQ(r.routes[i], legacy.routes[i]) << "net " << i;
  }
  ASSERT_EQ(r.sink_delays.size(), legacy.sink_delays.size());
  for (std::size_t s = 0; s < r.sink_delays.size(); ++s) {
    EXPECT_DOUBLE_EQ(r.sink_delays[s], legacy.sink_delays[s]);
    EXPECT_DOUBLE_EQ(r.sink_weights[s], legacy.sink_weights[s]);
  }
  EXPECT_DOUBLE_EQ(r.timing.total_negative_slack,
                   legacy.timing.total_negative_slack);
  EXPECT_EQ(r.wires.num_vias, legacy.wires.num_vias);
}

TEST(RouterSession, WarmResumedRunsMatchOneFreshRun) {
  // run(2); run(2) must be bit-identical to run(4): seeds and multiplier
  // steps are indexed by the absolute round, and the final-round weight
  // state is preserved across the split.
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.batch_size = 16;
  opts.seed = 9;

  Router split(grid, nl, opts);
  ASSERT_TRUE(split.run(2).ok());
  ASSERT_TRUE(split.run(2).ok());
  EXPECT_EQ(split.rounds_completed(), 4);

  Router fresh(grid, nl, opts);
  ASSERT_TRUE(fresh.run(4).ok());

  const RouterResult a = split.result();
  const RouterResult b = fresh.result();
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i], b.routes[i]) << "net " << i;
  }
  for (std::size_t s = 0; s < a.sink_delays.size(); ++s) {
    EXPECT_DOUBLE_EQ(a.sink_delays[s], b.sink_delays[s]) << "sink " << s;
    EXPECT_DOUBLE_EQ(a.sink_weights[s], b.sink_weights[s]) << "sink " << s;
  }
}

TEST(RouterSession, SharedPoolThreadCountInvariant) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.batch_size = 16;

  std::vector<RouterResult> results;
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    Router session(grid, nl, opts, &pool);
    ASSERT_TRUE(session.run(2).ok());
    results.push_back(session.result());
  }
  ASSERT_EQ(results[0].routes.size(), results[1].routes.size());
  for (std::size_t i = 0; i < results[0].routes.size(); ++i) {
    EXPECT_EQ(results[0].routes[i], results[1].routes[i]) << "net " << i;
  }
}

TEST(RouterSession, RunValidatesArguments) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  Router session(grid, nl, RouterOptions{});
  EXPECT_EQ(session.run(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(session.run(0).ok());  // no-op
  EXPECT_EQ(session.rounds_completed(), 0);
}

TEST(RouterSession, CancelMidRunLeavesCoherentResumableState) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.batch_size = 8;

  Router session(grid, nl, opts);
  CancelToken token;
  RunControl control;
  control.cancel = &token;
  std::size_t batches_seen = 0;
  control.on_progress = [&](const Progress& p) {
    EXPECT_STREQ(p.stage, "route");
    if (++batches_seen == 2) token.request_cancel();
  };
  const Status st = session.run(2, control);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_EQ(session.rounds_completed(), 0);

  // The snapshot is coherent (metrics computable, sizes right) even though
  // only part of the first round committed.
  const RouterResult partial = session.result();
  EXPECT_EQ(partial.routes.size(), nl.nets.size());

  // Resuming after clearing the token completes normally.
  token.reset();
  ASSERT_TRUE(session.run(2, control).ok());
  EXPECT_EQ(session.rounds_completed(), 2);
  const RouterResult full = session.result();
  EXPECT_GT(full.wires.wirelength_gcells, 0.0);
}

TEST(RouterSession, SetOptionsReroutesWarmFromConvergedState) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;

  Router session(grid, nl, opts);
  ASSERT_TRUE(session.run(2).ok());
  const std::vector<double> warm_weights = session.sink_weights();

  RouterOptions changed = opts;
  changed.oracle.dbif = 3.0;  // option change: re-route warm
  ASSERT_TRUE(session.set_options(changed).ok());
  EXPECT_EQ(session.sink_weights(), warm_weights)
      << "option changes must keep the Lagrange multipliers";
  ASSERT_TRUE(session.run(1).ok());
  EXPECT_EQ(session.rounds_completed(), 3);
  const RouterResult r = session.result();
  EXPECT_EQ(r.routes.size(), nl.nets.size());
  EXPECT_GT(r.wires.wirelength_gcells, 0.0);

  RouterOptions bad = changed;
  bad.batch_size = 0;
  EXPECT_EQ(session.set_options(bad).code(), StatusCode::kInvalidArgument);
}

// -------------------------------------------------------------- event sinks --

namespace {

/// Records every event; the tests below assert ordering guarantees.
struct RecordingSink final : EventSink {
  std::vector<SolveMergeEvent> merges;
  std::vector<JobEvent> jobs;
  std::vector<RouterShardEvent> shards;
  std::vector<RouterRoundEvent> rounds;
  void on_solve_merge(const SolveMergeEvent& e) override {
    merges.push_back(e);
  }
  void on_job(const JobEvent& e) override { jobs.push_back(e); }
  void on_router_shard(const RouterShardEvent& e) override {
    shards.push_back(e);
  }
  void on_router_round(const RouterRoundEvent& e) override {
    rounds.push_back(e);
  }
};

}  // namespace

TEST(EventSink, SolveEmitsTypedMergeTicks) {
  const auto gi = make_grid_instance(51, 10, 10, 3, 9);
  SolverOptions opts;
  opts.future_cost = gi->fc.get();
  CdSolver solver(opts);
  RecordingSink sink;
  RunControl control;
  control.events = &sink;
  ASSERT_TRUE(solver.solve(gi->inst, control).ok());
  ASSERT_EQ(sink.merges.size(), gi->inst.sinks.size())
      << "one merge tick per sink";
  for (std::size_t i = 0; i < sink.merges.size(); ++i) {
    EXPECT_EQ(sink.merges[i].merges_done, i + 1);
    EXPECT_EQ(sink.merges[i].merges_total, gi->inst.sinks.size());
    if (i > 0) {
      EXPECT_GE(sink.merges[i].labels_settled,
                sink.merges[i - 1].labels_settled);
    }
  }
}

TEST(EventSink, BatchEmitsOneJobCompletionPerJob) {
  std::vector<std::unique_ptr<GridInstance>> gis;
  std::vector<CdSolver::Job> jobs;
  for (std::uint64_t s = 1; s <= 8; ++s) {
    gis.push_back(make_grid_instance(s * 31, 8, 8, 3, 3));
    CdSolver::Job job;
    job.instance = &gis.back()->inst;
    job.future_cost = gis.back()->fc.get();
    jobs.push_back(job);
  }
  ThreadPool pool(4);
  CdSolver solver({}, &pool);
  RecordingSink sink;
  RunControl control;
  control.events = &sink;
  ASSERT_TRUE(
      solver.solve_batch(std::span<const CdSolver::Job>(jobs), control).ok());
  ASSERT_EQ(sink.jobs.size(), jobs.size());
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < sink.jobs.size(); ++i) {
    EXPECT_EQ(sink.jobs[i].completed, i + 1) << "strictly monotonic count";
    EXPECT_EQ(sink.jobs[i].submitted, jobs.size());
    EXPECT_EQ(sink.jobs[i].status, StatusCode::kOk);
    seen.insert(sink.jobs[i].index);
  }
  EXPECT_EQ(seen.size(), jobs.size()) << "each index completes exactly once";
}

TEST(EventSink, RouterRoundsCarryCongestionAtTheBarrier) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.batch_size = 16;

  Router session(grid, nl, opts);
  RecordingSink sink;
  RunControl control;
  control.events = &sink;
  ASSERT_TRUE(session.run(2, control).ok());

  std::size_t completes = 0;
  int last_complete_round = -1;
  for (const RouterRoundEvent& e : sink.rounds) {
    EXPECT_EQ(e.nets_total, nl.nets.size());
    EXPECT_EQ(e.target_round, 2);
    EXPECT_FALSE(e.cancelled);
    if (e.round_complete) {
      EXPECT_EQ(e.nets_done, nl.nets.size());
      EXPECT_GE(e.ace4, 0.0) << "barrier events carry congestion stats";
      EXPECT_EQ(e.round, ++last_complete_round);
      ++completes;
    } else {
      EXPECT_LT(e.ace4, 0.0) << "mid-round events carry no congestion";
      EXPECT_EQ(e.round, last_complete_round + 1)
          << "no round r+1 event before round r completed";
    }
  }
  EXPECT_EQ(completes, 2u) << "one round_complete per round";
}

TEST(EventSink, ShardedRoundsEmitShardBoundariesWithTiles) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.shards = 4;

  Router session(grid, nl, opts);
  RecordingSink sink;
  RunControl control;
  control.events = &sink;
  ASSERT_TRUE(session.run(1, control).ok());

  ASSERT_EQ(sink.shards.size(), 4u) << "one event per shard";
  std::size_t nets_covered = 0;
  std::size_t last_done = 0;
  std::set<std::pair<int, int>> tiles;
  for (const RouterShardEvent& e : sink.shards) {
    EXPECT_EQ(e.round, 0);
    EXPECT_EQ(e.shards, 4);
    EXPECT_EQ(e.nets_total, nl.nets.size());
    EXPECT_GE(e.nets_done, last_done) << "monotonic progress";
    last_done = e.nets_done;
    nets_covered += e.shard_nets;
    tiles.insert({e.tile_x, e.tile_y});
  }
  EXPECT_EQ(nets_covered, nl.nets.size()) << "shards partition the netlist";
  EXPECT_EQ(tiles.size(), 4u) << "each shard reports a distinct tile";
  ASSERT_EQ(sink.rounds.size(), 1u);
  EXPECT_TRUE(sink.rounds[0].round_complete);
  EXPECT_GE(sink.rounds[0].ace4, 0.0);
}

TEST(EventSink, CancelledRunEmitsFinalRoundSummary) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.batch_size = 8;

  // Cancel from inside the sink after the second batch boundary; the run
  // must still deliver one final cancelled round summary naming the round
  // the unwind stopped at, with congestion of the state the session kept.
  struct CancellingSink final : EventSink {
    CancelToken* token{nullptr};
    std::size_t boundaries{0};
    std::vector<RouterRoundEvent> summaries;
    void on_router_round(const RouterRoundEvent& e) override {
      if (e.cancelled) {
        summaries.push_back(e);
        return;
      }
      if (++boundaries == 2) token->request_cancel();
    }
  } sink;
  CancelToken token;
  sink.token = &token;
  RunControl control;
  control.cancel = &token;
  control.events = &sink;

  Router session(grid, nl, opts);
  const Status st = session.run(2, control);
  ASSERT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_EQ(session.rounds_completed(), 0);
  ASSERT_EQ(sink.summaries.size(), 1u)
      << "exactly one cancelled round summary";
  const RouterRoundEvent& summary = sink.summaries.back();
  EXPECT_EQ(summary.round, 0) << "the round the unwind stopped at";
  EXPECT_EQ(summary.nets_total, nl.nets.size());
  EXPECT_EQ(summary.nets_done, 16u)
      << "two committed batches of 8 nets survive the rollback";
  EXPECT_GE(summary.ace4, 0.0);

  // A sharded session reports the same way (pre-cancelled: round 1 is the
  // one that never started committing).
  RouterOptions sharded = opts;
  sharded.shards = 4;
  Router session2(grid, nl, sharded);
  ASSERT_TRUE(session2.run(1).ok());
  sink.summaries.clear();
  token.reset();
  token.request_cancel();
  ASSERT_EQ(session2.run(1, control).code(), StatusCode::kCancelled);
  ASSERT_EQ(sink.summaries.size(), 1u);
  EXPECT_EQ(sink.summaries.back().round, 1);
  EXPECT_EQ(sink.summaries.back().nets_done, 0u);
}

TEST(EventSink, LegacyProgressAndTypedSinkBothObserve) {
  const auto gi = make_grid_instance(61, 10, 10, 3, 6);
  SolverOptions opts;
  opts.future_cost = gi->fc.get();
  CdSolver solver(opts);
  RecordingSink sink;
  std::size_t legacy_calls = 0;
  RunControl control;
  control.events = &sink;
  control.on_progress = [&](const Progress& p) {
    EXPECT_STREQ(p.stage, "solve");
    ++legacy_calls;
  };
  ASSERT_TRUE(solver.solve(gi->inst, control).ok());
  EXPECT_EQ(sink.merges.size(), gi->inst.sinks.size());
  EXPECT_EQ(legacy_calls, gi->inst.sinks.size())
      << "the deprecated callback is adapted, not dropped";
}

// ---------------------------------------------------------------- movability --

TEST(OracleInstanceApi, MoveKeepsSelfReferencesValid) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  CongestionCosts costs(grid);
  const Net* net = nullptr;
  for (const Net& n : nl.nets) {
    if (n.sinks.size() >= 3) {
      net = &n;
      break;
    }
  }
  ASSERT_NE(net, nullptr);
  const std::vector<double> weights(net->sinks.size(), 0.5);
  OracleParams params;
  params.dbif = 2.0;

  OracleInstance original(grid, costs, *net, weights, params);
  const OracleOutcome before = run_method(original, SteinerMethod::kCD,
                                          params);

  // Move through a growing vector (reallocation moves the elements again).
  std::vector<OracleInstance> held;
  held.push_back(std::move(original));
  for (int i = 0; i < 3; ++i) {
    held.push_back(OracleInstance(grid, costs, *net, weights, params));
  }
  OracleInstance& moved = held.front();
  EXPECT_EQ(moved.instance().graph, &moved.window().graph())
      << "moved instance must still point at its own window";
  const OracleOutcome after = run_method(moved, SteinerMethod::kCD, params);
  EXPECT_EQ(after.grid_edges, before.grid_edges);
  EXPECT_DOUBLE_EQ(after.eval.objective, before.eval.objective);
}

}  // namespace
}  // namespace cdst
