// Tests for the session API (api/cdst.h): structured Status/StatusOr,
// CdSolver scratch recycling and deterministic batch solving, RunControl
// progress/cancellation, the resumable warm-starting Router, and the
// equivalence of the deprecated one-shot wrappers with the sessions that
// now implement them.
//
// Compares against the deprecated legacy entry points on purpose.
#define CDST_ALLOW_DEPRECATED

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "api/cdst.h"
#include "grid/future_cost.h"
#include "grid/routing_grid.h"
#include "route/netlist_gen.h"
#include "route/steiner_oracle.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cdst {
namespace {

/// Bundle owning everything a grid instance points to.
struct GridInstance {
  std::unique_ptr<RoutingGrid> grid;
  std::unique_ptr<FutureCost> fc;
  std::vector<double> cost;
  std::vector<double> delay;
  CostDistanceInstance inst;
};

/// Heap-allocated so the self-referential inst.cost/inst.delay pointers can
/// never dangle through a return-path move (NRVO is not guaranteed).
std::unique_ptr<GridInstance> make_grid_instance(std::uint64_t seed, int nx,
                                                 int ny, int nz,
                                                 std::size_t num_sinks,
                                                 double dbif = 2.0) {
  auto gi = std::make_unique<GridInstance>();
  gi->grid = std::make_unique<RoutingGrid>(
      nx, ny, make_default_layer_stack(nz), ViaSpec{});
  gi->fc = std::make_unique<FutureCost>(*gi->grid);
  Rng rng(seed);
  const Graph& g = gi->grid->graph();
  gi->cost.resize(g.num_edges());
  gi->delay = gi->grid->edge_delays();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    gi->cost[e] = gi->grid->base_costs()[e] *
                  std::exp(rng.uniform_double(0.0, 2.0));
  }
  gi->inst.graph = &g;
  gi->inst.cost = &gi->cost;
  gi->inst.delay = &gi->delay;
  gi->inst.dbif = dbif;
  gi->inst.eta = 0.25;
  std::set<VertexId> used;
  auto pick = [&]() {
    while (true) {
      const auto x = static_cast<std::int32_t>(rng.uniform(nx));
      const auto y = static_cast<std::int32_t>(rng.uniform(ny));
      const VertexId v = gi->grid->vertex_at(x, y, 0);
      if (used.insert(v).second) return v;
    }
  };
  gi->inst.root = pick();
  for (std::size_t s = 0; s < num_sinks; ++s) {
    gi->inst.sinks.push_back(
        Terminal{pick(), std::exp(rng.uniform_double(-2.0, 2.0))});
  }
  return gi;
}

ChipConfig tiny_chip() {
  ChipConfig c;
  c.name = "tiny";
  c.num_nets = 60;
  c.num_layers = 4;
  c.nx = c.ny = 20;
  c.capacity = 10.0;
  c.seed = 7;
  return c;
}

// ----------------------------------------------------------------- status --

TEST(Status, DefaultIsOkAndCodesRoundTrip) {
  const Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.to_string(), "OK");

  const Status c = Status::Cancelled("stopped");
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.code(), StatusCode::kCancelled);
  EXPECT_EQ(c.to_string(), "CANCELLED: stopped");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
}

TEST(Status, StatusOrHoldsValueOrError) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.status().code(), StatusCode::kOk);

  StatusOr<int> e(Status::InvalidArgument("bad"));
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
  EXPECT_THROW(e.value(), ContractViolation);
}

// --------------------------------------------------------------- cd solver --

TEST(CdSolver, MatchesLegacyOneShotBitIdentically) {
  const auto gi = make_grid_instance(11, 10, 9, 3, 7);
  SolverOptions opts;
  opts.future_cost = gi->fc.get();
  opts.seed = 5;

  const SolveResult legacy = solve_cost_distance(gi->inst, opts);
  CdSolver solver(opts);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const StatusOr<SolveResult> r = solver.solve(gi->inst);
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_DOUBLE_EQ(r->eval.objective, legacy.eval.objective);
    EXPECT_EQ(r->tree.all_edges(), legacy.tree.all_edges());
    EXPECT_EQ(r->stats.labels_settled, legacy.stats.labels_settled);
  }
}

TEST(CdSolver, ScratchIsInvisibleAcrossDifferentInstances) {
  // Interleave instances of very different size/shape on ONE session: every
  // solve must match a fresh-session solve of the same instance.
  CdSolver session;
  for (const std::uint64_t seed : {3u, 4u, 5u}) {
    for (const std::size_t sinks : {2u, 9u, 17u}) {
      const auto gi =
          make_grid_instance(seed * 131, 8 + sinks % 5, 9, 3, sinks);
      SolverOptions opts;
      opts.future_cost = gi->fc.get();
      opts.seed = seed;
      session.set_options(opts);
      const StatusOr<SolveResult> warm = session.solve(gi->inst);
      CdSolver fresh(opts);
      const StatusOr<SolveResult> cold = fresh.solve(gi->inst);
      ASSERT_TRUE(warm.ok() && cold.ok());
      EXPECT_EQ(warm->tree.all_edges(), cold->tree.all_edges());
      EXPECT_DOUBLE_EQ(warm->eval.objective, cold->eval.objective);
    }
  }
}

TEST(CdSolver, BatchIsBitIdenticalAtAnyThreadCount) {
  // GridInstance is self-referential (inst points into its own vectors), so
  // hold the fixtures behind stable pointers.
  std::vector<std::unique_ptr<GridInstance>> gis;
  std::vector<CdSolver::Job> jobs;
  for (std::uint64_t s = 1; s <= 12; ++s) {
    gis.push_back(make_grid_instance(s * 71, 9, 8, 3, 2 + s % 7));
  }
  for (std::size_t i = 0; i < gis.size(); ++i) {
    CdSolver::Job job;
    job.instance = &gis[i]->inst;
    job.future_cost = gis[i]->fc.get();
    job.seed = i + 1;
    jobs.push_back(job);
  }

  // Reference: sequential solve() calls.
  std::vector<SolveResult> reference;
  {
    CdSolver solver;
    for (const CdSolver::Job& job : jobs) {
      StatusOr<SolveResult> r = solver.solve(job);
      ASSERT_TRUE(r.ok()) << r.status().to_string();
      reference.push_back(*std::move(r));
    }
  }

  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    CdSolver solver({}, &pool);
    std::size_t progress_calls = 0;
    RunControl control;
    control.on_progress = [&](const Progress& p) {
      EXPECT_STREQ(p.stage, "solve_batch");
      EXPECT_EQ(p.total, jobs.size());
      ++progress_calls;
    };
    const StatusOr<std::vector<SolveResult>> batch =
        solver.solve_batch(std::span<const CdSolver::Job>(jobs), control);
    ASSERT_TRUE(batch.ok()) << batch.status().to_string();
    ASSERT_EQ(batch->size(), reference.size());
    EXPECT_EQ(progress_calls, jobs.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ((*batch)[i].tree.all_edges(), reference[i].tree.all_edges())
          << "instance " << i << " at " << threads << " threads";
      EXPECT_DOUBLE_EQ((*batch)[i].eval.objective,
                       reference[i].eval.objective);
      EXPECT_EQ((*batch)[i].stats.labels_settled,
                reference[i].stats.labels_settled);
    }
  }
}

TEST(CdSolver, InvalidInstanceReturnsStatusInsteadOfThrowing) {
  auto gi = make_grid_instance(21, 6, 6, 3, 2);
  gi->inst.sinks.clear();  // validate() rejects sink-less instances
  CdSolver solver;
  const StatusOr<SolveResult> r = solver.solve(gi->inst);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // Disconnected terminals surface the same way (the legacy path threw).
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g(b);
  const std::vector<double> c{1.0, 1.0};
  const std::vector<double> d{1.0, 1.0};
  CostDistanceInstance inst;
  inst.graph = &g;
  inst.cost = &c;
  inst.delay = &d;
  inst.root = 0;
  inst.sinks = {Terminal{3, 1.0}};
  const StatusOr<SolveResult> r2 = solver.solve(inst);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  CdSolver::Job no_instance;
  EXPECT_EQ(solver.solve(no_instance).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CdSolver, PreCancelledTokenShortCircuits) {
  const auto gi = make_grid_instance(31, 8, 8, 3, 5);
  CdSolver solver;
  CancelToken token;
  token.request_cancel();
  RunControl control;
  control.cancel = &token;
  const StatusOr<SolveResult> r = solver.solve(gi->inst, control);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);

  std::vector<CostDistanceInstance> instances{gi->inst};
  const auto batch = solver.solve_batch(
      std::span<const CostDistanceInstance>(instances), control);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kCancelled);
}

TEST(CdSolver, CancelMidSolveFromProgressCallback) {
  // Cancel from inside the merge-progress callback; the solver must unwind
  // cleanly (ASan run verifies leak-freedom of the abandoned search state)
  // and the session must stay usable for the next solve.
  const auto gi = make_grid_instance(41, 20, 20, 4, 40);
  SolverOptions opts;
  opts.future_cost = gi->fc.get();
  CdSolver solver(opts);
  CancelToken token;
  RunControl control;
  control.cancel = &token;
  control.cancel_poll_interval = 16;  // tight polling for the test
  std::size_t merges_seen = 0;
  control.on_progress = [&](const Progress& p) {
    EXPECT_STREQ(p.stage, "solve");
    merges_seen = p.done;
    if (p.done >= 2) token.request_cancel();
  };
  const StatusOr<SolveResult> r = solver.solve(gi->inst, control);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_GE(merges_seen, 2u);
  EXPECT_LT(merges_seen, gi->inst.sinks.size())
      << "cancellation should have stopped the solve well before completion";

  // The same session finishes the instance when allowed to.
  const StatusOr<SolveResult> full = solver.solve(gi->inst);
  ASSERT_TRUE(full.ok()) << full.status().to_string();
  EXPECT_EQ(full->stats.iterations, gi->inst.sinks.size());
}

// ------------------------------------------------------------------ router --

TEST(RouterSession, MatchesLegacyRouteChipBitIdentically) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.iterations = 3;
  opts.seed = 5;
  const RouterResult legacy = route_chip(grid, nl, opts);

  Router session(grid, nl, opts);
  ASSERT_TRUE(session.run(3).ok());
  EXPECT_EQ(session.rounds_completed(), 3);
  const RouterResult r = session.result();
  ASSERT_EQ(r.routes.size(), legacy.routes.size());
  for (std::size_t i = 0; i < r.routes.size(); ++i) {
    EXPECT_EQ(r.routes[i], legacy.routes[i]) << "net " << i;
  }
  ASSERT_EQ(r.sink_delays.size(), legacy.sink_delays.size());
  for (std::size_t s = 0; s < r.sink_delays.size(); ++s) {
    EXPECT_DOUBLE_EQ(r.sink_delays[s], legacy.sink_delays[s]);
    EXPECT_DOUBLE_EQ(r.sink_weights[s], legacy.sink_weights[s]);
  }
  EXPECT_DOUBLE_EQ(r.timing.total_negative_slack,
                   legacy.timing.total_negative_slack);
  EXPECT_EQ(r.wires.num_vias, legacy.wires.num_vias);
}

TEST(RouterSession, WarmResumedRunsMatchOneFreshRun) {
  // run(2); run(2) must be bit-identical to run(4): seeds and multiplier
  // steps are indexed by the absolute round, and the final-round weight
  // state is preserved across the split.
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.batch_size = 16;
  opts.seed = 9;

  Router split(grid, nl, opts);
  ASSERT_TRUE(split.run(2).ok());
  ASSERT_TRUE(split.run(2).ok());
  EXPECT_EQ(split.rounds_completed(), 4);

  Router fresh(grid, nl, opts);
  ASSERT_TRUE(fresh.run(4).ok());

  const RouterResult a = split.result();
  const RouterResult b = fresh.result();
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i], b.routes[i]) << "net " << i;
  }
  for (std::size_t s = 0; s < a.sink_delays.size(); ++s) {
    EXPECT_DOUBLE_EQ(a.sink_delays[s], b.sink_delays[s]) << "sink " << s;
    EXPECT_DOUBLE_EQ(a.sink_weights[s], b.sink_weights[s]) << "sink " << s;
  }
}

TEST(RouterSession, SharedPoolThreadCountInvariant) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.batch_size = 16;

  std::vector<RouterResult> results;
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    Router session(grid, nl, opts, &pool);
    ASSERT_TRUE(session.run(2).ok());
    results.push_back(session.result());
  }
  ASSERT_EQ(results[0].routes.size(), results[1].routes.size());
  for (std::size_t i = 0; i < results[0].routes.size(); ++i) {
    EXPECT_EQ(results[0].routes[i], results[1].routes[i]) << "net " << i;
  }
}

TEST(RouterSession, RunValidatesArguments) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  Router session(grid, nl, RouterOptions{});
  EXPECT_EQ(session.run(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(session.run(0).ok());  // no-op
  EXPECT_EQ(session.rounds_completed(), 0);
}

TEST(RouterSession, CancelMidRunLeavesCoherentResumableState) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.batch_size = 8;

  Router session(grid, nl, opts);
  CancelToken token;
  RunControl control;
  control.cancel = &token;
  std::size_t batches_seen = 0;
  control.on_progress = [&](const Progress& p) {
    EXPECT_STREQ(p.stage, "route");
    if (++batches_seen == 2) token.request_cancel();
  };
  const Status st = session.run(2, control);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_EQ(session.rounds_completed(), 0);

  // The snapshot is coherent (metrics computable, sizes right) even though
  // only part of the first round committed.
  const RouterResult partial = session.result();
  EXPECT_EQ(partial.routes.size(), nl.nets.size());

  // Resuming after clearing the token completes normally.
  token.reset();
  ASSERT_TRUE(session.run(2, control).ok());
  EXPECT_EQ(session.rounds_completed(), 2);
  const RouterResult full = session.result();
  EXPECT_GT(full.wires.wirelength_gcells, 0.0);
}

TEST(RouterSession, SetOptionsReroutesWarmFromConvergedState) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;

  Router session(grid, nl, opts);
  ASSERT_TRUE(session.run(2).ok());
  const std::vector<double> warm_weights = session.sink_weights();

  RouterOptions changed = opts;
  changed.oracle.dbif = 3.0;  // option change: re-route warm
  ASSERT_TRUE(session.set_options(changed).ok());
  EXPECT_EQ(session.sink_weights(), warm_weights)
      << "option changes must keep the Lagrange multipliers";
  ASSERT_TRUE(session.run(1).ok());
  EXPECT_EQ(session.rounds_completed(), 3);
  const RouterResult r = session.result();
  EXPECT_EQ(r.routes.size(), nl.nets.size());
  EXPECT_GT(r.wires.wirelength_gcells, 0.0);

  RouterOptions bad = changed;
  bad.batch_size = 0;
  EXPECT_EQ(session.set_options(bad).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- movability --

TEST(OracleInstanceApi, MoveKeepsSelfReferencesValid) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  CongestionCosts costs(grid);
  const Net* net = nullptr;
  for (const Net& n : nl.nets) {
    if (n.sinks.size() >= 3) {
      net = &n;
      break;
    }
  }
  ASSERT_NE(net, nullptr);
  const std::vector<double> weights(net->sinks.size(), 0.5);
  OracleParams params;
  params.dbif = 2.0;

  OracleInstance original(grid, costs, *net, weights, params);
  const OracleOutcome before = run_method(original, SteinerMethod::kCD,
                                          params);

  // Move through a growing vector (reallocation moves the elements again).
  std::vector<OracleInstance> held;
  held.push_back(std::move(original));
  for (int i = 0; i < 3; ++i) {
    held.push_back(OracleInstance(grid, costs, *net, weights, params));
  }
  OracleInstance& moved = held.front();
  EXPECT_EQ(moved.instance().graph, &moved.window().graph())
      << "moved instance must still point at its own window";
  const OracleOutcome after = run_method(moved, SteinerMethod::kCD, params);
  EXPECT_EQ(after.grid_edges, before.grid_edges);
  EXPECT_DOUBLE_EQ(after.eval.objective, before.eval.objective);
}

}  // namespace
}  // namespace cdst
