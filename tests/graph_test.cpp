// Tests for the CSR graph, Dijkstra variants and ALT landmarks.

#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "graph/graph.h"
#include "graph/landmarks.h"
#include "util/rng.h"

namespace cdst {
namespace {

Graph path_graph(std::size_t n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return Graph(b);
}

TEST(Graph, CsrAdjacency) {
  GraphBuilder b(4);
  const EdgeId e0 = b.add_edge(0, 1);
  const EdgeId e1 = b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(0, 2);  // parallel edge
  Graph g(b);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_EQ(g.other_end(e0, 0), 1u);
  EXPECT_EQ(g.other_end(e0, 1), 0u);
  EXPECT_EQ(g.tail(e1), 1u);
  EXPECT_EQ(g.head(e1), 2u);
}

TEST(Graph, SelfLoopRejected) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(1, 1), ContractViolation);
}

TEST(Dijkstra, PathGraphDistances) {
  const Graph g = path_graph(5);
  const auto r = dijkstra(g, {0}, [](EdgeId) { return 2.0; });
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(r.dist[v], 2.0 * v);
  }
  const auto path = r.path_edges(4);
  EXPECT_EQ(path.size(), 4u);
}

TEST(Dijkstra, MultiSource) {
  const Graph g = path_graph(7);
  const auto r = dijkstra(g, {0, 6}, [](EdgeId) { return 1.0; });
  EXPECT_DOUBLE_EQ(r.dist[3], 3.0);
  EXPECT_DOUBLE_EQ(r.dist[5], 1.0);
}

TEST(Dijkstra, UnreachableIsInfinity) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  Graph g(b);
  const auto r = dijkstra(g, {0}, [](EdgeId) { return 1.0; });
  EXPECT_FALSE(r.reached(2));
  EXPECT_TRUE(r.reached(1));
}

TEST(Dijkstra, PotentialsSeedInitialLabels) {
  const Graph g = path_graph(4);
  std::vector<double> init{5.0, DijkstraResult::kInf, DijkstraResult::kInf,
                           0.0};
  const auto r =
      dijkstra_from_potentials(g, init, [](EdgeId) { return 1.0; });
  EXPECT_DOUBLE_EQ(r.dist[0], 3.0);  // reached from vertex 3, not its own 5.0
  EXPECT_DOUBLE_EQ(r.dist[3], 0.0);
  EXPECT_DOUBLE_EQ(r.dist[1], 2.0);
}

class RandomGraphTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  struct Rand {
    Graph g;
    std::vector<double> len;
  };
  Rand make(std::size_t n, std::size_t m) {
    Rng rng(GetParam());
    GraphBuilder b(n);
    std::vector<double> len;
    // Spanning path for connectivity, then random extra edges.
    for (VertexId v = 0; v + 1 < n; ++v) {
      b.add_edge(v, v + 1);
      len.push_back(rng.uniform_double(0.1, 10.0));
    }
    for (std::size_t e = n; e < m; ++e) {
      const auto u = static_cast<VertexId>(rng.uniform(n));
      auto v = static_cast<VertexId>(rng.uniform(n));
      if (u == v) v = (v + 1) % static_cast<VertexId>(n);
      b.add_edge(u, v);
      len.push_back(rng.uniform_double(0.1, 10.0));
    }
    return Rand{Graph(b), std::move(len)};
  }
};

TEST_P(RandomGraphTest, DijkstraMatchesBellmanFord) {
  const auto [g, len] = make(40, 120);
  const auto r = dijkstra(g, {0}, [&](EdgeId e) { return len[e]; });
  // Bellman-Ford reference.
  std::vector<double> dist(g.num_vertices(), DijkstraResult::kInf);
  dist[0] = 0.0;
  for (std::size_t round = 0; round < g.num_vertices(); ++round) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const VertexId a = g.tail(e), b = g.head(e);
      if (dist[a] + len[e] < dist[b]) dist[b] = dist[a] + len[e];
      if (dist[b] + len[e] < dist[a]) dist[a] = dist[b] + len[e];
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(r.dist[v], dist[v], 1e-9);
  }
}

TEST_P(RandomGraphTest, PathEdgesReconstructDistance) {
  const auto [g, len] = make(30, 80);
  const auto r = dijkstra(g, {0}, [&](EdgeId e) { return len[e]; });
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    double sum = 0.0;
    for (const EdgeId e : r.path_edges(v)) sum += len[e];
    EXPECT_NEAR(sum, r.dist[v], 1e-9);
  }
}

TEST_P(RandomGraphTest, FibonacciHeapDijkstraMatchesBinary) {
  const auto [g, len] = make(45, 140);
  const auto length = [&](EdgeId e) { return len[e]; };
  const auto bin = dijkstra(g, {0}, length, kInvalidVertex,
                            DijkstraHeap::kBinary);
  const auto fib = dijkstra(g, {0}, length, kInvalidVertex,
                            DijkstraHeap::kFibonacci);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(bin.dist[v], fib.dist[v]);
  }
}

TEST_P(RandomGraphTest, LandmarkBoundsAreAdmissibleAndUseful) {
  const auto [g, len] = make(50, 150);
  const auto length = [&](EdgeId e) { return len[e]; };
  Landmarks lm(g, length, 4);
  EXPECT_EQ(lm.count(), 4u);
  Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 30; ++trial) {
    const auto s = static_cast<VertexId>(rng.uniform(g.num_vertices()));
    const auto r = dijkstra(g, {s}, length);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_LE(lm.lower_bound(s, v), r.dist[v] + 1e-9)
          << "landmark bound must never exceed the true distance";
    }
  }
  // The bound from a landmark to itself is exact along its own table.
  const VertexId l0 = lm.landmark(0);
  const auto r0 = dijkstra(g, {l0}, length);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(lm.lower_bound(l0, v), r0.dist[v], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Values(11, 12, 13, 14, 15));

}  // namespace
}  // namespace cdst
