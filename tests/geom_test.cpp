// Tests for geometry primitives and the bucketed L1 nearest-neighbour
// structure used by the goal-oriented searches.

#include <gtest/gtest.h>

#include <limits>

#include "geom/nearest.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "util/rng.h"

namespace cdst {
namespace {

TEST(Point, L1Distance) {
  EXPECT_EQ(l1_distance(Point2{0, 0}, Point2{3, 4}), 7);
  EXPECT_EQ(l1_distance(Point2{-3, -4}, Point2{3, 4}), 14);
  EXPECT_EQ(l1_distance(Point3{1, 2, 0}, Point3{4, 6, 3}), 7)
      << "layer difference must not contribute to plane L1";
}

TEST(Rect, ExpandAndContain) {
  Rect r;
  EXPECT_TRUE(r.empty());
  r.expand(Point2{2, 3});
  r.expand(Point2{-1, 7});
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.half_perimeter(), 3 + 4);
  EXPECT_TRUE(r.contains(Point2{0, 5}));
  EXPECT_FALSE(r.contains(Point2{3, 5}));
}

TEST(Rect, L1ToPoint) {
  Rect r;
  r.expand(Point2{0, 0});
  r.expand(Point2{10, 10});
  EXPECT_EQ(r.l1_to(Point2{5, 5}), 0);
  EXPECT_EQ(r.l1_to(Point2{-3, 5}), 3);
  EXPECT_EQ(r.l1_to(Point2{12, 13}), 2 + 3);
}

TEST(Rect, Inflated) {
  Rect r;
  r.expand(Point2{5, 5});
  const Rect big = r.inflated(2);
  EXPECT_TRUE(big.contains(Point2{3, 3}));
  EXPECT_TRUE(big.contains(Point2{7, 7}));
  EXPECT_FALSE(big.contains(Point2{8, 5}));
}

TEST(Nearest, SimpleQueries) {
  L1NearestNeighbor nn(4);
  nn.insert(0, Point2{0, 0});
  nn.insert(1, Point2{10, 0});
  nn.insert(2, Point2{0, 10});
  auto r = nn.nearest(Point2{1, 1});
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.id, 0u);
  EXPECT_EQ(r.distance, 2);

  r = nn.nearest(Point2{1, 1}, /*exclude_id=*/0);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.distance, 10);

  nn.erase(0);
  r = nn.nearest(Point2{1, 1});
  EXPECT_TRUE(r.found);
  EXPECT_NE(r.id, 0u);
}

TEST(Nearest, CornerBucketAtReservedKeyStaysVisible) {
  // Bucket keys are anchored at the first inserted point; a point +32767
  // buckets away in both axes packs to the SparseMap's reserved
  // empty-marker key and must still be found (it lives in a dedicated side
  // slot, not the map).
  L1NearestNeighbor nn(2);
  nn.insert(0, Point2{0, 0});          // anchors the key space
  nn.insert(1, Point2{65534, 65534});  // relative bucket (32767, 32767)
  const auto r = nn.nearest(Point2{65534, 65533});
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.id, 1u);
  EXPECT_EQ(r.distance, 1);
}

TEST(Nearest, FarFromOriginSmallExtent) {
  // The packed key range bounds the point set's *extent*, not its absolute
  // position: a tight cluster far from the origin must work even with a
  // tiny bucket size.
  L1NearestNeighbor nn(1);
  nn.insert(0, Point2{70000000, -70000000});
  nn.insert(1, Point2{70000004, -70000000});
  const auto r = nn.nearest(Point2{70000001, -70000000});
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.id, 0u);
  EXPECT_EQ(r.distance, 1);
  const auto r1 = nn.nearest(Point2{70000001, -70000000}, /*exclude_id=*/0);
  EXPECT_TRUE(r1.found);
  EXPECT_EQ(r1.id, 1u);
}

TEST(Nearest, EmptyAndSingleExcluded) {
  L1NearestNeighbor nn(4);
  EXPECT_FALSE(nn.nearest(Point2{0, 0}).found);
  nn.insert(3, Point2{5, 5});
  EXPECT_FALSE(nn.nearest(Point2{0, 0}, 3).found);
  EXPECT_TRUE(nn.nearest(Point2{0, 0}).found);
}

class NearestPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NearestPropertyTest, MatchesBruteForceUnderChurn) {
  Rng rng(GetParam());
  L1NearestNeighbor nn(static_cast<std::int32_t>(1 + rng.uniform(16)));
  struct Pt {
    Point2 p;
    bool active;
  };
  std::vector<Pt> ref;
  for (int step = 0; step < 600; ++step) {
    const double action = rng.uniform_double();
    if (action < 0.5 || ref.empty()) {
      const Point2 p{static_cast<std::int32_t>(rng.uniform_int(-100, 100)),
                     static_cast<std::int32_t>(rng.uniform_int(-100, 100))};
      nn.insert(static_cast<std::uint32_t>(ref.size()), p);
      ref.push_back(Pt{p, true});
    } else if (action < 0.65) {
      const auto id = static_cast<std::uint32_t>(rng.uniform(ref.size()));
      if (ref[id].active) {
        nn.erase(id);
        ref[id].active = false;
      }
    } else {
      const Point2 q{static_cast<std::int32_t>(rng.uniform_int(-120, 120)),
                     static_cast<std::int32_t>(rng.uniform_int(-120, 120))};
      std::int64_t best = std::numeric_limits<std::int64_t>::max();
      for (const Pt& pt : ref) {
        if (pt.active) best = std::min(best, l1_distance(pt.p, q));
      }
      const auto got = nn.nearest(q);
      if (best == std::numeric_limits<std::int64_t>::max()) {
        EXPECT_FALSE(got.found);
      } else {
        ASSERT_TRUE(got.found);
        EXPECT_EQ(got.distance, best);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NearestPropertyTest,
                         ::testing::Values(5, 6, 7, 8));

}  // namespace
}  // namespace cdst
