// Tests for the persistent worker pool behind the router's batch loop:
// correctness of the parallel-for work distribution, reuse across many
// waves, nested submits, exception propagation, and the serial degenerate
// case.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "stress.h"
#include "util/thread_pool.h"

namespace cdst {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, NonZeroBeginAndEmptyRange) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  pool.parallel_for(100, 200,
                    [&](std::size_t i) { sum += static_cast<long long>(i); });
  EXPECT_EQ(sum.load(), (100LL + 199LL) * 100LL / 2LL);
  pool.parallel_for(5, 5, [&](std::size_t) { sum = -1; });
  EXPECT_EQ(sum.load(), (100LL + 199LL) * 100LL / 2LL);
}

TEST(ThreadPool, SingleThreadRunsSerially) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1);
  std::vector<std::size_t> order;
  pool.parallel_for(0, 64, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  // No workers: the caller runs all indices in order, so no data race above.
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ReusableAcrossManyWaves) {
  // The router's usage pattern: thousands of small batches on one pool.
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  long long expected = 0;
  for (int wave = 0; wave < 500; ++wave) {
    const std::size_t n = 1 + static_cast<std::size_t>(wave % 7);
    pool.parallel_for(0, n,
                      [&](std::size_t i) { sum += static_cast<long long>(i); });
    expected += static_cast<long long>(n * (n - 1) / 2);
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, NestedSubmitsRunInline) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 32, kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(0, kOuter, [&](std::size_t o) {
    // A nested parallel_for from inside a worker must not deadlock on the
    // pool's own (busy) workers; it runs serially inline.
    pool.parallel_for(0, kInner,
                      [&](std::size_t i) { ++hits[o * kInner + i]; });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000,
                        [&](std::size_t i) {
                          if (i == 137) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a throwing batch and keeps working.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ExceptionAbandonsRemainingIndices) {
  // Every body throws, and a lane stops claiming indices once its body has
  // thrown — so at most one index per lane executes, regardless of how the
  // scheduler interleaves the lanes.
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  try {
    pool.parallel_for(0, 100000, [&](std::size_t) {
      ++executed;
      throw std::logic_error("stop");
    });
    FAIL() << "expected the batch's exception";
  } catch (const std::logic_error&) {
  }
  EXPECT_LE(executed.load(), pool.concurrency());
}

TEST(ThreadPool, ExceptionInSerialModePropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [&](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("s");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SubmittedTasksRunExactlyOnce) {
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  std::atomic<int> done{0};
  {
    ThreadPool pool(4);
    for (int t = 0; t < kTasks; ++t) {
      pool.submit([&, t] {
        ++hits[t];
        ++done;
      });
    }
    // Interleave a barrier batch with the task queue: the batch must not
    // deadlock against pending tasks (it takes priority on the workers).
    std::atomic<int> batch_sum{0};
    pool.parallel_for(0, 64, [&](std::size_t i) {
      batch_sum += static_cast<int>(i);
    });
    EXPECT_EQ(batch_sum.load(), 64 * 63 / 2);
    // Destruction runs any tasks the workers never reached.
  }
  EXPECT_EQ(done.load(), kTasks);
  for (int t = 0; t < kTasks; ++t) {
    EXPECT_EQ(hits[t].load(), 1) << "task " << t;
  }
}

TEST(ThreadPool, SubmitRunsInlineWithoutWorkersAndInsideBatches) {
  // threads == 1: no workers, submit degenerates to a synchronous call.
  ThreadPool serial(1);
  bool ran = false;
  serial.submit([&] { ran = true; });
  EXPECT_TRUE(ran);

  // From inside a running batch the task also runs inline (the workers may
  // all be busy with the batch) — same policy as nested parallel_for.
  ThreadPool pool(4);
  std::atomic<int> inline_runs{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    bool task_done = false;
    pool.submit([&] { task_done = true; });
    EXPECT_TRUE(task_done) << "submit inside a batch must run inline";
    ++inline_runs;
  });
  EXPECT_EQ(inline_runs.load(), 8);
}

TEST(ThreadPool, StressManyConcurrentSmallBatches) {
  ThreadPool pool(8);
  std::atomic<long long> sum{0};
  const int rounds = testutil::stress_iters(200, 40);
  for (int round = 0; round < rounds; ++round) {
    pool.parallel_for(0, 97, [&](std::size_t i) {
      // Mix nested submits into the stress rounds.
      if (i % 31 == 0) {
        pool.parallel_for(0, 3, [&](std::size_t) { sum += 1; });
      }
      sum += static_cast<long long>(i);
    });
  }
  EXPECT_EQ(sum.load(), rounds * (97LL * 96LL / 2LL + 4LL * 3LL));
}

TEST(ThreadPool, StressExternalSubmittersRacingBatches) {
  // The streaming usage pattern pushed hard: several external threads
  // submit fire-and-forget tasks while the owning thread keeps running
  // parallel_for barriers on the same pool. Exercises every lock-ordering
  // path at once — task queue vs. batch priority, barrier wakeups racing
  // task wakeups — which is exactly the surface the TSan lane watches.
  const int kSubmitters = 3;
  const int per_thread = testutil::stress_iters(400, 60);
  std::atomic<int> task_runs{0};
  std::atomic<long long> batch_sum{0};
  long long expected_batch = 0;
  {
    ThreadPool pool(4);
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&] {
        for (int t = 0; t < per_thread; ++t) {
          pool.submit([&] { ++task_runs; });
        }
      });
    }
    const int waves = testutil::stress_iters(100, 20);
    for (int wave = 0; wave < waves; ++wave) {
      const std::size_t n = 1 + static_cast<std::size_t>(wave % 13);
      pool.parallel_for(0, n, [&](std::size_t i) {
        batch_sum += static_cast<long long>(i);
      });
      expected_batch += static_cast<long long>(n * (n - 1) / 2);
    }
    for (std::thread& th : submitters) th.join();
    // Destruction drains whatever the workers never reached.
  }
  EXPECT_EQ(task_runs.load(), kSubmitters * per_thread);
  EXPECT_EQ(batch_sum.load(), expected_batch);
}

TEST(ThreadPool, DestructorDrainsLeftoverTasksExactlyOnce) {
  // Regression for the teardown lock discipline: the destructor used to
  // walk `tasks_` without holding the pool mutex while workers could still
  // be popping from it. It now swaps the queue out under the lock and runs
  // the leftovers privately; flooding a small pool and destroying it
  // immediately makes "worker pops" and "destructor drain" overlap.
  constexpr int kTasks = 256;
  std::vector<std::atomic<int>> hits(kTasks);
  {
    ThreadPool pool(2);
    for (int t = 0; t < kTasks; ++t) {
      pool.submit([&hits, t] { ++hits[t]; });
    }
  }
  for (int t = 0; t < kTasks; ++t) {
    EXPECT_EQ(hits[t].load(), 1) << "task " << t;
  }
}

}  // namespace
}  // namespace cdst
