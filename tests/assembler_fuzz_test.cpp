// Randomized stress test of the TreeAssembler: grows trees by repeatedly
// connecting new terminals to random attachment vertices of the existing
// structure via random simple paths, splitting segments along the way, and
// validates the finalized tree after every growth schedule. This fuzzes the
// exact machinery (segment splitting, location reindexing, normalization)
// that Algorithm 1's merges rely on.

#include <gtest/gtest.h>

#include <set>

#include "core/steiner_tree.h"
#include "grid/routing_grid.h"
#include "util/rng.h"

namespace cdst {
namespace {

class AssemblerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AssemblerFuzz, RandomGrowthSchedulesStayValid) {
  Rng rng(GetParam());
  const RoutingGrid grid(10, 10, make_default_layer_stack(3), ViaSpec{});
  const Graph& g = grid.graph();

  TreeAssembler a(g);
  std::set<EdgeId> used_edges;
  std::vector<VertexId> tree_vertices;

  const VertexId root = grid.vertex_at(5, 5, 0);
  a.add_root(root);
  tree_vertices.push_back(root);

  // Grow: every terminal walks randomly until it touches the structure.
  // The attachment is *planned* before the assembler is mutated: a
  // self-avoiding walk frequently corners itself (and once used edges wall a
  // start vertex in, no reshuffle can save it), so failed attempts retry
  // with a fresh start vertex. A schedule only skips if a bounded number of
  // independent attempts all get stuck, which is vanishingly rare.
  const std::size_t num_sinks = 4 + GetParam() % 12;
  for (std::size_t s = 0; s < num_sinks; ++s) {
    VertexId at = kInvalidVertex;
    std::vector<EdgeId> path;
    VertexId cur = kInvalidVertex;
    bool zero_attach = false;
    bool planned = false;
    constexpr int kMaxAttempts = 32;
    for (int attempt = 0; attempt < kMaxAttempts && !planned; ++attempt) {
      at = grid.vertex_at(
          static_cast<std::int32_t>(rng.uniform(10)),
          static_cast<std::int32_t>(rng.uniform(10)),
          static_cast<std::int32_t>(rng.uniform(3)));
      if (a.covers(at) && rng.bernoulli(0.5)) {
        // Terminal dropped onto the structure: zero-length attach.
        zero_attach = true;
        planned = true;
        break;
      }
      // Random walk avoiding already-used edges and revisits until touching
      // the structure.
      path.clear();
      std::set<VertexId> visited{at};
      cur = at;
      for (int step = 0; step < 400 && !planned; ++step) {
        const auto arcs = g.arcs(cur);
        // Random arc order.
        const std::size_t off = rng.uniform(arcs.size());
        bool moved = false;
        for (std::size_t k = 0; k < arcs.size(); ++k) {
          const Graph::Arc& arc = arcs[(k + off) % arcs.size()];
          if (used_edges.count(arc.edge) != 0u ||
              visited.count(arc.to) != 0u) {
            continue;
          }
          path.push_back(arc.edge);
          cur = arc.to;
          visited.insert(cur);
          moved = true;
          break;
        }
        if (!moved) break;
        if (a.covers(cur) || cur == root) {
          planned = true;
        }
      }
    }
    if (!planned) {
      // Every attempt got stuck — the structure has become unreachable
      // without reusing edges (used edges can saturate the small grid).
      GTEST_SKIP() << "no growth attempt attached after " << kMaxAttempts
                   << " tries";
    }
    // The structure node at `at` must be resolved before add_sink: terminals
    // own their vertex in the location map, so afterwards node_at(at) would
    // return the freshly added sink itself.
    const TreeAssembler::NodeId prior =
        zero_attach ? a.node_at(at) : TreeAssembler::kNoNode;
    const TreeAssembler::NodeId sink =
        a.add_sink(at, static_cast<std::int32_t>(s));
    if (zero_attach) {
      ASSERT_NE(prior, TreeAssembler::kNoNode);
      a.add_segment(sink, prior, {});
      continue;
    }
    const TreeAssembler::NodeId host = a.node_at(cur);
    ASSERT_NE(host, TreeAssembler::kNoNode);
    a.add_segment(sink, host, path);
    for (const EdgeId e : path) used_edges.insert(e);
  }

  const SteinerTree tree = a.finalize();
  tree.validate(g, num_sinks);
  // Edge sets agree with what we fed in.
  const auto edges = tree.all_edges();
  EXPECT_EQ(edges.size(), used_edges.size());
  for (const EdgeId e : edges) EXPECT_TRUE(used_edges.count(e) != 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerFuzz,
                         ::testing::Range<std::uint64_t>(1, 49));

}  // namespace
}  // namespace cdst
