// Tests for the structure-of-arrays arc cost plane and the spatially
// sharded router rounds: bit-identity of the SoA relaxation against the
// scalar per-edge path, bit-identity of sharded rounds across thread and
// shard counts, the shard-assignment partition property, the shared
// dense-state budget pool, and cancellation inside the embedded oracles.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/cdst.h"
#include "graph/arc_cost_view.h"
#include "graph/dijkstra.h"
#include "grid/future_cost.h"
#include "route/netlist_gen.h"
#include "route/sharding.h"
#include "stress.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cdst {
namespace {

ChipConfig tiny_chip() {
  ChipConfig c;
  c.name = "tiny";
  c.num_nets = 60;
  c.num_layers = 4;
  c.nx = c.ny = 20;
  c.capacity = 10.0;
  c.seed = 7;
  return c;
}

// ---------------------------------------------------------------------------
// ArcCostView / SoA relaxation bit-identity.

TEST(ArcCostView, AlignsWithGraphArcPlane) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(0, 3);
  const Graph g(b);
  const std::vector<double> cost{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> delay{0.5, 0.25, 0.125, 0.0625};
  const ArcCostView view(g, cost, delay);
  ASSERT_EQ(view.arc_cost().size(), g.num_arcs());
  ASSERT_EQ(view.arc_delay().size(), g.num_arcs());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto arcs = g.arcs(v);
    const std::uint32_t lo = g.arc_begin(v);
    for (std::size_t k = 0; k < arcs.size(); ++k) {
      EXPECT_EQ(g.arc_heads()[lo + k], arcs[k].to);
      EXPECT_EQ(g.arc_edges()[lo + k], arcs[k].edge);
      EXPECT_EQ(view.arc_cost()[lo + k], cost[arcs[k].edge]);
      EXPECT_EQ(view.arc_delay()[lo + k], delay[arcs[k].edge]);
    }
  }
}

TEST(ArcCostView, DijkstraBitIdenticalToPerEdgePath) {
  // A random multigraph: the blocked SoA relaxation must produce exactly
  // the labels and parents of the classic per-edge loop, for both functor
  // families and every heap kind.
  Rng rng(11);
  GraphBuilder b(120);
  std::vector<double> cost, delay;
  for (int e = 0; e < 500; ++e) {
    const auto u = static_cast<VertexId>(rng.uniform(120));
    auto v = static_cast<VertexId>(rng.uniform(120));
    if (u == v) v = (v + 1) % 120;
    b.add_edge(u, v);
    cost.push_back(0.1 + rng.uniform_double());
    delay.push_back(0.05 + 0.5 * rng.uniform_double());
  }
  const Graph g(b);
  const ArcCostView view(g, cost, delay);

  for (const DijkstraHeap heap :
       {DijkstraHeap::kBinary, DijkstraHeap::kDAry, DijkstraHeap::kFibonacci}) {
    const DijkstraResult scalar =
        dijkstra(g, {0, 17}, ArrayLength{cost}, kInvalidVertex, heap);
    const DijkstraResult soa =
        dijkstra(g, {0, 17}, ArrayLength(view), kInvalidVertex, heap);
    ASSERT_EQ(scalar.dist, soa.dist);
    ASSERT_EQ(scalar.parent_edge, soa.parent_edge);
    ASSERT_EQ(scalar.parent, soa.parent);

    const DijkstraResult scalar_cd = dijkstra(
        g, {3}, CostDelayLength{cost, delay, 2.5}, kInvalidVertex, heap);
    const DijkstraResult soa_cd =
        dijkstra(g, {3}, CostDelayLength(view, 2.5), kInvalidVertex, heap);
    ASSERT_EQ(scalar_cd.dist, soa_cd.dist);
    ASSERT_EQ(scalar_cd.parent_edge, soa_cd.parent_edge);
  }
}

TEST(ArcCostView, CdSolveBitIdenticalToScalarPath) {
  // The solver's strip relaxation (instance.arc_costs set) must reproduce
  // the seed per-edge path exactly: same tree, same objective bits.
  const RoutingGrid grid(24, 24, make_default_layer_stack(4), ViaSpec{});
  const FutureCost fc(grid);
  Rng rng(5);
  std::vector<double> cost(grid.graph().num_edges());
  for (std::size_t e = 0; e < cost.size(); ++e) {
    cost[e] = grid.base_costs()[e] * (1.0 + 2.0 * rng.uniform_double());
  }
  const std::vector<double>& delay = grid.edge_delays();

  CostDistanceInstance inst;
  inst.graph = &grid.graph();
  inst.cost = &cost;
  inst.delay = &delay;
  inst.dbif = 2.0;
  inst.eta = 0.25;
  inst.root = grid.vertex_at(2, 3, 0);
  for (int s = 0; s < 14; ++s) {
    inst.sinks.push_back(
        Terminal{grid.vertex_at(static_cast<std::int32_t>(rng.uniform(24)),
                                static_cast<std::int32_t>(rng.uniform(24)), 0),
                 0.1 + rng.uniform_double()});
  }

  SolverOptions opts;
  opts.future_cost = &fc;
  CdSolver solver(opts);
  const StatusOr<SolveResult> scalar = solver.solve(inst);
  ASSERT_TRUE(scalar.ok());

  const ArcCostView view(grid.graph(), cost, delay);
  inst.arc_costs = &view;
  const StatusOr<SolveResult> soa = solver.solve(inst);
  ASSERT_TRUE(soa.ok());

  EXPECT_EQ(scalar->tree.all_edges(), soa->tree.all_edges());
  EXPECT_EQ(scalar->eval.objective, soa->eval.objective);
  EXPECT_EQ(scalar->eval.connection_cost, soa->eval.connection_cost);
  EXPECT_EQ(scalar->eval.sink_delays, soa->eval.sink_delays);
  EXPECT_EQ(scalar->stats.labels_settled, soa->stats.labels_settled);
  EXPECT_EQ(scalar->stats.labels_relaxed, soa->stats.labels_relaxed);
}

// ---------------------------------------------------------------------------
// Shard assignment.

TEST(Sharding, AssignmentIsPartitionOfNetlist) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  for (const int shards : {1, 3, 4, 16}) {
    const ShardMap map = assign_nets_to_shards(grid, nl, shards);
    EXPECT_EQ(map.tiles.num_shards(), shards);
    EXPECT_EQ(map.nets.size(), static_cast<std::size_t>(shards));
    // Every net appears exactly once, ascending within its shard.
    std::vector<int> seen(nl.nets.size(), 0);
    for (const auto& shard : map.nets) {
      for (std::size_t k = 0; k < shard.size(); ++k) {
        ASSERT_LT(shard[k], nl.nets.size());
        ++seen[shard[k]];
        if (k > 0) EXPECT_LT(shard[k - 1], shard[k]);
      }
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i], 1) << "net " << i << " at " << shards << " shards";
    }
    EXPECT_EQ(map.total_nets(), nl.nets.size());
  }
}

TEST(Sharding, TileLatticeMatchesGridAspect) {
  const RoutingGrid wide(64, 16, make_default_layer_stack(3), ViaSpec{});
  const ShardGrid sg = make_shard_grid(wide, 4);
  // 64x16 with 4 shards: 4x1 tiles (16x16 gcells each) is the square-most.
  EXPECT_EQ(sg.tiles_x, 4);
  EXPECT_EQ(sg.tiles_y, 1);
  // Clamping: points at (or past) the extent stay in the lattice.
  EXPECT_EQ(sg.shard_of(Point2{0, 0}), 0);
  EXPECT_EQ(sg.shard_of(Point2{63, 15}), 3);
  EXPECT_EQ(sg.shard_of(Point2{64, 16}), 3);
}

// ---------------------------------------------------------------------------
// Sharded rounds: bit-identity across thread and shard counts.

RouterResult route_sharded(const RoutingGrid& grid, const Netlist& nl,
                           int threads, int shards, int rounds,
                           bool stealing = true) {
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.threads = threads;
  opts.shards = shards;
  opts.shard_stealing = stealing;
  Router session(grid, nl, opts);
  const Status st = session.run(rounds);
  EXPECT_TRUE(st.ok()) << st.to_string();
  return std::move(session).take_result();
}

TEST(ShardedRouter, BitIdenticalAcrossThreadShardAndStealingCounts) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);

  // Reference: static execution, serial, one shard. Stealing is an executor
  // policy, so every (threads, shards, stealing) cell must reproduce it.
  const RouterResult ref =
      route_sharded(grid, nl, 1, 1, 2, /*stealing=*/false);
  ASSERT_EQ(ref.routes.size(), nl.nets.size());
  EXPECT_GT(ref.wires.wirelength_gcells, 0.0);

  for (const int threads : {1, 2, 4}) {
    for (const int shards : {1, 4, 16}) {
      for (const bool stealing : {false, true}) {
        if (threads == 1 && shards == 1 && !stealing) continue;
        const RouterResult got =
            route_sharded(grid, nl, threads, shards, 2, stealing);
        ASSERT_EQ(got.routes.size(), ref.routes.size());
        for (std::size_t i = 0; i < ref.routes.size(); ++i) {
          EXPECT_EQ(got.routes[i], ref.routes[i])
              << "net " << i << " at threads=" << threads
              << " shards=" << shards << " stealing=" << stealing;
        }
        ASSERT_EQ(got.sink_delays.size(), ref.sink_delays.size());
        for (std::size_t s = 0; s < ref.sink_delays.size(); ++s) {
          EXPECT_EQ(got.sink_delays[s], ref.sink_delays[s]) << "sink " << s;
        }
        EXPECT_EQ(got.wires.num_vias, ref.wires.num_vias);
      }
    }
  }
}

TEST(ShardedRouter, StealingEmitsOneEventPerShardWithTelemetry) {
  // Whichever lane routes a shard's last span owns its completion event:
  // still exactly one event per shard per round, nets_done still monotonic
  // to the netlist total, and the steal telemetry stays consistent (a
  // shard's stolen nets never exceed its net count).
  struct CountingSink final : EventSink {
    std::vector<int> events_per_shard;
    std::size_t last_nets_done{0};
    std::size_t nets_total{0};
    bool monotonic{true};
    std::size_t stolen_total{0};
    bool stolen_in_range{true};
    void on_router_shard(const RouterShardEvent& event) override {
      if (events_per_shard.size() <
          static_cast<std::size_t>(event.shards)) {
        events_per_shard.resize(static_cast<std::size_t>(event.shards), 0);
      }
      ++events_per_shard[static_cast<std::size_t>(event.shard)];
      monotonic = monotonic && event.nets_done > last_nets_done;
      last_nets_done = event.nets_done;
      nets_total = event.nets_total;
      stolen_total += event.stolen_nets;
      stolen_in_range =
          stolen_in_range && event.stolen_nets <= event.shard_nets;
    }
  };

  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.threads = 4;
  opts.shards = 8;

  CountingSink sink;
  RunControl control;
  control.events = &sink;
  Router session(grid, nl, opts);
  ASSERT_TRUE(session.run(1, control).ok());

  ASSERT_EQ(sink.events_per_shard.size(), 8u);
  for (std::size_t sh = 0; sh < sink.events_per_shard.size(); ++sh) {
    EXPECT_EQ(sink.events_per_shard[sh], 1) << "shard " << sh;
  }
  EXPECT_TRUE(sink.monotonic);
  EXPECT_EQ(sink.last_nets_done, sink.nets_total);
  EXPECT_EQ(sink.nets_total, nl.nets.size());
  EXPECT_TRUE(sink.stolen_in_range);
}

TEST(ShardedRouter, SplitRunsMatchOneRun) {
  // Sharded rounds stay resumable: run(1); run(1) == run(2), like batched.
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.shards = 4;
  opts.threads = 2;

  Router one(grid, nl, opts);
  ASSERT_TRUE(one.run(2).ok());
  Router split(grid, nl, opts);
  ASSERT_TRUE(split.run(1).ok());
  ASSERT_TRUE(split.run(1).ok());

  const RouterResult a = std::move(one).take_result();
  const RouterResult b = std::move(split).take_result();
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i], b.routes[i]) << "net " << i;
  }
  EXPECT_EQ(a.sink_delays, b.sink_delays);
}

TEST(ShardedRouter, CancelledRoundLeavesPreviousBoundaryIntact) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.shards = 4;

  Router session(grid, nl, opts);
  ASSERT_TRUE(session.run(1).ok());
  const RouterResult before = session.result();

  CancelToken token;
  token.request_cancel();
  RunControl control;
  control.cancel = &token;
  const Status st = session.run(1, control);
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_EQ(session.rounds_completed(), 1);

  const RouterResult after = session.result();
  ASSERT_EQ(before.routes.size(), after.routes.size());
  for (std::size_t i = 0; i < before.routes.size(); ++i) {
    EXPECT_EQ(before.routes[i], after.routes[i]);
  }

  // The session resumes cleanly after the cancellation.
  token.reset();
  EXPECT_TRUE(session.run(1, control).ok());
  EXPECT_EQ(session.rounds_completed(), 2);
}

// ---------------------------------------------------------------------------
// Shared dense-state budget pool (one atomic pool across batch lanes).

TEST(SharedDenseBudget, TinyPoolFallsBackSparseWithIdenticalResults) {
  const RoutingGrid grid(20, 20, make_default_layer_stack(3), ViaSpec{});
  const FutureCost fc(grid);
  Rng rng(9);
  std::vector<double> cost(grid.graph().num_edges());
  for (std::size_t e = 0; e < cost.size(); ++e) {
    cost[e] = grid.base_costs()[e] * (1.0 + rng.uniform_double());
  }
  const std::vector<double>& delay = grid.edge_delays();
  CostDistanceInstance inst;
  inst.graph = &grid.graph();
  inst.cost = &cost;
  inst.delay = &delay;
  inst.root = grid.vertex_at(1, 1, 0);
  for (int s = 0; s < 8; ++s) {
    inst.sinks.push_back(
        Terminal{grid.vertex_at(static_cast<std::int32_t>(rng.uniform(20)),
                                static_cast<std::int32_t>(rng.uniform(20)), 0),
                 0.5});
  }

  ThreadPool pool(4);
  std::vector<CdSolver::Job> jobs(8);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    jobs[j].instance = &inst;
    jobs[j].seed = j + 1;
  }

  SolverOptions roomy;
  roomy.future_cost = &fc;
  CdSolver big(roomy, &pool);
  const auto a = big.solve_batch(std::span<const CdSolver::Job>(jobs));
  ASSERT_TRUE(a.ok());

  // A pool too small for even one dense state: every lane falls back to
  // sparse search state, results must not change by a bit.
  SolverOptions tiny = roomy;
  tiny.dense_state_budget_bytes = 1;
  CdSolver small(tiny, &pool);
  const auto b = small.solve_batch(std::span<const CdSolver::Job>(jobs));
  ASSERT_TRUE(b.ok());

  ASSERT_EQ(a->size(), b->size());
  for (std::size_t j = 0; j < a->size(); ++j) {
    EXPECT_EQ((*a)[j].tree.all_edges(), (*b)[j].tree.all_edges()) << j;
    EXPECT_EQ((*a)[j].eval.objective, (*b)[j].eval.objective) << j;
  }
}

TEST(SharedDenseBudget, ReservationsReturnToThePool) {
  DenseStateBudget budget(1000);
  EXPECT_TRUE(budget.try_reserve(600));
  EXPECT_FALSE(budget.try_reserve(600));
  EXPECT_TRUE(budget.try_reserve(400));
  EXPECT_EQ(budget.remaining_bytes(), 0);
  budget.release(600);
  budget.release(400);
  EXPECT_EQ(budget.remaining_bytes(), 1000);
}

TEST(SharedDenseBudget, ConcurrentReserveReleaseTracksExactPeak) {
  // Regression for the budget's memory-ordering contract: with relaxed
  // RMWs a monitoring thread could observe `remaining` drop without the
  // low-water update that drop implies, understating the peak; the
  // acq_rel/acquire pairs (and the atomic `initial_`) make the read-back
  // race-free. Hammer the pool from several threads, each holding at most
  // one unit-sized reservation, and check the invariants a race would
  // break: the pool refills to its full size, and the recorded peak is at
  // most threads * unit yet at least one unit (some reserve succeeded).
  constexpr std::int64_t kUnit = 64;
  constexpr int kThreads = 4;
  DenseStateBudget budget(kUnit * kThreads);
  const int iters = testutil::stress_iters(20000, 2000);
  std::atomic<std::int64_t> observed_peak{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        if (budget.try_reserve(kUnit)) {
          // Sample the peak while holding the reservation: the value must
          // already cover this thread's own outstanding unit.
          const std::int64_t peak = budget.peak_reserved_bytes();
          EXPECT_GE(peak, kUnit);
          std::int64_t seen = observed_peak.load(std::memory_order_relaxed);
          while (peak > seen && !observed_peak.compare_exchange_weak(
                                    seen, peak, std::memory_order_relaxed)) {
          }
          budget.release(kUnit);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(budget.remaining_bytes(), kUnit * kThreads);
  EXPECT_GE(observed_peak.load(), kUnit);
  EXPECT_LE(observed_peak.load(), kUnit * kThreads);
  EXPECT_LE(budget.peak_reserved_bytes(), kUnit * kThreads);
}

// ---------------------------------------------------------------------------
// Cancellation inside the embedded L1/SL/PD oracle paths.

TEST(EmbeddedOracleCancellation, PreCancelledTokenCancelsEveryMethod) {
  const ChipConfig c = tiny_chip();
  const RoutingGrid grid = make_chip_grid(c);
  const Netlist nl = generate_netlist(c, grid);

  CancelToken token;
  token.request_cancel();
  RunControl control;
  control.cancel = &token;

  for (const SteinerMethod m :
       {SteinerMethod::kL1, SteinerMethod::kSL, SteinerMethod::kPD}) {
    RouterOptions opts;
    opts.method = m;
    Router session(grid, nl, opts);
    const Status st = session.run(1, control);
    EXPECT_EQ(st.code(), StatusCode::kCancelled) << method_name(m);
    EXPECT_EQ(session.rounds_completed(), 0) << method_name(m);
    // Sharded rounds honor it the same way.
    RouterOptions sharded = opts;
    sharded.shards = 4;
    ASSERT_TRUE(session.set_options(sharded).ok());
    EXPECT_EQ(session.run(1, control).code(), StatusCode::kCancelled)
        << method_name(m);
  }
}

}  // namespace
}  // namespace cdst
