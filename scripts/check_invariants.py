#!/usr/bin/env python3
"""Project-invariant linter for the cdst tree.

Checks the conventions the compiler cannot: the Status discipline at the
session API boundary, the single thread-spawn site, seeded-RNG determinism,
allocation discipline in the solver hot paths, the raw-mutex ban that keeps
every lock visible to Clang's thread-safety analysis, suppression hygiene,
and public-header self-containment.

Rules (each has a stable id, used by the allow directive):

  api-throw     No `throw` in src/api/ — sessions return Status, never
                throw. Bare rethrows (`throw;`) are always allowed.
  raw-thread    No std::thread/std::jthread/pthread_create outside
                src/util/thread_pool.{h,cpp}: one spawn site keeps lifetime
                and shutdown reasoning in one place.
  rng           No rand()/srand()/std::random_device in src|bench|examples:
                results must be deterministic given the documented seeds
                (use util/rng.h).
  naked-new     No naked new/delete expressions in the hot paths (src/core,
                src/graph): allocation goes through containers or
                make_unique so the scratch-recycling invariants hold.
  raw-mutex     No std::mutex/condition_variable/lock_guard/unique_lock/
                scoped_lock outside src/util/thread_annotations.h: all
                locking goes through cdst::Mutex/MutexLock/CondVar so the
                -Wthread-safety analysis sees every acquisition.
  nolint-reason Every NOLINT must name its check and carry a reason:
                `NOLINT(<check>): <reason>` (same for NOLINTNEXTLINE).
  tsan-supp     Every suppression entry in tsan.supp must be preceded by a
                justification comment.
  header-self   Every header under src/ compiles on its own
                (g++ -fsyntax-only), so include order can never matter.
  status-origin Status::ResourceExhausted / Status::DeadlineExceeded may only
                be constructed in api/status.h and the helpers in
                api/scratch_pool.h: these codes carry hard semantics (budget
                truly exhausted, deadline truly expired), so every origin
                must flow through the audited helpers. This covers all of
                src/ including the serving core (src/serve/), whose admission
                rejects and deadline expirations are the highest-traffic
                consumers of both codes.
  fault-site    Every CDST_FAULT_POINT site name in src/ must appear in the
                fault-sweep manifest (tests/fault_injection_test.cpp), so no
                injection site can exist that the sweep never exercises.
  wire-format   Every `from_bytes` definition in src/ must validate the
                message header (wire::expect_header or a helper wrapping it)
                before reading any field, so corrupt or foreign bytes are
                rejected by magic/version, never mis-parsed field by field.
  intrinsics-only-in-simd-header
                No vendor SIMD intrinsics (_mm*_ calls, __m128/__m256/__m512
                types, *intrin.h includes) outside src/util/simd.h: kernels
                express their arithmetic through Vec4d so exactly one file
                dispatches on the ISA and the scalar twin can never drift.

Suppressing a finding inline:

    // cdst-lint: allow(<rule>) <reason>

on the offending line, or as a whole-line comment directly above it (the
directive then covers the first code line after the comment block). The
reason is mandatory; a bare allow is itself a violation.

Usage:
    scripts/check_invariants.py            lint the repo (exit 1 on findings)
    scripts/check_invariants.py --self-test  run the fixture-tree self-test
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

ALLOW_RE = re.compile(r"//\s*cdst-lint:\s*allow\((?P<rule>[\w-]+)\)\s*(?P<reason>.*)")

# ---------------------------------------------------------------------------
# Source model: one scanned file, with comments/strings stripped for the
# code-pattern rules and the original text kept for directive/comment rules.


class SourceFile:
    def __init__(self, path: Path, rel: str, text: str):
        self.path = path
        self.rel = rel
        self.lines = text.splitlines()
        self.code_lines = strip_comments_and_strings(text).splitlines()
        # rule -> set of 1-based line numbers covered by an allow directive
        self.allowed: dict[str, set[int]] = {}
        self.bad_directives: list[int] = []
        self._collect_directives()

    def _collect_directives(self) -> None:
        pending: list[tuple[str, int]] = []  # (rule, directive line)
        for i, line in enumerate(self.lines, start=1):
            stripped = line.strip()
            m = ALLOW_RE.search(line)
            if m:
                if not m.group("reason").strip():
                    self.bad_directives.append(i)
                    continue
                rule = m.group("rule")
                self.allowed.setdefault(rule, set()).add(i)
                if stripped.startswith("//"):
                    pending.append((rule, i))
                continue
            if stripped.startswith("//") or not stripped:
                continue  # comment block continues; directive still pending
            for rule, _ in pending:
                self.allowed.setdefault(rule, set()).add(i)
            pending = []

    def is_allowed(self, rule: str, line_no: int) -> bool:
        return line_no in self.allowed.get(rule, set())


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line layout
    so the rule regexes never fire inside documentation or literals."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Rules. Each yields (rel_path, line_no, rule_id, message).

THROW_RE = re.compile(r"\bthrow\b")
RETHROW_RE = re.compile(r"\bthrow\s*;")
THREAD_RE = re.compile(r"std::j?thread\b|\bpthread_create\b")
RNG_RE = re.compile(r"\b(?:s?rand)\s*\(|std::random_device\b")
NEW_RE = re.compile(r"\bnew\s+[A-Za-z_:<(]|\bnew\s*\[")
DELETE_RE = re.compile(r"\bdelete\s*\[?\]?\s*[A-Za-z_*(]")
MUTEX_RE = re.compile(
    r"std::(?:shared_|recursive_|timed_)?mutex\b|std::condition_variable"
    r"(?:_any)?\b|std::lock_guard\b|std::unique_lock\b|std::scoped_lock\b"
)
NOLINT_RE = re.compile(r"\bNOLINT(?:NEXTLINE|BEGIN|END)?\b")
NOLINT_OK_RE = re.compile(r"\bNOLINT(?:NEXTLINE)?\([\w\-.,: ]+\):\s*\S")
STATUS_ORIGIN_RE = re.compile(
    r"Status::(?:ResourceExhausted|DeadlineExceeded)\s*\("
)
# Files allowed to construct the origin-restricted statuses: the factory
# itself and the audited budget/deadline helpers.
STATUS_ORIGIN_FILES = ("src/api/status.h", "src/api/scratch_pool.h")
FAULT_POINT_RE = re.compile(r'CDST_FAULT_POINT\(\s*"([^"]+)"')
FAULT_MANIFEST = "tests/fault_injection_test.cpp"
INTRINSIC_RE = re.compile(
    r"\b_mm\d*_\w+\s*\(|\b__m(?:128|256|512)[di]?\b"
    r"|#\s*include\s*<(?:imm|x86|[a-z]+mm)intrin\.h>"
)
# The one file allowed to contain vendor intrinsics (the Vec4d dispatch).
SIMD_HEADER = "src/util/simd.h"
FROM_BYTES_DEF_RE = re.compile(r"\bfrom_bytes\s*\(")
WIRE_READ_RE = re.compile(
    r"\.\s*(?:u8|u16|u32|u64|f64)\s*\(|\bread_vec\b|\bread_str\b"
)
EXPECT_HEADER_RE = re.compile(r"\bexpect_header")


def scan_line_rule(src, rule, pattern, message, skip=None):
    findings = []
    for i, line in enumerate(src.code_lines, start=1):
        if not pattern.search(line):
            continue
        if skip is not None and skip(line):
            continue
        if src.is_allowed(rule, i):
            continue
        findings.append((src.rel, i, rule, message))
    return findings


def rule_api_throw(src: SourceFile):
    if not src.rel.startswith("src/api/"):
        return []
    return scan_line_rule(
        src,
        "api-throw",
        THROW_RE,
        "`throw` in the session API layer: return a Status instead "
        "(bare `throw;` rethrows are exempt)",
        skip=lambda line: RETHROW_RE.search(line) and not re.search(
            r"\bthrow\s+[^;]", line
        ),
    )


def rule_raw_thread(src: SourceFile):
    if src.rel in ("src/util/thread_pool.h", "src/util/thread_pool.cpp"):
        return []
    return scan_line_rule(
        src,
        "raw-thread",
        THREAD_RE,
        "thread spawned outside util/thread_pool: route work through "
        "cdst::ThreadPool so lifetime/shutdown stay centralized",
    )


def rule_rng(src: SourceFile):
    return scan_line_rule(
        src,
        "rng",
        RNG_RE,
        "unseeded/libc RNG breaks run-to-run determinism: use util/rng.h "
        "with a documented seed",
    )


def rule_naked_new(src: SourceFile):
    if not (src.rel.startswith("src/core/") or src.rel.startswith("src/graph/")):
        return []
    findings = []
    for i, line in enumerate(src.code_lines, start=1):
        hit = NEW_RE.search(line) or DELETE_RE.search(line)
        if not hit:
            continue
        # Deleted special members (`= delete`) and placement-new-free code
        # dominate; only flag actual allocation expressions.
        if re.search(r"=\s*delete\s*[;,)]?", line) and not NEW_RE.search(line):
            continue
        if src.is_allowed("naked-new", i):
            continue
        findings.append(
            (
                src.rel,
                i,
                "naked-new",
                "naked new/delete in a hot path: use containers or "
                "make_unique so the scratch-recycling invariants hold",
            )
        )
    return findings


def rule_raw_mutex(src: SourceFile):
    if not src.rel.startswith("src/"):
        return []
    if src.rel == "src/util/thread_annotations.h":
        return []
    return scan_line_rule(
        src,
        "raw-mutex",
        MUTEX_RE,
        "raw std mutex/lock type: use cdst::Mutex/MutexLock/CondVar "
        "(util/thread_annotations.h) so -Wthread-safety sees the lock",
    )


def rule_nolint_reason(src: SourceFile):
    findings = []
    for i, line in enumerate(src.lines, start=1):
        if not NOLINT_RE.search(line):
            continue
        if NOLINT_OK_RE.search(line):
            continue
        if src.is_allowed("nolint-reason", i):
            continue
        findings.append(
            (
                src.rel,
                i,
                "nolint-reason",
                "NOLINT without `(<check>): <reason>`: name the check and "
                "justify the suppression (NOLINTBEGIN/END blocks are banned)",
            )
        )
    return findings


def rule_status_origin(src: SourceFile):
    if not src.rel.startswith("src/") or src.rel in STATUS_ORIGIN_FILES:
        return []
    return scan_line_rule(
        src,
        "status-origin",
        STATUS_ORIGIN_RE,
        "kResourceExhausted/kDeadlineExceeded constructed outside the "
        "audited helpers: use detail::resource_exhausted_status / "
        "detail::deadline_exceeded_status (api/scratch_pool.h)",
    )


def rule_wire_format(src: SourceFile):
    """Walks each `from_bytes` definition body and flags a wire read that
    precedes the header validation. Declarations (`;` before `{`) are
    skipped; the body is delimited by brace depth on the stripped code."""
    if not src.rel.startswith("src/"):
        return []
    findings = []
    lines = src.code_lines
    n = len(lines)
    i = 0
    while i < n:
        if not FROM_BYTES_DEF_RE.search(lines[i]):
            i += 1
            continue
        # Find whether this is a definition: the first `{` or `;` after the
        # match decides (declarations end in `;`).
        j, col = i, lines[i].index("from_bytes")
        body_start = None
        while j < n:
            text = lines[j][col:] if j == i else lines[j]
            brace, semi = text.find("{"), text.find(";")
            if brace != -1 and (semi == -1 or brace < semi):
                body_start = (j, (col if j == i else 0) + brace + 1)
                break
            if semi != -1:
                break
            j += 1
        if body_start is None:
            i += 1
            continue
        # Scan the body: the first header check or wire read wins.
        depth = 1
        row, pos = body_start
        saw_header = False
        while row < n and depth > 0:
            text = lines[row][pos:]
            if not saw_header and EXPECT_HEADER_RE.search(text):
                saw_header = True
            if not saw_header:
                m = WIRE_READ_RE.search(text)
                if m and not src.is_allowed("wire-format", row + 1):
                    findings.append(
                        (
                            src.rel,
                            row + 1,
                            "wire-format",
                            "from_bytes reads a field before validating the "
                            "message header: check magic+version via "
                            "wire::expect_header (or a helper wrapping it) "
                            "first",
                        )
                    )
                    break
            depth += text.count("{") - text.count("}")
            row += 1
            pos = 0
        i = max(i + 1, row)
    return findings


def rule_intrinsics(src: SourceFile):
    if src.rel == SIMD_HEADER:
        return []
    return scan_line_rule(
        src,
        "intrinsics-only-in-simd-header",
        INTRINSIC_RE,
        "vendor SIMD intrinsic outside util/simd.h: express the kernel "
        "through Vec4d so one file dispatches on the ISA and the scalar "
        "twin stays bit-identical",
    )


def rule_bad_directive(src: SourceFile):
    return [
        (
            src.rel,
            i,
            "allow-reason",
            "cdst-lint allow directive without a reason",
        )
        for i in src.bad_directives
    ]


LINE_RULES = [
    rule_api_throw,
    rule_raw_thread,
    rule_rng,
    rule_naked_new,
    rule_raw_mutex,
    rule_nolint_reason,
    rule_status_origin,
    rule_wire_format,
    rule_intrinsics,
    rule_bad_directive,
]


def check_fault_sites(root: Path):
    """Every CDST_FAULT_POINT("name") under src/ must appear (as the quoted
    site string) in the fault-sweep manifest, so arming "every known site"
    in the sweep really is every site that exists. Site names live inside
    string literals, so this scans the raw text, not the stripped code."""
    findings = []
    manifest_path = root / FAULT_MANIFEST
    manifest = manifest_path.read_text() if manifest_path.exists() else ""
    for path in scanned_files(root):
        rel = path.relative_to(root).as_posix()
        if not rel.startswith("src/"):
            continue
        for i, line in enumerate(path.read_text().splitlines(), start=1):
            for m in FAULT_POINT_RE.finditer(line):
                site = m.group(1)
                if f'"{site}"' not in manifest:
                    findings.append(
                        (
                            rel,
                            i,
                            "fault-site",
                            f'fault site "{site}" missing from the sweep '
                            f"manifest ({FAULT_MANIFEST}): every injection "
                            "site must be exercised by the fault sweep",
                        )
                    )
    return findings


def check_tsan_supp(root: Path):
    findings = []
    supp = root / "tsan.supp"
    if not supp.exists():
        return findings
    prev_was_comment = False
    for i, line in enumerate(supp.read_text().splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            prev_was_comment = False
            continue
        if stripped.startswith("#"):
            prev_was_comment = True
            continue
        if not prev_was_comment:
            findings.append(
                (
                    "tsan.supp",
                    i,
                    "tsan-supp",
                    "suppression entry without a justification comment "
                    "directly above it",
                )
            )
        prev_was_comment = False
    return findings


def check_headers_self_contained(root: Path, headers, jobs=None):
    if jobs is None:
        jobs = max(4, (os.cpu_count() or 4))
    """Compiles each header alone; a header that depends on its includer's
    includes fails here before it fails a refactor."""
    findings = []
    gxx = shutil.which("g++") or shutil.which("clang++")
    if gxx is None:
        print("warning: no C++ compiler found; skipping header-self rule",
              file=sys.stderr)
        return findings

    def compile_one(header: Path):
        cmd = [
            gxx,
            "-std=c++20",
            "-fsyntax-only",
            "-x",
            "c++",
            f"-I{root / 'src'}",
            str(header),
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            tail = proc.stderr.strip().splitlines()
            detail = tail[0] if tail else "compile failed"
            return (
                str(header.relative_to(root)),
                1,
                "header-self",
                f"header is not self-contained: {detail}",
            )
        return None

    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for result in pool.map(compile_one, headers):
            if result is not None:
                findings.append(result)
    return findings


# ---------------------------------------------------------------------------
# Driver


def scanned_files(root: Path):
    for tree in ("src", "bench", "examples"):
        base = root / tree
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".h", ".hpp", ".cpp", ".cc"):
                yield path


def run_lint(root: Path, with_headers: bool = True):
    findings = []
    headers = []
    for path in scanned_files(root):
        rel = path.relative_to(root).as_posix()
        src = SourceFile(path, rel, path.read_text())
        for rule in LINE_RULES:
            findings.extend(rule(src))
        if path.suffix in (".h", ".hpp") and rel.startswith("src/"):
            headers.append(path)
    findings.extend(check_tsan_supp(root))
    findings.extend(check_fault_sites(root))
    if with_headers:
        findings.extend(check_headers_self_contained(root, headers))
    return sorted(findings)


def self_test() -> int:
    """Asserts each rule fires on the fixture tree's known-bad files and
    stays silent on the known-clean ones."""
    fixture = REPO_ROOT / "scripts" / "testdata" / "check_invariants"
    if not fixture.is_dir():
        print(f"self-test fixture tree missing: {fixture}", file=sys.stderr)
        return 1
    findings = run_lint(fixture, with_headers=True)
    by_file: dict[str, set[str]] = {}
    for rel, _line, rule, _msg in findings:
        by_file.setdefault(rel, set()).add(rule)

    expectations = {
        "src/api/bad_throw.cpp": {"api-throw"},
        "src/api/allowed_throw.cpp": set(),
        "src/core/bad_hot_path.cpp": {"naked-new", "rng"},
        "src/util/bad_locking.cpp": {"raw-mutex", "raw-thread"},
        "src/grid/bad_nolint.h": {"nolint-reason", "allow-reason"},
        "src/grid/bad_header.h": {"header-self"},
        "src/grid/clean.h": set(),
        "src/api/clean.cpp": set(),
        "src/core/bad_status_origin.cpp": {"status-origin"},
        "src/serve/bad_status_origin.cpp": {"status-origin"},
        "src/serve/clean_admission.cpp": set(),
        "src/io/bad_wire.cpp": {"wire-format"},
        "src/io/clean_wire.cpp": set(),
        "src/util/bad_fault_site.cpp": {"fault-site"},
        "src/util/clean_fault_site.cpp": set(),
        "src/util/bad_intrinsics.cpp": {"intrinsics-only-in-simd-header"},
        "src/util/simd.h": set(),
        "tsan.supp": {"tsan-supp"},
    }

    failures = 0
    for rel, expected in expectations.items():
        got = by_file.pop(rel, set())
        if got != expected:
            print(
                f"self-test FAIL {rel}: expected rules {sorted(expected)}, "
                f"got {sorted(got)}",
                file=sys.stderr,
            )
            failures += 1
    for rel, got in by_file.items():
        print(
            f"self-test FAIL: unexpected findings in {rel}: {sorted(got)}",
            file=sys.stderr,
        )
        failures += 1
    if failures == 0:
        print(f"self-test OK: {len(expectations)} fixtures, "
              f"{len(findings)} expected findings")
        return 0
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--self-test", action="store_true",
                        help="lint the fixture tree and check rule coverage")
    parser.add_argument("--no-headers", action="store_true",
                        help="skip the header self-containment compiles")
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="tree to lint (default: the repo root)")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = run_lint(args.root, with_headers=not args.no_headers)
    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if findings:
        print(f"\n{len(findings)} invariant violation(s).", file=sys.stderr)
        return 1
    print("check_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
