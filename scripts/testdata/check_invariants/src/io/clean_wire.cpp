// wire-format fixture: header validated before any field read — clean.
#include <cstdint>
#include <span>

namespace fixture {

struct Reader {
  std::uint32_t u32();
  std::uint64_t u64();
};
enum class HeaderCheck { kOk, kBadMagic, kBadVersion };
HeaderCheck expect_header(Reader& r, std::uint32_t magic,
                          std::uint32_t version);

struct Msg {
  std::uint64_t seed{0};
  // A declaration alone must never trip the rule.
  static Msg from_bytes(std::span<const std::uint8_t> bytes);
};

Msg Msg::from_bytes(std::span<const std::uint8_t> bytes) {
  (void)bytes;
  Reader r;
  Msg m;
  if (expect_header(r, 0x1234u, 1u) != HeaderCheck::kOk) {
    return m;
  }
  m.seed = r.u64();
  return m;
}

}  // namespace fixture
