// Fixture: a clean API file. Mentions of throw, new, rand and std::mutex in
// comments and string literals must not produce findings.
//
// This comment says: throw std::mutex at rand() with new int.

namespace fixture {

inline const char* doc() { return "never throw; never rand(); std::mutex"; }

}  // namespace fixture
