// Fixture: an allow directive with a reason suppresses `api-throw`, and a
// bare rethrow is always exempt — this file must lint clean.
#include <stdexcept>

namespace fixture {

struct Unwind {};

int run(int v) {
  if (v < 0) {
    // cdst-lint: allow(api-throw) internal unwind: caught by the caller
    // in this same translation unit and mapped to a status code.
    throw Unwind{};
  }
  return v;
}

int outer(int v) {
  try {
    return run(v);
  } catch (const Unwind&) {
    return -1;
  } catch (...) {
    throw;  // rethrow: exempt without a directive
  }
}

}  // namespace fixture
