// Fixture: a throw reaching the session API boundary must trip `api-throw`.
#include <stdexcept>

namespace fixture {

int parse(int v) {
  if (v < 0) {
    throw std::runtime_error("negative");
  }
  return v;
}

}  // namespace fixture
