// Fixture: constructs an origin-restricted status outside the audited
// helpers in api/scratch_pool.h -> status-origin.
#include <string>

namespace cdst {
struct Status {
  static Status DeadlineExceeded(const std::string& msg);
};

Status fake_solve() {
  return Status::DeadlineExceeded("deadline forged outside the helpers");
}
}  // namespace cdst
