// Fixture: hot-path allocation discipline (`naked-new`) and determinism
// (`rng`) violations. The commented-out `new` and the "new" inside the
// string literal must NOT fire — the linter strips comments and strings.
#include <cstdlib>

namespace fixture {

// new int[4] in a comment: not a finding.
const char* label() { return "brand new delete rand()"; }

int* alloc(int n) {
  int* data = new int[n];
  data[0] = rand();
  delete[] data;
  return nullptr;
}

}  // namespace fixture
