// Fixture: uses std::vector without including <vector> — compiles only if
// the includer happened to pull it in first, so `header-self` must fire.
#pragma once

namespace fixture {

inline std::vector<int> make() { return {1, 2, 3}; }

}  // namespace fixture
