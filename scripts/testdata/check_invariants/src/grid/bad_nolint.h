// Fixture: a NOLINT without `(<check>): <reason>` trips `nolint-reason`,
// and an allow directive without a reason trips `allow-reason`.
#pragma once

namespace fixture {

inline int shift(int v) { return v << 1; }  // NOLINT

// cdst-lint: allow(rng)
inline int next(int v) { return v + 1; }

// Properly formed, must not fire:
// NOLINTNEXTLINE(bugprone-integer-division): ratio is intentionally floored.
inline int half(int v) { return v / 2; }

}  // namespace fixture
