// Fixture: a self-contained header that must pass every rule.
#pragma once

#include <vector>

namespace fixture {

inline std::vector<int> make() { return {1, 2, 3}; }

}  // namespace fixture
