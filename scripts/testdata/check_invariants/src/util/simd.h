// Fixture twin of the real util/simd.h: the single file the
// intrinsics-only-in-simd-header rule exempts, so intrinsics here are clean.
#pragma once

#if defined(__AVX2__)
#include <immintrin.h>

inline __m256d fixture_vec_add(__m256d a, __m256d b) {
  return _mm256_add_pd(a, b);
}
#endif
