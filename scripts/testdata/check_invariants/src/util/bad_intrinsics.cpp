// Fixture: vendor intrinsics outside util/simd.h must fire
// intrinsics-only-in-simd-header (the include, the type, and the calls).
#include <immintrin.h>

double bad_sum2(const double* p) {
  __m128d v = _mm_loadu_pd(p);
  v = _mm_add_pd(v, v);
  return _mm_cvtsd_f64(v);
}
