// Fixture: a fault-injection site that IS listed in the sweep manifest
// (tests/fault_injection_test.cpp) -> no findings.
#define CDST_FAULT_POINT(name) ((void)0)

namespace cdst {
void swept_operation() { CDST_FAULT_POINT("fixture.swept"); }
}  // namespace cdst
