// Fixture: a fault-injection site whose name is absent from the sweep
// manifest (tests/fault_injection_test.cpp) -> fault-site.
#define CDST_FAULT_POINT(name) ((void)0)

namespace cdst {
void unswept_operation() { CDST_FAULT_POINT("fixture.unswept"); }
}  // namespace cdst
