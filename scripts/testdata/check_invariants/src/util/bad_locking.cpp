// Fixture: a raw std::mutex (`raw-mutex`) and a thread spawned outside the
// pool (`raw-thread`). Deleted special members must not trip naked-new's
// delete matcher (and this directory is not a hot path anyway).
#include <mutex>
#include <thread>

namespace fixture {

struct Counter {
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void bump() {
    std::lock_guard<std::mutex> lock(mu);
    ++value;
  }

  std::mutex mu;
  int value = 0;
};

void spawn(Counter& c) {
  std::thread t([&c] { c.bump(); });
  t.join();
}

}  // namespace fixture
