// Fixture: a clean serving-layer admission path — the origin-restricted
// statuses flow through the audited helpers (api/scratch_pool.h), so no
// rule fires.
#include <cstddef>
#include <string>

namespace cdst {
struct Status {
  static Status Ok();
};
namespace detail {
Status resource_exhausted_status(const std::string& what);
}  // namespace detail

namespace serve {
Status clean_admit(std::size_t projected, std::size_t budget) {
  if (projected > budget) {
    return detail::resource_exhausted_status("projection exceeds the budget");
  }
  return Status::Ok();
}
}  // namespace serve
}  // namespace cdst
