// Fixture: a serving-layer admission path that forges an origin-restricted
// status instead of routing through the audited helpers -> status-origin.
// The serving core is exactly where the temptation lives (admission rejects
// with kResourceExhausted, deadlines expire with kDeadlineExceeded), so the
// rule must bite under src/serve/ like everywhere else.
#include <string>

namespace cdst {
struct Status {
  static Status ResourceExhausted(const std::string& msg);
};

namespace serve {
Status fake_admit() {
  return Status::ResourceExhausted("admission forged outside the helpers");
}
}  // namespace serve
}  // namespace cdst
