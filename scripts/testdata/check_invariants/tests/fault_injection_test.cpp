// Fixture manifest for the fault-site rule: the fixture tree's sweep test.
// Only the one site below is listed, so the unlisted site in
// src/util/bad_fault_site.cpp must be flagged.
constexpr const char* kFaultSiteManifest[] = {
    "fixture.swept",
};
