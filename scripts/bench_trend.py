#!/usr/bin/env python3
"""Diff Google Benchmark JSON files and fail on a median regression.

Usage:
    bench_trend.py BASELINE.json CURRENT.json [BASELINE2.json CURRENT2.json
                   ...] [--threshold-pct 15]

Files are consumed as (baseline, current) pairs, so one invocation can gate
several benchmark suites at once (the CI bench job diffs BENCH_cd_scaling
and BENCH_router together). For every benchmark present in BOTH files of a
pair, the per-benchmark time is the median: the reported "median" aggregate
when repetitions were used, else the median over the iteration entries. The
check fails (exit 1) when any PAIR's median of per-benchmark
current/baseline ratios exceeds 1 + threshold — per-pair, so a wholesale
regression in a small suite cannot hide behind a flat larger one, and
per-median within the pair, so one noisy benchmark cannot fail the fleet.
Benchmarks present in only one file (renamed/added rows) are listed and
skipped. A pair whose baseline file is missing (a new suite, a fresh repo,
or an expired CI artifact) is SEEDED: the current results are copied to the
baseline path, a notice lists every seeded row, and the pair passes — so
the gate runs unconditionally and the next run has history to diff against,
instead of the check silently skipping. Exit code 0 otherwise.
"""

import argparse
import json
import os
import shutil
import statistics
import sys


def median_times(path):
    """Map of benchmark run_name -> median real_time (per time_unit)."""
    with open(path) as f:
        data = json.load(f)
    aggregates = {}
    iterations = {}
    for entry in data.get("benchmarks", []):
        name = entry.get("run_name", entry.get("name", ""))
        if not name:
            continue
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "median":
                aggregates[name] = float(entry["real_time"])
        else:
            iterations.setdefault(name, []).append(float(entry["real_time"]))
    times = {name: statistics.median(vals) for name, vals in iterations.items()}
    times.update(aggregates)  # an explicit median aggregate wins
    return times


def diff_pair(baseline_path, current_path, threshold_pct):
    """Prints one pair's table; returns the pair's median ratio, or None
    when the pair contributed no comparison."""
    base = median_times(baseline_path)
    curr = median_times(current_path)
    shared = sorted(set(base) & set(curr))
    label = os.path.basename(current_path)
    if not shared:
        print(f"bench_trend [{label}]: no overlapping benchmarks; skipping")
        return None
    for name in sorted(set(base) ^ set(curr)):
        side = "baseline only" if name in base else "current only"
        print(f"bench_trend [{label}]: skipping {name} ({side})")

    ratios = []
    print(f"\n[{label}]")
    print(f"{'benchmark':<44} {'base':>10} {'curr':>10} {'ratio':>7}")
    for name in shared:
        ratio = curr[name] / base[name] if base[name] > 0 else 1.0
        ratios.append(ratio)
        flag = "  <-- slower" if ratio > 1 + threshold_pct / 100 else ""
        print(f"{name:<44} {base[name]:>10.3f} {curr[name]:>10.3f} "
              f"{ratio:>7.3f}{flag}")
    med = statistics.median(ratios)
    print(f"[{label}] median ratio over {len(ratios)} benchmarks: "
          f"{med:.3f} (threshold {1 + threshold_pct / 100:.2f})")
    return med


def seed_baseline(baseline_path, current_path):
    """First run of a suite: adopt the current results as the baseline and
    pass, loudly listing what was seeded (a silent skip would read as
    "gate passed" when nothing was checked)."""
    label = os.path.basename(current_path)
    print(f"bench_trend [{label}]: no baseline {baseline_path}; seeding it "
          f"from the current results (nothing to diff yet)")
    parent = os.path.dirname(baseline_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    shutil.copyfile(current_path, baseline_path)
    for name, t in sorted(median_times(current_path).items()):
        print(f"bench_trend [{label}]: seeded {name} = {t:.3f}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+",
                        help="baseline/current JSON files, in pairs")
    parser.add_argument("--threshold-pct", type=float, default=15.0)
    args = parser.parse_args()

    if len(args.files) % 2 != 0:
        print("bench_trend: expected an even number of files "
              "(baseline current [baseline current ...])")
        return 2

    failed = []
    compared = 0
    for i in range(0, len(args.files), 2):
        baseline, current = args.files[i], args.files[i + 1]
        if not os.path.exists(baseline):
            seed_baseline(baseline, current)
            continue
        med = diff_pair(baseline, current, args.threshold_pct)
        if med is None:
            continue
        compared += 1
        if med > 1 + args.threshold_pct / 100:
            failed.append(os.path.basename(current))

    if compared == 0:
        print("bench_trend: nothing to compare; skipping check")
        return 0
    if failed:
        print(f"\nbench_trend: FAIL — median regression exceeds "
              f"{args.threshold_pct:.0f}% in: {', '.join(failed)}")
        return 1
    print("\nbench_trend: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
