#!/usr/bin/env python3
"""Diff two Google Benchmark JSON files and fail on a median regression.

Usage:
    bench_trend.py BASELINE.json CURRENT.json [--threshold-pct 15]

For every benchmark present in BOTH files, the per-benchmark time is the
median: the reported "median" aggregate when repetitions were used, else the
median over the iteration entries. The check fails (exit 1) when the median
of the per-benchmark current/baseline ratios exceeds 1 + threshold — a
fleet-wide regression signal that is robust to one noisy benchmark.
Benchmarks present in only one file (renamed/added rows) are listed and
skipped. Exit code 0 otherwise.
"""

import argparse
import json
import statistics
import sys


def median_times(path):
    """Map of benchmark run_name -> median real_time (per time_unit)."""
    with open(path) as f:
        data = json.load(f)
    aggregates = {}
    iterations = {}
    for entry in data.get("benchmarks", []):
        name = entry.get("run_name", entry.get("name", ""))
        if not name:
            continue
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "median":
                aggregates[name] = float(entry["real_time"])
        else:
            iterations.setdefault(name, []).append(float(entry["real_time"]))
    times = {name: statistics.median(vals) for name, vals in iterations.items()}
    times.update(aggregates)  # an explicit median aggregate wins
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold-pct", type=float, default=15.0)
    args = parser.parse_args()

    base = median_times(args.baseline)
    curr = median_times(args.current)
    shared = sorted(set(base) & set(curr))
    if not shared:
        print("bench_trend: no overlapping benchmarks; skipping check")
        return 0
    for name in sorted(set(base) ^ set(curr)):
        side = "baseline only" if name in base else "current only"
        print(f"bench_trend: skipping {name} ({side})")

    ratios = []
    print(f"{'benchmark':<44} {'base':>10} {'curr':>10} {'ratio':>7}")
    for name in shared:
        ratio = curr[name] / base[name] if base[name] > 0 else 1.0
        ratios.append(ratio)
        flag = "  <-- slower" if ratio > 1 + args.threshold_pct / 100 else ""
        print(f"{name:<44} {base[name]:>10.3f} {curr[name]:>10.3f} "
              f"{ratio:>7.3f}{flag}")

    med = statistics.median(ratios)
    print(f"\nmedian ratio over {len(shared)} benchmarks: {med:.3f} "
          f"(threshold {1 + args.threshold_pct / 100:.2f})")
    if med > 1 + args.threshold_pct / 100:
        print(f"bench_trend: FAIL — median regression exceeds "
              f"{args.threshold_pct:.0f}%")
        return 1
    print("bench_trend: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
