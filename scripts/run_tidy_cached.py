#!/usr/bin/env python3
"""clang-tidy over the compile database, with a content-hash result cache.

A full clang-tidy pass over this tree costs minutes; almost all of it is
re-analyzing translation units whose inputs did not change. This wrapper
keys each TU on everything that can change its diagnostics:

  - the clang-tidy version string,
  - every .clang-tidy config in the repo (the root one and the
    per-directory tightenings),
  - the TU's compile command from compile_commands.json,
  - the TU's own bytes,
  - one global digest over every header in src/ (conservative: any header
    edit re-analyzes everything — correct by construction, and header
    edits are the minority of commits).

A TU whose key has a marker in the cache directory is skipped. CI persists
the cache directory with actions/cache, so a doc-only or test-only push
re-analyzes nothing.

Usage:
    scripts/run_tidy_cached.py --build-dir build/tidy \\
        [--cache-dir .tidy-cache] [--jobs N] [--log-file tidy.log]

Exit status: 0 when every analyzed TU is clean, 1 otherwise (the offending
diagnostics go to stdout and, when given, --log-file).
"""

from __future__ import annotations

import argparse
import concurrent.futures
import hashlib
import json
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCANNED_TREES = ("src", "bench", "examples")


def sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def global_digest(tidy_version: str) -> str:
    h = hashlib.sha256()
    h.update(tidy_version.encode())
    for config in sorted(REPO_ROOT.rglob(".clang-tidy")):
        if "build" in config.parts:
            continue
        h.update(config.relative_to(REPO_ROOT).as_posix().encode())
        h.update(config.read_bytes())
    for header in sorted((REPO_ROOT / "src").rglob("*.h")):
        h.update(header.relative_to(REPO_ROOT).as_posix().encode())
        h.update(header.read_bytes())
    return h.hexdigest()


def tu_key(entry: dict, digest: str) -> str:
    path = Path(entry["file"])
    h = hashlib.sha256()
    h.update(digest.encode())
    h.update(str(path).encode())
    h.update(entry.get("command", " ".join(entry.get("arguments", []))).encode())
    h.update(path.read_bytes())
    return h.hexdigest()


def load_compile_db(build_dir: Path) -> list[dict]:
    db_path = build_dir / "compile_commands.json"
    if not db_path.exists():
        sys.exit(f"no compile_commands.json in {build_dir} "
                 "(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)")
    entries = json.loads(db_path.read_text())
    keep = []
    for entry in entries:
        rel = Path(entry["file"]).resolve()
        try:
            tree = rel.relative_to(REPO_ROOT).parts[0]
        except ValueError:
            continue  # generated / fetched sources (gtest) are not gated
        if tree in SCANNED_TREES:
            keep.append(entry)
    return keep


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", type=Path, required=True)
    parser.add_argument("--cache-dir", type=Path,
                        default=REPO_ROOT / ".tidy-cache")
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--log-file", type=Path, default=None)
    parser.add_argument("--clang-tidy", default="clang-tidy")
    args = parser.parse_args()

    tidy = shutil.which(args.clang_tidy)
    if tidy is None:
        sys.exit(f"{args.clang_tidy} not found on PATH")
    version = subprocess.run([tidy, "--version"], capture_output=True,
                             text=True, check=True).stdout.strip()

    entries = load_compile_db(args.build_dir.resolve())
    digest = global_digest(version)
    args.cache_dir.mkdir(parents=True, exist_ok=True)

    todo: list[tuple[dict, str]] = []
    cached = 0
    for entry in entries:
        key = tu_key(entry, digest)
        if (args.cache_dir / key).exists():
            cached += 1
        else:
            todo.append((entry, key))
    print(f"clang-tidy: {len(entries)} TUs, {cached} cached, "
          f"{len(todo)} to analyze", flush=True)

    failures: list[str] = []

    def analyze(item: tuple[dict, str]) -> None:
        entry, key = item
        rel = Path(entry["file"]).resolve().relative_to(REPO_ROOT)
        proc = subprocess.run(
            [tidy, "-p", str(args.build_dir), "--quiet", entry["file"]],
            capture_output=True, text=True)
        output = (proc.stdout + proc.stderr).strip()
        if proc.returncode == 0:
            (args.cache_dir / key).touch()
            print(f"  ok {rel}", flush=True)
        else:
            failures.append(f"== {rel} ==\n{output}\n")
            print(f"  FAIL {rel}", flush=True)

    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        list(pool.map(analyze, todo))

    if failures:
        report = "\n".join(failures)
        print(report)
        if args.log_file is not None:
            args.log_file.write_text(report)
        print(f"clang-tidy: {len(failures)} TU(s) with diagnostics",
              file=sys.stderr)
        return 1
    print("clang-tidy: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
