#include "route/router.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>

#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cdst {

RouterResult route_chip(const RoutingGrid& grid, const Netlist& netlist,
                        const RouterOptions& options) {
  CDST_CHECK(options.iterations >= 1);
  WallTimer timer;

  const std::size_t num_nets = netlist.nets.size();
  // Flattened sink indexing.
  std::vector<std::size_t> sink_offset(num_nets + 1, 0);
  for (std::size_t i = 0; i < num_nets; ++i) {
    sink_offset[i + 1] = sink_offset[i] + netlist.nets[i].sinks.size();
  }
  const std::size_t num_sinks = sink_offset[num_nets];

  RouterResult result;
  result.routes.assign(num_nets, {});
  result.sink_delays.assign(num_sinks, 0.0);
  result.sink_weights.assign(num_sinks, options.weight_floor);

  // Seed the Lagrange multipliers from RAT criticality: a sink whose budget
  // is close to its ideal (fastest-possible) delay starts with a high delay
  // weight, so the very first routing round already trades congestion
  // against timing sensibly instead of waiting for multiplier ramp-up.
  std::vector<double> rats(num_sinks);
  for (std::size_t i = 0; i < num_nets; ++i) {
    const Net& net = netlist.nets[i];
    for (std::size_t s = 0; s < net.sinks.size(); ++s) {
      const std::size_t flat = sink_offset[i] + s;
      rats[flat] = net.sinks[s].rat;
      const double ideal =
          grid.min_unit_delay() *
              static_cast<double>(l1_distance(net.source, net.sinks[s].pos)) +
          2.0 * grid.min_via_delay();
      if (rats[flat] > 0.0 && ideal > 0.0) {
        const double criticality = ideal / rats[flat];  // <= 1 if feasible
        result.sink_weights[flat] = std::clamp(
            options.weight_init_scale * criticality * criticality,
            options.weight_floor, options.weight_ceiling);
      }
    }
  }

  CongestionCosts costs(grid, options.congestion);

  OracleParams oracle = options.oracle;
  const int threads = std::max(1, options.threads);
  // One persistent worker pool for the whole call: spawning fresh threads
  // per batch costs more than many of the small batches themselves. The
  // batch structure is part of the algorithm's semantics (nets in a batch
  // price against the same frozen snapshot), so it must not depend on the
  // thread count — otherwise threads=1 and threads=N would route differently,
  // breaking the determinism contract documented on RouterOptions::threads.
  // The pool hands out net indices, and every result lands in its own
  // index-addressed outcome slot, so that contract is preserved.
  ThreadPool pool(threads);
  const std::size_t batch =
      static_cast<std::size_t>(std::max(1, options.batch_size));
  for (int iter = 0; iter < options.iterations; ++iter) {
    for (std::size_t lo = 0; lo < num_nets; lo += batch) {
      const std::size_t hi = std::min(num_nets, lo + batch);
      // Rip up the whole batch so its nets price edges without their own
      // (or each other's previous) usage, then route against the frozen
      // snapshot — in parallel when threads > 1.
      for (std::size_t i = lo; i < hi; ++i) {
        if (!result.routes[i].empty()) {
          costs.add_usage(result.routes[i], -1.0);
        }
      }
      std::vector<OracleOutcome> outcomes(hi - lo);
      const std::function<void(std::size_t)> route_one = [&](std::size_t i) {
        const Net& net = netlist.nets[i];
        if (net.sinks.empty()) return;
        // The weights view borrows from result.sink_weights, which only
        // changes between iterations — never while a batch is in flight.
        const std::span<const double> weights(
            result.sink_weights.data() + sink_offset[i],
            sink_offset[i + 1] - sink_offset[i]);
        OracleParams p = oracle;
        p.seed = options.seed * 0x9e3779b9ull + net.id * 1000003ull +
                 static_cast<std::uint64_t>(iter);
        outcomes[i - lo] =
            route_net(grid, costs, net, weights, options.method, p);
      };
      pool.parallel_for(lo, hi, route_one);
      for (std::size_t i = lo; i < hi; ++i) {
        const Net& net = netlist.nets[i];
        if (net.sinks.empty()) continue;
        OracleOutcome& out = outcomes[i - lo];
        costs.add_usage(out.grid_edges, +1.0);
        result.routes[i] = std::move(out.grid_edges);
        for (std::size_t s = 0; s < net.sinks.size(); ++s) {
          result.sink_delays[sink_offset[i] + s] = out.eval.sink_delays[s];
        }
      }
    }
    // Lagrangean step: slacks drive the delay-weight multipliers for the
    // next round.
    const std::vector<double> slacks =
        compute_slacks(result.sink_delays, rats);
    if (iter + 1 < options.iterations) {
      // Decreasing subgradient step stabilizes the multipliers.
      const double step = 1.0 / std::sqrt(static_cast<double>(iter + 1));
      update_delay_weights(slacks, options.weight_scale, options.weight_floor,
                           options.weight_ceiling, result.sink_weights, step);
    }
    if (options.verbose) {
      const TimingSummary ts = summarize_slacks(slacks);
      CDST_LOG(kInfo) << netlist.name << " " << method_name(options.method)
                      << " iter " << iter << ": WS " << ts.worst_slack
                      << " TNS " << ts.total_negative_slack << " ACE4 "
                      << compute_ace(costs).ace4;
    }
  }

  result.timing =
      summarize_slacks(compute_slacks(result.sink_delays, rats));
  result.congestion = compute_ace(costs);
  result.wires = compute_wire_stats(grid, result.routes);
  result.nets_routed = num_nets;
  result.walltime_s = timer.seconds();
  return result;
}

}  // namespace cdst
