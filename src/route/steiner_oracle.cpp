#include "route/steiner_oracle.h"

#include <algorithm>

#include "topology/prim_dijkstra.h"
#include "topology/rsmt.h"
#include "topology/shallow_light.h"

namespace cdst {
namespace {

Rect net_window_box(const Net& net, const OracleParams& p) {
  Rect box;
  box.expand(net.source.xy());
  for (const SinkPin& s : net.sinks) box.expand(s.pos.xy());
  const auto margin = static_cast<std::int32_t>(
      p.window_margin +
      p.window_margin_frac * static_cast<double>(box.half_perimeter()));
  return box.inflated(margin);
}

}  // namespace

OracleInstance::OracleInstance(const RoutingGrid& grid,
                               const CongestionCosts& costs, const Net& net,
                               std::span<const double> sink_weights,
                               const OracleParams& params,
                               const RoundPricing* pricing)
    : rep_(std::make_unique<Rep>(grid, costs, net_window_box(net, params),
                                 pricing)) {
  CDST_CHECK(sink_weights.size() == net.sinks.size());
  Rep& rep = *rep_;
  rep.instance.graph = &rep.window.graph();
  rep.instance.cost = &rep.window.edge_costs();
  rep.instance.delay = &rep.window.edge_delays();
  rep.instance.arc_costs = &rep.window.arc_costs();
  rep.instance.dbif = params.dbif;
  rep.instance.eta = params.eta;
  rep.instance.root = rep.window.from_grid_vertex(grid.vertex_at(net.source));
  CDST_CHECK(rep.instance.root != kInvalidVertex);
  rep.root_xy = net.source.xy();
  for (std::size_t s = 0; s < net.sinks.size(); ++s) {
    const VertexId wv =
        rep.window.from_grid_vertex(grid.vertex_at(net.sinks[s].pos));
    CDST_CHECK(wv != kInvalidVertex);
    rep.instance.sinks.push_back(Terminal{wv, sink_weights[s]});
    rep.plane_sinks.push_back(PlaneTerminal{net.sinks[s].pos.xy(),
                                            sink_weights[s],
                                            net.sinks[s].rat});
  }
}

OracleInstance::~OracleInstance() = default;
OracleInstance::OracleInstance(OracleInstance&&) noexcept = default;
OracleInstance& OracleInstance::operator=(OracleInstance&&) noexcept =
    default;

double OracleInstance::delay_per_unit() const {
  return rep_->window.grid().min_unit_delay();
}

OracleOutcome run_method(const OracleInstance& oi, SteinerMethod method,
                         const OracleParams& params, SolverScratch* scratch,
                         const SolveControls* controls) {
  OracleOutcome out;
  if (method == SteinerMethod::kCD) {
    SolverOptions opts = params.cd;
    opts.seed = params.seed;
    opts.future_cost = &oi.future_cost();
    SolveResult r = solve_cost_distance(oi.instance(), opts, scratch,
                                        controls);
    out.eval = r.eval;
    out.grid_edges = oi.window().to_grid_edges(r.tree.all_edges());
    return out;
  }

  // The embedded baselines poll cancellation too: once before the plane
  // topology is built, then per embedding-DP node inside embed_topology.
  if (controls != nullptr && controls->cancel != nullptr &&
      controls->cancel->load(std::memory_order_relaxed)) {
    throw SolveCancelled();
  }
  PlaneTopology topo;
  switch (method) {
    case SteinerMethod::kL1:
      topo = rsmt_topology(oi.root_xy(), oi.plane_sinks());
      break;
    case SteinerMethod::kSL: {
      ShallowLightParams sl;
      sl.epsilon = params.sl_epsilon;
      sl.delay_per_unit = oi.delay_per_unit();
      sl.dbif = params.dbif;
      sl.eta = params.eta;
      topo = shallow_light_topology(oi.root_xy(), oi.plane_sinks(), sl);
      break;
    }
    case SteinerMethod::kPD: {
      PrimDijkstraParams pd;
      pd.gamma = params.pd_gamma;
      pd.delay_per_unit = oi.delay_per_unit();
      pd.dbif = params.dbif;
      pd.eta = params.eta;
      topo = prim_dijkstra_topology(oi.root_xy(), oi.plane_sinks(), pd);
      break;
    }
    case SteinerMethod::kCD:
      break;  // handled above
  }
  EmbedResult r = embed_topology(topo, oi.instance(), controls);
  out.eval = r.eval;
  out.grid_edges = oi.window().to_grid_edges(r.tree.all_edges());
  return out;
}

OracleOutcome route_net(const RoutingGrid& grid, const CongestionCosts& costs,
                        const Net& net, std::span<const double> sink_weights,
                        SteinerMethod method, const OracleParams& params) {
  OracleInstance oi(grid, costs, net, sink_weights, params);
  return run_method(oi, method, params, nullptr, nullptr);
}

}  // namespace cdst
