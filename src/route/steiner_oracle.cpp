#include "route/steiner_oracle.h"

#include <algorithm>

#include "topology/prim_dijkstra.h"
#include "topology/rsmt.h"
#include "topology/shallow_light.h"

namespace cdst {
namespace {

Rect net_window_box(const Net& net, const OracleParams& p) {
  Rect box;
  box.expand(net.source.xy());
  for (const SinkPin& s : net.sinks) box.expand(s.pos.xy());
  const auto margin = static_cast<std::int32_t>(
      p.window_margin +
      p.window_margin_frac * static_cast<double>(box.half_perimeter()));
  return box.inflated(margin);
}

}  // namespace

OracleInstance::OracleInstance(const RoutingGrid& grid,
                               const CongestionCosts& costs, const Net& net,
                               std::span<const double> sink_weights,
                               const OracleParams& params)
    : window_(grid, costs, net_window_box(net, params)),
      future_cost_(window_) {
  CDST_CHECK(sink_weights.size() == net.sinks.size());
  instance_.graph = &window_.graph();
  instance_.cost = &window_.edge_costs();
  instance_.delay = &window_.edge_delays();
  instance_.dbif = params.dbif;
  instance_.eta = params.eta;
  instance_.root = window_.from_grid_vertex(grid.vertex_at(net.source));
  CDST_CHECK(instance_.root != kInvalidVertex);
  root_xy_ = net.source.xy();
  for (std::size_t s = 0; s < net.sinks.size(); ++s) {
    const VertexId wv =
        window_.from_grid_vertex(grid.vertex_at(net.sinks[s].pos));
    CDST_CHECK(wv != kInvalidVertex);
    instance_.sinks.push_back(Terminal{wv, sink_weights[s]});
    plane_sinks_.push_back(PlaneTerminal{net.sinks[s].pos.xy(),
                                         sink_weights[s], net.sinks[s].rat});
  }
}

double OracleInstance::delay_per_unit() const {
  return window_.grid().min_unit_delay();
}

OracleOutcome run_method(const OracleInstance& oi, SteinerMethod method,
                         const OracleParams& params) {
  OracleOutcome out;
  if (method == SteinerMethod::kCD) {
    SolverOptions opts = params.cd;
    opts.seed = params.seed;
    opts.future_cost = &oi.future_cost();
    SolveResult r = solve_cost_distance(oi.instance(), opts);
    out.eval = r.eval;
    out.grid_edges = oi.window().to_grid_edges(r.tree.all_edges());
    return out;
  }

  PlaneTopology topo;
  switch (method) {
    case SteinerMethod::kL1:
      topo = rsmt_topology(oi.root_xy(), oi.plane_sinks());
      break;
    case SteinerMethod::kSL: {
      ShallowLightParams sl;
      sl.epsilon = params.sl_epsilon;
      sl.delay_per_unit = oi.delay_per_unit();
      sl.dbif = params.dbif;
      sl.eta = params.eta;
      topo = shallow_light_topology(oi.root_xy(), oi.plane_sinks(), sl);
      break;
    }
    case SteinerMethod::kPD: {
      PrimDijkstraParams pd;
      pd.gamma = params.pd_gamma;
      pd.delay_per_unit = oi.delay_per_unit();
      pd.dbif = params.dbif;
      pd.eta = params.eta;
      topo = prim_dijkstra_topology(oi.root_xy(), oi.plane_sinks(), pd);
      break;
    }
    case SteinerMethod::kCD:
      break;  // handled above
  }
  EmbedResult r = embed_topology(topo, oi.instance());
  out.eval = r.eval;
  out.grid_edges = oi.window().to_grid_edges(r.tree.all_edges());
  return out;
}

OracleOutcome route_net(const RoutingGrid& grid, const CongestionCosts& costs,
                        const Net& net, std::span<const double> sink_weights,
                        SteinerMethod method, const OracleParams& params) {
  OracleInstance oi(grid, costs, net, sink_weights, params);
  return run_method(oi, method, params);
}

}  // namespace cdst
