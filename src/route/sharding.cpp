#include "route/sharding.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/rect.h"
#include "util/assert.h"

namespace cdst {

int ShardGrid::shard_of(Point2 p) const {
  const auto tile = [](std::int32_t v, std::int32_t extent,
                       std::int32_t tiles) {
    // v in [0, extent) maps linearly onto [0, tiles); clamp guards callers
    // passing points at (or beyond) the extent edge.
    const std::int64_t t = static_cast<std::int64_t>(v) * tiles / extent;
    return static_cast<std::int32_t>(
        std::clamp<std::int64_t>(t, 0, tiles - 1));
  };
  const std::int32_t tx = tile(p.x, nx, tiles_x);
  const std::int32_t ty = tile(p.y, ny, tiles_y);
  return ty * tiles_x + tx;
}

ShardGrid make_shard_grid(const RoutingGrid& grid, int shards) {
  CDST_CHECK(shards >= 1);
  ShardGrid sg;
  sg.nx = grid.nx();
  sg.ny = grid.ny();
  // Among the exact factorizations tiles_x * tiles_y == shards, pick the one
  // whose tile aspect ratio (in gcells) is closest to square; ties resolve
  // to the smaller tiles_x, so the choice is deterministic.
  double best_score = std::numeric_limits<double>::infinity();
  for (int d = 1; d <= shards; ++d) {
    if (shards % d != 0) continue;
    const int tx = d;
    const int ty = shards / d;
    const double tile_w = static_cast<double>(sg.nx) / tx;
    const double tile_h = static_cast<double>(sg.ny) / ty;
    const double score = std::abs(std::log(tile_w / tile_h));
    if (score < best_score) {
      best_score = score;
      sg.tiles_x = tx;
      sg.tiles_y = ty;
    }
  }
  return sg;
}

ShardTile shard_tile(const ShardGrid& tiles, int shard) {
  CDST_CHECK(shard >= 0 && shard < tiles.num_shards());
  ShardTile t;
  t.tx = shard % tiles.tiles_x;
  t.ty = shard / tiles.tiles_x;
  // Inverse of shard_of's linear map v * tiles / extent: tile k covers
  // v in [ceil(k * extent / tiles), ceil((k+1) * extent / tiles)).
  const auto lo = [](std::int32_t k, std::int32_t extent, std::int32_t n) {
    const std::int64_t num = static_cast<std::int64_t>(k) * extent;
    return static_cast<std::int32_t>((num + n - 1) / n);
  };
  t.x0 = lo(t.tx, tiles.nx, tiles.tiles_x);
  t.x1 = lo(t.tx + 1, tiles.nx, tiles.tiles_x);
  t.y0 = lo(t.ty, tiles.ny, tiles.tiles_y);
  t.y1 = lo(t.ty + 1, tiles.ny, tiles.tiles_y);
  return t;
}

ShardStealSchedule::ShardStealSchedule(const ShardMap& map,
                                       const std::vector<std::uint8_t>& done)
    : map_(&map), shards_(map.nets.size()) {
  CDST_CHECK(done.size() == map.nets.size());
  for (std::size_t sh = 0; sh < map.nets.size(); ++sh) {
    if (done[sh] != 0) {
      // Completed by a previous attempt: present no work and never report
      // completion again (remaining stays 0, cursor starts at the end).
      shards_[sh].cursor.store(
          static_cast<std::uint32_t>(map.nets[sh].size()),
          std::memory_order_relaxed);
    } else {
      shards_[sh].remaining.store(
          static_cast<std::uint32_t>(map.nets[sh].size()),
          std::memory_order_relaxed);
    }
  }
}

int ShardStealSchedule::claim_shard() {
  const std::uint32_t n = static_cast<std::uint32_t>(shards_.size());
  for (std::uint32_t c = next_claim_.fetch_add(1, std::memory_order_relaxed);
       c < n; c = next_claim_.fetch_add(1, std::memory_order_relaxed)) {
    // Shards a previous attempt finished are skipped, not owned: their
    // events were already emitted.
    if (shards_[c].remaining.load(std::memory_order_relaxed) != 0) {
      return static_cast<int>(c);
    }
  }
  return -1;
}

ShardStealSchedule::Span ShardStealSchedule::take_span(int shard,
                                                       bool stolen) {
  PerShard& ps = shards_[static_cast<std::size_t>(shard)];
  const auto size = static_cast<std::uint32_t>(
      map_->nets[static_cast<std::size_t>(shard)].size());
  const std::uint32_t begin =
      ps.cursor.fetch_add(kSpanNets, std::memory_order_relaxed);
  if (begin >= size) return {};
  Span s;
  s.shard = shard;
  s.begin = begin;
  s.end = std::min(begin + kSpanNets, size);
  s.stolen = stolen;
  return s;
}

ShardStealSchedule::Span ShardStealSchedule::steal_span() {
  const auto n = static_cast<std::uint32_t>(shards_.size());
  if (n == 0) return {};
  for (;;) {
    const std::uint32_t start =
        steal_hint_.load(std::memory_order_relaxed) % n;
    bool any_unclaimed = false;
    for (std::uint32_t k = 0; k < n; ++k) {
      const std::uint32_t sh = (start + k) % n;
      PerShard& ps = shards_[sh];
      if (ps.remaining.load(std::memory_order_relaxed) == 0) continue;
      const Span s = take_span(static_cast<int>(sh), /*stolen=*/true);
      if (s.valid()) {
        steal_hint_.store(sh, std::memory_order_relaxed);
        return s;
      }
      // Incomplete but fully claimed: someone else is finishing it.
      ps.waits.fetch_add(1, std::memory_order_relaxed);
    }
    // A shard may still have gone from claimed-ahead to claimable between
    // probes only if cursors ran backwards — they never do; if nothing was
    // unclaimed in a full sweep, the steal phase is over.
    for (std::uint32_t sh = 0; sh < n && !any_unclaimed; ++sh) {
      any_unclaimed =
          shards_[sh].remaining.load(std::memory_order_relaxed) != 0 &&
          shards_[sh].cursor.load(std::memory_order_relaxed) <
              map_->nets[sh].size();
    }
    if (!any_unclaimed) return {};
  }
}

bool ShardStealSchedule::complete(const Span& s) {
  PerShard& ps = shards_[static_cast<std::size_t>(s.shard)];
  const std::uint32_t count = s.end - s.begin;
  if (s.stolen) ps.stolen.fetch_add(count, std::memory_order_relaxed);
  // acq_rel: the lane that observes zero publishes the shard's outcomes to
  // whoever reads them after the completion event.
  return ps.remaining.fetch_sub(count, std::memory_order_acq_rel) == count;
}

ShardMap assign_nets_to_shards(const RoutingGrid& grid,
                               const Netlist& netlist, int shards) {
  ShardMap map;
  map.tiles = make_shard_grid(grid, shards);
  map.nets.assign(static_cast<std::size_t>(map.tiles.num_shards()), {});
  for (std::uint32_t i = 0; i < netlist.nets.size(); ++i) {
    const Net& net = netlist.nets[i];
    Rect box;
    box.expand(net.source.xy());
    for (const SinkPin& s : net.sinks) box.expand(s.pos.xy());
    const Point2 center{(box.xlo + box.xhi) / 2, (box.ylo + box.yhi) / 2};
    map.nets[static_cast<std::size_t>(map.tiles.shard_of(center))]
        .push_back(i);
  }
  return map;
}

}  // namespace cdst
