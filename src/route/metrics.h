/// \file metrics.h
/// Routing quality metrics of Tables IV/V: ACE congestion, wirelength and
/// via counts.
///
/// "Congestion is measured using the ACE [19]. ACE(x) is the average
/// congestion of the x% most critical global routing edges. We then use
/// ACE4 := 1/4 (ACE(.5) + ACE(1) + ACE(2) + ACE(5))."

#pragma once

#include <array>
#include <vector>

#include "grid/cost_model.h"

namespace cdst {

struct CongestionReport {
  std::array<double, 4> ace{};  ///< ACE(0.5), ACE(1), ACE(2), ACE(5) in %
  double ace4{0.0};             ///< mean of the four
  double max_utilization{0.0};  ///< worst edge utilization in %
  std::size_t overfull_edges{0};
};

/// ACE over *wire* resources (gcell boundaries; vias excluded, as in [19]).
CongestionReport compute_ace(const CongestionCosts& costs);

struct WireStats {
  double wirelength_gcells{0.0};  ///< wire edges weighted by 1 gcell each
  std::size_t num_vias{0};
};

/// Wirelength / via count of a set of routed trees (grid edge ids).
WireStats compute_wire_stats(const RoutingGrid& grid,
                             const std::vector<std::vector<EdgeId>>& routes);

}  // namespace cdst
