/// \file netlist_gen.h
/// Synthetic chip generator.
///
/// Substitution for the paper's industrial 5nm designs (Table III): we
/// reproduce the *shape* of those workloads — layer counts from Table III,
/// scaled net counts, a long-tailed net size distribution matching the
/// Table I/II instance buckets, clustered placement with a fraction of
/// long-range global nets, and per-sink RATs that make a realistic share of
/// nets timing-critical. Deterministic given the per-chip seed.

#pragma once

#include "grid/routing_grid.h"
#include "route/net.h"

namespace cdst {

struct ChipConfig {
  std::string name;
  std::size_t num_nets{1000};
  int num_layers{9};
  std::int32_t nx{64};
  std::int32_t ny{64};
  double capacity{14.0};     ///< tracks per gcell boundary (upper layers)
  double rat_tightness{1.5}; ///< mean RAT / ideal-delay ratio; lower = harder
  std::uint64_t seed{1};
};

/// The eight evaluation chips c1..c8 (Table III), net counts scaled by
/// `scale` (1.0 reproduces the paper's counts — far too slow for CI; the
/// bench harnesses default to ~1/100).
std::vector<ChipConfig> paper_chip_configs(double scale);

/// Routing grid for a chip: alternating-direction layer stack with wire
/// types, linear delays from the repeater-chain model.
RoutingGrid make_chip_grid(const ChipConfig& config);

/// Deterministic synthetic netlist for the chip.
Netlist generate_netlist(const ChipConfig& config, const RoutingGrid& grid);

}  // namespace cdst
