/// \file sharding.h
/// Deterministic spatial sharding of a netlist over the routing grid.
///
/// A sharded rip-up & re-route round (RouterOptions::shards >= 1) tiles the
/// gcell plane into a lattice of near-square tiles — one shard per tile —
/// and assigns every net to the tile containing its bounding-box center.
/// Shards are the router's unit of chunk-parallel work: nets of one shard
/// route sequentially on one worker against the round's frozen price
/// snapshot, so neighbouring nets (which share cache-resident grid regions)
/// stay on one core, while distant shards fan out across the ThreadPool.
///
/// The assignment is a pure function of (grid extent, netlist, shard
/// count): deterministic, a partition of the netlist (every net in exactly
/// one shard, ascending net order within a shard — asserted by the property
/// tests), and independent of thread count. Because sharded rounds price
/// every net against the same frozen snapshot and merge updates in net
/// order at the round barrier, routing *results* are additionally
/// independent of the shard count itself (see api/router.h).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "grid/routing_grid.h"
#include "route/net.h"

namespace cdst {

/// The tile lattice of one shard configuration.
struct ShardGrid {
  std::int32_t tiles_x{1};
  std::int32_t tiles_y{1};
  std::int32_t nx{1};  ///< gcell extent the lattice covers
  std::int32_t ny{1};

  int num_shards() const { return tiles_x * tiles_y; }

  /// Tile (= shard) index of a plane point, clamped into the lattice.
  int shard_of(Point2 p) const;
};

/// Chooses a tiles_x x tiles_y factorization of `shards` whose tile aspect
/// best matches the grid's, so tiles stay near-square (compact windows,
/// balanced occupancy). Deterministic; exact: tiles_x * tiles_y == shards.
ShardGrid make_shard_grid(const RoutingGrid& grid, int shards);

/// Geometry of one shard's tile: its lattice coordinates and the half-open
/// gcell range [x0, x1) x [y0, y1) it covers. The inverse of
/// ShardGrid::shard_of (up to its clamping), used by the router's shard
/// boundary events so observers can localize a shard on the die.
struct ShardTile {
  std::int32_t tx{0};  ///< tile column in [0, tiles_x)
  std::int32_t ty{0};  ///< tile row in [0, tiles_y)
  std::int32_t x0{0};
  std::int32_t y0{0};
  std::int32_t x1{0};
  std::int32_t y1{0};
};

ShardTile shard_tile(const ShardGrid& tiles, int shard);

/// Net -> shard partition of a netlist.
struct ShardMap {
  ShardGrid tiles;
  /// Net indices per shard, ascending within each shard. Every net of the
  /// netlist appears in exactly one shard (including sink-less nets, which
  /// the router later skips).
  std::vector<std::vector<std::uint32_t>> nets;

  std::size_t total_nets() const {
    std::size_t n = 0;
    for (const auto& s : nets) n += s.size();
    return n;
  }
};

/// Assigns every net to the shard of its bounding-box center (source and
/// sink pins). Pure function of its arguments; thread-free.
ShardMap assign_nets_to_shards(const RoutingGrid& grid,
                               const Netlist& netlist, int shards);

/// Dynamic (work-stealing) execution schedule over a frozen ShardMap.
///
/// The *partition* never changes — determinism lives in the fixed net ->
/// shard assignment plus the router's net-order merge barrier — only the
/// execution order of its pieces is dynamic (the divide-and-conquer
/// discipline of Emirov/Song/Sun, arXiv:2510.01511). Three levels:
///
///  1. Whole shards are claimed by an atomic claim index; the claiming lane
///     is the shard's *owner* and drains it in net spans.
///  2. Within a shard, spans of consecutive nets are claimed from a
///     per-shard atomic cursor, so several lanes can drain one hot shard.
///  3. A lane whose claim index is exhausted *steals* spans from unfinished
///     shards (highest remaining first would need a scan per steal; the
///     rotating probe below is contention-free and within a few percent).
///
/// Every net is claimed exactly once, so the outcome array the lanes fill is
/// identical to static execution no matter how spans interleave; the merge
/// barrier then commits in net order, keeping results bit-identical at any
/// lane count, with stealing on or off. Per-shard steal/wait counters feed
/// RouterShardEvent.
///
/// The schedule is single-round, single-attempt state: construct fresh per
/// fan-out. Thread-safe; no lock anywhere.
class ShardStealSchedule {
 public:
  /// Nets per claimed span: small enough to rebalance a hot shard, large
  /// enough that the cursor's cache line does not thrash.
  static constexpr std::uint32_t kSpanNets = 4;

  /// A claimed span: nets[begin, end) of `shard` (indices into
  /// ShardMap::nets[shard]). `stolen` marks a non-owner claim.
  struct Span {
    int shard{-1};
    std::uint32_t begin{0};
    std::uint32_t end{0};
    bool stolen{false};
    bool valid() const { return shard >= 0; }
  };

  /// `done[sh] != 0` marks shards a previous attempt already completed;
  /// they are never claimed, stolen from, or re-counted.
  ShardStealSchedule(const ShardMap& map, const std::vector<std::uint8_t>& done);

  /// Claims ownership of the next pending shard; -1 once every shard has an
  /// owner (switch to steal_span then).
  int claim_shard();

  /// Claims the next span of a shard's nets; invalid once the cursor is
  /// drained (other lanes may still be routing claimed spans).
  Span take_span(int shard, bool stolen);

  /// Probes unfinished shards (rotating start) for a span to steal. Invalid
  /// only when no unclaimed net remains anywhere. Probes that find a shard
  /// drained-but-incomplete (its nets all claimed, some still in flight on
  /// other lanes) count as that shard's steal waits.
  Span steal_span();

  /// Records a routed span; true exactly once per shard, when this span
  /// completes it — the caller owns the shard-completion event.
  bool complete(const Span& s);

  std::size_t stolen_nets(int shard) const {
    return shards_[static_cast<std::size_t>(shard)].stolen.load(
        std::memory_order_relaxed);
  }
  std::size_t steal_waits(int shard) const {
    return shards_[static_cast<std::size_t>(shard)].waits.load(
        std::memory_order_relaxed);
  }

 private:
  struct PerShard {
    /// Next unclaimed net index within the shard; lanes fetch_add spans off
    /// it. Cache-line aligned: the hot shard's cursor is the one contended
    /// word of the whole schedule.
    alignas(64) std::atomic<std::uint32_t> cursor{0};
    std::atomic<std::uint32_t> remaining{0};  ///< routed-net countdown
    std::atomic<std::size_t> stolen{0};       ///< nets routed by non-owners
    std::atomic<std::size_t> waits{0};        ///< drained-shard steal probes
  };

  const ShardMap* map_;
  std::vector<PerShard> shards_;
  std::atomic<std::uint32_t> next_claim_{0};
  std::atomic<std::uint32_t> steal_hint_{0};  ///< rotating probe start
};

/// The oracle seed for one net in one round: a pure function of
/// (session seed, net id, round index), so any executor — the in-process
/// round loop or an out-of-process shard worker (dist/) — derives the same
/// per-net randomness and routing stays bit-identical across placements.
inline std::uint64_t net_round_seed(std::uint64_t options_seed,
                                    std::uint32_t net_id, int round) {
  return options_seed * 0x9e3779b9ull + net_id * 1000003ull +
         static_cast<std::uint64_t>(round);
}

}  // namespace cdst
