/// \file sharding.h
/// Deterministic spatial sharding of a netlist over the routing grid.
///
/// A sharded rip-up & re-route round (RouterOptions::shards >= 1) tiles the
/// gcell plane into a lattice of near-square tiles — one shard per tile —
/// and assigns every net to the tile containing its bounding-box center.
/// Shards are the router's unit of chunk-parallel work: nets of one shard
/// route sequentially on one worker against the round's frozen price
/// snapshot, so neighbouring nets (which share cache-resident grid regions)
/// stay on one core, while distant shards fan out across the ThreadPool.
///
/// The assignment is a pure function of (grid extent, netlist, shard
/// count): deterministic, a partition of the netlist (every net in exactly
/// one shard, ascending net order within a shard — asserted by the property
/// tests), and independent of thread count. Because sharded rounds price
/// every net against the same frozen snapshot and merge updates in net
/// order at the round barrier, routing *results* are additionally
/// independent of the shard count itself (see api/router.h).

#pragma once

#include <cstdint>
#include <vector>

#include "grid/routing_grid.h"
#include "route/net.h"

namespace cdst {

/// The tile lattice of one shard configuration.
struct ShardGrid {
  std::int32_t tiles_x{1};
  std::int32_t tiles_y{1};
  std::int32_t nx{1};  ///< gcell extent the lattice covers
  std::int32_t ny{1};

  int num_shards() const { return tiles_x * tiles_y; }

  /// Tile (= shard) index of a plane point, clamped into the lattice.
  int shard_of(Point2 p) const;
};

/// Chooses a tiles_x x tiles_y factorization of `shards` whose tile aspect
/// best matches the grid's, so tiles stay near-square (compact windows,
/// balanced occupancy). Deterministic; exact: tiles_x * tiles_y == shards.
ShardGrid make_shard_grid(const RoutingGrid& grid, int shards);

/// Geometry of one shard's tile: its lattice coordinates and the half-open
/// gcell range [x0, x1) x [y0, y1) it covers. The inverse of
/// ShardGrid::shard_of (up to its clamping), used by the router's shard
/// boundary events so observers can localize a shard on the die.
struct ShardTile {
  std::int32_t tx{0};  ///< tile column in [0, tiles_x)
  std::int32_t ty{0};  ///< tile row in [0, tiles_y)
  std::int32_t x0{0};
  std::int32_t y0{0};
  std::int32_t x1{0};
  std::int32_t y1{0};
};

ShardTile shard_tile(const ShardGrid& tiles, int shard);

/// Net -> shard partition of a netlist.
struct ShardMap {
  ShardGrid tiles;
  /// Net indices per shard, ascending within each shard. Every net of the
  /// netlist appears in exactly one shard (including sink-less nets, which
  /// the router later skips).
  std::vector<std::vector<std::uint32_t>> nets;

  std::size_t total_nets() const {
    std::size_t n = 0;
    for (const auto& s : nets) n += s.size();
    return n;
  }
};

/// Assigns every net to the shard of its bounding-box center (source and
/// sink pins). Pure function of its arguments; thread-free.
ShardMap assign_nets_to_shards(const RoutingGrid& grid,
                               const Netlist& netlist, int shards);

/// The oracle seed for one net in one round: a pure function of
/// (session seed, net id, round index), so any executor — the in-process
/// round loop or an out-of-process shard worker (dist/) — derives the same
/// per-net randomness and routing stays bit-identical across placements.
inline std::uint64_t net_round_seed(std::uint64_t options_seed,
                                    std::uint32_t net_id, int round) {
  return options_seed * 0x9e3779b9ull + net_id * 1000003ull +
         static_cast<std::uint64_t>(round);
}

}  // namespace cdst
