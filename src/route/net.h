/// \file net.h
/// Netlist model for the timing-constrained global router.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"

namespace cdst {

/// Which Steiner oracle serves a net (Section IV-A naming).
enum class SteinerMethod : std::uint8_t {
  kL1,  ///< L1-shortest Steiner topology, embedded optimally
  kSL,  ///< shallow-light topology, embedded optimally
  kPD,  ///< Prim-Dijkstra topology, embedded optimally
  kCD,  ///< the new cost-distance algorithm (this paper)
};

inline const char* method_name(SteinerMethod m) {
  switch (m) {
    case SteinerMethod::kL1: return "L1";
    case SteinerMethod::kSL: return "SL";
    case SteinerMethod::kPD: return "PD";
    case SteinerMethod::kCD: return "CD";
  }
  return "??";
}

inline const std::vector<SteinerMethod>& all_methods() {
  static const std::vector<SteinerMethod> methods{
      SteinerMethod::kL1, SteinerMethod::kSL, SteinerMethod::kPD,
      SteinerMethod::kCD};
  return methods;
}

struct SinkPin {
  Point3 pos;
  double rat{0.0};  ///< required arrival time (ps) at this sink
};

struct Net {
  std::uint32_t id{0};
  Point3 source;
  std::vector<SinkPin> sinks;
};

struct Netlist {
  std::string name;
  std::vector<Net> nets;

  std::size_t num_sinks() const {
    std::size_t n = 0;
    for (const Net& net : nets) n += net.sinks.size();
    return n;
  }
};

}  // namespace cdst
