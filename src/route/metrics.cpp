#include "route/metrics.h"

#include <algorithm>

namespace cdst {

CongestionReport compute_ace(const CongestionCosts& costs) {
  const RoutingGrid& grid = costs.grid();
  // Collect utilizations of wire resources only. A resource is a wire
  // boundary iff some non-via edge references it; build the flag from edges.
  std::vector<bool> is_wire(costs.num_resources(), false);
  for (EdgeId e = 0; e < grid.graph().num_edges(); ++e) {
    const auto& info = grid.edge_info(e);
    if (!info.is_via) is_wire[info.resource] = true;
  }
  std::vector<double> utils;
  utils.reserve(costs.num_resources());
  CongestionReport rep;
  for (ResourceId r = 0; r < costs.num_resources(); ++r) {
    if (!is_wire[r]) continue;
    const double u = costs.utilization(r) * 100.0;
    utils.push_back(u);
    rep.max_utilization = std::max(rep.max_utilization, u);
    if (u > 100.0) ++rep.overfull_edges;
  }
  CDST_CHECK(!utils.empty());
  std::sort(utils.begin(), utils.end(), std::greater<>());

  const std::array<double, 4> percents{0.5, 1.0, 2.0, 5.0};
  for (std::size_t i = 0; i < percents.size(); ++i) {
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(percents[i] / 100.0 *
                                    static_cast<double>(utils.size())));
    double sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) sum += utils[j];
    rep.ace[i] = sum / static_cast<double>(k);
    rep.ace4 += rep.ace[i] / 4.0;
  }
  return rep;
}

WireStats compute_wire_stats(const RoutingGrid& grid,
                             const std::vector<std::vector<EdgeId>>& routes) {
  WireStats s;
  for (const auto& edges : routes) {
    for (const EdgeId e : edges) {
      if (grid.edge_info(e).is_via) {
        ++s.num_vias;
      } else {
        s.wirelength_gcells += 1.0;
      }
    }
  }
  return s;
}

}  // namespace cdst
