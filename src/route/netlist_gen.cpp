#include "route/netlist_gen.h"

#include <algorithm>
#include <cmath>

#include "timing/repeater_chain.h"
#include "util/rng.h"

namespace cdst {

std::vector<ChipConfig> paper_chip_configs(double scale) {
  CDST_CHECK(scale > 0.0);
  // (name, nets from Table III, layers from Table III)
  struct Row {
    const char* name;
    std::size_t nets;
    int layers;
  };
  static constexpr Row rows[] = {
      {"c1", 49734, 8},  {"c2", 66500, 9},  {"c3", 286619, 7},
      {"c4", 305094, 15}, {"c5", 420131, 9}, {"c6", 590060, 9},
      {"c7", 650127, 15}, {"c8", 941271, 15},
  };
  std::vector<ChipConfig> out;
  std::uint64_t seed = 1000;
  for (const Row& r : rows) {
    ChipConfig c;
    c.name = r.name;
    c.num_nets = std::max<std::size_t>(
        40, static_cast<std::size_t>(static_cast<double>(r.nets) * scale));
    c.num_layers = r.layers;
    // Die area grows with design size; pin density roughly constant.
    const double side = std::sqrt(static_cast<double>(c.num_nets)) * 2.3;
    c.nx = c.ny =
        std::max<std::int32_t>(24, static_cast<std::int32_t>(side));
    // Per-boundary capacity calibrated so the routed designs land in the
    // paper's congestion regime (ACE4 in the high 80s/low 90s); more layers
    // spread the same demand, so per-layer capacity shrinks.
    c.capacity = 30.0 / static_cast<double>(c.num_layers) + 0.6;
    c.rat_tightness = 1.35;
    c.seed = seed++;
    out.push_back(std::move(c));
  }
  return out;
}

RoutingGrid make_chip_grid(const ChipConfig& config) {
  std::vector<LayerSpec> layers =
      make_default_layer_stack(config.num_layers, config.capacity);
  apply_linear_delay_model(layers, BufferSpec{});
  ViaSpec via;
  via.width = 1.0;
  via.unit_cost = 1.0;
  via.delay = 1.5;  // ps per layer hop, on the order of one gcell on fast metal
  return RoutingGrid(config.nx, config.ny, std::move(layers), via);
}

namespace {

/// Net size (sink count) with the long-tailed mix of real designs; the
/// multi-sink shares mirror the Table I bucket proportions.
std::size_t sample_num_sinks(Rng& rng) {
  const double r = rng.uniform_double();
  if (r < 0.40) return 1;
  if (r < 0.62) return 2;
  if (r < 0.82) return static_cast<std::size_t>(rng.uniform_int(3, 5));
  if (r < 0.93) return static_cast<std::size_t>(rng.uniform_int(6, 14));
  if (r < 0.98) return static_cast<std::size_t>(rng.uniform_int(15, 29));
  return static_cast<std::size_t>(rng.uniform_int(30, 63));
}

}  // namespace

Netlist generate_netlist(const ChipConfig& config, const RoutingGrid& grid) {
  Rng rng(config.seed);
  Netlist nl;
  nl.name = config.name;
  nl.nets.reserve(config.num_nets);

  const std::int32_t nx = grid.nx();
  const std::int32_t ny = grid.ny();
  const double ideal_slope = grid.min_unit_delay();
  const double via_delay = grid.min_via_delay();

  for (std::uint32_t id = 0; id < config.num_nets; ++id) {
    Net net;
    net.id = id;
    const std::size_t k = sample_num_sinks(rng);

    // Cluster center and spread: mostly local nets, ~8% global ones.
    const bool global = rng.bernoulli(0.08);
    const double spread_frac = global ? rng.uniform_double(0.15, 0.45)
                                      : rng.uniform_double(0.01, 0.08);
    const auto spread = std::max<std::int32_t>(
        1, static_cast<std::int32_t>(spread_frac * static_cast<double>(nx)));
    const std::int32_t cx =
        static_cast<std::int32_t>(rng.uniform_int(0, nx - 1));
    const std::int32_t cy =
        static_cast<std::int32_t>(rng.uniform_int(0, ny - 1));

    auto sample_point = [&]() {
      const std::int32_t x = std::clamp<std::int32_t>(
          cx + static_cast<std::int32_t>(rng.uniform_int(-spread, spread)), 0,
          nx - 1);
      const std::int32_t y = std::clamp<std::int32_t>(
          cy + static_cast<std::int32_t>(rng.uniform_int(-spread, spread)), 0,
          ny - 1);
      return Point3{x, y, 0};  // pins on the bottom layer
    };

    net.source = sample_point();
    net.sinks.reserve(k);
    for (std::size_t s = 0; s < k; ++s) {
      SinkPin pin;
      pin.pos = sample_point();
      // Ideal source-sink delay on the fastest layer, plus the via stack to
      // get there; RAT is a per-net tightness multiple of it plus a floor
      // accounting for fixed stage delays.
      const double ideal =
          ideal_slope * static_cast<double>(l1_distance(net.source, pin.pos)) +
          2.0 * via_delay * static_cast<double>(grid.nz() - 1);
      const double tightness =
          config.rat_tightness * rng.uniform_double(0.75, 1.6);
      pin.rat = ideal * tightness + 6.0;
      net.sinks.push_back(pin);
    }
    nl.nets.push_back(std::move(net));
  }
  return nl;
}

}  // namespace cdst
