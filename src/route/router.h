/// \file router.h
/// Timing-constrained global router.
///
/// A simplified version of the resource-sharing / Lagrangean-relaxation
/// framework of [13] (Held et al., "Global Routing With Timing Constraints"):
/// edges are priced exponentially in their utilization, nets are routed by a
/// Steiner oracle against those prices, and per-sink delay weights — the
/// Lagrange multipliers of the timing constraints — are updated
/// multiplicatively from slacks between rounds. The cost-distance Steiner
/// tree problem "arises as the Lagrangean subproblem" (Section IV); this
/// router generates exactly those instances and is the harness behind
/// Tables IV and V.

#pragma once

#include "grid/cost_model.h"
#include "route/metrics.h"
#include "route/net.h"
#include "route/steiner_oracle.h"
#include "timing/slack.h"

namespace cdst {

namespace dist {
class ShardTransport;
}  // namespace dist

struct RouterOptions {
  SteinerMethod method{SteinerMethod::kCD};
  int iterations{6};  ///< rip-up & re-route rounds (>= 1)
  OracleParams oracle;
  CongestionParams congestion;
  /// Lagrangean weight update: slack magnitude (ps) that doubles a weight.
  double weight_scale{25.0};
  double weight_floor{5e-4};
  double weight_ceiling{64.0};
  /// Scale of the RAT-criticality seed for the initial multipliers
  /// (w0 = weight_init_scale * criticality^2).
  double weight_init_scale{3.0};
  std::uint64_t seed{1};
  bool verbose{false};
  /// Worker threads for the per-net oracle calls. Nets are processed in
  /// batches: each batch is ripped up, routed in parallel against a frozen
  /// price snapshot, then committed — results are deterministic and
  /// independent of the thread count (the paper's runs use 16 threads).
  /// Only honored by self-owned sessions: a session vended by an Engine
  /// (api/engine.h) runs on the engine's shared pool, which decides
  /// concurrency — Engine::make_router warns on a conflicting request and
  /// rewrites this field to the pool's actual lane count. Because every
  /// round commits at a deterministic barrier regardless of this value, a
  /// round is also the slicing unit of Router::run_async: a multi-tenant
  /// scheduler (serve/serve.h) interleaves one-round slices of many
  /// sessions on one pool without perturbing any session's results.
  int threads{1};
  /// Nets per rip-up/re-route batch (larger batches = more parallelism but
  /// prices within a batch do not see each other's usage). The batch
  /// structure applies independently of `threads`, which is what makes
  /// results thread-count invariant. Ignored by sharded rounds (below).
  int batch_size{48};
  /// Spatial sharding of the rip-up & re-route rounds. 0 (default) keeps the
  /// legacy batched round discipline above. With shards >= 1 each round
  /// (a) freezes the congestion prices once into a per-edge snapshot,
  /// (b) partitions the nets into `shards` grid tiles by bounding box
  /// (route/sharding.h), (c) routes shards chunk-parallel on the worker
  /// pool — every net priced against the frozen snapshot minus its own
  /// committed usage — and (d) merges all route/price updates at the round
  /// barrier in net order. Results are bit-identical at ANY thread and
  /// shard count (shards only schedule work); they differ from the legacy
  /// batched discipline, whose batches see earlier batches' usage
  /// mid-round. Snapshot pricing also replaces the per-window exp() pricing
  /// with a gather, so sharded rounds are faster even single-threaded.
  int shards{0};
  /// Where sharded rounds execute shard work. Null (default) runs every
  /// shard in-process on the session's worker pool. Non-null routes each
  /// shard through the transport (dist/transport.h) as serializable round
  /// messages — potentially to out-of-process workers — with results
  /// bit-identical to the in-process path at any worker count. Borrowed,
  /// not owned: the transport must outlive the session (or the set_options
  /// call that replaces it). Ignored when shards == 0.
  dist::ShardTransport* transport{nullptr};
  /// Work-stealing execution of in-process sharded rounds: shards keep
  /// their frozen owner-claim order, but idle lanes steal net spans from
  /// unfinished shards (route/sharding.h, ShardStealSchedule), so an
  /// imbalanced tile no longer idles every other core at the merge
  /// barrier. Purely an executor policy — results stay bit-identical with
  /// stealing on or off, at any thread/shard count. Ignored by transport
  /// dispatch (whole shards are the transport's work unit) and by retry
  /// attempts (which re-execute serially).
  bool shard_stealing{true};
};

/// Snapshot of a routing state: final (route_chip) or current
/// (Router::result()).

struct RouterResult {
  TimingSummary timing;
  CongestionReport congestion;
  WireStats wires;
  double walltime_s{0.0};
  std::size_t nets_routed{0};
  /// Final routed tree (grid edges) per net, for inspection/tests.
  std::vector<std::vector<EdgeId>> routes;
  /// Final per-sink delays, flattened in netlist order.
  std::vector<double> sink_delays;
  /// Final per-sink delay weights (the Lagrange multipliers).
  std::vector<double> sink_weights;
};

/// One-shot legacy entry: routes options.iterations rounds and discards all
/// session state (prices, multipliers, thread pool). Thin wrapper over the
/// session object; throws ContractViolation on invalid input where the
/// session API would return a structured Status.
CDST_DEPRECATED("use cdst::Router (api/cdst.h): construct once, run() "
                "resumable rounds, keep prices/weights for warm re-routes")
RouterResult route_chip(const RoutingGrid& grid, const Netlist& netlist,
                        const RouterOptions& options);

}  // namespace cdst
