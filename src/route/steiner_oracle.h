/// \file steiner_oracle.h
/// Per-net Steiner oracles: materializes one net's cost-distance instance on
/// a routing window and solves it with any of the four Section IV-A methods.
/// Shared by the global router (Tables IV/V) and the apples-to-apples
/// instance benchmarks (Tables I/II).

#pragma once

#include <memory>
#include <span>

#include "core/cost_distance.h"
#include "embed/embedder.h"
#include "grid/window.h"
#include "route/net.h"
#include "topology/topology.h"

namespace cdst {

struct OracleParams {
  double dbif{0.0};
  double eta{0.25};
  double sl_epsilon{0.25};
  double pd_gamma{0.5};
  /// Window inflation beyond the net bounding box, in gcells plus a fraction
  /// of the half-perimeter.
  std::int32_t window_margin{6};
  double window_margin_frac{0.15};
  std::uint64_t seed{1};
  SolverOptions cd;  ///< cost-distance solver knobs (future_cost set per net)
};

/// One net's Steiner problem, materialized on a routing window with current
/// congestion prices. Self-contained: owns the window and all vectors the
/// embedded CostDistanceInstance points into. Movable (batch APIs store
/// oracles in vectors): everything self-referential lives behind a single
/// owning pointer, so a move never relocates what instance()/future_cost()
/// point into. Not copyable.
class OracleInstance {
 public:
  /// `sink_weights` is a borrowed view (one weight per net sink); it is read
  /// only during construction, so routers can pass views into their flat
  /// per-sink arrays instead of materializing a per-net copy. `pricing`
  /// (optional, borrowed for construction only) prices the window from a
  /// frozen round snapshot instead of the live congestion state — the
  /// sharded router's path (see grid/window.h, route/sharding.h).
  OracleInstance(const RoutingGrid& grid, const CongestionCosts& costs,
                 const Net& net, std::span<const double> sink_weights,
                 const OracleParams& params,
                 const RoundPricing* pricing = nullptr);
  ~OracleInstance();

  OracleInstance(OracleInstance&&) noexcept;
  OracleInstance& operator=(OracleInstance&&) noexcept;
  OracleInstance(const OracleInstance&) = delete;
  OracleInstance& operator=(const OracleInstance&) = delete;

  const CostDistanceInstance& instance() const { return rep_->instance; }
  const RoutingWindow& window() const { return rep_->window; }
  const WindowFutureCost& future_cost() const { return rep_->future_cost; }
  const std::vector<PlaneTerminal>& plane_sinks() const {
    return rep_->plane_sinks;
  }
  Point2 root_xy() const { return rep_->root_xy; }
  /// Fastest linear delay per gcell, for plane delay estimates in SL/PD.
  double delay_per_unit() const;

 private:
  struct Rep {
    Rep(const RoutingGrid& grid, const CongestionCosts& costs, Rect box,
        const RoundPricing* pricing)
        : window(grid, costs, box, pricing), future_cost(window) {}
    RoutingWindow window;
    WindowFutureCost future_cost;
    CostDistanceInstance instance;
    std::vector<PlaneTerminal> plane_sinks;
    Point2 root_xy;
  };
  std::unique_ptr<Rep> rep_;
};

struct OracleOutcome {
  TreeEvaluation eval;
  std::vector<EdgeId> grid_edges;  ///< tree edges in full-grid ids
};

/// Solves the materialized instance with the chosen method. `scratch`
/// recycles cost-distance solver state across calls and `controls` wires in
/// cancellation; both may be null (one-shot behavior). Every method honors
/// `controls` — CD polls inside the solve, the embedded L1/SL/PD baselines
/// poll before topology construction and at each embedding-DP node. Results
/// do not depend on the scratch's history.
OracleOutcome run_method(const OracleInstance& oi, SteinerMethod method,
                         const OracleParams& params,
                         SolverScratch* scratch = nullptr,
                         const SolveControls* controls = nullptr);

/// One-shot legacy wrapper: materialize + solve with throwaway state.
CDST_DEPRECATED("materialize an OracleInstance and call run_method (or use "
                "cdst::Router, api/cdst.h) to recycle solver state")
OracleOutcome route_net(const RoutingGrid& grid, const CongestionCosts& costs,
                        const Net& net, std::span<const double> sink_weights,
                        SteinerMethod method, const OracleParams& params);

}  // namespace cdst
