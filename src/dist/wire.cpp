#include "dist/wire.h"

#include <string>

#include "util/wire.h"

namespace cdst::dist {
namespace {

using wire::Reader;

// Small field codecs shared by the message bodies. Every read goes through
// the bounds-checked Reader; invalid enum/bool encodings fail the reader so
// the caller's single ok/consumption check rejects the whole message.

void put_bool(std::vector<std::uint8_t>& out, bool v) {
  wire::put_u8(out, v ? 1 : 0);
}

bool read_bool(Reader& r) {
  const std::uint8_t v = r.u8();
  if (v > 1) r.ok = false;
  return v != 0;
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  wire::put_u32(out, static_cast<std::uint32_t>(v));
}

std::int32_t read_i32(Reader& r) {
  return static_cast<std::int32_t>(r.u32());
}

void put_point3(std::vector<std::uint8_t>& out, const Point3& p) {
  put_i32(out, p.x);
  put_i32(out, p.y);
  put_i32(out, p.z);
}

Point3 read_point3(Reader& r) {
  Point3 p;
  p.x = read_i32(r);
  p.y = read_i32(r);
  p.z = read_i32(r);
  return p;
}

/// Maps the mandatory header check onto the message's kInvalidArgument
/// vocabulary (satisfies lint rule `wire-format`: callers run this before
/// any field read).
Status expect_header_status(Reader& r, std::uint32_t magic,
                            const char* name) {
  switch (wire::expect_header(r, magic, kDistWireVersion)) {
    case wire::HeaderCheck::kBadMagic:
      return Status::InvalidArgument(std::string(name) + ": bad magic");
    case wire::HeaderCheck::kBadVersion:
      return Status::InvalidArgument(std::string(name) +
                                     ": unsupported version");
    case wire::HeaderCheck::kOk:
      break;
  }
  return Status::Ok();
}

/// The final gate of every parse: all reads succeeded and the payload is
/// exactly consumed (trailing bytes are as invalid as missing ones).
bool consumed(const Reader& r) {
  return r.ok && r.pos == r.bytes.size();
}

Status truncated(const char* name) {
  return Status::InvalidArgument(std::string(name) +
                                 ": truncated, corrupt or trailing bytes");
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkerSetupMsg

std::vector<std::uint8_t> WorkerSetupMsg::to_bytes() const {
  std::vector<std::uint8_t> out;
  wire::put_header(out, kWorkerSetupMagic, kDistWireVersion);
  put_i32(out, nx);
  put_i32(out, ny);
  wire::put_u64(out, layers.size());
  for (const LayerSpec& layer : layers) {
    wire::put_str(out, layer.name);
    wire::put_u8(out, static_cast<std::uint8_t>(layer.dir));
    wire::put_f64(out, layer.capacity);
    wire::put_u64(out, layer.wire_types.size());
    for (const WireType& wt : layer.wire_types) {
      wire::put_str(out, wt.name);
      wire::put_f64(out, wt.width);
      wire::put_f64(out, wt.unit_cost);
      wire::put_f64(out, wt.delay_per_gcell);
    }
    wire::put_f64(out, layer.r_per_gcell);
    wire::put_f64(out, layer.c_per_gcell);
  }
  wire::put_f64(out, via.width);
  wire::put_f64(out, via.unit_cost);
  wire::put_f64(out, via.delay);
  wire::put_str(out, netlist.name);
  wire::put_u64(out, netlist.nets.size());
  for (const Net& net : netlist.nets) {
    wire::put_u32(out, net.id);
    put_point3(out, net.source);
    wire::put_u64(out, net.sinks.size());
    for (const SinkPin& sink : net.sinks) {
      put_point3(out, sink.pos);
      wire::put_f64(out, sink.rat);
    }
  }
  wire::put_u8(out, static_cast<std::uint8_t>(method));
  wire::put_f64(out, oracle.dbif);
  wire::put_f64(out, oracle.eta);
  wire::put_f64(out, oracle.sl_epsilon);
  wire::put_f64(out, oracle.pd_gamma);
  put_i32(out, oracle.window_margin);
  wire::put_f64(out, oracle.window_margin_frac);
  wire::put_u64(out, oracle.seed);
  // SolverOptions knobs, pointer members excluded (see header comment).
  put_bool(out, oracle.cd.discount_components);
  put_bool(out, oracle.cd.use_astar);
  put_bool(out, oracle.cd.better_steiner_placement);
  put_bool(out, oracle.cd.encourage_root);
  put_bool(out, oracle.cd.validate_result);
  put_bool(out, oracle.cd.pool_search_state);
  wire::put_u64(out, oracle.cd.dense_state_budget_bytes);
  put_i32(out, oracle.cd.budget_backoff_attempts);
  put_bool(out, oracle.cd.strict_shared_budget);
  wire::put_u8(out, static_cast<std::uint8_t>(oracle.cd.queue));
  wire::put_u64(out, oracle.cd.seed);
  wire::put_f64(out, congestion.price_at_full);
  wire::put_f64(out, congestion.smoothing);
  wire::put_u64(out, options_seed);
  return out;
}

StatusOr<WorkerSetupMsg> WorkerSetupMsg::from_bytes(
    std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  if (Status st = expect_header_status(r, kWorkerSetupMagic, "worker setup");
      !st.ok()) {
    return st;
  }
  WorkerSetupMsg msg;
  msg.nx = read_i32(r);
  msg.ny = read_i32(r);
  const std::uint64_t n_layers = r.u64();
  if (!r.fits(n_layers, 1)) return truncated("worker setup");
  msg.layers.reserve(n_layers);
  for (std::uint64_t i = 0; i < n_layers && r.ok; ++i) {
    LayerSpec layer;
    wire::read_str(r, layer.name);
    const std::uint8_t dir = r.u8();
    if (dir > 1) r.ok = false;
    layer.dir = static_cast<LayerDir>(dir);
    layer.capacity = r.f64();
    const std::uint64_t n_types = r.u64();
    if (!r.fits(n_types, 1)) break;
    layer.wire_types.reserve(n_types);
    for (std::uint64_t t = 0; t < n_types && r.ok; ++t) {
      WireType wt;
      wire::read_str(r, wt.name);
      wt.width = r.f64();
      wt.unit_cost = r.f64();
      wt.delay_per_gcell = r.f64();
      layer.wire_types.push_back(std::move(wt));
    }
    layer.r_per_gcell = r.f64();
    layer.c_per_gcell = r.f64();
    msg.layers.push_back(std::move(layer));
  }
  msg.via.width = r.f64();
  msg.via.unit_cost = r.f64();
  msg.via.delay = r.f64();
  wire::read_str(r, msg.netlist.name);
  const std::uint64_t n_nets = r.u64();
  if (!r.fits(n_nets, 1)) return truncated("worker setup");
  msg.netlist.nets.reserve(n_nets);
  for (std::uint64_t i = 0; i < n_nets && r.ok; ++i) {
    Net net;
    net.id = r.u32();
    net.source = read_point3(r);
    const std::uint64_t n_sinks = r.u64();
    if (!r.fits(n_sinks, 1)) break;
    net.sinks.reserve(n_sinks);
    for (std::uint64_t s = 0; s < n_sinks && r.ok; ++s) {
      SinkPin sink;
      sink.pos = read_point3(r);
      sink.rat = r.f64();
      net.sinks.push_back(sink);
    }
    msg.netlist.nets.push_back(std::move(net));
  }
  const std::uint8_t method = r.u8();
  if (method > static_cast<std::uint8_t>(SteinerMethod::kCD)) r.ok = false;
  msg.method = static_cast<SteinerMethod>(method);
  msg.oracle.dbif = r.f64();
  msg.oracle.eta = r.f64();
  msg.oracle.sl_epsilon = r.f64();
  msg.oracle.pd_gamma = r.f64();
  msg.oracle.window_margin = read_i32(r);
  msg.oracle.window_margin_frac = r.f64();
  msg.oracle.seed = r.u64();
  msg.oracle.cd.discount_components = read_bool(r);
  msg.oracle.cd.use_astar = read_bool(r);
  msg.oracle.cd.better_steiner_placement = read_bool(r);
  msg.oracle.cd.encourage_root = read_bool(r);
  msg.oracle.cd.validate_result = read_bool(r);
  msg.oracle.cd.pool_search_state = read_bool(r);
  msg.oracle.cd.dense_state_budget_bytes = r.u64();
  msg.oracle.cd.budget_backoff_attempts = read_i32(r);
  msg.oracle.cd.strict_shared_budget = read_bool(r);
  const std::uint8_t queue = r.u8();
  if (queue > static_cast<std::uint8_t>(QueueKind::kSingleLazy)) r.ok = false;
  msg.oracle.cd.queue = static_cast<QueueKind>(queue);
  msg.oracle.cd.seed = r.u64();
  msg.congestion.price_at_full = r.f64();
  msg.congestion.smoothing = r.f64();
  msg.options_seed = r.u64();
  if (!consumed(r)) return truncated("worker setup");
  if (msg.nx < 1 || msg.ny < 1 || msg.layers.empty()) {
    return Status::InvalidArgument("worker setup: degenerate grid geometry");
  }
  return msg;
}

// ---------------------------------------------------------------------------
// PriceSnapshotMsg

std::vector<std::uint8_t> PriceSnapshotMsg::to_bytes() const {
  std::vector<std::uint8_t> out;
  out.reserve(24 + edge_costs.size() * 8);
  wire::put_header(out, kPriceSnapshotMagic, kDistWireVersion);
  put_i32(out, round);
  wire::put_vec(out, edge_costs);
  return out;
}

StatusOr<PriceSnapshotMsg> PriceSnapshotMsg::from_bytes(
    std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  if (Status st =
          expect_header_status(r, kPriceSnapshotMagic, "price snapshot");
      !st.ok()) {
    return st;
  }
  PriceSnapshotMsg msg;
  msg.round = read_i32(r);
  wire::read_vec(r, msg.edge_costs);
  if (!consumed(r)) return truncated("price snapshot");
  return msg;
}

// ---------------------------------------------------------------------------
// ShardWorkMsg

std::vector<std::uint8_t> ShardWorkMsg::to_bytes() const {
  std::vector<std::uint8_t> out;
  wire::put_header(out, kShardWorkMagic, kDistWireVersion);
  put_i32(out, round);
  put_i32(out, shard);
  put_i32(out, shards);
  put_i32(out, tile.tx);
  put_i32(out, tile.ty);
  put_i32(out, tile.x0);
  put_i32(out, tile.y0);
  put_i32(out, tile.x1);
  put_i32(out, tile.y1);
  wire::put_u64(out, nets.size());
  for (const NetWork& nw : nets) {
    wire::put_u32(out, nw.net);
    wire::put_vec(out, nw.sink_weights);
    wire::put_vec(out, nw.route_edges);
    wire::put_vec(out, nw.resources);
    wire::put_vec(out, nw.usage);
  }
  return out;
}

StatusOr<ShardWorkMsg> ShardWorkMsg::from_bytes(
    std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  if (Status st = expect_header_status(r, kShardWorkMagic, "shard work");
      !st.ok()) {
    return st;
  }
  ShardWorkMsg msg;
  msg.round = read_i32(r);
  msg.shard = read_i32(r);
  msg.shards = read_i32(r);
  msg.tile.tx = read_i32(r);
  msg.tile.ty = read_i32(r);
  msg.tile.x0 = read_i32(r);
  msg.tile.y0 = read_i32(r);
  msg.tile.x1 = read_i32(r);
  msg.tile.y1 = read_i32(r);
  const std::uint64_t n_nets = r.u64();
  if (!r.fits(n_nets, 1)) return truncated("shard work");
  msg.nets.reserve(n_nets);
  for (std::uint64_t i = 0; i < n_nets && r.ok; ++i) {
    NetWork nw;
    nw.net = r.u32();
    wire::read_vec(r, nw.sink_weights);
    wire::read_vec(r, nw.route_edges);
    wire::read_vec(r, nw.resources);
    wire::read_vec(r, nw.usage);
    if (nw.resources.size() != nw.usage.size()) r.ok = false;
    msg.nets.push_back(std::move(nw));
  }
  if (!consumed(r)) return truncated("shard work");
  if (msg.shards < 1 || msg.shard < 0 || msg.shard >= msg.shards) {
    return Status::InvalidArgument("shard work: shard index out of range");
  }
  return msg;
}

// ---------------------------------------------------------------------------
// ShardResultMsg

std::vector<std::uint8_t> ShardResultMsg::to_bytes() const {
  std::vector<std::uint8_t> out;
  wire::put_header(out, kShardResultMagic, kDistWireVersion);
  put_i32(out, round);
  put_i32(out, shard);
  wire::put_u64(out, nets.size());
  for (const NetResult& nr : nets) {
    wire::put_u32(out, nr.net);
    wire::put_vec(out, nr.route_edges);
    wire::put_vec(out, nr.sink_delays);
  }
  wire::put_u64(out, route_edges_total);
  wire::put_f64(out, snapshot_cost_total);
  return out;
}

StatusOr<ShardResultMsg> ShardResultMsg::from_bytes(
    std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  if (Status st = expect_header_status(r, kShardResultMagic, "shard result");
      !st.ok()) {
    return st;
  }
  ShardResultMsg msg;
  msg.round = read_i32(r);
  msg.shard = read_i32(r);
  const std::uint64_t n_nets = r.u64();
  if (!r.fits(n_nets, 1)) return truncated("shard result");
  msg.nets.reserve(n_nets);
  for (std::uint64_t i = 0; i < n_nets && r.ok; ++i) {
    NetResult nr;
    nr.net = r.u32();
    wire::read_vec(r, nr.route_edges);
    wire::read_vec(r, nr.sink_delays);
    msg.nets.push_back(std::move(nr));
  }
  msg.route_edges_total = r.u64();
  msg.snapshot_cost_total = r.f64();
  if (!consumed(r)) return truncated("shard result");
  return msg;
}

// ---------------------------------------------------------------------------
// WorkerErrorMsg

std::vector<std::uint8_t> WorkerErrorMsg::to_bytes() const {
  std::vector<std::uint8_t> out;
  wire::put_header(out, kWorkerErrorMagic, kDistWireVersion);
  wire::put_u8(out, static_cast<std::uint8_t>(code));
  wire::put_str(out, message);
  return out;
}

StatusOr<WorkerErrorMsg> WorkerErrorMsg::from_bytes(
    std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  if (Status st = expect_header_status(r, kWorkerErrorMagic, "worker error");
      !st.ok()) {
    return st;
  }
  WorkerErrorMsg msg;
  const std::uint8_t code = r.u8();
  if (code > static_cast<std::uint8_t>(StatusCode::kUnavailable)) {
    r.ok = false;
  }
  msg.code = static_cast<StatusCode>(code);
  wire::read_str(r, msg.message);
  if (!consumed(r)) return truncated("worker error");
  if (msg.code == StatusCode::kOk) {
    return Status::InvalidArgument("worker error: OK is not an error");
  }
  return msg;
}

Status WorkerErrorMsg::to_status() const {
  switch (code) {
    case StatusCode::kOk:
      break;  // unreachable via from_bytes; fall through to kInternal
    case StatusCode::kCancelled:
      return Status::Cancelled(message);
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kInternal:
      return Status::Internal(message);
    case StatusCode::kDeadlineExceeded:
      // A worker's deadline/budget verdicts re-enter this process as typed
      // transport failures, not as this process's own deadline/budget
      // verdicts, so the retry machinery treats them like any remote error
      // (and rule `status-origin` keeps the canonical origins unique).
      return Status::Internal("worker reported DEADLINE_EXCEEDED: " +
                              message);
    case StatusCode::kResourceExhausted:
      return Status::Internal("worker reported RESOURCE_EXHAUSTED: " +
                              message);
    case StatusCode::kUnavailable:
      return Status::Unavailable(message);
  }
  return Status::Internal(message);
}

WorkerErrorMsg WorkerErrorMsg::from_status(const Status& status) {
  WorkerErrorMsg msg;
  msg.code = status.ok() ? StatusCode::kInternal : status.code();
  msg.message = status.message();
  return msg;
}

}  // namespace cdst::dist
