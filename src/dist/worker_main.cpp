/// \file dist/worker_main.cpp
/// The cdst_shard_worker binary: one pooled worker of SubprocessTransport.
///
/// Speaks length-prefixed frames (dist/framing.h) on stdin/stdout and
/// branches on each frame's message magic:
///
///   WorkerSetupMsg    -> (re)materialize the ShardContext. One-way: a bad
///                        setup is remembered and reported as a typed
///                        WorkerErrorMsg on the next work frame, keeping
///                        the protocol strictly request/reply.
///   PriceSnapshotMsg  -> store the round's frozen price plane. One-way.
///   ShardWorkMsg      -> execute the shard (dist/shard_executor.h) and
///                        reply with a ShardResultMsg or a WorkerErrorMsg.
///
/// Clean EOF on stdin is the shutdown signal (the transport closed the
/// pipe); any protocol corruption exits nonzero, which the parent observes
/// as EOF on the reply pipe and maps to kUnavailable. Logging goes to
/// stderr — stdout is the frame stream and must stay byte-clean.

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "api/status.h"
#include "dist/framing.h"
#include "dist/shard_executor.h"
#include "dist/wire.h"
#include "util/logging.h"
#include "util/wire.h"

namespace cdst::dist {
namespace {

int worker_loop() {
  std::unique_ptr<ShardContext> ctx;
  Status state = Status::FailedPrecondition("worker: no setup received");
  std::vector<double> snapshot;
  std::int32_t snapshot_round = -1;
  bool have_snapshot = false;

  for (;;) {
    StatusOr<std::vector<std::uint8_t>> frame = read_frame(STDIN_FILENO);
    if (!frame.ok()) {
      // EOF or a vanished parent: a normal end of service either way.
      return 0;
    }
    const std::span<const std::uint8_t> bytes(*frame);
    const std::uint32_t magic = wire::peek_u32(bytes);

    if (magic == kWorkerSetupMagic) {
      StatusOr<WorkerSetupMsg> setup = WorkerSetupMsg::from_bytes(bytes);
      if (!setup.ok()) {
        ctx.reset();
        state = setup.status();
        continue;
      }
      StatusOr<std::unique_ptr<ShardContext>> built =
          make_shard_context(*setup);
      if (!built.ok()) {
        ctx.reset();
        state = built.status();
        continue;
      }
      ctx = std::move(*built);
      state = Status::Ok();
      have_snapshot = false;  // a new world invalidates any old snapshot
      continue;
    }

    if (magic == kPriceSnapshotMagic) {
      StatusOr<PriceSnapshotMsg> msg = PriceSnapshotMsg::from_bytes(bytes);
      if (!msg.ok()) {
        // Dropping the snapshot is enough: the next work frame reports the
        // missing round via FailedPrecondition below.
        have_snapshot = false;
        continue;
      }
      snapshot = std::move(msg->edge_costs);
      snapshot_round = msg->round;
      have_snapshot = true;
      continue;
    }

    if (magic == kShardWorkMagic) {
      Status failure = state;
      StatusOr<ShardResultMsg> result = Status::Internal("unset");
      if (failure.ok() && !have_snapshot) {
        failure = Status::FailedPrecondition(
            "worker: no price snapshot for this round");
      }
      if (failure.ok()) {
        StatusOr<ShardWorkMsg> work = ShardWorkMsg::from_bytes(bytes);
        if (!work.ok()) {
          failure = work.status();
        } else if (work->round != snapshot_round) {
          failure = Status::FailedPrecondition(
              "worker: work round does not match the snapshot round");
        } else {
          result = execute_shard(*ctx, snapshot, *work);
          if (!result.ok()) failure = result.status();
        }
      }
      const std::vector<std::uint8_t> reply =
          failure.ok() ? result->to_bytes()
                       : WorkerErrorMsg::from_status(failure).to_bytes();
      if (Status st = write_frame(STDOUT_FILENO, reply); !st.ok()) {
        CDST_LOG(kWarn) << "shard worker: reply write failed: "
                           << st.to_string();
        return 1;
      }
      continue;
    }

    CDST_LOG(kWarn) << "shard worker: unknown frame magic, exiting";
    return 1;
  }
}

}  // namespace
}  // namespace cdst::dist

int main() { return cdst::dist::worker_loop(); }
