#include "dist/transport.h"

#include <utility>

#include "dist/shard_executor.h"
#include "util/fault_injection.h"

namespace cdst::dist {

struct InProcessTransport::Impl {
  std::unique_ptr<ShardContext> ctx;
  std::vector<double> snapshot;
  std::int32_t snapshot_round{-1};
};

InProcessTransport::InProcessTransport() : impl_(std::make_unique<Impl>()) {}
InProcessTransport::~InProcessTransport() = default;

Status InProcessTransport::configure(const WorkerSetupMsg& setup) {
  // Full wire round-trip even in-process: the loopback exists to prove the
  // bytes carry everything, so the context may only ever be built from a
  // re-parsed message.
  StatusOr<WorkerSetupMsg> parsed = WorkerSetupMsg::from_bytes(
      setup.to_bytes());
  if (!parsed.ok()) {
    return Status::Annotate(parsed.status(), "in-process configure");
  }
  StatusOr<std::unique_ptr<ShardContext>> ctx = make_shard_context(*parsed);
  if (!ctx.ok()) {
    return Status::Annotate(ctx.status(), "in-process configure");
  }
  impl_->ctx = std::move(*ctx);
  impl_->snapshot.clear();
  impl_->snapshot_round = -1;
  return Status::Ok();
}

Status InProcessTransport::begin_round(const PriceSnapshotMsg& snapshot) {
  if (impl_->ctx == nullptr) {
    return Status::FailedPrecondition(
        "in-process begin_round: transport not configured");
  }
  StatusOr<PriceSnapshotMsg> parsed =
      PriceSnapshotMsg::from_bytes(snapshot.to_bytes());
  if (!parsed.ok()) {
    return Status::Annotate(parsed.status(), "in-process begin_round");
  }
  impl_->snapshot = std::move(parsed->edge_costs);
  impl_->snapshot_round = parsed->round;
  return Status::Ok();
}

StatusOr<ShardResultMsg> InProcessTransport::dispatch(
    const ShardWorkMsg& work) {
  if (impl_->ctx == nullptr || impl_->snapshot_round != work.round) {
    return Status::FailedPrecondition(
        "in-process dispatch: transport not configured for this round");
  }
  try {
    // The transport's own failure point: models a delivery fault (as
    // opposed to router.shard, which models the shard computation
    // faulting). kUnavailable = retryable, per the transport contract.
    CDST_FAULT_POINT("dist.transport");
  } catch (const InjectedFault& e) {
    return Status::Unavailable(e.what());
  }
  StatusOr<ShardWorkMsg> parsed = ShardWorkMsg::from_bytes(work.to_bytes());
  if (!parsed.ok()) {
    return Status::Annotate(parsed.status(), "in-process dispatch");
  }
  StatusOr<ShardResultMsg> result =
      execute_shard(*impl_->ctx, impl_->snapshot, *parsed);
  if (!result.ok()) {
    return Status::Annotate(result.status(), "in-process dispatch");
  }
  StatusOr<ShardResultMsg> reparsed =
      ShardResultMsg::from_bytes(result->to_bytes());
  if (!reparsed.ok()) {
    return Status::Annotate(reparsed.status(), "in-process dispatch");
  }
  return std::move(*reparsed);
}

}  // namespace cdst::dist
