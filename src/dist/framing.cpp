#include "dist/framing.h"

#if !defined(_WIN32)

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/wire.h"

namespace cdst::dist {
namespace {

Status io_error(const char* what, int err) {
  return Status::Unavailable(std::string(what) + ": " +
                             std::strerror(err));
}

/// Writes the whole buffer, looping over partial writes and EINTR.
Status write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("frame write failed", errno);
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

/// Reads exactly `size` bytes; EOF before that is kUnavailable.
Status read_all(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("frame read failed", errno);
    }
    if (n == 0) {
      return Status::Unavailable("frame read failed: peer closed the pipe");
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status write_frame(int fd, std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds kMaxFrameBytes");
  }
  std::vector<std::uint8_t> prefix;
  prefix.reserve(8);
  wire::put_u64(prefix, payload.size());
  if (Status st = write_all(fd, prefix.data(), prefix.size()); !st.ok()) {
    return st;
  }
  return write_all(fd, payload.data(), payload.size());
}

StatusOr<std::vector<std::uint8_t>> read_frame(int fd) {
  std::uint8_t prefix[8];
  if (Status st = read_all(fd, prefix, sizeof(prefix)); !st.ok()) {
    return st;
  }
  wire::Reader r{std::span<const std::uint8_t>(prefix, sizeof(prefix))};
  const std::uint64_t size = r.u64();
  if (size > kMaxFrameBytes) {
    return Status::InvalidArgument("frame length prefix exceeds "
                                   "kMaxFrameBytes (corrupt stream)");
  }
  std::vector<std::uint8_t> payload(size);
  if (Status st = read_all(fd, payload.data(), payload.size()); !st.ok()) {
    return st;
  }
  return payload;
}

}  // namespace cdst::dist

#else  // _WIN32

namespace cdst::dist {

Status write_frame(int, std::span<const std::uint8_t>) {
  return Status::FailedPrecondition(
      "pipe framing is not available on this platform");
}

StatusOr<std::vector<std::uint8_t>> read_frame(int) {
  return Status::FailedPrecondition(
      "pipe framing is not available on this platform");
}

}  // namespace cdst::dist

#endif  // _WIN32
