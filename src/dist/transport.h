/// \file dist/transport.h
/// Pluggable execution of sharded router rounds: where a shard's work runs.
///
/// The Router's sharded round loop (api/router.cpp) stays the owner of the
/// protocol — it freezes prices, partitions nets, retries failures and
/// merges at the barrier; a ShardTransport only answers "execute this
/// shard's work and return its deltas". Because every implementation is fed
/// by the same serializable messages (dist/wire.h) and the executor
/// (dist/shard_executor.h) is a pure function of them, routing results are
/// bit-identical across transports and worker counts.
///
/// Failure contract: dispatch returns kUnavailable for transient faults
/// worth retrying (a dead worker, a broken pipe, an injected fault at site
/// `dist.transport`); the round loop then re-executes the failed shards
/// through the transport again, serially on later attempts (dead workers
/// respawn on their next dispatch).
/// Non-kUnavailable codes mean retrying cannot help (malformed messages,
/// exhausted budgets) and fail the round immediately.

#pragma once

#include <memory>
#include <vector>

#include "api/status.h"
#include "dist/wire.h"

namespace cdst::dist {

class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  /// Transport identity for logs/bench labels.
  virtual const char* name() const = 0;

  /// Replaces the round-invariant world (grid, netlist, knobs). Called
  /// before the first dispatch and again whenever session options change.
  /// Never concurrent with dispatch.
  virtual Status configure(const WorkerSetupMsg& setup) = 0;

  /// Publishes one round's frozen price plane; every dispatch until the
  /// next begin_round executes against it. Never concurrent with dispatch.
  virtual Status begin_round(const PriceSnapshotMsg& snapshot) = 0;

  /// Executes one shard's work. Thread-safe: the round loop dispatches
  /// shards concurrently from its worker pool.
  virtual StatusOr<ShardResultMsg> dispatch(const ShardWorkMsg& work) = 0;
};

/// The degenerate transport: serialize -> parse -> execute -> serialize ->
/// parse, all in-process. Every boundary runs the real wire round-trip, so
/// this is the serialization-correctness oracle — a Router round through it
/// must be bit-identical to the direct in-process round, and any field a
/// message fails to carry shows up as a routing diff, not a subtle remote
/// divergence.
class InProcessTransport final : public ShardTransport {
 public:
  InProcessTransport();
  ~InProcessTransport() override;

  const char* name() const override { return "in-process"; }
  Status configure(const WorkerSetupMsg& setup) override;
  Status begin_round(const PriceSnapshotMsg& snapshot) override;
  StatusOr<ShardResultMsg> dispatch(const ShardWorkMsg& work) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cdst::dist
