#include "dist/subprocess_transport.h"

#if !defined(_WIN32)

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>
#include <vector>

#include "dist/framing.h"
#include "util/fault_injection.h"
#include "util/thread_annotations.h"
#include "util/wire.h"

namespace cdst::dist {
namespace {

/// Writing a frame to a worker that died mid-round raises SIGPIPE, whose
/// default disposition would kill the parent — the opposite of the typed
/// kUnavailable the failure contract promises. Ignore it process-wide,
/// once: EPIPE then surfaces as an ordinary write error. Idempotent and
/// safe even if the host application also ignores SIGPIPE (the common
/// server discipline).
void ignore_sigpipe_once() {
  static const bool done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

}  // namespace

struct SubprocessTransport::Impl {
  /// One pooled worker process. While a dispatch owns it (busy == true)
  /// all fields except `busy` are that dispatch's exclusive property, so
  /// pipe IO and spawn/teardown run outside the pool lock.
  struct Worker {
    pid_t pid{-1};
    int in_fd{-1};   ///< parent -> worker stdin
    int out_fd{-1};  ///< worker stdout -> parent
    bool alive{false};
    bool busy{false};
    /// The process was already SIGKILLed and reaped (kill_workers_for_test)
    /// while the bookkeeping still says alive: destroy must not signal the
    /// stale — possibly recycled — pid again.
    bool reaped{false};
    /// Which setup/snapshot this worker has been streamed (0 = none); the
    /// owning dispatch re-sends whatever lags the transport's epochs.
    std::uint64_t setup_epoch{0};
    std::uint64_t snapshot_epoch{0};
  };

  explicit Impl(SubprocessTransportOptions options_in)
      : options(std::move(options_in)),
        workers(static_cast<std::size_t>(std::max(1, options.workers))) {}

  /// Closes the worker's pipes and reaps its process; the next dispatch
  /// that draws this slot spawns a fresh worker.
  void destroy_worker(Worker& w) {
    if (w.in_fd >= 0) ::close(w.in_fd);
    if (w.out_fd >= 0) ::close(w.out_fd);
    w.in_fd = -1;
    w.out_fd = -1;
    // Guard pid > 0: kill(-1, ...) would signal the whole process group.
    if (w.pid > 0 && !w.reaped) {
      ::kill(w.pid, SIGKILL);
      int status = 0;
      while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
    w.pid = -1;
    w.alive = false;
    w.reaped = false;
  }

  Status spawn_worker(Worker& w) {
    destroy_worker(w);
    int to_child[2];   // parent writes, child stdin
    int from_child[2]; // child stdout, parent reads
    if (::pipe(to_child) != 0) {
      return Status::Unavailable("worker spawn: pipe() failed");
    }
    if (::pipe(from_child) != 0) {
      ::close(to_child[0]);
      ::close(to_child[1]);
      return Status::Unavailable("worker spawn: pipe() failed");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      return Status::Unavailable("worker spawn: fork() failed");
    }
    if (pid == 0) {
      // Child: frames on stdin/stdout; stderr stays shared for logging.
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      char* const argv[] = {const_cast<char*>(options.worker_path.c_str()),
                            nullptr};
      ::execv(options.worker_path.c_str(), argv);
      // Exec failed (missing/non-executable binary): the parent observes
      // EOF on the reply pipe and reports kUnavailable.
      ::_exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    set_cloexec(to_child[1]);
    set_cloexec(from_child[0]);
    w.pid = pid;
    w.in_fd = to_child[1];
    w.out_fd = from_child[0];
    w.alive = true;
    w.setup_epoch = 0;
    w.snapshot_epoch = 0;
    return Status::Ok();
  }

  /// The per-worker IO of one dispatch: catch the worker up on setup /
  /// snapshot, send the work, read and decode the reply. Any stream
  /// failure tears the worker down and returns kUnavailable.
  StatusOr<ShardResultMsg> dispatch_on(Worker& w, const ShardWorkMsg& work,
                                       std::uint64_t want_setup,
                                       std::uint64_t want_snapshot) {
    if (!w.alive || w.pid <= 0) {
      if (Status st = spawn_worker(w); !st.ok()) return st;
    }
    if (w.setup_epoch != want_setup) {
      if (Status st = write_frame(w.in_fd, setup_bytes); !st.ok()) {
        destroy_worker(w);
        return Status::Annotate(st, "worker setup send");
      }
      w.setup_epoch = want_setup;
      w.snapshot_epoch = 0;  // a new world invalidates any old snapshot
    }
    if (w.snapshot_epoch != want_snapshot) {
      if (Status st = write_frame(w.in_fd, snapshot_bytes); !st.ok()) {
        destroy_worker(w);
        return Status::Annotate(st, "worker snapshot send");
      }
      w.snapshot_epoch = want_snapshot;
    }
    if (Status st = write_frame(w.in_fd, work.to_bytes()); !st.ok()) {
      destroy_worker(w);
      return Status::Annotate(st, "worker work send");
    }
    StatusOr<std::vector<std::uint8_t>> reply = read_frame(w.out_fd);
    if (!reply.ok()) {
      destroy_worker(w);
      return Status::Annotate(reply.status(), "worker reply");
    }
    const std::uint32_t magic = wire::peek_u32(*reply);
    if (magic == kWorkerErrorMagic) {
      StatusOr<WorkerErrorMsg> err = WorkerErrorMsg::from_bytes(*reply);
      if (!err.ok()) {
        destroy_worker(w);
        return Status::Annotate(err.status(), "worker error reply");
      }
      // A typed worker error leaves the worker itself healthy: only
      // kUnavailable is worth a retry, and none warrant a respawn.
      return Status::Annotate(err->to_status(), "worker");
    }
    StatusOr<ShardResultMsg> result = ShardResultMsg::from_bytes(*reply);
    if (!result.ok()) {
      destroy_worker(w);
      return Status::Annotate(result.status(), "worker result reply");
    }
    if (result->round != work.round || result->shard != work.shard) {
      destroy_worker(w);
      return Status::Unavailable(
          "worker replied for a different round/shard (desynchronized "
          "stream)");
    }
    return std::move(*result);
  }

  const SubprocessTransportOptions options;

  Mutex mu_;
  CondVar free_cv_;
  /// Fixed-size pool: never resized after construction, so a dispatch can
  /// hold a Worker& across the unlocked IO section.
  std::vector<Worker> workers CDST_GUARDED_BY(mu_);

  // Round-invariant frame bytes. Written only by configure/begin_round,
  // which the ShardTransport contract keeps disjoint from dispatch, and
  // read concurrently (read-only) by dispatch IO outside the lock — so they
  // are deliberately NOT lock-guarded; the epochs below are the lock-side
  // handshake that tells a dispatch whether its worker has current bytes.
  std::vector<std::uint8_t> setup_bytes;
  std::vector<std::uint8_t> snapshot_bytes;
  std::uint64_t setup_epoch CDST_GUARDED_BY(mu_){0};
  std::uint64_t snapshot_epoch CDST_GUARDED_BY(mu_){0};
  std::int32_t snapshot_round CDST_GUARDED_BY(mu_){-1};
};

SubprocessTransport::SubprocessTransport(SubprocessTransportOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {
  ignore_sigpipe_once();
}

SubprocessTransport::~SubprocessTransport() {
  MutexLock lock(impl_->mu_);
  for (Impl::Worker& w : impl_->workers) impl_->destroy_worker(w);
}

Status SubprocessTransport::configure(const WorkerSetupMsg& setup) {
  std::vector<std::uint8_t> bytes = setup.to_bytes();
  // Fail fast on a setup the workers would reject: the round-trip parse
  // runs the same validation worker_main does.
  StatusOr<WorkerSetupMsg> parsed = WorkerSetupMsg::from_bytes(bytes);
  if (!parsed.ok()) {
    return Status::Annotate(parsed.status(), "subprocess configure");
  }
  MutexLock lock(impl_->mu_);
  impl_->setup_bytes = std::move(bytes);
  ++impl_->setup_epoch;
  impl_->snapshot_round = -1;
  return Status::Ok();
}

Status SubprocessTransport::begin_round(const PriceSnapshotMsg& snapshot) {
  MutexLock lock(impl_->mu_);
  if (impl_->setup_epoch == 0) {
    return Status::FailedPrecondition(
        "subprocess begin_round: transport not configured");
  }
  impl_->snapshot_bytes = snapshot.to_bytes();
  ++impl_->snapshot_epoch;
  impl_->snapshot_round = snapshot.round;
  return Status::Ok();
}

StatusOr<ShardResultMsg> SubprocessTransport::dispatch(
    const ShardWorkMsg& work) {
  try {
    // See InProcessTransport::dispatch: the shared transport fault site.
    CDST_FAULT_POINT("dist.transport");
  } catch (const InjectedFault& e) {
    return Status::Unavailable(e.what());
  }
  Impl::Worker* w = nullptr;
  std::uint64_t want_setup = 0;
  std::uint64_t want_snapshot = 0;
  {
    MutexLock lock(impl_->mu_);
    if (impl_->setup_epoch == 0 || impl_->snapshot_round != work.round) {
      return Status::FailedPrecondition(
          "subprocess dispatch: transport not configured for this round");
    }
    for (;;) {
      for (Impl::Worker& cand : impl_->workers) {
        if (!cand.busy) {
          w = &cand;
          break;
        }
      }
      if (w != nullptr) break;
      impl_->free_cv_.wait(impl_->mu_);
    }
    w->busy = true;
    want_setup = impl_->setup_epoch;
    want_snapshot = impl_->snapshot_epoch;
  }
  // IO outside the lock: the busy flag gives this dispatch exclusive
  // ownership of the worker, so concurrent dispatches drive other workers.
  StatusOr<ShardResultMsg> result =
      impl_->dispatch_on(*w, work, want_setup, want_snapshot);
  {
    MutexLock lock(impl_->mu_);
    w->busy = false;
    impl_->free_cv_.notify_one();
  }
  return result;
}

void SubprocessTransport::kill_workers_for_test() {
  MutexLock lock(impl_->mu_);
  // Wait out in-flight dispatches first: their workers are owned outside
  // the lock, and racing a SIGKILL against a spawn could signal a stale or
  // recycled pid.
  for (;;) {
    bool any_busy = false;
    for (const Impl::Worker& w : impl_->workers) any_busy |= w.busy;
    if (!any_busy) break;
    impl_->free_cv_.wait(impl_->mu_);
  }
  for (Impl::Worker& w : impl_->workers) {
    if (w.pid <= 0 || w.reaped) continue;
    ::kill(w.pid, SIGKILL);
    int status = 0;
    while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
    }
    // Deliberately keep `alive`, the pid and the pipes as they were: the
    // next dispatch must DISCOVER the death (EPIPE/EOF -> kUnavailable) the
    // way production would, not silently respawn past it. `reaped` stops
    // the eventual destroy from signaling the stale pid again.
    w.reaped = true;
  }
}

}  // namespace cdst::dist

#else  // _WIN32

namespace cdst::dist {

struct SubprocessTransport::Impl {
  SubprocessTransportOptions options;
};

SubprocessTransport::SubprocessTransport(SubprocessTransportOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SubprocessTransport::~SubprocessTransport() = default;

Status SubprocessTransport::configure(const WorkerSetupMsg&) {
  return Status::FailedPrecondition(
      "SubprocessTransport is not available on this platform");
}

Status SubprocessTransport::begin_round(const PriceSnapshotMsg&) {
  return Status::FailedPrecondition(
      "SubprocessTransport is not available on this platform");
}

StatusOr<ShardResultMsg> SubprocessTransport::dispatch(const ShardWorkMsg&) {
  return Status::FailedPrecondition(
      "SubprocessTransport is not available on this platform");
}

void SubprocessTransport::kill_workers_for_test() {}

}  // namespace cdst::dist

#endif  // _WIN32
