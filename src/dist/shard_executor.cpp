#include "dist/shard_executor.h"

#include <string>
#include <utility>

#include "api/scratch_pool.h"
#include "grid/cost_model.h"
#include "grid/window.h"
#include "route/sharding.h"
#include "route/steiner_oracle.h"
#include "util/assert.h"
#include "util/fault_injection.h"
#include "util/sparse_map.h"

namespace cdst::dist {
namespace {

bool in_grid(const Point3& p, const RoutingGrid& grid) {
  return p.x >= 0 && p.x < grid.nx() && p.y >= 0 && p.y < grid.ny() &&
         p.z >= 0 && p.z < grid.nz();
}

}  // namespace

StatusOr<std::unique_ptr<ShardContext>> make_shard_context(
    const WorkerSetupMsg& setup) {
  if (setup.nx < 1 || setup.ny < 1 || setup.layers.empty()) {
    return Status::InvalidArgument("shard context: degenerate grid geometry");
  }
  for (const LayerSpec& layer : setup.layers) {
    if (layer.wire_types.empty()) {
      return Status::InvalidArgument(
          "shard context: layer without wire types");
    }
  }
  if (!(setup.congestion.price_at_full > 1.0)) {
    return Status::InvalidArgument(
        "shard context: congestion price_at_full must be > 1");
  }
  // The setup deliberately cannot carry pointers (dist/wire.h); a parsed
  // message always satisfies this, but a hand-built one must too, because
  // the context wires in its own budget pool below.
  if (setup.oracle.cd.future_cost != nullptr ||
      setup.oracle.cd.shared_dense_budget != nullptr) {
    return Status::InvalidArgument(
        "shard context: pointer-valued solver knobs cannot cross the wire");
  }
  try {
    auto ctx = std::make_unique<ShardContext>(setup);
    for (const Net& net : ctx->netlist.nets) {
      if (!in_grid(net.source, ctx->grid)) {
        return Status::InvalidArgument("shard context: net source off-grid");
      }
      for (const SinkPin& sink : net.sinks) {
        if (!in_grid(sink.pos, ctx->grid)) {
          return Status::InvalidArgument("shard context: net sink off-grid");
        }
      }
    }
    return ctx;
  } catch (const InjectedFault& e) {
    // The grid build crosses fault sites (e.g. arcplane.assign): transient,
    // so configure is worth retrying like any other transport failure.
    return Status::Unavailable(e.what());
  } catch (const ContractViolation& e) {
    return Status::InvalidArgument(
        std::string("shard context: grid build rejected setup: ") + e.what());
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  }
}

StatusOr<ShardResultMsg> execute_shard(ShardContext& ctx,
                                       std::span<const double> snapshot,
                                       const ShardWorkMsg& work) {
  const std::size_t num_edges = ctx.grid.graph().num_edges();
  const std::size_t num_resources = ctx.grid.num_resources();
  if (snapshot.size() != num_edges) {
    return Status::InvalidArgument(
        "shard work: price snapshot does not match the setup grid");
  }
  // Validate the whole chunk before running any oracle: wire-supplied
  // indexes must never reach a contract check, and a half-executed chunk
  // would waste work the caller is about to retry anyway.
  for (const ShardWorkMsg::NetWork& nw : work.nets) {
    if (nw.net >= ctx.netlist.nets.size()) {
      return Status::InvalidArgument("shard work: net index out of range");
    }
    const Net& net = ctx.netlist.nets[nw.net];
    if (net.sinks.empty()) {
      return Status::InvalidArgument(
          "shard work: sink-less nets have no round work");
    }
    if (nw.sink_weights.size() != net.sinks.size()) {
      return Status::InvalidArgument(
          "shard work: sink weight count does not match the net");
    }
    for (const std::uint32_t e : nw.route_edges) {
      if (e >= num_edges) {
        return Status::InvalidArgument(
            "shard work: committed route edge out of range");
      }
    }
    for (const std::uint32_t res : nw.resources) {
      if (res >= num_resources) {
        return Status::InvalidArgument(
            "shard work: frozen resource id out of range");
      }
    }
  }

  try {
    // Call-local congestion state: execute_shard runs concurrently against
    // one shared context, and the frozen usage replay below mutates it.
    CongestionCosts costs(ctx.grid, ctx.congestion);
    SolverScratch scratch;
    SparseMap<double> excluded;

    ShardResultMsg result;
    result.round = work.round;
    result.shard = work.shard;
    result.nets.reserve(work.nets.size());
    for (const ShardWorkMsg::NetWork& nw : work.nets) {
      const Net& net = ctx.netlist.nets[nw.net];
      // The net prices against the snapshot minus its own committed usage —
      // identical to the in-process shard loop, except the live usage of
      // the net's resources arrives frozen on the wire instead of sitting
      // in the session's CongestionCosts.
      excluded.clear();
      for (const EdgeId e : nw.route_edges) {
        const RoutingGrid::EdgeInfo& info = ctx.grid.edge_info(e);
        excluded[info.resource] += info.width;
      }
      for (std::size_t k = 0; k < nw.resources.size(); ++k) {
        costs.set_usage(nw.resources[k], nw.usage[k]);
      }
      const RoundPricing pricing{
          snapshot, nw.route_edges.empty() ? nullptr : &excluded};
      OracleParams p = ctx.oracle;
      p.seed = net_round_seed(ctx.options_seed, net.id, work.round);
      if (p.cd.shared_dense_budget == nullptr) {
        p.cd.shared_dense_budget = &ctx.dense_budget;
      }
      const OracleInstance oi(ctx.grid, costs, net, nw.sink_weights, p,
                              &pricing);
      OracleOutcome out = run_method(oi, ctx.method, p, &scratch);
      // Restore the pristine zero-usage state for the next net: each net's
      // pricing depends only on its own frozen resources.
      for (const std::uint32_t res : nw.resources) {
        costs.set_usage(res, 0.0);
      }

      ShardResultMsg::NetResult nr;
      nr.net = nw.net;
      result.route_edges_total += out.grid_edges.size();
      for (const EdgeId e : out.grid_edges) {
        result.snapshot_cost_total += snapshot[e];
      }
      nr.route_edges = std::move(out.grid_edges);
      nr.sink_delays = std::move(out.eval.sink_delays);
      result.nets.push_back(std::move(nr));
    }
    return result;
  } catch (const InjectedFault& e) {
    return Status::Unavailable(e.what());
  } catch (const BudgetExhausted& e) {
    return detail::resource_exhausted_status(e.what());
  } catch (const ContractViolation& e) {
    return Status::InvalidArgument(e.what());
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  }
}

}  // namespace cdst::dist
