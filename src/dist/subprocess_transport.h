/// \file dist/subprocess_transport.h
/// ShardTransport over a pool of out-of-process worker binaries.
///
/// Each worker is a `cdst_shard_worker` process (dist/worker_main.cpp)
/// speaking length-prefixed frames (dist/framing.h) over its stdin/stdout.
/// The transport spawns workers lazily, streams each one the current setup
/// and round snapshot exactly once per change (epoch-tracked, so an idle
/// worker that missed rounds catches up on its next dispatch), and respawns
/// workers that died. A dead or misbehaving worker costs kUnavailable on
/// the dispatch that discovers it — the retryable class the Router's
/// shard-retry loop recovers from — never a crash or a hang of the parent.
///
/// Thread-safety: dispatch is callable concurrently (each in-flight
/// dispatch owns one worker exclusively); configure/begin_round follow the
/// ShardTransport contract of never overlapping dispatch.

#pragma once

#include <memory>
#include <string>

#include "dist/transport.h"

namespace cdst::dist {

struct SubprocessTransportOptions {
  /// Path to the worker binary (the cdst_shard_worker target). A missing or
  /// non-executable path surfaces as kUnavailable on dispatch, after the
  /// spawned child fails its exec.
  std::string worker_path;
  /// Worker processes in the pool (clamped to >= 1). Dispatches beyond the
  /// pool size wait for a free worker.
  int workers{2};
};

class SubprocessTransport final : public ShardTransport {
 public:
  explicit SubprocessTransport(SubprocessTransportOptions options);
  ~SubprocessTransport() override;

  const char* name() const override { return "subprocess"; }
  Status configure(const WorkerSetupMsg& setup) override;
  Status begin_round(const PriceSnapshotMsg& snapshot) override;
  StatusOr<ShardResultMsg> dispatch(const ShardWorkMsg& work) override;

  /// TEST ONLY: waits for in-flight dispatches to finish, then SIGKILLs
  /// every live worker process — but leaves the transport's bookkeeping
  /// believing they are alive, so the NEXT dispatch to each discovers the
  /// death the way production would (broken pipe / EOF -> kUnavailable)
  /// and the retry machinery is actually exercised rather than a silent
  /// respawn hiding the fault.
  void kill_workers_for_test();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cdst::dist
