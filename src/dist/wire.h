/// \file dist/wire.h
/// Serializable messages of the distributed shard-round protocol.
///
/// One sharded rip-up & re-route round (api/router.h, shards >= 1) is, per
/// shard, a pure function of frozen round inputs; these messages carry
/// exactly those inputs and the shard's outputs across a process boundary:
///
///   WorkerSetupMsg    — the round-invariant world (grid geometry, netlist,
///                       oracle/congestion knobs, session seed); sent once
///                       per worker, re-sent only when set_options changes it.
///   PriceSnapshotMsg  — the round's frozen per-edge price plane; sent once
///                       per (worker, round).
///   ShardWorkMsg      — one shard's net chunk: per net its sink weights,
///                       committed route and the frozen usage of that route's
///                       resources (what the net excludes when pricing
///                       against the snapshot — the rip-up, in snapshot
///                       terms), plus tile geometry and round/shard indexes.
///   ShardResultMsg    — the shard's route deltas: per net the re-routed
///                       grid edges and sink delays, plus aggregate
///                       congestion stats for observability.
///   WorkerErrorMsg    — a typed Status a worker sends instead of a result.
///
/// Every message is versioned and magic-prefixed in the overflow-safe style
/// of RouterCheckpoint: fixed little-endian layout (util/wire.h), header
/// validated before any field read, every count checked against the unread
/// remainder, exact byte consumption required. from_bytes rejects malformed
/// bytes with kInvalidArgument and never crashes — workers parse bytes from
/// a pipe a dying peer may have truncated mid-frame.
///
/// Pointer-valued knobs (SolverOptions::future_cost / shared_dense_budget)
/// are deliberately NOT serialized: the executor wires per-process
/// equivalents back in (dist/shard_executor.h), and whether a solve lands
/// dense or sparse never changes results, so placement is result-invariant.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "api/status.h"
#include "grid/cost_model.h"
#include "route/net.h"
#include "route/sharding.h"
#include "route/steiner_oracle.h"

namespace cdst::dist {

/// Four-character message magic, little-endian ("CDwk" reads forward in a
/// hex dump of the frame head).
constexpr std::uint32_t fourcc(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

inline constexpr std::uint32_t kWorkerSetupMagic = fourcc('C', 'D', 's', 'u');
inline constexpr std::uint32_t kPriceSnapshotMagic =
    fourcc('C', 'D', 's', 'n');
inline constexpr std::uint32_t kShardWorkMagic = fourcc('C', 'D', 'w', 'k');
inline constexpr std::uint32_t kShardResultMagic = fourcc('C', 'D', 'r', 's');
inline constexpr std::uint32_t kWorkerErrorMagic = fourcc('C', 'D', 'e', 'r');

/// One version for the whole protocol: the messages only ever travel
/// together, so they revise together.
inline constexpr std::uint32_t kDistWireVersion = 1;

/// The round-invariant world a shard worker reconstructs once. Grid geometry
/// travels as the RoutingGrid constructor inputs (nx/ny/layers/via): the
/// grid build is deterministic, so both sides derive identical edge ids and
/// resources from identical specs.
struct WorkerSetupMsg {
  std::int32_t nx{1};
  std::int32_t ny{1};
  std::vector<LayerSpec> layers;
  ViaSpec via;
  Netlist netlist;
  SteinerMethod method{SteinerMethod::kCD};
  OracleParams oracle;  ///< pointer members ship as null (see file comment)
  CongestionParams congestion;
  std::uint64_t options_seed{1};

  std::vector<std::uint8_t> to_bytes() const;
  static StatusOr<WorkerSetupMsg> from_bytes(
      std::span<const std::uint8_t> bytes);
};

/// The frozen per-edge price plane of one round (CongestionCosts::
/// fill_edge_costs output), indexed by EdgeId of the setup grid.
struct PriceSnapshotMsg {
  std::int32_t round{0};
  std::vector<double> edge_costs;

  std::vector<std::uint8_t> to_bytes() const;
  static StatusOr<PriceSnapshotMsg> from_bytes(
      std::span<const std::uint8_t> bytes);
};

/// One shard's work for one round. Nets reference the setup netlist by
/// index; sink-less nets are never included (the round skips them at the
/// merge too).
struct ShardWorkMsg {
  /// Per-net round state the executor cannot derive from the setup.
  struct NetWork {
    std::uint32_t net{0};  ///< index into WorkerSetupMsg::netlist.nets
    /// Live Lagrange multipliers of this net's sinks, in sink order.
    std::vector<double> sink_weights;
    /// The net's committed route (excluded from its own snapshot pricing).
    std::vector<std::uint32_t> route_edges;
    /// Frozen usage of the distinct resources `route_edges` touches, as
    /// parallel (resource id, committed usage) arrays sorted by resource:
    /// edge_cost_excluding subtracts the net's own width from the LIVE
    /// usage of exactly these resources, so the executor replays them into
    /// its local CongestionCosts to price bit-identically off-process.
    std::vector<std::uint32_t> resources;
    std::vector<double> usage;
  };

  std::int32_t round{0};
  std::int32_t shard{0};
  std::int32_t shards{1};
  ShardTile tile;  ///< the shard's tile geometry (events/observability)
  std::vector<NetWork> nets;

  std::vector<std::uint8_t> to_bytes() const;
  static StatusOr<ShardWorkMsg> from_bytes(
      std::span<const std::uint8_t> bytes);
};

/// One shard's outputs: everything the round barrier merges, in work order.
struct ShardResultMsg {
  struct NetResult {
    std::uint32_t net{0};
    std::vector<std::uint32_t> route_edges;  ///< re-routed tree, grid edges
    std::vector<double> sink_delays;         ///< per sink, in sink order
  };

  std::int32_t round{0};
  std::int32_t shard{0};
  std::vector<NetResult> nets;
  /// Aggregate congestion stats of the shard's new routes (observability;
  /// the merge never reads them).
  std::uint64_t route_edges_total{0};
  double snapshot_cost_total{0.0};

  std::vector<std::uint8_t> to_bytes() const;
  static StatusOr<ShardResultMsg> from_bytes(
      std::span<const std::uint8_t> bytes);
};

/// A typed failure a worker reports instead of a ShardResultMsg.
struct WorkerErrorMsg {
  StatusCode code{StatusCode::kInternal};
  std::string message;

  std::vector<std::uint8_t> to_bytes() const;
  static StatusOr<WorkerErrorMsg> from_bytes(
      std::span<const std::uint8_t> bytes);

  Status to_status() const;
  static WorkerErrorMsg from_status(const Status& status);
};

}  // namespace cdst::dist
