/// \file dist/framing.h
/// Length-prefixed message framing over POSIX file descriptors — the byte
/// stream discipline between SubprocessTransport and its workers.
///
/// A frame is a u64 little-endian payload length followed by the payload
/// (one serialized dist/wire.h message; receivers branch on its leading
/// magic via wire::peek_u32). Reads and writes loop over partial transfers
/// and EINTR. Stream-level failures — EOF mid-frame, a broken pipe, any fd
/// error — map to kUnavailable: from the peer's perspective they are
/// indistinguishable from a crashed counterpart, which is exactly the
/// transient class the round loop's retry path handles. An oversized length
/// prefix is kInvalidArgument (corrupt framing, not worth retrying).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "api/status.h"

namespace cdst::dist {

/// Upper bound on one frame's payload. Far above any real round message
/// (the price plane of a huge grid is ~100MB); a prefix beyond it means the
/// stream is corrupt, so the reader fails fast instead of allocating.
inline constexpr std::uint64_t kMaxFrameBytes = 1ull << 30;

/// Writes one frame. kUnavailable when the peer is gone (EPIPE/short
/// write), kInvalidArgument when the payload exceeds kMaxFrameBytes.
Status write_frame(int fd, std::span<const std::uint8_t> payload);

/// Reads one frame's payload. kUnavailable on EOF (clean or mid-frame) or
/// fd error, kInvalidArgument on an oversized length prefix.
StatusOr<std::vector<std::uint8_t>> read_frame(int fd);

}  // namespace cdst::dist
