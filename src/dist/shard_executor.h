/// \file dist/shard_executor.h
/// Executes one shard's routing work from the wire messages alone — the
/// compute half every ShardTransport placement shares.
///
/// A ShardContext is the materialized WorkerSetupMsg: the rebuilt grid,
/// netlist and knobs, plus a process-local dense-state budget pool. Both
/// worker processes (dist/worker_main.cpp) and the in-process loopback
/// transport create one and then call execute_shard per ShardWorkMsg.
///
/// Bit-identity contract: execute_shard(make_shard_context(setup),
/// snapshot, work) produces exactly the routes/delays the in-process
/// sharded round (api/router.cpp) computes for the same nets, because every
/// input the oracles read — frozen snapshot prices, the net's committed
/// route and the frozen usage of its resources, sink weights, the per-net
/// round seed (route/sharding.h net_round_seed) — travels in the messages,
/// and everything else (dense/sparse state placement, scratch history) is
/// result-invariant by the solver's own contracts.

#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "api/status.h"
#include "core/cost_distance.h"
#include "dist/wire.h"
#include "grid/routing_grid.h"
#include "route/net.h"

namespace cdst::dist {

/// The round-invariant execution state of one setup message. Create via
/// make_shard_context; safe to share across concurrent execute_shard calls
/// (per-call mutable state is call-local; the budget pool is atomic).
struct ShardContext {
  RoutingGrid grid;
  Netlist netlist;
  SteinerMethod method;
  OracleParams oracle;
  CongestionParams congestion;
  std::uint64_t options_seed;
  /// Process-local twin of the Router session's shared dense-state pool,
  /// sized from oracle.cd.dense_state_budget_bytes. Whether a solve lands
  /// dense or sparse never changes results, so each process budgeting
  /// independently preserves bit-identity.
  DenseStateBudget dense_budget;

  explicit ShardContext(const WorkerSetupMsg& setup)
      : grid(setup.nx, setup.ny, setup.layers, setup.via),
        netlist(setup.netlist),
        method(setup.method),
        oracle(setup.oracle),
        congestion(setup.congestion),
        options_seed(setup.options_seed),
        dense_budget(setup.oracle.cd.dense_state_budget_bytes) {}

  ShardContext(const ShardContext&) = delete;
  ShardContext& operator=(const ShardContext&) = delete;
};

/// Validates the setup (grid geometry buildable, congestion parameters
/// legal, every net pin inside the grid, pointer knobs absent) and
/// materializes it. kInvalidArgument on any violation — the context build
/// must never trip a contract check on wire-supplied data.
StatusOr<std::unique_ptr<ShardContext>> make_shard_context(
    const WorkerSetupMsg& setup);

/// Routes one shard's nets against the frozen round snapshot and returns
/// their deltas in work order. `snapshot` must hold one price per grid edge
/// (a parsed PriceSnapshotMsg for the work's round); the work's net
/// indexes, routes and resources are validated against the context before
/// any oracle runs. Thread-safe for one shared context (see ShardContext).
StatusOr<ShardResultMsg> execute_shard(ShardContext& ctx,
                                       std::span<const double> snapshot,
                                       const ShardWorkMsg& work);

}  // namespace cdst::dist
