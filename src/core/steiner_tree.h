/// \file steiner_tree.h
/// Embedded Steiner trees and their incremental assembly.
///
/// A SteinerTree is an arborescence over structural nodes (root, sinks,
/// Steiner points); each non-root node stores the embedded path of graph
/// edges up to its parent. The assembler supports what Algorithm 1 needs:
/// adding a connection path between two existing components, *splitting* an
/// embedded segment when a path attaches in its interior ("implicitly places
/// Steiner vertices at the points where the path leaves or enters the
/// connected components", Section III-A), and final normalization to a
/// bifurcation-compatible tree (root and sinks are leaves, internal degree
/// <= 3, realized by stacking zero-length Steiner nodes at shared positions).

#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "core/instance.h"
#include "graph/graph.h"
#include "util/sparse_map.h"

namespace cdst {

enum class NodeKind : std::uint8_t { kRoot, kSink, kSteiner };

/// Final, immutable embedded Steiner tree (an r-arborescence).
struct SteinerTree {
  struct Node {
    VertexId graph_vertex{kInvalidVertex};
    std::int32_t parent{-1};       ///< node index; -1 for the root
    std::int32_t sink_index{-1};   ///< index into instance sinks, or -1
    NodeKind kind{NodeKind::kSteiner};
    /// Graph edges from this node's vertex up to the parent's vertex,
    /// ordered starting at this node. Empty for the root and for stacked
    /// (zero-length) Steiner nodes.
    std::vector<EdgeId> up_path;
  };

  std::vector<Node> nodes;  ///< nodes[0] is the root
  std::vector<std::vector<std::int32_t>> children;

  std::size_t num_nodes() const { return nodes.size(); }

  /// All graph edges of the tree (each exactly once if the tree is valid).
  std::vector<EdgeId> all_edges() const;

  /// Checks structural soundness against the graph: parent paths connect the
  /// right vertices, every sink appears exactly once, out-degrees <= 2,
  /// root out-degree <= 1, no graph edge used twice. Throws on violation.
  /// `allow_shared_edges` relaxes the edge-reuse check for embeddings of
  /// fixed topologies, which may legitimately route two topology edges over
  /// the same graph edge (paying its cost twice).
  void validate(const Graph& g, std::size_t num_sinks,
                bool allow_shared_edges = false) const;
};

/// Incremental tree assembly used by the cost-distance solver and the
/// topology embedder.
class TreeAssembler {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId kNoNode = 0xffffffffu;

  explicit TreeAssembler(const Graph& g) : graph_(&g) {}

  /// Registers the root terminal; must be called exactly once, first.
  NodeId add_root(VertexId v);

  /// Registers a sink terminal node.
  NodeId add_sink(VertexId v, std::int32_t sink_index);

  /// Adds a free-standing Steiner node (used by the embedder).
  NodeId add_steiner(VertexId v);

  /// Connects two existing nodes with an embedded path (edge ids, ordered
  /// from a to b; may be empty if both nodes share a vertex). The path is
  /// copied into the assembler; callers may pass views into reused scratch.
  void add_segment(NodeId a, NodeId b, std::span<const EdgeId> path);
  void add_segment(NodeId a, NodeId b, std::initializer_list<EdgeId> path) {
    add_segment(a, b, std::span<const EdgeId>(path.begin(), path.size()));
  }

  /// Returns a node located at graph vertex v, creating a Steiner node by
  /// splitting an embedded segment if v currently lies in a segment
  /// interior. Returns kNoNode if v is not part of the assembled structure.
  NodeId node_at(VertexId v);

  /// Whether graph vertex v lies on the assembled structure.
  bool covers(VertexId v) const;

  VertexId vertex_of(NodeId n) const { return nodes_[n].v; }

  std::size_t num_nodes() const { return nodes_.size(); }

  /// Orients the structure as an arborescence from the root, normalizes it
  /// to a bifurcation-compatible tree and returns the result.
  /// Throws if the structure is disconnected or cyclic.
  SteinerTree finalize() const;

 private:
  struct NodeRec {
    VertexId v{kInvalidVertex};
    NodeKind kind{NodeKind::kSteiner};
    std::int32_t sink_index{-1};
    std::vector<std::uint32_t> segs;
  };

  struct Seg {
    NodeId a{kNoNode};
    NodeId b{kNoNode};
    std::vector<EdgeId> edges;    ///< ordered a -> b
    std::vector<VertexId> verts;  ///< edges.size() + 1 vertices, a -> b
  };

  /// Where a graph vertex lives in the structure.
  struct Loc {
    NodeId node{kNoNode};
    std::uint32_t seg{0xffffffffu};
    std::uint32_t offset{0};  ///< index into Seg::verts
    bool is_node() const { return node != kNoNode; }
  };

  NodeId new_node(VertexId v, NodeKind kind, std::int32_t sink_index);
  NodeId split_segment(std::uint32_t seg_id, std::uint32_t offset);
  void reindex_segment(std::uint32_t seg_id);

  const Graph* graph_;
  std::vector<NodeRec> nodes_;
  std::vector<Seg> segs_;
  SparseMap<Loc> loc_;
  NodeId root_{kNoNode};
};

}  // namespace cdst
