/// \file future_oracle.h
/// Geometry / future-cost interface consumed by the cost-distance solver's
/// goal-oriented search (Section III-C) and Steiner placement (III-D).
///
/// Vertex ids are those of the *solver's* graph — the full routing grid or a
/// routing window (subgraph); implementations translate accordingly
/// (grid::FutureCost, grid::WindowFutureCost).

#pragma once

#include "geom/point.h"
#include "graph/graph.h"

namespace cdst {

/// Structure-of-arrays form of a purely geometric bound oracle: a dense
/// per-vertex position array plus the four per-unit minima the L1 bound
/// formulas combine. When an oracle publishes this (see
/// FutureCostOracle::plane_bounds), the solver's inner loop evaluates
/// cost/delay lower bounds inline — one position load and a few fused
/// multiply-adds — instead of a virtual call that re-derives coordinates
/// with div/mod per query. Bounds computed either way are bit-identical;
/// oracles whose bounds are *not* pure geometry (e.g. landmark-strengthened
/// cost bounds) return an invalid view and stay on the virtual path.
struct PlaneBoundData {
  const Point3* positions{nullptr};  ///< dense, indexed by solver VertexId
  double min_unit_cost{0.0};
  double min_unit_delay{0.0};
  double min_via_cost{0.0};
  double min_via_delay{0.0};

  bool valid() const { return positions != nullptr; }

  /// Exactly the geometric cost_lb formula of the grid oracles.
  double cost_lb(VertexId a, VertexId b) const {
    const Point3& pa = positions[a];
    const Point3& pb = positions[b];
    return static_cast<double>(l1_distance(pa, pb)) * min_unit_cost +
           std::abs(pa.z - pb.z) * min_via_cost;
  }

  /// Exactly the geometric delay_lb formula of the grid oracles.
  double delay_lb(VertexId a, VertexId b) const {
    const Point3& pa = positions[a];
    const Point3& pb = positions[b];
    return static_cast<double>(l1_distance(pa, pb)) * min_unit_delay +
           std::abs(pa.z - pb.z) * min_via_delay;
  }

  Point2 xy(VertexId v) const { return positions[v].xy(); }
};

class FutureCostOracle {
 public:
  virtual ~FutureCostOracle() = default;

  /// Plane position of a vertex (for L1 nearest-target bounds).
  virtual Point2 xy(VertexId v) const = 0;

  /// Admissible lower bound on the congestion cost of any a-b path.
  virtual double cost_lb(VertexId a, VertexId b) const = 0;

  /// Admissible lower bound on the delay of any a-b path.
  virtual double delay_lb(VertexId a, VertexId b) const = 0;

  /// Cheapest congestion cost per plane unit (any layer/wire type).
  virtual double min_unit_cost() const = 0;

  /// Fastest delay per plane unit (any layer/wire type).
  virtual double min_unit_delay() const = 0;

  /// SoA view of the oracle's geometry, when its bounds are pure geometry
  /// (see PlaneBoundData). Default: none — callers fall back to the virtual
  /// bound methods above.
  virtual PlaneBoundData plane_bounds() const { return {}; }
};

}  // namespace cdst
