/// \file future_oracle.h
/// Geometry / future-cost interface consumed by the cost-distance solver's
/// goal-oriented search (Section III-C) and Steiner placement (III-D).
///
/// Vertex ids are those of the *solver's* graph — the full routing grid or a
/// routing window (subgraph); implementations translate accordingly
/// (grid::FutureCost, grid::WindowFutureCost).

#pragma once

#include <cstddef>
#include <vector>

#include "geom/point.h"
#include "graph/graph.h"

namespace cdst {

/// Structure-of-arrays form of a bound oracle with inline-evaluable bounds:
/// a dense per-vertex position array plus the four per-unit minima the L1
/// bound formulas combine, optionally strengthened by ALT landmark tables
/// (graph/landmarks.h) on the cost side. When an oracle publishes this (see
/// FutureCostOracle::plane_bounds), the solver's inner loop evaluates
/// cost/delay lower bounds inline — one position load and a few fused
/// multiply-adds, plus one dense table load per landmark — instead of a
/// virtual call that re-derives coordinates with div/mod per query. Bounds
/// computed either way are bit-identical: the geometric formulas are copied
/// verbatim, and folding each landmark's |t[a] - t[b]| into the running
/// bound is exact because max is (the max(geo, max_L ...) of the virtual
/// path associates freely).
struct PlaneBoundData {
  const Point3* positions{nullptr};  ///< dense, indexed by solver VertexId
  double min_unit_cost{0.0};
  double min_unit_delay{0.0};
  double min_via_cost{0.0};
  double min_via_delay{0.0};
  /// ALT landmark distance tables (dense per-vertex, one per landmark);
  /// null/0 when the oracle has none. Borrowed from the oracle.
  const std::vector<double>* landmark_tables{nullptr};
  std::size_t num_landmarks{0};

  bool valid() const { return positions != nullptr; }

  /// Exactly the cost_lb formula of the grid oracles: geometric floor,
  /// raised by each landmark's triangle-inequality bound.
  double cost_lb(VertexId a, VertexId b) const {
    const Point3& pa = positions[a];
    const Point3& pb = positions[b];
    double geo = static_cast<double>(l1_distance(pa, pb)) * min_unit_cost +
                 std::abs(pa.z - pb.z) * min_via_cost;
    for (std::size_t i = 0; i < num_landmarks; ++i) {
      const double d = landmark_tables[i][a] - landmark_tables[i][b];
      const double ad = d < 0 ? -d : d;
      if (ad > geo) geo = ad;
    }
    return geo;
  }

  /// Exactly the geometric delay_lb formula of the grid oracles.
  double delay_lb(VertexId a, VertexId b) const {
    const Point3& pa = positions[a];
    const Point3& pb = positions[b];
    return static_cast<double>(l1_distance(pa, pb)) * min_unit_delay +
           std::abs(pa.z - pb.z) * min_via_delay;
  }

  Point2 xy(VertexId v) const { return positions[v].xy(); }
};

class FutureCostOracle {
 public:
  virtual ~FutureCostOracle() = default;

  /// Plane position of a vertex (for L1 nearest-target bounds).
  virtual Point2 xy(VertexId v) const = 0;

  /// Admissible lower bound on the congestion cost of any a-b path.
  virtual double cost_lb(VertexId a, VertexId b) const = 0;

  /// Admissible lower bound on the delay of any a-b path.
  virtual double delay_lb(VertexId a, VertexId b) const = 0;

  /// Cheapest congestion cost per plane unit (any layer/wire type).
  virtual double min_unit_cost() const = 0;

  /// Fastest delay per plane unit (any layer/wire type).
  virtual double min_unit_delay() const = 0;

  /// SoA view of the oracle's geometry (and landmark tables, if any) for
  /// inline bound evaluation (see PlaneBoundData). Default: none — callers
  /// fall back to the virtual bound methods above.
  virtual PlaneBoundData plane_bounds() const { return {}; }
};

}  // namespace cdst
