/// \file future_oracle.h
/// Geometry / future-cost interface consumed by the cost-distance solver's
/// goal-oriented search (Section III-C) and Steiner placement (III-D).
///
/// Vertex ids are those of the *solver's* graph — the full routing grid or a
/// routing window (subgraph); implementations translate accordingly
/// (grid::FutureCost, grid::WindowFutureCost).

#pragma once

#include "geom/point.h"
#include "graph/graph.h"

namespace cdst {

class FutureCostOracle {
 public:
  virtual ~FutureCostOracle() = default;

  /// Plane position of a vertex (for L1 nearest-target bounds).
  virtual Point2 xy(VertexId v) const = 0;

  /// Admissible lower bound on the congestion cost of any a-b path.
  virtual double cost_lb(VertexId a, VertexId b) const = 0;

  /// Admissible lower bound on the delay of any a-b path.
  virtual double delay_lb(VertexId a, VertexId b) const = 0;

  /// Cheapest congestion cost per plane unit (any layer/wire type).
  virtual double min_unit_cost() const = 0;

  /// Fastest delay per plane unit (any layer/wire type).
  virtual double min_unit_delay() const = 0;
};

}  // namespace cdst
