/// \file objective.h
/// Evaluation of the cost-distance objective (Eq. (1) with the bifurcation
/// delay model of Eq. (3)) on an embedded Steiner tree.

#pragma once

#include <vector>

#include "core/instance.h"
#include "core/steiner_tree.h"

namespace cdst {

struct TreeEvaluation {
  double connection_cost{0.0};   ///< sum of c(e) over tree edges
  double weighted_delay{0.0};    ///< sum_t w(t) * delay(r, t)
  double objective{0.0};         ///< connection_cost + weighted_delay
  double total_delay_penalty{0.0};  ///< part of weighted_delay from dbif terms
  std::vector<double> sink_delays;  ///< delay(r, t) per instance sink index
  /// Penalty share lambda assigned to the edge entering each tree node
  /// (Eq. (2)); 0 where the parent is not a bifurcation or dbif = 0.
  /// Indexed like SteinerTree::nodes.
  std::vector<double> node_lambda;
  std::size_t num_graph_edges{0};
};

/// Computes Eq. (1)+(3) for the given tree. Lambda penalty shares at each
/// bifurcation are assigned optimally per Eq. (2) from the subtree delay
/// weights (the evaluator owns this choice; solvers need not record lambdas).
TreeEvaluation evaluate_tree(const SteinerTree& tree,
                             const CostDistanceInstance& instance);

}  // namespace cdst
