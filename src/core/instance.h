/// \file instance.h
/// The cost-distance Steiner tree problem instance (paper Section I).
///
/// An instance couples a graph with two independent edge metrics — congestion
/// cost c and delay d — a root, weighted sinks, and the bifurcation penalty
/// parameters (dbif, eta). The objective is Eq. (1) with the delay model of
/// Eq. (3):
///
///   cost(T) = sum_{e in T} c(e) + sum_{t in S} w(t) * delay_T(r, t)
///   delay_T(r,t) = sum_{e=(u,v) on the r-t path} ( d(e) + lambda_v * dbif )

#pragma once

#include <algorithm>
#include <vector>

#include "graph/arc_cost_view.h"
#include "graph/graph.h"
#include "util/assert.h"

namespace cdst {

struct Terminal {
  VertexId vertex{kInvalidVertex};
  double weight{0.0};  ///< delay weight w(t); criticality from Lagrangean relaxation
};

struct CostDistanceInstance {
  const Graph* graph{nullptr};
  const std::vector<double>* cost{nullptr};   ///< c(e), congestion cost
  const std::vector<double>* delay{nullptr};  ///< d(e), linear delay
  /// Optional SoA arc plane of the same (cost, delay) attributes over the
  /// same graph. When set, the solver's relax loop scans it with the
  /// blocked, branch-light kernel; when null it gathers per-edge. Results
  /// are bit-identical either way. Windows provide this for free; standalone
  /// callers can build one with ArcCostView(graph, cost, delay).
  const ArcCostView* arc_costs{nullptr};
  VertexId root{kInvalidVertex};
  std::vector<Terminal> sinks;
  double dbif{0.0};  ///< total bifurcation delay penalty per branching
  double eta{0.5};   ///< penalty split freedom, 0 <= eta <= 1/2

  std::size_t num_terminals() const { return sinks.size() + 1; }

  double total_sink_weight() const {
    double w = 0.0;
    for (const Terminal& t : sinks) w += t.weight;
    return w;
  }

  void validate() const {
    CDST_CHECK(graph != nullptr && cost != nullptr && delay != nullptr);
    CDST_CHECK(cost->size() == graph->num_edges());
    CDST_CHECK(delay->size() == graph->num_edges());
    if (arc_costs != nullptr) {
      CDST_CHECK_MSG(arc_costs->graph() == graph,
                     "arc_costs plane built over a different graph");
      CDST_CHECK(arc_costs->edge_cost().size() == graph->num_edges());
    }
    CDST_CHECK(root < graph->num_vertices());
    CDST_CHECK_MSG(!sinks.empty(), "instance needs at least one sink");
    CDST_CHECK(eta >= 0.0 && eta <= 0.5);
    CDST_CHECK(dbif >= 0.0);
    for (const Terminal& t : sinks) {
      CDST_CHECK(t.vertex < graph->num_vertices());
      CDST_CHECK(t.weight >= 0.0);
    }
  }
};

/// beta(w, w') — the minimum possible weighted delay penalty when merging two
/// components with delay weights w and w' (paper Section II): the heavier
/// side receives the small share eta, the lighter side (1 - eta).
inline double bifurcation_beta(double w1, double w2, double dbif, double eta) {
  return dbif * (eta * std::max(w1, w2) + (1.0 - eta) * std::min(w1, w2));
}

/// Optimal penalty share lambda_x for the branch with subtree weight wx when
/// the sibling subtree weighs wy (Eq. (2)).
inline double optimal_lambda(double wx, double wy, double eta) {
  if (wx > wy) return eta;
  if (wx < wy) return 1.0 - eta;
  return 0.5;
}

}  // namespace cdst
