/// \file cost_distance.h
/// The fast cost-distance Steiner tree approximation algorithm (Algorithm 1)
/// with the practical enhancements of Section III.
///
/// The algorithm merges components Kruskal-style: every active component runs
/// a Dijkstra search under its own metric l_u(e) = c(e) + w(u) * d(e); when a
/// search permanently labels a vertex of another component, a completion
/// label keyed by dist + b(u, v) (the optimally balanced bifurcation penalty)
/// enters the queue, and the globally cheapest completion determines the pair
/// minimizing L(u, v) of Eq. (5). Merged components continue as a single
/// component whose Steiner vertex is placed randomly proportional to delay
/// weights (line 7) or by the future-cost guided rule of Section III-D.
///
/// Expected approximation factor: O(log t) (Theorem 6); running time
/// O(t (n log n + m)) (Theorem 1).

#pragma once

#include <cstdint>

#include "core/future_oracle.h"
#include "core/instance.h"
#include "core/objective.h"
#include "core/steiner_tree.h"

namespace cdst {

/// Priority-queue organization for the simultaneous searches.
enum class QueueKind : std::uint8_t {
  /// Section III-B: one binary heap per active search plus a top-level heap
  /// over the per-search minima (the paper's structure; default).
  kTwoLevel,
  /// A single global binary heap with lazy deletion; the classic baseline
  /// the two-level structure is measured against (see the ablation bench).
  kSingleLazy,
};

struct SolverOptions {
  /// III-A: travel own-component tree edges at zero connection cost.
  bool discount_components{true};
  /// III-C: goal-oriented (A*) search with admissible future costs.
  /// Requires `future_cost`; silently disabled otherwise.
  bool use_astar{true};
  /// III-D: place the new Steiner vertex on the connection path at the
  /// future-cost-optimal point instead of a random terminal position.
  /// Requires `future_cost`; falls back to the random rule otherwise.
  bool better_steiner_placement{true};
  /// III-E: discount root-connection penalties by eta * dbif * w(u).
  bool encourage_root{true};
  /// Validate the produced tree structure against the graph (cheap; on by
  /// default).
  bool validate_result{true};
  /// Recycle per-search label arenas and vertex index arrays across the ~2t
  /// searches of a solve (epoch-versioned O(1) resets) instead of allocating
  /// fresh state per search. Identical results either way; off only for the
  /// allocation-cost ablation (see ablation_enhancements).
  bool pool_search_state{true};
  /// Memory budget for the dense per-search vertex index arrays (t+1 live
  /// searches x n vertices). Above it, searches fall back to sparse hash
  /// indexes with O(touched-labels) memory — slower per lookup and without
  /// the future-bound memo, but identical results (the windowed router
  /// oracles always fit; huge standalone instances may not).
  std::size_t dense_state_budget_bytes{512u << 20};

  /// III-B: heap organization of the label queues.
  QueueKind queue{QueueKind::kTwoLevel};

  /// Geometry-aware lower bounds; also provides plane positions for A*
  /// targets. May be nullptr for generic graphs.
  const FutureCostOracle* future_cost{nullptr};

  std::uint64_t seed{1};
};

struct SolveStats {
  std::size_t iterations{0};        ///< number of merges performed
  std::size_t labels_settled{0};    ///< permanent Dijkstra labels
  std::size_t labels_relaxed{0};    ///< label improvements pushed
  std::size_t completions_popped{0};
  std::size_t completions_stale{0};
};

struct SolveResult {
  SteinerTree tree;
  TreeEvaluation eval;
  SolveStats stats;
};

/// Runs Algorithm 1 on the instance. Deterministic given options.seed.
SolveResult solve_cost_distance(const CostDistanceInstance& instance,
                                const SolverOptions& options = {});

}  // namespace cdst
