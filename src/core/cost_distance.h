/// \file cost_distance.h
/// The fast cost-distance Steiner tree approximation algorithm (Algorithm 1)
/// with the practical enhancements of Section III.
///
/// The algorithm merges components Kruskal-style: every active component runs
/// a Dijkstra search under its own metric l_u(e) = c(e) + w(u) * d(e); when a
/// search permanently labels a vertex of another component, a completion
/// label keyed by dist + b(u, v) (the optimally balanced bifurcation penalty)
/// enters the queue, and the globally cheapest completion determines the pair
/// minimizing L(u, v) of Eq. (5). Merged components continue as a single
/// component whose Steiner vertex is placed randomly proportional to delay
/// weights (line 7) or by the future-cost guided rule of Section III-D.
///
/// Expected approximation factor: O(log t) (Theorem 6); running time
/// O(t (n log n + m)) (Theorem 1).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>

#include "core/future_oracle.h"
#include "core/instance.h"
#include "core/objective.h"
#include "core/steiner_tree.h"
#include "util/assert.h"

namespace cdst {

/// Shared memory budget for the dense per-search vertex index arrays,
/// drawn on by every solve that runs against it. One atomic pool serves all
/// concurrent solve lanes of a session (CdSolver::solve_batch, the router's
/// per-net oracles): each solve reserves its dense-state footprint up front
/// and releases it when the solve unwinds, so N parallel lanes can never
/// commit N times the budget the way independent per-lane budgeting did.
/// A failed reservation falls back to sparse search state — slower, but
/// bit-identical results (dense/sparse state never changes any output).
class DenseStateBudget {
 public:
  explicit DenseStateBudget(std::size_t bytes)
      : initial_(static_cast<std::int64_t>(bytes)),
        remaining_(static_cast<std::int64_t>(bytes)),
        low_water_(static_cast<std::int64_t>(bytes)) {}

  // Movable so session objects holding one stay movable; only valid while
  // no reservation is in flight (sessions never move mid-batch).
  DenseStateBudget(DenseStateBudget&& other) noexcept
      : initial_(other.initial_.load(std::memory_order_relaxed)),
        remaining_(other.remaining_.load(std::memory_order_relaxed)),
        low_water_(other.low_water_.load(std::memory_order_relaxed)) {}
  DenseStateBudget& operator=(DenseStateBudget&& other) noexcept {
    initial_.store(other.initial_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    remaining_.store(other.remaining_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    low_water_.store(other.low_water_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }

  /// Reserves `bytes` if the pool still holds that much; false otherwise.
  ///
  /// Memory ordering: the read-modify-writes publish with release and the
  /// loads acquire, so any thread that synchronizes with a lane (a stream
  /// delivering that lane's result, a batch joining its barrier) observes
  /// the lane's complete accounting — with fully relaxed RMWs a monitoring
  /// thread could see `remaining` drop without the low-water mark that drop
  /// implies, transiently understating peak_reserved_bytes() against the
  /// bound the backpressure tests assert. The low-water mark itself is
  /// exact, not sampled: every successful CAS knows the true remaining
  /// level at its own instant (`cur - want`), release() only raises the
  /// level, so the minimum over those post-CAS values is the true minimum.
  bool try_reserve(std::size_t bytes) {
    const auto want = static_cast<std::int64_t>(bytes);
    std::int64_t cur = remaining_.load(std::memory_order_acquire);
    while (cur >= want) {
      if (remaining_.compare_exchange_weak(cur, cur - want,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        std::int64_t low = low_water_.load(std::memory_order_acquire);
        while (cur - want < low &&
               !low_water_.compare_exchange_weak(low, cur - want,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire)) {
        }
        return true;
      }
    }
    return false;
  }

  void release(std::size_t bytes) {
    // Release so the reservation's whole accounting history is visible to
    // whoever acquires this level (see try_reserve's ordering note).
    remaining_.fetch_add(static_cast<std::int64_t>(bytes),
                         std::memory_order_acq_rel);
  }

  /// Re-initializes the pool size (and clears the high-water mark). Only
  /// valid while no reservation is in flight (the session APIs call it
  /// strictly between runs); `initial_` is atomic anyway so a monitoring
  /// thread reading peak_reserved_bytes() during a reset sees a stale value
  /// rather than a torn one.
  void reset(std::size_t bytes) {
    const auto size = static_cast<std::int64_t>(bytes);
    initial_.store(size, std::memory_order_relaxed);
    remaining_.store(size, std::memory_order_release);
    low_water_.store(size, std::memory_order_release);
  }

  std::int64_t remaining_bytes() const {
    return remaining_.load(std::memory_order_acquire);
  }

  /// Total pool size (the reset()/construction value). A footprint above
  /// this can never be reserved, no matter how long a lane waits.
  std::int64_t capacity_bytes() const {
    return initial_.load(std::memory_order_relaxed);
  }

  /// Largest number of bytes ever reserved concurrently since construction
  /// or the last reset(). The observable half of the backpressure contract:
  /// a SolveStream with window W over solves of footprint F never drives
  /// this past W * F.
  std::int64_t peak_reserved_bytes() const {
    return initial_.load(std::memory_order_relaxed) -
           low_water_.load(std::memory_order_acquire);
  }

 private:
  /// Pool size; written only at construction/reset, but atomic so
  /// monitoring reads never race a reset.
  std::atomic<std::int64_t> initial_;
  std::atomic<std::int64_t> remaining_;
  std::atomic<std::int64_t> low_water_;  ///< min remaining ever observed
};

/// How a backed-off reservation attempt ended.
enum class BudgetReserve : std::uint8_t {
  kReserved,   ///< bytes reserved; release() them when done
  kContended,  ///< the pool could hold it, but other lanes do right now
  kOversized,  ///< the footprint exceeds the whole pool; waiting cannot help
};

/// try_reserve with bounded exponential backoff: on contention the caller
/// sleeps 50us, 100us, ... (up to `attempts` sleeps) and retries, because a
/// briefly-drained pool usually refills within one solve — a dense retry
/// beats an immediate sparse fallback. An oversized footprint returns
/// immediately (no sleeping): only the caller can decide whether that is a
/// degradation (sparse fallback, the default) or a kResourceExhausted
/// failure (SolverOptions::strict_shared_budget).
BudgetReserve reserve_with_backoff(DenseStateBudget& budget,
                                   std::size_t bytes, int attempts);

/// Priority-queue organization for the simultaneous searches.
enum class QueueKind : std::uint8_t {
  /// Section III-B: one binary heap per active search plus a top-level heap
  /// over the per-search minima (the paper's structure; default).
  kTwoLevel,
  /// A single global binary heap with lazy deletion; the classic baseline
  /// the two-level structure is measured against (see the ablation bench).
  kSingleLazy,
};

struct SolverOptions {
  /// III-A: travel own-component tree edges at zero connection cost.
  bool discount_components{true};
  /// III-C: goal-oriented (A*) search with admissible future costs.
  /// Requires `future_cost`; silently disabled otherwise.
  bool use_astar{true};
  /// III-D: place the new Steiner vertex on the connection path at the
  /// future-cost-optimal point instead of a random terminal position.
  /// Requires `future_cost`; falls back to the random rule otherwise.
  bool better_steiner_placement{true};
  /// III-E: discount root-connection penalties by eta * dbif * w(u).
  bool encourage_root{true};
  /// Validate the produced tree structure against the graph (cheap; on by
  /// default).
  bool validate_result{true};
  /// Recycle per-search label arenas and vertex index arrays across the ~2t
  /// searches of a solve (epoch-versioned O(1) resets) instead of allocating
  /// fresh state per search. Identical results either way; off only for the
  /// allocation-cost ablation (see ablation_enhancements).
  bool pool_search_state{true};
  /// Memory budget for the dense per-search vertex index arrays (t+1 live
  /// searches x n vertices). Above it, searches fall back to sparse hash
  /// indexes with O(touched-labels) memory — slower per lookup and without
  /// the future-bound memo, but identical results (the windowed router
  /// oracles always fit; huge standalone instances may not).
  std::size_t dense_state_budget_bytes{512u << 20};
  /// When set, dense-state memory is reserved from this shared atomic pool
  /// instead of each solve budgeting independently against
  /// dense_state_budget_bytes — the session APIs point every concurrent
  /// batch lane at one pool sized from that member. The reservation is
  /// released when the solve finishes (or unwinds). Borrowed; must outlive
  /// the solve. Whether a solve lands dense or sparse never changes its
  /// result, so racing lanes stay deterministic.
  DenseStateBudget* shared_dense_budget{nullptr};
  /// Bounded exponential backoff (50us doubling) before giving up on a
  /// contended shared reservation; 0 disables waiting. Only meaningful with
  /// shared_dense_budget set. See reserve_with_backoff.
  int budget_backoff_attempts{6};
  /// When true, a dense-state footprint larger than the WHOLE shared pool
  /// fails the solve with BudgetExhausted (mapped to kResourceExhausted at
  /// the api boundary) instead of silently degrading to sparse state. Off
  /// by default: the sparse fallback is bit-identical, just slower, and the
  /// session APIs rely on it.
  bool strict_shared_budget{false};

  /// III-B: heap organization of the label queues.
  QueueKind queue{QueueKind::kTwoLevel};

  /// Geometry-aware lower bounds; also provides plane positions for A*
  /// targets. May be nullptr for generic graphs.
  const FutureCostOracle* future_cost{nullptr};

  std::uint64_t seed{1};
};

struct SolveStats {
  std::size_t iterations{0};        ///< number of merges performed
  std::size_t labels_settled{0};    ///< permanent Dijkstra labels
  std::size_t labels_relaxed{0};    ///< label improvements pushed
  std::size_t completions_popped{0};
  std::size_t completions_stale{0};
};

struct SolveResult {
  SteinerTree tree;
  TreeEvaluation eval;
  SolveStats stats;
};

/// Recyclable solver workspace: the search-state pool (label arenas + dense
/// vertex index arrays), ownership maps, component tables and path scratch of
/// one solve, kept allocated between solves. A session (`CdSolver`) holds one
/// SolverScratch per concurrent solve lane, so the production pattern of
/// millions of oracle calls stops churning the allocator entirely.
///
/// Scratch contents never influence results: a solve against a recycled
/// scratch is bit-identical to one against a fresh scratch (asserted by the
/// pooled-state determinism tests). Not thread-safe — one scratch serves one
/// solve at a time.
class SolverScratch {
 public:
  SolverScratch();
  ~SolverScratch();
  SolverScratch(SolverScratch&&) noexcept;
  SolverScratch& operator=(SolverScratch&&) noexcept;

  struct Impl;  ///< defined in cost_distance.cpp
  Impl& impl() { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

/// Thrown by the solver when SolveControls::cancel is observed mid-solve.
/// Internal control flow: the session API (api/cdst.h) converts it into a
/// structured `Status` with code kCancelled before it reaches callers.
class SolveCancelled : public std::runtime_error {
 public:
  SolveCancelled() : std::runtime_error("cost-distance solve cancelled") {}
};

/// Thrown when SolveControls::deadline expires mid-solve. Internal control
/// flow, converted to a kDeadlineExceeded Status at the api boundary —
/// committed state stays coherent, exactly like cancellation.
class SolveDeadlineExceeded : public std::runtime_error {
 public:
  SolveDeadlineExceeded()
      : std::runtime_error("cost-distance solve deadline exceeded") {}
};

/// Thrown when SolverOptions::strict_shared_budget is set and the solve's
/// dense-state footprint exceeds the whole shared pool. Converted to a
/// kResourceExhausted Status at the api boundary.
class BudgetExhausted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One component-merge observation of a running solve — the solver-side
/// event the session layer forwards as EventSink::on_solve_merge. Emitted on
/// the solving thread after every merge; merges_total equals the instance's
/// sink count, so merges_done == merges_total marks the finished tree.
struct MergeTick {
  std::size_t merges_done{0};
  std::size_t merges_total{0};
  std::size_t labels_settled{0};      ///< permanent labels so far
  std::size_t completions_popped{0};  ///< completion labels popped so far
};

/// Cooperative execution controls for a long-running solve. All members are
/// optional; a null/empty member disables the corresponding hook.
struct SolveControls {
  /// Checked every `cancel_poll_interval` queue pops (and once up front);
  /// when set, the solve unwinds by throwing SolveCancelled.
  const std::atomic<bool>* cancel{nullptr};
  /// Monotonic deadline, polled at the same cadence as `cancel`; expiry
  /// unwinds the solve by throwing SolveDeadlineExceeded.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Invoked after every component merge. Called on the solving thread.
  std::function<void(const MergeTick&)> on_merge;
  std::uint32_t cancel_poll_interval{4096};
};

/// True iff `controls` carries a deadline that has passed. Null controls or
/// an unset deadline never expire.
inline bool deadline_expired(const SolveControls* controls) {
  return controls != nullptr && controls->deadline.has_value() &&
         std::chrono::steady_clock::now() >= *controls->deadline;
}

/// The one origin of the deadline unwind: throws SolveDeadlineExceeded iff
/// the deadline passed. Gives api-layer code a throw-free spelling of the
/// check (the Status discipline bans literal `throw` under src/api/).
inline void throw_if_deadline_expired(const SolveControls* controls) {
  if (deadline_expired(controls)) throw SolveDeadlineExceeded();
}

/// Runs Algorithm 1 on the instance. Deterministic given options.seed,
/// independent of the (optional) scratch's history. Pass a SolverScratch to
/// recycle allocations across solves and a SolveControls for progress /
/// cancellation; either may be null.
SolveResult solve_cost_distance(const CostDistanceInstance& instance,
                                const SolverOptions& options,
                                SolverScratch* scratch,
                                const SolveControls* controls = nullptr);

/// One-shot legacy entry: allocates and throws away all solver state.
CDST_DEPRECATED(
    "use cdst::CdSolver (api/cdst.h) or the SolverScratch-aware overload")
SolveResult solve_cost_distance(const CostDistanceInstance& instance,
                                const SolverOptions& options = {});

}  // namespace cdst
