#include "core/cost_distance.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <thread>

#include "geom/nearest.h"
#include "geom/rect.h"
#include "graph/dijkstra.h"
#include "util/d_ary_heap.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/prefetch.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/sparse_map.h"
#include "util/two_level_heap.h"

namespace cdst {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kNoComp = 0xffffffffu;
/// relax_to sentinel: relaxation rejected, no heap push owed.
constexpr std::uint32_t kNoPush = 0xffffffffu;

struct Label {
  VertexId vertex{kInvalidVertex};
  double g{kInf};
  std::uint32_t parent_idx{0xffffffffu};  ///< label arena index of predecessor
  EdgeId parent_edge{kInvalidEdge};
  std::uint32_t depth{0};  ///< #edges on the parent chain back to the seed
  bool settled{false};
  bool completion_pushed{false};
};

/// Reusable per-search scratch: a label arena plus a vertex -> label index.
/// In dense mode the index is an epoch-versioned flat array — resetting for
/// a new search is O(1): bump the epoch, clear the arena (capacity
/// retained) — so the ~2t searches of a t-sink solve stop churning the
/// allocator entirely. Dense arrays cost O(n) per live state and up to t+1
/// states are live at once, so above a memory budget the pool falls back to
/// a sparse (hash) index with O(touched) memory — exactly the pre-pool
/// trade-off, still recycling capacity across searches.
struct SearchState {
  std::vector<Label> labels;  ///< arena; heap entries reference slots

  /// Starts a fresh search over a graph with n vertices.
  void reset(std::size_t n, bool dense) {
    labels.clear();
    dense_ = dense;
    if (!dense_) {
      sparse_.clear();
      return;
    }
    if (slots_.size() != n) {
      slots_.assign(n, VersionedSlot{});
      epoch_ = 1;
    } else if (++epoch_ == 0) {  // u16 wrap: invalidate all stamps the slow way
      std::fill(slots_.begin(), slots_.end(), VersionedSlot{});
      epoch_ = 1;
    }
  }

  /// Mutable slot for vertex v: label arena index + 1, 0 if unlabelled.
  std::uint32_t& slot(VertexId v) {
    if (!dense_) return sparse_[v];
    VersionedSlot& s = slots_[v];
    if (s.stamp != epoch_) {
      s.stamp = epoch_;
      s.idx = 0;
    }
    return s.idx;
  }

  /// Prefetch hint for a vertex about to be slot()-ed: the dense slot array
  /// is the relax loop's only data-dependent load, so warming it while the
  /// strip arithmetic runs hides most of the miss.
  void prefetch_slot(VertexId v) const {
    if (dense_) prefetch_write(&slots_[v]);
  }

  /// Future-bound memo, versioned by the solver's merge generation. The
  /// bound h(comp, x) is a function of the component (fixed for a state's
  /// lifetime — states are only recycled across a generation bump) and the
  /// set of active targets, which mutates exactly at merges; so a hit
  /// returns bit-identically what a recompute would. This matters: the
  /// nearest-neighbor query inside the bound dominates solve time (~86% of
  /// the profile before memoization), and every settle re-derives the bound
  /// for each neighbor it relaxes. Sparse mode skips the memo (a miss only
  /// costs the recompute the dense memo would have avoided — results are
  /// identical either way).
  bool h_cached(VertexId v, std::uint32_t gen, double* h) const {
    if (!dense_) return false;
    const VersionedSlot& s = slots_[v];
    if (s.h_stamp != static_cast<std::uint16_t>(gen)) return false;
    *h = s.h;
    return true;
  }
  void store_h(VertexId v, std::uint32_t gen, double h) {
    if (!dense_) return;
    slots_[v].h_stamp = static_cast<std::uint16_t>(gen);
    slots_[v].h = h;
  }

  std::uint32_t pool_idx{0};  ///< position in SearchStatePool::all_

  static constexpr std::size_t slot_bytes() { return sizeof(VersionedSlot); }

 private:
  /// 16 bytes so four slots share a cache line: the relax loop's slot loads
  /// are the solver's dominant memory traffic, and grid graphs give same-row
  /// neighbours adjacent vertex ids — with 16-byte slots those land on the
  /// line the settled vertex already pulled (the 24-byte layout left them
  /// straddling lines). Keeping the memo value inside the slot matters the
  /// same way: a validated hit reads h off the line the probe just warmed.
  /// The u16 stamps are safe: the search epoch wraps inside reset() (full
  /// clear), and the solver fences the merge generation below 2^16
  /// (drop_all at solve setup), so a truncated comparison can never alias a
  /// stale stamp.
  struct VersionedSlot {
    std::uint16_t stamp{0};    ///< valid iff equal to the owner's epoch
    std::uint16_t h_stamp{0};  ///< valid iff equal to the solver's merge gen
    std::uint32_t idx{0};
    double h{0.0};
  };
  static_assert(sizeof(VersionedSlot) == 16);
  std::vector<VersionedSlot> slots_;
  SparseMap<std::uint32_t> sparse_;  ///< vertex -> index + 1 (sparse mode)
  std::uint16_t epoch_{0};
  bool dense_{true};
};

/// Pool of SearchStates. At most #active-components states are live at once,
/// so the pool's high-water mark is t+1 states even though ~2t searches are
/// seeded over a solve. Unpooled mode (the ablation) allocates and frees a
/// fresh state per search, reproducing the pre-pool behavior. The pool
/// itself lives in a SolverScratch, so the arenas survive across solves.
class SearchStatePool {
 public:
  SearchStatePool() = default;

  /// Prepares the pool for one solve. Dense per-state index arrays cost
  /// (t+1) * n slot entries across the pool's high-water mark; the caller
  /// decides `dense` from its budget (per-solve bytes or the shared
  /// DenseStateBudget pool) — sparse states cost O(touched) memory and skip
  /// the future-bound memo, with identical results. Reclaims every state
  /// allocated by earlier solves — including states left un-released when a
  /// cancellation unwound a solve mid-flight.
  void configure(std::size_t num_vertices, bool pooled, bool dense) {
    n_ = num_vertices;
    pooled_ = pooled;
    dense_ = dense;
    free_.clear();
    free_.reserve(all_.size());
    for (const auto& st : all_) free_.push_back(st.get());
  }

  /// Drops every retained state (h-generation wrap fence; see solve setup).
  void drop_all() {
    all_.clear();
    free_.clear();
  }

  SearchState* acquire() {
    if (pooled_ && !free_.empty()) {
      SearchState* st = free_.back();
      free_.pop_back();
      st->reset(n_, dense_);
      return st;
    }
    all_.push_back(std::make_unique<SearchState>());
    SearchState* st = all_.back().get();
    st->pool_idx = static_cast<std::uint32_t>(all_.size() - 1);
    st->reset(n_, dense_);
    return st;
  }

  void release(SearchState* st) {
    if (pooled_) {
      free_.push_back(st);
      return;
    }
    const std::uint32_t i = st->pool_idx;
    all_[i] = std::move(all_.back());
    all_[i]->pool_idx = i;
    all_.pop_back();
  }

 private:
  std::size_t n_{0};
  bool pooled_{true};
  bool dense_{true};
  std::vector<std::unique_ptr<SearchState>> all_;
  std::vector<SearchState*> free_;
};

/// One Dijkstra search (one per active sink component).
struct Search {
  SearchState* state{nullptr};  ///< owned by the pool; null when inactive
  bool active{false};
};

struct Component {
  double weight{0.0};
  VertexId terminal{kInvalidVertex};
  TreeAssembler::NodeId node{TreeAssembler::kNoNode};
  bool is_root{false};
  bool active{false};
  /// Whether the component's embedded tree is still a single vertex; only
  /// then is the congestion part of the future cost admissible under the
  /// component discount (Section III-C feasibility note).
  bool singleton{true};
};

/// Priority-queue facade: the paper's two-level structure (III-B) or a
/// single lazy binary heap for the ablation. Lazy mode pushes duplicates and
/// relies on the solver's settled/stale checks to skip superseded entries,
/// which is exactly how single-heap Dijkstra implementations work.
class SolverQueue {
 public:
  struct Min {
    std::uint32_t group;
    std::uint32_t entry;
    double key;
  };

  explicit SolverQueue(QueueKind kind) : kind_(kind) {}

  bool empty() const {
    return kind_ == QueueKind::kTwoLevel ? two_level_.empty() : lazy_.empty();
  }

  void push_or_decrease(std::uint32_t group, std::uint32_t entry, double key) {
    if (kind_ == QueueKind::kTwoLevel) {
      two_level_.push_or_decrease(group, entry, key);
    } else {
      lazy_.push(LazyEntry{key, group, entry});
    }
  }

  Min pop_global_min() {
    if (kind_ == QueueKind::kTwoLevel) {
      const auto m = two_level_.pop_global_min();
      return Min{m.group, m.entry, m.key};
    }
    const LazyEntry e = lazy_.top();
    lazy_.pop();
    return Min{e.group, e.entry, e.key};
  }

  /// Peeks the global minimum without popping. Precondition: !empty().
  Min peek_global_min() const {
    if (kind_ == QueueKind::kTwoLevel) {
      const auto m = two_level_.global_min();
      return Min{m.group, m.entry, m.key};
    }
    const LazyEntry& e = lazy_.top();
    return Min{e.group, e.entry, e.key};
  }

  /// Two-level mode drops a deactivated search's entries eagerly; lazy mode
  /// leaves them to be skipped at pop time.
  void erase_group(std::uint32_t group) {
    if (kind_ == QueueKind::kTwoLevel) two_level_.erase_group(group);
  }

 private:
  struct LazyEntry {
    double key;
    std::uint32_t group;
    std::uint32_t entry;
    bool operator<(const LazyEntry& o) const { return key < o.key; }
  };

  QueueKind kind_;
  TwoLevelHeap<double> two_level_;
  DAryQueue<LazyEntry, 4> lazy_;
};

}  // namespace

/// The recycled allocations behind a SolverScratch. Defined here (and only
/// here) because the members are internal solver machinery; the header hands
/// out an opaque handle. One Impl serves one solve at a time.
struct SolverScratch::Impl {
  SearchStatePool state_pool;
  std::vector<Component> comps;
  std::vector<std::uint32_t> dsu_parent;
  std::vector<Search> searches;
  SparseMap<std::uint32_t> vertex_owner;
  SparseMap<std::uint32_t> edge_owner;
  /// Dense pre-filter in front of edge_owner: bit e set iff edge_owner has
  /// an entry for e. Most relaxed arcs are unowned, so the relax loop's
  /// III-A discount check becomes one bit test instead of a hash probe.
  std::vector<std::uint64_t> edge_owned_bits;
  std::vector<VertexId> path_verts;
  std::vector<EdgeId> path_edges;
  /// Future-bound memo generation, monotonic across the scratch's lifetime
  /// so recycled SearchStates can never leak h-values between solves.
  std::uint32_t h_gen{0};
};

SolverScratch::SolverScratch() : impl_(std::make_unique<Impl>()) {}
SolverScratch::~SolverScratch() = default;
SolverScratch::SolverScratch(SolverScratch&&) noexcept = default;
SolverScratch& SolverScratch::operator=(SolverScratch&&) noexcept = default;

BudgetReserve reserve_with_backoff(DenseStateBudget& budget,
                                   std::size_t bytes, int attempts) {
  if (budget.try_reserve(bytes)) return BudgetReserve::kReserved;
  if (static_cast<std::int64_t>(bytes) > budget.capacity_bytes()) {
    // No sleeping: the pool can never hold this footprint, so backoff would
    // only delay the caller's fallback (or failure) decision.
    return BudgetReserve::kOversized;
  }
  std::chrono::microseconds delay{50};
  for (int attempt = 0; attempt < attempts; ++attempt) {
    std::this_thread::sleep_for(delay);
    if (budget.try_reserve(bytes)) return BudgetReserve::kReserved;
    delay *= 2;
  }
  return BudgetReserve::kContended;
}

namespace {

class Solver {
 public:
  Solver(const CostDistanceInstance& inst, const SolverOptions& opts,
         SolverScratch::Impl& scratch, const SolveControls* controls)
      : inst_(inst),
        opts_(opts),
        g_(*inst.graph),
        c_(*inst.cost),
        d_(*inst.delay),
        plane_(inst.arc_costs),
        assembler_(*inst.graph),
        heap_(opts.queue),
        scratch_(scratch),
        state_pool_(scratch.state_pool),
        comps_(scratch.comps),
        dsu_parent_(scratch.dsu_parent),
        searches_(scratch.searches),
        vertex_owner_(scratch.vertex_owner),
        edge_owner_(scratch.edge_owner),
        edge_owned_bits_(scratch.edge_owned_bits),
        path_verts_(scratch.path_verts),
        path_edges_(scratch.path_edges),
        controls_(controls),
        rng_(opts.seed) {
    astar_on_ = opts_.use_astar && opts_.future_cost != nullptr;
    place_on_ = opts_.better_steiner_placement && opts_.future_cost != nullptr;
    // SoA geometry plane for inline bound evaluation (bit-identical to the
    // virtual path; only offered by oracles whose bounds are pure geometry).
    if (astar_on_ || place_on_) pb_ = opts_.future_cost->plane_bounds();
  }

  ~Solver() {
    // Shared-budget reservation unwinds with the solve, cancelled or not.
    if (budget_reserved_ > 0) {
      opts_.shared_dense_budget->release(budget_reserved_);
    }
  }

  SolveResult run() {
    init();
    const std::atomic<bool>* cancel =
        controls_ != nullptr ? controls_->cancel : nullptr;
    const bool deadline_set =
        controls_ != nullptr && controls_->deadline.has_value();
    const std::uint32_t poll =
        controls_ != nullptr && controls_->cancel_poll_interval > 0
            ? controls_->cancel_poll_interval
            : 4096;
    // First pop checks immediately (a pre-cancelled token or an
    // already-expired deadline must not pay for even one search), then
    // every `poll` pops.
    std::uint32_t since_poll = poll - 1;
    while (remaining_ > 0) {
      if ((cancel != nullptr || deadline_set) && ++since_poll >= poll) {
        since_poll = 0;
        if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
          throw SolveCancelled();
        }
        if (deadline_set) throw_if_deadline_expired(controls_);
      }
      CDST_CHECK_MSG(!heap_.empty(),
                     "cost-distance: terminals are not connected in the graph");
      const auto top = heap_.pop_global_min();
      // Software-pipeline the pop loop: the new global minimum is (almost
      // always) the next label processed, and its Label line is a data-
      // dependent load the hardware prefetcher cannot see until the next
      // iteration begins. Warming it here overlaps the fetch with this
      // iteration's settle; when the settle pushes a new minimum instead,
      // the only cost is one speculatively-warmed line.
      if (!heap_.empty()) {
        const auto nxt = heap_.peek_global_min();
        if (nxt.group < searches_.size() && searches_[nxt.group].active) {
          prefetch_read(searches_[nxt.group].state->labels.data() +
                        (nxt.entry >> 1));
        }
      }
      const std::uint32_t u = top.group;
      if (u >= searches_.size() || !searches_[u].active) continue;
      const std::uint32_t label_idx = top.entry >> 1;
      if ((top.entry & 1u) != 0) {
        handle_completion(u, label_idx, top.key);
      } else {
        settle_and_relax(u, label_idx);
      }
    }

    SolveResult result;
    result.tree = assembler_.finalize();
    if (opts_.validate_result) {
      result.tree.validate(g_, inst_.sinks.size());
    }
    result.eval = evaluate_tree(result.tree, inst_);
    result.stats = stats_;
    return result;
  }

 private:
  // ---------------------------------------------------------------- setup --
  void init() {
    inst_.validate();
    const auto t = static_cast<std::uint32_t>(inst_.sinks.size());

    // Dense-state footprint of this solve: t+1 live searches x n vertices.
    // Against a shared budget pool the bytes are reserved up front (and
    // released by ~Solver) with bounded backoff on contention; standalone
    // solves compare against the per-solve byte budget. Either way a denial
    // degrades to sparse state with identical results — unless the caller
    // opted into strict_shared_budget, where an oversized footprint (one no
    // amount of waiting can satisfy) fails the solve outright.
    const std::size_t dense_bytes =
        (static_cast<std::size_t>(t) + 1) * g_.num_vertices() *
        SearchState::slot_bytes();
    bool dense;
    if (opts_.shared_dense_budget != nullptr) {
      CDST_FAULT_POINT("solver.budget_reserve");
      const BudgetReserve r = reserve_with_backoff(
          *opts_.shared_dense_budget, dense_bytes,
          opts_.budget_backoff_attempts);
      dense = r == BudgetReserve::kReserved;
      if (dense) budget_reserved_ = dense_bytes;
      if (r == BudgetReserve::kOversized && opts_.strict_shared_budget) {
        throw BudgetExhausted(
            "dense-state footprint of " + std::to_string(dense_bytes) +
            " bytes exceeds the whole shared budget of " +
            std::to_string(opts_.shared_dense_budget->capacity_bytes()) +
            " bytes");
      }
    } else {
      dense = dense_bytes <= opts_.dense_state_budget_bytes;
    }

    // Recycled scratch: O(1)-ish resets that keep every allocation. The
    // h-generation is monotonic across solves so recycled states cannot leak
    // memoized bounds; slots store it truncated to u16, so before it could
    // reach the 16-bit wrap the retained states are dropped wholesale (fresh
    // states start at stamp 0) and it restarts — the 2^15 generations of
    // headroom left to the fence cover far more merges (one per sink) than
    // any single solve performs.
    state_pool_.configure(g_.num_vertices(), opts_.pool_search_state, dense);
    if (scratch_.h_gen >= 0x8000u) {
      state_pool_.drop_all();
      scratch_.h_gen = 0;
    }
    ++scratch_.h_gen;
    comps_.clear();
    dsu_parent_.clear();
    searches_.clear();
    vertex_owner_.clear();
    edge_owner_.clear();
    edge_owned_bits_.assign((g_.num_edges() + 63) / 64, 0);

    assembler_.add_root(inst_.root);  // node 0
    comps_.resize(t + 1);
    dsu_parent_.resize(t + 1);
    for (std::uint32_t i = 0; i < t; ++i) {
      const Terminal& s = inst_.sinks[i];
      const TreeAssembler::NodeId node =
          assembler_.add_sink(s.vertex, static_cast<std::int32_t>(i));
      comps_[i] = Component{s.weight, s.vertex, node, false, true, true};
      dsu_parent_[i] = i;
      active_sink_weight_ += s.weight;
    }
    root_comp_ = t;
    comps_[t] = Component{0.0, inst_.root, 0, true, true, true};
    dsu_parent_[t] = t;

    // Terminal ownership; the root registers last so that a sink placed on
    // the root vertex immediately sees the root as a merge target.
    for (std::uint32_t i = 0; i < t; ++i) {
      vertex_owner_[inst_.sinks[i].vertex] = i;
    }
    vertex_owner_[inst_.root] = root_comp_;

    if (astar_on_) {
      fc_min_unit_cost_ = opts_.future_cost->min_unit_cost();
      fc_min_unit_delay_ = opts_.future_cost->min_unit_delay();
      nn_ = std::make_unique<L1NearestNeighbor>(nn_bucket_size());
      for (std::uint32_t i = 0; i <= t; ++i) {
        nn_->insert(i, xy_of(comps_[i].terminal));
      }
    }

    searches_.resize(t + 1);
    for (std::uint32_t i = 0; i < t; ++i) seed_search(i);
    remaining_ = t;
  }

  std::int32_t nn_bucket_size() const {
    // Bucket side on the order of expected terminal spacing.
    Rect box;
    box.expand(xy_of(inst_.root));
    for (const Terminal& s : inst_.sinks) box.expand(xy_of(s.vertex));
    const double area = static_cast<double>(
        std::max<std::int64_t>(1, box.width() * box.height()));
    const double spacing =
        std::sqrt(area / static_cast<double>(inst_.sinks.size() + 1));
    return std::max<std::int32_t>(2, static_cast<std::int32_t>(spacing));
  }

  Point2 xy_of(VertexId v) const {
    return pb_.valid() ? pb_.xy(v) : opts_.future_cost->xy(v);
  }

  // ------------------------------------------------------------ ownership --
  std::uint32_t resolve(std::uint32_t comp) {
    while (dsu_parent_[comp] != comp) {
      dsu_parent_[comp] = dsu_parent_[dsu_parent_[comp]];
      comp = dsu_parent_[comp];
    }
    return comp;
  }

  std::uint32_t owner_of(VertexId v) {
    const std::uint32_t* p = vertex_owner_.find(v);
    return p == nullptr ? kNoComp : resolve(*p);
  }

  bool edge_has_owner(EdgeId e) const {
    return (edge_owned_bits_[e >> 6] >> (e & 63)) & 1u;
  }

  bool edge_discounted(EdgeId e, std::uint32_t comp) {
    if (!opts_.discount_components) return false;
    // Dense bit pre-filter: almost every relaxed arc is unowned, and the
    // bitset answers that without probing the hash map.
    if (!edge_has_owner(e)) return false;
    const std::uint32_t* p = edge_owner_.find(e);
    return p != nullptr && resolve(*p) == comp;
  }

  // --------------------------------------------------------------- search --
  void seed_search(std::uint32_t comp) {
    if (comp >= searches_.size()) searches_.resize(comp + 1);
    Search& s = searches_[comp];
    s.active = true;
    s.state = state_pool_.acquire();
    s.state->labels.push_back(Label{comps_[comp].terminal, 0.0, 0xffffffffu,
                                    kInvalidEdge, 0, false, false});
    s.state->slot(comps_[comp].terminal) = 1;  // arena index 0, stored +1
    heap_.push_or_decrease(comp, 0, future_bound(comp, comps_[comp].terminal));
  }

  void deactivate_search(std::uint32_t comp) {
    if (comp >= searches_.size() || !searches_[comp].active) return;
    searches_[comp].active = false;
    state_pool_.release(searches_[comp].state);
    searches_[comp].state = nullptr;
    heap_.erase_group(comp);
  }

  /// Admissible lower bound h_u(x) on the remaining search metric from x to
  /// the nearest active target (Section III-C). Memoized in the search state
  /// (see SearchState::h_cached) and invalidated wholesale — one generation
  /// bump — whenever a merge changes the target set.
  double future_bound(std::uint32_t comp, VertexId x) {
    if (!astar_on_) return 0.0;
    SearchState& st = *searches_[comp].state;
    double cached;
    if (st.h_cached(x, scratch_.h_gen, &cached)) return cached;
    if (pb_.valid()) {
      // Every inline-plane bound — single misses here, batched misses in
      // the strip relax loop — funnels through future_bounds_plane, so each
      // h of a solve is produced by one instruction sequence regardless of
      // which path asked first.
      double h;
      future_bounds_plane(comp, &x, 1, &h);
      return h;
    }
    const double w = comps_[comp].weight;
    const bool cost_ok = comps_[comp].singleton;  // discount feasibility
    const VertexId rootv = comps_[root_comp_].terminal;
    const FutureCostOracle& fc = *opts_.future_cost;
    const Point2 x_xy = fc.xy(x);
    // Root target: exact vertex known, strongest bound (ALT-capable).
    double h = w * fc.delay_lb(x, rootv);
    if (cost_ok) h += fc.cost_lb(x, rootv);

    // Nearest other terminal in the plane.
    const std::int64_t nd = nn_->nearest_distance(x_xy, comp);
    if (nd != std::numeric_limits<std::int64_t>::max()) {
      const double dist = static_cast<double>(nd);
      double ht = dist * w * fc_min_unit_delay_;
      if (cost_ok) ht += dist * fc_min_unit_cost_;
      h = std::min(h, ht);
    }
    st.store_h(x, scratch_.h_gen, h);
    return h;
  }

  /// Inline-plane future bounds for up to Vec4d::kLanes vertices at once:
  /// the root-target term evaluates as Vec4d geometry (one L1/via-delta pass
  /// shared by the delay and cost bounds, landmark tables folded by exact
  /// max), then the per-vertex nearest-terminal probe and memo store run
  /// scalar. Lane arithmetic mirrors the scalar formula shapes exactly
  /// (util/simd.h bit-identity contract); the int32 coordinates and their
  /// L1 sums are exactly representable as doubles, so evaluating the deltas
  /// in double lanes loses nothing.
  void future_bounds_plane(std::uint32_t comp, const VertexId* xs,
                           std::uint32_t cnt, double* out) {
    const double w = comps_[comp].weight;
    const bool cost_ok = comps_[comp].singleton;  // discount feasibility
    const VertexId rootv = comps_[root_comp_].terminal;
    const Point3& pr = pb_.positions[rootv];

    // Short groups pad with the last vertex: the pad lanes compute a valid
    // (discarded) bound instead of reading out of range.
    VertexId gx[Vec4d::kLanes];
    alignas(kVecAlign) double axd[Vec4d::kLanes];
    alignas(kVecAlign) double ayd[Vec4d::kLanes];
    alignas(kVecAlign) double azd[Vec4d::kLanes];
    for (std::uint32_t k = 0; k < Vec4d::kLanes; ++k) {
      gx[k] = xs[k < cnt ? k : cnt - 1];
      const Point3& p = pb_.positions[gx[k]];
      axd[k] = static_cast<double>(p.x);
      ayd[k] = static_cast<double>(p.y);
      azd[k] = static_cast<double>(p.z);
    }
    const Vec4d dx = Vec4d::abs(Vec4d::load(axd) -
                                Vec4d::broadcast(static_cast<double>(pr.x)));
    const Vec4d dy = Vec4d::abs(Vec4d::load(ayd) -
                                Vec4d::broadcast(static_cast<double>(pr.y)));
    const Vec4d l1 = dx + dy;
    const Vec4d dz = Vec4d::abs(Vec4d::load(azd) -
                                Vec4d::broadcast(static_cast<double>(pr.z)));
    // h = w * delay_lb(x, root) [+ cost_lb(x, root)] — the same l1*unit +
    // dz*via expression shape per term as PlaneBoundData's scalar formulas.
    Vec4d h = Vec4d::broadcast(w) *
              (l1 * Vec4d::broadcast(pb_.min_unit_delay) +
               dz * Vec4d::broadcast(pb_.min_via_delay));
    if (cost_ok) {
      Vec4d clb = l1 * Vec4d::broadcast(pb_.min_unit_cost) +
                  dz * Vec4d::broadcast(pb_.min_via_cost);
      for (std::size_t i = 0; i < pb_.num_landmarks; ++i) {
        const double* t = pb_.landmark_tables[i].data();
        const Vec4d ad =
            Vec4d::abs(Vec4d::gather(t, gx) - Vec4d::broadcast(t[rootv]));
        // max(ad, clb) = (ad > clb) ? ad : clb — exactly the scalar fold.
        clb = Vec4d::max(ad, clb);
      }
      h = h + clb;
    }
    alignas(kVecAlign) double h4[Vec4d::kLanes];
    h.store(h4);

    SearchState& st = *searches_[comp].state;
    for (std::uint32_t k = 0; k < cnt; ++k) {
      double hk = h4[k];
      // Nearest other terminal in the plane.
      const std::int64_t nd = nn_->nearest_distance(pb_.xy(xs[k]), comp);
      if (nd != std::numeric_limits<std::int64_t>::max()) {
        const double dist = static_cast<double>(nd);
        double ht = dist * w * fc_min_unit_delay_;
        if (cost_ok) ht += dist * fc_min_unit_cost_;
        hk = std::min(hk, ht);
      }
      st.store_h(xs[k], scratch_.h_gen, hk);
      out[k] = hk;
    }
  }

  /// b(u, v) of the paper: optimally balanced weighted bifurcation penalty,
  /// with the Section III-E root discount.
  double b_value(std::uint32_t u, std::uint32_t o) {
    if (inst_.dbif <= 0.0) return 0.0;
    const double wu = comps_[u].weight;
    if (comps_[o].is_root) {
      const double rest = std::max(0.0, active_sink_weight_ - wu);
      double b = bifurcation_beta(wu, rest, inst_.dbif, inst_.eta);
      if (opts_.encourage_root) {
        b -= inst_.eta * inst_.dbif * wu;  // future saving of a root merge
      }
      return std::max(0.0, b);
    }
    return bifurcation_beta(wu, comps_[o].weight, inst_.dbif, inst_.eta);
  }

  void settle_and_relax(std::uint32_t u, std::uint32_t label_idx) {
    SearchState& su = *searches_[u].state;
    Label& lab = su.labels[label_idx];
    if (lab.settled) return;
    lab.settled = true;
    ++stats_.labels_settled;

    // Reaching another component's vertex creates a completion candidate
    // keyed by dist + b(u, v) ("whenever we enter a vertex v in S_i + r_i,
    // we add the optimally balanced weighted node delay", Theorem 1 proof).
    const std::uint32_t o = owner_of(lab.vertex);
    if (o != kNoComp && o != u) {
      if (comps_[o].active && !lab.completion_pushed) {
        lab.completion_pushed = true;
        heap_.push_or_decrease(u, label_idx * 2 + 1, lab.g + b_value(u, o));
      }
      // Foreign components are merge targets, never transit: expanding
      // through them would let later merge paths overwrite the (single-
      // valued) ownership and location maps, corrupting the structure.
      // Completing at the first touch realizes the end-side discount of
      // Section III-A anyway.
      return;
    }

    const double w = comps_[u].weight;
    const VertexId vtx = lab.vertex;
    const double base_g = lab.g;
    const std::uint32_t next_depth = lab.depth + 1;

    // Shared label update; `ng` must be computed as base_g + (c + w * d) so
    // the plane and per-edge paths stay bit-identical. Returns the heap
    // entry id of an accepted relaxation (kNoPush otherwise) — the caller
    // issues the push once the future bound is resolved, so relax_to never
    // touches the heap and both paths push in exactly arc order.
    const auto relax_to = [&](VertexId to, EdgeId e,
                              double ng) -> std::uint32_t {
      std::uint32_t& slot = su.slot(to);
      if (slot == 0) {
        su.labels.push_back(
            Label{to, ng, label_idx, e, next_depth, false, false});
        slot = static_cast<std::uint32_t>(su.labels.size());
        ++stats_.labels_relaxed;
        return (slot - 1) * 2;
      }
      Label& nl = su.labels[slot - 1];
      if (!nl.settled && ng < nl.g) {
        nl.g = ng;
        nl.parent_idx = label_idx;
        nl.parent_edge = e;
        nl.depth = next_depth;
        ++stats_.labels_relaxed;
        return (slot - 1) * 2;
      }
      return kNoPush;
    };

    if (plane_ != nullptr) {
      // Blocked SoA relaxation: strip metrics evaluate as two Vec4d
      // operations over the contiguous per-arc arrays (the plane's zeroed
      // tail pad keeps full-width loads in-bounds on the last partial
      // strip; lanes beyond the strip count are computed and discarded),
      // head slots are prefetched while the arithmetic runs, and the III-A
      // discount probe is hoisted out entirely for singleton components —
      // which own no tree edges by construction.
      const std::uint32_t lo = g_.arc_begin(vtx);
      const std::uint32_t hi = g_.arc_end(vtx);
      const VertexId* heads = g_.arc_heads().data();
      const EdgeId* earr = g_.arc_edges().data();
      for (std::uint32_t a = lo; a < hi; ++a) su.prefetch_slot(heads[a]);
      const double* ac = plane_->arc_cost_data();
      const double* ad = plane_->arc_delay_data();
      const bool may_discount =
          opts_.discount_components && !comps_[u].singleton;
      const Vec4d bg4 = Vec4d::broadcast(base_g);
      const Vec4d w4 = Vec4d::broadcast(w);
      alignas(kVecAlign) double ng[kRelaxStrip];
      for (std::uint32_t s = lo; s < hi; s += kRelaxStrip) {
        const std::uint32_t cnt = std::min(kRelaxStrip, hi - s);
        // ng = base_g + (cost + w * delay): the same expression shape as
        // the per-edge path, per the util/simd.h bit-identity contract.
        Vec4d ng0 = bg4 + (Vec4d::load(ac + s) + w4 * Vec4d::load(ad + s));
        Vec4d ng1 = bg4 + (Vec4d::load(ac + s + Vec4d::kLanes) +
                           w4 * Vec4d::load(ad + s + Vec4d::kLanes));
        if (may_discount) {
          // Edges already owned by u are traversed at zero *cost* under
          // the Section III-A discount; the delay part always applies.
          // The ownership probe is a scalar hash/bitset lookup; only the
          // discounted lanes re-blend.
          unsigned dm = 0;
          for (std::uint32_t k = 0; k < cnt; ++k) {
            if (edge_discounted(earr[s + k], u)) dm |= 1u << k;
          }
          if ((dm & 0xfu) != 0) {
            ng0 = Vec4d::blend(ng0, bg4 + w4 * Vec4d::load(ad + s),
                               static_cast<int>(dm & 0xfu));
          }
          if ((dm >> Vec4d::kLanes) != 0) {
            ng1 = Vec4d::blend(
                ng1, bg4 + w4 * Vec4d::load(ad + s + Vec4d::kLanes),
                static_cast<int>(dm >> Vec4d::kLanes));
          }
        }
        ng0.store(ng);
        ng1.store(ng + Vec4d::kLanes);
        // Accepted relaxations defer their pushes only to the end of the
        // strip: memo hits resolve inline off the VersionedSlot line the
        // relaxation just touched, misses batch up to Vec4d::kLanes-wide
        // through future_bounds_plane, and the pushes then replay in arc
        // order against fixed stack arrays. The bound cannot change a key:
        // h(comp, x) is pure w.r.t. the heap and label state within one
        // settle, so the heap sequence is identical to pushing inline.
        std::uint32_t pk[kRelaxStrip];    // lane index of accepted push
        std::uint32_t keys[kRelaxStrip];  // heap entry id of accepted push
        std::uint32_t np = 0;
        for (std::uint32_t k = 0; k < cnt; ++k) {
          const std::uint32_t key = relax_to(heads[s + k], earr[s + k], ng[k]);
          if (key != kNoPush) {
            pk[np] = k;
            keys[np] = key;
            ++np;
          }
        }
        if (np == 0) continue;
        if (!astar_on_) {
          for (std::uint32_t i = 0; i < np; ++i) {
            heap_.push_or_decrease(u, keys[i], ng[pk[i]]);
          }
          continue;
        }
        double h[kRelaxStrip];
        std::uint32_t miss[kRelaxStrip];
        std::uint32_t nm = 0;
        for (std::uint32_t i = 0; i < np; ++i) {
          double cached;
          if (su.h_cached(heads[s + pk[i]], scratch_.h_gen, &cached)) {
            h[i] = cached;
          } else {
            miss[nm++] = i;
          }
        }
        if (nm != 0 && pb_.valid()) {
          VertexId xs[Vec4d::kLanes];
          double out[Vec4d::kLanes];
          for (std::uint32_t m = 0; m < nm; m += Vec4d::kLanes) {
            const std::uint32_t gc = std::min(Vec4d::kLanes, nm - m);
            for (std::uint32_t k = 0; k < gc; ++k) {
              xs[k] = heads[s + pk[miss[m + k]]];
            }
            future_bounds_plane(u, xs, gc, out);
            for (std::uint32_t k = 0; k < gc; ++k) {
              h[miss[m + k]] = out[k];
            }
          }
        } else {
          for (std::uint32_t j = 0; j < nm; ++j) {
            h[miss[j]] = future_bound(u, heads[s + pk[miss[j]]]);
          }
        }
        for (std::uint32_t i = 0; i < np; ++i) {
          heap_.push_or_decrease(u, keys[i], ng[pk[i]] + h[i]);
        }
      }
      return;
    }

    const CostDelayLength metric{c_, d_, w};  // l_u(e) = c(e) + w d(e)
    for (const Graph::Arc& a : g_.arcs(vtx)) {
      // Edges already owned by u are traversed at zero *cost* under the
      // Section III-A discount; the delay part always applies.
      const double ng = base_g + (edge_discounted(a.edge, u)
                                      ? w * d_[a.edge]
                                      : metric(a.edge));
      const std::uint32_t key = relax_to(a.to, a.edge, ng);
      if (key == kNoPush) continue;
      // Mirrors the strip tail exactly: the bare `ng` key when A* is off
      // (never `ng + 0.0`, which would flip a -0.0), the memoized bound
      // added on top otherwise.
      if (!astar_on_) {
        heap_.push_or_decrease(u, key, ng);
      } else {
        heap_.push_or_decrease(u, key, ng + future_bound(u, a.to));
      }
    }
  }

  void handle_completion(std::uint32_t u, std::uint32_t label_idx,
                         double popped_key) {
    ++stats_.completions_popped;
    const SearchState& su = *searches_[u].state;
    const Label& lab = su.labels[label_idx];
    const std::uint32_t o = owner_of(lab.vertex);
    if (o == kNoComp || o == u || !comps_[o].active) {
      ++stats_.completions_stale;
      return;
    }
    // Components merge and the active sink weight shrinks over time, so the
    // stored key may be stale; re-validate lazily.
    const double true_key = lab.g + b_value(u, o);
    if (true_key > popped_key + 1e-9) {
      heap_.push_or_decrease(u, label_idx * 2 + 1, true_key);
      ++stats_.completions_stale;
      return;
    }
    merge(u, label_idx, o);
  }

  // ---------------------------------------------------------------- merge --
  void merge(std::uint32_t u, std::uint32_t label_idx, std::uint32_t o) {
    ++stats_.iterations;
    const SearchState& su = *searches_[u].state;

    // Reconstruct the search path seed -> labelled vertex into pooled
    // scratch, sized exactly from the label's recorded depth and filled
    // back-to-front (no reverse pass). Every label on the parent chain is
    // settled, so the chain and the depths are stable.
    std::vector<VertexId>& pverts = path_verts_;
    std::vector<EdgeId>& pedges = path_edges_;
    const std::uint32_t depth = su.labels[label_idx].depth;
    pverts.resize(depth + 1);
    pedges.resize(depth);
    {
      std::uint32_t cur = label_idx;
      for (std::uint32_t k = depth;; --k) {
        const Label& l = su.labels[cur];
        pverts[k] = l.vertex;
        if (l.parent_idx == 0xffffffffu) {
          CDST_ASSERT(k == 0);
          break;
        }
        CDST_ASSERT(k > 0);
        pedges[k - 1] = l.parent_edge;
        cur = l.parent_idx;
      }
    }

    // Trim the prefix that runs inside u's own tree (those edges already
    // exist; the search traverses them at zero connection cost under the
    // III-A discount) and stop at the first touch of a foreign component —
    // ownership may have shifted since labels were created, so the actual
    // partner can differ from o.
    std::size_t istar = 0;
    for (std::size_t i = 0; i < pverts.size(); ++i) {
      if (owner_of(pverts[i]) == u) istar = i;
    }
    std::size_t j = pverts.size() - 1;
    for (std::size_t i = istar + 1; i < pverts.size(); ++i) {
      const std::uint32_t oi = owner_of(pverts[i]);
      if (oi != kNoComp && oi != u && comps_[oi].active) {
        j = i;
        break;
      }
    }
    o = owner_of(pverts[j]);
    CDST_ASSERT(o != kNoComp && o != u && comps_[o].active);

    // Structural attachment (splits embedded segments as needed). Terminal
    // vertices may be shared by several components, and the assembler's
    // location map keeps only the last writer — attach through the
    // component's own recorded node in that case.
    const TreeAssembler::NodeId na =
        (istar == 0) ? comps_[u].node : assembler_.node_at(pverts[istar]);
    const TreeAssembler::NodeId nb = (pverts[j] == comps_[o].terminal)
                                         ? comps_[o].node
                                         : assembler_.node_at(pverts[j]);
    CDST_CHECK(na != TreeAssembler::kNoNode && nb != TreeAssembler::kNoNode);
    const std::span<const EdgeId> seg(pedges.data() + istar, j - istar);
    if (na != nb) assembler_.add_segment(na, nb, seg);

    // New merged component.
    const auto s = static_cast<std::uint32_t>(comps_.size());
    comps_.push_back(Component{});
    dsu_parent_.push_back(s);
    Component& cs = comps_.back();
    const bool root_merge = comps_[o].is_root;
    cs.active = true;
    cs.is_root = root_merge;
    cs.singleton = false;
    if (root_merge) {
      // Line 5: the root component absorbs u; the root position persists.
      cs.terminal = comps_[o].terminal;
      cs.node = comps_[o].node;
      cs.weight = comps_[u].weight;
      active_sink_weight_ -= comps_[u].weight;
    } else {
      cs.weight = comps_[u].weight + comps_[o].weight;
      const VertexId pos = choose_steiner_position(u, o, pverts, pedges,
                                                   istar, j);
      // Same last-writer caveat as above: map component terminals to their
      // own structural nodes.
      if (pos == comps_[u].terminal) {
        cs.node = comps_[u].node;
      } else if (pos == comps_[o].terminal) {
        cs.node = comps_[o].node;
      } else {
        cs.node = assembler_.node_at(pos);
      }
      CDST_CHECK(cs.node != TreeAssembler::kNoNode);
      cs.terminal = pos;
    }

    // Ownership updates: the new path belongs to s; old components resolve
    // to s through the DSU. Interior path vertices are always unowned here
    // (searches never expand through foreign components), so these writes
    // never clobber another component's registration.
    for (std::size_t i = istar; i <= j; ++i) vertex_owner_[pverts[i]] = s;
    for (const EdgeId e : seg) {
      edge_owner_[e] = s;
      edge_owned_bits_[e >> 6] |= std::uint64_t{1} << (e & 63);
    }
    dsu_parent_[u] = s;
    dsu_parent_[o] = s;
    comps_[u].active = false;
    comps_[o].active = false;
    if (root_merge) root_comp_ = s;

    deactivate_search(u);
    if (!comps_[o].is_root) deactivate_search(o);

    if (astar_on_) {
      if (nn_->active(u)) nn_->erase(u);
      if (nn_->active(o)) nn_->erase(o);
      nn_->insert(s, xy_of(cs.terminal));
    }
    // The active target set changed: every memoized future bound is stale.
    // Bumping the generation both invalidates surviving searches' memos and
    // fences recycled states (released above) from leaking h-values into the
    // search seeded below. Must stay below the u16 stamp wrap until the next
    // solve-setup fence; one bump per merge keeps this far away.
    ++scratch_.h_gen;
    CDST_ASSERT(scratch_.h_gen < 0x10000u);

    --remaining_;
    if (!root_merge) seed_search(s);
    // Merge ticks need no lock: a solve is single-threaded, so on_merge is
    // always invoked on the one solving thread (the session layer is what
    // serializes ticks from concurrent lanes before they reach an
    // EventSink — see api/events.h).
    if (controls_ != nullptr && controls_->on_merge) {
      MergeTick tick;
      tick.merges_done = stats_.iterations;
      tick.merges_total = inst_.sinks.size();
      tick.labels_settled = stats_.labels_settled;
      tick.completions_popped = stats_.completions_popped;
      controls_->on_merge(tick);
    }

    CDST_LOG(kDebug) << "merge comp " << u << " + " << o << " -> " << s
                     << (root_merge ? " (root)" : "") << ", path edges "
                     << seg.size() << ", remaining " << remaining_;
  }

  /// Section III-D (with future costs) or the randomized line-7 rule:
  /// position of the new Steiner vertex / component terminal.
  VertexId choose_steiner_position(std::uint32_t u, std::uint32_t o,
                                   const std::vector<VertexId>& pverts,
                                   const std::vector<EdgeId>& pedges,
                                   std::size_t istar, std::size_t j) {
    const double wu = comps_[u].weight;
    const double wo = comps_[o].weight;
    if (place_on_ && j > istar) {
      // Minimize  c(Q) + (wu+wo) d(Q) + wu d(P[au,s]) + wo d(P[s,ao])
      // with the s-root path Q estimated by future costs. The wo * d(P) term
      // is constant over candidate positions, so the argmin needs only the
      // running prefix — one pass, no up-front total-delay scan.
      const FutureCostOracle& fc = *opts_.future_cost;
      const VertexId rootv = comps_[root_comp_].terminal;
      const double wsum = wu + wo;
      double prefix = 0.0;
      double best = kInf;
      VertexId best_v = pverts[istar];
      for (std::size_t i = istar; i <= j; ++i) {
        if (i > istar) prefix += d_[pedges[i - 1]];
        const VertexId v = pverts[i];
        const double score = fc.cost_lb(v, rootv) +
                             wsum * fc.delay_lb(v, rootv) +
                             (wu - wo) * prefix;
        if (score < best) {
          best = score;
          best_v = v;
        }
      }
      return best_v;
    }
    // Line 7: random choice proportional to delay weights; the heavier
    // terminal is more likely to carry the Steiner vertex.
    const double sum = wu + wo;
    const double pu = sum > 0.0 ? wu / sum : 0.5;
    return rng_.bernoulli(pu) ? comps_[u].terminal : comps_[o].terminal;
  }

  // ----------------------------------------------------------------- data --
  const CostDistanceInstance& inst_;
  const SolverOptions& opts_;
  const Graph& g_;
  const std::vector<double>& c_;
  const std::vector<double>& d_;
  const ArcCostView* plane_{nullptr};  ///< SoA relax plane; null = per-edge
  std::size_t budget_reserved_{0};     ///< bytes held in the shared pool

  TreeAssembler assembler_;
  SolverQueue heap_;
  // Recycled allocations, owned by the SolverScratch (see SolverScratch::Impl
  // above); cleared in init(), capacity retained across solves.
  SolverScratch::Impl& scratch_;
  SearchStatePool& state_pool_;
  std::vector<Component>& comps_;
  std::vector<std::uint32_t>& dsu_parent_;
  std::vector<Search>& searches_;
  SparseMap<std::uint32_t>& vertex_owner_;
  SparseMap<std::uint32_t>& edge_owner_;
  std::vector<std::uint64_t>& edge_owned_bits_;
  /// Pooled merge() scratch for path reconstruction.
  std::vector<VertexId>& path_verts_;
  std::vector<EdgeId>& path_edges_;

  const SolveControls* controls_{nullptr};
  Rng rng_;
  bool astar_on_{false};
  bool place_on_{false};
  PlaneBoundData pb_;  ///< SoA geometry plane; invalid -> virtual oracle
  double fc_min_unit_cost_{0.0};   ///< cached oracle minima (loop constants)
  double fc_min_unit_delay_{0.0};
  std::unique_ptr<L1NearestNeighbor> nn_;

  std::uint32_t root_comp_{0};
  std::uint32_t remaining_{0};
  double active_sink_weight_{0.0};
  SolveStats stats_;
};

}  // namespace

SolveResult solve_cost_distance(const CostDistanceInstance& instance,
                                const SolverOptions& options,
                                SolverScratch* scratch,
                                const SolveControls* controls) {
  if (scratch != nullptr) {
    Solver solver(instance, options, scratch->impl(), controls);
    return solver.run();
  }
  SolverScratch local;
  Solver solver(instance, options, local.impl(), controls);
  return solver.run();
}

SolveResult solve_cost_distance(const CostDistanceInstance& instance,
                                const SolverOptions& options) {
  return solve_cost_distance(instance, options, nullptr, nullptr);
}

}  // namespace cdst
