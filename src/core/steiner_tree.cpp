#include "core/steiner_tree.h"

#include <algorithm>
#include <unordered_set>

namespace cdst {

std::vector<EdgeId> SteinerTree::all_edges() const {
  std::vector<EdgeId> out;
  for (const Node& n : nodes) {
    out.insert(out.end(), n.up_path.begin(), n.up_path.end());
  }
  return out;
}

void SteinerTree::validate(const Graph& g, std::size_t num_sinks,
                           bool allow_shared_edges) const {
  CDST_CHECK(!nodes.empty());
  CDST_CHECK(nodes[0].parent == -1);
  CDST_CHECK(nodes[0].kind == NodeKind::kRoot);
  CDST_CHECK(children.size() == nodes.size());

  std::vector<int> sink_seen(num_sinks, 0);
  std::vector<std::size_t> out_degree(nodes.size(), 0);
  std::unordered_set<EdgeId> used_edges;

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    if (i == 0) {
      CDST_CHECK(n.up_path.empty());
    } else {
      CDST_CHECK(n.parent >= 0 &&
                 static_cast<std::size_t>(n.parent) < nodes.size());
      ++out_degree[static_cast<std::size_t>(n.parent)];
      // Walk the embedded path from this node to the parent.
      VertexId at = n.graph_vertex;
      for (const EdgeId e : n.up_path) {
        CDST_CHECK(e < g.num_edges());
        CDST_CHECK_MSG(used_edges.insert(e).second || allow_shared_edges,
                       "graph edge used by two tree segments");
        CDST_CHECK_MSG(g.tail(e) == at || g.head(e) == at,
                       "embedded path is not contiguous");
        at = g.other_end(e, at);
      }
      CDST_CHECK_MSG(
          at == nodes[static_cast<std::size_t>(n.parent)].graph_vertex,
          "embedded path does not reach the parent vertex");
    }
    if (n.kind == NodeKind::kSink) {
      CDST_CHECK(n.sink_index >= 0 &&
                 static_cast<std::size_t>(n.sink_index) < num_sinks);
      ++sink_seen[static_cast<std::size_t>(n.sink_index)];
    }
  }
  for (std::size_t s = 0; s < num_sinks; ++s) {
    CDST_CHECK_MSG(sink_seen[s] == 1, "sink missing or duplicated in tree");
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    CDST_CHECK(children[i].size() == out_degree[i]);
    if (nodes[i].kind == NodeKind::kRoot) {
      CDST_CHECK_MSG(out_degree[i] <= 1, "root must be a leaf");
    } else if (nodes[i].kind == NodeKind::kSink) {
      CDST_CHECK_MSG(out_degree[i] == 0, "sinks must be leaves");
    } else {
      CDST_CHECK_MSG(out_degree[i] <= 2,
                     "internal vertices must have degree at most 3");
    }
  }
}

TreeAssembler::NodeId TreeAssembler::new_node(VertexId v, NodeKind kind,
                                              std::int32_t sink_index) {
  nodes_.push_back(NodeRec{v, kind, sink_index, {}});
  const auto id = static_cast<NodeId>(nodes_.size() - 1);
  // Terminals always own their vertex location; later writers (segments
  // passing through) may overwrite, which is fine — see node_at().
  loc_[v] = Loc{id, 0xffffffffu, 0};
  return id;
}

TreeAssembler::NodeId TreeAssembler::add_root(VertexId v) {
  CDST_CHECK_MSG(root_ == kNoNode, "root already added");
  root_ = new_node(v, NodeKind::kRoot, -1);
  return root_;
}

TreeAssembler::NodeId TreeAssembler::add_sink(VertexId v,
                                              std::int32_t sink_index) {
  return new_node(v, NodeKind::kSink, sink_index);
}

TreeAssembler::NodeId TreeAssembler::add_steiner(VertexId v) {
  return new_node(v, NodeKind::kSteiner, -1);
}

bool TreeAssembler::covers(VertexId v) const { return loc_.find(v) != nullptr; }

TreeAssembler::NodeId TreeAssembler::node_at(VertexId v) {
  const Loc* loc = loc_.find(v);
  if (loc == nullptr) return kNoNode;
  if (loc->is_node()) return loc->node;
  return split_segment(loc->seg, loc->offset);
}

void TreeAssembler::reindex_segment(std::uint32_t seg_id) {
  const Seg& s = segs_[seg_id];
  // Interior vertices point into this segment; endpoints keep their node loc.
  for (std::uint32_t i = 1; i + 1 < s.verts.size(); ++i) {
    loc_[s.verts[i]] = Loc{kNoNode, seg_id, i};
  }
}

TreeAssembler::NodeId TreeAssembler::split_segment(std::uint32_t seg_id,
                                                   std::uint32_t offset) {
  Seg& s = segs_[seg_id];
  CDST_ASSERT(offset > 0 && offset + 1 < s.verts.size());
  const VertexId v = s.verts[offset];
  const NodeId mid = new_node(v, NodeKind::kSteiner, -1);

  // Tail half becomes a new segment mid -> b.
  Seg tail;
  tail.a = mid;
  tail.b = s.b;
  tail.edges.assign(s.edges.begin() + offset, s.edges.end());
  tail.verts.assign(s.verts.begin() + offset, s.verts.end());

  // Head half: a -> mid (shrink in place).
  const NodeId old_b = s.b;
  s.b = mid;
  s.edges.resize(offset);
  s.verts.resize(offset + 1);

  const auto tail_id = static_cast<std::uint32_t>(segs_.size());
  segs_.push_back(std::move(tail));

  // Fix adjacency: old_b loses seg_id, gains tail; mid gains both.
  auto& b_segs = nodes_[old_b].segs;
  b_segs.erase(std::find(b_segs.begin(), b_segs.end(), seg_id));
  b_segs.push_back(tail_id);
  nodes_[mid].segs.push_back(seg_id);
  nodes_[mid].segs.push_back(tail_id);

  reindex_segment(seg_id);
  reindex_segment(tail_id);
  return mid;
}

void TreeAssembler::add_segment(NodeId a, NodeId b,
                                std::span<const EdgeId> path) {
  CDST_CHECK(a < nodes_.size() && b < nodes_.size());
  if (a == b) {
    CDST_CHECK_MSG(path.empty(), "non-empty segment with equal endpoints");
    return;
  }
  Seg s;
  s.a = a;
  s.b = b;
  s.edges.assign(path.begin(), path.end());
  s.verts.reserve(path.size() + 1);
  VertexId at = nodes_[a].v;
  s.verts.push_back(at);
  for (const EdgeId e : path) {
    CDST_CHECK_MSG(graph_->tail(e) == at || graph_->head(e) == at,
                   "segment path is not contiguous");
    at = graph_->other_end(e, at);
    s.verts.push_back(at);
  }
  CDST_CHECK_MSG(at == nodes_[b].v, "segment path does not reach endpoint");

  const auto seg_id = static_cast<std::uint32_t>(segs_.size());
  segs_.push_back(std::move(s));
  nodes_[a].segs.push_back(seg_id);
  nodes_[b].segs.push_back(seg_id);
  reindex_segment(seg_id);
}

SteinerTree TreeAssembler::finalize() const {
  CDST_CHECK_MSG(root_ != kNoNode, "no root added");

  // Work on a mutable copy so normalization can restructure.
  std::vector<NodeRec> nodes = nodes_;
  std::vector<Seg> segs = segs_;

  // --- Normalize: terminals must be leaves, internal degree <= 3. ---------
  // A terminal (root/sink) with degree k > (root ? 1 : 1 if attached ... )
  // keeps no segment; all its segments move to a stacked Steiner twin,
  // connected by a zero-length segment. Internal nodes with > 3 segments
  // split off extra segments onto twins chained at the same position.
  auto add_twin = [&](NodeId n) -> NodeId {
    nodes.push_back(NodeRec{nodes[n].v, NodeKind::kSteiner, -1, {}});
    return static_cast<NodeId>(nodes.size() - 1);
  };
  auto add_zero_seg = [&](NodeId a, NodeId b) {
    const auto id = static_cast<std::uint32_t>(segs.size());
    Seg z;
    z.a = a;
    z.b = b;
    z.verts = {nodes[a].v};  // degenerate; not used for walking
    segs.push_back(std::move(z));
    nodes[a].segs.push_back(id);
    nodes[b].segs.push_back(id);
  };
  auto move_seg_endpoint = [&](std::uint32_t seg_id, NodeId from, NodeId to) {
    Seg& s = segs[seg_id];
    if (s.a == from) {
      s.a = to;
    } else {
      CDST_ASSERT(s.b == from);
      s.b = to;
    }
    auto& fs = nodes[from].segs;
    fs.erase(std::find(fs.begin(), fs.end(), seg_id));
    nodes[to].segs.push_back(seg_id);
  };

  // Terminals: move all real segments to a twin, keep one zero-seg.
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    const bool is_terminal = nodes[n].kind != NodeKind::kSteiner;
    if (!is_terminal || nodes[n].segs.size() <= 1) continue;
    const NodeId twin = add_twin(n);
    const std::vector<std::uint32_t> moved = nodes[n].segs;
    for (const std::uint32_t sid : moved) move_seg_endpoint(sid, n, twin);
    add_zero_seg(n, twin);
  }
  // Internal degree cap: chain twins while degree > 3.
  for (NodeId n = 0; n < nodes.size(); ++n) {
    while (nodes[n].kind == NodeKind::kSteiner && nodes[n].segs.size() > 3) {
      const NodeId twin = add_twin(n);
      // Move all but two segments to the twin; the zero-seg link uses the
      // third slot on n and one slot on the twin.
      std::vector<std::uint32_t> keep(nodes[n].segs.begin(),
                                      nodes[n].segs.begin() + 2);
      std::vector<std::uint32_t> moved(nodes[n].segs.begin() + 2,
                                       nodes[n].segs.end());
      for (const std::uint32_t sid : moved) move_seg_endpoint(sid, n, twin);
      add_zero_seg(n, twin);
    }
  }

  // --- Orient as arborescence from the root (BFS over segments). ----------
  SteinerTree out;
  const std::size_t nn = nodes.size();
  std::vector<std::int32_t> order(nn, -1);  // node -> output index
  std::vector<NodeId> queue;
  queue.push_back(root_);
  order[root_] = 0;

  out.nodes.resize(nn);
  out.nodes[0].graph_vertex = nodes[root_].v;
  out.nodes[0].parent = -1;
  out.nodes[0].kind = NodeKind::kRoot;
  out.nodes[0].sink_index = -1;

  std::int32_t next_index = 1;
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const NodeId cur = queue[qi];
    const std::int32_t cur_out = order[cur];
    for (const std::uint32_t sid : nodes[cur].segs) {
      const Seg& s = segs[sid];
      const NodeId nb = (s.a == cur) ? s.b : s.a;
      if (order[nb] != -1) continue;  // parent side (or cycle: caught below)
      order[nb] = next_index;
      SteinerTree::Node& rec = out.nodes[static_cast<std::size_t>(next_index)];
      rec.graph_vertex = nodes[nb].v;
      rec.parent = cur_out;
      rec.kind = nodes[nb].kind;
      rec.sink_index = nodes[nb].sink_index;
      // Path from child (nb) up to parent (cur).
      rec.up_path = s.edges;
      if (s.a == cur) std::reverse(rec.up_path.begin(), rec.up_path.end());
      ++next_index;
      queue.push_back(nb);
    }
  }
  CDST_CHECK_MSG(static_cast<std::size_t>(next_index) == nn,
                 "tree structure is disconnected");
  CDST_CHECK_MSG(queue.size() == nn && segs.size() == nn - 1,
                 "tree structure contains a cycle");

  out.children.assign(nn, {});
  for (std::size_t i = 1; i < nn; ++i) {
    out.children[static_cast<std::size_t>(out.nodes[i].parent)].push_back(
        static_cast<std::int32_t>(i));
  }
  return out;
}

}  // namespace cdst
