#include "core/objective.h"

namespace cdst {

TreeEvaluation evaluate_tree(const SteinerTree& tree,
                             const CostDistanceInstance& instance) {
  instance.validate();
  const std::vector<double>& c = *instance.cost;
  const std::vector<double>& d = *instance.delay;
  const std::size_t nn = tree.nodes.size();
  CDST_CHECK(nn > 0);

  TreeEvaluation eval;
  eval.sink_delays.assign(instance.sinks.size(), 0.0);
  eval.node_lambda.assign(nn, 0.0);

  // Subtree delay weights; nodes are stored in BFS order (parent < child),
  // so a reverse sweep accumulates bottom-up.
  std::vector<double> subtree_weight(nn, 0.0);
  for (std::size_t i = nn; i-- > 0;) {
    const SteinerTree::Node& n = tree.nodes[i];
    if (n.sink_index >= 0) {
      subtree_weight[i] +=
          instance.sinks[static_cast<std::size_t>(n.sink_index)].weight;
    }
    if (n.parent >= 0) {
      subtree_weight[static_cast<std::size_t>(n.parent)] += subtree_weight[i];
    }
  }

  // Top-down delay accumulation with optimal lambda at every bifurcation.
  std::vector<double> delay_from_root(nn, 0.0);
  for (std::size_t i = 1; i < nn; ++i) {
    const SteinerTree::Node& n = tree.nodes[i];
    const auto p = static_cast<std::size_t>(n.parent);
    double dl = delay_from_root[p];
    for (const EdgeId e : n.up_path) {
      dl += d[e];
      eval.connection_cost += c[e];
      ++eval.num_graph_edges;
    }
    if (tree.children[p].size() == 2 && instance.dbif > 0.0) {
      // Sibling subtree weight determines this branch's share (Eq. (2)).
      const std::int32_t sib = tree.children[p][0] == static_cast<std::int32_t>(i)
                                   ? tree.children[p][1]
                                   : tree.children[p][0];
      const double lambda =
          optimal_lambda(subtree_weight[i],
                         subtree_weight[static_cast<std::size_t>(sib)],
                         instance.eta);
      const double penalty = lambda * instance.dbif;
      eval.node_lambda[i] = lambda;
      dl += penalty;
      eval.total_delay_penalty += penalty * subtree_weight[i];
    }
    delay_from_root[i] = dl;
    if (n.sink_index >= 0) {
      eval.sink_delays[static_cast<std::size_t>(n.sink_index)] = dl;
    }
  }

  for (std::size_t s = 0; s < instance.sinks.size(); ++s) {
    eval.weighted_delay += instance.sinks[s].weight * eval.sink_delays[s];
  }
  eval.objective = eval.connection_cost + eval.weighted_delay;
  return eval;
}

}  // namespace cdst
