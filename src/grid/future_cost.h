/// \file future_cost.h
/// Admissible lower bounds ("future costs") for goal-oriented path searches
/// (paper Section III-C).
///
/// Congestion cost between two grid vertices is lower-bounded by the L1
/// distance times the cheapest per-gcell unit cost plus the layer difference
/// times the via cost (both evaluated at zero congestion, hence admissible
/// for any price state), optionally strengthened by ALT landmarks on the
/// *current* price metric. Delay is bounded by "L1-distance and the fastest
/// layer and wire type combination for that distance".

#pragma once

#include <memory>

#include "core/future_oracle.h"
#include "graph/landmarks.h"
#include "grid/routing_grid.h"

namespace cdst {

class FutureCost : public FutureCostOracle {
 public:
  /// \param num_landmarks 0 disables the ALT component. Landmark tables are
  ///        built on the grid's base costs (admissible for any price state)
  ///        with the batched avoid-farthest greedy of graph/landmarks.h.
  /// \param pool optional worker pool, borrowed for construction only: the
  ///        per-round landmark Dijkstras build in parallel. Never changes
  ///        which landmarks are picked or any bound returned.
  explicit FutureCost(const RoutingGrid& grid, std::size_t num_landmarks = 0,
                      ThreadPool* pool = nullptr);

  Point2 xy(VertexId v) const override { return grid_->position(v).xy(); }
  double min_unit_cost() const override { return min_unit_cost_; }
  double min_unit_delay() const override { return min_unit_delay_; }

  /// Lower bound on the congestion cost of any a-b path.
  double cost_lb(VertexId a, VertexId b) const override {
    const Point3 pa = grid_->position(a);
    const Point3 pb = grid_->position(b);
    double geo = static_cast<double>(l1_distance(pa, pb)) * min_unit_cost_ +
                 std::abs(pa.z - pb.z) * min_via_cost_;
    if (landmarks_) {
      const double alt = landmarks_->lower_bound(a, b);
      if (alt > geo) geo = alt;
    }
    return geo;
  }

  /// Lower bound on the delay of any a-b path.
  double delay_lb(VertexId a, VertexId b) const override {
    const Point3 pa = grid_->position(a);
    const Point3 pb = grid_->position(b);
    return static_cast<double>(l1_distance(pa, pb)) * min_unit_delay_ +
           std::abs(pa.z - pb.z) * min_via_delay_;
  }

  /// Lower bound on c + w * d between a and b (the search metric l_u).
  double combined_lb(VertexId a, VertexId b, double weight) const {
    return cost_lb(a, b) + weight * delay_lb(a, b);
  }

  /// SoA geometry plane for inline bound evaluation. ALT landmark tables
  /// ride along: PlaneBoundData folds max(geometric, landmark) exactly like
  /// cost_lb() above, so the inline path stays bit-identical and the solver
  /// no longer falls back to virtual dispatch when landmarks are on.
  PlaneBoundData plane_bounds() const override {
    PlaneBoundData pb{grid_->positions().data(), min_unit_cost_,
                      min_unit_delay_, min_via_cost_, min_via_delay_};
    if (landmarks_ != nullptr) {
      pb.landmark_tables = landmarks_->tables().data();
      pb.num_landmarks = landmarks_->count();
    }
    return pb;
  }

  const RoutingGrid& grid() const { return *grid_; }
  bool has_landmarks() const { return landmarks_ != nullptr; }

 private:
  const RoutingGrid* grid_;
  double min_unit_cost_;
  double min_unit_delay_;
  double min_via_cost_;
  double min_via_delay_;
  std::unique_ptr<Landmarks> landmarks_;
};

}  // namespace cdst
