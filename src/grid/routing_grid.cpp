#include "grid/routing_grid.h"

#include <algorithm>
#include <limits>

namespace cdst {

RoutingGrid::RoutingGrid(std::int32_t nx, std::int32_t ny,
                         std::vector<LayerSpec> layers, ViaSpec via)
    : nx_(nx), ny_(ny), layers_(std::move(layers)), via_(via) {
  CDST_CHECK(nx_ >= 1 && ny_ >= 1);
  CDST_CHECK_MSG(!layers_.empty(), "grid needs at least one layer");
  for (const LayerSpec& l : layers_) {
    CDST_CHECK_MSG(!l.wire_types.empty(),
                   "layer " + l.name + " has no wire types");
  }
  build();
}

void RoutingGrid::build() {
  const std::int64_t nz = static_cast<std::int64_t>(layers_.size());
  const std::int64_t verts = static_cast<std::int64_t>(nx_) * ny_ * nz;
  CDST_CHECK_MSG(verts < (1ll << 31), "grid too large for 32-bit vertex ids");

  GraphBuilder builder(static_cast<std::size_t>(verts));
  edge_info_.clear();
  resource_capacity_.clear();

  min_unit_cost_ = std::numeric_limits<double>::infinity();
  min_unit_delay_ = std::numeric_limits<double>::infinity();

  auto new_resource = [&](double capacity) {
    resource_capacity_.push_back(capacity);
    return static_cast<ResourceId>(resource_capacity_.size() - 1);
  };

  // Intra-layer wiring edges.
  for (std::int32_t z = 0; z < nz; ++z) {
    const LayerSpec& layer = layers_[z];
    for (const WireType& wt : layer.wire_types) {
      min_unit_cost_ = std::min(min_unit_cost_, wt.unit_cost);
      min_unit_delay_ = std::min(min_unit_delay_, wt.delay_per_gcell);
    }
    const bool horizontal = layer.dir == LayerDir::kHorizontal;
    const std::int32_t step_count_x = horizontal ? nx_ - 1 : nx_;
    const std::int32_t step_count_y = horizontal ? ny_ : ny_ - 1;
    for (std::int32_t y = 0; y < step_count_y; ++y) {
      for (std::int32_t x = 0; x < step_count_x; ++x) {
        const VertexId a = vertex_at(x, y, z);
        const VertexId b =
            horizontal ? vertex_at(x + 1, y, z) : vertex_at(x, y + 1, z);
        const ResourceId res = new_resource(layer.capacity);
        for (std::size_t w = 0; w < layer.wire_types.size(); ++w) {
          const WireType& wt = layer.wire_types[w];
          const EdgeId e = builder.add_edge(a, b);
          CDST_ASSERT(static_cast<std::size_t>(e) == edge_info_.size());
          (void)e;
          edge_info_.push_back(EdgeInfo{res, static_cast<float>(wt.width),
                                        static_cast<float>(wt.unit_cost),
                                        static_cast<float>(wt.delay_per_gcell),
                                        static_cast<std::uint8_t>(z),
                                        static_cast<std::uint8_t>(w), false});
        }
      }
    }
  }

  // Via edges between adjacent layers; one resource per gcell stack segment.
  for (std::int32_t z = 0; z + 1 < nz; ++z) {
    for (std::int32_t y = 0; y < ny_; ++y) {
      for (std::int32_t x = 0; x < nx_; ++x) {
        const VertexId a = vertex_at(x, y, z);
        const VertexId b = vertex_at(x, y, z + 1);
        // Via capacity scales with the smaller of the adjacent layers.
        const double cap =
            std::min(layers_[z].capacity, layers_[z + 1].capacity);
        const ResourceId res = new_resource(cap);
        const EdgeId e = builder.add_edge(a, b);
        CDST_ASSERT(static_cast<std::size_t>(e) == edge_info_.size());
        (void)e;
        edge_info_.push_back(EdgeInfo{res, static_cast<float>(via_.width),
                                      static_cast<float>(via_.unit_cost),
                                      static_cast<float>(via_.delay),
                                      static_cast<std::uint8_t>(z), 0, true});
      }
    }
  }

  graph_ = Graph(builder);

  delays_.resize(edge_info_.size());
  base_costs_.resize(edge_info_.size());
  // Recompute the per-unit minima from the float-rounded stored values so
  // that future-cost lower bounds stay admissible against actual edge sums.
  min_unit_cost_ = std::numeric_limits<double>::infinity();
  min_unit_delay_ = std::numeric_limits<double>::infinity();
  for (std::size_t e = 0; e < edge_info_.size(); ++e) {
    delays_[e] = edge_info_[e].delay;
    base_costs_[e] = edge_info_[e].unit_cost;
    if (!edge_info_[e].is_via) {
      min_unit_cost_ = std::min(min_unit_cost_, base_costs_[e]);
      min_unit_delay_ = std::min(min_unit_delay_, delays_[e]);
    }
  }

  // Finalize the static SoA attribute plane alongside the graph.
  std::vector<std::uint8_t> layer_of(edge_info_.size());
  for (std::size_t e = 0; e < edge_info_.size(); ++e) {
    layer_of[e] = edge_info_[e].layer;
  }
  // base_costs_/delays_ are members sharing the view's lifetime (vector
  // buffers survive grid moves), so the per-edge arrays are borrowed.
  arc_costs_.assign_borrowed(graph_, base_costs_, delays_, layer_of);

  positions_.resize(graph_.num_vertices());
  for (VertexId v = 0; v < positions_.size(); ++v) {
    positions_[v] = position(v);
  }
}

std::vector<LayerSpec> make_default_layer_stack(int num_layers,
                                                double base_capacity) {
  CDST_CHECK(num_layers >= 2);
  std::vector<LayerSpec> layers;
  layers.reserve(static_cast<std::size_t>(num_layers));
  for (int z = 0; z < num_layers; ++z) {
    LayerSpec l;
    l.name = "M" + std::to_string(z + 1);
    l.dir = (z % 2 == 0) ? LayerDir::kHorizontal : LayerDir::kVertical;
    // Lower layers: dense and slow. Upper layers: fewer tracks per gcell in
    // real stacks, but gcell capacity is roughly constant; delays fall
    // steeply with height (thicker metal).
    const double tier = static_cast<double>(z) / std::max(1, num_layers - 1);
    l.capacity = base_capacity * (z == 0 ? 0.4 : 1.0);
    // ~25 um gcells: resistance falls steeply with metal height (thicker,
    // wider wires up top); capacitance per unit length is roughly constant.
    l.r_per_gcell = 400.0 * (1.0 - 0.95 * tier) + 8.0;  // ohm/gcell
    l.c_per_gcell = 5.0;                                // fF/gcell

    WireType narrow;
    narrow.name = l.name + ".w1";
    narrow.width = 1.0;
    narrow.unit_cost = 1.0;
    // Placeholder delay; overwritten by timing::apply_delay_model, and a
    // sensible default (slower low layers) for grid-only tests.
    narrow.delay_per_gcell = 8.0 * (1.0 - 0.8 * tier) + 1.0;
    l.wire_types.push_back(narrow);

    if (z >= num_layers / 2) {
      WireType wide;
      wide.name = l.name + ".w2";
      wide.width = 2.0;
      wide.unit_cost = 2.0;
      wide.delay_per_gcell = narrow.delay_per_gcell * 0.6;
      l.wire_types.push_back(wide);
    }
    layers.push_back(std::move(l));
  }
  return layers;
}

}  // namespace cdst
