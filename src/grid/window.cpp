#include "grid/window.h"

#include <algorithm>

namespace cdst {

RoutingWindow::RoutingWindow(const RoutingGrid& grid,
                             const CongestionCosts& costs, Rect box,
                             const RoundPricing* pricing)
    : grid_(&grid) {
  // Clip to the grid.
  box.xlo = std::max(box.xlo, 0);
  box.ylo = std::max(box.ylo, 0);
  box.xhi = std::min(box.xhi, grid.nx() - 1);
  box.yhi = std::min(box.yhi, grid.ny() - 1);
  CDST_CHECK_MSG(!box.empty(), "routing window does not intersect the grid");
  box_ = box;
  wx_ = static_cast<std::int32_t>(box.width()) + 1;
  wy_ = static_cast<std::int32_t>(box.height()) + 1;

  const std::int32_t nz = grid.nz();
  const std::size_t wn = static_cast<std::size_t>(wx_) * wy_ * nz;
  to_grid_vertex_.resize(wn);
  positions_.resize(wn);

  auto wvertex = [&](std::int32_t x, std::int32_t y, std::int32_t z) {
    return static_cast<VertexId>(
        (static_cast<std::int64_t>(z) * wy_ + (y - box_.ylo)) * wx_ +
        (x - box_.xlo));
  };

  GraphBuilder builder(wn);
  for (std::int32_t z = 0; z < nz; ++z) {
    for (std::int32_t y = box_.ylo; y <= box_.yhi; ++y) {
      for (std::int32_t x = box_.xlo; x <= box_.xhi; ++x) {
        const VertexId wv = wvertex(x, y, z);
        to_grid_vertex_[wv] = grid.vertex_at(x, y, z);
        positions_[wv] = Point3{x, y, z};
      }
    }
  }

  // Copy edges whose endpoints both lie in the window. Iterating grid arcs
  // from each window vertex visits each such edge twice; keep tail < head.
  const Graph& gg = grid.graph();
  for (VertexId wv = 0; wv < wn; ++wv) {
    const VertexId gv = to_grid_vertex_[wv];
    const Point3 pv = grid.position(gv);
    for (const Graph::Arc& a : gg.arcs(gv)) {
      if (a.to < gv) continue;  // visit once
      const Point3 pu = grid.position(a.to);
      if (!box_.contains(pu.xy())) continue;
      const VertexId wu = wvertex(pu.x, pu.y, pu.z);
      builder.add_edge(wv, wu);
      to_grid_edge_.push_back(a.edge);
    }
    (void)pv;
  }
  graph_ = Graph(builder);

  const std::size_t wm = to_grid_edge_.size();
  costs_.resize(wm);
  delays_.resize(wm);
  std::vector<std::uint8_t> layer_of(wm);
  const std::vector<double>& gd = grid.edge_delays();
  for (std::size_t e = 0; e < wm; ++e) {
    const EdgeId ge = to_grid_edge_[e];
    if (pricing == nullptr) {
      costs_[e] = costs.edge_cost(ge);
    } else {
      // Frozen round snapshot: a gather instead of an exp() per edge. Only
      // the net's own resources re-price, with its committed usage excluded.
      const double* excluded =
          pricing->excluded_usage != nullptr
              ? pricing->excluded_usage->find(grid.edge_info(ge).resource)
              : nullptr;
      costs_[e] = excluded == nullptr
                      ? pricing->edge_costs[ge]
                      : costs.edge_cost_excluding(ge, *excluded);
    }
    delays_[e] = gd[ge];
    layer_of[e] = grid.edge_info(ge).layer;
  }
  // Borrowed per-edge spans: costs_/delays_ are members with exactly the
  // view's lifetime (and vector buffers survive window moves), so only the
  // derived per-arc strips are materialized.
  arc_costs_.assign_borrowed(graph_, costs_, delays_, layer_of);
}

VertexId RoutingWindow::from_grid_vertex(VertexId gv) const {
  const Point3 p = grid_->position(gv);
  if (!box_.contains(p.xy())) return kInvalidVertex;
  return static_cast<VertexId>(
      (static_cast<std::int64_t>(p.z) * wy_ + (p.y - box_.ylo)) * wx_ +
      (p.x - box_.xlo));
}

std::vector<EdgeId> RoutingWindow::to_grid_edges(
    const std::vector<EdgeId>& wes) const {
  std::vector<EdgeId> out;
  out.reserve(wes.size());
  for (const EdgeId we : wes) out.push_back(to_grid_edge_[we]);
  return out;
}

}  // namespace cdst
