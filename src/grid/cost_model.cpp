#include "grid/cost_model.h"

#include <algorithm>

namespace cdst {

CongestionCosts::CongestionCosts(const RoutingGrid& grid,
                                 CongestionParams params)
    : grid_(&grid),
      params_(params),
      log_base_(std::log(params.price_at_full)) {
  CDST_CHECK(params.price_at_full > 1.0);
  usage_.assign(grid.num_resources(), 0.0);
  capacity_.resize(grid.num_resources());
  for (ResourceId r = 0; r < capacity_.size(); ++r) {
    capacity_[r] = std::max(1e-9, grid.resource_capacity(r));
  }
}

std::vector<double> CongestionCosts::edge_cost_vector() const {
  std::vector<double> c;
  fill_edge_costs(c);
  return c;
}

void CongestionCosts::fill_edge_costs(std::vector<double>& out) const {
  const std::size_t m = grid_->graph().num_edges();
  out.resize(m);
  for (EdgeId e = 0; e < m; ++e) out[e] = edge_cost(e);
}

void CongestionCosts::add_usage(const std::vector<EdgeId>& edges,
                                double sign) {
  for (const EdgeId e : edges) {
    const RoutingGrid::EdgeInfo& info = grid_->edge_info(e);
    usage_[info.resource] =
        std::max(0.0, usage_[info.resource] + sign * info.width);
  }
}

void CongestionCosts::reset() { std::fill(usage_.begin(), usage_.end(), 0.0); }

}  // namespace cdst
