/// \file routing_grid.h
/// The 3D global routing graph.
///
/// Vertices are gcells per layer: (x, y, z) with 0 <= x < nx, 0 <= y < ny,
/// 0 <= z < nz. Within a layer, edges follow the layer's preferred direction,
/// with one parallel edge per wire type. Between adjacent layers there are
/// via edges. Every edge references a capacity *resource* (a geometric gcell
/// boundary); parallel wire-type edges share their boundary's resource and
/// consume `width` units of it, which is how congestion couples wire types.

#pragma once

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "graph/arc_cost_view.h"
#include "graph/graph.h"
#include "grid/layer.h"

namespace cdst {

using ResourceId = std::uint32_t;

class RoutingGrid {
 public:
  struct EdgeInfo {
    ResourceId resource{0};
    float width{1.0f};       ///< capacity units consumed
    float unit_cost{1.0f};   ///< congestion cost weight at zero usage
    float delay{1.0f};       ///< linear delay (ps) of this edge
    std::uint8_t layer{0};   ///< layer of the edge (lower layer for vias)
    std::uint8_t wire_type{0};
    bool is_via{false};
  };

  RoutingGrid(std::int32_t nx, std::int32_t ny, std::vector<LayerSpec> layers,
              ViaSpec via);

  const Graph& graph() const { return graph_; }

  std::int32_t nx() const { return nx_; }
  std::int32_t ny() const { return ny_; }
  std::int32_t nz() const { return static_cast<std::int32_t>(layers_.size()); }

  const std::vector<LayerSpec>& layers() const { return layers_; }
  const ViaSpec& via() const { return via_; }

  VertexId vertex_at(std::int32_t x, std::int32_t y, std::int32_t z) const {
    CDST_ASSERT(x >= 0 && x < nx_ && y >= 0 && y < ny_ && z >= 0 &&
                z < nz());
    return static_cast<VertexId>((static_cast<std::int64_t>(z) * ny_ + y) *
                                     nx_ +
                                 x);
  }

  VertexId vertex_at(const Point3& p) const {
    return vertex_at(p.x, p.y, p.z);
  }

  Point3 position(VertexId v) const {
    const auto x = static_cast<std::int32_t>(v % nx_);
    const auto y = static_cast<std::int32_t>((v / nx_) % ny_);
    const auto z = static_cast<std::int32_t>(v / (static_cast<std::int64_t>(nx_) * ny_));
    return Point3{x, y, z};
  }

  /// Dense per-vertex positions, finalized with the graph: the SoA geometry
  /// plane behind the future-cost bounds (one load instead of the div/mod
  /// decode of position() in bound-evaluation hot loops).
  const std::vector<Point3>& positions() const { return positions_; }

  const EdgeInfo& edge_info(EdgeId e) const {
    CDST_ASSERT(e < edge_info_.size());
    return edge_info_[e];
  }

  std::size_t num_resources() const { return resource_capacity_.size(); }
  double resource_capacity(ResourceId r) const {
    CDST_ASSERT(r < resource_capacity_.size());
    return resource_capacity_[r];
  }

  /// Static delay vector indexed by EdgeId (the d of the paper).
  const std::vector<double>& edge_delays() const { return delays_; }

  /// Uncongested unit costs indexed by EdgeId (lower bound of any price).
  const std::vector<double>& base_costs() const { return base_costs_; }

  /// Structure-of-arrays plane of the static edge attributes (base cost,
  /// delay, layer) keyed by arc index — finalized once with the graph. The
  /// uncongested metric the landmark preprocessing and admissible-bound
  /// machinery scan; congestion-priced planes live on windows (and, sharded,
  /// on the router's round snapshot).
  const ArcCostView& arc_costs() const { return arc_costs_; }

  /// Cheapest congestion cost per gcell over all layers and wire types
  /// (admissible A* ingredient).
  double min_unit_cost() const { return min_unit_cost_; }
  /// Fastest linear delay per gcell over all layers and wire types
  /// ("the fastest layer and wire type combination", Section III-C).
  double min_unit_delay() const { return min_unit_delay_; }
  double min_via_cost() const { return via_.unit_cost; }
  double min_via_delay() const { return via_.delay; }

 private:
  void build();

  std::int32_t nx_;
  std::int32_t ny_;
  std::vector<LayerSpec> layers_;
  ViaSpec via_;

  Graph graph_;
  ArcCostView arc_costs_;
  std::vector<Point3> positions_;
  std::vector<EdgeInfo> edge_info_;
  std::vector<double> delays_;
  std::vector<double> base_costs_;
  std::vector<double> resource_capacity_;
  double min_unit_cost_{0.0};
  double min_unit_delay_{0.0};
};

/// Convenience factory: a technology-flavoured layer stack with alternating
/// directions, thicker/faster upper layers, and 1-2 wire types per layer.
/// Used by tests, examples, and the synthetic chip generator.
std::vector<LayerSpec> make_default_layer_stack(int num_layers,
                                                double base_capacity = 20.0);

}  // namespace cdst
