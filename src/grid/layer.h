/// \file layer.h
/// Per-layer parameters of the 3D global routing grid.

#pragma once

#include <string>
#include <vector>

#include "grid/wire_type.h"

namespace cdst {

enum class LayerDir : std::uint8_t {
  kHorizontal,  ///< wires run in x
  kVertical,    ///< wires run in y
};

struct LayerSpec {
  std::string name;
  LayerDir dir{LayerDir::kHorizontal};

  /// Routing capacity (track equivalents) per gcell boundary on this layer.
  double capacity{10.0};

  /// Wire types available on this layer; each becomes a parallel edge.
  std::vector<WireType> wire_types;

  /// Wire RC per gcell, used by the repeater-chain model to derive
  /// delay_per_gcell; kept here for provenance.
  double r_per_gcell{1.0};  ///< ohm
  double c_per_gcell{1.0};  ///< fF
};

}  // namespace cdst
