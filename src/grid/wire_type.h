/// \file wire_type.h
/// Wire type (width/spacing configuration) and via descriptors.
///
/// The paper (Section I): "If multiple wire types ... are available G may
/// have a parallel edge for each wire type that has an individual cost and
/// delay." A wide wire consumes more routing capacity (higher congestion
/// cost) but has lower resistance (lower linear delay).

#pragma once

#include <string>

namespace cdst {

struct WireType {
  std::string name;

  /// Capacity units (track equivalents) consumed per gcell crossed.
  double width{1.0};

  /// Congestion-cost weight per gcell at zero congestion. Typically
  /// proportional to width: using a wide wire "costs" more routing resource.
  double unit_cost{1.0};

  /// Linear delay (ps) per gcell crossed, from the repeater-chain model
  /// (timing/repeater_chain.h) or set directly in tests.
  double delay_per_gcell{1.0};
};

struct ViaSpec {
  /// Capacity units consumed per via stack through a gcell boundary.
  double width{1.0};

  /// Congestion-cost weight of one via.
  double unit_cost{1.0};

  /// Delay (ps) of one via hop.
  double delay{1.0};
};

}  // namespace cdst
