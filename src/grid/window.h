/// \file window.h
/// Routing windows: subgraphs of the routing grid restricted to a plane
/// rectangle (all layers), with id translation back to the full grid.
///
/// Global routers solve per-net Steiner problems inside the net's bounding
/// box inflated by a detour margin — both for speed and because optimal
/// detours rarely leave that region. All per-net oracles (cost-distance and
/// the embedded baselines) run on windows; usage is committed on grid edges.

#pragma once

#include <memory>
#include <vector>

#include "core/future_oracle.h"
#include "geom/rect.h"
#include "grid/cost_model.h"
#include "grid/routing_grid.h"
#include "util/sparse_map.h"

namespace cdst {

class RoutingWindow {
 public:
  /// Builds the subgraph of `grid` over gcells in `box` (clipped to the
  /// grid), all layers included, with current congestion prices as costs.
  RoutingWindow(const RoutingGrid& grid, const CongestionCosts& costs,
                Rect box);

  const Graph& graph() const { return graph_; }
  const RoutingGrid& grid() const { return *grid_; }
  const Rect& box() const { return box_; }

  /// Congestion prices of window edges (the instance's c vector).
  const std::vector<double>& edge_costs() const { return costs_; }
  /// Static delays of window edges (the instance's d vector).
  const std::vector<double>& edge_delays() const { return delays_; }

  VertexId to_grid_vertex(VertexId wv) const { return to_grid_vertex_[wv]; }
  EdgeId to_grid_edge(EdgeId we) const { return to_grid_edge_[we]; }

  /// Window vertex for a grid vertex; kInvalidVertex if outside the box.
  VertexId from_grid_vertex(VertexId gv) const;

  /// Maps window-edge paths back to grid edges.
  std::vector<EdgeId> to_grid_edges(const std::vector<EdgeId>& wes) const;

 private:
  const RoutingGrid* grid_;
  Rect box_;
  Graph graph_;
  std::vector<VertexId> to_grid_vertex_;
  std::vector<EdgeId> to_grid_edge_;
  std::vector<double> costs_;
  std::vector<double> delays_;
  std::int32_t wx_{0}, wy_{0};  ///< window extent in gcells
};

/// FutureCostOracle over a routing window: geometric L1 bounds evaluated in
/// grid coordinates (no landmarks — windows are rebuilt per net).
class WindowFutureCost final : public FutureCostOracle {
 public:
  explicit WindowFutureCost(const RoutingWindow& w) : w_(&w) {}

  Point2 xy(VertexId v) const override {
    return w_->grid().position(w_->to_grid_vertex(v)).xy();
  }
  double cost_lb(VertexId a, VertexId b) const override {
    const Point3 pa = w_->grid().position(w_->to_grid_vertex(a));
    const Point3 pb = w_->grid().position(w_->to_grid_vertex(b));
    return static_cast<double>(l1_distance(pa, pb)) *
               w_->grid().min_unit_cost() +
           std::abs(pa.z - pb.z) * w_->grid().min_via_cost();
  }
  double delay_lb(VertexId a, VertexId b) const override {
    const Point3 pa = w_->grid().position(w_->to_grid_vertex(a));
    const Point3 pb = w_->grid().position(w_->to_grid_vertex(b));
    return static_cast<double>(l1_distance(pa, pb)) *
               w_->grid().min_unit_delay() +
           std::abs(pa.z - pb.z) * w_->grid().min_via_delay();
  }
  double min_unit_cost() const override { return w_->grid().min_unit_cost(); }
  double min_unit_delay() const override {
    return w_->grid().min_unit_delay();
  }

 private:
  const RoutingWindow* w_;
};

}  // namespace cdst
