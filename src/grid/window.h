/// \file window.h
/// Routing windows: subgraphs of the routing grid restricted to a plane
/// rectangle (all layers), with id translation back to the full grid.
///
/// Global routers solve per-net Steiner problems inside the net's bounding
/// box inflated by a detour margin — both for speed and because optimal
/// detours rarely leave that region. All per-net oracles (cost-distance and
/// the embedded baselines) run on windows; usage is committed on grid edges.

#pragma once

#include <memory>
#include <vector>

#include "core/future_oracle.h"
#include "geom/rect.h"
#include "graph/arc_cost_view.h"
#include "grid/cost_model.h"
#include "grid/routing_grid.h"
#include "util/sparse_map.h"

namespace cdst {

/// Frozen pricing of one sharded router round (route/sharding.h): every net
/// of the round prices its window from the same per-grid-edge snapshot,
/// except for the resources its own committed route occupies, which are
/// re-priced with that usage excluded (the sharded equivalent of ripping the
/// net up before pricing). Both members are borrowed for the window build.
struct RoundPricing {
  std::span<const double> edge_costs;  ///< snapshot, grid-EdgeId indexed
  /// Resource -> capacity units of the net's own committed usage to exclude;
  /// null when the net has no committed route.
  const SparseMap<double>* excluded_usage{nullptr};
};

class RoutingWindow {
 public:
  /// Builds the subgraph of `grid` over gcells in `box` (clipped to the
  /// grid), all layers included, with current congestion prices as costs.
  /// `pricing` (optional) prices from a frozen round snapshot instead of the
  /// live CongestionCosts state — see RoundPricing.
  RoutingWindow(const RoutingGrid& grid, const CongestionCosts& costs,
                Rect box, const RoundPricing* pricing = nullptr);

  const Graph& graph() const { return graph_; }
  const RoutingGrid& grid() const { return *grid_; }
  const Rect& box() const { return box_; }

  /// Congestion prices of window edges (the instance's c vector).
  const std::vector<double>& edge_costs() const { return costs_; }
  /// Static delays of window edges (the instance's d vector).
  const std::vector<double>& edge_delays() const { return delays_; }

  /// SoA plane of the window's priced attributes, keyed by window arc index
  /// (what the solver's blocked relax loop scans).
  const ArcCostView& arc_costs() const { return arc_costs_; }

  VertexId to_grid_vertex(VertexId wv) const { return to_grid_vertex_[wv]; }
  EdgeId to_grid_edge(EdgeId we) const { return to_grid_edge_[we]; }

  /// Dense per-window-vertex positions in grid coordinates (the SoA
  /// geometry plane behind WindowFutureCost's bounds).
  const std::vector<Point3>& positions() const { return positions_; }

  /// Window vertex for a grid vertex; kInvalidVertex if outside the box.
  VertexId from_grid_vertex(VertexId gv) const;

  /// Maps window-edge paths back to grid edges.
  std::vector<EdgeId> to_grid_edges(const std::vector<EdgeId>& wes) const;

 private:
  const RoutingGrid* grid_;
  Rect box_;
  Graph graph_;
  ArcCostView arc_costs_;
  std::vector<VertexId> to_grid_vertex_;
  std::vector<Point3> positions_;
  std::vector<EdgeId> to_grid_edge_;
  std::vector<double> costs_;
  std::vector<double> delays_;
  std::int32_t wx_{0}, wy_{0};  ///< window extent in gcells
};

/// FutureCostOracle over a routing window: geometric L1 bounds evaluated in
/// grid coordinates (no landmarks — windows are rebuilt per net).
class WindowFutureCost final : public FutureCostOracle {
 public:
  explicit WindowFutureCost(const RoutingWindow& w) : w_(&w) {}

  Point2 xy(VertexId v) const override {
    return w_->grid().position(w_->to_grid_vertex(v)).xy();
  }
  double cost_lb(VertexId a, VertexId b) const override {
    const Point3 pa = w_->grid().position(w_->to_grid_vertex(a));
    const Point3 pb = w_->grid().position(w_->to_grid_vertex(b));
    return static_cast<double>(l1_distance(pa, pb)) *
               w_->grid().min_unit_cost() +
           std::abs(pa.z - pb.z) * w_->grid().min_via_cost();
  }
  double delay_lb(VertexId a, VertexId b) const override {
    const Point3 pa = w_->grid().position(w_->to_grid_vertex(a));
    const Point3 pb = w_->grid().position(w_->to_grid_vertex(b));
    return static_cast<double>(l1_distance(pa, pb)) *
               w_->grid().min_unit_delay() +
           std::abs(pa.z - pb.z) * w_->grid().min_via_delay();
  }
  double min_unit_cost() const override { return w_->grid().min_unit_cost(); }
  double min_unit_delay() const override {
    return w_->grid().min_unit_delay();
  }

  /// Window bounds are always pure geometry (no landmarks on windows), so
  /// the SoA plane is unconditional.
  PlaneBoundData plane_bounds() const override {
    return PlaneBoundData{w_->positions().data(), w_->grid().min_unit_cost(),
                          w_->grid().min_unit_delay(),
                          w_->grid().min_via_cost(),
                          w_->grid().min_via_delay()};
  }

 private:
  const RoutingWindow* w_;
};

}  // namespace cdst
