/// \file cost_model.h
/// Congestion pricing of routing-grid edges.
///
/// "an edge cost c(e) arises from the current edge usage" (paper Section I).
/// We use the resource-sharing style exponential price of [13]: the price of
/// a resource grows exponentially in its utilization, so the Lagrangean
/// router trades congested regions against detours and the cost-distance
/// oracle sees c(e) that is *uncorrelated* with d(e) — the defining feature
/// of the problem.

#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/graph.h"
#include "grid/routing_grid.h"

namespace cdst {

struct CongestionParams {
  /// Exponential base: price multiplier at 100% utilization.
  double price_at_full{16.0};
  /// Utilization beyond which the price keeps growing linearly in the
  /// exponent (no cap): overfull edges become rapidly prohibitive.
  double smoothing{1.0};
};

/// Tracks per-resource usage and prices edges.
class CongestionCosts {
 public:
  CongestionCosts(const RoutingGrid& grid, CongestionParams params = {});

  const RoutingGrid& grid() const { return *grid_; }

  /// Current congestion price for routing one more wire over edge e:
  ///   c(e) = unit_cost(e) * price_at_full ^ (utilization(resource(e)))
  /// (>= unit_cost(e), equality at zero usage).
  double edge_cost(EdgeId e) const {
    const RoutingGrid::EdgeInfo& info = grid_->edge_info(e);
    const double util = usage_[info.resource] / capacity_[info.resource];
    return info.unit_cost * std::exp(log_base_ * util * params_.smoothing);
  }

  /// Price of e with `excluded_usage` capacity units of its resource's usage
  /// discounted (floored at zero). The sharded router prices each net
  /// against the frozen round snapshot *minus the net's own committed
  /// usage* — the snapshot-world equivalent of ripping the net up first.
  double edge_cost_excluding(EdgeId e, double excluded_usage) const {
    const RoutingGrid::EdgeInfo& info = grid_->edge_info(e);
    const double use = std::max(0.0, usage_[info.resource] - excluded_usage);
    const double util = use / capacity_[info.resource];
    return info.unit_cost * std::exp(log_base_ * util * params_.smoothing);
  }

  /// Snapshot of edge costs for all edges (the c vector handed to solvers).
  std::vector<double> edge_cost_vector() const;

  /// Like edge_cost_vector(), but fills a caller-owned vector (capacity
  /// recycled round over round by the sharded router's price snapshot).
  void fill_edge_costs(std::vector<double>& out) const;

  /// Commits (sign=+1) or rips up (sign=-1) the usage of a set of edges.
  void add_usage(const std::vector<EdgeId>& edges, double sign);

  /// Overwrites one resource's usage (floored at zero). The distributed
  /// shard executor (dist/shard_executor.h) replays a round's frozen
  /// per-resource usage into a worker-local instance with this, so
  /// edge_cost_excluding prices bit-identically off-process.
  void set_usage(ResourceId r, double usage) {
    usage_[r] = std::max(0.0, usage);
  }

  double usage(ResourceId r) const { return usage_[r]; }
  double utilization(ResourceId r) const { return usage_[r] / capacity_[r]; }
  std::size_t num_resources() const { return usage_.size(); }

  void reset();

 private:
  const RoutingGrid* grid_;
  CongestionParams params_;
  double log_base_;
  std::vector<double> usage_;
  std::vector<double> capacity_;
};

}  // namespace cdst
