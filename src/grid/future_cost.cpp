#include "grid/future_cost.h"

namespace cdst {

FutureCost::FutureCost(const RoutingGrid& grid, std::size_t num_landmarks,
                       ThreadPool* pool)
    : grid_(&grid),
      min_unit_cost_(grid.min_unit_cost()),
      min_unit_delay_(grid.min_unit_delay()),
      min_via_cost_(grid.min_via_cost()),
      min_via_delay_(grid.min_via_delay()) {
  if (num_landmarks > 0) {
    // Batch of 4 per greedy round: enough table-build parallelism for the
    // shared pool while keeping the avoid-farthest selection quality. The
    // batch is a constant (never derived from the pool size) so landmark
    // picks are identical with any pool, including none. The length functor
    // rides the grid's SoA base-cost plane, so the k full-graph Dijkstras
    // relax over contiguous arc strips.
    landmarks_ = std::make_unique<Landmarks>(
        grid.graph(), ArrayLength(grid.arc_costs()), num_landmarks, pool,
        /*batch=*/4);
  }
}

}  // namespace cdst
