#include "grid/future_cost.h"

namespace cdst {

FutureCost::FutureCost(const RoutingGrid& grid, std::size_t num_landmarks)
    : grid_(&grid),
      min_unit_cost_(grid.min_unit_cost()),
      min_unit_delay_(grid.min_unit_delay()),
      min_via_cost_(grid.min_via_cost()),
      min_via_delay_(grid.min_via_delay()) {
  if (num_landmarks > 0) {
    landmarks_ = std::make_unique<Landmarks>(
        grid.graph(), ArrayLength{grid.base_costs()}, num_landmarks);
  }
}

}  // namespace cdst
