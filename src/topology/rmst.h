/// \file rmst.h
/// Rectilinear minimum spanning tree over terminals (Prim's algorithm).
/// The starting point of the L1 and SL topology constructions.

#pragma once

#include "topology/topology.h"

namespace cdst {

/// Spanning arborescence over {root} + sinks, minimizing total L1 length.
/// Runs in O(k^2) which is ample for net-sized terminal counts.
PlaneTopology rectilinear_mst(const Point2& root,
                              const std::vector<PlaneTerminal>& sinks);

}  // namespace cdst
