#include "topology/rmst.h"

#include <limits>

namespace cdst {

PlaneTopology rectilinear_mst(const Point2& root,
                              const std::vector<PlaneTerminal>& sinks) {
  const std::size_t k = sinks.size() + 1;
  std::vector<Point2> pts;
  pts.reserve(k);
  pts.push_back(root);
  for (const PlaneTerminal& s : sinks) pts.push_back(s.pos);

  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> best(k, kInf);
  std::vector<std::int32_t> best_from(k, -1);
  std::vector<bool> in_tree(k, false);
  std::vector<std::int32_t> node_of(k, -1);  // point index -> topology node

  PlaneTopology topo;
  topo.nodes.push_back(PlaneTopology::Node{root, -1, -1});
  in_tree[0] = true;
  node_of[0] = 0;
  for (std::size_t i = 1; i < k; ++i) {
    best[i] = l1_distance(pts[i], root);
    best_from[i] = 0;
  }

  for (std::size_t added = 1; added < k; ++added) {
    std::int64_t min_d = kInf;
    std::size_t pick = 0;
    for (std::size_t i = 1; i < k; ++i) {
      if (!in_tree[i] && best[i] < min_d) {
        min_d = best[i];
        pick = i;
      }
    }
    CDST_CHECK(pick != 0);
    in_tree[pick] = true;
    topo.nodes.push_back(PlaneTopology::Node{
        pts[pick], node_of[static_cast<std::size_t>(best_from[pick])],
        static_cast<std::int32_t>(pick - 1)});
    node_of[pick] = static_cast<std::int32_t>(topo.nodes.size() - 1);
    for (std::size_t i = 1; i < k; ++i) {
      if (in_tree[i]) continue;
      const std::int64_t d = l1_distance(pts[i], pts[pick]);
      if (d < best[i]) {
        best[i] = d;
        best_from[i] = static_cast<std::int32_t>(pick);
      }
    }
  }
  return topo;
}

}  // namespace cdst
