/// \file topology.h
/// Plane Steiner topologies.
///
/// The three comparison methods of Section IV-A (L1, SL, PD) "first compute a
/// Steiner topology in the plane, considering total length instead of
/// congestion cost. Then, this tree is embedded optimally into the global
/// routing graph". This type is their common output: an arborescence over
/// plane points whose leaves are the root and the sinks. The embedder
/// (src/embed) consumes only the structure and leaf labels; the positions
/// document the plane construction and drive length statistics.

#pragma once

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "util/assert.h"

namespace cdst {

/// A terminal of a plane topology problem.
struct PlaneTerminal {
  Point2 pos;
  double weight{0.0};       ///< delay weight (criticality)
  double delay_bound{0.0};  ///< required delay budget (ps); 0 = unbounded
};

struct PlaneTopology {
  struct Node {
    Point2 pos;
    std::int32_t parent{-1};
    std::int32_t sink_index{-1};  ///< index into the sink list, or -1
  };

  /// nodes[0] is the root; parents always precede children.
  std::vector<Node> nodes;

  std::size_t num_nodes() const { return nodes.size(); }

  std::vector<std::vector<std::int32_t>> children() const;

  /// Total rectilinear length of all edges.
  std::int64_t total_length() const;

  /// Rectilinear path length from the root to each node.
  std::vector<std::int64_t> path_lengths() const;

  /// Checks parent ordering, sink uniqueness, and root at index 0.
  void validate(std::size_t num_sinks) const;

  /// Removes degree-2 Steiner nodes (merging their edges) and unused
  /// Steiner leaves; keeps indices parent-ordered.
  void canonicalize();
};

/// Star topology: every sink connects directly to the root. The simplest
/// valid topology, used as a fallback and in tests.
PlaneTopology star_topology(const Point2& root,
                            const std::vector<PlaneTerminal>& sinks);

/// Renumbers nodes so parents precede children (required by PlaneTopology's
/// sweep-based helpers after rewiring passes). Throws if disconnected.
void reorder_parent_first(PlaneTopology& topo);

}  // namespace cdst
