#include "topology/topology.h"

#include <algorithm>

namespace cdst {

std::vector<std::vector<std::int32_t>> PlaneTopology::children() const {
  std::vector<std::vector<std::int32_t>> ch(nodes.size());
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    CDST_ASSERT(nodes[i].parent >= 0);
    ch[static_cast<std::size_t>(nodes[i].parent)].push_back(
        static_cast<std::int32_t>(i));
  }
  return ch;
}

std::int64_t PlaneTopology::total_length() const {
  std::int64_t len = 0;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    len += l1_distance(nodes[i].pos,
                       nodes[static_cast<std::size_t>(nodes[i].parent)].pos);
  }
  return len;
}

std::vector<std::int64_t> PlaneTopology::path_lengths() const {
  std::vector<std::int64_t> pl(nodes.size(), 0);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const auto p = static_cast<std::size_t>(nodes[i].parent);
    pl[i] = pl[p] + l1_distance(nodes[i].pos, nodes[p].pos);
  }
  return pl;
}

void PlaneTopology::validate(std::size_t num_sinks) const {
  CDST_CHECK(!nodes.empty());
  CDST_CHECK(nodes[0].parent == -1);
  std::vector<int> seen(num_sinks, 0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) {
      CDST_CHECK(nodes[i].parent >= 0 &&
                 static_cast<std::size_t>(nodes[i].parent) < i);
    }
    if (nodes[i].sink_index >= 0) {
      CDST_CHECK(static_cast<std::size_t>(nodes[i].sink_index) < num_sinks);
      ++seen[static_cast<std::size_t>(nodes[i].sink_index)];
    }
  }
  for (std::size_t s = 0; s < num_sinks; ++s) {
    CDST_CHECK_MSG(seen[s] == 1, "topology must contain each sink once");
  }
}

void PlaneTopology::canonicalize() {
  // Iterate because removing a Steiner leaf can create a degree-2 node and
  // vice versa.
  bool changed = true;
  while (changed) {
    changed = false;
    const auto ch = children();
    // Splice out degree-2 Steiner nodes (one child, not a terminal).
    std::vector<bool> drop(nodes.size(), false);
    for (std::size_t i = 1; i < nodes.size(); ++i) {
      if (nodes[i].sink_index >= 0) continue;
      if (ch[i].size() == 1) {
        nodes[static_cast<std::size_t>(ch[i][0])].parent = nodes[i].parent;
        drop[i] = true;
        changed = true;
      } else if (ch[i].empty()) {
        drop[i] = true;  // Steiner leaf
        changed = true;
      }
    }
    if (!changed) break;
    // Compact while preserving parent-before-child order.
    std::vector<std::int32_t> remap(nodes.size(), -1);
    std::vector<Node> out;
    out.reserve(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (drop[i]) continue;
      Node n = nodes[i];
      if (n.parent >= 0) {
        // The parent chain may pass through dropped nodes; parents of
        // dropped nodes were rewired above, but chase transitively in case
        // of chains.
        std::int32_t p = n.parent;
        while (drop[static_cast<std::size_t>(p)]) {
          p = nodes[static_cast<std::size_t>(p)].parent;
        }
        CDST_ASSERT(remap[static_cast<std::size_t>(p)] >= 0);
        n.parent = remap[static_cast<std::size_t>(p)];
      }
      remap[i] = static_cast<std::int32_t>(out.size());
      out.push_back(n);
    }
    nodes = std::move(out);
  }
}

void reorder_parent_first(PlaneTopology& topo) {
  const std::size_t nn = topo.nodes.size();
  const auto ch = topo.children();
  std::vector<std::int32_t> order;
  order.reserve(nn);
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const std::int32_t v = stack.back();
    stack.pop_back();
    order.push_back(v);
    for (const std::int32_t c : ch[static_cast<std::size_t>(v)]) {
      stack.push_back(c);
    }
  }
  CDST_CHECK_MSG(order.size() == nn, "topology is disconnected");
  std::vector<std::int32_t> remap(nn, -1);
  for (std::size_t i = 0; i < nn; ++i) {
    remap[static_cast<std::size_t>(order[i])] = static_cast<std::int32_t>(i);
  }
  std::vector<PlaneTopology::Node> out(nn);
  for (std::size_t i = 0; i < nn; ++i) {
    PlaneTopology::Node n = topo.nodes[static_cast<std::size_t>(order[i])];
    if (n.parent >= 0) n.parent = remap[static_cast<std::size_t>(n.parent)];
    out[i] = n;
  }
  topo.nodes = std::move(out);
}

PlaneTopology star_topology(const Point2& root,
                            const std::vector<PlaneTerminal>& sinks) {
  PlaneTopology t;
  t.nodes.push_back(PlaneTopology::Node{root, -1, -1});
  for (std::size_t s = 0; s < sinks.size(); ++s) {
    t.nodes.push_back(PlaneTopology::Node{sinks[s].pos, 0,
                                          static_cast<std::int32_t>(s)});
  }
  return t;
}

}  // namespace cdst
