#include "topology/rsmt.h"

#include <algorithm>

#include "topology/rmst.h"

namespace cdst {

Point2 l1_median(const Point2& a, const Point2& b, const Point2& c) {
  auto med = [](std::int32_t x, std::int32_t y, std::int32_t z) {
    return std::max(std::min(x, y), std::min(std::max(x, y), z));
  };
  return Point2{med(a.x, b.x, c.x), med(a.y, b.y, c.y)};
}

namespace {

/// One steinerization round: finds the best positive-gain median insertion
/// and applies it. Returns false when no improvement exists.
bool steinerize_once(PlaneTopology& topo) {
  const auto ch = topo.children();
  std::int64_t best_gain = 0;
  std::size_t best_u = 0;
  std::int32_t best_a = -1;  // neighbour indices (node ids); -2 = parent
  std::int32_t best_b = -1;
  Point2 best_m;

  const std::size_t nn = topo.nodes.size();
  for (std::size_t u = 0; u < nn; ++u) {
    // Incident edges: to parent (if any) and to children.
    std::vector<std::int32_t> nbrs = ch[u];
    if (topo.nodes[u].parent >= 0) nbrs.push_back(topo.nodes[u].parent);
    const Point2 pu = topo.nodes[u].pos;
    for (std::size_t i = 0; i + 1 < nbrs.size(); ++i) {
      for (std::size_t jj = i + 1; jj < nbrs.size(); ++jj) {
        const Point2 pa = topo.nodes[static_cast<std::size_t>(nbrs[i])].pos;
        const Point2 pb = topo.nodes[static_cast<std::size_t>(nbrs[jj])].pos;
        const Point2 m = l1_median(pu, pa, pb);
        const std::int64_t gain =
            l1_distance(pu, pa) + l1_distance(pu, pb) -
            (l1_distance(pu, m) + l1_distance(m, pa) + l1_distance(m, pb));
        if (gain > best_gain) {
          best_gain = gain;
          best_u = u;
          best_a = nbrs[i];
          best_b = nbrs[jj];
          best_m = m;
        }
      }
    }
  }
  if (best_gain <= 0) return false;

  // Insert Steiner node m between u and its two neighbours. Rooted rewiring
  // distinguishes whether one neighbour is u's parent.
  const auto parent_of_u = topo.nodes[best_u].parent;
  const bool a_is_parent = best_a == parent_of_u &&
                           static_cast<std::int32_t>(best_u) !=
                               best_a;  // (root has parent -1 != any id)
  const bool b_is_parent = best_b == parent_of_u && !a_is_parent;

  topo.nodes.push_back(PlaneTopology::Node{best_m, -1, -1});
  const auto m_id = static_cast<std::int32_t>(topo.nodes.size() - 1);

  if (a_is_parent || b_is_parent) {
    const std::int32_t par = a_is_parent ? best_a : best_b;
    const std::int32_t child = a_is_parent ? best_b : best_a;
    // parent(u) -> m -> {u, child}
    topo.nodes[static_cast<std::size_t>(m_id)].parent = par;
    topo.nodes[best_u].parent = m_id;
    topo.nodes[static_cast<std::size_t>(child)].parent = m_id;
  } else {
    // u -> m -> {a, b}
    topo.nodes[static_cast<std::size_t>(m_id)].parent =
        static_cast<std::int32_t>(best_u);
    topo.nodes[static_cast<std::size_t>(best_a)].parent = m_id;
    topo.nodes[static_cast<std::size_t>(best_b)].parent = m_id;
  }
  return true;
}

}  // namespace

PlaneTopology rsmt_topology(const Point2& root,
                            const std::vector<PlaneTerminal>& sinks) {
  PlaneTopology topo = rectilinear_mst(root, sinks);
  // Bounded number of rounds; each strictly reduces length.
  const std::size_t max_rounds = 4 * topo.nodes.size() + 16;
  for (std::size_t r = 0; r < max_rounds; ++r) {
    if (!steinerize_once(topo)) break;
  }
  reorder_parent_first(topo);
  topo.canonicalize();
  return topo;
}

}  // namespace cdst
