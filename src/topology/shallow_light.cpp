#include "topology/shallow_light.h"

#include <algorithm>

#include "core/instance.h"  // optimal_lambda
#include "topology/rsmt.h"

namespace cdst {

std::vector<double> plane_delays(const PlaneTopology& topo,
                                 const std::vector<PlaneTerminal>& sinks,
                                 double delay_per_unit, double dbif,
                                 double eta) {
  const std::size_t nn = topo.nodes.size();
  // Subtree delay weights (reverse sweep; parents precede children).
  std::vector<double> subw(nn, 0.0);
  for (std::size_t i = nn; i-- > 0;) {
    const auto& n = topo.nodes[i];
    if (n.sink_index >= 0) {
      subw[i] += sinks[static_cast<std::size_t>(n.sink_index)].weight;
    }
    if (n.parent >= 0) subw[static_cast<std::size_t>(n.parent)] += subw[i];
  }
  const auto ch = topo.children();
  std::vector<double> delay(nn, 0.0);
  for (std::size_t i = 1; i < nn; ++i) {
    const auto& n = topo.nodes[i];
    const auto p = static_cast<std::size_t>(n.parent);
    double dl = delay[p] + delay_per_unit *
                               static_cast<double>(l1_distance(
                                   n.pos, topo.nodes[p].pos));
    if (dbif > 0.0 && ch[p].size() >= 2) {
      // Flexible redistribution: this branch competes against the combined
      // weight of its siblings (multi-way branchings decompose into stacked
      // bifurcations when embedded).
      const double sibling_w = subw[p] - subw[i] -
                               (topo.nodes[p].sink_index >= 0
                                    ? sinks[static_cast<std::size_t>(
                                              topo.nodes[p].sink_index)]
                                          .weight
                                    : 0.0);
      dl += optimal_lambda(subw[i], std::max(0.0, sibling_w), eta) * dbif;
    }
    delay[i] = dl;
  }
  return delay;
}

namespace {

double sink_bound(const PlaneTerminal& s, const Point2& root,
                  const ShallowLightParams& p) {
  const double direct =
      p.delay_per_unit * static_cast<double>(l1_distance(root, s.pos));
  const double base = s.delay_bound > 0.0 ? std::max(s.delay_bound, direct)
                                          : direct;
  return (1.0 + p.epsilon) * base;
}

/// True if every sink meets its (1+eps) bound under the given delays.
bool all_bounds_met(const PlaneTopology& topo,
                    const std::vector<PlaneTerminal>& sinks,
                    const std::vector<double>& delays, const Point2& root,
                    const ShallowLightParams& p) {
  for (std::size_t i = 0; i < topo.nodes.size(); ++i) {
    const auto si = topo.nodes[i].sink_index;
    if (si < 0) continue;
    if (delays[i] >
        sink_bound(sinks[static_cast<std::size_t>(si)], root, p) + 1e-9) {
      return false;
    }
  }
  return true;
}

}  // namespace

PlaneTopology shallow_light_topology(const Point2& root,
                                     const std::vector<PlaneTerminal>& sinks,
                                     const ShallowLightParams& params) {
  PlaneTopology topo = rsmt_topology(root, sinks);
  const std::size_t nn = topo.nodes.size();

  // ---- Forward pass: reconnect bound-violating sinks to the root. --------
  // Nodes are parent-ordered, so one sweep propagates updated delays into
  // subtrees of rerouted nodes.
  struct DeletedEdge {
    std::int32_t node;        ///< rerouted node
    std::int32_t old_parent;  ///< its former parent
  };
  std::vector<DeletedEdge> deleted;
  {
    std::vector<double> delay = plane_delays(topo, sinks, params.delay_per_unit,
                                             params.dbif, params.eta);
    for (std::size_t i = 1; i < nn; ++i) {
      const auto si = topo.nodes[i].sink_index;
      if (si < 0) continue;
      if (delay[i] >
          sink_bound(sinks[static_cast<std::size_t>(si)], root, params)) {
        deleted.push_back(DeletedEdge{static_cast<std::int32_t>(i),
                                      topo.nodes[i].parent});
        topo.nodes[i].parent = 0;
        // Recompute all delays (subtree weights at the root shifted too).
        delay = plane_delays(topo, sinks, params.delay_per_unit, params.dbif,
                             params.eta);
      }
    }
  }

  // ---- Reverse pass: try re-activating deleted edges in reverse order to
  // serve the former predecessor through the rerouted (now fast) node. -----
  for (std::size_t di = deleted.size(); di-- > 0;) {
    const std::int32_t v = deleted[di].node;
    const std::int32_t p = deleted[di].old_parent;
    if (p <= 0) continue;  // root or already gone
    const auto pu = static_cast<std::size_t>(p);
    // Reversing makes p a child of v; reject if that creates a cycle (v must
    // not be a descendant of p any more).
    bool cycle = false;
    for (std::int32_t a = v; a >= 0; a = topo.nodes[static_cast<std::size_t>(a)].parent) {
      if (a == p) {
        cycle = true;
        break;
      }
    }
    if (cycle) continue;
    const std::int64_t old_len =
        l1_distance(topo.nodes[pu].pos,
                    topo.nodes[static_cast<std::size_t>(topo.nodes[pu].parent)].pos);
    const std::int64_t new_len =
        l1_distance(topo.nodes[pu].pos, topo.nodes[static_cast<std::size_t>(v)].pos);
    if (new_len >= old_len) continue;  // must save cost

    const std::int32_t saved_parent = topo.nodes[pu].parent;
    topo.nodes[pu].parent = v;
    const std::vector<double> delay = plane_delays(
        topo, sinks, params.delay_per_unit, params.dbif, params.eta);
    if (!all_bounds_met(topo, sinks, delay, root, params)) {
      topo.nodes[pu].parent = saved_parent;  // revert
    }
  }

  // Parent order may be violated by reversals; normalize.
  reorder_parent_first(topo);
  topo.canonicalize();
  topo.validate(sinks.size());
  return topo;
}

}  // namespace cdst
