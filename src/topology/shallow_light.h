/// \file shallow_light.h
/// Shallow-light Steiner topology (the "SL" baseline of Section IV-A,
/// following Held & Rotter [14] / KRY-style reconnection).
///
/// "These algorithms start from an approximately minimum-length tree. During
/// a DFS traversal, sinks are reconnected to the root whenever they violate a
/// given delay/distance bound by more than a factor (1 + eps). In a reverse
/// DFS traversal, deleted edges may be re-activated to connect former
/// predecessors if that saves cost." Bifurcation penalties are redistributed
/// with the flexible (eta) model of the paper during both passes.

#pragma once

#include "topology/topology.h"

namespace cdst {

struct ShallowLightParams {
  /// Allowed relative delay-bound violation before reconnection.
  double epsilon{0.25};
  /// Linear delay estimate per plane unit (fastest layer/wire combination).
  double delay_per_unit{1.0};
  double dbif{0.0};
  double eta{0.5};
};

PlaneTopology shallow_light_topology(const Point2& root,
                                     const std::vector<PlaneTerminal>& sinks,
                                     const ShallowLightParams& params);

/// Plane delay estimates per node for a topology: delay_per_unit * path
/// length plus flexibly distributed bifurcation penalties (Eq. (2)) at every
/// multi-child node. Shared with tests and the PD construction.
std::vector<double> plane_delays(const PlaneTopology& topo,
                                 const std::vector<PlaneTerminal>& sinks,
                                 double delay_per_unit, double dbif,
                                 double eta);

}  // namespace cdst
