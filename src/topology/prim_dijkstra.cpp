#include "topology/prim_dijkstra.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/instance.h"  // optimal_lambda

namespace cdst {
namespace {

/// Closest point to q within the bounding box of segment (a, b) — every
/// monotone staircase between a and b can pass through it without length
/// increase, so it is the optimal Steiner split point on that tree edge.
Point2 clamp_to_bbox(const Point2& q, const Point2& a, const Point2& b) {
  return Point2{std::clamp(q.x, std::min(a.x, b.x), std::max(a.x, b.x)),
                std::clamp(q.y, std::min(a.y, b.y), std::max(a.y, b.y))};
}

}  // namespace

PlaneTopology prim_dijkstra_topology(const Point2& root,
                                     const std::vector<PlaneTerminal>& sinks,
                                     const PrimDijkstraParams& params) {
  const double gamma = std::clamp(params.gamma, 0.0, 1.0);
  // Penalty expressed in plane length units so it can blend with distances.
  const double bif_len = params.delay_per_unit > 0.0
                             ? params.dbif / params.delay_per_unit
                             : 0.0;

  PlaneTopology topo;
  topo.nodes.push_back(PlaneTopology::Node{root, -1, -1});
  std::vector<double> pathlen{0.0};       // per node, plane units
  std::vector<double> subtree_w{0.0};     // delay weight below each node

  std::vector<bool> added(sinks.size(), false);

  for (std::size_t round = 0; round < sinks.size(); ++round) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_sink = 0;
    std::size_t best_node = 0;   // attach node (or edge child when splitting)
    bool best_is_edge = false;
    Point2 best_split;

    const auto ch = topo.children();
    for (std::size_t s = 0; s < sinks.size(); ++s) {
      if (added[s]) continue;
      const Point2 ps = sinks[s].pos;
      const double ws = sinks[s].weight;
      // Attach directly at an existing node.
      for (std::size_t u = 0; u < topo.nodes.size(); ++u) {
        const double dist =
            static_cast<double>(l1_distance(topo.nodes[u].pos, ps));
        double penalty = 0.0;
        if (bif_len > 0.0 && !ch[u].empty()) {
          // The new branch competes with the subtree already below u.
          penalty = optimal_lambda(ws, subtree_w[u], params.eta) * bif_len;
        }
        const double cost = gamma * pathlen[u] + dist + penalty;
        if (cost < best) {
          best = cost;
          best_sink = s;
          best_node = u;
          best_is_edge = false;
        }
      }
      // Attach by splitting an existing edge (child c, parent p) at the
      // closest staircase point.
      for (std::size_t c = 1; c < topo.nodes.size(); ++c) {
        const auto p = static_cast<std::size_t>(topo.nodes[c].parent);
        const Point2 split = clamp_to_bbox(ps, topo.nodes[p].pos,
                                           topo.nodes[c].pos);
        const double along =
            static_cast<double>(l1_distance(topo.nodes[p].pos, split));
        const double dist = static_cast<double>(l1_distance(split, ps));
        double penalty = 0.0;
        if (bif_len > 0.0) {
          penalty = optimal_lambda(ws, subtree_w[c], params.eta) * bif_len;
        }
        const double cost = gamma * (pathlen[p] + along) + dist + penalty;
        if (cost < best) {
          best = cost;
          best_sink = s;
          best_node = c;
          best_is_edge = true;
          best_split = split;
        }
      }
    }
    CDST_CHECK(std::isfinite(best));

    const PlaneTerminal& sk = sinks[best_sink];
    std::size_t attach;
    if (best_is_edge) {
      const auto c = best_node;
      const auto p = static_cast<std::size_t>(topo.nodes[c].parent);
      if (best_split == topo.nodes[p].pos) {
        attach = p;  // degenerate split at the parent end
      } else if (best_split == topo.nodes[c].pos) {
        attach = c;  // degenerate split at the child end
      } else {
        topo.nodes.push_back(PlaneTopology::Node{
            best_split, static_cast<std::int32_t>(p), -1});
        attach = topo.nodes.size() - 1;
        topo.nodes[c].parent = static_cast<std::int32_t>(attach);
        pathlen.push_back(pathlen[p] +
                          static_cast<double>(l1_distance(topo.nodes[p].pos,
                                                          best_split)));
        subtree_w.push_back(subtree_w[c]);
      }
    } else {
      attach = best_node;
    }

    topo.nodes.push_back(PlaneTopology::Node{
        sk.pos, static_cast<std::int32_t>(attach),
        static_cast<std::int32_t>(best_sink)});
    pathlen.push_back(pathlen[attach] +
                      static_cast<double>(l1_distance(topo.nodes[attach].pos,
                                                      sk.pos)));
    subtree_w.push_back(sk.weight);
    // Propagate the new weight up to the root.
    for (std::int32_t a = static_cast<std::int32_t>(attach); a >= 0;
         a = topo.nodes[static_cast<std::size_t>(a)].parent) {
      subtree_w[static_cast<std::size_t>(a)] += sk.weight;
    }
    added[best_sink] = true;
  }

  // An edge split rewires an *earlier* child under a *later* split node,
  // breaking the parent-first invariant; restore it.
  reorder_parent_first(topo);
  topo.canonicalize();
  topo.validate(sinks.size());
  return topo;
}

}  // namespace cdst
