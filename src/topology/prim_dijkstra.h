/// \file prim_dijkstra.h
/// Prim-Dijkstra topology (the "PD" baseline of Section IV-A, after Alpert
/// et al. [2], [3]).
///
/// "Sinks are iteratively added into the root-component. A sink s and an
/// edge e in the root component are chosen to insert a new Steiner vertex
/// into e connecting s such that a weighted sum of total length and path
/// length to s is minimized. ... We can distribute the delay penalty to the
/// two branches, when selecting the edge of the root component."

#pragma once

#include "topology/topology.h"

namespace cdst {

struct PrimDijkstraParams {
  /// Blend between Prim (0: pure total length) and Dijkstra (1: pure path
  /// length). The classic PD trade-off parameter.
  double gamma{0.5};
  /// Linear delay estimate per plane unit (for penalty conversion).
  double delay_per_unit{1.0};
  double dbif{0.0};
  double eta{0.5};
};

PlaneTopology prim_dijkstra_topology(const Point2& root,
                                     const std::vector<PlaneTerminal>& sinks,
                                     const PrimDijkstraParams& params);

}  // namespace cdst
