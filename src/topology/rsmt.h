/// \file rsmt.h
/// Rectilinear Steiner tree heuristic — the "L1" topology of Section IV-A
/// ("just computes a short L1 Steiner tree and embeds it optimally").
///
/// Construction: rectilinear MST, then iterative median steinerization —
/// for every vertex and pair of incident edges, the component-wise median of
/// the three endpoints is the optimal meeting point; inserting it saves
/// |ua| + |ub| - (|um| + |ma| + |mb|) >= 0 length. Applying positive-gain
/// medians to a fixpoint yields a steinerized tree within a few percent of
/// good RSMT heuristics at net-scale terminal counts.

#pragma once

#include "topology/topology.h"

namespace cdst {

/// L1 Steiner topology over {root} + sinks.
PlaneTopology rsmt_topology(const Point2& root,
                            const std::vector<PlaneTerminal>& sinks);

/// Component-wise median of three points (the optimal L1 meeting point).
Point2 l1_median(const Point2& a, const Point2& b, const Point2& c);

}  // namespace cdst
