/// \file point.h
/// Integer grid coordinates. Global routing positions are gcell indices; the
/// third coordinate of Point3 is the routing layer.

#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <ostream>

namespace cdst {

struct Point2 {
  std::int32_t x{0};
  std::int32_t y{0};

  friend bool operator==(const Point2&, const Point2&) = default;
  friend auto operator<=>(const Point2&, const Point2&) = default;
};

struct Point3 {
  std::int32_t x{0};
  std::int32_t y{0};
  std::int32_t z{0};  ///< routing layer index

  Point2 xy() const { return Point2{x, y}; }

  friend bool operator==(const Point3&, const Point3&) = default;
  friend auto operator<=>(const Point3&, const Point3&) = default;
};

/// L1 (rectilinear) distance in the plane.
inline std::int64_t l1_distance(const Point2& a, const Point2& b) {
  return std::abs(static_cast<std::int64_t>(a.x) - b.x) +
         std::abs(static_cast<std::int64_t>(a.y) - b.y);
}

inline std::int64_t l1_distance(const Point3& a, const Point3& b) {
  return l1_distance(a.xy(), b.xy());
}

inline std::ostream& operator<<(std::ostream& os, const Point2& p) {
  return os << '(' << p.x << ',' << p.y << ')';
}

inline std::ostream& operator<<(std::ostream& os, const Point3& p) {
  return os << '(' << p.x << ',' << p.y << ",z" << p.z << ')';
}

}  // namespace cdst

template <>
struct std::hash<cdst::Point2> {
  std::size_t operator()(const cdst::Point2& p) const noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x))
            << 32) ^
           static_cast<std::uint32_t>(p.y);
  }
};
