/// \file nearest.h
/// L1 nearest-neighbour queries over a dynamic (shrinking) point set.
///
/// The goal-oriented path searches (paper Section III-C) need, per label
/// relaxation, a lower bound on the distance to the nearest *active* terminal
/// position. Terminal positions only disappear as components merge, so a
/// bucket grid with lazy deletion suffices: queries expand rings of buckets
/// around the query point until the best candidate can no longer improve.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "geom/point.h"
#include "util/assert.h"
#include "util/simd.h"
#include "util/sparse_map.h"

namespace cdst {

/// Bucketed L1 nearest-neighbour structure over 2D integer points.
/// Points are identified by caller-chosen dense ids so they can be
/// deactivated in O(1).
///
/// Small active sets (the typical cost-distance solve keeps at most t+1
/// terminals live) skip the ring walk entirely: a compact structure-of-
/// arrays mirror of the active points is scanned with a branch-light
/// min-reduction — a few cache lines of sequential int32 arithmetic beats a
/// hash probe per ring bucket by an order of magnitude. Both paths return
/// the same (minimum) distance, so the switch is invisible to callers.
class L1NearestNeighbor {
 public:
  /// Active-set size up to which queries linearly scan the SoA mirror
  /// instead of walking bucket rings.
  static constexpr std::size_t kLinearScanMax = 512;

  /// \param bucket_size side length of square buckets in grid units.
  explicit L1NearestNeighbor(std::int32_t bucket_size = 8)
      : bucket_size_(std::max(1, bucket_size)) {}

  /// Inserts point p with identifier id. Ids must be unique.
  void insert(std::uint32_t id, const Point2& p) {
    if (id >= points_.size()) {
      points_.resize(static_cast<std::size_t>(id) + 1,
                     Entry{Point2{}, false, 0});
    }
    CDST_ASSERT(!points_[id].active);
    points_[id] = Entry{p, true, static_cast<std::uint32_t>(act_ids_.size())};
    xs_.push_back(p.x);
    ys_.push_back(p.y);
    xd_.push_back(static_cast<double>(p.x));
    yd_.push_back(static_cast<double>(p.y));
    act_ids_.push_back(id);
    bucket_of(p).push_back(id);
    ++active_count_;
  }

  /// Removes id: O(1) swap-removal from the SoA mirror; bucket entries are
  /// removed lazily (skipped at ring-walk query time).
  void erase(std::uint32_t id) {
    CDST_ASSERT(id < points_.size() && points_[id].active);
    points_[id].active = false;
    const std::uint32_t pos = points_[id].compact_pos;
    const std::uint32_t last = act_ids_.back();
    xs_[pos] = xs_.back();
    ys_[pos] = ys_.back();
    xd_[pos] = xd_.back();
    yd_[pos] = yd_.back();
    act_ids_[pos] = last;
    points_[last].compact_pos = pos;
    xs_.pop_back();
    ys_.pop_back();
    xd_.pop_back();
    yd_.pop_back();
    act_ids_.pop_back();
    --active_count_;
  }

  bool active(std::uint32_t id) const {
    return id < points_.size() && points_[id].active;
  }

  std::size_t active_count() const { return active_count_; }

  struct Result {
    std::uint32_t id{0xffffffffu};
    std::int64_t distance{std::numeric_limits<std::int64_t>::max()};
    bool found{false};
  };

  /// Nearest active point to q, optionally excluding one id.
  Result nearest(const Point2& q,
                 std::uint32_t exclude_id = 0xffffffffu) const {
    Result best;
    if (active_count_ == 0 ||
        (active_count_ == 1 && active(exclude_id))) {
      return best;
    }
    if (active_count_ <= kLinearScanMax) return nearest_linear(q, exclude_id);
    const std::int32_t qbx = bucket_coord(q.x);
    const std::int32_t qby = bucket_coord(q.y);
    // Expand square rings of buckets. A ring at radius r contains all points
    // with L1 distance >= (r-1)*bucket_size from q, so once the best found
    // distance is below that bound we can stop. The query point may lie
    // outside the occupied bucket extent, so size the sweep to reach every
    // occupied bucket from the query bucket.
    const std::int32_t max_ring =
        std::max({qbx - lo_x_, hi_x_ - qbx, qby - lo_y_, hi_y_ - qby}) + 1;
    for (std::int32_t r = 0; r <= max_ring; ++r) {
      const std::int64_t ring_lb =
          static_cast<std::int64_t>(std::max(0, r - 1)) * bucket_size_;
      if (best.found && best.distance <= ring_lb) break;
      visit_ring(qbx, qby, r, [&](const std::vector<std::uint32_t>& bucket) {
        for (const std::uint32_t id : bucket) {
          if (!points_[id].active || id == exclude_id) continue;
          const std::int64_t d = l1_distance(points_[id].p, q);
          if (d < best.distance) {
            best = Result{id, d, true};
          }
        }
      });
    }
    return best;
  }

  /// Distance to the nearest active point (max() if none), optionally
  /// excluding one id. This is the solver's bound path: it never needs the
  /// winning id, so the linear-scan regime runs Vec4d-wide over a double
  /// mirror of the SoA — int32 coordinates and their L1 sums are exact
  /// doubles, and the minimum of exact values is the same value under any
  /// association order, so this returns bit-identically what
  /// nearest(q, exclude_id).distance would (ids break ties there, never
  /// the distance).
  std::int64_t nearest_distance(const Point2& q,
                                std::uint32_t exclude_id = 0xffffffffu) const {
    constexpr std::int64_t kNone = std::numeric_limits<std::int64_t>::max();
    if (active_count_ == 0 || (active_count_ == 1 && active(exclude_id))) {
      return kNone;
    }
    if (active_count_ > kLinearScanMax) return nearest(q, exclude_id).distance;
    const std::size_t n = act_ids_.size();
    // The excluded point's lanes blend to +inf instead of branching per
    // element; `epos - i` wraps for groups left of it, keeping the group
    // test a single compare.
    const std::size_t epos =
        active(exclude_id) ? points_[exclude_id].compact_pos : n;
    const double qx = static_cast<double>(q.x);
    const double qy = static_cast<double>(q.y);
    const Vec4d qx4 = Vec4d::broadcast(qx);
    const Vec4d qy4 = Vec4d::broadcast(qy);
    const Vec4d inf4 =
        Vec4d::broadcast(std::numeric_limits<double>::infinity());
    Vec4d best4 = inf4;
    std::size_t i = 0;
    for (; i + Vec4d::kLanes <= n; i += Vec4d::kLanes) {
      Vec4d d = Vec4d::abs(Vec4d::load(xd_.data() + i) - qx4) +
                Vec4d::abs(Vec4d::load(yd_.data() + i) - qy4);
      if (epos - i < Vec4d::kLanes) {
        d = Vec4d::blend(d, inf4, 1 << (epos - i));
      }
      best4 = Vec4d::min(best4, d);
    }
    double bd = best4.hmin();
    for (; i < n; ++i) {
      if (i == epos) continue;
      const double d = std::abs(xd_[i] - qx) + std::abs(yd_[i] - qy);
      bd = d < bd ? d : bd;
    }
    return bd == std::numeric_limits<double>::infinity()
               ? kNone
               : static_cast<std::int64_t>(bd);
  }

 private:
  struct Entry {
    Point2 p;
    bool active{false};
    std::uint32_t compact_pos{0};  ///< index in the SoA mirror while active
  };

  /// Branch-light SoA min-reduction over the active set (conditional moves,
  /// no hash probes, sequential loads).
  Result nearest_linear(const Point2& q, std::uint32_t exclude_id) const {
    const std::size_t n = act_ids_.size();
    std::int64_t bd = std::numeric_limits<std::int64_t>::max();
    std::uint32_t bid = 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t d =
          std::abs(static_cast<std::int64_t>(xs_[i]) - q.x) +
          std::abs(static_cast<std::int64_t>(ys_[i]) - q.y);
      const bool better = d < bd && act_ids_[i] != exclude_id;
      bd = better ? d : bd;
      bid = better ? act_ids_[i] : bid;
    }
    if (bid == 0xffffffffu) return {};
    return Result{bid, bd, true};
  }

  std::int32_t bucket_coord(std::int32_t v) const {
    // Floor division for negatives.
    return v >= 0 ? v / bucket_size_ : -((-v + bucket_size_ - 1) / bucket_size_);
  }

  /// Whether bucket coordinates fit the packed uint32 key space. Keys are
  /// taken relative to the first inserted point's bucket, so the +-32k span
  /// bounds the structure's *extent* in buckets (any chip fits), not its
  /// absolute position. Ring sweeps may step outside this range; only
  /// inserts must stay inside it.
  bool packable(std::int32_t bx, std::int32_t by) const {
    const std::int32_t rx = bx - org_x_;
    const std::int32_t ry = by - org_y_;
    return rx >= -0x8000 && rx < 0x8000 && ry >= -0x8000 && ry < 0x8000;
  }

  std::uint32_t bucket_key(std::int32_t bx, std::int32_t by) const {
    CDST_ASSERT(packable(bx, by));
    return (static_cast<std::uint32_t>(bx - org_x_ + 0x8000) << 16) |
           static_cast<std::uint32_t>(by - org_y_ + 0x8000);
  }

  std::vector<std::uint32_t>& bucket_of(const Point2& p) {
    const std::int32_t bx = bucket_coord(p.x);
    const std::int32_t by = bucket_coord(p.y);
    if (buckets_.empty() && corner_slot_ == 0) {
      org_x_ = bx;  // anchor the packed key space at the first point
      org_y_ = by;
    }
    // Hard input-domain check (survives Release): a wrapped key would file
    // the point under an aliased bucket and silently corrupt queries.
    CDST_CHECK_MSG(packable(bx, by),
                   "L1NearestNeighbor: point set spans > 32k buckets");
    const std::uint32_t key = bucket_key(bx, by);
    // Exactly one coordinate pair packs to the SparseMap's reserved empty
    // marker; route it to a dedicated slot instead of the map.
    std::uint32_t& slot = key == SparseMap<std::uint32_t>::kEmpty
                              ? corner_slot_
                              : bucket_index_[key];
    if (slot == 0) {
      buckets_.emplace_back();
      slot = static_cast<std::uint32_t>(buckets_.size());  // index + 1
      track_extent(bx, by);
    }
    return buckets_[slot - 1];
  }

  const std::vector<std::uint32_t>* find_bucket(std::int32_t bx,
                                                std::int32_t by) const {
    // Ring sweeps around edge-of-range buckets probe coords with no
    // representable key; those buckets cannot exist (inserts assert).
    if (!packable(bx, by)) return nullptr;
    const std::uint32_t key = bucket_key(bx, by);
    if (key == SparseMap<std::uint32_t>::kEmpty) {
      return corner_slot_ == 0 ? nullptr : &buckets_[corner_slot_ - 1];
    }
    const std::uint32_t* slot = bucket_index_.find(key);
    return slot == nullptr ? nullptr : &buckets_[*slot - 1];
  }

  void track_extent(std::int32_t bx, std::int32_t by) {
    lo_x_ = std::min(lo_x_, bx);
    hi_x_ = std::max(hi_x_, bx);
    lo_y_ = std::min(lo_y_, by);
    hi_y_ = std::max(hi_y_, by);
  }

  template <typename F>
  void visit_ring(std::int32_t cx, std::int32_t cy, std::int32_t r,
                  F&& f) const {
    if (r == 0) {
      if (const auto* b = find_bucket(cx, cy)) f(*b);
      return;
    }
    for (std::int32_t dx = -r; dx <= r; ++dx) {
      if (const auto* b = find_bucket(cx + dx, cy - r)) f(*b);
      if (const auto* b = find_bucket(cx + dx, cy + r)) f(*b);
    }
    for (std::int32_t dy = -r + 1; dy <= r - 1; ++dy) {
      if (const auto* b = find_bucket(cx - r, cy + dy)) f(*b);
      if (const auto* b = find_bucket(cx + r, cy + dy)) f(*b);
    }
  }

  std::int32_t bucket_size_;
  std::vector<Entry> points_;
  // SoA mirror of the active set (parallel arrays, swap-removal on erase).
  // xd_/yd_ duplicate xs_/ys_ as doubles so nearest_distance loads lanes
  // without per-element int->double conversion.
  std::vector<std::int32_t> xs_;
  std::vector<std::int32_t> ys_;
  std::vector<double> xd_;
  std::vector<double> yd_;
  std::vector<std::uint32_t> act_ids_;
  // Open-addressed coord -> bucket index. Ring queries probe O(r) buckets
  // per ring, so the lookup must be O(1) — a linear scan over the bucket
  // list turns large-terminal-count queries quadratic (it was ~80% of the
  // solver profile at t = 128 before this index existed).
  SparseMap<std::uint32_t> bucket_index_;
  std::uint32_t corner_slot_{0};  ///< bucket whose key packs to kEmpty
  std::vector<std::vector<std::uint32_t>> buckets_;
  std::int32_t org_x_{0}, org_y_{0};  ///< key-space anchor (first bucket)
  std::int32_t lo_x_{0}, hi_x_{0}, lo_y_{0}, hi_y_{0};
  std::size_t active_count_{0};
};

}  // namespace cdst
