/// \file rect.h
/// Axis-parallel integer rectangles (bounding boxes of nets, search windows).

#pragma once

#include <algorithm>
#include <limits>

#include "geom/point.h"

namespace cdst {

struct Rect {
  std::int32_t xlo{std::numeric_limits<std::int32_t>::max()};
  std::int32_t ylo{std::numeric_limits<std::int32_t>::max()};
  std::int32_t xhi{std::numeric_limits<std::int32_t>::min()};
  std::int32_t yhi{std::numeric_limits<std::int32_t>::min()};

  bool empty() const { return xlo > xhi || ylo > yhi; }

  std::int64_t width() const {
    return empty() ? 0 : static_cast<std::int64_t>(xhi) - xlo;
  }
  std::int64_t height() const {
    return empty() ? 0 : static_cast<std::int64_t>(yhi) - ylo;
  }

  /// Half-perimeter wirelength of the box (classic net-length lower bound).
  std::int64_t half_perimeter() const { return width() + height(); }

  bool contains(const Point2& p) const {
    return p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi;
  }

  void expand(const Point2& p) {
    xlo = std::min(xlo, p.x);
    ylo = std::min(ylo, p.y);
    xhi = std::max(xhi, p.x);
    yhi = std::max(yhi, p.y);
  }

  void expand(const Rect& r) {
    if (r.empty()) return;
    xlo = std::min(xlo, r.xlo);
    ylo = std::min(ylo, r.ylo);
    xhi = std::max(xhi, r.xhi);
    yhi = std::max(yhi, r.yhi);
  }

  /// Inflates the box by margin on all sides.
  Rect inflated(std::int32_t margin) const {
    Rect out = *this;
    if (out.empty()) return out;
    out.xlo -= margin;
    out.ylo -= margin;
    out.xhi += margin;
    out.yhi += margin;
    return out;
  }

  /// L1 distance from p to the box (0 if inside).
  std::int64_t l1_to(const Point2& p) const {
    const std::int64_t dx =
        std::max<std::int64_t>({0, xlo - p.x, p.x - xhi});
    const std::int64_t dy =
        std::max<std::int64_t>({0, ylo - p.y, p.y - yhi});
    return dx + dy;
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Bounding box of a range of Point2.
template <typename It>
Rect bounding_box(It first, It last) {
  Rect r;
  for (; first != last; ++first) r.expand(*first);
  return r;
}

}  // namespace cdst
