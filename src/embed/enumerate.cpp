#include "embed/enumerate.h"

#include <algorithm>
#include <limits>

namespace cdst {
namespace {

/// Unrooted binary trees over labeled leaves 0..k-1 (leaf 0 = root),
/// represented by edge lists over ids: leaves 0..k-1, internals k, k+1, ...
/// Built by the classic leaf-insertion recursion: leaf j (j >= 2) subdivides
/// any existing edge, which generates every topology exactly once.
struct EdgeTree {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  std::int32_t next_internal{0};
};

void enumerate_rec(EdgeTree& t, std::size_t next_leaf, std::size_t k,
                   std::vector<EdgeTree>& out) {
  if (next_leaf == k) {
    out.push_back(t);
    return;
  }
  const std::size_t m = t.edges.size();
  for (std::size_t e = 0; e < m; ++e) {
    const auto [a, b] = t.edges[e];
    const std::int32_t mid = t.next_internal++;
    // Subdivide edge e with `mid` and hang the new leaf off it.
    t.edges[e] = {a, mid};
    t.edges.push_back({mid, b});
    t.edges.push_back({mid, static_cast<std::int32_t>(next_leaf)});
    enumerate_rec(t, next_leaf + 1, k, out);
    // Undo.
    t.edges.pop_back();
    t.edges.pop_back();
    t.edges[e] = {a, b};
    --t.next_internal;
  }
}

PlaneTopology to_rooted(const EdgeTree& t, std::size_t k) {
  // Adjacency over ids (leaves 0..k-1, internals k..).
  std::int32_t max_id = 0;
  for (const auto& [a, b] : t.edges) max_id = std::max({max_id, a, b});
  std::vector<std::vector<std::int32_t>> adj(
      static_cast<std::size_t>(max_id) + 1);
  for (const auto& [a, b] : t.edges) {
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  }
  PlaneTopology topo;
  std::vector<std::int32_t> out_index(adj.size(), -1);
  // BFS from leaf 0 (the root terminal).
  std::vector<std::int32_t> queue{0};
  out_index[0] = 0;
  topo.nodes.push_back(PlaneTopology::Node{Point2{}, -1, -1});
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const std::int32_t v = queue[qi];
    for (const std::int32_t u : adj[static_cast<std::size_t>(v)]) {
      if (out_index[static_cast<std::size_t>(u)] != -1) continue;
      const std::int32_t sink_index =
          (u >= 1 && u < static_cast<std::int32_t>(k)) ? u - 1 : -1;
      topo.nodes.push_back(
          PlaneTopology::Node{Point2{}, out_index[static_cast<std::size_t>(v)],
                              sink_index});
      out_index[static_cast<std::size_t>(u)] =
          static_cast<std::int32_t>(topo.nodes.size() - 1);
      queue.push_back(u);
    }
  }
  return topo;
}

}  // namespace

std::vector<PlaneTopology> enumerate_binary_topologies(std::size_t num_sinks) {
  CDST_CHECK(num_sinks >= 1);
  const std::size_t k = num_sinks + 1;  // leaves including the root
  std::vector<EdgeTree> raw;
  EdgeTree t;
  t.edges.push_back({0, 1});
  t.next_internal = static_cast<std::int32_t>(k);
  if (k == 2) {
    raw.push_back(t);
  } else {
    enumerate_rec(t, 2, k, raw);
  }
  std::vector<PlaneTopology> out;
  out.reserve(raw.size());
  for (const EdgeTree& e : raw) out.push_back(to_rooted(e, k));
  return out;
}

ExactResult solve_exact(const CostDistanceInstance& instance,
                        std::size_t max_sinks) {
  instance.validate();
  CDST_CHECK_MSG(instance.sinks.size() <= max_sinks,
                 "instance too large for exhaustive topology enumeration");
  const std::vector<PlaneTopology> topologies =
      enumerate_binary_topologies(instance.sinks.size());
  ExactResult best;
  best.num_topologies = topologies.size();
  double best_obj = std::numeric_limits<double>::infinity();
  for (const PlaneTopology& topo : topologies) {
    EmbedResult r = embed_topology(topo, instance);
    if (r.eval.objective < best_obj) {
      best_obj = r.eval.objective;
      best.tree = std::move(r.tree);
      best.eval = r.eval;
    }
  }
  return best;
}

}  // namespace cdst
