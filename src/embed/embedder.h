/// \file embedder.h
/// Optimal embedding of a fixed plane topology into the global routing graph
/// ("Then, this tree is embedded optimally into the global routing graph
/// minimizing the cost-distance objective (1) using a Dijkstra-style
/// embedding as described in [13]", Section IV-A).
///
/// Dynamic program over the topology: for each node i with subtree delay
/// weight W_i, the table F_i(v) is the cheapest cost of embedding i's subtree
/// with i placed at graph vertex v. Children tables propagate through one
/// potential-seeded Dijkstra per node under the metric c + W_i * d — an edge
/// above node i delays every sink below it, hence the weight multiplier.
/// Bifurcation penalties are position-independent constants per topology and
/// are accounted by the objective evaluator.

#pragma once

#include "core/cost_distance.h"
#include "core/instance.h"
#include "core/objective.h"
#include "core/steiner_tree.h"
#include "topology/topology.h"

namespace cdst {

struct EmbedResult {
  SteinerTree tree;
  TreeEvaluation eval;
};

/// Embeds `topo` (whose sink_index fields refer to instance sinks) optimally
/// into instance.graph w.r.t. objective (1)+(3). The topology structure is
/// fixed; Steiner node positions float freely in the graph.
///
/// `controls` (optional) wires in cooperative cancellation: the DP polls the
/// flag at every node's propagation step and unwinds with SolveCancelled —
/// the same contract as the cost-distance solver, so the session APIs map
/// embedded-oracle (L1/SL/PD) cancellations onto kCancelled too.
///
/// Note: with a poorly matched topology the optimal embedding may route two
/// topology edges over the same graph edge; the objective then pays c(e)
/// per use (multiset semantics), exactly what the router would pay in usage.
EmbedResult embed_topology(const PlaneTopology& topo,
                           const CostDistanceInstance& instance,
                           const SolveControls* controls = nullptr);

}  // namespace cdst
