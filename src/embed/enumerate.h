/// \file enumerate.h
/// Exact oracle for small cost-distance instances.
///
/// Every bifurcation-compatible Steiner tree contracts (by suppressing
/// degree-2 Steiner vertices, which carry no penalty) to an unrooted binary
/// topology whose leaves are the root and the sinks. Enumerating all
/// (2(t+1) - 5)!! such topologies and embedding each optimally therefore
/// yields the true optimum of objective (1)+(3). Used by tests to measure
/// the solver's empirical approximation ratio and by documentation examples.

#pragma once

#include <cstddef>
#include <vector>

#include "core/instance.h"
#include "embed/embedder.h"

namespace cdst {

struct ExactResult {
  SteinerTree tree;
  TreeEvaluation eval;
  std::size_t num_topologies{0};
};

/// All unrooted binary leaf-labeled topologies over {root} + t sinks,
/// returned rooted at the root terminal. t >= 1.
std::vector<PlaneTopology> enumerate_binary_topologies(std::size_t num_sinks);

/// Optimal cost-distance Steiner tree by exhaustive topology enumeration.
/// Rejects instances with more than `max_sinks` sinks (the topology count is
/// (2t-3)!! and embedding each costs t Dijkstras).
ExactResult solve_exact(const CostDistanceInstance& instance,
                        std::size_t max_sinks = 6);

}  // namespace cdst
