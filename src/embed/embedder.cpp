#include "embed/embedder.h"

#include <algorithm>
#include <limits>

#include "graph/dijkstra.h"

namespace cdst {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

EmbedResult embed_topology(const PlaneTopology& topo,
                           const CostDistanceInstance& instance,
                           const SolveControls* controls) {
  instance.validate();
  topo.validate(instance.sinks.size());
  const std::atomic<bool>* cancel =
      controls != nullptr ? controls->cancel : nullptr;
  const auto poll_cancel = [cancel] {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      throw SolveCancelled();
    }
  };
  poll_cancel();
  const Graph& g = *instance.graph;
  const std::vector<double>& c = *instance.cost;
  const std::vector<double>& d = *instance.delay;
  const std::size_t n = g.num_vertices();
  const std::size_t nn = topo.nodes.size();
  const auto ch = topo.children();

  // Subtree delay weights.
  std::vector<double> subw(nn, 0.0);
  for (std::size_t i = nn; i-- > 0;) {
    if (topo.nodes[i].sink_index >= 0) {
      subw[i] +=
          instance.sinks[static_cast<std::size_t>(topo.nodes[i].sink_index)]
              .weight;
    }
    if (topo.nodes[i].parent >= 0) {
      subw[static_cast<std::size_t>(topo.nodes[i].parent)] += subw[i];
    }
  }

  // Bottom-up DP: each node's table F_i is transient — it seeds one
  // potential Dijkstra whose result (up[i]) is kept for backtracking.
  std::vector<DijkstraResult> up(nn);  // up[i]: propagation of F[i] (i != 0)
  double root_value = kInf;

  for (std::size_t i = nn; i-- > 0;) {
    // One full-graph Dijkstra per node makes the node loop the natural
    // cancellation granularity (bounded latency: one propagation).
    poll_cancel();
    // F_i = sum of child propagations, constrained to the pin vertex if i is
    // a terminal.
    std::vector<double> fi;
    if (ch[i].empty()) {
      fi.assign(n, kInf);
    } else {
      fi.assign(n, 0.0);
      for (const std::int32_t cc : ch[i]) {
        const std::vector<double>& gu = up[static_cast<std::size_t>(cc)].dist;
        for (std::size_t v = 0; v < n; ++v) fi[v] += gu[v];
      }
    }
    const std::int32_t si = topo.nodes[i].sink_index;
    if (si >= 0) {
      const VertexId pin =
          instance.sinks[static_cast<std::size_t>(si)].vertex;
      const double at_pin = ch[i].empty() ? 0.0 : fi[pin];
      fi.assign(n, kInf);
      fi[pin] = at_pin;
    }
    if (i == 0) {
      // Root: a topology's root node is pinned to the root vertex.
      root_value = ch[i].empty() ? kInf : fi[instance.root];
      break;
    }
    // Propagate upward under the weighted metric c + W_i * d, scanning the
    // instance's SoA arc plane when one is attached (bit-identical to the
    // per-edge gather path).
    const CostDelayLength metric =
        instance.arc_costs != nullptr
            ? CostDelayLength(*instance.arc_costs, subw[i])
            : CostDelayLength{c, d, subw[i]};
    up[i] = dijkstra_from_potentials(g, fi, metric);
  }
  CDST_CHECK_MSG(root_value < kInf,
                 "topology cannot be embedded: graph disconnected");

  // ---- Backtrack: place nodes top-down and collect embedded paths. -------
  TreeAssembler assembler(g);
  std::vector<TreeAssembler::NodeId> anode(nn, TreeAssembler::kNoNode);
  std::vector<VertexId> placed(nn, kInvalidVertex);
  placed[0] = instance.root;
  anode[0] = assembler.add_root(instance.root);

  for (std::size_t i = 1; i < nn; ++i) {
    const auto p = static_cast<std::size_t>(topo.nodes[i].parent);
    CDST_ASSERT(placed[p] != kInvalidVertex);
    // Walk the propagation parents from the parent's placement back to the
    // seed vertex: that seed is node i's optimal placement.
    const DijkstraResult& r = up[i];
    VertexId at = placed[p];
    CDST_CHECK_MSG(r.reached(at), "embedding backtrack hit unreached vertex");
    // Walking the parent chain from the parent's placement yields edges in
    // parent -> seed order; the segment wants child (= seed) -> parent.
    std::vector<EdgeId> path_up;
    while (r.parent_edge[at] != kInvalidEdge) {
      path_up.push_back(r.parent_edge[at]);
      at = r.parent[at];
    }
    std::reverse(path_up.begin(), path_up.end());
    placed[i] = at;

    const std::int32_t si = topo.nodes[i].sink_index;
    anode[i] = (si >= 0) ? assembler.add_sink(at, si) : assembler.add_steiner(at);
    assembler.add_segment(anode[i], anode[p], path_up);
  }

  EmbedResult out;
  out.tree = assembler.finalize();
  out.tree.validate(g, instance.sinks.size(), /*allow_shared_edges=*/true);
  out.eval = evaluate_tree(out.tree, instance);
  return out;
}

}  // namespace cdst
