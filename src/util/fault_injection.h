/// \file fault_injection.h
/// Deterministic, seeded fault injection for the fault-tolerance tests.
///
/// A fault SITE is a named point in library code declared with
///
///     CDST_FAULT_POINT("router.shard");
///
/// which compiles to nothing unless the tree is built with
/// CDST_FAULT_INJECTION=ON (the `fault-injection` CMake preset). In an
/// instrumented build every executed site registers itself, once, in the
/// process-wide FaultRegistry; tests arm a site with a trigger policy and
/// the next matching hit throws InjectedFault from inside the library —
/// exactly where a real resource failure would surface. The session API
/// layer maps the exception onto its Status contract (kUnavailable) or
/// retries, which is precisely the machinery under test.
///
/// Determinism: nth-hit and every-k triggers count hits since arming;
/// probability triggers draw from a private xoshiro stream seeded by the
/// policy, so a sweep is reproducible given (site, policy, workload).
/// Thread safety: the unarmed fast path is one relaxed load; arming,
/// disarming and trigger evaluation serialize on a per-site mutex.
///
/// The registered-site universe is pinned by the manifest in
/// tests/fault_injection_test.cpp; scripts/check_invariants.py (rule
/// `fault-site`) fails the build when a CDST_FAULT_POINT appears in src/
/// without a manifest entry, so the sweep can never silently under-cover.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/thread_annotations.h"

namespace cdst {

/// Thrown by an armed fault site. Internal control flow, like
/// SolveCancelled: the session API layer converts it into a structured
/// Status (kUnavailable) or consumes it via retry before it reaches
/// callers.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& site)
      : std::runtime_error("injected fault at site '" + site + "'"),
        site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// When an armed site fires, counting hits from the moment it was armed.
struct FaultPolicy {
  enum class Trigger : std::uint8_t {
    /// Fire exactly once, on the n-th hit after arming, then self-disarm —
    /// the sweep's workhorse (a transient fault that goes away on retry).
    kNthHit,
    /// Fire on every k-th hit after arming, indefinitely — a persistent
    /// fault that exhausts bounded retries.
    kEveryK,
    /// Fire each hit independently with probability p, drawn from a
    /// deterministic stream seeded by `seed`.
    kProbability,
  };

  Trigger trigger{Trigger::kNthHit};
  /// kNthHit: the 1-based hit to fire on. kEveryK: the period (k >= 1).
  std::uint64_t n{1};
  double probability{0.0};  ///< kProbability only
  std::uint64_t seed{1};    ///< kProbability only
};

namespace detail {

/// One registered site. Lives forever (sites are function-local statics'
/// targets); never destroyed, so macro call sites can cache the pointer.
class FaultSite {
 public:
  explicit FaultSite(std::string name) : name_(std::move(name)) {}
  FaultSite(const FaultSite&) = delete;
  FaultSite& operator=(const FaultSite&) = delete;

  const std::string& name() const { return name_; }

  /// The instrumented code path. Unarmed cost: one relaxed counter bump and
  /// one relaxed load.
  void hit() {
    total_hits_.fetch_add(1, std::memory_order_relaxed);
    if (armed_.load(std::memory_order_acquire)) evaluate();
  }

  void arm(const FaultPolicy& policy);
  void disarm();

  std::uint64_t total_hits() const {
    return total_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t fired() const;
  void reset_counters();

 private:
  /// Trigger evaluation under the policy; throws InjectedFault on a match.
  void evaluate();

  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> total_hits_{0};
  mutable Mutex mu_;
  FaultPolicy policy_ CDST_GUARDED_BY(mu_);
  std::uint64_t armed_hits_ CDST_GUARDED_BY(mu_){0};
  std::uint64_t fired_ CDST_GUARDED_BY(mu_){0};
  Rng rng_ CDST_GUARDED_BY(mu_){1};
};

}  // namespace detail

/// Process-wide registry of fault sites. All members are safe to call from
/// any thread at any time; tests typically arm/disarm strictly between
/// engine calls so each sweep step has one well-defined armed set.
class FaultRegistry {
 public:
  static FaultRegistry& instance();

  /// Idempotent registration keyed by name; returns the site's stable
  /// handle (what CDST_FAULT_POINT caches in a function-local static).
  detail::FaultSite* register_site(const char* name);

  /// Arms `site` with `policy`, registering the site if no code path has
  /// reached it yet (so tests can arm from a manifest before first use).
  void arm(const std::string& site, const FaultPolicy& policy);
  void disarm(const std::string& site);
  void disarm_all();

  /// Names of every site registered so far, sorted.
  std::vector<std::string> sites() const;

  std::uint64_t hits(const std::string& site) const;
  std::uint64_t fired(const std::string& site) const;
  /// Zeroes every site's hit/fired counters (armed state is unchanged).
  void reset_counters();

 private:
  FaultRegistry() = default;
  detail::FaultSite* find(const std::string& site) const;

  mutable Mutex mu_;
  /// The registry itself is deliberately leaked on process exit (see
  /// instance()), so the sites live forever too: macro call sites cache raw
  /// site pointers in function-local statics whose last use may come after
  /// static destruction began.
  std::vector<std::unique_ptr<detail::FaultSite>> sites_ CDST_GUARDED_BY(mu_);
};

}  // namespace cdst

/// Declares a named fault site at the point of expansion. Free when the
/// build is not instrumented; one relaxed load when instrumented but the
/// site is unarmed.
#if defined(CDST_FAULT_INJECTION)
#define CDST_FAULT_POINT(site_name)                                  \
  do {                                                               \
    static ::cdst::detail::FaultSite* const cdst_fault_site =        \
        ::cdst::FaultRegistry::instance().register_site(site_name);  \
    cdst_fault_site->hit();                                          \
  } while (false)
#else
#define CDST_FAULT_POINT(site_name) ((void)0)
#endif
