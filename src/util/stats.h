/// \file stats.h
/// Streaming statistics accumulators used by the experiment harnesses.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.h"

namespace cdst {

/// Welford-style streaming mean/variance plus min/max.
class StatAccumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double sum_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Percentile of a sample (linear interpolation); p in [0, 100].
inline double percentile(std::vector<double> xs, double p) {
  CDST_CHECK(!xs.empty());
  CDST_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace cdst
