/// \file fibonacci_heap.h
/// Fibonacci heap (Fredman & Tarjan) with decrease-key.
///
/// Theorem 1 of the paper states the O(t (n log n + m)) bound using
/// Fibonacci heaps; on sparse global-routing graphs the binary/two-level
/// heaps win in practice (Section III-B), but the Fibonacci heap is provided
/// for completeness, verified against the binary heap by property tests, and
/// exercised by the heap micro-benchmarks.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "util/assert.h"

namespace cdst {

/// Addressable Fibonacci min-heap keyed by dense item ids (like BinaryHeap).
template <typename Key>
class FibonacciHeap {
 public:
  using Id = std::uint32_t;

  FibonacciHeap() = default;

  bool empty() const { return min_ == nullptr; }
  std::size_t size() const { return size_; }

  bool contains(Id id) const {
    return id < nodes_.size() && nodes_[id] != nullptr;
  }

  const Key& key_of(Id id) const {
    CDST_ASSERT(contains(id));
    return nodes_[id]->key;
  }

  const Key& min_key() const {
    CDST_ASSERT(!empty());
    return min_->key;
  }

  Id min_id() const {
    CDST_ASSERT(!empty());
    return min_->id;
  }

  void push(Id id, const Key& key) {
    ensure(id);
    CDST_ASSERT(nodes_[id] == nullptr);
    Node* n = allocate(id, key);
    nodes_[id] = n;
    insert_into_root_list(n);
    ++size_;
  }

  bool push_or_decrease(Id id, const Key& key) {
    if (!contains(id)) {
      push(id, key);
      return true;
    }
    if (key < nodes_[id]->key) {
      decrease_key(id, key);
      return true;
    }
    return false;
  }

  void decrease_key(Id id, const Key& key) {
    CDST_ASSERT(contains(id));
    Node* n = nodes_[id];
    CDST_ASSERT(!(n->key < key));
    n->key = key;
    Node* parent = n->parent;
    if (parent != nullptr && n->key < parent->key) {
      cut(n, parent);
      cascading_cut(parent);
    }
    if (n->key < min_->key) min_ = n;
  }

  Id pop_min() {
    CDST_ASSERT(!empty());
    Node* z = min_;
    const Id out = z->id;
    // Promote children to the root list.
    if (z->child != nullptr) {
      Node* c = z->child;
      do {
        Node* next = c->right;
        c->parent = nullptr;
        insert_into_root_list(c);
        c = next;
      } while (c != z->child);
      z->child = nullptr;
    }
    // Capture the successor before unlinking: remove_from_root_list resets
    // z's own pointers to itself.
    Node* const successor = z->right;
    remove_from_root_list(z);
    if (successor == z) {
      min_ = nullptr;
    } else {
      min_ = successor;
      consolidate();
    }
    nodes_[out] = nullptr;
    free_list_.push_back(z);
    --size_;
    return out;
  }

  void clear() {
    // Nodes live in the deque; just reset the index and lists.
    for (Node*& n : nodes_) n = nullptr;
    free_list_.clear();
    for (Node& n : storage_) free_list_.push_back(&n);
    min_ = nullptr;
    size_ = 0;
  }

 private:
  struct Node {
    Key key{};
    Id id{0};
    Node* parent{nullptr};
    Node* child{nullptr};
    Node* left{nullptr};
    Node* right{nullptr};
    std::uint32_t degree{0};
    bool marked{false};
  };

  void ensure(Id id) {
    if (id >= nodes_.size())
      nodes_.resize(static_cast<std::size_t>(id) + 1, nullptr);
  }

  Node* allocate(Id id, const Key& key) {
    Node* n;
    if (!free_list_.empty()) {
      n = free_list_.back();
      free_list_.pop_back();
    } else {
      storage_.emplace_back();
      n = &storage_.back();
    }
    *n = Node{};
    n->key = key;
    n->id = id;
    n->left = n->right = n;
    return n;
  }

  void insert_into_root_list(Node* n) {
    n->parent = nullptr;
    n->marked = false;
    if (min_ == nullptr) {
      n->left = n->right = n;
      min_ = n;
    } else {
      n->right = min_->right;
      n->left = min_;
      min_->right->left = n;
      min_->right = n;
      if (n->key < min_->key) min_ = n;
    }
  }

  static void remove_from_root_list(Node* n) {
    n->left->right = n->right;
    n->right->left = n->left;
    n->left = n->right = n;
  }

  void consolidate() {
    // Max degree is O(log size); 64 entries is ample for 32-bit item counts.
    Node* slots[64] = {nullptr};
    std::vector<Node*> roots;
    Node* cur = min_;
    if (cur != nullptr) {
      do {
        roots.push_back(cur);
        cur = cur->right;
      } while (cur != min_);
    }
    for (Node* r : roots) {
      Node* x = r;
      std::uint32_t d = x->degree;
      while (slots[d] != nullptr) {
        Node* y = slots[d];
        if (y->key < x->key) std::swap(x, y);
        link(y, x);
        slots[d] = nullptr;
        ++d;
      }
      slots[d] = x;
    }
    min_ = nullptr;
    for (Node* s : slots) {
      if (s == nullptr) continue;
      s->left = s->right = s;
      if (min_ == nullptr) {
        min_ = s;
      } else {
        insert_into_root_list(s);
      }
    }
  }

  /// Makes y a child of x (both roots, x.key <= y.key).
  static void link(Node* y, Node* x) {
    remove_from_root_list(y);
    y->parent = x;
    if (x->child == nullptr) {
      x->child = y;
      y->left = y->right = y;
    } else {
      y->right = x->child->right;
      y->left = x->child;
      x->child->right->left = y;
      x->child->right = y;
    }
    ++x->degree;
    y->marked = false;
  }

  void cut(Node* n, Node* parent) {
    // Remove n from parent's child list.
    if (n->right == n) {
      parent->child = nullptr;
    } else {
      n->left->right = n->right;
      n->right->left = n->left;
      if (parent->child == n) parent->child = n->right;
    }
    --parent->degree;
    n->left = n->right = n;
    insert_into_root_list(n);
  }

  void cascading_cut(Node* n) {
    Node* parent = n->parent;
    while (parent != nullptr) {
      if (!n->marked) {
        n->marked = true;
        return;
      }
      cut(n, parent);
      n = parent;
      parent = n->parent;
    }
  }

  std::deque<Node> storage_;
  std::vector<Node*> free_list_;
  std::vector<Node*> nodes_;
  Node* min_{nullptr};
  std::size_t size_{0};
};

}  // namespace cdst
