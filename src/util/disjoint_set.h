/// \file disjoint_set.h
/// Union-find with union by rank and path halving.

#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/assert.h"

namespace cdst {

class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n = 0) { reset(n); }

  void reset(std::size_t n) {
    parent_.resize(n);
    std::iota(parent_.begin(), parent_.end(), 0u);
    rank_.assign(n, 0);
    num_sets_ = n;
  }

  std::size_t size() const { return parent_.size(); }
  std::size_t num_sets() const { return num_sets_; }

  std::uint32_t find(std::uint32_t x) {
    CDST_ASSERT(x < parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  bool same(std::uint32_t a, std::uint32_t b) { return find(a) == find(b); }

  /// Merges the sets of a and b; returns false if already merged.
  bool unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    --num_sets_;
    return true;
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::size_t num_sets_{0};
};

}  // namespace cdst
