/// \file rng.h
/// Deterministic xoshiro256++ pseudo-random generator.
///
/// All randomized choices in the library (Steiner-vertex placement in
/// Algorithm 1 line 7, instance generation, tie-breaking) flow through this
/// generator so that every binary is reproducible given a seed.

#pragma once

#include <cstdint>
#include <limits>

#include "util/assert.h"

namespace cdst {

/// xoshiro256++ 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 stream to fill the state; avoids the all-zero state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t uniform(std::uint64_t bound) {
    CDST_ASSERT(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    CDST_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    return lo + (hi - lo) * uniform_double();
  }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return uniform_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace cdst
