/// \file assert.h
/// Contract-checking macros used throughout the library.
///
/// CDST_ASSERT is an internal invariant check (compiled out in NDEBUG builds
/// except where promoted); CDST_CHECK is a precondition / API-contract check
/// that stays on in all build types and throws, so that library misuse is
/// diagnosable in release binaries.

#pragma once

// The library relies on C++20 (std::span, <bit>, constraints). Without this
// guard a C++17 build dies on an opaque <span> error deep inside graph.h;
// fail early with an actionable message instead.
#if defined(_MSVC_LANG) ? (_MSVC_LANG < 202002L) : (__cplusplus < 202002L)
#error "cdst requires C++20: compile with -std=c++20 (or /std:c++20) or newer"
#endif

#include <sstream>
#include <stdexcept>
#include <string>

namespace cdst {

/// Thrown when a CDST_CHECK precondition fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace cdst

// Deprecation marker for the legacy one-shot entry points superseded by the
// session API (api/cdst.h). TUs that intentionally exercise the legacy
// surface (wrapper coverage in tests) define CDST_ALLOW_DEPRECATED before
// including any cdst header to silence the attribute.
#if defined(CDST_ALLOW_DEPRECATED)
#define CDST_DEPRECATED(msg)
#else
#define CDST_DEPRECATED(msg) [[deprecated(msg)]]
#endif

#define CDST_CHECK(expr)                                                      \
  do {                                                                        \
    if (!(expr))                                                              \
      ::cdst::detail::contract_fail("CDST_CHECK", #expr, __FILE__, __LINE__,  \
                                    std::string{});                           \
  } while (false)

#define CDST_CHECK_MSG(expr, msg)                                             \
  do {                                                                        \
    if (!(expr))                                                              \
      ::cdst::detail::contract_fail("CDST_CHECK", #expr, __FILE__, __LINE__,  \
                                    (msg));                                   \
  } while (false)

#ifdef NDEBUG
#define CDST_ASSERT(expr) ((void)0)
#else
#define CDST_ASSERT(expr)                                                     \
  do {                                                                        \
    if (!(expr))                                                              \
      ::cdst::detail::contract_fail("CDST_ASSERT", #expr, __FILE__, __LINE__, \
                                    std::string{});                           \
  } while (false)
#endif
