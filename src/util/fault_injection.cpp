#include "util/fault_injection.h"

#include <algorithm>

namespace cdst {
namespace detail {

void FaultSite::arm(const FaultPolicy& policy) {
  MutexLock lock(mu_);
  policy_ = policy;
  armed_hits_ = 0;
  rng_.reseed(policy.seed);
  // Publish last: a concurrent hit() that observes armed_ then evaluates
  // under mu_ after this unlock sees the complete policy.
  armed_.store(true, std::memory_order_release);
}

void FaultSite::disarm() {
  MutexLock lock(mu_);
  armed_.store(false, std::memory_order_release);
}

std::uint64_t FaultSite::fired() const {
  MutexLock lock(mu_);
  return fired_;
}

void FaultSite::reset_counters() {
  total_hits_.store(0, std::memory_order_relaxed);
  MutexLock lock(mu_);
  armed_hits_ = 0;
  fired_ = 0;
}

void FaultSite::evaluate() {
  bool fire = false;
  {
    MutexLock lock(mu_);
    if (!armed_.load(std::memory_order_relaxed)) return;  // raced a disarm
    ++armed_hits_;
    switch (policy_.trigger) {
      case FaultPolicy::Trigger::kNthHit:
        if (armed_hits_ == policy_.n) {
          fire = true;
          // One-shot: the fault "goes away", so a bounded retry succeeds.
          armed_.store(false, std::memory_order_release);
        }
        break;
      case FaultPolicy::Trigger::kEveryK:
        fire = policy_.n >= 1 && armed_hits_ % policy_.n == 0;
        break;
      case FaultPolicy::Trigger::kProbability: {
        // 53-bit uniform in [0, 1) from the site's seeded stream.
        const double u =
            static_cast<double>(rng_() >> 11) * 0x1.0p-53;
        fire = u < policy_.probability;
        break;
      }
    }
    if (fire) ++fired_;
  }
  // Throw outside the lock: the unwind crosses arbitrary library frames and
  // must not hold site state hostage while it does.
  if (fire) {
    // cdst-lint: allow(api-throw) not api code, but keep the rationale
    // local: InjectedFault is internal control flow, mapped to Status /
    // consumed by retry at the session boundary like SolveCancelled.
    throw InjectedFault(name_);
  }
}

}  // namespace detail

FaultRegistry& FaultRegistry::instance() {
  // Deliberately leaked: fault sites cache raw pointers into the registry
  // from function-local statics, and those must stay valid through static
  // destruction (see the header).
  static FaultRegistry* const registry = new FaultRegistry();
  return *registry;
}

detail::FaultSite* FaultRegistry::register_site(const char* name) {
  MutexLock lock(mu_);
  for (const std::unique_ptr<detail::FaultSite>& site : sites_) {
    if (site->name() == name) return site.get();
  }
  sites_.push_back(std::make_unique<detail::FaultSite>(name));
  return sites_.back().get();
}

detail::FaultSite* FaultRegistry::find(const std::string& site) const {
  MutexLock lock(mu_);
  for (const std::unique_ptr<detail::FaultSite>& s : sites_) {
    if (s->name() == site) return s.get();
  }
  return nullptr;
}

void FaultRegistry::arm(const std::string& site, const FaultPolicy& policy) {
  register_site(site.c_str())->arm(policy);
}

void FaultRegistry::disarm(const std::string& site) {
  detail::FaultSite* s = find(site);
  if (s != nullptr) s->disarm();
}

void FaultRegistry::disarm_all() {
  std::vector<detail::FaultSite*> all;
  {
    MutexLock lock(mu_);
    all.reserve(sites_.size());
    for (const std::unique_ptr<detail::FaultSite>& s : sites_) {
      all.push_back(s.get());
    }
  }
  for (detail::FaultSite* s : all) s->disarm();
}

std::vector<std::string> FaultRegistry::sites() const {
  std::vector<std::string> names;
  {
    MutexLock lock(mu_);
    names.reserve(sites_.size());
    for (const std::unique_ptr<detail::FaultSite>& s : sites_) {
      names.push_back(s->name());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::uint64_t FaultRegistry::hits(const std::string& site) const {
  const detail::FaultSite* s = find(site);
  return s != nullptr ? s->total_hits() : 0;
}

std::uint64_t FaultRegistry::fired(const std::string& site) const {
  detail::FaultSite* s = find(site);
  return s != nullptr ? s->fired() : 0;
}

void FaultRegistry::reset_counters() {
  std::vector<detail::FaultSite*> all;
  {
    MutexLock lock(mu_);
    all.reserve(sites_.size());
    for (const std::unique_ptr<detail::FaultSite>& s : sites_) {
      all.push_back(s.get());
    }
  }
  for (detail::FaultSite* s : all) s->reset_counters();
}

}  // namespace cdst
