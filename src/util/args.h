/// \file args.h
/// Tiny command-line parser for the bench harnesses and examples.
///
/// Supports --name=value, --name value, and boolean --flag forms, with typed
/// defaults and an auto-generated --help.

#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/assert.h"

namespace cdst {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  void add_flag(const std::string& name, bool default_value,
                const std::string& help) {
    specs_[name] = Spec{help, default_value ? "true" : "false", true};
  }

  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help) {
    specs_[name] = Spec{help, default_value, false};
  }

  /// Parses argv; on --help prints usage and exits. Throws ContractViolation
  /// on unknown options.
  void parse(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        print_help();
        std::exit(0);
      }
      CDST_CHECK_MSG(arg.rfind("--", 0) == 0, "unexpected argument: " + arg);
      arg = arg.substr(2);
      std::string value;
      bool has_value = false;
      if (auto eq = arg.find('='); eq != std::string::npos) {
        value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_value = true;
      }
      auto it = specs_.find(arg);
      CDST_CHECK_MSG(it != specs_.end(), "unknown option --" + arg);
      if (!has_value) {
        if (it->second.is_flag) {
          value = "true";
        } else {
          CDST_CHECK_MSG(i + 1 < argc, "missing value for --" + arg);
          value = argv[++i];
        }
      }
      values_[arg] = value;
    }
  }

  std::string get_string(const std::string& name) const {
    auto v = values_.find(name);
    if (v != values_.end()) return v->second;
    auto s = specs_.find(name);
    CDST_CHECK_MSG(s != specs_.end(), "option not declared: --" + name);
    return s->second.default_value;
  }

  std::int64_t get_int(const std::string& name) const {
    return std::stoll(get_string(name));
  }

  double get_double(const std::string& name) const {
    return std::stod(get_string(name));
  }

  bool get_bool(const std::string& name) const {
    const std::string v = get_string(name);
    return v == "true" || v == "1" || v == "yes" || v == "on";
  }

  void print_help() const {
    std::cout << program_ << " — " << description_ << "\n\nOptions:\n";
    for (const auto& [name, spec] : specs_) {
      std::cout << "  --" << name << " (default: " << spec.default_value
                << ")\n      " << spec.help << "\n";
    }
  }

 private:
  struct Spec {
    std::string help;
    std::string default_value;
    bool is_flag{false};
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
};

}  // namespace cdst
