/// \file thread_annotations.h
/// Clang thread-safety annotations and the annotated locking primitives the
/// whole library uses.
///
/// The concurrency invariants of this codebase ("bit-identical at any thread
/// count", "steady-state solves allocate nothing", "no exception crosses the
/// api boundary") all rest on a handful of mutexes guarding exactly the right
/// state. Runtime tests can only sample those invariants; Clang's
/// -Wthread-safety analysis proves the locking discipline at compile time —
/// every access to a CDST_GUARDED_BY member is rejected unless the guarding
/// capability is statically held. The CI thread-safety job builds the tree
/// with clang and -Wthread-safety -Werror; under GCC (which has no such
/// analysis) every macro expands to nothing and the wrappers compile down to
/// the bare std primitives, so the annotations are zero-cost at runtime.
///
/// Conventions:
///  - Every std::mutex / std::condition_variable in the library lives behind
///    the cdst::Mutex / cdst::CondVar wrappers below (enforced by
///    scripts/check_invariants.py rule `raw-mutex`): a raw std::mutex member
///    is invisible to the analysis, so a single one silently exempts its
///    whole class from checking.
///  - Data members name their guard: `int x_ CDST_GUARDED_BY(mu_);`.
///  - Private helpers that expect the caller to hold a lock say so with
///    CDST_REQUIRES(mu_) instead of re-locking.
///  - Condition waits are written as explicit `while (!pred) cv.wait(mu);`
///    loops, not predicate lambdas: the analysis cannot see through a lambda
///    that a guarded read happens under the lock, the open-coded loop it can.
///
/// Reading a -Wthread-safety failure: the message names the member, the
/// guard it is annotated with, and the lock set the compiler proved at the
/// access ("reading variable 'tasks_' requires holding mutex 'mu_'"). The
/// fix is never to silence the warning — either take the lock (MutexLock),
/// or, if the caller already holds it, move the access into a helper marked
/// CDST_REQUIRES so the contract is declared instead of assumed.

#pragma once

#include <condition_variable>
#include <mutex>

// Clang implements the analysis attributes; GCC/MSVC ignore the GNU
// attribute spelling, so gate on __clang__ rather than __has_attribute to
// keep -Wattributes quiet on other compilers.
#if defined(__clang__)
#define CDST_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CDST_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability (names it in diagnostics).
#define CDST_CAPABILITY(x) CDST_THREAD_ANNOTATION(capability(x))
/// Marks an RAII class whose constructor acquires and destructor releases.
#define CDST_SCOPED_CAPABILITY CDST_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding the named capability.
#define CDST_GUARDED_BY(x) CDST_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is guarded by the named capability.
#define CDST_PT_GUARDED_BY(x) CDST_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function acquires the capability (and did not hold it on entry).
#define CDST_ACQUIRE(...) \
  CDST_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry).
#define CDST_RELEASE(...) \
  CDST_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define CDST_TRY_ACQUIRE(...) \
  CDST_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must already hold the capability.
#define CDST_REQUIRES(...) \
  CDST_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (deadlock prevention).
#define CDST_EXCLUDES(...) CDST_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Declares lock acquisition order between two capabilities.
#define CDST_ACQUIRED_BEFORE(...) \
  CDST_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CDST_ACQUIRED_AFTER(...) \
  CDST_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define CDST_RETURN_CAPABILITY(x) CDST_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: function deliberately opts out of the analysis. Every use
/// must carry a comment explaining why the discipline cannot be expressed.
#define CDST_NO_THREAD_SAFETY_ANALYSIS \
  CDST_THREAD_ANNOTATION(no_thread_safety_analysis)
/// Runtime assertion that the capability is held (trusted by the analysis).
#define CDST_ASSERT_CAPABILITY(x) CDST_THREAD_ANNOTATION(assert_capability(x))

namespace cdst {

class CondVar;

/// std::mutex with the capability annotations the analysis needs. Same
/// layout and cost as the raw mutex; lock()/unlock() are for the RAII
/// wrappers and CondVar below — library code should not call them directly.
class CDST_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CDST_ACQUIRE() { mu_.lock(); }
  void unlock() CDST_RELEASE() { mu_.unlock(); }
  bool try_lock() CDST_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock over a cdst::Mutex — the annotated twin of std::lock_guard.
/// The analysis treats the guarded capability as held for exactly the
/// lifetime of this object.
class CDST_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CDST_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CDST_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to cdst::Mutex. wait() declares (via
/// CDST_REQUIRES) that the caller holds the mutex; like every thread-safety
/// analysis the capability is modeled as held across the wait even though
/// the OS releases it while blocked — which is exactly the discipline an
/// open-coded `while (!pred) cv.wait(mu);` loop needs: the predicate reads
/// of guarded state before and after the wait are both under the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; reacquires before returning.
  /// Caller must hold `mu` (typically via a live MutexLock).
  void wait(Mutex& mu) CDST_REQUIRES(mu) {
    // std::condition_variable only speaks std::unique_lock: adopt the
    // already-held mutex for the duration of the wait, then release the
    // unique_lock's ownership claim so the MutexLock destructor stays the
    // one unlocker.
    std::unique_lock<std::mutex> ul(mu.mu_, std::adopt_lock);
    cv_.wait(ul);
    ul.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cdst
