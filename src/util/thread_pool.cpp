#include "util/thread_pool.h"

#include <atomic>

#include "util/assert.h"

namespace cdst {
namespace {

/// Set while a pool worker (or a caller already inside parallel_for) is
/// executing batch bodies; nested parallel_for calls then run inline
/// serially instead of deadlocking on the pool's own workers.
thread_local bool t_inside_batch = false;

}  // namespace

/// One parallel_for invocation: an atomic work cursor plus the first error.
struct ThreadPool::Batch {
  std::atomic<std::size_t> next;
  std::size_t end;
  const std::function<void(std::size_t)>* body;
  std::mutex error_mu;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(int threads) {
  CDST_CHECK(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::drain(Batch& batch) {
  const bool was_inside = t_inside_batch;
  t_inside_batch = true;
  for (std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
       i < batch.end;
       i = batch.next.fetch_add(1, std::memory_order_relaxed)) {
    try {
      (*batch.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.error_mu);
      if (!batch.error) batch.error = std::current_exception();
      // Abandon the remaining indices: later fetch_adds see >= end.
      batch.next.store(batch.end, std::memory_order_relaxed);
    }
  }
  t_inside_batch = was_inside;
}

void ThreadPool::worker_main() {
  std::uint64_t seen = 0;
  while (true) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stop_ || (batch_ && generation_ != seen); });
      if (stop_) return;
      seen = generation_;
      batch = batch_;
    }
    drain(*batch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  // Serial fast paths: no workers, a single index, or a nested call from
  // inside a running batch (the workers are all busy with the outer batch).
  if (workers_.empty() || end - begin == 1 || t_inside_batch) {
    std::exception_ptr error;
    const bool was_inside = t_inside_batch;
    t_inside_batch = true;
    for (std::size_t i = begin; i < end; ++i) {
      try {
        body(i);
      } catch (...) {
        error = std::current_exception();
        break;
      }
    }
    t_inside_batch = was_inside;
    if (error) std::rethrow_exception(error);
    return;
  }

  Batch batch;
  batch.next.store(begin, std::memory_order_relaxed);
  batch.end = end;
  batch.body = &body;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &batch;
    ++generation_;
    workers_active_ = static_cast<int>(workers_.size());
  }
  work_cv_.notify_all();
  drain(batch);
  {
    // Wait for every worker to leave the batch before its state dies.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_active_ == 0; });
    batch_ = nullptr;
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace cdst
