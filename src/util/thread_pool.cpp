#include "util/thread_pool.h"

#include <atomic>

#include "util/assert.h"
#include "util/fault_injection.h"

namespace cdst {
namespace {

/// Set while a pool worker (or a caller already inside parallel_for) is
/// executing batch bodies; nested parallel_for calls then run inline
/// serially instead of deadlocking on the pool's own workers.
thread_local bool t_inside_batch = false;

}  // namespace

/// One parallel_for invocation: an atomic work cursor plus the first error.
struct ThreadPool::Batch {
  std::atomic<std::size_t> next;
  std::size_t end;
  const std::function<void(std::size_t)>* body;
  Mutex error_mu;
  std::exception_ptr error CDST_GUARDED_BY(error_mu);
};

ThreadPool::ThreadPool(int threads) {
  CDST_CHECK(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Tasks the workers never reached run here, so every submitted task
  // executes exactly once even under a pool torn down mid-stream (a stream
  // destructor waiting on its completions then cannot hang). The queue is
  // swapped out under the lock (the workers are gone, but the guarded-member
  // discipline is unconditional) and run unlocked, so a task that re-enters
  // submit() cannot deadlock on mu_.
  std::deque<std::function<void()>> leftovers;
  {
    MutexLock lock(mu_);
    leftovers.swap(tasks_);
  }
  for (const std::function<void()>& task : leftovers) run_task(task);
}

void ThreadPool::run_task(const std::function<void()>& task) {
  // Tasks run with batch-nesting semantics: a parallel_for issued from
  // inside a task runs inline serially, exactly like one issued from inside
  // a batch body (the workers may all be busy with tasks).
  const bool was_inside = t_inside_batch;
  t_inside_batch = true;
  task();
  t_inside_batch = was_inside;
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty() || t_inside_batch) {
    run_task(task);
    return;
  }
  {
    MutexLock lock(mu_);
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::drain(Batch& batch) {
  const bool was_inside = t_inside_batch;
  t_inside_batch = true;
  for (std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
       i < batch.end;
       i = batch.next.fetch_add(1, std::memory_order_relaxed)) {
    try {
      // Inside the try, before the body: an injected task fault takes the
      // exact first-error-wins unwind path a throwing body would. (submit()
      // tasks carry no such site — they run outside any barrier, so a
      // throw there would terminate; streams instead fault inside their own
      // lane bodies, see "stream.dispatch".)
      CDST_FAULT_POINT("pool.task");
      (*batch.body)(i);
    } catch (...) {
      MutexLock lock(batch.error_mu);
      if (!batch.error) batch.error = std::current_exception();
      // Abandon the remaining indices: later fetch_adds see >= end.
      batch.next.store(batch.end, std::memory_order_relaxed);
    }
  }
  t_inside_batch = was_inside;
}

void ThreadPool::worker_main() {
  std::uint64_t seen = 0;
  while (true) {
    Batch* batch = nullptr;
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // Open-coded wait loop: the thread-safety analysis sees the guarded
      // reads under mu_, which a predicate lambda would hide from it.
      while (!(stop_ || (batch_ != nullptr && generation_ != seen) ||
               !tasks_.empty())) {
        work_cv_.wait(mu_);
      }
      if (stop_) return;  // leftover tasks run in the destructor
      if (batch_ != nullptr && generation_ != seen) {
        // A pending barrier outranks the task queue. Entry is registered
        // under the lock: the barrier waits only for workers that actually
        // joined this batch, so it never stalls behind a worker busy with a
        // long fire-and-forget task it was never needed for.
        seen = generation_;
        batch = batch_;
        ++workers_active_;
      } else {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
    }
    if (batch != nullptr) {
      drain(*batch);
      {
        MutexLock lock(mu_);
        if (--workers_active_ == 0) done_cv_.notify_all();
      }
    } else {
      run_task(task);
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  // Serial fast paths: no workers, a single index, or a nested call from
  // inside a running batch (the workers are all busy with the outer batch).
  if (workers_.empty() || end - begin == 1 || t_inside_batch) {
    std::exception_ptr error;
    const bool was_inside = t_inside_batch;
    t_inside_batch = true;
    for (std::size_t i = begin; i < end; ++i) {
      try {
        body(i);
      } catch (...) {
        error = std::current_exception();
        break;
      }
    }
    t_inside_batch = was_inside;
    if (error) std::rethrow_exception(error);
    return;
  }

  Batch batch;
  batch.next.store(begin, std::memory_order_relaxed);
  batch.end = end;
  batch.body = &body;
  {
    MutexLock lock(mu_);
    batch_ = &batch;
    ++generation_;
    // Workers register themselves on entry (worker_main); a worker that is
    // busy with a task, or never wakes before the work runs out, simply
    // never joins and is not waited for.
  }
  work_cv_.notify_all();
  drain(batch);
  {
    // Close the batch to new entrants, then wait for the workers that did
    // join to leave before its stack state dies.
    MutexLock lock(mu_);
    batch_ = nullptr;
    while (workers_active_ != 0) done_cv_.wait(mu_);
  }
  std::exception_ptr error;
  {
    // All joiners have left the batch, but the guarded-member discipline is
    // unconditional: read the error slot under its lock.
    MutexLock lock(batch.error_mu);
    error = batch.error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace cdst
