/// \file two_level_heap.h
/// Two-level heap structure from Section III-B of the paper.
///
/// Global routing graphs satisfy m = O(n), so binary heaps beat Fibonacci
/// heaps in practice. The cost-distance solver runs one Dijkstra *per active
/// sink*; this structure keeps one sub-heap per search plus a top-level heap
/// over the per-search minima, so extracting the globally cheapest label is
/// O(log #searches + log #labels) and work can stay inside a single sub-heap
/// while its minimum remains globally minimal. The per-group heaps default
/// to the cache-friendly 4-ary heap (see d_ary_heap.h); any addressable heap
/// with the BinaryHeap API works.

#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.h"
#include "util/d_ary_heap.h"

namespace cdst {

/// Min-heap of min-heaps. Sub-heaps ("groups") and entries are identified by
/// dense uint32 ids chosen by the caller. Each (group, entry) pair may be
/// present at most once.
template <typename Key, typename SubHeap = DAryHeap<Key, 4>>
class TwoLevelHeap {
 public:
  using GroupId = std::uint32_t;
  using EntryId = std::uint32_t;

  struct Min {
    GroupId group;
    EntryId entry;
    Key key;
  };

  /// Creates/activates an empty group. Groups can be reused after erase.
  void ensure_group(GroupId g) {
    if (g >= subs_.size()) subs_.resize(static_cast<std::size_t>(g) + 1);
  }

  bool empty() const { return top_.empty(); }

  /// Total number of entries across all groups (O(#groups)).
  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : subs_) n += s.size();
    return n;
  }

  bool group_empty(GroupId g) const {
    return g >= subs_.size() || subs_[g].empty();
  }

  /// Inserts or decreases (group, entry) with the given key.
  /// Returns true if the entry's key changed (inserted or lowered).
  bool push_or_decrease(GroupId g, EntryId e, const Key& key) {
    ensure_group(g);
    const bool changed = subs_[g].push_or_decrease(e, key);
    if (changed) refresh_top(g);
    return changed;
  }

  bool contains(GroupId g, EntryId e) const {
    return g < subs_.size() && subs_[g].contains(e);
  }

  /// Peeks the global minimum. Precondition: !empty().
  Min global_min() const {
    CDST_ASSERT(!top_.empty());
    const GroupId g = top_.min_id();
    return Min{g, subs_[g].min_id(), subs_[g].min_key()};
  }

  /// Pops and returns the global minimum. Precondition: !empty().
  Min pop_global_min() {
    CDST_ASSERT(!top_.empty());
    const GroupId g = top_.min_id();
    CDST_ASSERT(!subs_[g].empty());
    Min out{g, subs_[g].min_id(), subs_[g].min_key()};
    subs_[g].pop_min();
    refresh_top(g);
    return out;
  }

  /// Removes every entry of group g (e.g. when a search is deactivated).
  void erase_group(GroupId g) {
    if (g >= subs_.size()) return;
    subs_[g].clear();
    if (top_.contains(g)) top_.erase(g);
  }

  void clear() {
    for (auto& s : subs_) s.clear();
    top_.clear();
  }

 private:
  /// Re-synchronizes group g's key in the top-level heap with its sub-heap
  /// minimum (the sub minimum may have moved either way).
  void refresh_top(GroupId g) {
    if (subs_[g].empty()) {
      if (top_.contains(g)) top_.erase(g);
      return;
    }
    const Key& k = subs_[g].min_key();
    if (top_.contains(g)) {
      if (k < top_.key_of(g)) {
        top_.decrease_key(g, k);
      } else if (top_.key_of(g) < k) {
        top_.erase(g);
        top_.push(g, k);
      }
    } else {
      top_.push(g, k);
    }
  }

  std::vector<SubHeap> subs_;
  SubHeap top_;
};

}  // namespace cdst
