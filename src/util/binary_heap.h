/// \file binary_heap.h
/// Addressable binary min-heap with decrease-key, keyed by dense item ids.
///
/// This is the workhorse priority queue of the path searches. Items are
/// identified by a caller-chosen dense id (e.g. a label index); the heap
/// stores a position map so decrease_key and contains are O(1) lookups.

#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace cdst {

/// Min-heap over (id, key) pairs. Ids must be < capacity passed at reserve
/// time or grown implicitly; each id may be in the heap at most once.
template <typename Key>
class BinaryHeap {
 public:
  using Id = std::uint32_t;
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  BinaryHeap() = default;
  explicit BinaryHeap(std::size_t capacity) { reserve(capacity); }

  void reserve(std::size_t capacity) {
    heap_.reserve(capacity);
    if (pos_.size() < capacity) pos_.resize(capacity, kNpos);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  bool contains(Id id) const { return id < pos_.size() && pos_[id] != kNpos; }

  const Key& key_of(Id id) const {
    CDST_ASSERT(contains(id));
    return heap_[pos_[id]].key;
  }

  /// Smallest key in the heap. Precondition: !empty().
  const Key& min_key() const {
    CDST_ASSERT(!empty());
    return heap_[0].key;
  }

  /// Id with the smallest key. Precondition: !empty().
  Id min_id() const {
    CDST_ASSERT(!empty());
    return heap_[0].id;
  }

  /// Inserts id with the given key. Precondition: !contains(id).
  void push(Id id, const Key& key) {
    ensure_pos(id);
    CDST_ASSERT(pos_[id] == kNpos);
    heap_.push_back(Entry{key, id});
    pos_[id] = static_cast<std::uint32_t>(heap_.size() - 1);
    sift_up(heap_.size() - 1);
  }

  /// Inserts or lowers the key of id; returns true if the heap changed.
  bool push_or_decrease(Id id, const Key& key) {
    if (!contains(id)) {
      push(id, key);
      return true;
    }
    if (key < heap_[pos_[id]].key) {
      heap_[pos_[id]].key = key;
      sift_up(pos_[id]);
      return true;
    }
    return false;
  }

  /// Lowers the key of an existing id. Precondition: key <= current key.
  void decrease_key(Id id, const Key& key) {
    CDST_ASSERT(contains(id));
    CDST_ASSERT(!(heap_[pos_[id]].key < key));
    heap_[pos_[id]].key = key;
    sift_up(pos_[id]);
  }

  /// Removes and returns the id with the smallest key.
  Id pop_min() {
    CDST_ASSERT(!empty());
    const Id top = heap_[0].id;
    remove_at(0);
    return top;
  }

  /// Removes an arbitrary contained id.
  void erase(Id id) {
    CDST_ASSERT(contains(id));
    remove_at(pos_[id]);
  }

  void clear() {
    for (const Entry& e : heap_) pos_[e.id] = kNpos;
    heap_.clear();
  }

 private:
  struct Entry {
    Key key;
    Id id;
  };

  void ensure_pos(Id id) {
    if (id >= pos_.size()) pos_.resize(static_cast<std::size_t>(id) + 1, kNpos);
  }

  void remove_at(std::size_t i) {
    pos_[heap_[i].id] = kNpos;
    if (i + 1 != heap_.size()) {
      heap_[i] = heap_.back();
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i);
      heap_.pop_back();
      // The moved element may need to go either way.
      if (i > 0 && heap_[i].key < heap_[parent(i)].key) {
        sift_up(i);
      } else {
        sift_down(i);
      }
    } else {
      heap_.pop_back();
    }
  }

  static std::size_t parent(std::size_t i) { return (i - 1) / 2; }

  void sift_up(std::size_t i) {
    Entry e = heap_[i];
    while (i > 0 && e.key < heap_[parent(i)].key) {
      heap_[i] = heap_[parent(i)];
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i);
      i = parent(i);
    }
    heap_[i] = e;
    pos_[e.id] = static_cast<std::uint32_t>(i);
  }

  void sift_down(std::size_t i) {
    Entry e = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && heap_[child + 1].key < heap_[child].key) ++child;
      if (!(heap_[child].key < e.key)) break;
      heap_[i] = heap_[child];
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i);
      i = child;
    }
    heap_[i] = e;
    pos_[e.id] = static_cast<std::uint32_t>(i);
  }

  std::vector<Entry> heap_;
  std::vector<std::uint32_t> pos_;
};

}  // namespace cdst
