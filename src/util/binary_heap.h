/// \file binary_heap.h
/// Addressable binary min-heap with decrease-key, keyed by dense item ids.
///
/// The binary heap is the arity-2 instance of the generic d-ary heap (see
/// d_ary_heap.h) — one implementation, every arity. Tie-breaking and sift
/// behavior are bit-identical to the historical standalone binary heap:
/// sift-down prefers the first (left) child on equal keys.

#pragma once

#include "util/d_ary_heap.h"

namespace cdst {

/// Min-heap over (id, key) pairs. Ids must be < capacity passed at reserve
/// time or grown implicitly; each id may be in the heap at most once.
template <typename Key>
using BinaryHeap = DAryHeap<Key, 2>;

}  // namespace cdst
