/// \file logging.h
/// Minimal leveled logger. Single global sink (stderr), thread-safe enough
/// for our single-writer usage; levels filter at call sites cheaply.

#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace cdst {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
LogLevel parse_log_level(const std::string& s);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Stream-style log statement: CDST_LOG(kInfo) << "routed " << n << " nets";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace cdst

#define CDST_LOG(level)                                  \
  if (::cdst::LogLevel::level < ::cdst::log_level()) {   \
  } else                                                 \
    ::cdst::LogLine(::cdst::LogLevel::level)
