/// \file sparse_map.h
/// Open-addressing hash map from uint32 keys to small values.
///
/// The cost-distance solver keeps one Dijkstra label set *per active sink*;
/// label sets are sparse relative to |V(G)|, so a dense array per search
/// would cost O(t * n) memory. This map gives near-array speed at
/// memory proportional to labels actually touched.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.h"

namespace cdst {

/// Linear-probing hash map. Key 0xffffffff is reserved as the empty marker.
template <typename V>
class SparseMap {
 public:
  using Key = std::uint32_t;
  static constexpr Key kEmpty = 0xffffffffu;

  SparseMap() { rehash(16); }
  explicit SparseMap(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    rehash(cap);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    keys_.assign(keys_.size(), kEmpty);
    size_ = 0;
  }

  /// Returns a pointer to the value for key, or nullptr if absent.
  V* find(Key key) {
    CDST_ASSERT(key != kEmpty);
    std::size_t i = probe_start(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return &vals_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  const V* find(Key key) const {
    return const_cast<SparseMap*>(this)->find(key);
  }

  /// Returns the value for key, inserting a default-constructed one if
  /// absent.
  V& operator[](Key key) {
    CDST_ASSERT(key != kEmpty);
    if ((size_ + 1) * 4 > keys_.size() * 3) rehash(keys_.size() * 2);
    std::size_t i = probe_start(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return vals_[i];
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    vals_[i] = V{};
    ++size_;
    return vals_[i];
  }

  bool contains(Key key) const { return find(key) != nullptr; }

  /// Visits every (key, value) pair; f(Key, V&).
  template <typename F>
  void for_each(F&& f) {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmpty) f(keys_[i], vals_[i]);
    }
  }

  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmpty) f(keys_[i], vals_[i]);
    }
  }

 private:
  std::size_t probe_start(Key key) const {
    // Fibonacci hashing spreads sequential grid ids well.
    return (static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ull >> 32) &
           mask_;
  }

  void rehash(std::size_t new_cap) {
    CDST_ASSERT((new_cap & (new_cap - 1)) == 0);
    std::vector<Key> old_keys = std::move(keys_);
    std::vector<V> old_vals = std::move(vals_);
    keys_.assign(new_cap, kEmpty);
    vals_.assign(new_cap, V{});
    mask_ = new_cap - 1;
    size_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      std::size_t j = probe_start(old_keys[i]);
      while (keys_[j] != kEmpty) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      vals_[j] = std::move(old_vals[i]);
      ++size_;
    }
  }

  std::vector<Key> keys_;
  std::vector<V> vals_;
  std::size_t mask_{0};
  std::size_t size_{0};
};

}  // namespace cdst
