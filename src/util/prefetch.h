/// \file prefetch.h
/// Portable explicit-prefetch hint for the blocked search kernels: on grid
/// graphs the relax loop's first touch per arc is the head vertex's label
/// slot, a data-dependent load the hardware prefetcher cannot predict.

#pragma once

namespace cdst {

#if defined(__GNUC__) || defined(__clang__)
inline void prefetch_read(const void* p) { __builtin_prefetch(p, 0); }
inline void prefetch_write(const void* p) { __builtin_prefetch(p, 1); }
#else
inline void prefetch_read(const void*) {}
inline void prefetch_write(const void*) {}
#endif

}  // namespace cdst
