/// \file d_ary_heap.h
/// Cache-friendly addressable d-ary min-heap (default arity 4) plus a plain
/// (non-addressable) d-ary priority queue.
///
/// A 4-ary heap stores siblings contiguously: one cache line holds all
/// children of a node, so sift-down touches ~half as many lines as a binary
/// heap at the price of three extra key comparisons per level. On the
/// Dijkstra-shaped workloads of this repo (push/decrease-heavy, m = O(n))
/// that trade wins — see bench_heaps' DAryHeapChurn and DijkstraGridHeapKind
/// rows. The addressable variant mirrors BinaryHeap's API exactly, so it is
/// a drop-in backend for the search kernels and the two-level structure.

#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.h"

namespace cdst {

/// Addressable d-ary min-heap over (id, key) pairs with O(1) contains and
/// decrease-key lookup via a position map. Each id may be present at most
/// once. API-compatible with BinaryHeap.
template <typename Key, unsigned Arity = 4>
class DAryHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  using Id = std::uint32_t;
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  DAryHeap() = default;
  explicit DAryHeap(std::size_t capacity) { reserve(capacity); }

  void reserve(std::size_t capacity) {
    heap_.reserve(capacity);
    if (pos_.size() < capacity) pos_.resize(capacity, kNpos);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  bool contains(Id id) const { return id < pos_.size() && pos_[id] != kNpos; }

  const Key& key_of(Id id) const {
    CDST_ASSERT(contains(id));
    return heap_[pos_[id]].key;
  }

  /// Smallest key in the heap. Precondition: !empty().
  const Key& min_key() const {
    CDST_ASSERT(!empty());
    return heap_[0].key;
  }

  /// Id with the smallest key. Precondition: !empty().
  Id min_id() const {
    CDST_ASSERT(!empty());
    return heap_[0].id;
  }

  /// Inserts id with the given key. Precondition: !contains(id).
  void push(Id id, const Key& key) {
    ensure_pos(id);
    CDST_ASSERT(pos_[id] == kNpos);
    heap_.push_back(Entry{key, id});
    pos_[id] = static_cast<std::uint32_t>(heap_.size() - 1);
    sift_up(heap_.size() - 1);
  }

  /// Inserts or lowers the key of id; returns true if the heap changed.
  bool push_or_decrease(Id id, const Key& key) {
    if (!contains(id)) {
      push(id, key);
      return true;
    }
    if (key < heap_[pos_[id]].key) {
      heap_[pos_[id]].key = key;
      sift_up(pos_[id]);
      return true;
    }
    return false;
  }

  /// Lowers the key of an existing id. Precondition: key <= current key.
  void decrease_key(Id id, const Key& key) {
    CDST_ASSERT(contains(id));
    CDST_ASSERT(!(heap_[pos_[id]].key < key));
    heap_[pos_[id]].key = key;
    sift_up(pos_[id]);
  }

  /// Removes and returns the id with the smallest key.
  Id pop_min() {
    CDST_ASSERT(!empty());
    const Id top = heap_[0].id;
    remove_at(0);
    return top;
  }

  /// Removes an arbitrary contained id.
  void erase(Id id) {
    CDST_ASSERT(contains(id));
    remove_at(pos_[id]);
  }

  void clear() {
    for (const Entry& e : heap_) pos_[e.id] = kNpos;
    heap_.clear();
  }

 private:
  struct Entry {
    Key key;
    Id id;
  };

  void ensure_pos(Id id) {
    if (id >= pos_.size()) pos_.resize(static_cast<std::size_t>(id) + 1, kNpos);
  }

  static std::size_t parent(std::size_t i) { return (i - 1) / Arity; }

  void remove_at(std::size_t i) {
    pos_[heap_[i].id] = kNpos;
    if (i + 1 != heap_.size()) {
      heap_[i] = heap_.back();
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i);
      heap_.pop_back();
      // The moved element may need to go either way.
      if (i > 0 && heap_[i].key < heap_[parent(i)].key) {
        sift_up(i);
      } else {
        sift_down(i);
      }
    } else {
      heap_.pop_back();
    }
  }

  void sift_up(std::size_t i) {
    Entry e = heap_[i];
    while (i > 0 && e.key < heap_[parent(i)].key) {
      heap_[i] = heap_[parent(i)];
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i);
      i = parent(i);
    }
    heap_[i] = e;
    pos_[e.id] = static_cast<std::uint32_t>(i);
  }

  void sift_down(std::size_t i) {
    Entry e = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t first = Arity * i + 1;
      if (first >= n) break;
      const std::size_t last = std::min(first + Arity, n);
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (heap_[c].key < heap_[best].key) best = c;
      }
      if (!(heap_[best].key < e.key)) break;
      heap_[i] = heap_[best];
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i);
      i = best;
    }
    heap_[i] = e;
    pos_[e.id] = static_cast<std::uint32_t>(i);
  }

  std::vector<Entry> heap_;
  std::vector<std::uint32_t> pos_;
};

/// Plain d-ary min-queue over values ordered by operator<: push/top/pop only,
/// duplicates allowed. The lazy-deletion variant of the solver queue pushes
/// many duplicate entries per label, so it needs exactly this (an
/// addressable heap's position map would be wasted work there).
template <typename T, unsigned Arity = 4>
class DAryQueue {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  void reserve(std::size_t capacity) { heap_.reserve(capacity); }
  void clear() { heap_.clear(); }

  const T& top() const {
    CDST_ASSERT(!empty());
    return heap_[0];
  }

  void push(T value) {
    std::size_t i = heap_.size();
    heap_.push_back(std::move(value));
    while (i > 0) {
      const std::size_t p = (i - 1) / Arity;
      if (!(heap_[i] < heap_[p])) break;
      std::swap(heap_[i], heap_[p]);
      i = p;
    }
  }

  void pop() {
    CDST_ASSERT(!empty());
    heap_[0] = std::move(heap_.back());
    heap_.pop_back();
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    while (true) {
      const std::size_t first = Arity * i + 1;
      if (first >= n) break;
      const std::size_t last = std::min(first + Arity, n);
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (heap_[c] < heap_[best]) best = c;
      }
      if (!(heap_[best] < heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

 private:
  std::vector<T> heap_;
};

}  // namespace cdst
