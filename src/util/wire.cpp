#include "util/wire.h"

namespace cdst::wire {

void put_str(std::vector<std::uint8_t>& out, std::string_view s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void put_vec(std::vector<std::uint8_t>& out,
             const std::vector<std::uint32_t>& v) {
  put_u64(out, v.size());
  for (const std::uint32_t x : v) put_u32(out, x);
}

void put_vec(std::vector<std::uint8_t>& out,
             const std::vector<std::uint64_t>& v) {
  put_u64(out, v.size());
  for (const std::uint64_t x : v) put_u64(out, x);
}

void put_vec(std::vector<std::uint8_t>& out, const std::vector<double>& v) {
  put_u64(out, v.size());
  for (const double x : v) put_f64(out, x);
}

void read_vec(Reader& r, std::vector<std::uint32_t>& v) {
  const std::uint64_t n = r.u64();
  if (!r.fits(n, 4)) {
    r.ok = false;
    return;
  }
  v.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = r.u32();
}

void read_vec(Reader& r, std::vector<std::uint64_t>& v) {
  const std::uint64_t n = r.u64();
  if (!r.fits(n, 8)) {
    r.ok = false;
    return;
  }
  v.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = r.u64();
}

void read_vec(Reader& r, std::vector<double>& v) {
  const std::uint64_t n = r.u64();
  if (!r.fits(n, 8)) {
    r.ok = false;
    return;
  }
  v.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = r.f64();
}

void read_str(Reader& r, std::string& s) {
  const std::uint64_t n = r.u64();
  if (!r.fits(n, 1)) {
    r.ok = false;
    return;
  }
  s.assign(reinterpret_cast<const char*>(r.bytes.data()) + r.pos, n);
  r.pos += n;
}

}  // namespace cdst::wire
