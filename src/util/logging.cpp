#include "util/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>

namespace cdst {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& s) {
  std::string t;
  t.reserve(s.size());
  std::transform(s.begin(), s.end(), std::back_inserter(t),
                 [](unsigned char c) { return std::tolower(c); });
  if (t == "debug") return LogLevel::kDebug;
  if (t == "info") return LogLevel::kInfo;
  if (t == "warn" || t == "warning") return LogLevel::kWarn;
  if (t == "error") return LogLevel::kError;
  if (t == "off" || t == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {

void log_emit(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double secs =
      std::chrono::duration<double>(clock::now() - start).count();
  std::fprintf(stderr, "[%9.3f] %s %s\n", secs, level_tag(level), msg.c_str());
}

}  // namespace detail
}  // namespace cdst
