/// \file timer.h
/// Wall-clock timing helpers for the experiment harnesses (Tables IV/V report
/// a walltime column).

#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace cdst {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Formats seconds as h:mm:ss (the paper's walltime format).
inline std::string format_hms(double seconds) {
  const auto total = static_cast<long long>(seconds + 0.5);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld:%02lld:%02lld", total / 3600,
                (total / 60) % 60, total % 60);
  return buf;
}

}  // namespace cdst
