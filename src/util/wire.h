/// \file util/wire.h
/// Little-endian wire encoding shared by every serialized artifact of the
/// tree: Router checkpoints (api/router.h) and the distributed round
/// messages (dist/wire.h) frame their bytes through these helpers, so there
/// is exactly one framing discipline to audit.
///
/// Conventions:
///   - fixed little-endian layout, independent of host endianness;
///   - every message starts with a u32 magic + u32 version header, checked
///     via expect_header() before any field read (lint rule `wire-format`);
///   - reads are bounds-checked: a truncated or corrupt buffer turns every
///     later read into a no-op and trips Reader::ok;
///   - variable-length payloads are length-prefixed, and every count is
///     checked against the *unread remainder* before the resize, so corrupt
///     counts can neither drive huge allocations nor overflow the check.
///
/// This header stays below the api layer on purpose (it reports errors via
/// Reader::ok / HeaderCheck, not Status), so substrate code can serialize
/// without depending on the session API.

#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cdst::wire {

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

inline void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// u64 length prefix + raw bytes.
void put_str(std::vector<std::uint8_t>& out, std::string_view s);

/// Bounds-checked sequential reader. Any read past the end (or after a
/// failed read) returns 0 and latches ok = false, so parse code can run the
/// full field sequence unconditionally and check ok once per section.
struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos{0};
  bool ok{true};

  std::uint8_t u8() {
    if (!ok || bytes.size() - pos < 1) {
      ok = false;
      return 0;
    }
    return bytes[pos++];
  }

  std::uint32_t u32() {
    if (!ok || bytes.size() - pos < 4) {
      ok = false;
      return 0;
    }
    const std::uint32_t v =
        static_cast<std::uint32_t>(bytes[pos]) |
        static_cast<std::uint32_t>(bytes[pos + 1]) << 8 |
        static_cast<std::uint32_t>(bytes[pos + 2]) << 16 |
        static_cast<std::uint32_t>(bytes[pos + 3]) << 24;
    pos += 4;
    return v;
  }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | hi << 32;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  /// Bytes not yet consumed (0 once the reader has failed).
  std::uint64_t remaining() const { return ok ? bytes.size() - pos : 0; }

  /// True when `count` elements of `elem_size` bytes each still fit in the
  /// unread payload. Per-count division check — cannot overflow, so it is
  /// safe on counts taken straight from untrusted bytes.
  bool fits(std::uint64_t count, std::size_t elem_size) const {
    return ok && elem_size > 0 && count <= remaining() / elem_size;
  }
};

/// Result of the mandatory magic + version check.
enum class HeaderCheck : std::uint8_t {
  kOk,
  kBadMagic,    ///< not this message type (or not wire bytes at all)
  kBadVersion,  ///< right message, unsupported format revision
};

inline void put_header(std::vector<std::uint8_t>& out, std::uint32_t magic,
                       std::uint32_t version) {
  put_u32(out, magic);
  put_u32(out, version);
}

/// Consumes and validates the magic + version header. On any mismatch the
/// reader is failed (ok = false) so later field reads stay no-ops.
inline HeaderCheck expect_header(Reader& r, std::uint32_t magic,
                                 std::uint32_t version) {
  if (r.u32() != magic || !r.ok) {
    r.ok = false;
    return HeaderCheck::kBadMagic;
  }
  if (r.u32() != version || !r.ok) {
    r.ok = false;
    return HeaderCheck::kBadVersion;
  }
  return HeaderCheck::kOk;
}

/// First four bytes as a little-endian u32 (0 when shorter): lets framed
/// byte streams branch on the message magic before parsing.
inline std::uint32_t peek_u32(std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  const std::uint32_t v = r.u32();
  return r.ok ? v : 0;
}

// Length-prefixed homogeneous vectors: u64 count, then the elements. The
// read side checks the count against the unread remainder before resizing.

void put_vec(std::vector<std::uint8_t>& out,
             const std::vector<std::uint32_t>& v);
void put_vec(std::vector<std::uint8_t>& out,
             const std::vector<std::uint64_t>& v);
void put_vec(std::vector<std::uint8_t>& out, const std::vector<double>& v);

void read_vec(Reader& r, std::vector<std::uint32_t>& v);
void read_vec(Reader& r, std::vector<std::uint64_t>& v);
void read_vec(Reader& r, std::vector<double>& v);
void read_str(Reader& r, std::string& s);

}  // namespace cdst::wire
