/// \file simd.h
/// Portable 4-wide double vector (Vec4d) for the blocked relax kernels, with
/// an AVX2 implementation and a bit-identical scalar twin.
///
/// This is the ONLY file in the tree allowed to contain vendor intrinsics
/// (enforced by the `intrinsics-only-in-simd-header` invariant-linter rule);
/// kernels express their arithmetic through Vec4d and never see an ISA.
///
/// Dispatch policy: the AVX2 implementation compiles in under `__AVX2__`
/// (e.g. -march=x86-64-v3, the CI bench ISA, or -march=native via the
/// bench-native preset) unless `CDST_FORCE_SCALAR` is defined (the
/// CDST_FORCE_SCALAR CMake option / force-scalar preset), which pins the
/// scalar twin even on vector ISAs so both paths stay buildable and testable
/// on every lane.
///
/// Bit-identity contract: both implementations evaluate the same expression
/// trees in the same association order. Arithmetic is written as plain
/// mul/add expressions in BOTH twins — the AVX2 intrinsics below lower to
/// ordinary vector mul/add operations, so whatever floating-point
/// contraction policy the build uses (GCC/Clang fuse `a + b*c` into an fma
/// under the default -ffp-contract when the ISA has one) applies to the
/// scalar code, the scalar twin, and the AVX2 path identically. Comparison,
/// blend, min/max and abs are exact bit operations on every path. The
/// simd_test property matrix asserts lane-for-lane bit-identity between the
/// two twins across denormal, huge and zero operands.
///
/// Alignment contract: ArcCostView allocates its per-arc strips through
/// AlignedAllocator (32-byte base alignment) and pads kRelaxStrip doubles of
/// zeros beyond the logical size, so a full-width Vec4d load at any strip
/// offset inside a vertex's arc range never reads past the allocation.
/// Loads still use the unaligned encoding (strip offsets within the array
/// are arbitrary); base alignment keeps them from straddling extra cache
/// lines.

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#if defined(__AVX2__) && !defined(CDST_FORCE_SCALAR)
#define CDST_SIMD_AVX2 1
#include <immintrin.h>
#endif

namespace cdst {

/// Arcs per blocked relax strip — two Vec4d's. Shared by the dijkstra.h
/// kernel and the cost-distance plane relax so the strip width and the
/// vector width can never drift apart.
inline constexpr std::uint32_t kRelaxStrip = 8;

/// Byte alignment of vectorizable strip allocations (the AVX2 vector width).
inline constexpr std::size_t kVecAlign = 32;

/// STL allocator with a fixed over-alignment; ArcCostView's owned strips use
/// it so Vec4d loads never straddle an extra cache line.
template <typename T, std::size_t Align = kVecAlign>
struct AlignedAllocator {
  using value_type = T;
  /// Spelled out because allocator_traits cannot synthesize a rebind across
  /// the non-type Align parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() = default;
  template <typename U>
  // NOLINTNEXTLINE(google-explicit-constructor): allocator rebind requires
  // the implicit converting constructor.
  AlignedAllocator(const AlignedAllocator<U, Align>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const {
    return true;
  }
};

/// std::vector with kVecAlign-aligned storage (the strip container).
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

#if defined(CDST_SIMD_AVX2)

/// Four doubles in one AVX2 register.
struct Vec4d {
  __m256d v;

  static constexpr std::uint32_t kLanes = 4;
  static const char* isa() { return "avx2"; }

  static Vec4d load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static Vec4d broadcast(double x) { return {_mm256_set1_pd(x)}; }
  /// lanes { base[idx[0]], .., base[idx[3]] }. Indices are VertexId-sized
  /// (uint32) and interpreted as non-negative (graphs stay far below 2^31
  /// vertices).
  static Vec4d gather(const double* base, const std::uint32_t* idx) {
    // The masked form with an all-set mask is the same full gather, but its
    // explicit zero source operand avoids GCC's -Wmaybe-uninitialized on the
    // plain wrapper's undefined passthrough register.
    return {_mm256_mask_i32gather_pd(
        _mm256_setzero_pd(), base,
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx)),
        _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8)};
  }
  void store(double* p) const { _mm256_storeu_pd(p, v); }

  // GCC/Clang implement these intrinsics as plain vector mul/add, so fp
  // contraction treats them exactly like the scalar expressions they mirror
  // (see the bit-identity contract in the file comment).
  friend Vec4d operator+(Vec4d a, Vec4d b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend Vec4d operator-(Vec4d a, Vec4d b) {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  friend Vec4d operator*(Vec4d a, Vec4d b) {
    return {_mm256_mul_pd(a.v, b.v)};
  }

  /// a*b + c with the same expression shape as the scalar twin (fused or not
  /// together with it, per the build's contraction policy).
  static Vec4d mul_add(Vec4d a, Vec4d b, Vec4d c) { return a * b + c; }

  /// Per-lane (a < b) ? a : b — exactly vminpd's NaN/zero semantics.
  static Vec4d min(Vec4d a, Vec4d b) { return {_mm256_min_pd(a.v, b.v)}; }
  /// Per-lane (a > b) ? a : b — exactly vmaxpd's NaN/zero semantics.
  static Vec4d max(Vec4d a, Vec4d b) { return {_mm256_max_pd(a.v, b.v)}; }
  /// Per-lane |a| (sign bit cleared; exact for every value incl. NaN).
  static Vec4d abs(Vec4d a) {
    return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
  }

  /// Bit k set iff a.lane[k] < b.lane[k] (ordered: NaN compares false).
  static int lt_mask(Vec4d a, Vec4d b) {
    return _mm256_movemask_pd(_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ));
  }

  /// Lane k from b where bit k of `mask` is set, else from a (mask in
  /// [0, 16)).
  static Vec4d blend(Vec4d a, Vec4d b, int mask) {
    alignas(kVecAlign) static constexpr std::uint64_t kLaneBits[16][4] = {
        {0, 0, 0, 0},  {~0ull, 0, 0, 0},  {0, ~0ull, 0, 0},
        {~0ull, ~0ull, 0, 0},  {0, 0, ~0ull, 0},  {~0ull, 0, ~0ull, 0},
        {0, ~0ull, ~0ull, 0},  {~0ull, ~0ull, ~0ull, 0},
        {0, 0, 0, ~0ull},  {~0ull, 0, 0, ~0ull},  {0, ~0ull, 0, ~0ull},
        {~0ull, ~0ull, 0, ~0ull},  {0, 0, ~0ull, ~0ull},
        {~0ull, 0, ~0ull, ~0ull},  {0, ~0ull, ~0ull, ~0ull},
        {~0ull, ~0ull, ~0ull, ~0ull}};
    const __m256d sel =
        _mm256_load_pd(reinterpret_cast<const double*>(kLaneBits[mask]));
    return {_mm256_blendv_pd(a.v, b.v, sel)};
  }

  double lane(int k) const {
    alignas(kVecAlign) double tmp[kLanes];
    _mm256_store_pd(tmp, v);
    return tmp[k];
  }

  /// Horizontal min, associated as min(min(l0,l2), min(l1,l3)) — the scalar
  /// twin mirrors this exact tree.
  double hmin() const {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d m = _mm_min_pd(lo, hi);  // {min(l0,l2), min(l1,l3)}
    return _mm_cvtsd_f64(_mm_min_sd(m, _mm_unpackhi_pd(m, m)));
  }
};

#else  // scalar twin

/// Four doubles, scalar twin of the AVX2 implementation: same lane ops, same
/// association order, same comparison/blend semantics — bit-identical.
struct Vec4d {
  double v[4];

  static constexpr std::uint32_t kLanes = 4;
  static const char* isa() { return "scalar"; }

  static Vec4d load(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
  static Vec4d broadcast(double x) { return {{x, x, x, x}}; }
  static Vec4d gather(const double* base, const std::uint32_t* idx) {
    return {{base[idx[0]], base[idx[1]], base[idx[2]], base[idx[3]]}};
  }
  void store(double* p) const {
    p[0] = v[0];
    p[1] = v[1];
    p[2] = v[2];
    p[3] = v[3];
  }

  friend Vec4d operator+(Vec4d a, Vec4d b) {
    return {{a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2],
             a.v[3] + b.v[3]}};
  }
  friend Vec4d operator-(Vec4d a, Vec4d b) {
    return {{a.v[0] - b.v[0], a.v[1] - b.v[1], a.v[2] - b.v[2],
             a.v[3] - b.v[3]}};
  }
  friend Vec4d operator*(Vec4d a, Vec4d b) {
    return {{a.v[0] * b.v[0], a.v[1] * b.v[1], a.v[2] * b.v[2],
             a.v[3] * b.v[3]}};
  }

  static Vec4d mul_add(Vec4d a, Vec4d b, Vec4d c) { return a * b + c; }

  static Vec4d min(Vec4d a, Vec4d b) {
    Vec4d r;
    for (int k = 0; k < 4; ++k) r.v[k] = a.v[k] < b.v[k] ? a.v[k] : b.v[k];
    return r;
  }
  static Vec4d max(Vec4d a, Vec4d b) {
    Vec4d r;
    for (int k = 0; k < 4; ++k) r.v[k] = a.v[k] > b.v[k] ? a.v[k] : b.v[k];
    return r;
  }
  static Vec4d abs(Vec4d a) {
    Vec4d r;
    for (int k = 0; k < 4; ++k) {
      // Clear the sign bit like vandnpd does (spelled bitwise so the twin
      // cannot drift from the AVX2 semantics, NaN payloads included).
      r.v[k] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(a.v[k]) &
                                     ~(1ull << 63));
    }
    return r;
  }

  static int lt_mask(Vec4d a, Vec4d b) {
    int m = 0;
    for (int k = 0; k < 4; ++k) m |= static_cast<int>(a.v[k] < b.v[k]) << k;
    return m;
  }

  static Vec4d blend(Vec4d a, Vec4d b, int mask) {
    Vec4d r;
    for (int k = 0; k < 4; ++k) {
      r.v[k] = ((mask >> k) & 1) != 0 ? b.v[k] : a.v[k];
    }
    return r;
  }

  double lane(int k) const { return v[k]; }

  double hmin() const {
    const double m0 = v[0] < v[2] ? v[0] : v[2];
    const double m1 = v[1] < v[3] ? v[1] : v[3];
    return m0 < m1 ? m0 : m1;
  }
};

#endif  // CDST_SIMD_AVX2

}  // namespace cdst
