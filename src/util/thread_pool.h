/// \file thread_pool.h
/// Persistent worker pool with a parallel-for primitive.
///
/// The router's rip-up/re-route loop dispatches thousands of small per-net
/// oracle batches; spawning fresh std::threads per batch costs more than many
/// of the batches themselves. This pool spawns its workers once and reuses
/// them across every batch and iteration. Work is handed out through an
/// atomic index counter, so the set of (index -> result) pairs — and hence
/// anything written to index-addressed output slots — is deterministic and
/// independent of the worker count; only the interleaving varies.

#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace cdst {

/// Fixed-size pool of `threads - 1` workers; the calling thread participates
/// in every parallel_for, so `threads == 1` degenerates to a plain serial
/// loop with no threads spawned at all. parallel_for calls issued from
/// inside a worker (nested parallelism) run serially inline on that worker.
///
/// Besides the parallel_for barrier primitive, the pool runs fire-and-forget
/// tasks (submit) for streaming pipelines: tasks and batches share the
/// workers, with a pending batch taking priority so parallel_for barriers
/// never starve behind a deep task queue.
class ThreadPool {
 public:
  /// \param threads total concurrency including the calling thread (>= 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes, including the caller.
  int concurrency() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(i) for every i in [begin, end), distributing indices across
  /// the workers and the calling thread. Blocks until all indices are done.
  /// If any body throws, the remaining indices are abandoned and the first
  /// exception (in completion order) is rethrown here.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Enqueues one asynchronous task and returns immediately; some worker
  /// runs it after any pending parallel_for batch. With no workers
  /// (threads == 1), or when called from inside a running batch/task, the
  /// task runs inline on the calling thread before submit returns — the
  /// same no-deadlock degeneration as nested parallel_for. Tasks must
  /// arrange their own completion signalling (SolveStream does) and must
  /// not throw: an escaping exception has no caller to land on and
  /// terminates. The destructor runs still-queued tasks on the destructing
  /// thread, so a submitted task always executes exactly once.
  void submit(std::function<void()> task);

 private:
  struct Batch;

  void worker_main();
  static void drain(Batch& batch);
  static void run_task(const std::function<void()>& task);

  /// Written once in the constructor before any worker can observe it, read
  /// concurrently afterwards — immutable state, so deliberately unguarded.
  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar work_cv_;  ///< wakes workers on a new batch/task
  CondVar done_cv_;  ///< wakes the caller when workers leave
  Batch* batch_ CDST_GUARDED_BY(mu_) = nullptr;  ///< current batch
  std::deque<std::function<void()>> tasks_ CDST_GUARDED_BY(mu_);
  std::uint64_t generation_ CDST_GUARDED_BY(mu_) = 0;  ///< bumped per batch
  /// Workers that registered into the current batch and have not left yet.
  /// The parallel_for barrier waits only on these — a worker busy with a
  /// task never joins and is never waited for.
  int workers_active_ CDST_GUARDED_BY(mu_) = 0;
  bool stop_ CDST_GUARDED_BY(mu_) = false;
};

}  // namespace cdst
