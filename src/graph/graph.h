/// \file graph.h
/// Undirected graph in CSR (compressed sparse row) form.
///
/// Vertices and edges have dense 32-bit ids. Per-edge attributes (congestion
/// cost, delay, layer, ...) are stored in parallel arrays owned by the
/// clients (e.g. grid::RoutingGrid), keeping this structure generic enough
/// for unit tests on arbitrary graphs. Parallel edges (one per wire type) and
/// self-loop-free multigraphs are fully supported.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.h"

namespace cdst {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;

constexpr VertexId kInvalidVertex = 0xffffffffu;
constexpr EdgeId kInvalidEdge = 0xffffffffu;

/// Mutable edge-list builder; finalized into an immutable Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_vertices = 0)
      : num_vertices_(num_vertices) {}

  void set_num_vertices(std::size_t n) { num_vertices_ = n; }
  std::size_t num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return tails_.size(); }

  /// Adds an undirected edge {u, v}; returns its EdgeId.
  EdgeId add_edge(VertexId u, VertexId v) {
    CDST_CHECK(u < num_vertices_ && v < num_vertices_);
    CDST_CHECK_MSG(u != v, "self loops are not supported");
    tails_.push_back(u);
    heads_.push_back(v);
    return static_cast<EdgeId>(tails_.size() - 1);
  }

  friend class Graph;

 private:
  std::size_t num_vertices_{0};
  std::vector<VertexId> tails_;
  std::vector<VertexId> heads_;
};

/// Immutable CSR graph. Each undirected edge appears in both endpoint
/// adjacency lists; adjacency entries pair the edge id with the opposite
/// endpoint.
///
/// Arcs are addressable two ways: the classic array-of-structs `arcs(v)`
/// span, and — finalized at the same time — a structure-of-arrays plane
/// (`arc_heads()` / `arc_edges()` indexed by *arc index*, with the per-vertex
/// range given by `arc_begin()`/`arc_end()`). The SoA plane is what the
/// blocked search kernels scan: per-arc attribute arrays (ArcCostView) line
/// up with it index-for-index, so a relax loop reads contiguous strips
/// instead of chasing per-edge indirections.
class Graph {
 public:
  struct Arc {
    EdgeId edge;
    VertexId to;
  };

  Graph() = default;
  explicit Graph(const GraphBuilder& b) { build(b); }

  std::size_t num_vertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_edges() const { return tails_.size(); }

  VertexId tail(EdgeId e) const {
    CDST_ASSERT(e < tails_.size());
    return tails_[e];
  }
  VertexId head(EdgeId e) const {
    CDST_ASSERT(e < heads_.size());
    return heads_[e];
  }

  /// The endpoint of e opposite to v. Precondition: v is an endpoint of e.
  VertexId other_end(EdgeId e, VertexId v) const {
    CDST_ASSERT(tails_[e] == v || heads_[e] == v);
    return tails_[e] == v ? heads_[e] : tails_[e];
  }

  /// All arcs leaving v (one per incident undirected edge).
  std::span<const Arc> arcs(VertexId v) const {
    CDST_ASSERT(v < num_vertices());
    return {arcs_.data() + offsets_[v],
            arcs_.data() + offsets_[v + 1]};
  }

  std::size_t degree(VertexId v) const {
    CDST_ASSERT(v < num_vertices());
    return offsets_[v + 1] - offsets_[v];
  }

  /// Total number of arcs (twice the edge count).
  std::size_t num_arcs() const { return arcs_.size(); }

  /// Arc-index range of v in the SoA plane: arcs of v occupy
  /// [arc_begin(v), arc_end(v)) of arc_heads()/arc_edges() and of any
  /// per-arc attribute array built over this graph.
  std::uint32_t arc_begin(VertexId v) const {
    CDST_ASSERT(v < num_vertices());
    return static_cast<std::uint32_t>(offsets_[v]);
  }
  std::uint32_t arc_end(VertexId v) const {
    CDST_ASSERT(v < num_vertices());
    return static_cast<std::uint32_t>(offsets_[v + 1]);
  }

  /// Head vertex per arc index (the SoA twin of arcs()[...].to).
  std::span<const VertexId> arc_heads() const { return arc_heads_; }
  /// Edge id per arc index (the SoA twin of arcs()[...].edge).
  std::span<const EdgeId> arc_edges() const { return arc_edges_; }

 private:
  void build(const GraphBuilder& b);

  std::vector<VertexId> tails_;
  std::vector<VertexId> heads_;
  std::vector<std::size_t> offsets_;
  std::vector<Arc> arcs_;
  std::vector<VertexId> arc_heads_;  ///< SoA plane, same order as arcs_
  std::vector<EdgeId> arc_edges_;
};

}  // namespace cdst
