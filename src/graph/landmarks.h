/// \file landmarks.h
/// ALT (A*, Landmarks, Triangle inequality) lower bounds [Goldberg &
/// Harrelson, SODA'05], used by the goal-oriented path searches of paper
/// Section III-C to lower-bound *congestion* cost between vertices.
///
/// Landmarks are selected by the standard "avoid farthest" greedy on the
/// given metric; for every landmark we store distances to all vertices, and
/// dist(x, y) >= max_L |d(L, x) - d(L, y)| gives an admissible estimate.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/graph.h"

namespace cdst {

class Landmarks {
 public:
  /// Builds k landmarks on graph g with the given (static) edge lengths.
  Landmarks(const Graph& g, const EdgeLengthFn& length, std::size_t k);

  std::size_t count() const { return tables_.size(); }

  /// Admissible lower bound on the length of any x-y path.
  double lower_bound(VertexId x, VertexId y) const {
    double best = 0.0;
    for (const auto& table : tables_) {
      const double d = table[x] - table[y];
      const double ad = d < 0 ? -d : d;
      if (ad > best) best = ad;
    }
    return best;
  }

  /// Distance table of landmark i (for tests).
  const std::vector<double>& table(std::size_t i) const { return tables_[i]; }
  VertexId landmark(std::size_t i) const { return picks_[i]; }

 private:
  std::vector<std::vector<double>> tables_;
  std::vector<VertexId> picks_;
};

}  // namespace cdst
