/// \file landmarks.h
/// ALT (A*, Landmarks, Triangle inequality) lower bounds [Goldberg &
/// Harrelson, SODA'05], used by the goal-oriented path searches of paper
/// Section III-C to lower-bound *congestion* cost between vertices.
///
/// Landmarks are selected by the standard "avoid farthest" greedy on the
/// given metric; for every landmark we store distances to all vertices, and
/// dist(x, y) >= max_L |d(L, x) - d(L, y)| gives an admissible estimate.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/graph.h"

namespace cdst {

class Landmarks {
 public:
  /// Builds k landmarks on graph g with the given (static) edge lengths.
  /// Accepts any edge-length functor (ArrayLength, a lambda, EdgeLengthFn);
  /// the k full-graph Dijkstra runs instantiate the kernel on that concrete
  /// type, so preprocessing pays no per-edge indirection.
  template <typename LengthFn>
  Landmarks(const Graph& g, const LengthFn& length, std::size_t k) {
    const std::size_t n = g.num_vertices();
    CDST_CHECK(n > 0);
    k = std::min(k, n);

    // Avoid-farthest greedy: first landmark is vertex 0; each next landmark
    // is the vertex farthest from the already-chosen set.
    std::vector<double> min_dist(n, DijkstraResult::kInf);
    VertexId next = 0;
    for (std::size_t i = 0; i < k; ++i) {
      picks_.push_back(next);
      DijkstraResult r = dijkstra(g, {next}, length);
      // Unreachable vertices keep +inf in the table; lower_bound() then
      // yields +inf - +inf = nan, so zero them instead (conservative: the
      // bound degrades to 0 across disconnected pairs).
      for (double& d : r.dist) {
        if (d == DijkstraResult::kInf) d = 0.0;  // conservative: bound degrades
      }
      tables_.push_back(std::move(r.dist));
      double far = -1.0;
      for (VertexId v = 0; v < n; ++v) {
        min_dist[v] = std::min(min_dist[v], tables_.back()[v]);
        if (min_dist[v] > far && min_dist[v] < DijkstraResult::kInf) {
          far = min_dist[v];
          next = v;
        }
      }
    }
  }

  std::size_t count() const { return tables_.size(); }

  /// Admissible lower bound on the length of any x-y path.
  double lower_bound(VertexId x, VertexId y) const {
    double best = 0.0;
    for (const auto& table : tables_) {
      const double d = table[x] - table[y];
      const double ad = d < 0 ? -d : d;
      if (ad > best) best = ad;
    }
    return best;
  }

  /// Distance table of landmark i (for tests).
  const std::vector<double>& table(std::size_t i) const { return tables_[i]; }
  VertexId landmark(std::size_t i) const { return picks_[i]; }

 private:
  std::vector<std::vector<double>> tables_;
  std::vector<VertexId> picks_;
};

}  // namespace cdst
