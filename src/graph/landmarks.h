/// \file landmarks.h
/// ALT (A*, Landmarks, Triangle inequality) lower bounds [Goldberg &
/// Harrelson, SODA'05], used by the goal-oriented path searches of paper
/// Section III-C to lower-bound *congestion* cost between vertices.
///
/// Landmarks are selected by a batched "avoid farthest" greedy on the given
/// metric: each round picks up to `batch` candidates — the farthest vertex
/// from the chosen set, then further candidates pushed apart using the ALT
/// bounds of the tables built so far — and computes their full-graph
/// Dijkstra tables, in parallel on a ThreadPool when one is provided. With
/// batch == 1 this is exactly the classic fully sequential greedy; larger
/// batches trade a little selection quality for table-build parallelism.
/// Selection is deterministic and independent of the pool's thread count.
/// For every landmark we store distances to all vertices, and
/// dist(x, y) >= max_L |d(L, x) - d(L, y)| gives an admissible estimate.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/graph.h"
#include "util/thread_pool.h"

namespace cdst {

class Landmarks {
 public:
  /// Builds k landmarks on graph g with the given (static) edge lengths.
  /// Accepts any edge-length functor (ArrayLength, a lambda, EdgeLengthFn);
  /// the k full-graph Dijkstra runs instantiate the kernel on that concrete
  /// type, so preprocessing pays no per-edge indirection. `pool` (optional,
  /// borrowed for the constructor only) parallelizes the per-round table
  /// builds; it never changes which landmarks are picked.
  template <typename LengthFn>
  Landmarks(const Graph& g, const LengthFn& length, std::size_t k,
            ThreadPool* pool = nullptr, std::size_t batch = 1) {
    const std::size_t n = g.num_vertices();
    CDST_CHECK(n > 0);
    k = std::min(k, n);
    if (batch == 0) batch = 1;

    // min_dist[v] = distance from v to the nearest chosen landmark.
    std::vector<double> min_dist(n, DijkstraResult::kInf);
    while (picks_.size() < k) {
      // The first round anchors the greedy at vertex 0 (the classic rule);
      // later rounds batch up to `batch` candidates.
      const std::size_t want =
          picks_.empty() ? 1 : std::min(batch, k - picks_.size());
      const std::vector<VertexId> cands = select_candidates(min_dist, want);

      const std::size_t base = tables_.size();
      tables_.resize(base + cands.size());
      const std::function<void(std::size_t)> build = [&](std::size_t i) {
        DijkstraResult r = dijkstra(g, {cands[i]}, length);
        // Unreachable vertices keep +inf in the table; lower_bound() then
        // yields +inf - +inf = nan, so zero them instead (conservative: the
        // bound degrades to 0 across disconnected pairs).
        for (double& d : r.dist) {
          if (d == DijkstraResult::kInf) d = 0.0;
        }
        tables_[base + i] = std::move(r.dist);
      };
      if (pool != nullptr && cands.size() > 1) {
        pool->parallel_for(0, cands.size(), build);
      } else {
        for (std::size_t i = 0; i < cands.size(); ++i) build(i);
      }

      // Fold the round's tables into min_dist (serial: deterministic).
      for (std::size_t i = 0; i < cands.size(); ++i) {
        picks_.push_back(cands[i]);
        const std::vector<double>& table = tables_[base + i];
        for (VertexId v = 0; v < n; ++v) {
          min_dist[v] = std::min(min_dist[v], table[v]);
        }
      }
    }
  }

  std::size_t count() const { return tables_.size(); }

  /// Admissible lower bound on the length of any x-y path.
  double lower_bound(VertexId x, VertexId y) const {
    double best = 0.0;
    for (const auto& table : tables_) {
      const double d = table[x] - table[y];
      const double ad = d < 0 ? -d : d;
      if (ad > best) best = ad;
    }
    return best;
  }

  /// Distance table of landmark i (for tests).
  const std::vector<double>& table(std::size_t i) const { return tables_[i]; }
  /// All tables, dense per-vertex — feeds PlaneBoundData::landmark_tables.
  const std::vector<std::vector<double>>& tables() const { return tables_; }
  VertexId landmark(std::size_t i) const { return picks_[i]; }

 private:
  /// Deterministic candidate picks for one round. The first candidate is the
  /// plain avoid-farthest choice (vertex 0 when nothing is picked yet);
  /// within the round, further candidates maximize the estimated distance to
  /// both the chosen landmarks (min_dist) and this round's earlier
  /// candidates — estimated via the ALT bound over the tables already built,
  /// which is all we have before the candidates' own tables exist.
  std::vector<VertexId> select_candidates(const std::vector<double>& min_dist,
                                          std::size_t want) const {
    std::vector<VertexId> cands;
    if (picks_.empty()) {
      cands.push_back(0);
      return cands;
    }
    const auto n = static_cast<VertexId>(min_dist.size());
    while (cands.size() < want) {
      double far = -1.0;
      VertexId next = kInvalidVertex;
      for (VertexId v = 0; v < n; ++v) {
        double score = min_dist[v];
        for (const VertexId c : cands) {
          score = std::min(score, lower_bound(c, v));
        }
        if (score > far && score < DijkstraResult::kInf) {
          far = score;
          next = v;
        }
      }
      if (next == kInvalidVertex) {
        // Everything unpicked is unreachable from the chosen set; degrade
        // like the classic greedy did: repeat the last pick.
        cands.push_back(cands.empty() ? picks_.back() : cands.back());
      } else {
        cands.push_back(next);
      }
    }
    return cands;
  }

  std::vector<std::vector<double>> tables_;
  std::vector<VertexId> picks_;
};

}  // namespace cdst
