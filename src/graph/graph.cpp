#include "graph/graph.h"

namespace cdst {

void Graph::build(const GraphBuilder& b) {
  tails_ = b.tails_;
  heads_ = b.heads_;
  const std::size_t n = b.num_vertices_;
  const std::size_t m = tails_.size();

  std::vector<std::size_t> deg(n, 0);
  for (std::size_t e = 0; e < m; ++e) {
    ++deg[tails_[e]];
    ++deg[heads_[e]];
  }

  offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] = offsets_[v] + deg[v];

  arcs_.resize(2 * m);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t e = 0; e < m; ++e) {
    const auto id = static_cast<EdgeId>(e);
    arcs_[cursor[tails_[e]]++] = Arc{id, heads_[e]};
    arcs_[cursor[heads_[e]]++] = Arc{id, tails_[e]};
  }

  // The SoA arc plane: same arc order, split into contiguous per-attribute
  // arrays so search kernels scan strips instead of striding over Arc pairs.
  arc_heads_.resize(arcs_.size());
  arc_edges_.resize(arcs_.size());
  for (std::size_t a = 0; a < arcs_.size(); ++a) {
    arc_heads_[a] = arcs_[a].to;
    arc_edges_[a] = arcs_[a].edge;
  }
}

}  // namespace cdst
