#include "graph/dijkstra.h"

#include <algorithm>

#include "util/binary_heap.h"
#include "util/fibonacci_heap.h"

namespace cdst {
namespace {

template <typename Heap>
void run_search(const Graph& g,
                const std::vector<std::pair<VertexId, double>>& seeds,
                const EdgeLengthFn& length, VertexId target,
                DijkstraResult& r) {
  Heap heap;
  for (const auto& [v, d] : seeds) {
    CDST_CHECK(v < g.num_vertices());
    if (d < r.dist[v]) {
      r.dist[v] = d;
      heap.push_or_decrease(v, d);
    }
  }
  while (!heap.empty()) {
    const VertexId u = heap.pop_min();
    if (u == target) break;
    const double du = r.dist[u];
    for (const Graph::Arc& a : g.arcs(u)) {
      const double w = length(a.edge);
      CDST_ASSERT(w >= 0.0);
      const double nd = du + w;
      if (nd < r.dist[a.to]) {
        r.dist[a.to] = nd;
        r.parent_edge[a.to] = a.edge;
        r.parent[a.to] = u;
        heap.push_or_decrease(a.to, nd);
      }
    }
  }
}

}  // namespace

std::vector<EdgeId> DijkstraResult::path_edges(VertexId v) const {
  std::vector<EdgeId> out;
  while (parent_edge[v] != kInvalidEdge) {
    out.push_back(parent_edge[v]);
    v = parent[v];
  }
  std::reverse(out.begin(), out.end());
  return out;
}

DijkstraResult dijkstra(const Graph& g, const std::vector<VertexId>& sources,
                        const EdgeLengthFn& length, VertexId target,
                        DijkstraHeap heap) {
  std::vector<std::pair<VertexId, double>> seeds;
  seeds.reserve(sources.size());
  for (VertexId s : sources) seeds.emplace_back(s, 0.0);
  return dijkstra_with_initial_labels(g, seeds, length, target, heap);
}

DijkstraResult dijkstra_from_potentials(const Graph& g,
                                        const std::vector<double>& init,
                                        const EdgeLengthFn& length) {
  CDST_CHECK(init.size() == g.num_vertices());
  std::vector<std::pair<VertexId, double>> seeds;
  for (VertexId v = 0; v < init.size(); ++v) {
    if (init[v] < DijkstraResult::kInf) seeds.emplace_back(v, init[v]);
  }
  return dijkstra_with_initial_labels(g, seeds, length);
}

DijkstraResult dijkstra_with_initial_labels(
    const Graph& g, const std::vector<std::pair<VertexId, double>>& seeds,
    const EdgeLengthFn& length, VertexId target, DijkstraHeap heap) {
  const std::size_t n = g.num_vertices();
  DijkstraResult r;
  r.dist.assign(n, DijkstraResult::kInf);
  r.parent_edge.assign(n, kInvalidEdge);
  r.parent.assign(n, kInvalidVertex);

  if (heap == DijkstraHeap::kFibonacci) {
    run_search<FibonacciHeap<double>>(g, seeds, length, target, r);
  } else {
    run_search<BinaryHeap<double>>(g, seeds, length, target, r);
  }
  return r;
}

}  // namespace cdst
