#include "graph/arc_cost_view.h"

#include <cstdint>

#include "util/assert.h"
#include "util/fault_injection.h"

namespace cdst {

void ArcCostView::build_arcs(const Graph& g,
                             std::span<const double> edge_cost,
                             std::span<const double> edge_delay,
                             std::span<const std::uint8_t> edge_layer) {
  // Shared allocation core of assign()/assign_borrowed(): the SoA arc
  // planes are (re)built here, which is where a real allocation failure
  // would surface during window/instance materialization.
  CDST_FAULT_POINT("arcplane.assign");
  CDST_CHECK(edge_cost.size() == g.num_edges());
  CDST_CHECK(edge_delay.size() == g.num_edges());
  CDST_CHECK(edge_layer.empty() || edge_layer.size() == g.num_edges());
  graph_ = &g;

  const std::span<const EdgeId> arc_edges = g.arc_edges();
  const std::size_t na = arc_edges.size();
  num_arcs_ = na;
  // kRelaxStrip zero doubles of tail padding: a full-width Vec4d load at the
  // last partial strip stays inside the allocation. resize() retains
  // capacity across rebuilds, so the pad is re-zeroed explicitly (a shrink
  // would otherwise leave stale attribute values there).
  arc_cost_.resize(na + kRelaxStrip);
  arc_delay_.resize(na + kRelaxStrip);
  CDST_ASSERT(reinterpret_cast<std::uintptr_t>(arc_cost_.data()) %
                  kVecAlign ==
              0);
  CDST_ASSERT(reinterpret_cast<std::uintptr_t>(arc_delay_.data()) %
                  kVecAlign ==
              0);
  for (std::size_t a = 0; a < na; ++a) {
    const EdgeId e = arc_edges[a];
    arc_cost_[a] = edge_cost[e];
    arc_delay_[a] = edge_delay[e];
  }
  for (std::size_t a = na; a < na + kRelaxStrip; ++a) {
    arc_cost_[a] = 0.0;
    arc_delay_[a] = 0.0;
  }
  if (edge_layer.empty()) {
    arc_layer_.clear();
  } else {
    arc_layer_.resize(na);
    for (std::size_t a = 0; a < na; ++a) {
      arc_layer_[a] = edge_layer[arc_edges[a]];
    }
  }
}

void ArcCostView::assign(const Graph& g, std::span<const double> edge_cost,
                         std::span<const double> edge_delay,
                         std::span<const std::uint8_t> edge_layer) {
  build_arcs(g, edge_cost, edge_delay, edge_layer);
  edge_cost_store_.assign(edge_cost.begin(), edge_cost.end());
  edge_delay_store_.assign(edge_delay.begin(), edge_delay.end());
  edge_cost_view_ = edge_cost_store_;
  edge_delay_view_ = edge_delay_store_;
}

void ArcCostView::assign_borrowed(const Graph& g,
                                  std::span<const double> edge_cost,
                                  std::span<const double> edge_delay,
                                  std::span<const std::uint8_t> edge_layer) {
  build_arcs(g, edge_cost, edge_delay, edge_layer);
  edge_cost_store_.clear();
  edge_delay_store_.clear();
  edge_cost_view_ = edge_cost;
  edge_delay_view_ = edge_delay;
}

}  // namespace cdst
