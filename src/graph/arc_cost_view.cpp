#include "graph/arc_cost_view.h"

#include "util/assert.h"
#include "util/fault_injection.h"

namespace cdst {

void ArcCostView::build_arcs(const Graph& g,
                             std::span<const double> edge_cost,
                             std::span<const double> edge_delay,
                             std::span<const std::uint8_t> edge_layer) {
  // Shared allocation core of assign()/assign_borrowed(): the SoA arc
  // planes are (re)built here, which is where a real allocation failure
  // would surface during window/instance materialization.
  CDST_FAULT_POINT("arcplane.assign");
  CDST_CHECK(edge_cost.size() == g.num_edges());
  CDST_CHECK(edge_delay.size() == g.num_edges());
  CDST_CHECK(edge_layer.empty() || edge_layer.size() == g.num_edges());
  graph_ = &g;

  const std::span<const EdgeId> arc_edges = g.arc_edges();
  const std::size_t na = arc_edges.size();
  arc_cost_.resize(na);
  arc_delay_.resize(na);
  for (std::size_t a = 0; a < na; ++a) {
    const EdgeId e = arc_edges[a];
    arc_cost_[a] = edge_cost[e];
    arc_delay_[a] = edge_delay[e];
  }
  if (edge_layer.empty()) {
    arc_layer_.clear();
  } else {
    arc_layer_.resize(na);
    for (std::size_t a = 0; a < na; ++a) {
      arc_layer_[a] = edge_layer[arc_edges[a]];
    }
  }
}

void ArcCostView::assign(const Graph& g, std::span<const double> edge_cost,
                         std::span<const double> edge_delay,
                         std::span<const std::uint8_t> edge_layer) {
  build_arcs(g, edge_cost, edge_delay, edge_layer);
  edge_cost_store_.assign(edge_cost.begin(), edge_cost.end());
  edge_delay_store_.assign(edge_delay.begin(), edge_delay.end());
  edge_cost_view_ = edge_cost_store_;
  edge_delay_view_ = edge_delay_store_;
}

void ArcCostView::assign_borrowed(const Graph& g,
                                  std::span<const double> edge_cost,
                                  std::span<const double> edge_delay,
                                  std::span<const std::uint8_t> edge_layer) {
  build_arcs(g, edge_cost, edge_delay, edge_layer);
  edge_cost_store_.clear();
  edge_delay_store_.clear();
  edge_cost_view_ = edge_cost;
  edge_delay_view_ = edge_delay;
}

}  // namespace cdst
