#include "graph/landmarks.h"

#include <algorithm>

#include "util/assert.h"

namespace cdst {

Landmarks::Landmarks(const Graph& g, const EdgeLengthFn& length,
                     std::size_t k) {
  const std::size_t n = g.num_vertices();
  CDST_CHECK(n > 0);
  k = std::min(k, n);

  // Avoid-farthest greedy: first landmark is vertex 0; each next landmark is
  // the vertex farthest from the already-chosen set.
  std::vector<double> min_dist(n, DijkstraResult::kInf);
  VertexId next = 0;
  for (std::size_t i = 0; i < k; ++i) {
    picks_.push_back(next);
    DijkstraResult r = dijkstra(g, {next}, length);
    // Unreachable vertices keep +inf in the table; lower_bound() then yields
    // +inf - +inf = nan, so clamp them to a large finite sentinel instead.
    for (double& d : r.dist) {
      if (d == DijkstraResult::kInf) d = 0.0;  // conservative: bound degrades
    }
    tables_.push_back(std::move(r.dist));
    double far = -1.0;
    for (VertexId v = 0; v < n; ++v) {
      min_dist[v] = std::min(min_dist[v], tables_.back()[v]);
      if (min_dist[v] > far && min_dist[v] < DijkstraResult::kInf) {
        far = min_dist[v];
        next = v;
      }
    }
  }
}

}  // namespace cdst
