/// \file dijkstra.h
/// Header-only single/multi-source Dijkstra over a Graph, templated over the
/// priority-queue type and the edge-length functor. Used for landmark
/// preprocessing, the topology-embedding DP, and as a reference
/// implementation in tests (the cost-distance solver has its own specialized
/// multi-metric search).
///
/// The search kernel is a function template so that callers can pass concrete
/// functor types (ArrayLength, CostDelayLength, a lambda, ...) and the length
/// evaluation inlines into the relax loop. `EdgeLengthFn` (a std::function)
/// remains available as a type-erased compatibility spelling — every entry
/// point accepts it like any other functor — but hot paths should prefer a
/// concrete functor: the virtual-call-like indirection of std::function in
/// the inner loop is measurable (see bench_heaps's DijkstraLengthIndirection
/// row).
///
/// Functors constructed from an ArcCostView additionally carry the per-arc
/// structure-of-arrays plane (graph/arc_cost_view.h). The kernel detects the
/// plane and switches the relax loop to a blocked, branch-light scan: arc
/// lengths are evaluated in kRelaxStrip-arc strips as two explicit Vec4d
/// operations (util/simd.h), the head vertices' current distances are
/// gathered to pre-filter non-improving lanes, and the head distance slots
/// are explicitly prefetched before the update pass. The pre-filter is
/// conservative in exactly the right direction — dist only decreases while a
/// strip commits, so a lane filtered against the strip-entry distances can
/// never have improved later — and every surviving lane re-checks against
/// the live distance (parallel arcs to one head), so results are
/// bit-identical to the per-edge path.

#pragma once

#include <algorithm>
#include <bit>
#include <functional>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "graph/arc_cost_view.h"
#include "graph/graph.h"
#include "util/binary_heap.h"
#include "util/d_ary_heap.h"
#include "util/fibonacci_heap.h"
#include "util/prefetch.h"
#include "util/simd.h"

namespace cdst {

struct DijkstraResult {
  std::vector<double> dist;          ///< distance per vertex (inf if unreached)
  std::vector<EdgeId> parent_edge;   ///< edge towards the source tree
  std::vector<VertexId> parent;      ///< predecessor vertex

  static constexpr double kInf = std::numeric_limits<double>::infinity();

  bool reached(VertexId v) const { return dist[v] < kInf; }

  /// Path from a source to v as a list of edge ids (source-to-v order).
  std::vector<EdgeId> path_edges(VertexId v) const {
    std::vector<EdgeId> out;
    while (parent_edge[v] != kInvalidEdge) {
      out.push_back(parent_edge[v]);
      v = parent[v];
    }
    std::reverse(out.begin(), out.end());
    return out;
  }
};

/// Type-erased edge length callback: double(EdgeId). Compatibility spelling;
/// prefer a concrete functor type on hot paths.
using EdgeLengthFn = std::function<double(EdgeId)>;

/// Edge lengths read from a dense per-edge array (the common case: windows,
/// grids and landmark preprocessing all keep parallel per-edge vectors).
/// Construct from an ArcCostView to let the kernel scan the view's per-arc
/// cost strip instead of gathering len[a.edge] per arc.
struct ArrayLength {
  std::span<const double> len;      ///< per-edge lengths
  std::span<const double> arc_len;  ///< per-arc SoA strip (empty: no plane)

  ArrayLength() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): implicit span adapter — the
  // kernel call sites pass bare length vectors and read better without a cast.
  ArrayLength(std::span<const double> l) : len(l) {}
  explicit ArrayLength(const ArcCostView& v)
      : len(v.edge_cost()), arc_len(v.arc_cost()) {}

  double operator()(EdgeId e) const { return len[e]; }
  bool has_arc_plane() const { return !arc_len.empty(); }
  double arc_value(std::uint32_t a) const { return arc_len[a]; }
  /// Lengths of arcs a..a+3 (requires a full in-range lane window).
  Vec4d arc_value4(std::uint32_t a) const {
    return Vec4d::load(arc_len.data() + a);
  }
};

/// All edges the same length (unit metrics in tests and hop counts).
struct UniformLength {
  double value{1.0};
  double operator()(EdgeId) const { return value; }
};

/// The weighted routing metric c(e) + w * d(e) used by the embedding DP and
/// the cost-distance searches (paper Section II). Construct from an
/// ArcCostView to scan the SoA plane (two contiguous strips + one fma per
/// arc) instead of two per-edge gathers.
struct CostDelayLength {
  std::span<const double> cost;
  std::span<const double> delay;
  double weight{0.0};
  std::span<const double> arc_cost;   ///< per-arc SoA strips (empty: none)
  std::span<const double> arc_delay;

  CostDelayLength() = default;
  CostDelayLength(std::span<const double> c, std::span<const double> d,
                  double w)
      : cost(c), delay(d), weight(w) {}
  CostDelayLength(const ArcCostView& v, double w)
      : cost(v.edge_cost()),
        delay(v.edge_delay()),
        weight(w),
        arc_cost(v.arc_cost()),
        arc_delay(v.arc_delay()) {}

  double operator()(EdgeId e) const { return cost[e] + weight * delay[e]; }
  bool has_arc_plane() const { return !arc_cost.empty(); }
  double arc_value(std::uint32_t a) const {
    return arc_cost[a] + weight * arc_delay[a];
  }
  /// Metric of arcs a..a+3; same cost + weight*delay expression shape as
  /// arc_value(), so fp contraction fuses (or not) identically.
  Vec4d arc_value4(std::uint32_t a) const {
    return Vec4d::load(arc_cost.data() + a) +
           Vec4d::broadcast(weight) * Vec4d::load(arc_delay.data() + a);
  }
};

/// Length functors that (optionally) carry a per-arc SoA strip the kernel
/// can scan with the blocked relax loop.
template <typename T>
concept ArcPlaneLength = requires(const T& t, std::uint32_t a) {
  { t.has_arc_plane() } -> std::convertible_to<bool>;
  { t.arc_value(a) } -> std::convertible_to<double>;
  { t.arc_value4(a) } -> std::same_as<Vec4d>;
};

/// Priority queue backing the search. Theorem 1's O(t (n log n + m)) bound
/// uses Fibonacci heaps; on sparse routing graphs binary heaps are faster in
/// practice (Section III-B), and the cache-friendly 4-ary heap shaves a bit
/// more off sift-down traffic (see bench_heaps).
enum class DijkstraHeap : std::uint8_t { kBinary, kFibonacci, kDAry };

/// Core search kernel: label-setting from per-source seed distances, with
/// both the heap and the length functor resolved at compile time. Functors
/// carrying an arc plane (ArcPlaneLength) are relaxed with the blocked SoA
/// scan; everything else takes the classic per-edge loop. Both paths produce
/// bit-identical results.
template <typename Heap, typename LengthFn>
void dijkstra_search(const Graph& g,
                     const std::vector<std::pair<VertexId, double>>& seeds,
                     const LengthFn& length, VertexId target,
                     DijkstraResult& r) {
  Heap heap;
  if constexpr (requires(Heap& h, std::size_t n) { h.reserve(n); }) {
    heap.reserve(g.num_vertices());
  }
  for (const auto& [v, d] : seeds) {
    CDST_CHECK(v < g.num_vertices());
    if (d < r.dist[v]) {
      r.dist[v] = d;
      heap.push_or_decrease(v, d);
    }
  }

  bool arc_plane = false;
  if constexpr (ArcPlaneLength<LengthFn>) {
    arc_plane = length.has_arc_plane();
  }

  while (!heap.empty()) {
    const VertexId u = heap.pop_min();
    if (u == target) break;
    const double du = r.dist[u];

    if constexpr (ArcPlaneLength<LengthFn>) {
      if (arc_plane) {
        const std::uint32_t lo = g.arc_begin(u);
        const std::uint32_t hi = g.arc_end(u);
        const VertexId* heads = g.arc_heads().data();
        const EdgeId* edges = g.arc_edges().data();
        // The head vertices' distance slots are the only data-dependent
        // loads of the strip; issue their prefetches before the length pass
        // so they overlap the (purely sequential) strip arithmetic.
        for (std::uint32_t a = lo; a < hi; ++a) {
          prefetch_write(&r.dist[heads[a]]);
        }
        const Vec4d du4 = Vec4d::broadcast(du);
        alignas(kVecAlign) double nd[kRelaxStrip];
        for (std::uint32_t s = lo; s < hi; s += kRelaxStrip) {
          const std::uint32_t cnt = std::min(kRelaxStrip, hi - s);
          if (cnt == kRelaxStrip) {
            // Full strip: two Vec4d metric evaluations, then a gathered
            // compare against the heads' current distances pre-filters the
            // non-improving lanes. dist only decreases while the strip
            // commits, so the pre-filter can only skip lanes the scalar
            // loop would also have skipped; surviving lanes still re-check
            // below (an earlier lane may have lowered the same head via a
            // parallel arc).
            const Vec4d nd0 = du4 + length.arc_value4(s);
            const Vec4d nd1 = du4 + length.arc_value4(s + Vec4d::kLanes);
            nd0.store(nd);
            nd1.store(nd + Vec4d::kLanes);
            unsigned improve = static_cast<unsigned>(
                Vec4d::lt_mask(nd0, Vec4d::gather(r.dist.data(), heads + s)) |
                Vec4d::lt_mask(nd1, Vec4d::gather(r.dist.data(),
                                                  heads + s + Vec4d::kLanes))
                    << Vec4d::kLanes);
            while (improve != 0) {
              const int k = std::countr_zero(improve);
              improve &= improve - 1;
              const VertexId to = heads[s + k];
              CDST_ASSERT(nd[k] >= du);
              if (nd[k] < r.dist[to]) {
                r.dist[to] = nd[k];
                r.parent_edge[to] = edges[s + k];
                r.parent[to] = u;
                heap.push_or_decrease(to, nd[k]);
              }
            }
            continue;
          }
          // Partial tail strip: the scalar evaluation, unchanged.
          for (std::uint32_t k = 0; k < cnt; ++k) {
            nd[k] = du + length.arc_value(s + k);
          }
          for (std::uint32_t k = 0; k < cnt; ++k) {
            const VertexId to = heads[s + k];
            CDST_ASSERT(nd[k] >= du);
            if (nd[k] < r.dist[to]) {
              r.dist[to] = nd[k];
              r.parent_edge[to] = edges[s + k];
              r.parent[to] = u;
              heap.push_or_decrease(to, nd[k]);
            }
          }
        }
        continue;
      }
    }

    for (const Graph::Arc& a : g.arcs(u)) {
      const double w = length(a.edge);
      CDST_ASSERT(w >= 0.0);
      const double nd = du + w;
      if (nd < r.dist[a.to]) {
        r.dist[a.to] = nd;
        r.parent_edge[a.to] = a.edge;
        r.parent[a.to] = u;
        heap.push_or_decrease(a.to, nd);
      }
    }
  }
}

/// Dijkstra with per-source initial distances ("potential" form used by the
/// topology embedding DP: labels seed from a previous DP table).
template <typename LengthFn>
DijkstraResult dijkstra_with_initial_labels(
    const Graph& g, const std::vector<std::pair<VertexId, double>>& seeds,
    const LengthFn& length, VertexId target = kInvalidVertex,
    DijkstraHeap heap = DijkstraHeap::kBinary) {
  const std::size_t n = g.num_vertices();
  DijkstraResult r;
  r.dist.assign(n, DijkstraResult::kInf);
  r.parent_edge.assign(n, kInvalidEdge);
  r.parent.assign(n, kInvalidVertex);

  if (heap == DijkstraHeap::kFibonacci) {
    dijkstra_search<FibonacciHeap<double>>(g, seeds, length, target, r);
  } else if (heap == DijkstraHeap::kDAry) {
    dijkstra_search<DAryHeap<double, 4>>(g, seeds, length, target, r);
  } else {
    dijkstra_search<BinaryHeap<double>>(g, seeds, length, target, r);
  }
  return r;
}

/// Runs Dijkstra from the given sources (distance 0 each).
/// \param target if valid, the search stops once target is settled.
template <typename LengthFn>
DijkstraResult dijkstra(const Graph& g, const std::vector<VertexId>& sources,
                        const LengthFn& length,
                        VertexId target = kInvalidVertex,
                        DijkstraHeap heap = DijkstraHeap::kBinary) {
  std::vector<std::pair<VertexId, double>> seeds;
  seeds.reserve(sources.size());
  for (VertexId s : sources) seeds.emplace_back(s, 0.0);
  return dijkstra_with_initial_labels(g, seeds, length, target, heap);
}

/// Potential-seeded Dijkstra over a full initial vector: computes
/// M(v) = min_u ( init[u] + dist(u, v) ) for all v. Entries with +inf are
/// not seeded. The workhorse of the optimal topology embedding.
template <typename LengthFn>
DijkstraResult dijkstra_from_potentials(const Graph& g,
                                        const std::vector<double>& init,
                                        const LengthFn& length) {
  CDST_CHECK(init.size() == g.num_vertices());
  std::vector<std::pair<VertexId, double>> seeds;
  for (VertexId v = 0; v < init.size(); ++v) {
    if (init[v] < DijkstraResult::kInf) seeds.emplace_back(v, init[v]);
  }
  return dijkstra_with_initial_labels(g, seeds, length);
}

}  // namespace cdst
