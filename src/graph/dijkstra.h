/// \file dijkstra.h
/// Standard single/multi-source Dijkstra over a Graph with caller-provided
/// edge lengths. Used for landmark preprocessing, the topology-embedding DP,
/// and as a reference implementation in tests (the cost-distance solver has
/// its own specialized multi-metric search).

#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace cdst {

struct DijkstraResult {
  std::vector<double> dist;          ///< distance per vertex (inf if unreached)
  std::vector<EdgeId> parent_edge;   ///< edge towards the source tree
  std::vector<VertexId> parent;      ///< predecessor vertex

  static constexpr double kInf = std::numeric_limits<double>::infinity();

  bool reached(VertexId v) const { return dist[v] < kInf; }

  /// Path from a source to v as a list of edge ids (source-to-v order).
  std::vector<EdgeId> path_edges(VertexId v) const;
};

/// Edge length callback: double(EdgeId).
using EdgeLengthFn = std::function<double(EdgeId)>;

/// Priority queue backing the search. Theorem 1's O(t (n log n + m)) bound
/// uses Fibonacci heaps; on sparse routing graphs binary heaps are faster in
/// practice (Section III-B), hence the default.
enum class DijkstraHeap : std::uint8_t { kBinary, kFibonacci };

/// Runs Dijkstra from the given sources (distance 0 each).
/// \param target if valid, the search stops once target is settled.
DijkstraResult dijkstra(const Graph& g, const std::vector<VertexId>& sources,
                        const EdgeLengthFn& length,
                        VertexId target = kInvalidVertex,
                        DijkstraHeap heap = DijkstraHeap::kBinary);

/// Dijkstra with per-source initial distances ("potential" form used by the
/// topology embedding DP: labels seed from a previous DP table).
DijkstraResult dijkstra_with_initial_labels(
    const Graph& g, const std::vector<std::pair<VertexId, double>>& seeds,
    const EdgeLengthFn& length, VertexId target = kInvalidVertex,
    DijkstraHeap heap = DijkstraHeap::kBinary);

/// Potential-seeded Dijkstra over a full initial vector: computes
/// M(v) = min_u ( init[u] + dist(u, v) ) for all v. Entries with +inf are
/// not seeded. The workhorse of the optimal topology embedding.
DijkstraResult dijkstra_from_potentials(const Graph& g,
                                        const std::vector<double>& init,
                                        const EdgeLengthFn& length);

}  // namespace cdst
