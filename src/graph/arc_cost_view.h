/// \file arc_cost_view.h
/// Structure-of-arrays edge-attribute plane keyed by arc index.
///
/// Search clients historically reached edge attributes through per-edge
/// functor indirection (cost[a.edge], delay[a.edge]): two dependent gathers
/// per relaxed arc that the compiler can neither vectorize nor prefetch. An
/// ArcCostView expands the per-edge attributes once into per-*arc* arrays
/// aligned with Graph's SoA arc plane (graph/graph.h): the arcs of vertex v
/// occupy the contiguous index range [arc_begin(v), arc_end(v)) in every
/// array, so a relax loop reads cost/delay/layer as sequential strips — the
/// shape the blocked, branch-light kernels in graph/dijkstra.h and
/// core/cost_distance.cpp scan.
///
/// The owned per-arc strips are allocated 32-byte aligned (util/simd.h's
/// AlignedAllocator) and padded with kRelaxStrip zero doubles beyond their
/// logical size, so the Vec4d kernels may issue full-width vector loads at
/// any in-range strip offset — including the last partial strip — without
/// ever reading past the allocation. The accessor spans still cover exactly
/// num_arcs() elements; the padding is invisible to callers.
///
/// The view is immutable between assign() calls and always owns the
/// derived per-arc arrays. The per-edge inputs are copied by assign() (the
/// safe default for callers whose source arrays may die first) or borrowed
/// by assign_borrowed() — the right mode for producers whose source
/// vectors share the view's lifetime (RoutingGrid's base plane,
/// RoutingWindow's priced plane: a heap-allocated vector's buffer survives
/// moves of the owner, so the borrowed spans stay valid). Producers:
/// RoutingGrid finalizes a base-cost plane with its graph; RoutingWindow
/// builds one per window over current congestion prices; the sharded
/// router rebuilds a window plane per round from the frozen price
/// snapshot. assign() retains capacity, so per-round rebuilds stop
/// churning the allocator.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/simd.h"

namespace cdst {

class ArcCostView {
 public:
  ArcCostView() = default;
  ArcCostView(const Graph& g, std::span<const double> edge_cost,
              std::span<const double> edge_delay,
              std::span<const std::uint8_t> edge_layer = {}) {
    assign(g, edge_cost, edge_delay, edge_layer);
  }

  /// (Re)builds the plane over g from per-edge attributes. `edge_layer` is
  /// optional (grids key arcs by layer; generic graphs have none). The graph
  /// is borrowed and must outlive the view; the attribute arrays are copied.
  void assign(const Graph& g, std::span<const double> edge_cost,
              std::span<const double> edge_delay,
              std::span<const std::uint8_t> edge_layer = {});

  /// Like assign(), but the per-edge cost/delay arrays are borrowed, not
  /// copied — for producers whose source vectors live exactly as long as
  /// the view (per-arc strips are still owned/derived).
  void assign_borrowed(const Graph& g, std::span<const double> edge_cost,
                       std::span<const double> edge_delay,
                       std::span<const std::uint8_t> edge_layer = {});

  bool empty() const { return graph_ == nullptr; }
  const Graph* graph() const { return graph_; }

  // Per-arc attribute strips, index-aligned with Graph::arc_heads(). The
  // backing buffers extend kRelaxStrip zero-padded doubles past the span end
  // (full-width vector loads on the final strip stay in-bounds).
  std::span<const double> arc_cost() const {
    return {arc_cost_.data(), num_arcs_};
  }
  std::span<const double> arc_delay() const {
    return {arc_delay_.data(), num_arcs_};
  }
  std::span<const std::uint8_t> arc_layer() const { return arc_layer_; }
  const double* arc_cost_data() const { return arc_cost_.data(); }
  const double* arc_delay_data() const { return arc_delay_.data(); }

  // The per-edge inputs (what legacy EdgeId-keyed code evaluates;
  // bit-identical to what the per-arc strips were derived from). Owned
  // copies after assign(), borrowed views after assign_borrowed().
  std::span<const double> edge_cost() const { return edge_cost_view_; }
  std::span<const double> edge_delay() const { return edge_delay_view_; }

 private:
  void build_arcs(const Graph& g, std::span<const double> edge_cost,
                  std::span<const double> edge_delay,
                  std::span<const std::uint8_t> edge_layer);

  const Graph* graph_{nullptr};
  std::size_t num_arcs_{0};  ///< logical strip length (pad lives beyond it)
  AlignedVector<double> arc_cost_;
  AlignedVector<double> arc_delay_;
  std::vector<std::uint8_t> arc_layer_;
  std::vector<double> edge_cost_store_;  ///< empty in borrowed mode
  std::vector<double> edge_delay_store_;
  std::span<const double> edge_cost_view_;
  std::span<const double> edge_delay_view_;
};

}  // namespace cdst
