#include "io/instance_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/assert.h"

namespace cdst {

void write_instance(std::ostream& os, const CostDistanceInstance& inst) {
  inst.validate();
  const Graph& g = *inst.graph;
  os << "cdst-instance 1\n";
  os << "graph " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  os.precision(17);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    os << g.tail(e) << ' ' << g.head(e) << ' ' << (*inst.cost)[e] << ' '
       << (*inst.delay)[e] << '\n';
  }
  os << "root " << inst.root << '\n';
  os << "penalty " << inst.dbif << ' ' << inst.eta << '\n';
  os << "sinks " << inst.sinks.size() << '\n';
  for (const Terminal& t : inst.sinks) {
    os << t.vertex << ' ' << t.weight << '\n';
  }
}

void write_instance_file(const std::string& path,
                         const CostDistanceInstance& inst) {
  std::ofstream f(path);
  CDST_CHECK_MSG(f.good(), "cannot open " + path + " for writing");
  write_instance(f, inst);
}

OwnedInstance read_instance(std::istream& is) {
  std::string tag;
  int version = 0;
  is >> tag >> version;
  CDST_CHECK_MSG(tag == "cdst-instance" && version == 1,
                 "not a cdst instance file");
  std::size_t n = 0, m = 0;
  is >> tag >> n >> m;
  CDST_CHECK_MSG(tag == "graph", "malformed instance: expected 'graph'");

  OwnedInstance out;
  GraphBuilder builder(n);
  out.cost.reserve(m);
  out.delay.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    VertexId a = 0, b = 0;
    double c = 0.0, d = 0.0;
    is >> a >> b >> c >> d;
    CDST_CHECK_MSG(is.good(), "malformed instance: truncated edge list");
    builder.add_edge(a, b);
    out.cost.push_back(c);
    out.delay.push_back(d);
  }
  out.graph = std::make_unique<Graph>(builder);

  VertexId root = 0;
  is >> tag >> root;
  CDST_CHECK_MSG(tag == "root", "malformed instance: expected 'root'");
  double dbif = 0.0, eta = 0.5;
  is >> tag >> dbif >> eta;
  CDST_CHECK_MSG(tag == "penalty", "malformed instance: expected 'penalty'");
  std::size_t k = 0;
  is >> tag >> k;
  CDST_CHECK_MSG(tag == "sinks", "malformed instance: expected 'sinks'");

  out.instance.graph = out.graph.get();
  out.instance.cost = &out.cost;
  out.instance.delay = &out.delay;
  out.instance.root = root;
  out.instance.dbif = dbif;
  out.instance.eta = eta;
  for (std::size_t i = 0; i < k; ++i) {
    Terminal t;
    is >> t.vertex >> t.weight;
    CDST_CHECK_MSG(!is.fail(), "malformed instance: truncated sink list");
    out.instance.sinks.push_back(t);
  }
  out.instance.validate();
  return out;
}

OwnedInstance read_instance_file(const std::string& path) {
  std::ifstream f(path);
  CDST_CHECK_MSG(f.good(), "cannot open " + path);
  return read_instance(f);
}

}  // namespace cdst
