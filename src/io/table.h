/// \file table.h
/// Plain-text table printer for the experiment harnesses (paper-style rows).

#pragma once

#include <string>
#include <vector>

namespace cdst {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Adds a horizontal separator line.
  void add_separator();

  /// Renders with right-aligned numeric-looking cells.
  std::string to_string() const;

 private:
  std::size_t width_;
  std::vector<std::vector<std::string>> rows_;  // empty row = separator
};

/// Formats a double with the given number of decimals.
std::string fmt_double(double v, int decimals);

/// Formats with thousands separators (paper style: "941 271").
std::string fmt_count(long long v);

}  // namespace cdst
