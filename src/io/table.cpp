#include "io/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/assert.h"

namespace cdst {

TextTable::TextTable(std::vector<std::string> header)
    : width_(header.size()) {
  rows_.push_back(std::move(header));
  add_separator();
}

void TextTable::add_row(std::vector<std::string> cells) {
  CDST_CHECK(cells.size() == width_);
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { rows_.emplace_back(); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> col(width_, 0);
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      col[i] = std::max(col[i], row[i].size());
    }
  }
  std::ostringstream os;
  for (const auto& row : rows_) {
    if (row.empty()) {
      std::size_t total = 0;
      for (const std::size_t c : col) total += c + 2;
      os << std::string(total, '-') << '\n';
      continue;
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      const std::size_t pad = col[i] - row[i].size();
      // Right-align everything except the first column.
      if (i == 0) {
        os << row[i] << std::string(pad, ' ') << "  ";
      } else {
        os << std::string(pad, ' ') << row[i] << "  ";
      }
    }
    os << '\n';
  }
  return os.str();
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_count(long long v) {
  const bool neg = v < 0;
  unsigned long long x = neg ? static_cast<unsigned long long>(-v)
                             : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(x);
  std::string out;
  int c = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (c > 0 && c % 3 == 0) out.push_back(' ');
    out.push_back(*it);
    ++c;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace cdst
