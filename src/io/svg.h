/// \file svg.h
/// Minimal SVG emitter for visualizing plane topologies and embedded Steiner
/// trees (Figure 3-style algorithm walkthroughs).

#pragma once

#include <string>
#include <vector>

#include "core/steiner_tree.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "grid/routing_grid.h"
#include "topology/topology.h"

namespace cdst {

class SvgCanvas {
 public:
  /// Drawing area in plane (gcell) coordinates, scaled by `pixels_per_unit`.
  SvgCanvas(Rect extent, double pixels_per_unit = 10.0);

  void add_line(Point2 a, Point2 b, const std::string& color,
                double width = 1.0, double opacity = 1.0);
  void add_circle(Point2 center, double radius, const std::string& color,
                  double opacity = 1.0);
  void add_square(Point2 center, double half_side, const std::string& color);
  void add_text(Point2 at, const std::string& text, double size = 10.0);

  std::string to_string() const;
  void write_file(const std::string& path) const;

 private:
  double sx(double x) const;
  double sy(double y) const;

  Rect extent_;
  double scale_;
  std::vector<std::string> elements_;
};

/// Draws a plane topology (edges as L-shapes, terminals as dots).
void draw_topology(SvgCanvas& canvas, const PlaneTopology& topo,
                   const std::string& color);

/// Draws an embedded tree projected to the plane; layer encoded by opacity.
void draw_tree(SvgCanvas& canvas, const SteinerTree& tree,
               const RoutingGrid& grid, const std::string& color);

}  // namespace cdst
