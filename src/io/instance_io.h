/// \file instance_io.h
/// Text (de)serialization of generic cost-distance instances: graph, both
/// metrics, terminals and penalty parameters. Lets users snapshot instances
/// sampled from router runs and rerun oracles on them offline.

#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "core/instance.h"

namespace cdst {

/// Owning instance bundle (the generic CostDistanceInstance only points at
/// its graph and metric vectors).
struct OwnedInstance {
  std::unique_ptr<Graph> graph;
  std::vector<double> cost;
  std::vector<double> delay;
  CostDistanceInstance instance;  ///< wired to the members above
};

/// Writes the instance in a simple line-oriented text format.
void write_instance(std::ostream& os, const CostDistanceInstance& inst);
void write_instance_file(const std::string& path,
                         const CostDistanceInstance& inst);

/// Reads an instance written by write_instance. Throws on malformed input.
OwnedInstance read_instance(std::istream& is);
OwnedInstance read_instance_file(const std::string& path);

}  // namespace cdst
