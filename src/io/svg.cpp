#include "io/svg.h"

#include <fstream>
#include <sstream>

#include "geom/rect.h"
#include "util/assert.h"

namespace cdst {

SvgCanvas::SvgCanvas(Rect extent, double pixels_per_unit)
    : extent_(extent), scale_(pixels_per_unit) {
  CDST_CHECK(!extent.empty());
}

double SvgCanvas::sx(double x) const {
  return (x - extent_.xlo + 1.0) * scale_;
}
double SvgCanvas::sy(double y) const {
  // SVG y grows downward; flip so the plot matches chip coordinates.
  return (extent_.yhi - y + 1.0) * scale_;
}

void SvgCanvas::add_line(Point2 a, Point2 b, const std::string& color,
                         double width, double opacity) {
  std::ostringstream os;
  os << "<line x1=\"" << sx(a.x) << "\" y1=\"" << sy(a.y) << "\" x2=\""
     << sx(b.x) << "\" y2=\"" << sy(b.y) << "\" stroke=\"" << color
     << "\" stroke-width=\"" << width << "\" stroke-opacity=\"" << opacity
     << "\"/>";
  elements_.push_back(os.str());
}

void SvgCanvas::add_circle(Point2 center, double radius,
                           const std::string& color, double opacity) {
  std::ostringstream os;
  os << "<circle cx=\"" << sx(center.x) << "\" cy=\"" << sy(center.y)
     << "\" r=\"" << radius << "\" fill=\"" << color << "\" fill-opacity=\""
     << opacity << "\"/>";
  elements_.push_back(os.str());
}

void SvgCanvas::add_square(Point2 center, double half_side,
                           const std::string& color) {
  std::ostringstream os;
  os << "<rect x=\"" << sx(center.x) - half_side << "\" y=\""
     << sy(center.y) - half_side << "\" width=\"" << 2 * half_side
     << "\" height=\"" << 2 * half_side << "\" fill=\"" << color << "\"/>";
  elements_.push_back(os.str());
}

void SvgCanvas::add_text(Point2 at, const std::string& text, double size) {
  std::ostringstream os;
  os << "<text x=\"" << sx(at.x) << "\" y=\"" << sy(at.y) << "\" font-size=\""
     << size << "\" font-family=\"monospace\">" << text << "</text>";
  elements_.push_back(os.str());
}

std::string SvgCanvas::to_string() const {
  const double w = (extent_.width() + 2.0) * scale_;
  const double h = (extent_.height() + 2.0) * scale_;
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w
     << "\" height=\"" << h << "\">\n"
     << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const std::string& e : elements_) os << e << '\n';
  os << "</svg>\n";
  return os.str();
}

void SvgCanvas::write_file(const std::string& path) const {
  std::ofstream f(path);
  CDST_CHECK_MSG(f.good(), "cannot open SVG output file " + path);
  f << to_string();
}

void draw_topology(SvgCanvas& canvas, const PlaneTopology& topo,
                   const std::string& color) {
  for (std::size_t i = 1; i < topo.nodes.size(); ++i) {
    const Point2 a = topo.nodes[i].pos;
    const Point2 b =
        topo.nodes[static_cast<std::size_t>(topo.nodes[i].parent)].pos;
    // L-shape: horizontal leg then vertical.
    const Point2 corner{b.x, a.y};
    canvas.add_line(a, corner, color, 1.5);
    canvas.add_line(corner, b, color, 1.5);
  }
  for (std::size_t i = 0; i < topo.nodes.size(); ++i) {
    if (i == 0) {
      canvas.add_square(topo.nodes[i].pos, 4.0, "red");
    } else if (topo.nodes[i].sink_index >= 0) {
      canvas.add_circle(topo.nodes[i].pos, 3.0, "black");
    } else {
      canvas.add_circle(topo.nodes[i].pos, 2.0, color, 0.7);
    }
  }
}

void draw_tree(SvgCanvas& canvas, const SteinerTree& tree,
               const RoutingGrid& grid, const std::string& color) {
  const int nz = grid.nz();
  for (const SteinerTree::Node& n : tree.nodes) {
    VertexId at = n.graph_vertex;
    for (const EdgeId e : n.up_path) {
      const VertexId next = grid.graph().other_end(e, at);
      const Point3 pa = grid.position(at);
      const Point3 pb = grid.position(next);
      if (grid.edge_info(e).is_via) {
        canvas.add_circle(pa.xy(), 1.2, color, 0.5);
      } else {
        const double opacity =
            0.35 + 0.65 * (1.0 - static_cast<double>(pa.z) / nz);
        canvas.add_line(pa.xy(), pb.xy(), color, 2.0, opacity);
      }
      at = next;
    }
  }
  for (const SteinerTree::Node& n : tree.nodes) {
    const Point2 p = grid.position(n.graph_vertex).xy();
    if (n.kind == NodeKind::kRoot) {
      canvas.add_square(p, 4.0, "red");
    } else if (n.kind == NodeKind::kSink) {
      canvas.add_circle(p, 3.0, "black");
    }
  }
}

}  // namespace cdst
