#include "serve/serve.h"

#include <algorithm>
#include <deque>
#include <string>
#include <utility>

#include "api/scratch_pool.h"
#include "util/fault_injection.h"

namespace cdst::serve {
namespace {

/// Slice outcomes that pause a session with its pending work retained (the
/// resumable trio); anything else either succeeded or is consumed in-band
/// (solver jobs).
bool pauses_session(StatusCode code) {
  return code == StatusCode::kCancelled ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kUnavailable;
}

}  // namespace

/// Registry entry for one admitted tenant. Heap-held (unique_ptr) so its
/// address — which the aggregation sink and the session's RouterRun point
/// back into — survives registry growth.
struct EngineServer::Session {
  /// Aggregates the tenant's slice events into the cross-thread stats
  /// mirror and forwards everything to the tenant's own sink. Runs on
  /// engine worker threads while a slice executes; touches only the
  /// stat_mu-guarded mirror.
  struct AggSink final : public EventSink {
    Session* session{nullptr};

    void on_solve_merge(const SolveMergeEvent& event) override {
      if (session->forward != nullptr) session->forward->on_solve_merge(event);
    }
    void on_job(const JobEvent& event) override {
      if (session->forward != nullptr) session->forward->on_job(event);
    }
    void on_router_shard(const RouterShardEvent& event) override {
      if (session->forward != nullptr) {
        session->forward->on_router_shard(event);
      }
    }
    void on_router_round(const RouterRoundEvent& event) override {
      if (event.round_complete || event.cancelled) {
        MutexLock lock(session->stat_mu);
        session->ace4 = event.ace4;
        session->max_utilization = event.max_utilization;
        session->overfull_edges = event.overfull_edges;
      }
      if (session->forward != nullptr) session->forward->on_router_round(event);
    }
    void on_fault(const FaultEvent& event) override {
      if (session->forward != nullptr) session->forward->on_fault(event);
    }
  };

  // Immutable after open().
  SessionId id{0};
  SessionKind kind{SessionKind::kRouter};
  std::string name;
  int weight{1};
  std::size_t projected{0};
  EventSink* forward{nullptr};  ///< tenant's own sink (borrowed)

  CancelToken cancel;  ///< thread-safe by itself; latched by cancel()

  // Data plane — controller thread only (see the class threading contract):
  // the live engine session objects and work queues a slice executes on.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  bool paused{false};  ///< last slice ended kCancelled/kDeadlineExceeded/...
  std::optional<Router> router;
  std::optional<RouterRun> run;
  std::optional<CdSolver> solver;
  std::deque<CdSolver::Job> jobs;
  std::deque<StatusOr<SolveResult>> ready;

  // Cross-thread stats mirror: written by the controller after every slice
  // and by the aggregation sink during one; read by stats() from any
  // thread. Lock order: EngineServer::mu_ before stat_mu.
  mutable Mutex stat_mu;
  Status last CDST_GUARDED_BY(stat_mu){Status::Ok()};
  bool runnable CDST_GUARDED_BY(stat_mu){false};
  std::size_t slices CDST_GUARDED_BY(stat_mu){0};
  int rounds_completed CDST_GUARDED_BY(stat_mu){0};
  int rounds_submitted CDST_GUARDED_BY(stat_mu){0};
  std::size_t jobs_completed CDST_GUARDED_BY(stat_mu){0};
  std::size_t jobs_submitted CDST_GUARDED_BY(stat_mu){0};
  std::size_t ready_count CDST_GUARDED_BY(stat_mu){0};
  double ace4 CDST_GUARDED_BY(stat_mu){-1.0};
  double max_utilization CDST_GUARDED_BY(stat_mu){-1.0};
  std::size_t overfull_edges CDST_GUARDED_BY(stat_mu){0};

  AggSink sink;
};

EngineServer::EngineServer(Engine& engine, const ServeOptions& options)
    : engine_(engine),
      options_(options),
      scheduler_(options.policy),
      admission_(AdmissionLimits{
          options.max_sessions,
          options.admission_budget_bytes != 0
              ? options.admission_budget_bytes
              : static_cast<std::size_t>(
                    engine.dense_budget().capacity_bytes())}) {}

EngineServer::~EngineServer() = default;

EngineServer::Session* EngineServer::find_locked(SessionId id) const {
  for (const std::unique_ptr<Session>& s : sessions_) {
    if (s->id == id) return s.get();
  }
  return nullptr;
}

Status EngineServer::admit_locked(std::size_t projected_bytes) {
#if defined(CDST_FAULT_INJECTION)
  try {
    return admission_.admit(projected_bytes);
  } catch (const InjectedFault& e) {
    // The fault site fires before any bookkeeping, so the controller — and
    // the registry the caller never touched — are bit-identical to never
    // having seen the request.
    return Status::Unavailable(e.what());
  }
#else
  return admission_.admit(projected_bytes);
#endif
}

void EngineServer::refresh_runnable_locked(Session& session) {
  const bool pending = session.kind == SessionKind::kRouter
                           ? session.run->rounds_remaining() > 0
                           : !session.jobs.empty();
  const bool runnable = pending && !session.paused;
  scheduler_.set_runnable(session.id, runnable);
  MutexLock lock(session.stat_mu);
  session.runnable = runnable;
}

StatusOr<SessionId> EngineServer::open_router_session(
    const RoutingGrid& grid, const Netlist& netlist,
    const RouterOptions& router_options, const TenantOptions& tenant) {
  MutexLock lock(mu_);
  Status admitted = admit_locked(tenant.projected_dense_bytes);
  if (!admitted.ok()) return admitted;

  auto session = std::make_unique<Session>();
  session->id = next_id_++;
  session->kind = SessionKind::kRouter;
  session->name = tenant.name;
  session->weight = std::max(1, tenant.weight);
  session->projected = tenant.projected_dense_bytes;
  session->forward = tenant.events;
  session->deadline = tenant.deadline;
  session->sink.session = session.get();
  session->router.emplace(engine_.make_router(grid, netlist, router_options));

  RunControl control;
  control.cancel = &session->cancel;
  control.events = &session->sink;
  control.deadline = tenant.deadline;
  session->run.emplace(session->router->run_async(0, control));

  const SessionId id = session->id;
  scheduler_.add(id, session->weight);
  sessions_.push_back(std::move(session));
  return id;
}

StatusOr<SessionId> EngineServer::open_solver_session(
    const SolverOptions& solver_options, const TenantOptions& tenant) {
  MutexLock lock(mu_);
  Status admitted = admit_locked(tenant.projected_dense_bytes);
  if (!admitted.ok()) return admitted;

  auto session = std::make_unique<Session>();
  session->id = next_id_++;
  session->kind = SessionKind::kSolver;
  session->name = tenant.name;
  session->weight = std::max(1, tenant.weight);
  session->projected = tenant.projected_dense_bytes;
  session->forward = tenant.events;
  session->deadline = tenant.deadline;
  session->sink.session = session.get();
  session->solver.emplace(engine_.make_solver(solver_options));

  const SessionId id = session->id;
  scheduler_.add(id, session->weight);
  sessions_.push_back(std::move(session));
  return id;
}

Status EngineServer::submit_rounds(SessionId id, int rounds) {
  if (rounds < 0) {
    return Status::InvalidArgument("serve: rounds must be >= 0");
  }
  MutexLock lock(mu_);
  Session* session = find_locked(id);
  if (session == nullptr) {
    return Status::InvalidArgument("serve: unknown session id");
  }
  if (session->kind != SessionKind::kRouter) {
    return Status::FailedPrecondition("serve: not a router session");
  }
  const Status submitted = session->run->submit(rounds);
  if (!submitted.ok()) return submitted;
  {
    MutexLock stat_lock(session->stat_mu);
    session->rounds_submitted += rounds;
  }
  refresh_runnable_locked(*session);
  return Status::Ok();
}

Status EngineServer::submit_job(SessionId id, const CdSolver::Job& job) {
  MutexLock lock(mu_);
  Session* session = find_locked(id);
  if (session == nullptr) {
    return Status::InvalidArgument("serve: unknown session id");
  }
  if (session->kind != SessionKind::kSolver) {
    return Status::FailedPrecondition("serve: not a solver session");
  }
  session->jobs.push_back(job);
  {
    MutexLock stat_lock(session->stat_mu);
    ++session->jobs_submitted;
  }
  refresh_runnable_locked(*session);
  return Status::Ok();
}

Status EngineServer::cancel(SessionId id) {
  MutexLock lock(mu_);
  Session* session = find_locked(id);
  if (session == nullptr) {
    return Status::InvalidArgument("serve: unknown session id");
  }
  // Token only — the data plane may be mid-slice on the controller thread.
  // The session pauses with kCancelled at its next cancellation poll.
  session->cancel.request_cancel();
  return Status::Ok();
}

Status EngineServer::resume(SessionId id) {
  MutexLock lock(mu_);
  Session* session = find_locked(id);
  if (session == nullptr) {
    return Status::InvalidArgument("serve: unknown session id");
  }
  session->cancel.reset();
  session->paused = false;
  {
    MutexLock stat_lock(session->stat_mu);
    session->last = Status::Ok();
  }
  refresh_runnable_locked(*session);
  return Status::Ok();
}

Status EngineServer::set_deadline(
    SessionId id, std::optional<std::chrono::steady_clock::time_point> d) {
  MutexLock lock(mu_);
  Session* session = find_locked(id);
  if (session == nullptr) {
    return Status::InvalidArgument("serve: unknown session id");
  }
  session->deadline = d;
  if (session->kind == SessionKind::kRouter) session->run->set_deadline(d);
  return Status::Ok();
}

Status EngineServer::close(SessionId id) {
  MutexLock lock(mu_);
  const auto it = std::find_if(
      sessions_.begin(), sessions_.end(),
      [id](const std::unique_ptr<Session>& s) { return s->id == id; });
  if (it == sessions_.end()) {
    return Status::InvalidArgument("serve: unknown session id");
  }
  scheduler_.remove(id);
  admission_.release((*it)->projected);
  sessions_.erase(it);
  ++closed_total_;
  return Status::Ok();
}

StatusOr<RouterResult> EngineServer::result(SessionId id) const {
  MutexLock lock(mu_);
  Session* session = find_locked(id);
  if (session == nullptr) {
    return Status::InvalidArgument("serve: unknown session id");
  }
  if (session->kind != SessionKind::kRouter) {
    return Status::FailedPrecondition("serve: not a router session");
  }
  return session->router->result();
}

std::size_t EngineServer::results_ready(SessionId id) const {
  MutexLock lock(mu_);
  const Session* session = find_locked(id);
  if (session == nullptr || session->kind != SessionKind::kSolver) return 0;
  return session->ready.size();
}

StatusOr<SolveResult> EngineServer::pop_result(SessionId id) {
  MutexLock lock(mu_);
  Session* session = find_locked(id);
  if (session == nullptr) {
    return Status::InvalidArgument("serve: unknown session id");
  }
  if (session->kind != SessionKind::kSolver) {
    return Status::FailedPrecondition("serve: not a solver session");
  }
  if (session->ready.empty()) {
    return Status::FailedPrecondition("serve: no result ready");
  }
  StatusOr<SolveResult> result = std::move(session->ready.front());
  session->ready.pop_front();
  {
    MutexLock stat_lock(session->stat_mu);
    session->ready_count = session->ready.size();
  }
  return result;
}

Status EngineServer::session_status(SessionId id) const {
  MutexLock lock(mu_);
  const Session* session = find_locked(id);
  if (session == nullptr) {
    return Status::InvalidArgument("serve: unknown session id");
  }
  MutexLock stat_lock(session->stat_mu);
  return session->last;
}

Status EngineServer::run_slice(Session& session) {
  Status slice = Status::Ok();
  if (session.deadline.has_value() &&
      std::chrono::steady_clock::now() >= *session.deadline) {
    // The slice's own RunControl would reach the same verdict at its first
    // boundary; refusing up front just skips the dispatch.
    slice = detail::deadline_exceeded_status(
        "serve: tenant deadline expired before its slice");
  } else if (session.kind == SessionKind::kRouter) {
    slice = session.run->step();
  } else {
    const CdSolver::Job job = session.jobs.front();
    RunControl control;
    control.cancel = &session.cancel;
    control.events = &session.sink;
    control.deadline = session.deadline;
    StatusOr<SolveResult> result = session.solver->solve(job, control);
    const StatusCode code =
        result.ok() ? StatusCode::kOk : result.status().code();
    if (!result.ok() && pauses_session(code)) {
      // Resumable pause: the job stays queued and re-solves bit-identically
      // once the tenant is revived.
      slice = result.status();
    } else {
      // Success — or a non-retryable per-job failure, delivered in-band
      // through pop_result like SolveStream's StatusOr contract.
      session.jobs.pop_front();
      session.ready.push_back(std::move(result));
    }
  }

  session.paused = !slice.ok();
  MutexLock lock(session.stat_mu);
  session.last = slice;
  ++session.slices;
  if (session.kind == SessionKind::kRouter) {
    session.rounds_completed = session.router->rounds_completed();
  } else {
    session.jobs_completed = session.jobs_submitted - session.jobs.size();
    session.ready_count = session.ready.size();
  }
  return slice;
}

bool EngineServer::step() {
  Session* session = nullptr;
  {
    MutexLock lock(mu_);
    const std::optional<SessionId> picked = scheduler_.pick();
    if (!picked.has_value()) return false;
    session = find_locked(*picked);
    if (session == nullptr) return false;  // defensive: registry is the truth
  }
  // No lock across the slice: it fans out on the engine pool and delivers
  // events, and stats()/cancel() must stay reachable meanwhile.
  const Status slice = run_slice(*session);
  {
    MutexLock lock(mu_);
    ++slices_total_;
    if (slice.code() == StatusCode::kDeadlineExceeded) {
      ++deadline_expirations_;
    }
    refresh_runnable_locked(*session);
  }
  return true;
}

Status EngineServer::run_until_idle(const RunControl& control) {
  while (true) {
    if (control.cancel != nullptr && control.cancel->cancelled()) {
      return Status::Cancelled("serve: run_until_idle cancelled");
    }
    if (detail::deadline_expired(control)) {
      return detail::deadline_exceeded_status(
          "serve: run_until_idle deadline expired");
    }
    if (!step()) return Status::Ok();
  }
}

ServeStats EngineServer::stats() const {
  ServeStats out;
  MutexLock lock(mu_);
  out.sessions_open = sessions_.size();
  out.admitted_total = admission_.admitted_total();
  out.rejected_total = admission_.rejected_total();
  out.closed_total = closed_total_;
  out.slices_total = slices_total_;
  out.deadline_expirations = deadline_expirations_;
  out.projected_bytes = admission_.projected_bytes();
  out.admission_budget_bytes = admission_.limits().max_projected_bytes;
  out.budget_capacity_bytes = engine_.dense_budget().capacity_bytes();
  out.budget_peak_bytes = engine_.dense_budget().peak_reserved_bytes();
  out.tenants.reserve(sessions_.size());
  for (const std::unique_ptr<Session>& session : sessions_) {
    TenantSnapshot t;
    t.id = session->id;
    t.name = session->name;
    t.kind = session->kind;
    t.weight = session->weight;
    t.projected_dense_bytes = session->projected;
    {
      MutexLock stat_lock(session->stat_mu);
      t.runnable = session->runnable;
      t.last_status = session->last.code();
      t.slices_run = session->slices;
      t.rounds_completed = session->rounds_completed;
      t.rounds_submitted = session->rounds_submitted;
      t.jobs_completed = session->jobs_completed;
      t.jobs_submitted = session->jobs_submitted;
      t.results_ready = session->ready_count;
      t.ace4 = session->ace4;
      t.max_utilization = session->max_utilization;
      t.overfull_edges = session->overfull_edges;
    }
    if (t.runnable) ++out.queue_depth;
    out.worst_ace4 = std::max(out.worst_ace4, t.ace4);
    out.worst_max_utilization =
        std::max(out.worst_max_utilization, t.max_utilization);
    out.overfull_edges_total += t.overfull_edges;
    out.tenants.push_back(std::move(t));
  }
  return out;
}

}  // namespace cdst::serve
