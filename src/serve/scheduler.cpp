#include "serve/scheduler.h"

#include <algorithm>

namespace cdst::serve {

void FairScheduler::add(SessionId id, int weight) {
  Entry entry;
  entry.id = id;
  entry.weight = std::max(1, weight);
  // A fresh entry starts with a full credit line so the cursor can serve it
  // without first cycling past it (matters only when it is added exactly at
  // the cursor position; replenish-on-arrival covers every later cycle).
  entry.credit = entry.weight;
  entries_.push_back(entry);
}

void FairScheduler::remove(SessionId id) {
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [id](const Entry& e) { return e.id == id; });
  if (it == entries_.end()) return;
  const std::size_t index = static_cast<std::size_t>(it - entries_.begin());
  entries_.erase(it);
  if (entries_.empty()) {
    cursor_ = 0;
    return;
  }
  if (index < cursor_) --cursor_;
  if (cursor_ >= entries_.size()) cursor_ = 0;
}

void FairScheduler::set_runnable(SessionId id, bool runnable) {
  for (Entry& e : entries_) {
    if (e.id == id) {
      e.runnable = runnable;
      return;
    }
  }
}

std::size_t FairScheduler::runnable_count() const {
  std::size_t count = 0;
  for (const Entry& e : entries_) {
    if (e.runnable) ++count;
  }
  return count;
}

std::optional<SessionId> FairScheduler::pick() {
  if (runnable_count() == 0) return std::nullopt;

  if (policy_ == SchedulePolicy::kFifo) {
    for (Entry& e : entries_) {
      if (e.runnable) return e.id;
    }
    return std::nullopt;  // unreachable: runnable_count() > 0
  }

  // Deficit round-robin: serve the entry under the cursor while it has
  // credit, otherwise advance and refill the entry the cursor arrives at.
  // Bounded: within size()+1 hops the cursor reaches a runnable entry with
  // a freshly refilled credit >= 1.
  for (std::size_t hops = 0; hops <= entries_.size() + 1; ++hops) {
    Entry& e = entries_[cursor_];
    if (e.runnable && e.credit > 0) {
      --e.credit;
      return e.id;
    }
    cursor_ = (cursor_ + 1) % entries_.size();
    entries_[cursor_].credit = entries_[cursor_].weight;
  }
  return std::nullopt;  // unreachable: guarded by runnable_count() above
}

}  // namespace cdst::serve
