/// \file serve/admission.h
/// Admission control for the serving core: bounded session count and a
/// projected dense-state budget.
///
/// Tenants declare at open time how many dense-state bytes their session is
/// expected to reserve (TenantOptions::projected_dense_bytes). The
/// controller admits a session only while the sum of projections fits the
/// configured limit — by default the capacity of the engine's shared
/// DenseStateBudget — and while the registry has room. Refusal is the typed
/// kResourceExhausted contract ("this cannot fit; do not retry as-is"),
/// minted through the audited origin helpers of api/scratch_pool.h, never
/// ad hoc. Projections are a *planning* bound: actual reservations still go
/// through the DenseStateBudget at solve time; the serve tests cross-check
/// that the budget's peak_reserved_bytes() stays within the admission
/// limit.
///
/// This class is pure bookkeeping with no lock of its own: EngineServer
/// guards its instance with the registry mutex (see serve/serve.h).

#pragma once

#include <cstddef>

#include "api/scratch_pool.h"
#include "api/status.h"
#include "util/fault_injection.h"

namespace cdst::serve {

/// Static limits the controller admits against.
struct AdmissionLimits {
  /// Maximum concurrently open sessions (queue-depth bound).
  std::size_t max_sessions{64};
  /// Maximum sum of admitted projections in bytes; 0 admits any projection
  /// (the session-count bound still applies).
  std::size_t max_projected_bytes{0};
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionLimits& limits)
      : limits_(limits) {}

  /// Admits one session projecting `projected_bytes` of dense state, or
  /// returns kResourceExhausted (and counts the rejection) when either
  /// limit would be exceeded. The "serve.admit" fault site fires before any
  /// bookkeeping, so an injected admission fault leaves the controller
  /// bit-identical to one that never saw the request.
  Status admit(std::size_t projected_bytes) {
    CDST_FAULT_POINT("serve.admit");
    if (sessions_ + 1 > limits_.max_sessions) {
      ++rejected_;
      return detail::resource_exhausted_status(
          "serve admission: session limit reached");
    }
    if (limits_.max_projected_bytes != 0 &&
        projected_ + projected_bytes > limits_.max_projected_bytes) {
      ++rejected_;
      return detail::resource_exhausted_status(
          "serve admission: projected dense-state bytes exceed the "
          "admission budget");
    }
    ++sessions_;
    ++admitted_;
    projected_ += projected_bytes;
    return Status::Ok();
  }

  /// Returns a closed session's projection to the pool.
  void release(std::size_t projected_bytes) {
    if (sessions_ > 0) --sessions_;
    projected_ -= projected_bytes < projected_ ? projected_bytes : projected_;
  }

  const AdmissionLimits& limits() const { return limits_; }
  std::size_t sessions() const { return sessions_; }
  std::size_t projected_bytes() const { return projected_; }
  std::size_t admitted_total() const { return admitted_; }
  std::size_t rejected_total() const { return rejected_; }

 private:
  AdmissionLimits limits_;
  std::size_t sessions_{0};
  std::size_t projected_{0};
  std::size_t admitted_{0};
  std::size_t rejected_{0};
};

}  // namespace cdst::serve
