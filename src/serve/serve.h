/// \file serve/serve.h
/// The multi-tenant serving core: admission, fair scheduling and fleet
/// observability over one Engine.
///
/// An Engine (api/engine.h) is a factory plus shared substrate — one
/// ThreadPool, one DenseStateBudget. EngineServer is the layer above it
/// that makes the substrate *servable*: it owns a session registry, admits
/// tenants against configured limits (serve/admission.h), and time-slices
/// the admitted sessions' work across the one pool with a deterministic
/// fair scheduler (serve/scheduler.h). The slicing unit is a Router round
/// (via Router::run_async — a run(1) per slice, split-invariant by the
/// run() contract) or a single cost-distance solve, so N routers and M
/// solver streams interleave at round/job granularity on one pool while
/// each slice still fans out across every worker.
///
/// Flow: admission -> schedule -> slice -> aggregate.
///   open_*_session()  admission check (kResourceExhausted on queue depth
///                     or projected dense-state overflow), registry entry,
///                     scheduler entry
///   submit_*()        queues rounds/jobs; the session becomes runnable
///   step()            one scheduling quantum: pick a tenant (deficit
///                     round-robin or FIFO), run one slice on the calling
///                     thread, fold the outcome back into the registry
///   stats()           fleet snapshot: per-tenant progress, queue depth,
///                     worst-case congestion telemetry, budget high-water
///
/// Determinism: the scheduler is deterministic and slices of different
/// sessions touch disjoint session state, so any serve schedule commits,
/// per tenant, exactly the rounds/jobs a serial run would — bit-identical
/// results at any thread count, shard count, policy or interleaving. The
/// serve tests verify this across a tenants x threads x shards matrix.
///
/// Pause/resume: a slice that returns kCancelled, kDeadlineExceeded or
/// kUnavailable pauses its session at the last committed boundary (round
/// barrier / before the job); the session's state is coherent and the
/// pending work is retained. resume() re-arms it (resetting its cancel
/// token); set_deadline() extends or clears a tenant deadline first if that
/// is what paused it. Deadlines propagate into every slice's RunControl, so
/// an expiring tenant yields at the next batch/round boundary without
/// perturbing any other tenant.
///
/// Threading contract: ONE controller thread owns the lifecycle and the
/// pump — open/submit/resume/set_deadline/close/result/pop_result/step/
/// run_until_idle. From any thread: cancel() (latches the tenant's token;
/// the session pauses at its next cancellation poll) and stats(). Internal
/// locks: `mu_` guards the registry, scheduler and admission bookkeeping
/// and is never held while a slice runs; each session's `stat_mu` guards
/// its cross-thread stats mirror, written by the controller after every
/// slice and by the event-aggregation sink on engine worker threads during
/// one (lock order: mu_ before stat_mu; never both across a slice).
///
/// The EngineServer borrows the Engine and must not outlive it; tenants'
/// grids and netlists are borrowed for the session lifetime, like Router's
/// own contract.

#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/engine.h"
#include "serve/admission.h"
#include "serve/scheduler.h"
#include "serve/stats.h"
#include "util/thread_annotations.h"

namespace cdst::serve {

/// Server-wide configuration.
struct ServeOptions {
  /// Maximum concurrently open sessions (admission queue-depth bound).
  std::size_t max_sessions{64};
  /// Admission limit on the sum of tenants' projected dense-state bytes; 0
  /// means the capacity of the engine's shared DenseStateBudget, so by
  /// default admitted projections can never plan past the memory that
  /// actually exists.
  std::size_t admission_budget_bytes{0};
  SchedulePolicy policy{SchedulePolicy::kDeficitRoundRobin};
};

/// Per-tenant admission-time configuration.
struct TenantOptions {
  std::string name;  ///< label surfaced in ServeStats (may be empty)
  /// Fair-scheduler weight: slices granted per scheduling cycle (< 1 -> 1).
  int weight{1};
  /// Dense-state bytes this session is projected to reserve — what
  /// admission charges against ServeOptions::admission_budget_bytes. 0
  /// projects nothing (admitted on queue depth alone).
  std::size_t projected_dense_bytes{0};
  /// Tenant deadline, propagated into every slice's RunControl: on expiry
  /// the session pauses with kDeadlineExceeded at the next batch/round
  /// boundary, resumable after set_deadline() + resume().
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Optional tenant observer: receives every event of the tenant's slices
  /// (same EventSink contract as RunControl::events). Borrowed; must
  /// outlive the session.
  EventSink* events{nullptr};
};

class EngineServer {
 public:
  /// Borrows `engine` (must outlive the server). Resolves a zero
  /// admission_budget_bytes to the engine budget's capacity.
  explicit EngineServer(Engine& engine, const ServeOptions& options = {});
  ~EngineServer();
  EngineServer(const EngineServer&) = delete;
  EngineServer& operator=(const EngineServer&) = delete;

  /// Admits a router tenant: admission check, then a Router session on the
  /// engine's pool and budget, opened as a round stream (run_async) with
  /// the tenant's cancel token, deadline and event aggregation wired in.
  /// kResourceExhausted when admission refuses; the registry is untouched
  /// on any failure. Grid and netlist are borrowed for the session.
  StatusOr<SessionId> open_router_session(const RoutingGrid& grid,
                                          const Netlist& netlist,
                                          const RouterOptions& router_options,
                                          const TenantOptions& tenant = {});

  /// Admits a solver tenant: one CdSolver on the engine's pool and budget;
  /// each submitted job is one scheduling slice.
  StatusOr<SessionId> open_solver_session(const SolverOptions& solver_options,
                                          const TenantOptions& tenant = {});

  /// Queues `rounds` more Lagrangean rounds on a router session.
  Status submit_rounds(SessionId id, int rounds);
  /// Queues one solve job on a solver session. The job's instance (and
  /// oracle) are borrowed until the job's result is popped.
  Status submit_job(SessionId id, const CdSolver::Job& job);

  /// Latches the tenant's cancel token — callable from any thread, e.g. an
  /// event handler. The session pauses with kCancelled at its next
  /// cancellation poll; other tenants are unaffected.
  Status cancel(SessionId id);
  /// Re-arms a paused session (resets its cancel token); it becomes
  /// runnable again if it has pending work. Clear or extend the tenant's
  /// deadline first when expiry is what paused it.
  Status resume(SessionId id);
  /// Replaces the tenant's deadline for subsequent slices (nullopt clears).
  Status set_deadline(
      SessionId id,
      std::optional<std::chrono::steady_clock::time_point> deadline);
  /// Closes a session, releasing its admission projection. Pending work is
  /// discarded; committed results are gone with it — snapshot result()
  /// first if needed.
  Status close(SessionId id);

  /// Coherent routing snapshot of a router session (Router::result()).
  StatusOr<RouterResult> result(SessionId id) const;
  /// Solved jobs not yet popped from a solver session (0 for unknown ids).
  std::size_t results_ready(SessionId id) const;
  /// Pops the oldest solved job, in submission order. Per-job failures
  /// surface here in-band (the slice consumed the job); kFailedPrecondition
  /// when no result is ready.
  StatusOr<SolveResult> pop_result(SessionId id);
  /// Outcome of the session's most recent slice (kOk before the first).
  Status session_status(SessionId id) const;

  /// One scheduling quantum on the calling thread: picks the next tenant
  /// under the policy and runs one slice (a router round / one solve).
  /// Returns false — without running anything — when no session is
  /// runnable.
  bool step();
  /// step()s until no session is runnable. The control's cancel token and
  /// deadline are checked between slices: kCancelled / kDeadlineExceeded
  /// stops the pump (sessions keep their state; call again to continue).
  /// Paused sessions do not count as runnable, so the pump returns kOk once
  /// every session is drained or paused.
  Status run_until_idle(const RunControl& control = {});

  /// Fleet snapshot; safe from any thread.
  ServeStats stats() const;

 private:
  struct Session;

  Session* find_locked(SessionId id) const CDST_REQUIRES(mu_);
  /// Admission with the "serve.admit" fault site mapped onto the Status
  /// contract (an injected fault surfaces as kUnavailable, bookkeeping
  /// untouched).
  Status admit_locked(std::size_t projected_bytes) CDST_REQUIRES(mu_);
  /// Recomputes whether the scheduler may pick the session and mirrors the
  /// flag into the session's stats.
  void refresh_runnable_locked(Session& session) CDST_REQUIRES(mu_);
  /// Executes one slice of `session` on the calling thread (no locks held)
  /// and folds the outcome into the session's mirror. Returns the slice
  /// Status.
  Status run_slice(Session& session);

  Engine& engine_;
  ServeOptions options_;

  mutable Mutex mu_;
  std::vector<std::unique_ptr<Session>> sessions_ CDST_GUARDED_BY(mu_);
  FairScheduler scheduler_ CDST_GUARDED_BY(mu_);
  AdmissionController admission_ CDST_GUARDED_BY(mu_);
  SessionId next_id_ CDST_GUARDED_BY(mu_){1};
  std::size_t slices_total_ CDST_GUARDED_BY(mu_){0};
  std::size_t deadline_expirations_ CDST_GUARDED_BY(mu_){0};
  std::size_t closed_total_ CDST_GUARDED_BY(mu_){0};
};

}  // namespace cdst::serve
