/// \file serve/stats.h
/// Cross-session observability snapshot of the serving core — what an
/// operator sees of the fleet: per-tenant progress, global congestion
/// telemetry, queue depth, and the dense-state budget high-water.
///
/// Everything here is plain copied data: EngineServer::stats() assembles a
/// snapshot under its locks and hands it out by value, so readers never
/// hold a lock into the server and the snapshot stays coherent (one
/// consistent registry walk, not a torn view).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "api/status.h"

namespace cdst::serve {

/// Registry handle of an admitted session. Ids are dense, start at 1, and
/// are never reused within one EngineServer.
using SessionId = std::uint64_t;

/// What kind of workload a session slices: Lagrangean router rounds or
/// single cost-distance solves.
enum class SessionKind : std::uint8_t { kRouter, kSolver };

/// Per-tenant view within a ServeStats snapshot.
struct TenantSnapshot {
  SessionId id{0};
  std::string name;  ///< TenantOptions::name (may be empty)
  SessionKind kind{SessionKind::kRouter};
  int weight{1};  ///< fair-scheduler slices per cycle
  /// True when the scheduler may pick the session: it has pending work and
  /// its last slice did not pause it (cancel / deadline / failure).
  bool runnable{false};
  StatusCode last_status{StatusCode::kOk};  ///< most recent slice outcome
  std::size_t slices_run{0};
  /// Dense-state bytes the tenant declared at admission (what the
  /// admission controller charges against its budget).
  std::size_t projected_dense_bytes{0};

  // Router sessions: absolute Lagrangean round progress.
  int rounds_completed{0};
  int rounds_submitted{0};

  // Solver sessions: job progress (ready = solved, not yet popped).
  std::size_t jobs_completed{0};
  std::size_t jobs_submitted{0};
  std::size_t results_ready{0};

  // Congestion telemetry of the tenant's latest round barrier (router
  // sessions; negative / zero until the first round_complete event).
  double ace4{-1.0};
  double max_utilization{-1.0};
  std::size_t overfull_edges{0};
};

/// Fleet-wide snapshot: EngineServer::stats(). Safe to call from any
/// thread.
struct ServeStats {
  std::size_t sessions_open{0};
  std::size_t queue_depth{0};  ///< sessions the scheduler may pick right now
  std::size_t admitted_total{0};
  std::size_t rejected_total{0};  ///< admissions refused (kResourceExhausted)
  std::size_t closed_total{0};
  std::size_t slices_total{0};  ///< scheduling quanta executed
  std::size_t deadline_expirations{0};  ///< slices that paused on a deadline

  /// Sum of admitted tenants' projected dense-state bytes, and the limit it
  /// is admitted against.
  std::size_t projected_bytes{0};
  std::size_t admission_budget_bytes{0};
  /// The engine's shared DenseStateBudget: configured capacity and the
  /// high-water of actual reservations across every tenant so far.
  std::int64_t budget_capacity_bytes{0};
  std::int64_t budget_peak_bytes{0};

  // Global congestion telemetry: the worst values across all tenants'
  // latest round barriers (negative until some tenant completed a round).
  double worst_ace4{-1.0};
  double worst_max_utilization{-1.0};
  std::size_t overfull_edges_total{0};

  std::vector<TenantSnapshot> tenants;  ///< admission order
};

}  // namespace cdst::serve
