/// \file serve/scheduler.h
/// Fair slice scheduling across tenants: deterministic weighted round-robin
/// with per-tenant deficit credits, plus a FIFO policy for comparison.
///
/// The scheduler decides *which session runs the next slice*; it never
/// executes anything itself, so it is trivially deterministic: given the
/// same sequence of add/remove/set_runnable/pick calls it produces the same
/// pick sequence, which is what makes a multi-tenant serve run bit-identical
/// to replaying each tenant serially (slices commute across sessions — each
/// Router round only touches its own session's state).
///
/// kDeficitRoundRobin: sessions are visited in admission order; when the
/// cursor arrives at a session its credit refills to its weight, and each
/// pick spends one credit, so a weight-w tenant receives w consecutive
/// slices per cycle — weighted max-min fairness in slice throughput with no
/// starvation (every runnable tenant is visited once per cycle).
///
/// kFifo: always picks the earliest-admitted runnable session — tenant 1
/// finishes before tenant 2 starts. Strictly worse completion-latency
/// spread under concurrent tenants; bench/bench_serve.cpp measures the gap.
///
/// No lock of its own: EngineServer guards its instance with the registry
/// mutex (see serve/serve.h).

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "serve/stats.h"

namespace cdst::serve {

/// Slice-ordering policy of the serving core.
enum class SchedulePolicy : std::uint8_t {
  kDeficitRoundRobin,  ///< weighted fair (default)
  kFifo,               ///< run-to-completion in admission order
};

class FairScheduler {
 public:
  explicit FairScheduler(SchedulePolicy policy) : policy_(policy) {}

  /// Registers a session at the end of the cycle order. Weights < 1 are
  /// treated as 1. Sessions start not runnable.
  void add(SessionId id, int weight);
  /// Unregisters a session; a no-op for unknown ids.
  void remove(SessionId id);
  /// Marks whether pick() may return the session.
  void set_runnable(SessionId id, bool runnable);

  /// Chooses the session for the next slice under the policy, spending one
  /// credit, or nullopt when no session is runnable.
  std::optional<SessionId> pick();

  std::size_t size() const { return entries_.size(); }
  std::size_t runnable_count() const;

 private:
  struct Entry {
    SessionId id{0};
    int weight{1};
    int credit{0};
    bool runnable{false};
  };

  std::vector<Entry> entries_;  ///< admission order
  std::size_t cursor_{0};       ///< deficit round-robin position
  SchedulePolicy policy_;
};

}  // namespace cdst::serve
