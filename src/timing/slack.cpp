#include "timing/slack.h"

#include <algorithm>
#include <cmath>

namespace cdst {

std::vector<double> compute_slacks(const std::vector<double>& arrivals,
                                   const std::vector<double>& rats) {
  CDST_CHECK(arrivals.size() == rats.size());
  std::vector<double> slacks(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    slacks[i] = rats[i] - arrivals[i];
  }
  return slacks;
}

TimingSummary summarize_slacks(const std::vector<double>& slacks) {
  TimingSummary s;
  s.num_sinks = slacks.size();
  s.worst_slack = slacks.empty() ? 0.0 : slacks.front();
  for (const double sl : slacks) {
    s.worst_slack = std::min(s.worst_slack, sl);
    if (sl < 0.0) {
      s.total_negative_slack += sl;
      ++s.num_violations;
    }
  }
  return s;
}

void update_delay_weights(const std::vector<double>& slacks, double scale,
                          double floor_weight, double ceiling_weight,
                          std::vector<double>& weights, double step) {
  CDST_CHECK(slacks.size() == weights.size());
  CDST_CHECK(scale > 0.0 && floor_weight > 0.0 &&
             ceiling_weight >= floor_weight);
  CDST_CHECK(step > 0.0);
  for (std::size_t i = 0; i < slacks.size(); ++i) {
    double w = weights[i];
    if (slacks[i] < 0.0) {
      // Violations always at least root-2 the weight (before damping);
      // large violations ramp up to 16x per round.
      w *= std::exp2(step * std::clamp(-slacks[i] / scale, 0.5, 4.0));
    } else if (slacks[i] > 0.25 * scale) {
      // Gentle decay only for comfortably met sinks; near-critical sinks
      // keep their multiplier to avoid oscillation.
      w *= std::exp2(-step * 0.25 * std::min(1.0, slacks[i] / (4.0 * scale)));
    }
    weights[i] = std::clamp(w, floor_weight, ceiling_weight);
  }
}

}  // namespace cdst
