/// \file rc.h
/// Elementary RC parameters of the technology used by the repeater-chain
/// model. Units: resistance in ohm, capacitance in fF, delay in ps
/// (1 ohm * 1 fF = 0.001 ps).

#pragma once

namespace cdst {

constexpr double kPsPerOhmFf = 0.001;

/// Repeater (buffer) electrical parameters (strong repeater in a ~5nm-class
/// technology; the input capacitance drives the bifurcation penalty dbif).
struct BufferSpec {
  double out_resistance{60.0};   ///< ohm
  double in_capacitance{8.0};    ///< fF
  double intrinsic_delay{12.0};  ///< ps
};

/// Wire RC per gcell (~25 um of wire) for one (layer, wire type)
/// combination.
struct WireRc {
  double r_per_gcell{100.0};  ///< ohm / gcell
  double c_per_gcell{5.0};    ///< fF / gcell

  /// Wider wires scale resistance down by their width and capacitance up
  /// slightly (fringe); this mirrors how wide wire types buy delay with
  /// routing capacity.
  WireRc scaled_by_width(double width) const {
    return WireRc{r_per_gcell / width, c_per_gcell * (1.0 + 0.1 * (width - 1.0))};
  }
};

}  // namespace cdst
