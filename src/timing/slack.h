/// \file slack.h
/// Slack bookkeeping for the timing-constrained router: per-sink required
/// arrival times (RATs) against tree delays give slacks; worst slack (WS) and
/// total negative slack (TNS) are the paper's Table IV/V timing metrics.

#pragma once

#include <vector>

#include "util/assert.h"

namespace cdst {

struct TimingSummary {
  double worst_slack{0.0};         ///< WS (ps); negative means violation
  double total_negative_slack{0.0};///< TNS (ps); sum of negative slacks (<= 0)
  std::size_t num_violations{0};   ///< sinks with slack < 0
  std::size_t num_sinks{0};
};

/// slack(s) = rat(s) - arrival(s), elementwise.
std::vector<double> compute_slacks(const std::vector<double>& arrivals,
                                   const std::vector<double>& rats);

/// Aggregates WS / TNS over per-sink slacks.
TimingSummary summarize_slacks(const std::vector<double>& slacks);

/// Multiplicative Lagrangean weight update: sinks with negative slack get
/// their delay weight scaled up, others decay toward the floor. `scale` is
/// the slack magnitude that doubles a weight in one round; `step` damps the
/// exponent (pass a decreasing schedule, e.g. 1/sqrt(round), to stabilize
/// the multipliers like a subgradient method).
void update_delay_weights(const std::vector<double>& slacks, double scale,
                          double floor_weight, double ceiling_weight,
                          std::vector<double>& weights, double step = 1.0);

}  // namespace cdst
