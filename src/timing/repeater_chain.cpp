#include "timing/repeater_chain.h"

#include <cmath>
#include <limits>

#include "util/assert.h"

namespace cdst {

RepeaterChain optimal_repeater_chain(const WireRc& wire,
                                     const BufferSpec& buf) {
  CDST_CHECK(wire.r_per_gcell > 0.0 && wire.c_per_gcell > 0.0);
  const double fixed = buf.intrinsic_delay / kPsPerOhmFf +
                       buf.out_resistance * buf.in_capacitance;  // ohm*fF
  const double rc = wire.r_per_gcell * wire.c_per_gcell;
  RepeaterChain out;
  out.spacing = std::sqrt(2.0 * fixed / rc);
  // t(L*)/L* with the optimal spacing; expand to avoid cancellation:
  //   = R_b c + r C_b + sqrt(2 (t_b + R_b C_b) r c)
  const double slope_ohmff = buf.out_resistance * wire.c_per_gcell +
                             wire.r_per_gcell * buf.in_capacitance +
                             std::sqrt(2.0 * fixed * rc);
  out.delay_per_gcell = slope_ohmff * kPsPerOhmFf;
  return out;
}

double mid_segment_cap_delay(const WireRc& wire, const BufferSpec& buf) {
  const RepeaterChain chain = optimal_repeater_chain(wire, buf);
  const double upstream_r =
      buf.out_resistance + wire.r_per_gcell * chain.spacing / 2.0;
  return upstream_r * buf.in_capacitance * kPsPerOhmFf;
}

double compute_dbif(const std::vector<LayerSpec>& layers,
                    const BufferSpec& buf) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t z = 1; z < layers.size(); ++z) {
    const LayerSpec& layer = layers[z];
    const WireRc base{layer.r_per_gcell, layer.c_per_gcell};
    for (const WireType& wt : layer.wire_types) {
      const double d = mid_segment_cap_delay(base.scaled_by_width(wt.width), buf);
      if (d < best) best = d;
    }
  }
  CDST_CHECK_MSG(std::isfinite(best), "layer stack has no buffable layer");
  return best;
}

double apply_linear_delay_model(std::vector<LayerSpec>& layers,
                                const BufferSpec& buf) {
  double fastest = std::numeric_limits<double>::infinity();
  for (LayerSpec& layer : layers) {
    const WireRc base{layer.r_per_gcell, layer.c_per_gcell};
    for (WireType& wt : layer.wire_types) {
      const RepeaterChain chain =
          optimal_repeater_chain(base.scaled_by_width(wt.width), buf);
      wt.delay_per_gcell = chain.delay_per_gcell;
      if (chain.delay_per_gcell < fastest) fastest = chain.delay_per_gcell;
    }
  }
  return fastest;
}

}  // namespace cdst
