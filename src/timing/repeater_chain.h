/// \file repeater_chain.h
/// Optimally spaced uniform repeater chains.
///
/// Before buffering, global routing estimates delay with a *linear* model:
/// an optimally buffered wire has constant delay per unit length. This module
/// derives that slope per (layer, wire type) from Elmore RC, and computes the
/// paper's bifurcation penalty dbif: "the delay increase when adding the
/// input capacitance in the middle of a single net, minimizing over all
/// layers and wire types" (Section I, following [4]).

#pragma once

#include <vector>

#include "grid/layer.h"
#include "timing/rc.h"

namespace cdst {

struct RepeaterChain {
  double spacing{0.0};         ///< optimal buffer spacing (gcells)
  double delay_per_gcell{0.0}; ///< linear delay slope (ps/gcell)
};

/// Optimal uniform repeater chain over a wire with the given RC.
///
/// One stage of length L has Elmore delay
///   t(L) = t_b + R_b (c L + C_b) + r L (c L / 2 + C_b),
/// so delay per unit t(L)/L is minimized at
///   L* = sqrt(2 (t_b + R_b C_b) / (r c)).
RepeaterChain optimal_repeater_chain(const WireRc& wire, const BufferSpec& buf);

/// Delay increase from attaching an extra input capacitance in the middle of
/// one optimally spaced stage: the added cap sees the upstream resistance
/// R_b + r L*/2.
double mid_segment_cap_delay(const WireRc& wire, const BufferSpec& buf);

/// dbif over a layer stack: minimum mid-segment cap delay over all layers
/// and wire types (vias and the pin layer z = 0 excluded, as buffers are not
/// placed there).
double compute_dbif(const std::vector<LayerSpec>& layers,
                    const BufferSpec& buf);

/// Overwrites every wire type's delay_per_gcell in the stack with the
/// repeater-chain slope for its (layer RC, width). Returns the fastest slope.
double apply_linear_delay_model(std::vector<LayerSpec>& layers,
                                const BufferSpec& buf);

}  // namespace cdst
