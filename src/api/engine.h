/// \file api/engine.h
/// Process-level facade over the session objects: one Engine owns the
/// ThreadPool and the shared DenseStateBudget, and vends CdSolver / Router
/// sessions pre-wired to both.
///
/// Before the facade, sharing one worker pool and one memory budget across
/// concurrent solve lanes was a convention: every call site had to thread
/// the same ThreadPool* and set options.shared_dense_budget itself, and one
/// forgotten wire meant N lanes silently budgeting N times the intended
/// memory. An Engine makes the sharing structural — every session it vends
/// draws workers from engine.thread_pool() and dense-state bytes from
/// engine.dense_budget() by construction.
///
/// The Engine must outlive every session (and stream) it vends; it is
/// neither copyable nor movable, since sessions hold pointers into it.
/// Sessions remain plain movable values — an Engine is a factory plus the
/// shared substrate, not a registry.

#pragma once

#include <cstddef>
#include <memory>

#include "api/cd_solver.h"
#include "api/router.h"
// The pool is part of the Engine's surface (thread_pool() hands it to
// helpers like FutureCost), so the facade header completes the type.
#include "util/thread_pool.h"

namespace cdst {

struct EngineOptions {
  /// Total worker concurrency (including calling threads) of the shared
  /// pool; every vended session fans out on it. Values < 1 mean 1.
  int threads{1};
  /// Size of the shared dense-state pool every vended session reserves
  /// search memory from (see DenseStateBudget).
  std::size_t dense_state_budget_bytes{512u << 20};
};

class Engine {
 public:
  using Options = EngineOptions;

  explicit Engine(const Options& options = {});
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const Options& options() const { return options_; }
  ThreadPool& thread_pool() { return *pool_; }
  DenseStateBudget& dense_budget() { return dense_budget_; }

  /// A CdSolver on the engine's pool, drawing dense-state memory from the
  /// engine's shared budget (a caller-installed options.shared_dense_budget
  /// wins; the wiring survives later set_options — see CdSolver).
  CdSolver make_solver(SolverOptions options = {});

  /// A Router session on the engine's pool whose per-net oracle lanes draw
  /// from the engine's shared budget (same override rule as make_solver).
  ///
  /// `options.threads` does not apply to engine-vended sessions: the
  /// engine's pool decides concurrency for every session it vends (that is
  /// the point of the facade), and results are thread-count-invariant
  /// anyway. The override is not silent: a caller-set value that differs
  /// from the pool's concurrency logs a warning (the classic multi-tenant
  /// misconfiguration is N tenants each asking for the whole machine), and
  /// the vended session's options().threads reports the pool's actual
  /// concurrency, not the ignored request.
  Router make_router(const RoutingGrid& grid, const Netlist& netlist,
                     RouterOptions options = {});

 private:
  Options options_;
  std::unique_ptr<ThreadPool> pool_;
  DenseStateBudget dense_budget_;
};

}  // namespace cdst
