/// \file api/run_control.h
/// Cooperative progress reporting and cancellation for long-running engine
/// calls (CdSolver::solve / solve_batch, Router::run).
///
/// The controller thread owns a CancelToken and hands a RunControl to the
/// engine call; the engine polls the token at bounded intervals and returns
/// a clean kCancelled Status — committed state (a Router's finished batches,
/// a batch solve's completed instances) is never corrupted by cancellation.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace cdst {

/// Thread-safe cancellation flag. The controller calls request_cancel()
/// (from any thread, including a progress callback); the engine observes it
/// within one poll interval. Reusable across calls via reset().
class CancelToken {
 public:
  void request_cancel() { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_.load(std::memory_order_relaxed); }
  void reset() { flag_.store(false, std::memory_order_relaxed); }

  /// The raw flag the core layers poll (they do not know about tokens).
  const std::atomic<bool>& flag() const { return flag_; }

 private:
  std::atomic<bool> flag_{false};
};

/// One progress observation. Which fields are meaningful depends on the
/// stage: "solve" counts merges of one solve, "solve_batch" counts finished
/// instances, "route" counts nets within the current Lagrangean round.
struct Progress {
  const char* stage{""};
  std::size_t done{0};
  std::size_t total{0};
  int round{0};         ///< current Lagrangean round, absolute session index
  /// Absolute session round the current run() call is heading for (same
  /// indexing as `round`): on a resumed session, run(2) after run(2)
  /// reports round 2..3 of total_rounds 4.
  int total_rounds{0};
};

/// Per-call execution controls. Default-constructed RunControl means "run to
/// completion, report nothing" — exactly the legacy behavior.
struct RunControl {
  const CancelToken* cancel{nullptr};
  /// Invoked on the thread that made the observation; solve_batch serializes
  /// invocations, so the callback itself need not be thread-safe.
  std::function<void(const Progress&)> on_progress;
  /// Queue pops between cancellation checks inside one cost-distance solve
  /// (responsiveness/overhead trade-off; 0 means the default).
  std::uint32_t cancel_poll_interval{4096};
};

}  // namespace cdst
