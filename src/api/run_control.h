/// \file api/run_control.h
/// Cooperative observation and cancellation for long-running engine calls
/// (CdSolver::solve / solve_batch / SolveStream, Router::run).
///
/// The controller thread owns a CancelToken and hands a RunControl to the
/// engine call; the engine polls the token at bounded intervals and returns
/// a clean kCancelled Status — committed state (a Router's finished rounds,
/// a batch solve's completed instances, a stream's delivered results) is
/// never corrupted by cancellation. Observation goes through the typed
/// EventSink of api/events.h: solver merge ticks, per-job completions, and
/// router round/shard boundaries with congestion stats. The original
/// single `Progress` callback remains as a deprecated adapter.

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>

namespace cdst {

class EventSink;  // api/events.h

/// Thread-safe cancellation flag. The controller calls request_cancel()
/// (from any thread, including an event handler); the engine observes it
/// within one poll interval. Reusable across calls via reset().
///
/// Deliberately lock-free — the flag is polled from solver hot loops, so it
/// carries no mutex for the thread-safety analysis to track; relaxed
/// ordering suffices because the flag is a latch that only ever gates
/// control flow (cancellation latency, not data, is the contract). reset()
/// is the one exception: it must not be called concurrently with an engine
/// call observing the token (the sessions document this).
class CancelToken {
 public:
  void request_cancel() { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_.load(std::memory_order_relaxed); }
  void reset() { flag_.store(false, std::memory_order_relaxed); }

  /// The raw flag the core layers poll (they do not know about tokens).
  const std::atomic<bool>& flag() const { return flag_; }

 private:
  std::atomic<bool> flag_{false};
};

/// One legacy progress observation (deprecated surface; see
/// RunControl::on_progress). Which fields are meaningful depends on the
/// stage: "solve" counts merges of one solve, "solve_batch" counts finished
/// instances, "route" counts nets within the current Lagrangean round.
struct Progress {
  const char* stage{""};
  std::size_t done{0};
  std::size_t total{0};
  int round{0};         ///< current Lagrangean round, absolute session index
  /// Absolute session round the current run() call is heading for (same
  /// indexing as `round`): on a resumed session, run(2) after run(2)
  /// reports round 2..3 of total_rounds 4.
  int total_rounds{0};
};

/// The substitute for RunControl::cancel_poll_interval == 0 ("0 means the
/// default"), applied once in detail::make_solve_controls so the core never
/// sees a zero interval.
inline constexpr std::uint32_t kDefaultCancelPollInterval = 4096;

/// Per-call execution controls. Default-constructed RunControl means "run to
/// completion, report nothing" — exactly the legacy behavior.
struct RunControl {
  const CancelToken* cancel{nullptr};
  /// Typed event observer (api/events.h): solver merge ticks, per-job
  /// completions, router round/shard boundaries. Borrowed; must outlive the
  /// engine call (for a SolveStream: the stream). Event delivery within one
  /// engine call is serialized, so the sink need not be thread-safe — but
  /// handlers run on engine worker threads and must not call back into the
  /// emitting session (use a CancelToken to influence the run).
  EventSink* events{nullptr};
  /// DEPRECATED: legacy single-callback observer, superseded by `events`
  /// (not attribute-marked — compilers flag deprecated members on every
  /// implicit RunControl construction, which would punish callers that
  /// never touch it). Still honored: the engine adapts the progress-like
  /// subset of events back into Progress calls, bit-compatible with the
  /// pre-event behavior. May be combined with `events` (both then observe).
  /// Invoked serialized, on the thread that made the observation.
  std::function<void(const Progress&)> on_progress;
  /// Monotonic deadline for the engine call, polled at the same points as
  /// `cancel` (solver queue pops, router batch/round boundaries, stream job
  /// starts). Expiry returns kDeadlineExceeded with the same
  /// partial-progress guarantees as cancellation: committed state stays
  /// coherent and the session remains usable. Unset means no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Queue pops between cancellation/deadline checks inside one
  /// cost-distance solve (responsiveness/overhead trade-off; 0 means the
  /// default, kDefaultCancelPollInterval).
  std::uint32_t cancel_poll_interval{kDefaultCancelPollInterval};
};

}  // namespace cdst
