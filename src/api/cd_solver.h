/// \file api/cd_solver.h
/// Session object around the cost-distance solver (paper Algorithm 1).
///
/// The solver is the Lagrangean subproblem oracle of the resource-sharing
/// router (paper Section IV): production routing calls it millions of times
/// per chip. A CdSolver amortizes that load: it owns SolverScratch lanes
/// (search-state pool, ownership maps, path scratch) recycled across solves,
/// so the steady state performs no per-solve allocations, and solves batches
/// deterministically in parallel on a caller-shared ThreadPool. Pipelines
/// that cannot hold a whole batch's results use stream(): an incremental
/// submit/poll/drain surface with a bounded in-flight window (see
/// api/solve_stream.h).
///
/// Error handling is structured: no exception crosses this boundary. Bad
/// instances come back as kInvalidArgument, honored cancellation tokens as
/// kCancelled, anything unexpected as kInternal.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "api/run_control.h"
#include "api/status.h"
#include "core/cost_distance.h"

namespace cdst {

class ThreadPool;
class SolveStream;

namespace detail {
class SolverScratchPool;
struct StreamState;
}  // namespace detail

/// Configuration of a streaming solve session (see api/solve_stream.h).
struct SolveStreamOptions {
  /// Maximum jobs in flight at once (submitted, not yet finished).
  /// submit() blocks when the window is full — the backpressure that
  /// bounds peak dense-state memory to window * per-solve footprint
  /// against the session's (or a shared) DenseStateBudget. Values < 1 are
  /// treated as 1.
  std::size_t window{8};
};

class CdSolver {
 public:
  /// \param options solver configuration shared by all solves (overridable
  ///        per job in batch mode). Copied; change later via set_options().
  /// \param pool borrowed worker pool for solve_batch / stream; nullptr runs
  ///        everything serially on the calling thread. Results are identical
  ///        either way, at any thread count.
  explicit CdSolver(SolverOptions options = {}, ThreadPool* pool = nullptr);
  ~CdSolver();
  CdSolver(CdSolver&&) noexcept;
  CdSolver& operator=(CdSolver&&) noexcept;

  const SolverOptions& options() const { return options_; }

  /// Replaces the session options for subsequent solves/submits. A
  /// caller-installed options.shared_dense_budget survives option changes:
  /// once a shared pool is wired in (by the caller or an Engine), a later
  /// set_options without one keeps the installed pool instead of silently
  /// unhooking it — detaching requires a fresh session. The session's own
  /// budget pool re-sizes when no shared pool is installed; while a stream
  /// is open (its lanes hold live reservations) the resize is deferred,
  /// not dropped: it applies at the next solve/solve_batch/stream call
  /// made once the session is stream-quiescent.
  void set_options(const SolverOptions& options) {
    DenseStateBudget* installed = options.shared_dense_budget != nullptr
                                      ? options.shared_dense_budget
                                      : options_.shared_dense_budget;
    options_ = options;
    options_.shared_dense_budget = installed;
    budget_stale_ = installed == nullptr;
    maybe_reset_budget();
  }

  /// One instance of a batch: the instance plus optional per-job overrides
  /// of the session options (the windowed router oracles need a per-net
  /// future-cost oracle and seed).
  struct Job {
    const CostDistanceInstance* instance{nullptr};
    const FutureCostOracle* future_cost{nullptr};  ///< null: session default
    std::optional<std::uint64_t> seed;             ///< nullopt: session seed
  };

  /// Solves one instance on the calling thread, recycling session scratch.
  /// Deterministic given the options seed; bit-identical to the legacy
  /// one-shot entry point.
  StatusOr<SolveResult> solve(const CostDistanceInstance& instance,
                              const RunControl& control = {});

  /// Same, with per-call overrides (see Job).
  StatusOr<SolveResult> solve(const Job& job, const RunControl& control = {});

  /// Solves all jobs, in parallel when the session has a ThreadPool. Results
  /// are index-addressed and each solve is single-threaded-deterministic, so
  /// the returned vector is bit-identical to looping solve() yourself — at
  /// any thread count. On failure the lowest-indexed non-OK job's status is
  /// returned (cancellation takes precedence); no partial vector escapes.
  StatusOr<std::vector<SolveResult>> solve_batch(
      std::span<const Job> jobs, const RunControl& control = {});

  /// Convenience overload: all instances under the session options.
  StatusOr<std::vector<SolveResult>> solve_batch(
      std::span<const CostDistanceInstance> instances,
      const RunControl& control = {});

  using StreamOptions = SolveStreamOptions;

  /// Opens a streaming solve session over this solver: submit jobs one at a
  /// time, poll results back strictly in submission order, bit-identical to
  /// solve_batch over the same jobs at any thread count and poll cadence.
  /// The control's cancel token and event sink observe the whole stream.
  /// The stream borrows this solver (scratch, options, budget): it must be
  /// drained or destroyed before the solver, and option changes via
  /// set_options() apply to jobs submitted afterwards. Any number of
  /// streams may be open concurrently; they share the session's scratch
  /// pool and budget.
  SolveStream stream(const StreamOptions& stream_options = {},
                     const RunControl& control = {});

 private:
  friend class SolveStream;
  friend struct detail::StreamState;

  /// The one place session options merge with per-job overrides and the
  /// session budget pool — solve(), solve_batch() and SolveStream all
  /// resolve through here, so their results cannot drift apart.
  SolverOptions resolve_job_options(const Job& job);

  /// Applies a deferred own-pool resize (see set_options) once no stream
  /// holds reservations. Called at every engine-call entry point, so a
  /// resize requested mid-stream lands at the first quiescent call instead
  /// of being lost.
  void maybe_reset_budget() {
    if (budget_stale_ &&
        active_streams_->load(std::memory_order_acquire) == 0) {
      dense_budget_.reset(options_.dense_state_budget_bytes);
      budget_stale_ = false;
    }
  }

  SolverOptions options_;
  ThreadPool* pool_;
  std::unique_ptr<detail::SolverScratchPool> scratch_;
  /// One atomic dense-state pool shared across all of this session's solve
  /// lanes, sized from options_.dense_state_budget_bytes: concurrent
  /// solve_batch lanes draw per-solve reservations from it instead of each
  /// budgeting independently. Callers that set their own
  /// options.shared_dense_budget override it.
  DenseStateBudget dense_budget_;
  /// Open SolveStreams against this session (their lanes may hold live
  /// dense-budget reservations); heap-held so the session stays movable
  /// while streams point at it.
  std::shared_ptr<std::atomic<int>> active_streams_;
  /// True when set_options changed dense_state_budget_bytes while a stream
  /// was open; the resize lands via maybe_reset_budget().
  bool budget_stale_{false};
};

}  // namespace cdst
