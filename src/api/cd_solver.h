/// \file api/cd_solver.h
/// Session object around the cost-distance solver (paper Algorithm 1).
///
/// The solver is the Lagrangean subproblem oracle of the resource-sharing
/// router (paper Section IV): production routing calls it millions of times
/// per chip. A CdSolver amortizes that load: it owns SolverScratch lanes
/// (search-state pool, ownership maps, path scratch) recycled across solves,
/// so the steady state performs no per-solve allocations, and solves batches
/// deterministically in parallel on a caller-shared ThreadPool.
///
/// Error handling is structured: no exception crosses this boundary. Bad
/// instances come back as kInvalidArgument, honored cancellation tokens as
/// kCancelled, anything unexpected as kInternal.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "api/run_control.h"
#include "api/status.h"
#include "core/cost_distance.h"

namespace cdst {

class ThreadPool;

namespace detail {
class SolverScratchPool;
}  // namespace detail

class CdSolver {
 public:
  /// \param options solver configuration shared by all solves (overridable
  ///        per job in batch mode). Copied; change later via set_options().
  /// \param pool borrowed worker pool for solve_batch; nullptr batches run
  ///        serially on the calling thread. Results are identical either
  ///        way, at any thread count.
  explicit CdSolver(SolverOptions options = {}, ThreadPool* pool = nullptr);
  ~CdSolver();
  CdSolver(CdSolver&&) noexcept;
  CdSolver& operator=(CdSolver&&) noexcept;

  const SolverOptions& options() const { return options_; }
  void set_options(const SolverOptions& options) {
    options_ = options;
    // Safe between calls: the session API never re-sizes mid-batch.
    dense_budget_.reset(options.dense_state_budget_bytes);
  }

  /// One instance of a batch: the instance plus optional per-job overrides
  /// of the session options (the windowed router oracles need a per-net
  /// future-cost oracle and seed).
  struct Job {
    const CostDistanceInstance* instance{nullptr};
    const FutureCostOracle* future_cost{nullptr};  ///< null: session default
    std::optional<std::uint64_t> seed;             ///< nullopt: session seed
  };

  /// Solves one instance on the calling thread, recycling session scratch.
  /// Deterministic given the options seed; bit-identical to the legacy
  /// one-shot entry point.
  StatusOr<SolveResult> solve(const CostDistanceInstance& instance,
                              const RunControl& control = {});

  /// Same, with per-call overrides (see Job).
  StatusOr<SolveResult> solve(const Job& job, const RunControl& control = {});

  /// Solves all jobs, in parallel when the session has a ThreadPool. Results
  /// are index-addressed and each solve is single-threaded-deterministic, so
  /// the returned vector is bit-identical to looping solve() yourself — at
  /// any thread count. On failure the lowest-indexed non-OK job's status is
  /// returned (cancellation takes precedence); no partial vector escapes.
  StatusOr<std::vector<SolveResult>> solve_batch(
      std::span<const Job> jobs, const RunControl& control = {});

  /// Convenience overload: all instances under the session options.
  StatusOr<std::vector<SolveResult>> solve_batch(
      std::span<const CostDistanceInstance> instances,
      const RunControl& control = {});

 private:
  SolverOptions options_;
  ThreadPool* pool_;
  std::unique_ptr<detail::SolverScratchPool> scratch_;
  /// One atomic dense-state pool shared across all of this session's solve
  /// lanes, sized from options_.dense_state_budget_bytes: concurrent
  /// solve_batch lanes draw per-solve reservations from it instead of each
  /// budgeting independently. Callers that set their own
  /// options.shared_dense_budget override it.
  DenseStateBudget dense_budget_;
};

}  // namespace cdst
