#include "api/engine.h"

#include <utility>

#include "util/thread_pool.h"

namespace cdst {

Engine::Engine(const Options& options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(options.threads < 1 ? 1
                                                             : options.threads)),
      dense_budget_(options.dense_state_budget_bytes) {}

Engine::~Engine() = default;

CdSolver Engine::make_solver(SolverOptions options) {
  if (options.shared_dense_budget == nullptr) {
    options.shared_dense_budget = &dense_budget_;
  }
  return CdSolver(std::move(options), pool_.get());
}

Router Engine::make_router(const RoutingGrid& grid, const Netlist& netlist,
                           RouterOptions options) {
  if (options.oracle.cd.shared_dense_budget == nullptr) {
    options.oracle.cd.shared_dense_budget = &dense_budget_;
  }
  return Router(grid, netlist, options, pool_.get());
}

}  // namespace cdst
