#include "api/engine.h"

#include <utility>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace cdst {

Engine::Engine(const Options& options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(options.threads < 1 ? 1
                                                             : options.threads)),
      dense_budget_(options.dense_state_budget_bytes) {}

Engine::~Engine() = default;

CdSolver Engine::make_solver(SolverOptions options) {
  if (options.shared_dense_budget == nullptr) {
    options.shared_dense_budget = &dense_budget_;
  }
  return CdSolver(std::move(options), pool_.get());
}

Router Engine::make_router(const RoutingGrid& grid, const Netlist& netlist,
                           RouterOptions options) {
  if (options.oracle.cd.shared_dense_budget == nullptr) {
    options.oracle.cd.shared_dense_budget = &dense_budget_;
  }
  // Engine-vended sessions run on the engine's pool; a per-session thread
  // request cannot be honored. Surface the mismatch instead of silently
  // ignoring it (N tenants each asking for the whole machine is the classic
  // serving misconfiguration), and make the vended session report the
  // concurrency it actually gets. threads == 1 is RouterOptions' default
  // and indistinguishable from "unset", so only explicit non-default
  // requests warn.
  const int pool_threads = pool_->concurrency();
  if (options.threads != 1 && options.threads != pool_threads) {
    CDST_LOG(kWarn) << "Engine::make_router: options.threads="
                    << options.threads
                    << " is ignored for engine-vended sessions; the engine "
                       "pool provides "
                    << pool_threads
                    << " lanes (results are thread-count-invariant either "
                       "way)";
  }
  options.threads = pool_threads;
  return Router(grid, netlist, options, pool_.get());
}

}  // namespace cdst
