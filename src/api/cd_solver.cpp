#include "api/cd_solver.h"

#include <atomic>
#include <mutex>
#include <string>
#include <utility>

#include "api/scratch_pool.h"
#include "util/thread_pool.h"

namespace cdst {
namespace {

/// Runs one solve against leased scratch and maps every failure mode onto
/// the structured status contract. `statuses[i]` stays OK on success.
Status solve_into(const CostDistanceInstance& instance,
                  const SolverOptions& options, SolverScratch* scratch,
                  const SolveControls* controls, SolveResult* out) {
  try {
    *out = solve_cost_distance(instance, options, scratch, controls);
    return Status::Ok();
  } catch (const SolveCancelled&) {
    return Status::Cancelled("cost-distance solve cancelled");
  } catch (const ContractViolation& e) {
    return Status::InvalidArgument(e.what());
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  }
}

}  // namespace

CdSolver::CdSolver(SolverOptions options, ThreadPool* pool)
    : options_(std::move(options)),
      pool_(pool),
      scratch_(std::make_unique<detail::SolverScratchPool>()),
      dense_budget_(options_.dense_state_budget_bytes) {}

CdSolver::~CdSolver() = default;
CdSolver::CdSolver(CdSolver&&) noexcept = default;
CdSolver& CdSolver::operator=(CdSolver&&) noexcept = default;

StatusOr<SolveResult> CdSolver::solve(const CostDistanceInstance& instance,
                                      const RunControl& control) {
  Job job;
  job.instance = &instance;
  return solve(job, control);
}

StatusOr<SolveResult> CdSolver::solve(const Job& job,
                                      const RunControl& control) {
  if (job.instance == nullptr) {
    return Status::InvalidArgument("solve job has no instance");
  }
  SolverOptions opts = options_;
  if (job.future_cost != nullptr) opts.future_cost = job.future_cost;
  if (job.seed.has_value()) opts.seed = *job.seed;
  if (opts.shared_dense_budget == nullptr) {
    opts.shared_dense_budget = &dense_budget_;
  }

  SolveControls controls = detail::make_solve_controls(control);
  if (control.on_progress) {
    controls.on_merge = [&control](std::size_t done, std::size_t total) {
      Progress p;
      p.stage = "solve";
      p.done = done;
      p.total = total;
      control.on_progress(p);
    };
  }

  const detail::SolverScratchPool::Lease lease = scratch_->lease();
  SolveResult result;
  Status status =
      solve_into(*job.instance, opts, lease.get(), &controls, &result);
  if (!status.ok()) return status;
  return result;
}

StatusOr<std::vector<SolveResult>> CdSolver::solve_batch(
    std::span<const Job> jobs, const RunControl& control) {
  std::vector<SolveResult> results(jobs.size());
  if (jobs.empty()) return results;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].instance == nullptr) {
      return Status::InvalidArgument("batch job " + std::to_string(i) +
                                     " has no instance");
    }
  }

  const std::atomic<bool>* cancel_flag =
      control.cancel != nullptr ? &control.cancel->flag() : nullptr;
  std::vector<Status> statuses(jobs.size());
  std::size_t completed = 0;  // guarded by progress_mu
  std::mutex progress_mu;

  const std::function<void(std::size_t)> body = [&](std::size_t i) {
    if (cancel_flag != nullptr &&
        cancel_flag->load(std::memory_order_relaxed)) {
      statuses[i] = Status::Cancelled("batch cancelled before this instance");
      return;
    }
    SolverOptions opts = options_;
    if (jobs[i].future_cost != nullptr) opts.future_cost = jobs[i].future_cost;
    if (jobs[i].seed.has_value()) opts.seed = *jobs[i].seed;
    if (opts.shared_dense_budget == nullptr) {
      // All lanes of the batch draw from the session's one atomic pool.
      opts.shared_dense_budget = &dense_budget_;
    }
    SolveControls controls = detail::make_solve_controls(control);

    const detail::SolverScratchPool::Lease lease = scratch_->lease();
    statuses[i] =
        solve_into(*jobs[i].instance, opts, lease.get(), &controls,
                   &results[i]);
    if (control.on_progress) {
      // Serialized so the callback need not be thread-safe, and the count
      // is incremented under the same lock so `done` is strictly
      // monotonic across callbacks. It is a completion count, not an index
      // (completion order varies; the final results never do).
      std::lock_guard<std::mutex> lock(progress_mu);
      Progress p;
      p.stage = "solve_batch";
      p.done = ++completed;
      p.total = jobs.size();
      control.on_progress(p);
    }
  };

  if (pool_ != nullptr) {
    pool_->parallel_for(0, jobs.size(), body);
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) body(i);
  }

  if (cancel_flag != nullptr && cancel_flag->load(std::memory_order_relaxed)) {
    return Status::Cancelled("solve_batch cancelled");
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!statuses[i].ok()) return statuses[i];
  }
  return results;
}

StatusOr<std::vector<SolveResult>> CdSolver::solve_batch(
    std::span<const CostDistanceInstance> instances,
    const RunControl& control) {
  std::vector<Job> jobs(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    jobs[i].instance = &instances[i];
  }
  return solve_batch(std::span<const Job>(jobs), control);
}

}  // namespace cdst
