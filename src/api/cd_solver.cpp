#include "api/cd_solver.h"

#include <atomic>
#include <string>
#include <utility>

#include "api/events.h"
#include "api/scratch_pool.h"
#include "util/fault_injection.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace cdst {
namespace detail {

SolveMergeEvent to_event(const MergeTick& tick) {
  SolveMergeEvent event;
  event.merges_done = tick.merges_done;
  event.merges_total = tick.merges_total;
  event.labels_settled = tick.labels_settled;
  event.completions_popped = tick.completions_popped;
  return event;
}

Status solve_into(const CostDistanceInstance& instance,
                  const SolverOptions& options, SolverScratch* scratch,
                  const SolveControls* controls, SolveResult* out) {
  try {
    *out = solve_cost_distance(instance, options, scratch, controls);
    return Status::Ok();
  } catch (const SolveCancelled&) {
    return Status::Cancelled("cost-distance solve cancelled");
  } catch (const SolveDeadlineExceeded& e) {
    return deadline_exceeded_status(e.what());
  } catch (const BudgetExhausted& e) {
    // Only reachable with SolverOptions::strict_shared_budget set.
    return resource_exhausted_status(e.what());
  } catch (const InjectedFault& e) {
    return Status::Unavailable(e.what());
  } catch (const ContractViolation& e) {
    return Status::InvalidArgument(e.what());
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  }
}

}  // namespace detail

CdSolver::CdSolver(SolverOptions options, ThreadPool* pool)
    : options_(std::move(options)),
      pool_(pool),
      scratch_(std::make_unique<detail::SolverScratchPool>()),
      dense_budget_(options_.dense_state_budget_bytes),
      active_streams_(std::make_shared<std::atomic<int>>(0)) {}

CdSolver::~CdSolver() = default;
CdSolver::CdSolver(CdSolver&&) noexcept = default;
CdSolver& CdSolver::operator=(CdSolver&&) noexcept = default;

SolverOptions CdSolver::resolve_job_options(const Job& job) {
  SolverOptions opts = options_;
  if (job.future_cost != nullptr) opts.future_cost = job.future_cost;
  if (job.seed.has_value()) opts.seed = *job.seed;
  if (opts.shared_dense_budget == nullptr) {
    // All lanes of this session draw from its one atomic pool.
    opts.shared_dense_budget = &dense_budget_;
  }
  return opts;
}

StatusOr<SolveResult> CdSolver::solve(const CostDistanceInstance& instance,
                                      const RunControl& control) {
  Job job;
  job.instance = &instance;
  return solve(job, control);
}

StatusOr<SolveResult> CdSolver::solve(const Job& job,
                                      const RunControl& control) {
  if (job.instance == nullptr) {
    return Status::InvalidArgument("solve job has no instance");
  }
  maybe_reset_budget();
  const SolverOptions opts = resolve_job_options(job);

  const detail::EventFan fan(control);
  SolveControls controls = detail::make_solve_controls(control);
  if (fan.active()) {
    controls.on_merge = [&fan](const MergeTick& tick) {
      fan.emit_solve_merge(detail::to_event(tick));
    };
  }

  const detail::SolverScratchPool::Lease lease = scratch_->lease();
  SolveResult result;
  Status status =
      detail::solve_into(*job.instance, opts, lease.get(), &controls,
                         &result);
  if (!status.ok()) return status;
  return result;
}

StatusOr<std::vector<SolveResult>> CdSolver::solve_batch(
    std::span<const Job> jobs, const RunControl& control) {
  std::vector<SolveResult> results(jobs.size());
  if (jobs.empty()) return results;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].instance == nullptr) {
      return Status::InvalidArgument("batch job " + std::to_string(i) +
                                     " has no instance");
    }
  }
  maybe_reset_budget();

  const std::atomic<bool>* cancel_flag =
      control.cancel != nullptr ? &control.cancel->flag() : nullptr;
  const detail::EventFan fan(control);
  std::vector<Status> statuses(jobs.size());
  // The analysis cannot tie a local's guard to a local mutex (GUARDED_BY
  // needs member scope); the MutexLock discipline still serializes them.
  std::size_t completed = 0;  // guarded by progress_mu
  Mutex progress_mu;

  // Serialized so sinks need not be thread-safe, and the count is
  // incremented under the same lock so `completed` is strictly monotonic
  // across events. It is a completion count, not an index (completion order
  // varies; the final results never do).
  const auto emit_job_event = [&](std::size_t i) {
    if (!fan.active()) return;
    MutexLock lock(progress_mu);
    JobEvent event;
    event.index = i;
    event.completed = ++completed;
    event.submitted = jobs.size();
    event.status = statuses[i].code();
    fan.emit_job(event);
  };

  const std::function<void(std::size_t)> body = [&](std::size_t i) {
    if (cancel_flag != nullptr &&
        cancel_flag->load(std::memory_order_relaxed)) {
      statuses[i] = Status::Cancelled("batch cancelled before this instance");
      return;
    }
    if (detail::deadline_expired(control)) {
      statuses[i] = detail::deadline_exceeded_status(
          "batch deadline expired before this instance");
      return;
    }
    const SolverOptions opts = resolve_job_options(jobs[i]);
    SolveControls controls = detail::make_solve_controls(control);

    const detail::SolverScratchPool::Lease lease = scratch_->lease();
    statuses[i] =
        detail::solve_into(*jobs[i].instance, opts, lease.get(), &controls,
                           &results[i]);
    emit_job_event(i);
  };

  // Per-job failures land in statuses[i]; only a fault injected in the pool
  // layer itself ("pool.task") can escape the barrier, since every body
  // maps its own exceptions to a Status.
  try {
    if (pool_ != nullptr) {
      pool_->parallel_for(0, jobs.size(), body);
    } else {
      for (std::size_t i = 0; i < jobs.size(); ++i) body(i);
    }
  } catch (const InjectedFault& e) {
    return Status::Unavailable(e.what());
  }

  if (cancel_flag != nullptr && cancel_flag->load(std::memory_order_relaxed)) {
    return Status::Cancelled("solve_batch cancelled");
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!statuses[i].ok()) return statuses[i];
  }
  return results;
}

StatusOr<std::vector<SolveResult>> CdSolver::solve_batch(
    std::span<const CostDistanceInstance> instances,
    const RunControl& control) {
  std::vector<Job> jobs(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    jobs[i].instance = &instances[i];
  }
  return solve_batch(std::span<const Job>(jobs), control);
}

}  // namespace cdst
