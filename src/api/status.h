/// \file api/status.h
/// Structured error propagation for the session API.
///
/// The engine objects of api/cdst.h never let exceptions escape: every
/// fallible operation returns a Status (or a StatusOr<T> carrying the value
/// on success). Codes follow the familiar canonical set so callers can
/// branch on machine-readable categories while messages stay human-oriented.
/// Inside the library, CDST_CHECK contract violations are caught at the api
/// boundary and converted into kInvalidArgument / kInternal statuses.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/assert.h"

namespace cdst {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kCancelled,         ///< a RunControl cancellation token was honored
  kInvalidArgument,   ///< malformed instance / options (precondition failed)
  kFailedPrecondition,///< session not in a state where the call is legal
  kInternal,          ///< unexpected failure inside the engine
  /// A RunControl deadline expired before the call completed; committed
  /// state is coherent, exactly as after kCancelled.
  kDeadlineExceeded,
  /// A capacity budget can never satisfy the request (waiting would not
  /// help); distinct from kUnavailable, which is worth retrying.
  kResourceExhausted,
  /// A transient fault (injected or real) unwound the call after bounded
  /// retries; the session stays reusable and a later retry may succeed.
  kUnavailable,
};

inline const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Cancelled(std::string_view msg) {
    return Status(StatusCode::kCancelled, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  /// kDeadlineExceeded / kResourceExhausted carry semantics the whole
  /// retry/backoff machinery branches on, so they may only originate from
  /// the deadline/budget helpers in api/scratch_pool.h — enforced by
  /// scripts/check_invariants.py rule `status-origin`.
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(StatusCode::kDeadlineExceeded, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(StatusCode::kUnavailable, msg);
  }

  /// Returns `status` with "context: " prepended to its message — call-site
  /// context without changing the code (OK statuses pass through untouched,
  /// so annotation can sit unconditionally on a return path).
  static Status Annotate(const Status& status, std::string_view context) {
    if (status.ok() || context.empty()) return status;
    std::string msg(context);
    msg += ": ";
    msg += status.message();
    return Status(status.code(), msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "CODE: message" (or "OK").
  std::string to_string() const {
    std::string s = status_code_name(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;  // messages are advisory, not identity
  }

 private:
  Status(StatusCode code, std::string_view msg) : code_(code), message_(msg) {}

  StatusCode code_{StatusCode::kOk};
  std::string message_;
};

/// Either a value of type T or a non-OK Status explaining its absence.
/// Accessing the value of an errored StatusOr is a contract violation
/// (CDST_CHECK) — test ok() first.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a value: success.
  StatusOr(T value) : value_(std::move(value)) {}
  /// Implicit from a non-OK status: failure. Passing an OK status without a
  /// value is a misuse and is reported as an internal error.
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from an OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CDST_CHECK_MSG(ok(), status_.to_string());
    return *value_;
  }
  T& value() & {
    CDST_CHECK_MSG(ok(), status_.to_string());
    return *value_;
  }
  T&& value() && {
    CDST_CHECK_MSG(ok(), status_.to_string());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  ///< OK iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace cdst
