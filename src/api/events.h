/// \file api/events.h
/// Typed engine events — the observer surface of the streaming pipeline API.
///
/// The single opaque `Progress` callback of the original RunControl could
/// only express "done/total at some stage"; pipelines that multiplex solver
/// lanes, batch jobs and router rounds need to know *which* boundary fired
/// and what state it carries. An EventSink receives one typed call per
/// boundary instead:
///
///   on_solve_merge   core/cost_distance.cpp, after every component merge
///                    of a single solve() (solving thread)
///   on_job           CdSolver::solve_batch / SolveStream, after every
///                    per-job completion (serialized; `completed` is
///                    strictly monotonic)
///   on_router_shard  api/router.cpp, after each spatial shard of a sharded
///                    round finishes routing (serialized; tile coordinates
///                    from route/sharding.cpp)
///   on_router_round  api/router.cpp, at batch boundaries and at the round
///                    barrier (round_complete, with congestion stats), and
///                    as the final summary of a cancelled run() (cancelled,
///                    so observers see the round the unwind stopped at)
///   on_fault         api/router.cpp, when a retryable fault unwound part
///                    of an engine call and the engine is retrying (or
///                    giving up) — the observable half of the
///                    fault-tolerance layer (see ARCHITECTURE.md "Failure
///                    model & recovery")
///
/// Ordering guarantees: events of one engine call are delivered in a single
/// serialized stream (the sink need not be thread-safe); job `completed`
/// counts and router `nets_done` counts never decrease within a call; a
/// round_complete event for round r is delivered before any event of round
/// r+1. Handlers must not call back into the emitting session object (the
/// engine may hold internal locks while delivering) — request_cancel() on a
/// CancelToken is the supported way to influence a run from a handler.
///
/// The legacy `RunControl::on_progress` callback remains as a deprecated
/// adapter: detail::LegacyProgressSink translates the progress-like subset
/// of events back into the old `Progress` shape, bit-compatible with the
/// pre-event behavior (it drops the new round_complete / cancelled
/// summaries, which legacy observers never saw).

#pragma once

#include <cstddef>
#include <utility>

#include "api/run_control.h"
#include "api/status.h"

namespace cdst {

/// One component merge of a single cost-distance solve. merges_total is the
/// instance's sink count; merges_done == merges_total is the finished tree.
struct SolveMergeEvent {
  std::size_t merges_done{0};
  std::size_t merges_total{0};
  std::size_t labels_settled{0};      ///< permanent labels so far
  std::size_t completions_popped{0};  ///< completion labels popped so far
};

/// One job finished inside CdSolver::solve_batch or a SolveStream.
struct JobEvent {
  std::size_t index{0};      ///< submission index of the finished job
  std::size_t completed{0};  ///< jobs finished so far (strictly monotonic)
  /// Batch size (solve_batch) or jobs submitted so far (SolveStream).
  std::size_t submitted{0};
  StatusCode status{StatusCode::kOk};  ///< how this job ended
};

/// One spatial shard of a sharded router round finished routing (the merge
/// into committed state happens later, at the round barrier).
struct RouterShardEvent {
  int round{0};         ///< absolute session round index
  int target_round{0};  ///< absolute round this run() call is heading for
  int shard{0};         ///< shard index within the round
  int shards{0};       ///< shard count of the round
  int tile_x{0};       ///< lattice coordinates of the shard's grid tile
  int tile_y{0};
  std::size_t shard_nets{0};  ///< nets assigned to this shard
  std::size_t nets_done{0};   ///< nets routed so far this round (monotonic)
  std::size_t nets_total{0};
  /// Wall seconds spent inside ShardTransport::dispatch for this shard;
  /// 0.0 when the shard ran in-process without a transport.
  double dispatch_seconds{0.0};
  /// Work-stealing telemetry (in-process rounds with
  /// RouterOptions::shard_stealing; otherwise 0): nets of this shard routed
  /// by lanes other than the shard's owner, and steal probes that found the
  /// shard fully claimed but still in flight.
  std::size_t stolen_nets{0};
  std::size_t steal_waits{0};
};

/// A router round boundary: batch progress inside a round, the round
/// barrier itself (round_complete, congestion stats filled), or the final
/// summary of a cancelled run() (cancelled, congestion stats filled).
struct RouterRoundEvent {
  int round{0};         ///< absolute session round index
  int target_round{0};  ///< absolute round this run() call is heading for
  std::size_t nets_done{0};
  std::size_t nets_total{0};
  /// True at the round barrier, after every update merged into committed
  /// state; congestion stats below describe that committed state.
  bool round_complete{false};
  /// True on the final summary of a cancelled run(): `round` is the round
  /// the unwind stopped at (not yet counted by rounds_completed()), and the
  /// congestion stats describe the committed state the session kept.
  bool cancelled{false};
  /// ACE4 congestion (paper Tables IV/V) of the committed routes; only
  /// meaningful when round_complete or cancelled, negative otherwise.
  double ace4{-1.0};
  double max_utilization{-1.0};  ///< worst edge utilization in %
  std::size_t overfull_edges{0};
};

/// A fault-tolerance boundary: a retryable fault (injected via
/// util/fault_injection.h, or a real transient failure) unwound part of an
/// engine call. `retrying` tells observers whether another attempt follows
/// (the committed state is unchanged either way — retries re-execute
/// against the same inputs, so results stay bit-identical to a fault-free
/// run) or the engine is giving up with the carried status.
struct FaultEvent {
  /// "router_shard" (a fault unwound shard routing) or "dist.transport" (a
  /// ShardTransport dispatch failed); more stages may follow.
  const char* stage{""};
  int round{-1};          ///< absolute session round, -1 outside rounds
  int attempt{0};         ///< 1-based attempt that just failed
  bool retrying{false};   ///< true: another attempt follows
  StatusCode status{StatusCode::kOk};  ///< how the failed attempt ended
};

/// Typed event observer. Default implementations ignore everything, so a
/// sink overrides only the boundaries it cares about. Install one via
/// RunControl::events; the engine serializes all calls within one engine
/// call, so implementations need not be thread-safe (they are, however,
/// invoked on engine worker threads — keep them fast and do not call back
/// into the emitting session). Handlers should not throw: observation
/// never alters engine results or statuses, so any exception a handler
/// does raise is caught and discarded at the emission site.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_solve_merge(const SolveMergeEvent& event) {
    (void)event;
  }
  virtual void on_job(const JobEvent& event) { (void)event; }
  virtual void on_router_shard(const RouterShardEvent& event) {
    (void)event;
  }
  virtual void on_router_round(const RouterRoundEvent& event) {
    (void)event;
  }
  virtual void on_fault(const FaultEvent& event) { (void)event; }
};

namespace detail {

// This adapter is the one place that reads the deprecated
// RunControl::on_progress member by design.

/// Translates typed events back into the deprecated Progress callback,
/// bit-compatible with the pre-event behavior: merge ticks -> "solve", job
/// completions -> "solve_batch", shard/batch boundaries -> "route". The new
/// round_complete / cancelled summaries are dropped — legacy observers
/// never received them.
class LegacyProgressSink final : public EventSink {
 public:
  explicit LegacyProgressSink(
      const std::function<void(const Progress&)>& callback)
      : callback_(callback) {}

  void on_solve_merge(const SolveMergeEvent& event) override {
    Progress p;
    p.stage = "solve";
    p.done = event.merges_done;
    p.total = event.merges_total;
    callback_(p);
  }

  void on_job(const JobEvent& event) override {
    Progress p;
    p.stage = "solve_batch";
    p.done = event.completed;
    p.total = event.submitted;
    callback_(p);
  }

  void on_router_shard(const RouterShardEvent& event) override {
    Progress p;
    p.stage = "route";
    p.done = event.nets_done;
    p.total = event.nets_total;
    p.round = event.round;
    p.total_rounds = event.target_round;
    callback_(p);
  }

  void on_router_round(const RouterRoundEvent& event) override {
    if (event.round_complete || event.cancelled) return;
    Progress p;
    p.stage = "route";
    p.done = event.nets_done;
    p.total = event.nets_total;
    p.round = event.round;
    p.total_rounds = event.target_round;
    callback_(p);
  }

 private:
  const std::function<void(const Progress&)>& callback_;
};

/// Resolves a RunControl's observers once per engine call: the typed sink
/// (if installed) and the legacy callback (wrapped). Both may be active at
/// once; emit_* forwards to each. An inactive fan makes every emit a no-op,
/// so call sites can skip event construction via active().
class EventFan {
 public:
  explicit EventFan(const RunControl& control) : legacy_(control.on_progress) {
    if (control.events != nullptr) sinks_[count_++] = control.events;
    if (control.on_progress) sinks_[count_++] = &legacy_;
  }
  EventFan(const EventFan&) = delete;
  EventFan& operator=(const EventFan&) = delete;

  bool active() const { return count_ > 0; }

  // Emission swallows handler exceptions (the EventSink contract): events
  // fire from solver hot loops, fire-and-forget stream lanes and batch
  // workers, where an escaping exception would either kill the process or
  // leak through the api layer's no-throw Status boundary. Observation must
  // never alter engine behavior.
  void emit_solve_merge(const SolveMergeEvent& event) const {
    for (int i = 0; i < count_; ++i) {
      try {
        sinks_[i]->on_solve_merge(event);
      } catch (...) {
      }
    }
  }
  void emit_job(const JobEvent& event) const {
    for (int i = 0; i < count_; ++i) {
      try {
        sinks_[i]->on_job(event);
      } catch (...) {
      }
    }
  }
  void emit_router_shard(const RouterShardEvent& event) const {
    for (int i = 0; i < count_; ++i) {
      try {
        sinks_[i]->on_router_shard(event);
      } catch (...) {
      }
    }
  }
  void emit_router_round(const RouterRoundEvent& event) const {
    for (int i = 0; i < count_; ++i) {
      try {
        sinks_[i]->on_router_round(event);
      } catch (...) {
      }
    }
  }
  void emit_fault(const FaultEvent& event) const {
    for (int i = 0; i < count_; ++i) {
      try {
        sinks_[i]->on_fault(event);
      } catch (...) {
      }
    }
  }

 private:
  LegacyProgressSink legacy_;
  EventSink* sinks_[2]{};
  int count_{0};
};

}  // namespace detail
}  // namespace cdst
