#include "api/router.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>

#include "api/events.h"
#include "api/scratch_pool.h"
#include "route/sharding.h"
#include "util/logging.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cdst {

struct Router::Impl {
  Impl(const RoutingGrid& grid_in, const Netlist& netlist_in,
       const RouterOptions& options_in, ThreadPool* shared_pool)
      : grid(grid_in),
        netlist(netlist_in),
        options(options_in),
        costs(grid_in, options_in.congestion),
        dense_budget(options_in.oracle.cd.dense_state_budget_bytes),
        pool(shared_pool) {
    if (pool == nullptr) {
      owned_pool =
          std::make_unique<ThreadPool>(std::max(1, options.threads));
      pool = owned_pool.get();
    }

    const std::size_t num_nets = netlist.nets.size();
    sink_offset.assign(num_nets + 1, 0);
    for (std::size_t i = 0; i < num_nets; ++i) {
      sink_offset[i + 1] = sink_offset[i] + netlist.nets[i].sinks.size();
    }
    const std::size_t num_sinks = sink_offset[num_nets];

    routes.assign(num_nets, {});
    sink_delays.assign(num_sinks, 0.0);
    sink_weights.assign(num_sinks, options.weight_floor);

    // Seed the Lagrange multipliers from RAT criticality: a sink whose
    // budget is close to its ideal (fastest-possible) delay starts with a
    // high delay weight, so the very first routing round already trades
    // congestion against timing sensibly instead of waiting for multiplier
    // ramp-up.
    rats.assign(num_sinks, 0.0);
    for (std::size_t i = 0; i < num_nets; ++i) {
      const Net& net = netlist.nets[i];
      for (std::size_t s = 0; s < net.sinks.size(); ++s) {
        const std::size_t flat = sink_offset[i] + s;
        rats[flat] = net.sinks[s].rat;
        const double ideal =
            grid.min_unit_delay() *
                static_cast<double>(
                    l1_distance(net.source, net.sinks[s].pos)) +
            2.0 * grid.min_via_delay();
        if (rats[flat] > 0.0 && ideal > 0.0) {
          const double criticality = ideal / rats[flat];  // <= 1 if feasible
          sink_weights[flat] = std::clamp(
              options.weight_init_scale * criticality * criticality,
              options.weight_floor, options.weight_ceiling);
        }
      }
    }
  }

  /// Fills a round event's congestion fields from the committed usage.
  void fill_congestion(RouterRoundEvent& event) const {
    const CongestionReport report = compute_ace(costs);
    event.ace4 = report.ace4;
    event.max_utilization = report.max_utilization;
    event.overfull_edges = report.overfull_edges;
  }

  /// Final summary of a cancelled run(): observers see the round the unwind
  /// stopped at (not yet counted by rounds_done) plus how much of it the
  /// committed state kept, so a monitoring pipeline never loses track of
  /// where a session stands after cancellation.
  void emit_cancel_summary(const detail::EventFan& fan, int target) {
    if (!fan.active()) return;
    RouterRoundEvent event;
    event.round = rounds_done;
    event.target_round = target;
    event.nets_done = round_nets_committed;
    event.nets_total = netlist.nets.size();
    event.cancelled = true;
    fill_congestion(event);
    fan.emit_router_round(event);
  }

  Status run(int rounds, const RunControl& control) {
    if (rounds < 0) return Status::InvalidArgument("rounds must be >= 0");
    if (rounds == 0) return Status::Ok();
    WallTimer timer;
    // Session walltime covers every run() path, including early returns.
    struct TimeAcc {
      WallTimer& timer;
      double& acc;
      ~TimeAcc() { acc += timer.seconds(); }
    } time_acc{timer, walltime_s};

    const detail::EventFan fan(control);
    try {
      const int target = rounds_done + rounds;
      while (rounds_done < target) {
        round_nets_committed = 0;
        if (control.cancel != nullptr && control.cancel->cancelled()) {
          emit_cancel_summary(fan, target);
          return Status::Cancelled("router run cancelled");
        }
        // Lagrangean step at the round boundary: slacks of the committed
        // routes drive the delay-weight multipliers of this round. Guarded
        // per absolute round so a cancel/resume cycle never double-steps
        // the multipliers. The decreasing subgradient step stabilizes them.
        if (rounds_done > 0 && weights_round != rounds_done) {
          const std::vector<double> slacks =
              compute_slacks(sink_delays, rats);
          const double step =
              1.0 / std::sqrt(static_cast<double>(rounds_done));
          update_delay_weights(slacks, options.weight_scale,
                               options.weight_floor, options.weight_ceiling,
                               sink_weights, step);
          weights_round = rounds_done;
        }
        const Status st = route_round(rounds_done, target, control, fan);
        if (!st.ok()) {
          if (st.code() == StatusCode::kCancelled) {
            emit_cancel_summary(fan, target);
          }
          return st;
        }
        if (fan.active()) {
          // Round barrier: every update of the round is committed.
          RouterRoundEvent event;
          event.round = rounds_done;
          event.target_round = target;
          event.nets_done = round_nets_committed;
          event.nets_total = netlist.nets.size();
          event.round_complete = true;
          fill_congestion(event);
          fan.emit_router_round(event);
        }
        ++rounds_done;
        if (options.verbose) {
          const TimingSummary ts =
              summarize_slacks(compute_slacks(sink_delays, rats));
          CDST_LOG(kInfo) << netlist.name << " "
                          << method_name(options.method) << " iter "
                          << (rounds_done - 1) << ": WS " << ts.worst_slack
                          << " TNS " << ts.total_negative_slack << " ACE4 "
                          << compute_ace(costs).ace4;
        }
      }
      return Status::Ok();
    } catch (const ContractViolation& e) {
      return Status::InvalidArgument(e.what());
    } catch (const std::exception& e) {
      return Status::Internal(e.what());
    }
  }

  Status route_round(int round, int target_rounds, const RunControl& control,
                     const detail::EventFan& fan) {
    return options.shards > 0
               ? route_round_sharded(round, target_rounds, control, fan)
               : route_round_batched(round, target_rounds, control, fan);
  }

  /// Materializes and solves one net's oracle instance — the one place the
  /// per-net seed derivation, sink-weight view, dense-budget injection and
  /// scratch lease live, so the batched and sharded disciplines cannot
  /// drift apart. `pricing` null = live congestion prices (batched path);
  /// otherwise the round's frozen snapshot (sharded path).
  OracleOutcome route_one_net(std::size_t i, int round,
                              const RoundPricing* pricing,
                              const SolveControls& controls) {
    const Net& net = netlist.nets[i];
    // The weights view borrows from sink_weights, which only changes
    // between rounds — never while nets are in flight.
    const std::span<const double> weights(
        sink_weights.data() + sink_offset[i],
        sink_offset[i + 1] - sink_offset[i]);
    OracleParams p = options.oracle;
    p.seed = options.seed * 0x9e3779b9ull + net.id * 1000003ull +
             static_cast<std::uint64_t>(round);
    if (p.cd.shared_dense_budget == nullptr) {
      p.cd.shared_dense_budget = &dense_budget;
    }
    const detail::SolverScratchPool::Lease lease = scratch.lease();
    const OracleInstance oi(grid, costs, net, weights, p, pricing);
    return run_method(oi, options.method, p, lease.get(), &controls);
  }

  /// One spatially sharded round (RouterOptions::shards): frozen price
  /// snapshot, shard-parallel routing, net-order merge at the barrier.
  /// Nothing observable mutates before the barrier, so a cancelled or
  /// failed round leaves the session exactly at the previous boundary —
  /// no rollback needed — and results are bit-identical at any thread and
  /// shard count.
  Status route_round_sharded(int round, int target_rounds,
                             const RunControl& control,
                             const detail::EventFan& fan) {
    const std::size_t num_nets = netlist.nets.size();
    const SolveControls controls = detail::make_solve_controls(control);

    // Shard map is a pure function of (grid, netlist, shards); rebuild only
    // when the shard count changes (set_options may do that mid-session).
    if (shard_map.nets.empty() || shard_map_shards != options.shards) {
      shard_map = assign_nets_to_shards(grid, netlist, options.shards);
      shard_map_shards = options.shards;
    }

    // Freeze this round's price plane once: every net gathers window prices
    // from it instead of exponentiating utilization per window edge.
    costs.fill_edge_costs(round_costs);

    std::vector<OracleOutcome> outcomes(num_nets);
    Mutex progress_mu;
    std::size_t nets_done = 0;  // guarded by progress_mu (a local, so the
                                // guard is convention, not analysis-checked)

    const std::function<void(std::size_t)> route_shard =
        [&](std::size_t sh) {
          const std::vector<std::uint32_t>& mine = shard_map.nets[sh];
          // One exclusion map per shard task, recycled across its nets.
          SparseMap<double> excluded;
          for (const std::uint32_t i : mine) {
            const Net& net = netlist.nets[i];
            if (net.sinks.empty()) continue;
            if (controls.cancel != nullptr &&
                controls.cancel->load(std::memory_order_relaxed)) {
              // cdst-lint: allow(api-throw) internal unwind: caught at the
              // parallel_for boundary below and mapped to kCancelled.
              throw SolveCancelled();
            }
            // The net prices against the snapshot minus its own committed
            // usage — the snapshot-world equivalent of ripping it up.
            excluded.clear();
            for (const EdgeId e : routes[i]) {
              const RoutingGrid::EdgeInfo& info = grid.edge_info(e);
              excluded[info.resource] += info.width;
            }
            const RoundPricing pricing{
                round_costs, routes[i].empty() ? nullptr : &excluded};
            outcomes[i] = route_one_net(i, round, &pricing, controls);
          }
          if (fan.active()) {
            // Serialized shard boundary: sinks need not be thread-safe and
            // nets_done is monotonic across events.
            MutexLock lock(progress_mu);
            nets_done += mine.size();
            const ShardTile tile =
                shard_tile(shard_map.tiles, static_cast<int>(sh));
            RouterShardEvent event;
            event.round = round;
            event.target_round = target_rounds;
            event.shard = static_cast<int>(sh);
            event.shards = shard_map.tiles.num_shards();
            event.tile_x = tile.tx;
            event.tile_y = tile.ty;
            event.shard_nets = mine.size();
            event.nets_done = nets_done;
            event.nets_total = num_nets;
            fan.emit_router_shard(event);
          }
        };
    try {
      pool->parallel_for(0, shard_map.nets.size(), route_shard);
    } catch (const SolveCancelled&) {
      return Status::Cancelled(
          "router run cancelled during a sharded round; committed state "
          "unchanged");
    }

    // Round barrier: merge every shard's deltas in net order. The serial
    // net-order commit makes the accumulated usage bit-identical regardless
    // of how many shards (or threads) produced the outcomes.
    for (std::size_t i = 0; i < num_nets; ++i) {
      const Net& net = netlist.nets[i];
      if (net.sinks.empty()) continue;
      if (!routes[i].empty()) costs.add_usage(routes[i], -1.0);
      OracleOutcome& out = outcomes[i];
      costs.add_usage(out.grid_edges, +1.0);
      routes[i] = std::move(out.grid_edges);
      for (std::size_t s = 0; s < net.sinks.size(); ++s) {
        sink_delays[sink_offset[i] + s] = out.eval.sink_delays[s];
      }
    }
    round_nets_committed = num_nets;
    return Status::Ok();
  }

  /// The legacy batched round discipline (RouterOptions::shards == 0).
  Status route_round_batched(int round, int target_rounds,
                             const RunControl& control,
                             const detail::EventFan& fan) {
    const std::size_t num_nets = netlist.nets.size();
    const std::size_t batch =
        static_cast<std::size_t>(std::max(1, options.batch_size));
    const SolveControls controls = detail::make_solve_controls(control);

    for (std::size_t lo = 0; lo < num_nets; lo += batch) {
      const std::size_t hi = std::min(num_nets, lo + batch);
      if (control.cancel != nullptr && control.cancel->cancelled()) {
        return Status::Cancelled("router run cancelled at a batch boundary");
      }
      // Rip up the whole batch so its nets price edges without their own
      // (or each other's previous) usage, then route against the frozen
      // snapshot — in parallel when the pool has workers.
      for (std::size_t i = lo; i < hi; ++i) {
        if (!routes[i].empty()) costs.add_usage(routes[i], -1.0);
      }
      std::vector<OracleOutcome> outcomes(hi - lo);
      const std::function<void(std::size_t)> route_one =
          [&](std::size_t i) {
            if (netlist.nets[i].sinks.empty()) return;
            if (controls.cancel != nullptr &&
                controls.cancel->load(std::memory_order_relaxed)) {
              // cdst-lint: allow(api-throw) internal unwind: caught at the
              // parallel_for boundary below and mapped to kCancelled.
              throw SolveCancelled();
            }
            outcomes[i - lo] =
                route_one_net(i, round, /*pricing=*/nullptr, controls);
          };
      try {
        pool->parallel_for(lo, hi, route_one);
      } catch (...) {
        // Restore the batch's pre-rip-up routes so the session stays a
        // coherent snapshot, whatever unwound the batch.
        for (std::size_t i = lo; i < hi; ++i) {
          if (!routes[i].empty()) costs.add_usage(routes[i], +1.0);
        }
        try {
          throw;
        } catch (const SolveCancelled&) {
          return Status::Cancelled(
              "router run cancelled mid-batch; batch rolled back");
        }
        // Anything else propagates to run()'s status mapping.
      }
      for (std::size_t i = lo; i < hi; ++i) {
        const Net& net = netlist.nets[i];
        if (net.sinks.empty()) continue;
        OracleOutcome& out = outcomes[i - lo];
        costs.add_usage(out.grid_edges, +1.0);
        routes[i] = std::move(out.grid_edges);
        for (std::size_t s = 0; s < net.sinks.size(); ++s) {
          sink_delays[sink_offset[i] + s] = out.eval.sink_delays[s];
        }
      }
      round_nets_committed = hi;
      if (fan.active()) {
        // Batch boundary inside the round (not the barrier: later batches
        // of this round are still outstanding, so no congestion stats yet).
        RouterRoundEvent event;
        event.round = round;
        event.target_round = target_rounds;
        event.nets_done = hi;
        event.nets_total = num_nets;
        fan.emit_router_round(event);
      }
    }
    return Status::Ok();
  }

  /// Metrics are recomputed from committed state; `take` additionally moves
  /// the bulky per-net vectors out (ending the session's routing state)
  /// instead of copying them.
  RouterResult result(bool take) {
    RouterResult r;
    r.timing = summarize_slacks(compute_slacks(sink_delays, rats));
    r.congestion = compute_ace(costs);
    r.wires = compute_wire_stats(grid, routes);
    r.walltime_s = walltime_s;
    r.nets_routed = netlist.nets.size();
    if (take) {
      r.routes = std::move(routes);
      r.sink_delays = std::move(sink_delays);
      r.sink_weights = std::move(sink_weights);
    } else {
      r.routes = routes;
      r.sink_delays = sink_delays;
      r.sink_weights = sink_weights;
    }
    return r;
  }

  const RoutingGrid& grid;
  const Netlist& netlist;
  RouterOptions options;
  CongestionCosts costs;
  /// One atomic dense-state pool shared by every concurrent oracle lane of
  /// this session (sized from options.oracle.cd.dense_state_budget_bytes).
  DenseStateBudget dense_budget;
  ThreadPool* pool{nullptr};
  std::unique_ptr<ThreadPool> owned_pool;
  detail::SolverScratchPool scratch;

  // Sharded-round state: the net partition (rebuilt when the shard count
  // changes) and the recycled per-round price snapshot.
  ShardMap shard_map;
  int shard_map_shards{0};
  std::vector<double> round_costs;

  std::vector<std::size_t> sink_offset;
  std::vector<double> rats;
  std::vector<double> sink_weights;
  std::vector<double> sink_delays;
  std::vector<std::vector<EdgeId>> routes;
  int rounds_done{0};
  int weights_round{0};  ///< last absolute round the multipliers stepped for
  /// Nets of the in-progress round already merged into committed state
  /// (batched rounds commit per batch; sharded rounds all-at-once at the
  /// barrier). Feeds the round/cancellation summary events.
  std::size_t round_nets_committed{0};
  double walltime_s{0.0};
};

Router::Router(const RoutingGrid& grid, const Netlist& netlist,
               const RouterOptions& options, ThreadPool* pool)
    : impl_(std::make_unique<Impl>(grid, netlist, options, pool)) {}

Router::~Router() = default;
Router::Router(Router&&) noexcept = default;
Router& Router::operator=(Router&&) noexcept = default;

Status Router::run(int rounds, const RunControl& control) {
  return impl_->run(rounds, control);
}

RouterResult Router::result() const { return impl_->result(/*take=*/false); }

RouterResult Router::take_result() && { return impl_->result(/*take=*/true); }

int Router::rounds_completed() const { return impl_->rounds_done; }

const RouterOptions& Router::options() const { return impl_->options; }

Status Router::set_options(const RouterOptions& options) {
  if (options.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (options.shards < 0) {
    return Status::InvalidArgument("shards must be >= 0");
  }
  Impl& impl = *impl_;
  const int old_threads = impl.options.threads;
  impl.options = options;
  // No solves are in flight between runs, so re-sizing the shared
  // dense-state pool is safe; the shard map lazily rebuilds when the shard
  // count changed (route_round_sharded compares shard_map_shards).
  impl.dense_budget.reset(options.oracle.cd.dense_state_budget_bytes);
  // Re-price the committed usage under the (possibly changed) congestion
  // parameters; usage itself — and hence the warm state — is preserved.
  impl.costs = CongestionCosts(impl.grid, options.congestion);
  for (const auto& route : impl.routes) {
    if (!route.empty()) impl.costs.add_usage(route, +1.0);
  }
  if (impl.owned_pool != nullptr && options.threads != old_threads) {
    impl.owned_pool =
        std::make_unique<ThreadPool>(std::max(1, options.threads));
    impl.pool = impl.owned_pool.get();
  }
  return Status::Ok();
}

const std::vector<double>& Router::sink_weights() const {
  return impl_->sink_weights;
}

const std::vector<double>& Router::sink_delays() const {
  return impl_->sink_delays;
}

// Legacy one-shot wrapper (declared deprecated in route/router.h).
RouterResult route_chip(const RoutingGrid& grid, const Netlist& netlist,
                        const RouterOptions& options) {
  CDST_CHECK(options.iterations >= 1);
  Router session(grid, netlist, options);
  const Status status = session.run(options.iterations);
  // cdst-lint: allow(api-throw) deprecated legacy wrapper: route_chip's
  // documented contract predates the Status discipline and throws.
  if (!status.ok()) throw ContractViolation(status.to_string());
  // Move the routes out — matches the zero-copy cost of the pre-session
  // implementation, which built its result vectors in place.
  return std::move(session).take_result();
}

}  // namespace cdst
