#include "api/router.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <span>
#include <string>
#include <utility>

#include "api/events.h"
#include "api/scratch_pool.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "route/sharding.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/wire.h"

namespace cdst {
namespace {

// Checkpoint wire format: the shared little-endian discipline of util/wire.h
// with a custom body layout (all four counts up front, then the payloads) —
// kept bit-for-bit compatible with the version-1 bytes of earlier builds.

constexpr std::uint32_t kCheckpointMagic = 0x43445354;  // "CDST"
constexpr std::uint32_t kCheckpointVersion = 1;

/// Internal unwind of one failed ShardTransport dispatch inside the sharded
/// round's fan-out. Caught at the retry loop, emitted as a "dist.transport"
/// FaultEvent, then either retried (kUnavailable) or surfaced as the
/// carried status.
struct TransportDispatchError {
  Status status;
};

}  // namespace

std::vector<std::uint8_t> RouterCheckpoint::to_bytes() const {
  std::vector<std::uint8_t> out;
  out.reserve(48 + route_offsets.size() * 8 + route_edges.size() * 4 +
              sink_weights.size() * 8 + sink_delays.size() * 8);
  wire::put_header(out, kCheckpointMagic, kCheckpointVersion);
  wire::put_u64(out, options_seed);
  wire::put_u32(out, static_cast<std::uint32_t>(rounds_done));
  wire::put_u32(out, static_cast<std::uint32_t>(weights_round));
  wire::put_u64(out, route_offsets.size());
  wire::put_u64(out, route_edges.size());
  wire::put_u64(out, sink_weights.size());
  wire::put_u64(out, sink_delays.size());
  for (const std::uint64_t v : route_offsets) wire::put_u64(out, v);
  for (const std::uint32_t v : route_edges) wire::put_u32(out, v);
  for (const double v : sink_weights) wire::put_f64(out, v);
  for (const double v : sink_delays) wire::put_f64(out, v);
  return out;
}

StatusOr<RouterCheckpoint> RouterCheckpoint::from_bytes(
    std::span<const std::uint8_t> bytes) {
  wire::Reader r{bytes};
  switch (wire::expect_header(r, kCheckpointMagic, kCheckpointVersion)) {
    case wire::HeaderCheck::kBadMagic:
      return Status::InvalidArgument("checkpoint: bad magic");
    case wire::HeaderCheck::kBadVersion:
      return Status::InvalidArgument("checkpoint: unsupported version");
    case wire::HeaderCheck::kOk:
      break;
  }
  RouterCheckpoint cp;
  cp.options_seed = r.u64();
  cp.rounds_done = static_cast<std::int32_t>(r.u32());
  cp.weights_round = static_cast<std::int32_t>(r.u32());
  const std::uint64_t n_offsets = r.u64();
  const std::uint64_t n_edges = r.u64();
  const std::uint64_t n_weights = r.u64();
  const std::uint64_t n_delays = r.u64();
  // The counts came from untrusted bytes: check each against the remaining
  // payload before any resize (per-count via Reader::fits, so the sum cannot
  // overflow), so a corrupt header can neither drive a huge allocation nor
  // wrap the check. The exact-sum test pins the layout: all four payloads,
  // nothing else, must account for every remaining byte.
  if (!r.ok || !r.fits(n_offsets, 8) || !r.fits(n_edges, 4) ||
      !r.fits(n_weights, 8) || !r.fits(n_delays, 8) ||
      n_offsets * 8 + n_edges * 4 + n_weights * 8 + n_delays * 8 !=
          r.remaining()) {
    return Status::InvalidArgument("checkpoint: truncated");
  }
  cp.route_offsets.resize(n_offsets);
  for (std::uint64_t i = 0; i < n_offsets; ++i) {
    cp.route_offsets[i] = r.u64();
  }
  cp.route_edges.resize(n_edges);
  for (std::uint64_t i = 0; i < n_edges; ++i) cp.route_edges[i] = r.u32();
  cp.sink_weights.resize(n_weights);
  for (std::uint64_t i = 0; i < n_weights; ++i) cp.sink_weights[i] = r.f64();
  cp.sink_delays.resize(n_delays);
  for (std::uint64_t i = 0; i < n_delays; ++i) cp.sink_delays[i] = r.f64();
  if (!r.ok || r.pos != bytes.size()) {
    return Status::InvalidArgument("checkpoint: truncated or trailing bytes");
  }
  return cp;
}

struct Router::Impl {
  Impl(const RoutingGrid& grid_in, const Netlist& netlist_in,
       const RouterOptions& options_in, ThreadPool* shared_pool)
      : grid(grid_in),
        netlist(netlist_in),
        options(options_in),
        costs(grid_in, options_in.congestion),
        dense_budget(options_in.oracle.cd.dense_state_budget_bytes),
        pool(shared_pool) {
    if (pool == nullptr) {
      owned_pool =
          std::make_unique<ThreadPool>(std::max(1, options.threads));
      pool = owned_pool.get();
    }

    const std::size_t num_nets = netlist.nets.size();
    sink_offset.assign(num_nets + 1, 0);
    for (std::size_t i = 0; i < num_nets; ++i) {
      sink_offset[i + 1] = sink_offset[i] + netlist.nets[i].sinks.size();
    }
    const std::size_t num_sinks = sink_offset[num_nets];

    routes.assign(num_nets, {});
    sink_delays.assign(num_sinks, 0.0);
    sink_weights.assign(num_sinks, options.weight_floor);

    // Seed the Lagrange multipliers from RAT criticality: a sink whose
    // budget is close to its ideal (fastest-possible) delay starts with a
    // high delay weight, so the very first routing round already trades
    // congestion against timing sensibly instead of waiting for multiplier
    // ramp-up.
    rats.assign(num_sinks, 0.0);
    for (std::size_t i = 0; i < num_nets; ++i) {
      const Net& net = netlist.nets[i];
      for (std::size_t s = 0; s < net.sinks.size(); ++s) {
        const std::size_t flat = sink_offset[i] + s;
        rats[flat] = net.sinks[s].rat;
        const double ideal =
            grid.min_unit_delay() *
                static_cast<double>(
                    l1_distance(net.source, net.sinks[s].pos)) +
            2.0 * grid.min_via_delay();
        if (rats[flat] > 0.0 && ideal > 0.0) {
          const double criticality = ideal / rats[flat];  // <= 1 if feasible
          sink_weights[flat] = std::clamp(
              options.weight_init_scale * criticality * criticality,
              options.weight_floor, options.weight_ceiling);
        }
      }
    }
  }

  /// Fills a round event's congestion fields from the committed usage.
  void fill_congestion(RouterRoundEvent& event) const {
    const CongestionReport report = compute_ace(costs);
    event.ace4 = report.ace4;
    event.max_utilization = report.max_utilization;
    event.overfull_edges = report.overfull_edges;
  }

  /// Final summary of a cancelled (or deadline-expired) run(): observers
  /// see the round the unwind stopped at (not yet counted by rounds_done)
  /// plus how much of it the committed state kept, so a monitoring pipeline
  /// never loses track of where a session stands after an early return.
  void emit_cancel_summary(const detail::EventFan& fan, int target) {
    if (!fan.active()) return;
    RouterRoundEvent event;
    event.round = rounds_done;
    event.target_round = target;
    event.nets_done = round_nets_committed;
    event.nets_total = netlist.nets.size();
    event.cancelled = true;
    fill_congestion(event);
    fan.emit_router_round(event);
  }

  Status run(int rounds, const RunControl& control) {
    if (rounds < 0) return Status::InvalidArgument("rounds must be >= 0");
    if (rounds == 0) return Status::Ok();
    WallTimer timer;
    // Session walltime covers every run() path, including early returns.
    struct TimeAcc {
      WallTimer& timer;
      double& acc;
      ~TimeAcc() { acc += timer.seconds(); }
    } time_acc{timer, walltime_s};

    const detail::EventFan fan(control);
    try {
      const int target = rounds_done + rounds;
      while (rounds_done < target) {
        round_nets_committed = 0;
        if (control.cancel != nullptr && control.cancel->cancelled()) {
          emit_cancel_summary(fan, target);
          return Status::Cancelled("router run cancelled");
        }
        if (detail::deadline_expired(control)) {
          emit_cancel_summary(fan, target);
          return detail::deadline_exceeded_status(
              "router run deadline expired at a round boundary");
        }
        // Lagrangean step at the round boundary: slacks of the committed
        // routes drive the delay-weight multipliers of this round. Guarded
        // per absolute round so a cancel/resume cycle never double-steps
        // the multipliers. The decreasing subgradient step stabilizes them.
        if (rounds_done > 0 && weights_round != rounds_done) {
          const std::vector<double> slacks =
              compute_slacks(sink_delays, rats);
          const double step =
              1.0 / std::sqrt(static_cast<double>(rounds_done));
          update_delay_weights(slacks, options.weight_scale,
                               options.weight_floor, options.weight_ceiling,
                               sink_weights, step);
          weights_round = rounds_done;
        }
        const Status st = route_round(rounds_done, target, control, fan);
        if (!st.ok()) {
          if (st.code() == StatusCode::kCancelled ||
              st.code() == StatusCode::kDeadlineExceeded) {
            emit_cancel_summary(fan, target);
          }
          return Status::Annotate(st, "Router::run");
        }
        if (fan.active()) {
          // Round barrier: every update of the round is committed.
          RouterRoundEvent event;
          event.round = rounds_done;
          event.target_round = target;
          event.nets_done = round_nets_committed;
          event.nets_total = netlist.nets.size();
          event.round_complete = true;
          fill_congestion(event);
          fan.emit_router_round(event);
        }
        ++rounds_done;
        if (options.verbose) {
          const TimingSummary ts =
              summarize_slacks(compute_slacks(sink_delays, rats));
          CDST_LOG(kInfo) << netlist.name << " "
                          << method_name(options.method) << " iter "
                          << (rounds_done - 1) << ": WS " << ts.worst_slack
                          << " TNS " << ts.total_negative_slack << " ACE4 "
                          << compute_ace(costs).ace4;
        }
      }
      return Status::Ok();
    } catch (const SolveDeadlineExceeded& e) {
      return detail::deadline_exceeded_status(e.what());
    } catch (const BudgetExhausted& e) {
      // Only reachable with SolverOptions::strict_shared_budget set; the
      // unwound round never touched committed state.
      return detail::resource_exhausted_status(e.what());
    } catch (const InjectedFault& e) {
      return Status::Unavailable(e.what());
    } catch (const ContractViolation& e) {
      return Status::InvalidArgument(e.what());
    } catch (const std::exception& e) {
      return Status::Internal(e.what());
    }
  }

  Status route_round(int round, int target_rounds, const RunControl& control,
                     const detail::EventFan& fan) {
    return options.shards > 0
               ? route_round_sharded(round, target_rounds, control, fan)
               : route_round_batched(round, target_rounds, control, fan);
  }

  /// Materializes and solves one net's oracle instance — the one place the
  /// per-net seed derivation, sink-weight view, dense-budget injection and
  /// scratch lease live, so the batched and sharded disciplines cannot
  /// drift apart. `pricing` null = live congestion prices (batched path);
  /// otherwise the round's frozen snapshot (sharded path).
  OracleOutcome route_one_net(std::size_t i, int round,
                              const RoundPricing* pricing,
                              const SolveControls& controls) {
    const Net& net = netlist.nets[i];
    // The weights view borrows from sink_weights, which only changes
    // between rounds — never while nets are in flight.
    const std::span<const double> weights(
        sink_weights.data() + sink_offset[i],
        sink_offset[i + 1] - sink_offset[i]);
    OracleParams p = options.oracle;
    p.seed = net_round_seed(options.seed, net.id, round);
    if (p.cd.shared_dense_budget == nullptr) {
      p.cd.shared_dense_budget = &dense_budget;
    }
    const detail::SolverScratchPool::Lease lease = scratch.lease();
    const OracleInstance oi(grid, costs, net, weights, p, pricing);
    return run_method(oi, options.method, p, lease.get(), &controls);
  }

  /// The transport's round-invariant world: everything a shard worker needs
  /// to rebuild this session's grid and oracle bit-identically. Pointer
  /// knobs never cross the wire (dist/wire.h); executors install
  /// per-process equivalents, which cannot change results.
  dist::WorkerSetupMsg make_worker_setup() const {
    dist::WorkerSetupMsg setup;
    setup.nx = grid.nx();
    setup.ny = grid.ny();
    setup.layers = grid.layers();
    setup.via = grid.via();
    setup.netlist = netlist;
    setup.method = options.method;
    setup.oracle = options.oracle;
    setup.oracle.cd.future_cost = nullptr;
    setup.oracle.cd.shared_dense_budget = nullptr;
    setup.congestion = options.congestion;
    setup.options_seed = options.seed;
    return setup;
  }

  /// Packs one shard's round inputs for a transport dispatch: per net the
  /// sink-weight slice, the committed route, and the frozen usage of that
  /// route's distinct resources (sorted by resource id), so the remote
  /// executor prices exactly as route_one_net does against the snapshot.
  dist::ShardWorkMsg make_shard_work(std::size_t sh, int round) const {
    dist::ShardWorkMsg work;
    work.round = round;
    work.shard = static_cast<std::int32_t>(sh);
    work.shards = shard_map.tiles.num_shards();
    work.tile = shard_tile(shard_map.tiles, static_cast<int>(sh));
    work.nets.reserve(shard_map.nets[sh].size());
    for (const std::uint32_t i : shard_map.nets[sh]) {
      const Net& net = netlist.nets[i];
      if (net.sinks.empty()) continue;  // skipped at the merge too
      dist::ShardWorkMsg::NetWork nw;
      nw.net = i;
      nw.sink_weights.assign(
          sink_weights.begin() + static_cast<std::ptrdiff_t>(sink_offset[i]),
          sink_weights.begin() +
              static_cast<std::ptrdiff_t>(sink_offset[i + 1]));
      nw.route_edges = routes[i];
      nw.resources.reserve(routes[i].size());
      for (const EdgeId e : routes[i]) {
        nw.resources.push_back(grid.edge_info(e).resource);
      }
      std::sort(nw.resources.begin(), nw.resources.end());
      nw.resources.erase(
          std::unique(nw.resources.begin(), nw.resources.end()),
          nw.resources.end());
      nw.usage.reserve(nw.resources.size());
      for (const ResourceId r : nw.resources) {
        nw.usage.push_back(costs.usage(r));
      }
      work.nets.push_back(std::move(nw));
    }
    return work;
  }

  /// Validates a transport's reply against the work it answers and moves
  /// the deltas into the round's outcome slots. Any mismatch means a
  /// misbehaving transport or executor: kInternal, never retried.
  Status apply_shard_result(const dist::ShardWorkMsg& work,
                            dist::ShardResultMsg& result,
                            std::vector<OracleOutcome>& outcomes) const {
    if (result.round != work.round || result.shard != work.shard) {
      return Status::Internal(
          "shard result does not answer the dispatched work");
    }
    if (result.nets.size() != work.nets.size()) {
      return Status::Internal("shard result net count mismatch");
    }
    const std::size_t num_edges = grid.graph().num_edges();
    for (std::size_t k = 0; k < result.nets.size(); ++k) {
      dist::ShardResultMsg::NetResult& nr = result.nets[k];
      const std::uint32_t i = work.nets[k].net;
      if (nr.net != i) {
        return Status::Internal("shard result net order mismatch");
      }
      if (nr.sink_delays.size() != netlist.nets[i].sinks.size()) {
        return Status::Internal("shard result sink-delay count mismatch");
      }
      for (const std::uint32_t e : nr.route_edges) {
        if (e >= num_edges) {
          return Status::Internal("shard result route edge out of range");
        }
      }
      outcomes[i].grid_edges = std::move(nr.route_edges);
      outcomes[i].eval.sink_delays = std::move(nr.sink_delays);
    }
    return Status::Ok();
  }

  /// One spatially sharded round (RouterOptions::shards): frozen price
  /// snapshot, shard-parallel routing, net-order merge at the barrier.
  /// Nothing observable mutates before the barrier, so a cancelled or
  /// failed round leaves the session exactly at the previous boundary —
  /// no rollback needed — and results are bit-identical at any thread and
  /// shard count.
  Status route_round_sharded(int round, int target_rounds,
                             const RunControl& control,
                             const detail::EventFan& fan) {
    const std::size_t num_nets = netlist.nets.size();
    const SolveControls controls = detail::make_solve_controls(control);

    // Shard map is a pure function of (grid, netlist, shards); rebuild only
    // when the shard count changes (set_options may do that mid-session).
    if (shard_map.nets.empty() || shard_map_shards != options.shards) {
      shard_map = assign_nets_to_shards(grid, netlist, options.shards);
      shard_map_shards = options.shards;
    }

    // Freeze this round's price plane once: every net gathers window prices
    // from it instead of exponentiating utilization per window edge.
    costs.fill_edge_costs(round_costs);

    // With a transport installed, send the round-invariant world once (and
    // again after set_options) and publish this round's frozen price plane.
    // Nothing has been dispatched yet, so failures here are round-level and
    // surface directly instead of entering the shard retry loop.
    dist::ShardTransport* const transport = options.transport;
    if (transport != nullptr) {
      if (configured_transport != transport) {
        if (Status st = transport->configure(make_worker_setup());
            !st.ok()) {
          return Status::Annotate(st, "shard transport configure failed");
        }
        configured_transport = transport;
      }
      dist::PriceSnapshotMsg snapshot;
      snapshot.round = round;
      snapshot.edge_costs = round_costs;
      if (Status st = transport->begin_round(snapshot); !st.ok()) {
        return Status::Annotate(st, "shard transport begin_round failed");
      }
    }

    std::vector<OracleOutcome> outcomes(num_nets);
    Mutex progress_mu;
    std::size_t nets_done = 0;  // guarded by progress_mu (a local, so the
                                // guard is convention, not analysis-checked)
    // Shards the current attempt completed. A faulted attempt leaves its
    // incomplete shards unmarked; the retry re-executes exactly those.
    // Re-execution is safe because a shard's outcomes are a pure function
    // of the frozen round inputs (snapshot prices, committed routes,
    // per-net seeds), so a retried round is bit-identical to a fault-free
    // one — the net-order merge below never sees the difference.
    std::vector<std::uint8_t> shard_done(shard_map.nets.size(), 0);

    // Routes nets mine[b, e) of shard sh against the frozen snapshot —
    // shared by the static whole-shard tasks and the work-stealing lanes.
    // `excluded` is caller-recycled scratch (one per worker, cleared per
    // net).
    const auto route_net_span = [&](std::size_t sh, std::uint32_t b,
                                    std::uint32_t e,
                                    SparseMap<double>& excluded) {
      const std::vector<std::uint32_t>& mine = shard_map.nets[sh];
      for (std::uint32_t k = b; k < e; ++k) {
        const std::uint32_t i = mine[k];
        const Net& net = netlist.nets[i];
        if (net.sinks.empty()) continue;
        if (controls.cancel != nullptr &&
            controls.cancel->load(std::memory_order_relaxed)) {
          // cdst-lint: allow(api-throw) internal unwind: caught at the
          // fan-out boundary below, mapped to kCancelled.
          throw SolveCancelled();
        }
        throw_if_deadline_expired(&controls);
        // The net prices against the snapshot minus its own committed
        // usage — the snapshot-world equivalent of ripping it up.
        excluded.clear();
        for (const EdgeId ge : routes[i]) {
          const RoutingGrid::EdgeInfo& info = grid.edge_info(ge);
          excluded[info.resource] += info.width;
        }
        const RoundPricing pricing{round_costs,
                                   routes[i].empty() ? nullptr : &excluded};
        outcomes[i] = route_one_net(i, round, &pricing, controls);
      }
    };

    // Serialized shard boundary: sinks need not be thread-safe and
    // nets_done is monotonic across events.
    const auto emit_shard_event = [&](std::size_t sh, double dispatch_seconds,
                                      std::size_t stolen_nets,
                                      std::size_t steal_waits) {
      MutexLock lock(progress_mu);
      nets_done += shard_map.nets[sh].size();
      const ShardTile tile =
          shard_tile(shard_map.tiles, static_cast<int>(sh));
      RouterShardEvent event;
      event.round = round;
      event.target_round = target_rounds;
      event.shard = static_cast<int>(sh);
      event.shards = shard_map.tiles.num_shards();
      event.tile_x = tile.tx;
      event.tile_y = tile.ty;
      event.shard_nets = shard_map.nets[sh].size();
      event.nets_done = nets_done;
      event.nets_total = num_nets;
      event.dispatch_seconds = dispatch_seconds;
      event.stolen_nets = stolen_nets;
      event.steal_waits = steal_waits;
      fan.emit_router_shard(event);
    };

    const std::function<void(std::size_t)> route_shard =
        [&](std::size_t sh) {
          if (shard_done[sh] != 0) return;
          CDST_FAULT_POINT("router.shard");
          const std::vector<std::uint32_t>& mine = shard_map.nets[sh];
          double dispatch_seconds = 0.0;
          if (transport != nullptr) {
            if (controls.cancel != nullptr &&
                controls.cancel->load(std::memory_order_relaxed)) {
              // cdst-lint: allow(api-throw) internal unwind: caught at the
              // parallel_for boundary below and mapped to kCancelled.
              throw SolveCancelled();
            }
            throw_if_deadline_expired(&controls);
            const dist::ShardWorkMsg work = make_shard_work(sh, round);
            WallTimer dispatch_timer;
            StatusOr<dist::ShardResultMsg> result =
                transport->dispatch(work);
            dispatch_seconds = dispatch_timer.seconds();
            Status st = result.ok()
                            ? apply_shard_result(work, *result, outcomes)
                            : result.status();
            if (!st.ok()) {
              // cdst-lint: allow(api-throw) internal unwind: caught at the
              // retry loop below, emitted as a "dist.transport" FaultEvent.
              throw TransportDispatchError{std::move(st)};
            }
          } else {
            // One exclusion map per shard task, recycled across its nets.
            SparseMap<double> excluded;
            route_net_span(sh, 0, static_cast<std::uint32_t>(mine.size()),
                           excluded);
          }
          if (fan.active()) {
            emit_shard_event(sh, dispatch_seconds, /*stolen_nets=*/0,
                             /*steal_waits=*/0);
          }
          shard_done[sh] = 1;
        };

    // Work-stealing lane over the ShardStealSchedule: claims whole shards
    // (owner phase), drains each in spans, then steals spans from
    // unfinished shards. Whichever lane routes a shard's last span owns its
    // completion event. The schedule only reorders execution — every net is
    // claimed exactly once and commits into outcomes[] by net index — so
    // results are bit-identical to the static route_shard path.
    const auto steal_lane = [&](ShardStealSchedule& sched) {
      SparseMap<double> excluded;
      std::vector<ShardStealSchedule::Span> lifo;
      const auto route_spans = [&] {
        while (!lifo.empty()) {
          const ShardStealSchedule::Span s = lifo.back();
          lifo.pop_back();
          const auto sh = static_cast<std::size_t>(s.shard);
          route_net_span(sh, s.begin, s.end, excluded);
          if (sched.complete(s)) {
            if (fan.active()) {
              emit_shard_event(sh, /*dispatch_seconds=*/0.0,
                               sched.stolen_nets(s.shard),
                               sched.steal_waits(s.shard));
            }
            shard_done[sh] = 1;
          }
        }
      };
      for (int sh = sched.claim_shard(); sh >= 0; sh = sched.claim_shard()) {
        CDST_FAULT_POINT("router.shard");
        for (;;) {
          const ShardStealSchedule::Span s =
              sched.take_span(sh, /*stolen=*/false);
          if (!s.valid()) break;
          lifo.push_back(s);
          // Claim-ahead: a second span per cursor visit halves the hot
          // cursor's traffic; the LIFO pop keeps spans cache-warm.
          const ShardStealSchedule::Span t =
              sched.take_span(sh, /*stolen=*/false);
          if (t.valid()) lifo.push_back(t);
          route_spans();
        }
      }
      for (ShardStealSchedule::Span s = sched.steal_span(); s.valid();
           s = sched.steal_span()) {
        lifo.push_back(s);
        route_spans();
      }
    };
    // Bounded retry around the shard fan-out: a retryable (injected or
    // transient) fault fails only the shards it interrupted; those
    // re-execute serially on the next attempt while completed shards are
    // skipped via shard_done, never re-emitting their shard events.
    // Cancellation and deadlines are not retried — they unwind to the
    // previous round boundary as before. BudgetExhausted deliberately
    // propagates to run()'s status mapping (retrying could not help: the
    // footprint exceeds the whole budget).
    constexpr int kMaxShardAttempts = 3;
    // Stealing is an in-process executor policy: transport dispatch keeps
    // whole shards as its work unit, and retries re-execute serially.
    const bool stealing = transport == nullptr && options.shard_stealing;
    for (int attempt = 1;; ++attempt) {
      try {
        if (attempt == 1 && stealing) {
          ShardStealSchedule sched(shard_map, shard_done);
          pool->parallel_for(
              0, static_cast<std::size_t>(pool->concurrency()),
              [&](std::size_t) { steal_lane(sched); });
        } else if (attempt == 1) {
          pool->parallel_for(0, shard_map.nets.size(), route_shard);
        } else {
          for (std::size_t sh = 0; sh < shard_map.nets.size(); ++sh) {
            route_shard(sh);
          }
        }
        break;
      } catch (const SolveCancelled&) {
        return Status::Cancelled(
            "router run cancelled during a sharded round; committed state "
            "unchanged");
      } catch (const SolveDeadlineExceeded&) {
        return detail::deadline_exceeded_status(
            "router run deadline expired during a sharded round; committed "
            "state unchanged");
      } catch (const InjectedFault& e) {
        const bool retrying = attempt < kMaxShardAttempts;
        if (fan.active()) {
          FaultEvent event;
          event.stage = "router_shard";
          event.round = round;
          event.attempt = attempt;
          event.retrying = retrying;
          event.status = StatusCode::kUnavailable;
          fan.emit_fault(event);
        }
        if (!retrying) {
          return Status::Unavailable(
              std::string("sharded round gave up after 3 attempts: ") +
              e.what());
        }
      } catch (const TransportDispatchError& e) {
        // A failed ShardTransport dispatch. kUnavailable is the transport's
        // transient class (dead worker, broken pipe, injected fault at
        // "dist.transport") and re-executes the unfinished shards — on the
        // transport again, which respawns dead workers on the next
        // dispatch. Everything else (malformed replies, typed worker
        // errors) fails the round immediately.
        const bool retryable =
            e.status.code() == StatusCode::kUnavailable;
        const bool retrying = retryable && attempt < kMaxShardAttempts;
        if (fan.active()) {
          FaultEvent event;
          event.stage = "dist.transport";
          event.round = round;
          event.attempt = attempt;
          event.retrying = retrying;
          event.status = e.status.code();
          fan.emit_fault(event);
        }
        if (!retryable) {
          return Status::Annotate(e.status,
                                  "shard transport dispatch failed");
        }
        if (!retrying) {
          return Status::Annotate(
              e.status, "sharded round gave up after 3 attempts");
        }
      }
    }

    // Round barrier: merge every shard's deltas in net order. The serial
    // net-order commit makes the accumulated usage bit-identical regardless
    // of how many shards (or threads) produced the outcomes.
    for (std::size_t i = 0; i < num_nets; ++i) {
      const Net& net = netlist.nets[i];
      if (net.sinks.empty()) continue;
      if (!routes[i].empty()) costs.add_usage(routes[i], -1.0);
      OracleOutcome& out = outcomes[i];
      costs.add_usage(out.grid_edges, +1.0);
      routes[i] = std::move(out.grid_edges);
      for (std::size_t s = 0; s < net.sinks.size(); ++s) {
        sink_delays[sink_offset[i] + s] = out.eval.sink_delays[s];
      }
    }
    round_nets_committed = num_nets;
    return Status::Ok();
  }

  /// The legacy batched round discipline (RouterOptions::shards == 0).
  Status route_round_batched(int round, int target_rounds,
                             const RunControl& control,
                             const detail::EventFan& fan) {
    const std::size_t num_nets = netlist.nets.size();
    const std::size_t batch =
        static_cast<std::size_t>(std::max(1, options.batch_size));
    const SolveControls controls = detail::make_solve_controls(control);

    for (std::size_t lo = 0; lo < num_nets; lo += batch) {
      const std::size_t hi = std::min(num_nets, lo + batch);
      if (control.cancel != nullptr && control.cancel->cancelled()) {
        return Status::Cancelled("router run cancelled at a batch boundary");
      }
      if (detail::deadline_expired(control)) {
        return detail::deadline_exceeded_status(
            "router run deadline expired at a batch boundary");
      }
      // Rip up the whole batch so its nets price edges without their own
      // (or each other's previous) usage, then route against the frozen
      // snapshot — in parallel when the pool has workers.
      for (std::size_t i = lo; i < hi; ++i) {
        if (!routes[i].empty()) costs.add_usage(routes[i], -1.0);
      }
      std::vector<OracleOutcome> outcomes(hi - lo);
      const std::function<void(std::size_t)> route_one =
          [&](std::size_t i) {
            if (netlist.nets[i].sinks.empty()) return;
            if (controls.cancel != nullptr &&
                controls.cancel->load(std::memory_order_relaxed)) {
              // cdst-lint: allow(api-throw) internal unwind: caught at the
              // parallel_for boundary below and mapped to kCancelled.
              throw SolveCancelled();
            }
            throw_if_deadline_expired(&controls);
            outcomes[i - lo] =
                route_one_net(i, round, /*pricing=*/nullptr, controls);
          };
      try {
        pool->parallel_for(lo, hi, route_one);
      } catch (...) {
        // Restore the batch's pre-rip-up routes so the session stays a
        // coherent snapshot, whatever unwound the batch.
        for (std::size_t i = lo; i < hi; ++i) {
          if (!routes[i].empty()) costs.add_usage(routes[i], +1.0);
        }
        try {
          throw;
        } catch (const SolveCancelled&) {
          return Status::Cancelled(
              "router run cancelled mid-batch; batch rolled back");
        } catch (const SolveDeadlineExceeded&) {
          return detail::deadline_exceeded_status(
              "router run deadline expired mid-batch; batch rolled back");
        } catch (const InjectedFault& e) {
          // The batched discipline has no retry (batches mutate committed
          // state in place); the batch is rolled back, so the session is
          // coherent and the caller may simply run() again.
          return Status::Unavailable(e.what());
        }
        // Anything else propagates to run()'s status mapping.
      }
      for (std::size_t i = lo; i < hi; ++i) {
        const Net& net = netlist.nets[i];
        if (net.sinks.empty()) continue;
        OracleOutcome& out = outcomes[i - lo];
        costs.add_usage(out.grid_edges, +1.0);
        routes[i] = std::move(out.grid_edges);
        for (std::size_t s = 0; s < net.sinks.size(); ++s) {
          sink_delays[sink_offset[i] + s] = out.eval.sink_delays[s];
        }
      }
      round_nets_committed = hi;
      if (fan.active()) {
        // Batch boundary inside the round (not the barrier: later batches
        // of this round are still outstanding, so no congestion stats yet).
        RouterRoundEvent event;
        event.round = round;
        event.target_round = target_rounds;
        event.nets_done = hi;
        event.nets_total = num_nets;
        fan.emit_router_round(event);
      }
    }
    return Status::Ok();
  }

  /// Metrics are recomputed from committed state; `take` additionally moves
  /// the bulky per-net vectors out (ending the session's routing state)
  /// instead of copying them.
  RouterResult result(bool take) {
    RouterResult r;
    r.timing = summarize_slacks(compute_slacks(sink_delays, rats));
    r.congestion = compute_ace(costs);
    r.wires = compute_wire_stats(grid, routes);
    r.walltime_s = walltime_s;
    r.nets_routed = netlist.nets.size();
    if (take) {
      r.routes = std::move(routes);
      r.sink_delays = std::move(sink_delays);
      r.sink_weights = std::move(sink_weights);
    } else {
      r.routes = routes;
      r.sink_delays = sink_delays;
      r.sink_weights = sink_weights;
    }
    return r;
  }

  const RoutingGrid& grid;
  const Netlist& netlist;
  RouterOptions options;
  CongestionCosts costs;
  /// One atomic dense-state pool shared by every concurrent oracle lane of
  /// this session (sized from options.oracle.cd.dense_state_budget_bytes).
  DenseStateBudget dense_budget;
  ThreadPool* pool{nullptr};
  std::unique_ptr<ThreadPool> owned_pool;
  detail::SolverScratchPool scratch;

  // Sharded-round state: the net partition (rebuilt when the shard count
  // changes) and the recycled per-round price snapshot.
  ShardMap shard_map;
  int shard_map_shards{0};
  std::vector<double> round_costs;
  /// The transport last configured with this session's world; set_options
  /// resets it so the next sharded round re-sends the setup.
  dist::ShardTransport* configured_transport{nullptr};

  std::vector<std::size_t> sink_offset;
  std::vector<double> rats;
  std::vector<double> sink_weights;
  std::vector<double> sink_delays;
  std::vector<std::vector<EdgeId>> routes;
  int rounds_done{0};
  int weights_round{0};  ///< last absolute round the multipliers stepped for
  /// Nets of the in-progress round already merged into committed state
  /// (batched rounds commit per batch; sharded rounds all-at-once at the
  /// barrier). Feeds the round/cancellation summary events.
  std::size_t round_nets_committed{0};
  double walltime_s{0.0};
};

Router::Router(const RoutingGrid& grid, const Netlist& netlist,
               const RouterOptions& options, ThreadPool* pool)
    : impl_(std::make_unique<Impl>(grid, netlist, options, pool)) {}

Router::~Router() = default;
Router::Router(Router&&) noexcept = default;
Router& Router::operator=(Router&&) noexcept = default;

Status Router::run(int rounds, const RunControl& control) {
  return impl_->run(rounds, control);
}

RouterResult Router::result() const { return impl_->result(/*take=*/false); }

RouterResult Router::take_result() && { return impl_->result(/*take=*/true); }

int Router::rounds_completed() const { return impl_->rounds_done; }

const RouterOptions& Router::options() const { return impl_->options; }

Status Router::set_options(const RouterOptions& options) {
  if (options.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (options.shards < 0) {
    return Status::InvalidArgument("shards must be >= 0");
  }
  Impl& impl = *impl_;
  const int old_threads = impl.options.threads;
  impl.options = options;
  // No solves are in flight between runs, so re-sizing the shared
  // dense-state pool is safe; the shard map lazily rebuilds when the shard
  // count changed (route_round_sharded compares shard_map_shards).
  impl.dense_budget.reset(options.oracle.cd.dense_state_budget_bytes);
  // Re-price the committed usage under the (possibly changed) congestion
  // parameters; usage itself — and hence the warm state — is preserved.
  impl.costs = CongestionCosts(impl.grid, options.congestion);
  for (const auto& route : impl.routes) {
    if (!route.empty()) impl.costs.add_usage(route, +1.0);
  }
  // Any transport must be re-sent the (possibly changed) world before its
  // next dispatch — even the same transport object.
  impl.configured_transport = nullptr;
  if (impl.owned_pool != nullptr && options.threads != old_threads) {
    impl.owned_pool =
        std::make_unique<ThreadPool>(std::max(1, options.threads));
    impl.pool = impl.owned_pool.get();
  }
  return Status::Ok();
}

const std::vector<double>& Router::sink_weights() const {
  return impl_->sink_weights;
}

const std::vector<double>& Router::sink_delays() const {
  return impl_->sink_delays;
}

RouterCheckpoint Router::checkpoint() const {
  const Impl& impl = *impl_;
  RouterCheckpoint cp;
  cp.options_seed = impl.options.seed;
  cp.rounds_done = impl.rounds_done;
  cp.weights_round = impl.weights_round;
  cp.route_offsets.reserve(impl.routes.size() + 1);
  cp.route_offsets.push_back(0);
  std::size_t total_edges = 0;
  for (const std::vector<EdgeId>& route : impl.routes) {
    total_edges += route.size();
    cp.route_offsets.push_back(total_edges);
  }
  cp.route_edges.reserve(total_edges);
  for (const std::vector<EdgeId>& route : impl.routes) {
    cp.route_edges.insert(cp.route_edges.end(), route.begin(), route.end());
  }
  cp.sink_weights = impl.sink_weights;
  cp.sink_delays = impl.sink_delays;
  return cp;
}

Status Router::restore(const RouterCheckpoint& cp) {
  Impl& impl = *impl_;
  // Validate everything against this session's grid and netlist before
  // touching any state, so a failed restore leaves the session unchanged.
  if (cp.options_seed != impl.options.seed) {
    return Status::FailedPrecondition(
        "checkpoint was taken under a different options.seed; replaying "
        "rounds under this session's seed could not reproduce the "
        "uninterrupted run");
  }
  if (cp.rounds_done < 0 || cp.weights_round < 0 ||
      cp.weights_round > cp.rounds_done) {
    return Status::InvalidArgument("checkpoint: bad round indexes");
  }
  const std::size_t num_nets = impl.netlist.nets.size();
  const std::size_t num_sinks = impl.sink_offset[num_nets];
  if (cp.route_offsets.size() != num_nets + 1 ||
      cp.route_offsets.front() != 0 ||
      cp.route_offsets.back() != cp.route_edges.size()) {
    return Status::InvalidArgument(
        "checkpoint: route offsets do not match this netlist");
  }
  for (std::size_t i = 0; i < num_nets; ++i) {
    if (cp.route_offsets[i] > cp.route_offsets[i + 1]) {
      return Status::InvalidArgument(
          "checkpoint: route offsets not monotonic");
    }
  }
  if (cp.sink_weights.size() != num_sinks ||
      cp.sink_delays.size() != num_sinks) {
    return Status::InvalidArgument(
        "checkpoint: sink arrays do not match this netlist");
  }
  const std::size_t num_edges = impl.grid.graph().num_edges();
  for (const std::uint32_t e : cp.route_edges) {
    if (e >= num_edges) {
      return Status::InvalidArgument(
          "checkpoint: route edge out of range for this grid");
    }
  }

  for (std::size_t i = 0; i < num_nets; ++i) {
    impl.routes[i].assign(
        cp.route_edges.begin() +
            static_cast<std::ptrdiff_t>(cp.route_offsets[i]),
        cp.route_edges.begin() +
            static_cast<std::ptrdiff_t>(cp.route_offsets[i + 1]));
  }
  impl.sink_weights = cp.sink_weights;
  impl.sink_delays = cp.sink_delays;
  impl.rounds_done = cp.rounds_done;
  impl.weights_round = cp.weights_round;
  impl.round_nets_committed = 0;
  // Congestion prices are a pure function of the committed usage: rebuild
  // them from the restored routes (the same discipline set_options uses), so
  // the restored session prices rounds exactly like the uninterrupted one.
  impl.costs = CongestionCosts(impl.grid, impl.options.congestion);
  for (const std::vector<EdgeId>& route : impl.routes) {
    if (!route.empty()) impl.costs.add_usage(route, +1.0);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// RouterRun — run() opened as a resumable round stream.

/// Heap state behind the move-only RouterRun handle. Heap allocation keeps
/// the address stable across handle moves, because the capture sink below
/// points back at it and engine worker threads hold that pointer while a
/// slice runs.
struct RouterRun::State {
  /// Observes every slice's events: round-barrier and cancelled summaries
  /// are queued for poll(), everything is forwarded to the stream owner's
  /// sink with target_round rewritten from the slice's run(1) horizon to
  /// the stream's absolute target (a slice only ever knows it is heading
  /// for "one more round"; stream observers want the real goal).
  struct CaptureSink final : public EventSink {
    State* state{nullptr};

    void on_solve_merge(const SolveMergeEvent& event) override {
      if (state->base.events != nullptr) state->base.events->on_solve_merge(event);
    }
    void on_job(const JobEvent& event) override {
      if (state->base.events != nullptr) state->base.events->on_job(event);
    }
    void on_router_shard(const RouterShardEvent& event) override {
      if (state->base.events == nullptr) return;
      RouterShardEvent rewritten = event;
      rewritten.target_round = state->target_round;
      state->base.events->on_router_shard(rewritten);
    }
    void on_router_round(const RouterRoundEvent& event) override {
      RouterRoundEvent rewritten = event;
      rewritten.target_round = state->target_round;
      if (rewritten.round_complete || rewritten.cancelled) {
        // The engine serializes event delivery within a slice, but poll()
        // may drain from another thread concurrently — hence the lock.
        MutexLock lock(state->mu);
        if (state->queue.size() >= kMaxQueuedEvents) {
          state->queue.pop_front();
          ++state->dropped;
        }
        state->queue.push_back(rewritten);
      }
      if (state->base.events != nullptr) {
        state->base.events->on_router_round(rewritten);
      }
    }
    void on_fault(const FaultEvent& event) override {
      if (state->base.events != nullptr) state->base.events->on_fault(event);
    }
  };

  Router* router{nullptr};
  RunControl base;  ///< captured at run_async(); deadline mutable later
  /// Rounds not yet committed. Mutated only by the pumping thread (step /
  /// submit), never during a slice.
  int remaining{0};
  /// Absolute session round the stream is heading for; read by the capture
  /// sink on worker threads while a slice runs, updated by the pumping
  /// thread only between slices.
  int target_round{0};
  Status last{Status::Ok()};
  CaptureSink sink;

  mutable Mutex mu;
  std::deque<RouterRoundEvent> queue CDST_GUARDED_BY(mu);
  std::size_t dropped CDST_GUARDED_BY(mu){0};
};

RouterRun Router::run_async(int rounds, const RunControl& control) {
  CDST_CHECK(rounds >= 0);
  auto state = std::make_unique<RouterRun::State>();
  state->router = this;
  state->base = control;
  state->remaining = rounds;
  state->target_round = impl_->rounds_done + rounds;
  state->sink.state = state.get();
  return RouterRun(std::move(state));
}

RouterRun::RouterRun(std::unique_ptr<State> state) : state_(std::move(state)) {}
RouterRun::~RouterRun() = default;
RouterRun::RouterRun(RouterRun&&) noexcept = default;
RouterRun& RouterRun::operator=(RouterRun&&) noexcept = default;

Status RouterRun::step() {
  State& s = *state_;
  if (s.remaining <= 0) return s.last;
  RunControl slice;
  slice.cancel = s.base.cancel;
  slice.events = &s.sink;
  slice.on_progress = s.base.on_progress;
  slice.deadline = s.base.deadline;
  slice.cancel_poll_interval = s.base.cancel_poll_interval;
  s.last = s.router->run(1, slice);
  if (s.last.ok()) --s.remaining;
  return s.last;
}

Status RouterRun::drain() {
  while (state_->remaining > 0) {
    const Status status = step();
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status RouterRun::submit(int rounds) {
  if (rounds < 0) {
    return Status::InvalidArgument("RouterRun::submit: rounds must be >= 0");
  }
  state_->remaining += rounds;
  state_->target_round += rounds;
  return Status::Ok();
}

int RouterRun::rounds_remaining() const { return state_->remaining; }

bool RouterRun::done() const { return state_->remaining <= 0; }

Status RouterRun::status() const { return state_->last; }

std::optional<RouterRoundEvent> RouterRun::poll() {
  State& s = *state_;
  MutexLock lock(s.mu);
  if (s.queue.empty()) return std::nullopt;
  RouterRoundEvent event = s.queue.front();
  s.queue.pop_front();
  return event;
}

std::size_t RouterRun::dropped_events() const {
  State& s = *state_;
  MutexLock lock(s.mu);
  return s.dropped;
}

void RouterRun::set_deadline(
    std::optional<std::chrono::steady_clock::time_point> d) {
  state_->base.deadline = d;
}

// Legacy one-shot wrapper (declared deprecated in route/router.h).
RouterResult route_chip(const RoutingGrid& grid, const Netlist& netlist,
                        const RouterOptions& options) {
  CDST_CHECK(options.iterations >= 1);
  Router session(grid, netlist, options);
  const Status status = session.run(options.iterations);
  // cdst-lint: allow(api-throw) deprecated legacy wrapper: route_chip's
  // documented contract predates the Status discipline and throws.
  if (!status.ok()) throw ContractViolation(status.to_string());
  // Move the routes out — matches the zero-copy cost of the pre-session
  // implementation, which built its result vectors in place.
  return std::move(session).take_result();
}

}  // namespace cdst
