/// \file api/cdst.h
/// Umbrella header for the cdst session API — the stable public surface.
///
/// Layering (see ARCHITECTURE.md):
///
///   api/     Engine, CdSolver (+SolveStream), Router,         <- this layer
///            Status/StatusOr, RunControl, EventSink
///   route/   per-net oracles, netlists, metrics
///   core/    Algorithm 1 solver, instances, objectives
///   grid/ graph/ geom/ topology/ embed/ timing/ io/ util/     <- substrate
///
/// The api layer owns session state (recycled solver scratch, thread pools,
/// Lagrangean warm-start state), returns structured Status errors instead of
/// letting exceptions escape, and reports through typed EventSink events
/// with RunControl cancellation. An Engine owns the shared ThreadPool +
/// DenseStateBudget and vends sessions wired to both; SolveStream is the
/// bounded-window streaming variant of solve_batch for pipelines that
/// cannot hold all results. The legacy one-shot free functions
/// (solve_cost_distance, route_net, route_chip) and the single Progress
/// callback remain available as thin deprecated adapters.

#pragma once

#include "api/cd_solver.h"
#include "api/engine.h"
#include "api/events.h"
#include "api/router.h"
#include "api/run_control.h"
#include "api/solve_stream.h"
#include "api/status.h"
