/// \file api/cdst.h
/// Umbrella header for the cdst session API — the stable public surface.
///
/// Layering (see ARCHITECTURE.md):
///
///   api/     CdSolver, Router, Status/StatusOr, RunControl   <- this layer
///   route/   per-net oracles, netlists, metrics
///   core/    Algorithm 1 solver, instances, objectives
///   grid/ graph/ geom/ topology/ embed/ timing/ io/ util/    <- substrate
///
/// The api layer owns session state (recycled solver scratch, thread pools,
/// Lagrangean warm-start state), returns structured Status errors instead of
/// letting exceptions escape, and honors RunControl progress/cancellation.
/// The legacy one-shot free functions (solve_cost_distance, route_net,
/// route_chip) remain available as thin deprecated wrappers.

#pragma once

#include "api/cd_solver.h"
#include "api/router.h"
#include "api/run_control.h"
#include "api/status.h"
