#include "api/solve_stream.h"

#include <deque>
#include <optional>
#include <utility>

#include "api/events.h"
#include "api/scratch_pool.h"
#include "util/fault_injection.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace cdst {
namespace detail {

/// Shared heart of one streaming session. Heap-held behind a shared_ptr:
/// every dispatched lane task keeps it alive, so a stream object destroyed
/// while lanes are still running (after its blocking wait) can never leave
/// a task with a dangling state pointer. The raw solver/scratch pointers
/// are what make "streams must not outlive their CdSolver, and the solver
/// must not be moved while a stream is open" a hard contract.
struct StreamState {
  CdSolver* solver{nullptr};
  SolverScratchPool* scratch{nullptr};
  ThreadPool* pool{nullptr};  ///< null: jobs solve inline on submit()
  std::size_t window{1};
  RunControl control;  ///< materialized copy; cancel/events borrowed
  std::optional<EventFan> fan;  ///< built over `control` after assignment
  std::shared_ptr<std::atomic<int>> active_streams;

  struct Slot {
    bool done{false};
    Status status;  ///< non-OK: the job failed; result is empty
    SolveResult result;
  };

  Mutex mu;
  CondVar cv;  ///< completions: wakes submit/next/dtor waits
  /// Results for jobs [delivered, submitted), front = job `delivered`.
  std::deque<Slot> slots CDST_GUARDED_BY(mu);
  std::size_t submitted CDST_GUARDED_BY(mu) = 0;
  std::size_t delivered CDST_GUARDED_BY(mu) = 0;
  /// Finished lanes (monotonic, for events).
  std::size_t completed CDST_GUARDED_BY(mu) = 0;
  /// Dispatched, not yet finished (<= window).
  std::size_t in_flight CDST_GUARDED_BY(mu) = 0;

  // Backstop only: the normal decrement happens in wait_for_lanes() once
  // the stream is quiescent, because this destructor runs when the *last*
  // lane closure releases the state — possibly on a pool worker slightly
  // after the stream object is gone, which would leave a window where a
  // destroyed stream still counts as active (and set_options would skip a
  // legitimate budget resize).
  ~StreamState() {
    if (active_streams != nullptr) {
      active_streams->fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  bool cancelled() const {
    return control.cancel != nullptr && control.cancel->cancelled();
  }

  /// One lane: solve the job and publish its slot. Runs on a pool worker
  /// (or inline on the submitting thread without a pool).
  void run_lane(const CostDistanceInstance* instance,
                const SolverOptions& opts, std::size_t index) {
    Slot out;
    if (cancelled()) {
      out.status = Status::Cancelled("stream cancelled before this job");
    } else if (deadline_expired(control)) {
      out.status =
          deadline_exceeded_status("stream deadline expired before this job");
    } else {
      try {
        // Lanes run as fire-and-forget pool tasks, outside any parallel_for
        // barrier, so the dispatch fault site lives inside the lane body
        // where the unwind lands in this slot's Status instead of
        // terminating a worker.
        CDST_FAULT_POINT("stream.dispatch");
        const SolveControls controls = make_solve_controls(control);
        const SolverScratchPool::Lease lease = scratch->lease();
        out.status =
            solve_into(*instance, opts, lease.get(), &controls, &out.result);
      } catch (const InjectedFault& e) {
        out.status = Status::Unavailable(e.what());
      }
    }
    out.done = true;
    {
      // Publish + event under one lock: `completed` stays strictly
      // monotonic across delivered events, and sinks are serialized.
      // (Handlers must not call back into the stream; see api/events.h.)
      MutexLock lock(mu);
      const StatusCode code = out.status.code();
      slots[index - delivered] = std::move(out);
      --in_flight;
      ++completed;
      if (fan->active()) {
        JobEvent event;
        event.index = index;
        event.completed = completed;
        event.submitted = submitted;
        event.status = code;
        fan->emit_job(event);
      }
    }
    cv.notify_all();
  }

  /// Pops the head slot (which must be done) into a delivered result.
  StatusOr<SolveResult> take_front() CDST_REQUIRES(mu) {
    Slot slot = std::move(slots.front());
    slots.pop_front();
    ++delivered;
    if (!slot.status.ok()) return slot.status;
    return std::move(slot.result);
  }
};

}  // namespace detail

SolveStream CdSolver::stream(const StreamOptions& stream_options,
                             const RunControl& control) {
  maybe_reset_budget();
  auto state = std::make_shared<detail::StreamState>();
  state->solver = this;
  state->scratch = scratch_.get();
  state->pool = pool_;
  state->window = stream_options.window < 1 ? 1 : stream_options.window;
  state->control = control;
  state->fan.emplace(state->control);
  state->active_streams = active_streams_;
  active_streams_->fetch_add(1, std::memory_order_acq_rel);
  return SolveStream(std::move(state));
}

SolveStream::SolveStream(std::shared_ptr<detail::StreamState> state)
    : state_(std::move(state)) {}

SolveStream::SolveStream(SolveStream&&) noexcept = default;

SolveStream& SolveStream::operator=(SolveStream&& other) noexcept {
  if (this != &other) {
    // Releasing the current state is a teardown of that stream: run the
    // same blocking wait as the destructor, or the replaced stream's lanes
    // could outlive the solver/pool they borrow.
    wait_for_lanes();
    state_ = std::move(other.state_);
  }
  return *this;
}

SolveStream::~SolveStream() { wait_for_lanes(); }

void SolveStream::wait_for_lanes() {
  if (state_ == nullptr) return;
  {
    // The stream is the caller's sync point against its borrowed solver:
    // wait for every lane to finish so no task can outlive the solver/pool
    // the caller destroys next. Undelivered results are discarded.
    MutexLock lock(state_->mu);
    while (state_->in_flight != 0) state_->cv.wait(state_->mu);
  }
  // Quiescent: no lane holds a dense-budget reservation anymore, so the
  // session may count this stream as gone *now* — lane closures may keep
  // the state alive on pool workers a little longer, and deferring the
  // decrement to ~StreamState would make a set_options right after stream
  // teardown intermittently skip its budget resize.
  if (state_->active_streams != nullptr) {
    state_->active_streams->fetch_sub(1, std::memory_order_acq_rel);
    state_->active_streams.reset();
  }
}

Status SolveStream::submit(const CdSolver::Job& job) {
  detail::StreamState& st = *state_;
  if (job.instance == nullptr) {
    return Status::InvalidArgument("stream job has no instance");
  }
  if (st.cancelled()) {
    return Status::Cancelled("stream cancelled; job not accepted");
  }
  // Resolved on the submitting thread, so a set_options() between submits
  // deterministically affects exactly the jobs submitted after it.
  const SolverOptions opts = st.solver->resolve_job_options(job);

  std::size_t index;
  {
    MutexLock lock(st.mu);
    // Backpressure: never more than `window` lanes in flight, so peak
    // dense-state reservations stay bounded whatever the pool width.
    while (st.in_flight >= st.window) st.cv.wait(st.mu);
    if (st.cancelled()) {
      return Status::Cancelled("stream cancelled; job not accepted");
    }
    index = st.submitted++;
    st.slots.emplace_back();
    ++st.in_flight;
  }

  auto lane = [state = state_, instance = job.instance, opts, index] {
    state->run_lane(instance, opts, index);
  };
  if (st.pool != nullptr) {
    st.pool->submit(std::move(lane));
  } else {
    lane();
  }
  return Status::Ok();
}

Status SolveStream::submit(const CostDistanceInstance& instance) {
  CdSolver::Job job;
  job.instance = &instance;
  return submit(job);
}

std::optional<StatusOr<SolveResult>> SolveStream::poll() {
  detail::StreamState& st = *state_;
  MutexLock lock(st.mu);
  if (st.slots.empty() || !st.slots.front().done) return std::nullopt;
  return st.take_front();
}

std::optional<StatusOr<SolveResult>> SolveStream::next() {
  detail::StreamState& st = *state_;
  MutexLock lock(st.mu);
  if (st.delivered == st.submitted) return std::nullopt;
  while (st.slots.empty() || !st.slots.front().done) st.cv.wait(st.mu);
  return st.take_front();
}

std::vector<StatusOr<SolveResult>> SolveStream::drain() {
  std::vector<StatusOr<SolveResult>> results;
  while (std::optional<StatusOr<SolveResult>> r = next()) {
    results.push_back(*std::move(r));
  }
  return results;
}

std::size_t SolveStream::submitted() const {
  MutexLock lock(state_->mu);
  return state_->submitted;
}

std::size_t SolveStream::delivered() const {
  MutexLock lock(state_->mu);
  return state_->delivered;
}

std::size_t SolveStream::pending() const {
  MutexLock lock(state_->mu);
  return state_->submitted - state_->delivered;
}

}  // namespace cdst
