/// \file api/scratch_pool.h
/// Internal session-layer helpers shared by CdSolver and Router: the leased
/// SolverScratch free list and the RunControl -> SolveControls mapping.
/// The in-tree bench harnesses (cost_increase_common.h) lease scratch from
/// here too — a deliberate repo-internal dependency. Everything in
/// cdst::detail is outside the supported api/cdst.h surface and may change
/// shape between releases.
///
/// Parallel batch work (CdSolver::solve_batch, Router's per-net oracle
/// calls) hands out work by index, not by worker, so scratch cannot be
/// per-thread; instead each task leases a scratch for its duration. The pool
/// grows to the concurrency high-water mark and recycles from there on.
/// Scratch contents never influence results (see SolverScratch), so the
/// lease order — which does vary with thread count — is immaterial.

#pragma once

#include <chrono>
#include <memory>
#include <string_view>
#include <vector>

#include "api/run_control.h"
#include "api/status.h"
#include "core/cost_distance.h"
#include "util/thread_annotations.h"

namespace cdst {
struct SolveMergeEvent;  // api/events.h
}  // namespace cdst

namespace cdst::detail {

/// The one mapping from a caller's RunControl onto the core solver's
/// cooperative controls (cancel flag + deadline + poll interval; event
/// wiring stays call-site specific). All session objects use this, so their
/// cancellation/deadline semantics cannot drift apart — including the
/// "cancel_poll_interval == 0 means the default" substitution, which
/// happens here and nowhere else.
inline SolveControls make_solve_controls(const RunControl& control) {
  SolveControls controls;
  if (control.cancel != nullptr) controls.cancel = &control.cancel->flag();
  controls.deadline = control.deadline;
  controls.cancel_poll_interval = control.cancel_poll_interval > 0
                                      ? control.cancel_poll_interval
                                      : kDefaultCancelPollInterval;
  return controls;
}

/// True iff the control's deadline has passed (no deadline never expires).
/// The boundary-check twin of core-side deadline_expired(SolveControls*):
/// sessions call this at batch/round/job boundaries, where there is no
/// SolveControls in scope.
inline bool deadline_expired(const RunControl& control) {
  return control.deadline.has_value() &&
         std::chrono::steady_clock::now() >= *control.deadline;
}

// The one origin of the kDeadlineExceeded / kResourceExhausted codes
// outside status.h (enforced by scripts/check_invariants.py rule
// `status-origin`): both codes carry machine semantics — "the deadline you
// set expired" and "this can never fit, do not retry" — that would decay
// into noise if ad-hoc call sites could mint them for other conditions.

inline Status deadline_exceeded_status(std::string_view msg) {
  return Status::DeadlineExceeded(msg);
}

inline Status resource_exhausted_status(std::string_view msg) {
  return Status::ResourceExhausted(msg);
}

/// Runs one solve against leased scratch and maps every failure mode onto
/// the structured status contract (defined in cd_solver.cpp; shared with
/// the SolveStream lanes so the status mapping cannot drift).
Status solve_into(const CostDistanceInstance& instance,
                  const SolverOptions& options, SolverScratch* scratch,
                  const SolveControls* controls, SolveResult* out);

/// Core merge tick -> typed api event (defined in cd_solver.cpp).
SolveMergeEvent to_event(const MergeTick& tick);

class SolverScratchPool {
 public:
  /// RAII lease; returns the scratch on destruction (exception-safe).
  class Lease {
   public:
    Lease(SolverScratchPool& pool, SolverScratch* scratch)
        : pool_(&pool), scratch_(scratch) {}
    ~Lease() {
      if (scratch_ != nullptr) pool_->release(scratch_);
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    SolverScratch* get() const { return scratch_; }

   private:
    SolverScratchPool* pool_;
    SolverScratch* scratch_;
  };

  Lease lease() { return Lease(*this, acquire()); }

 private:
  SolverScratch* acquire() {
    MutexLock lock(mu_);
    if (!free_.empty()) {
      SolverScratch* s = free_.back();
      free_.pop_back();
      return s;
    }
    owned_.push_back(std::make_unique<SolverScratch>());
    return owned_.back().get();
  }

  void release(SolverScratch* scratch) {
    MutexLock lock(mu_);
    free_.push_back(scratch);
  }

  Mutex mu_;
  std::vector<std::unique_ptr<SolverScratch>> owned_ CDST_GUARDED_BY(mu_);
  std::vector<SolverScratch*> free_ CDST_GUARDED_BY(mu_);
};

}  // namespace cdst::detail
