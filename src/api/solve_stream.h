/// \file api/solve_stream.h
/// Incremental streaming variant of CdSolver::solve_batch for pipelines
/// that cannot materialize whole result vectors.
///
/// A SolveStream is a bounded-window pipeline over one CdSolver session:
/// submit(Job) dispatches the job onto the session's ThreadPool and returns
/// immediately while fewer than `window` jobs are in flight, or blocks until
/// a lane frees up — the backpressure that bounds peak dense-state memory
/// to window * per-solve footprint against the shared DenseStateBudget.
/// poll() hands results back strictly in submission order (a result is
/// withheld until every earlier one has been delivered), so the sequence of
/// delivered results is bit-identical to solve_batch over the same jobs —
/// at any thread count and any poll cadence. Each delivered element is a
/// StatusOr: per-job failures (kInvalidArgument, kCancelled) ride in-band
/// instead of poisoning the stream.
///
/// Lifetime: the stream borrows its CdSolver (scratch, options, budget) and
/// the session's ThreadPool; both must outlive the stream, and the solver
/// must not be moved while a stream is open. The destructor blocks until
/// in-flight solves finish (undelivered results are discarded). After
/// cancellation — via the RunControl token passed to CdSolver::stream() —
/// in-flight lanes unwind with kCancelled results, and the session stays
/// fully reusable for new solves, batches and streams.

#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "api/cd_solver.h"
#include "api/status.h"

namespace cdst {

class SolveStream {
 public:
  /// Blocks until in-flight lanes finish (undelivered results discarded).
  ~SolveStream();
  SolveStream(SolveStream&&) noexcept;
  /// Tears down the current stream first (same blocking wait as the
  /// destructor) before adopting the other's state.
  SolveStream& operator=(SolveStream&&) noexcept;

  /// Dispatches one job. Returns once the job is accepted (possibly after
  /// blocking on the window); the returned Status reflects *acceptance* —
  /// kInvalidArgument for a job without an instance, kCancelled once the
  /// stream's token fired — while the job's own solve outcome arrives
  /// through poll()/next()/drain() at this job's submission index. A
  /// rejected job is not enqueued and produces no result.
  Status submit(const CdSolver::Job& job);
  /// Convenience: the instance under the session options.
  Status submit(const CostDistanceInstance& instance);

  /// Non-blocking: the next result in submission order when it is already
  /// finished; nullopt when the head job is still in flight or nothing is
  /// pending (distinguish via pending()).
  std::optional<StatusOr<SolveResult>> poll();

  /// Blocking: waits for the next result in submission order; nullopt only
  /// when no undelivered jobs remain.
  std::optional<StatusOr<SolveResult>> next();

  /// Blocking: every undelivered result, in submission order. Equivalent to
  /// polling next() until empty — the convenience tail-collector for the
  /// final <= window + unpolled results.
  std::vector<StatusOr<SolveResult>> drain();

  /// Jobs submitted / results delivered / submitted-but-undelivered.
  std::size_t submitted() const;
  std::size_t delivered() const;
  std::size_t pending() const;

 private:
  friend class CdSolver;
  explicit SolveStream(std::shared_ptr<detail::StreamState> state);

  /// Blocks until in_flight == 0 on the current state (no-op when moved
  /// from); the teardown half of the destructor and move-assignment.
  void wait_for_lanes();

  std::shared_ptr<detail::StreamState> state_;
};

}  // namespace cdst
