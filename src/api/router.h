/// \file api/router.h
/// Session object around the timing-constrained global router.
///
/// The stateful successor of route_chip(): constructed once per grid +
/// netlist, it retains everything the Lagrangean iteration accumulates —
/// congestion prices, routed trees, per-sink delay weights (the Lagrange
/// multipliers) — so run() is resumable: run(2) followed by run(2) is
/// bit-identical to run(4), and after an option change (oracle knobs,
/// Steiner method, weight schedule) the next run() re-routes warm from the
/// converged prices instead of from scratch.
///
/// Cancellation is honored at batch granularity: a cancelled run() returns
/// kCancelled with every committed batch intact (the in-flight batch is
/// rolled back to its pre-rip-up routes), so result() is always a coherent
/// snapshot, and the run emits a final cancelled round-summary event so
/// observers see the round the unwind stopped at. No exception crosses
/// this boundary. Observation goes through RunControl::events
/// (api/events.h): batch/shard boundaries while a round runs, and a
/// round_complete event with congestion stats at every round barrier.
///
/// With RouterOptions::shards >= 1 rounds run spatially sharded instead of
/// batched: prices freeze once per round, net shards (grid tiles, see
/// route/sharding.h) route chunk-parallel against the snapshot, and all
/// updates merge at the round barrier in net order — bit-identical results
/// at any thread and shard count, and cancellation unwinds to the previous
/// round boundary with no rollback at all.

#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "api/events.h"
#include "api/run_control.h"
#include "api/status.h"
#include "route/router.h"

namespace cdst {

class ThreadPool;
class RouterRun;

/// Serializable snapshot of a Router session's round state, taken at a
/// round barrier (Router::checkpoint) and replayed into a fresh session
/// over the same grid/netlist (Router::restore). Everything the Lagrangean
/// iteration accumulates is either stored here or a pure function of it:
/// congestion prices/usage are rebuilt from the routes, per-net seeds
/// derive from (options.seed, net id, absolute round), so a restored
/// session continues bit-identically to one that was never interrupted.
///
/// The struct is plain data; to_bytes()/from_bytes() give it a versioned,
/// endianness-fixed wire form (the same layout a future off-process round
/// protocol would ship between workers).
struct RouterCheckpoint {
  /// RouterOptions::seed the state was produced under. restore() refuses a
  /// mismatch: replaying rounds under a different seed could not reproduce
  /// the uninterrupted run.
  std::uint64_t options_seed{0};
  std::int32_t rounds_done{0};
  std::int32_t weights_round{0};
  /// Per-net routes, flattened: net i owns route_edges
  /// [route_offsets[i], route_offsets[i+1]).
  std::vector<std::uint64_t> route_offsets;
  std::vector<std::uint32_t> route_edges;
  std::vector<double> sink_weights;  ///< Lagrange multipliers, flat
  std::vector<double> sink_delays;   ///< committed route delays, flat

  /// Versioned little-endian byte serialization (magic + version header).
  std::vector<std::uint8_t> to_bytes() const;
  /// Parses bytes produced by to_bytes(); kInvalidArgument on truncated,
  /// corrupt or version-mismatched input.
  static StatusOr<RouterCheckpoint> from_bytes(
      std::span<const std::uint8_t> bytes);
};

class Router {
 public:
  /// Borrows grid and netlist for the session's lifetime. `pool` optionally
  /// shares a caller-owned ThreadPool across engine objects (the ROADMAP's
  /// shared fan-out pool); when null the session owns a pool of
  /// options.threads workers. Results never depend on the thread count.
  /// options.iterations is ignored by the session API (run() takes the round
  /// count); it remains meaningful to the legacy route_chip wrapper.
  Router(const RoutingGrid& grid, const Netlist& netlist,
         const RouterOptions& options, ThreadPool* pool = nullptr);
  ~Router();
  Router(Router&&) noexcept;
  Router& operator=(Router&&) noexcept;

  /// Executes `rounds` additional Lagrangean rip-up & re-route rounds on top
  /// of the current state. Deterministic: seeds and multiplier steps are
  /// indexed by the absolute round number, so any split of N rounds across
  /// run() calls produces bit-identical routes. rounds == 0 is a no-op.
  Status run(int rounds, const RunControl& control = {});

  /// Opens the same `rounds` as a resumable stream instead of one blocking
  /// call: the returned RouterRun executes one round per step() on the
  /// calling thread and queues the round-barrier events for poll(). Because
  /// run() is split-invariant (run(1) x N is bit-identical to run(N)), the
  /// stream's committed state after k steps equals run(k) — this is the
  /// round-granularity slicing a scheduler interleaves across sessions (see
  /// serve/serve.h). `control` is captured for every slice: its cancel
  /// token, deadline and poll interval apply per step, and its EventSink
  /// observes every slice (with target_round rewritten to the stream's
  /// absolute target). The Router and the captured control must outlive the
  /// RouterRun, and the Router must not be moved, run() directly, or handed
  /// to a second run_async while this one is open.
  RouterRun run_async(int rounds, const RunControl& control = {});

  /// Coherent snapshot of the current routing (timing/congestion/wire
  /// metrics recomputed from committed state). Valid after any run() —
  /// including one that returned kCancelled.
  RouterResult result() const;

  /// Like result(), but moves the per-net routes / delays / weights out
  /// instead of copying them. Consumes the session's routing state — only
  /// callable on an expiring session (`std::move(session).take_result()`),
  /// which must not be run() afterwards. This is the zero-copy final-answer
  /// path (the legacy route_chip wrapper uses it).
  RouterResult take_result() &&;

  /// Fully completed Lagrangean rounds (a cancelled round does not count;
  /// the next run() redoes it from the last round boundary).
  int rounds_completed() const;

  const RouterOptions& options() const;

  /// Replaces the session options for subsequent rounds while KEEPING the
  /// accumulated prices, routes and multipliers — the warm-start path for
  /// re-routing after an option change. Grid and netlist stay fixed. When
  /// the session owns its thread pool and `options.threads` changed, the
  /// pool is rebuilt.
  Status set_options(const RouterOptions& options);

  /// Live per-sink Lagrange multipliers, flattened in netlist order.
  const std::vector<double>& sink_weights() const;
  /// Per-sink delays of the committed routes, flattened in netlist order.
  const std::vector<double>& sink_delays() const;

  /// Snapshot of the committed round state. Valid after any run() —
  /// including one that returned kCancelled / kDeadlineExceeded, whose
  /// committed state is the last round barrier. restore()ing the snapshot
  /// into a session over the same grid/netlist/options and running the
  /// remaining rounds reproduces the uninterrupted run bit-identically.
  RouterCheckpoint checkpoint() const;

  /// Replaces the session's accumulated state (routes, multipliers, delays,
  /// round index; prices are rebuilt from the routes) with the checkpoint.
  /// kInvalidArgument on a malformed checkpoint (shape/bounds mismatches
  /// against this session's grid and netlist), kFailedPrecondition when the
  /// checkpoint was taken under a different options.seed. On failure the
  /// session is unchanged.
  Status restore(const RouterCheckpoint& checkpoint);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A Router::run() opened as a resumable round stream (submit/step/poll/
/// drain) — the unit a multi-tenant scheduler interleaves.
///
/// Execution is cooperative, not background: step() runs exactly one
/// Lagrangean round synchronously on the calling thread, fanning out on the
/// session's ThreadPool exactly like run() would (a round pushed onto the
/// pool as a fire-and-forget task would serialize its own nested
/// parallel_for — see util/thread_pool.h — so the pump stays outside the
/// pool by design). Determinism is inherited, not re-proven: each step() is
/// a run(1), and run() guarantees any split of N rounds is bit-identical.
///
/// step()'s Status is the slice's run() Status; kCancelled /
/// kDeadlineExceeded / kUnavailable leave the session at the last round
/// barrier and the stream open, so the pump may step() again after the
/// owner clears the condition (reset the token, extend the deadline via
/// set_deadline()). submit() adds rounds to an open stream at any point.
///
/// Round-barrier and cancelled-summary events of every slice are queued for
/// poll() (bounded: the oldest are dropped beyond kMaxQueuedEvents, counted
/// by dropped_events()) and forwarded to the captured control's sink.
/// Threading: one pumping thread calls step()/drain()/submit(); poll() and
/// dropped_events() are additionally safe from any thread.
class RouterRun {
 public:
  /// Queue capacity for poll(); beyond it the oldest events are dropped.
  static constexpr std::size_t kMaxQueuedEvents = 256;

  ~RouterRun();
  RouterRun(RouterRun&&) noexcept;
  RouterRun& operator=(RouterRun&&) noexcept;

  /// Executes one round slice (a run(1)) on the calling thread. No-op
  /// returning status() when the stream is already drained. On kOk one
  /// round was committed; on any other Status the session sits at its last
  /// round barrier and the round stays pending — step() again to retry.
  Status step();

  /// step()s until rounds_remaining() == 0 or a slice fails; returns the
  /// first non-OK slice Status (stream stays open and resumable) or kOk.
  Status drain();

  /// Adds rounds to the stream's target. kInvalidArgument when negative.
  Status submit(int rounds);

  /// Rounds not yet committed by a step().
  int rounds_remaining() const;
  /// True once every submitted round has been committed.
  bool done() const;
  /// Status of the most recent slice (kOk before the first step()).
  Status status() const;

  /// Pops the oldest queued round-barrier / cancelled-summary event, or
  /// nullopt when none is pending. Safe from any thread.
  std::optional<RouterRoundEvent> poll();
  /// Events discarded because the poll() queue was full. Safe from any
  /// thread.
  std::size_t dropped_events() const;

  /// Replaces the deadline applied to subsequent slices (nullopt removes
  /// it) — the revival path for a stream whose last slice returned
  /// kDeadlineExceeded.
  void set_deadline(std::optional<std::chrono::steady_clock::time_point> d);

 private:
  friend class Router;
  struct State;
  explicit RouterRun(std::unique_ptr<State> state);
  std::unique_ptr<State> state_;
};

}  // namespace cdst
