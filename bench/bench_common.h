/// \file bench_common.h
/// Shared helpers for the table-reproduction harnesses.

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "route/netlist_gen.h"
#include "route/router.h"
#include "timing/repeater_chain.h"

namespace cdst::bench {

/// dbif for a chip's layer stack, derived from the repeater-chain model
/// exactly as in paper Section I.
inline double chip_dbif(const ChipConfig& chip) {
  std::vector<LayerSpec> layers = make_default_layer_stack(chip.num_layers);
  apply_linear_delay_model(layers, BufferSpec{});
  return compute_dbif(layers, BufferSpec{});
}

/// Paper Table I/II sink-count buckets.
struct SinkBucket {
  std::size_t lo;
  std::size_t hi;  // inclusive; SIZE_MAX for the last bucket
  const char* label;
};

inline const std::vector<SinkBucket>& sink_buckets() {
  static const std::vector<SinkBucket> buckets{
      {3, 5, "3-5"},
      {6, 14, "6-14"},
      {15, 29, "15-29"},
      {30, static_cast<std::size_t>(-1), ">=30"},
  };
  return buckets;
}

inline int bucket_of(std::size_t num_sinks) {
  const auto& buckets = sink_buckets();
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (num_sinks >= buckets[b].lo && num_sinks <= buckets[b].hi) {
      return static_cast<int>(b);
    }
  }
  return -1;
}

}  // namespace cdst::bench
