/// \file global_routing_common.h
/// Shared harness for Tables IV and V: full timing-constrained global
/// routing on the eight (scaled) evaluation chips, one run per Steiner
/// oracle, reporting WS / TNS / ACE4 / wirelength / vias / walltime.
///
/// All runs share one ThreadPool through the Router sessions; per-net
/// batches fan out onto it. Results are thread-count invariant, so
/// --threads only changes walltime.

#pragma once

#include <cstdio>

#include "api/cdst.h"
#include "bench_common.h"
#include "io/table.h"
#include "util/args.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cdst::bench {

inline int run_global_routing_table(const char* table_name, bool with_dbif,
                                    int argc, const char* const* argv) {
  ArgParser args(table_name,
                 std::string("timing-constrained global routing results, ") +
                     (with_dbif ? "dbif > 0" : "dbif = 0"));
  args.add_option("scale", "0.001", "chip net-count scale vs Table III");
  args.add_option("chips", "8", "number of paper chips to route");
  args.add_option("iterations", "5", "rip-up & re-route rounds");
  args.add_option("threads", "4", "shared pool workers (results invariant)");
  args.add_option("seed", "1", "random seed");
  args.parse(argc, argv);

  const auto num_chips =
      static_cast<std::size_t>(std::min<std::int64_t>(8, args.get_int("chips")));
  std::vector<ChipConfig> chips = paper_chip_configs(args.get_double("scale"));
  chips.resize(num_chips);

  std::printf("%s — timing-constrained global routing, %s "
              "(paper: Table %s; chips scaled by %.4g)\n\n",
              table_name, with_dbif ? "dbif > 0" : "dbif = 0",
              with_dbif ? "V" : "IV", args.get_double("scale"));

  ThreadPool pool(std::max(1, static_cast<int>(args.get_int("threads"))));

  TextTable table({"Chip", "Run", "WS [ps]", "TNS [ps]", "ACE4 [%]",
                   "WL [gcells]", "Vias", "Walltime"});
  struct Totals {
    double ws{0.0}, tns{0.0}, ace4{0.0}, wl{0.0}, secs{0.0};
    long long vias{0};
  };
  std::array<Totals, 4> totals{};

  for (const ChipConfig& chip : chips) {
    const RoutingGrid grid = make_chip_grid(chip);
    const Netlist netlist = generate_netlist(chip, grid);
    const double dbif = with_dbif ? chip_dbif(chip) : 0.0;
    for (std::size_t m = 0; m < 4; ++m) {
      RouterOptions opts;
      opts.method = all_methods()[m];
      opts.oracle.dbif = dbif;
      opts.seed = static_cast<std::uint64_t>(args.get_int("seed"));
      Router session(grid, netlist, opts, &pool);
      const Status status =
          session.run(static_cast<int>(args.get_int("iterations")));
      if (!status.ok()) {
        std::fprintf(stderr, "%s/%s failed: %s\n", chip.name.c_str(),
                     method_name(opts.method), status.to_string().c_str());
        return 1;
      }
      const RouterResult r = session.result();
      table.add_row(
          {chip.name, method_name(opts.method),
           fmt_double(r.timing.worst_slack, 0),
           fmt_count(static_cast<long long>(r.timing.total_negative_slack)),
           fmt_double(r.congestion.ace4, 2),
           fmt_double(r.wires.wirelength_gcells, 0),
           fmt_count(static_cast<long long>(r.wires.num_vias)),
           format_hms(r.walltime_s)});
      totals[m].ws += r.timing.worst_slack;
      totals[m].tns += r.timing.total_negative_slack;
      totals[m].ace4 += r.congestion.ace4 / static_cast<double>(num_chips);
      totals[m].wl += r.wires.wirelength_gcells;
      totals[m].vias += static_cast<long long>(r.wires.num_vias);
      totals[m].secs += r.walltime_s;
    }
    table.add_separator();
  }
  for (std::size_t m = 0; m < 4; ++m) {
    table.add_row({"all", method_name(all_methods()[m]),
                   fmt_double(totals[m].ws, 0),
                   fmt_count(static_cast<long long>(totals[m].tns)),
                   fmt_double(totals[m].ace4, 2), fmt_double(totals[m].wl, 0),
                   fmt_count(totals[m].vias), format_hms(totals[m].secs)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nexpected shape: CD best (or tied) WS/TNS, lowest ACE4 and "
              "via count,\nslightly higher wirelength; L1 worst timing.\n");
  return 0;
}

}  // namespace cdst::bench
