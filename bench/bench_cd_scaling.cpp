// Microbenchmark for Theorem 1: the cost-distance solver's running time is
// O(t (n log n + m)). Sweeps the terminal count t at fixed graph size, and
// the grid size n at fixed t; the reported times should grow ~linearly in t
// and ~n log n in the graph size.

#include <benchmark/benchmark.h>

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "api/cdst.h"
#include "grid/future_cost.h"
#include "grid/routing_grid.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace cdst;

struct Fixture {
  std::unique_ptr<RoutingGrid> grid;
  std::unique_ptr<FutureCost> fc;
  std::vector<double> cost;
  std::vector<double> delay;
  ArcCostView plane;
  CostDistanceInstance inst;
};

Fixture make(std::uint64_t seed, int side, int layers, std::size_t sinks,
             bool arc_plane = true) {
  Fixture f;
  f.grid = std::make_unique<RoutingGrid>(
      side, side, make_default_layer_stack(layers), ViaSpec{});
  f.fc = std::make_unique<FutureCost>(*f.grid);
  Rng rng(seed);
  f.cost.resize(f.grid->graph().num_edges());
  f.delay = f.grid->edge_delays();
  for (std::size_t e = 0; e < f.cost.size(); ++e) {
    f.cost[e] = f.grid->base_costs()[e] * (1.0 + 3.0 * rng.uniform_double());
  }
  f.inst.graph = &f.grid->graph();
  f.inst.cost = &f.cost;
  f.inst.delay = &f.delay;
  if (arc_plane) {
    // The production shape: per-net windows and the grid both finalize SoA
    // planes; standalone instances build one once per (graph, cost, delay).
    f.plane.assign(f.grid->graph(), f.cost, f.delay);
    f.inst.arc_costs = &f.plane;
  }
  f.inst.dbif = 2.0;
  f.inst.eta = 0.25;
  std::set<VertexId> used;
  auto pick = [&]() {
    while (true) {
      const VertexId v = f.grid->vertex_at(
          static_cast<std::int32_t>(rng.uniform(static_cast<std::uint64_t>(side))),
          static_cast<std::int32_t>(rng.uniform(static_cast<std::uint64_t>(side))),
          0);
      if (used.insert(v).second) return v;
    }
  };
  f.inst.root = pick();
  for (std::size_t s = 0; s < sinks; ++s) {
    f.inst.sinks.push_back(Terminal{pick(), 0.1 + rng.uniform_double()});
  }
  return f;
}

void BM_CostDistance_SinkCount(benchmark::State& state) {
  const auto sinks = static_cast<std::size_t>(state.range(0));
  const Fixture f = make(42, 48, 5, sinks);
  SolverOptions opts;
  opts.future_cost = f.fc.get();
  CdSolver solver(opts);  // session: scratch recycled across iterations
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(f.inst));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(sinks));
}
BENCHMARK(BM_CostDistance_SinkCount)
    ->RangeMultiplier(2)
    ->Range(2, 128)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMillisecond);

void BM_CostDistance_GraphSize(benchmark::State& state) {
  const auto side = static_cast<int>(state.range(0));
  const Fixture f = make(7, side, 4, 16);
  SolverOptions opts;
  opts.future_cost = f.fc.get();
  CdSolver solver(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(f.inst));
  }
  state.SetComplexityN(
      static_cast<benchmark::IterationCount>(f.inst.graph->num_vertices()));
}
BENCHMARK(BM_CostDistance_GraphSize)
    ->RangeMultiplier(2)
    ->Range(16, 128)
    ->Complexity(benchmark::oNLogN)
    ->Unit(benchmark::kMillisecond);

void BM_CostDistance_AStarOnOff(benchmark::State& state) {
  const Fixture f = make(11, 64, 5, 24);
  SolverOptions opts;
  opts.future_cost = f.fc.get();
  opts.use_astar = state.range(0) != 0;
  CdSolver solver(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(f.inst));
  }
}
BENCHMARK(BM_CostDistance_AStarOnOff)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Ablation of the SoA arc plane: the same instance solved with the blocked
// strip relaxation (arc_costs attached, arg 1) vs the per-edge gather path
// (arg 0). Results are bit-identical; only the relax loop changes shape.
void BM_CostDistance_ArcPlaneOnOff(benchmark::State& state) {
  const Fixture f = make(7, 96, 4, 16, /*arc_plane=*/state.range(0) != 0);
  SolverOptions opts;
  opts.future_cost = f.fc.get();
  CdSolver solver(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(f.inst));
  }
}
BENCHMARK(BM_CostDistance_ArcPlaneOnOff)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Deterministic parallel batch solving through the session API: 24 oracle
// calls (the same instance under distinct seeds, standing in for a router
// batch) on a shared ThreadPool. Results are bit-identical at every thread
// count; the time should scale with the workers.
void BM_CostDistance_BatchSolve(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const Fixture f = make(23, 48, 5, 16);
  SolverOptions opts;
  opts.future_cost = f.fc.get();
  ThreadPool pool(threads);
  CdSolver solver(opts, &pool);
  std::vector<CdSolver::Job> jobs(24);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    jobs[j].instance = &f.inst;
    jobs[j].seed = j + 1;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve_batch(std::span(jobs)));
  }
}
BENCHMARK(BM_CostDistance_BatchSolve)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// The streaming pipeline over the same 24 oracle calls: submit through a
// bounded window (8 in flight), poll opportunistically, drain the tail.
// Results are delivered strictly in submission order and bit-identical to
// BatchSolve; the interesting delta is the overhead of per-job dispatch +
// ordered delivery vs the batch barrier, across thread counts.
void BM_CostDistance_StreamSolve(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const Fixture f = make(23, 48, 5, 16);
  SolverOptions opts;
  opts.future_cost = f.fc.get();
  ThreadPool pool(threads);
  CdSolver solver(opts, &pool);
  std::vector<CdSolver::Job> jobs(24);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    jobs[j].instance = &f.inst;
    jobs[j].seed = j + 1;
  }
  for (auto _ : state) {
    SolveStream stream = solver.stream({.window = 8});
    std::size_t delivered = 0;
    for (const CdSolver::Job& job : jobs) {
      benchmark::DoNotOptimize(stream.submit(job));
      while (auto r = stream.poll()) {
        benchmark::DoNotOptimize(r->ok());
        ++delivered;
      }
    }
    for (StatusOr<SolveResult>& r : stream.drain()) {
      benchmark::DoNotOptimize(r.ok());
      ++delivered;
    }
    if (delivered != jobs.size()) state.SkipWithError("lost results");
  }
}
BENCHMARK(BM_CostDistance_StreamSolve)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Emits machine-readable results to BENCH_cd_scaling.json by default so the
// perf trajectory is tracked PR-over-PR (CI uploads it as an artifact); any
// explicit --benchmark_out= flag takes precedence.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out=")) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_cd_scaling.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
