// Microbenchmarks for the blocked relax strips and the work-stealing shard
// executor. The strip rows time the Vec4d kernels (AVX2 under the bench
// preset's -march, the bit-identical scalar twin under CDST_FORCE_SCALAR)
// against the per-edge scalar paths on the same instances; the sharded-round
// row times stealing vs static execution of an imbalanced round. Every pair
// produces bit-identical results — only the loop shape (or the schedule)
// changes, so the deltas are pure kernel/executor cost.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "api/cdst.h"
#include "graph/arc_cost_view.h"
#include "graph/dijkstra.h"
#include "grid/future_cost.h"
#include "grid/routing_grid.h"
#include "route/netlist_gen.h"
#include "util/rng.h"
#include "util/simd.h"

namespace {

using namespace cdst;

// ---------------------------------------------------------------------------
// Dijkstra strip kernel: blocked Vec4d relaxation vs the per-edge loop, on
// the grid graph the router actually searches.

struct DijkstraFixture {
  std::unique_ptr<RoutingGrid> grid;
  std::vector<double> cost;
  std::vector<double> delay;
  ArcCostView plane;
};

const DijkstraFixture& dijkstra_fixture() {
  static const DijkstraFixture* f = [] {
    auto* out = new DijkstraFixture;
    out->grid = std::make_unique<RoutingGrid>(
        96, 96, make_default_layer_stack(4), ViaSpec{});
    Rng rng(13);
    out->cost.resize(out->grid->graph().num_edges());
    out->delay = out->grid->edge_delays();
    for (std::size_t e = 0; e < out->cost.size(); ++e) {
      out->cost[e] =
          out->grid->base_costs()[e] * (1.0 + 3.0 * rng.uniform_double());
    }
    out->plane.assign(out->grid->graph(), out->cost, out->delay);
    return out;
  }();
  return *f;
}

/// arg 0: per-edge scalar relaxation; arg 1: the blocked Vec4d strips.
void BM_Relax_DijkstraCostDelay(benchmark::State& state) {
  const bool strips = state.range(0) != 0;
  const DijkstraFixture& f = dijkstra_fixture();
  const VertexId source = f.grid->vertex_at(3, 5, 0);
  for (auto _ : state) {
    const DijkstraResult r =
        strips ? dijkstra(f.grid->graph(), {source},
                          CostDelayLength(f.plane, 2.5), kInvalidVertex)
               : dijkstra(f.grid->graph(), {source},
                          CostDelayLength{f.cost, f.delay, 2.5},
                          kInvalidVertex);
    benchmark::DoNotOptimize(r.dist.data());
  }
  state.SetLabel(strips ? Vec4d::isa() : "per_edge");
}
BENCHMARK(BM_Relax_DijkstraCostDelay)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Solver strip kernel: the plane relax + batched future bounds vs the
// per-edge path, on a router-shaped cost-distance instance.

struct SolveFixture {
  std::unique_ptr<RoutingGrid> grid;
  std::unique_ptr<FutureCost> fc;
  std::vector<double> cost;
  std::vector<double> delay;
  ArcCostView plane;
  CostDistanceInstance inst;
};

const SolveFixture& solve_fixture() {
  static const SolveFixture* f = [] {
    auto* out = new SolveFixture;
    out->grid = std::make_unique<RoutingGrid>(
        64, 64, make_default_layer_stack(5), ViaSpec{});
    out->fc = std::make_unique<FutureCost>(*out->grid);
    Rng rng(29);
    out->cost.resize(out->grid->graph().num_edges());
    out->delay = out->grid->edge_delays();
    for (std::size_t e = 0; e < out->cost.size(); ++e) {
      out->cost[e] =
          out->grid->base_costs()[e] * (1.0 + 3.0 * rng.uniform_double());
    }
    out->plane.assign(out->grid->graph(), out->cost, out->delay);
    out->inst.graph = &out->grid->graph();
    out->inst.cost = &out->cost;
    out->inst.delay = &out->delay;
    out->inst.dbif = 2.0;
    out->inst.eta = 0.25;
    std::set<VertexId> used;
    const auto pick = [&] {
      while (true) {
        const VertexId v = out->grid->vertex_at(
            static_cast<std::int32_t>(rng.uniform(64)),
            static_cast<std::int32_t>(rng.uniform(64)), 0);
        if (used.insert(v).second) return v;
      }
    };
    out->inst.root = pick();
    for (int s = 0; s < 24; ++s) {
      out->inst.sinks.push_back(Terminal{pick(), 0.1 + rng.uniform_double()});
    }
    return out;
  }();
  return *f;
}

/// arg 0: per-edge scalar relaxation; arg 1: the blocked Vec4d strips with
/// the batched inline future bound.
void BM_Relax_CdSolveStrip(benchmark::State& state) {
  const bool strips = state.range(0) != 0;
  const SolveFixture& f = solve_fixture();
  CostDistanceInstance inst = f.inst;
  inst.arc_costs = strips ? &f.plane : nullptr;
  SolverOptions opts;
  opts.future_cost = f.fc.get();
  CdSolver solver(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(inst));
  }
  state.SetLabel(strips ? Vec4d::isa() : "per_edge");
}
BENCHMARK(BM_Relax_CdSolveStrip)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Work-stealing executor: an imbalanced sharded round (most nets in one
// tile, so static execution idles the other lanes) with stealing off vs on.
// Results are bit-identical; the delta is merge-barrier idle time.

struct RouterFixture {
  ChipConfig config;
  RoutingGrid grid;
  Netlist netlist;
};

const RouterFixture& router_fixture() {
  static const RouterFixture* f = [] {
    ChipConfig c;
    c.name = "bench_relax";
    c.num_nets = 200;
    c.num_layers = 4;
    c.nx = c.ny = 28;
    c.capacity = 12.0;
    c.seed = 19;
    // Clustered pins: netlist_gen draws uniformly, so the imbalance is
    // produced by the shard lattice instead — 16 tiles over 200 nets leaves
    // some tiles several times hotter than others.
    auto* out = new RouterFixture{c, make_chip_grid(c), {}};
    out->netlist = generate_netlist(c, out->grid);
    return out;
  }();
  return *f;
}

/// arg 0: static shard execution; arg 1: work-stealing lanes. 4 workers,
/// 16 shards, 2 Lagrangean rounds.
void BM_Relax_ShardedRoundStealing(benchmark::State& state) {
  const bool stealing = state.range(0) != 0;
  const RouterFixture& f = router_fixture();
  RouterOptions opts;
  opts.method = SteinerMethod::kCD;
  opts.threads = 4;
  opts.shards = 16;
  opts.shard_stealing = stealing;
  for (auto _ : state) {
    Router session(f.grid, f.netlist, opts);
    const Status st = session.run(2);
    if (!st.ok()) {
      std::fprintf(stderr, "bench_relax: run failed: %s\n",
                   st.to_string().c_str());
      std::abort();
    }
    benchmark::DoNotOptimize(session.result());
  }
  state.SetLabel(stealing ? "stealing" : "static");
}
BENCHMARK(BM_Relax_ShardedRoundStealing)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Emits machine-readable results to BENCH_relax.json by default so the perf
// trajectory is tracked PR-over-PR (CI uploads it as an artifact); any
// explicit --benchmark_out= flag takes precedence.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out=")) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_relax.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
